package tech

import (
	"math"
	"testing"

	"repro/internal/pacor"
	"repro/internal/valve"
)

func TestPitchAndConversion(t *testing.T) {
	r := Rules{ChannelWidthUM: 20, SpacingUM: 20, ValveSizeUM: 40}
	if r.PitchUM() != 40 {
		t.Fatalf("pitch = %v, want 40", r.PitchUM())
	}
	if r.ToGrid(0) != 0 || r.ToGrid(39.9) != 0 || r.ToGrid(40) != 1 || r.ToGrid(119) != 2 {
		t.Error("ToGrid floor conversion wrong")
	}
	if r.ToUM(0) != 20 || r.ToUM(2) != 100 {
		t.Error("ToUM centerline conversion wrong")
	}
	w, h := r.GridSize(1000, 400)
	if w != 25 || h != 10 {
		t.Errorf("GridSize = %dx%d, want 25x10", w, h)
	}
	if r.ChannelLengthUM(10) != 400 {
		t.Error("ChannelLengthUM wrong")
	}
}

func TestRulesValidate(t *testing.T) {
	bad := []Rules{
		{ChannelWidthUM: 0, SpacingUM: 10},
		{ChannelWidthUM: 10, SpacingUM: 0},
		{ChannelWidthUM: 10, SpacingUM: 10, ValveSizeUM: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := DefaultRules().Validate(); err != nil {
		t.Fatal(err)
	}
}

func physDesign(t *testing.T) *PhysicalDesign {
	t.Helper()
	seq := func(s string) valve.Seq {
		q, err := valve.ParseSeq(s)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	return &PhysicalDesign{
		Name:     "phys",
		WidthUM:  1200,
		HeightUM: 1200,
		Rules:    DefaultRules(), // pitch 40 -> 30x30 grid
		Valves: []PhysicalValve{
			{XUM: 220, YUM: 220, Seq: seq("01")},
			{XUM: 620, YUM: 260, Seq: seq("01")},
			{XUM: 420, YUM: 820, Seq: seq("10")},
		},
		ObstacleRectsUM: [][4]float64{{500, 500, 580, 620}},
		PinPositionsUM: [][2]float64{
			{20, 20}, {1180, 600}, {600, 1180}, {20, 600},
		},
		LMClusters: [][]int{{0, 1}},
		DeltaUM:    40, // one pitch
	}
}

func TestToDesignAndRoute(t *testing.T) {
	pd := physDesign(t)
	d, err := pd.ToDesign()
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 30 || d.H != 30 {
		t.Fatalf("grid %dx%d, want 30x30", d.W, d.H)
	}
	if d.Delta != 1 {
		t.Errorf("delta = %d, want 1 (40um at 40um pitch)", d.Delta)
	}
	if len(d.Obstacles) == 0 {
		t.Error("obstacle rect not discretized")
	}
	// End-to-end: the discretized design routes and verifies.
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate() != 1 {
		t.Errorf("completion %.2f", res.CompletionRate())
	}
	if err := pacor.Verify(d, res); err != nil {
		t.Error(err)
	}
	// Report channel length back in physical units.
	um := pd.Rules.ChannelLengthUM(res.TotalLen)
	if um <= 0 || math.IsNaN(um) {
		t.Errorf("physical length %v", um)
	}
}

func TestToDesignCollapsedValves(t *testing.T) {
	pd := physDesign(t)
	pd.Valves[1].XUM = pd.Valves[0].XUM + 5 // same 40um cell
	pd.Valves[1].YUM = pd.Valves[0].YUM
	if _, err := pd.ToDesign(); err == nil {
		t.Error("valves collapsing onto one cell must error")
	}
}

func TestToDesignInteriorPinSnaps(t *testing.T) {
	pd := physDesign(t)
	pd.PinPositionsUM = [][2]float64{{600, 600}} // dead center
	d, err := pd.ToDesign()
	if err != nil {
		t.Fatal(err)
	}
	p := d.Pins[0]
	if p.X != 0 && p.Y != 0 && p.X != d.W-1 && p.Y != d.H-1 {
		t.Errorf("interior pin %v not snapped to boundary", p)
	}
}

func TestToDesignTooSmall(t *testing.T) {
	pd := physDesign(t)
	pd.WidthUM = 30 // below one pitch
	if _, err := pd.ToDesign(); err == nil {
		t.Error("sub-pitch chip must error")
	}
}

func TestToDesignDedupesPins(t *testing.T) {
	pd := physDesign(t)
	pd.PinPositionsUM = append(pd.PinPositionsUM, pd.PinPositionsUM[0])
	d, err := pd.ToDesign()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, p := range d.Pins {
		k := [2]int{p.X, p.Y}
		if seen[k] {
			t.Errorf("duplicate pin %v", p)
		}
		seen[k] = true
	}
}
