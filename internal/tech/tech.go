// Package tech translates physical chip dimensions into the uniform routing
// grid the PACOR flow operates on. The paper's problem formulation takes
// "design rules for minimum channel spacing and minimum channel width" as
// input and partitions the chip into routing grids accordingly (Section
// 4.1: "the routing process is performed on the uniform routing grids,
// which are partitioned according to the minimum channel width and spacing
// design rule"); this package is that partitioning: one grid cell per
// channel pitch (width + spacing), so "one channel per cell" subsumes both
// rules.
package tech

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/valve"
)

// Rules are the control-layer design rules in micrometers. Typical mVLSI
// values (Unger et al., Araci & Quake): channels of 10-100 um with
// comparable spacing; valves of 6x6 to 100x100 um.
type Rules struct {
	ChannelWidthUM float64 // minimum control channel width
	SpacingUM      float64 // minimum channel-to-channel spacing
	ValveSizeUM    float64 // valve footprint edge (informational)
}

// DefaultRules returns a representative mVLSI technology point.
func DefaultRules() Rules {
	return Rules{ChannelWidthUM: 20, SpacingUM: 20, ValveSizeUM: 40}
}

// Validate checks the rules are physically meaningful.
func (r Rules) Validate() error {
	if r.ChannelWidthUM <= 0 {
		return fmt.Errorf("tech: channel width %v must be positive", r.ChannelWidthUM)
	}
	if r.SpacingUM <= 0 {
		return fmt.Errorf("tech: spacing %v must be positive", r.SpacingUM)
	}
	if r.ValveSizeUM < 0 {
		return fmt.Errorf("tech: valve size %v must be non-negative", r.ValveSizeUM)
	}
	return nil
}

// PitchUM is the routing grid pitch: one channel plus one spacing. Two
// channels in adjacent cells are then separated by at least SpacingUM.
func (r Rules) PitchUM() float64 { return r.ChannelWidthUM + r.SpacingUM }

// ToGrid converts a physical coordinate to a grid coordinate (floor).
func (r Rules) ToGrid(um float64) int {
	return int(math.Floor(um / r.PitchUM()))
}

// ToUM converts a grid coordinate back to the physical coordinate of the
// cell's channel centerline.
func (r Rules) ToUM(cells int) float64 {
	return (float64(cells) + 0.5) * r.PitchUM()
}

// GridSize returns the routing grid dimensions for a chip of the given
// physical size (cells fully inside the die only).
func (r Rules) GridSize(widthUM, heightUM float64) (w, h int) {
	return int(math.Floor(widthUM / r.PitchUM())), int(math.Floor(heightUM / r.PitchUM()))
}

// PhysicalValve is a valve given in physical coordinates.
type PhysicalValve struct {
	XUM, YUM float64
	Seq      valve.Seq
}

// PhysicalDesign is a control-layer instance in physical units.
type PhysicalDesign struct {
	Name              string
	WidthUM, HeightUM float64
	Rules             Rules
	Valves            []PhysicalValve
	ObstacleRectsUM   [][4]float64 // x0, y0, x1, y1
	PinPositionsUM    [][2]float64 // must land on the boundary ring
	LMClusters        [][]int
	DeltaUM           float64 // length-matching threshold in micrometers
}

// ToDesign discretizes the physical design onto the routing grid. Valves
// landing on the same cell, or pins off the boundary ring, are reported as
// errors — they indicate the technology pitch is too coarse for the layout.
func (pd *PhysicalDesign) ToDesign() (*valve.Design, error) {
	if err := pd.Rules.Validate(); err != nil {
		return nil, err
	}
	w, h := pd.Rules.GridSize(pd.WidthUM, pd.HeightUM)
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("tech: chip %gx%g um too small for pitch %g",
			pd.WidthUM, pd.HeightUM, pd.Rules.PitchUM())
	}
	d := &valve.Design{
		Name: pd.Name, W: w, H: h,
		Delta:      int(math.Round(pd.DeltaUM / pd.Rules.PitchUM())),
		LMClusters: pd.LMClusters,
	}
	clampPin := func(p geom.Pt) geom.Pt {
		// Pins must sit on the boundary ring; snap outward.
		if p.X > 0 && p.X < w-1 && p.Y > 0 && p.Y < h-1 {
			// Snap to the nearest edge.
			dl, dr, dt, db := p.X, w-1-p.X, p.Y, h-1-p.Y
			m := geom.Min(geom.Min(dl, dr), geom.Min(dt, db))
			switch m {
			case dl:
				p.X = 0
			case dr:
				p.X = w - 1
			case dt:
				p.Y = 0
			default:
				p.Y = h - 1
			}
		}
		p.X = geom.Max(0, geom.Min(w-1, p.X))
		p.Y = geom.Max(0, geom.Min(h-1, p.Y))
		return p
	}
	seen := map[geom.Pt]int{}
	for i, v := range pd.Valves {
		cell := geom.Pt{X: pd.Rules.ToGrid(v.XUM), Y: pd.Rules.ToGrid(v.YUM)}
		if prev, dup := seen[cell]; dup {
			return nil, fmt.Errorf("tech: valves %d and %d collapse onto cell %v at pitch %g — layout violates the spacing rule",
				prev, i, cell, pd.Rules.PitchUM())
		}
		seen[cell] = i
		d.Valves = append(d.Valves, valve.Valve{ID: i, Pos: cell, Seq: v.Seq})
	}
	for _, r := range pd.ObstacleRectsUM {
		x0, y0 := pd.Rules.ToGrid(r[0]), pd.Rules.ToGrid(r[1])
		x1, y1 := pd.Rules.ToGrid(r[2]), pd.Rules.ToGrid(r[3])
		for y := geom.Max(0, y0); y <= geom.Min(h-1, y1); y++ {
			for x := geom.Max(0, x0); x <= geom.Min(w-1, x1); x++ {
				c := geom.Pt{X: x, Y: y}
				if _, isValve := seen[c]; !isValve {
					d.Obstacles = append(d.Obstacles, c)
				}
			}
		}
	}
	pinSeen := map[geom.Pt]bool{}
	for _, p := range pd.PinPositionsUM {
		cell := clampPin(geom.Pt{X: pd.Rules.ToGrid(p[0]), Y: pd.Rules.ToGrid(p[1])})
		if !pinSeen[cell] {
			pinSeen[cell] = true
			d.Pins = append(d.Pins, cell)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("tech: discretized design invalid: %w", err)
	}
	return d, nil
}

// ChannelLengthUM converts a routed channel length in grid units back to
// micrometers.
func (r Rules) ChannelLengthUM(cells int) float64 {
	return float64(cells) * r.PitchUM()
}
