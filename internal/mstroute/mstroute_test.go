package mstroute

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestMSTLine(t *testing.T) {
	pts := []geom.Pt{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 2, Y: 0}}
	edges := MST(pts)
	if len(edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(edges))
	}
	total := 0
	for _, e := range edges {
		total += geom.Dist(pts[e[0]], pts[e[1]])
	}
	if total != 5 {
		t.Errorf("MST weight = %d, want 5 (0-2-5 chain)", total)
	}
}

func TestMSTTrivial(t *testing.T) {
	if MST(nil) != nil {
		t.Error("empty MST should be nil")
	}
	if MST([]geom.Pt{{X: 1, Y: 1}}) != nil {
		t.Error("singleton MST should be nil")
	}
}

func TestMSTWeightVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		pts := make([]geom.Pt, n)
		seen := map[geom.Pt]bool{}
		for i := range pts {
			for {
				p := geom.Pt{X: rng.Intn(15), Y: rng.Intn(15)}
				if !seen[p] {
					pts[i] = p
					seen[p] = true
					break
				}
			}
		}
		edges := MST(pts)
		got := 0
		for _, e := range edges {
			got += geom.Dist(pts[e[0]], pts[e[1]])
		}
		want := bruteMST(pts)
		if got != want {
			t.Errorf("trial %d: Prim %d, brute force %d", trial, got, want)
		}
	}
}

// bruteMST: Kruskal with full edge enumeration as an independent reference.
func bruteMST(pts []geom.Pt) int {
	n := len(pts)
	type edge struct{ w, a, b int }
	var es []edge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			es = append(es, edge{geom.Dist(pts[a], pts[b]), a, b})
		}
	}
	for i := range es {
		for j := i + 1; j < len(es); j++ {
			if es[j].w < es[i].w {
				es[i], es[j] = es[j], es[i]
			}
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	total, cnt := 0, 0
	for _, e := range es {
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			total += e.w
			cnt++
		}
	}
	if cnt != n-1 {
		panic("disconnected")
	}
	return total
}

func TestRouteClusterOpenGrid(t *testing.T) {
	g := grid.New(20, 20)
	obs := grid.NewObsMap(g)
	terms := []geom.Pt{{X: 2, Y: 2}, {X: 15, Y: 2}, {X: 2, Y: 15}, {X: 15, Y: 15}}
	res, ok := RouteCluster(obs, terms, nil)
	if !ok {
		t.Fatalf("routing failed: %+v", res.Failed)
	}
	if len(res.Paths) != 3 {
		t.Errorf("paths = %d, want 3", len(res.Paths))
	}
	if !Connected(terms, res.Paths) {
		t.Error("routed tree not connected")
	}
	for _, p := range res.Paths {
		if !p.ValidOn(g) {
			t.Errorf("invalid path %v", p)
		}
	}
}

func TestRouteClusterPointToPathShortens(t *testing.T) {
	// Three collinear terminals: point-to-path attaches the middle one with
	// zero-length or the side one directly onto the trunk, so total length
	// equals the MST weight (no double routing).
	g := grid.New(20, 5)
	obs := grid.NewObsMap(g)
	terms := []geom.Pt{{X: 1, Y: 2}, {X: 18, Y: 2}, {X: 9, Y: 2}}
	res, ok := RouteCluster(obs, terms, nil)
	if !ok {
		t.Fatal("routing failed")
	}
	if res.TotalLen() != 17 {
		t.Errorf("total length = %d, want 17 (collinear chain)", res.TotalLen())
	}
	if !Connected(terms, res.Paths) {
		t.Error("not connected")
	}
}

func TestRouteClusterWithObstacles(t *testing.T) {
	g := grid.New(15, 15)
	obs := grid.NewObsMap(g)
	for y := 2; y < 13; y++ {
		obs.Set(geom.Pt{X: 7, Y: y}, true)
	}
	terms := []geom.Pt{{X: 2, Y: 7}, {X: 12, Y: 7}}
	res, ok := RouteCluster(obs, terms, nil)
	if !ok {
		t.Fatal("routing failed")
	}
	if !Connected(terms, res.Paths) {
		t.Error("not connected")
	}
	for _, p := range res.Paths {
		for _, c := range p {
			if c.X == 7 && c.Y >= 2 && c.Y < 13 {
				t.Errorf("path crosses wall at %v", c)
			}
		}
	}
}

func TestRouteClusterFailure(t *testing.T) {
	g := grid.New(9, 9)
	obs := grid.NewObsMap(g)
	// Seal the second terminal in a box.
	target := geom.Pt{X: 6, Y: 6}
	for _, d := range []geom.Pt{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}} {
		obs.Set(target.Add(d), true)
	}
	terms := []geom.Pt{{X: 1, Y: 1}, target}
	res, ok := RouteCluster(obs, terms, nil)
	if ok {
		t.Fatal("sealed terminal should fail")
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Errorf("Failed = %v, want [1]", res.Failed)
	}
}

func TestRouteClusterSingleton(t *testing.T) {
	g := grid.New(5, 5)
	obs := grid.NewObsMap(g)
	res, ok := RouteCluster(obs, []geom.Pt{{X: 2, Y: 2}}, nil)
	if !ok || len(res.Paths) != 0 {
		t.Error("singleton cluster should trivially succeed with no paths")
	}
}

func TestRouteClusterMarksObstacles(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	terms := []geom.Pt{{X: 1, Y: 1}, {X: 8, Y: 1}}
	res, ok := RouteCluster(obs, terms, nil)
	if !ok {
		t.Fatal("routing failed")
	}
	for _, p := range res.Paths {
		for _, c := range p {
			if !obs.Blocked(c) {
				t.Errorf("path cell %v not marked as obstacle", c)
			}
		}
	}
}

func TestConnectedDetectsDisconnection(t *testing.T) {
	terms := []geom.Pt{{X: 0, Y: 0}, {X: 5, Y: 5}}
	if Connected(terms, nil) {
		t.Error("two terminals with no paths cannot be connected")
	}
	paths := []grid.Path{{{X: 0, Y: 0}, {X: 1, Y: 0}}}
	if Connected(terms, paths) {
		t.Error("partial path should not connect")
	}
	full := []grid.Path{{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 4, Y: 0}, {X: 5, Y: 0},
		{X: 5, Y: 1}, {X: 5, Y: 2}, {X: 5, Y: 3}, {X: 5, Y: 4}, {X: 5, Y: 5},
	}}
	if !Connected(terms, full) {
		t.Error("full path should connect")
	}
}
