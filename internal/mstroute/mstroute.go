// Package mstroute implements the MST-based cluster routing stage of the
// PACOR flow (Figure 2): clusters without the length-matching constraint are
// connected by routing the edges of a minimum spanning tree over the valves,
// using point-to-point and point-to-path A* searches — each new valve routes
// to the nearest cell of the already-routed tree, which both shortens
// channels and improves routability versus fixed point-to-point edges.
package mstroute

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/route"
)

// MST returns the edges of a minimum spanning tree over the points under
// Manhattan distance, via Prim's algorithm. Edges are (index, index) pairs
// into pts, in the order Prim adds them (so edge k attaches a new vertex to
// the tree built by edges 0..k-1).
func MST(pts []geom.Pt) [][2]int {
	n := len(pts)
	if n <= 1 {
		return nil
	}
	inTree := make([]bool, n)
	bestDist := make([]int, n)
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = int(^uint(0) >> 1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestDist[j] = geom.Dist(pts[0], pts[j])
		bestFrom[j] = 0
	}
	edges := make([][2]int, 0, n-1)
	for len(edges) < n-1 {
		pick, pd := -1, int(^uint(0)>>1)
		for j := 0; j < n; j++ {
			if !inTree[j] && (bestDist[j] < pd || (bestDist[j] == pd && (pick == -1 || j < pick))) {
				pick, pd = j, bestDist[j]
			}
		}
		edges = append(edges, [2]int{bestFrom[pick], pick})
		inTree[pick] = true
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := geom.Dist(pts[pick], pts[j]); d < bestDist[j] {
					bestDist[j] = d
					bestFrom[j] = pick
				}
			}
		}
	}
	return edges
}

// Result is a routed cluster: one path per successfully routed MST edge.
type Result struct {
	Paths []grid.Path
	// Failed holds the indices (into the terminal slice) of valves that
	// could not be attached; empty on full success.
	Failed []int
}

// TotalLen returns the summed channel length of all paths.
func (r *Result) TotalLen() int {
	n := 0
	for _, p := range r.Paths {
		n += p.Len()
	}
	return n
}

// RouteCluster connects the terminals into one routed tree on obs. Routed
// paths are marked as obstacles in obs (the caller owns rollback via Clone
// if needed). hist, when non-nil, is a per-cell extra-cost array shared with
// the negotiation stage. ok is false when any terminal failed to attach.
func RouteCluster(obs *grid.ObsMap, terms []geom.Pt, hist []float64) (*Result, bool) {
	return RouteClusterWS(route.NewWorkspace(obs.Grid()), obs, terms, hist)
}

// RouteClusterWS is RouteCluster with a caller-owned search workspace: every
// A* edge search reuses ws instead of allocating per call. ws must not be
// shared with another goroutine.
func RouteClusterWS(ws *route.Workspace, obs *grid.ObsMap, terms []geom.Pt, hist []float64) (*Result, bool) {
	res := &Result{}
	if len(terms) <= 1 {
		return res, true
	}
	g := obs.Grid()
	edges := MST(terms)
	// Tree cells grow as edges route; point-to-path search targets them all.
	tree := []geom.Pt{terms[0]}
	attached := map[int]bool{0: true}
	ok := true
	for _, e := range edges {
		// Prim guarantees e[0] is already attached; if its own attachment
		// failed earlier, fall back to the whole current tree.
		src := terms[e[1]]
		p, routed := ws.AStar(g, route.Request{
			Sources: []geom.Pt{src},
			Targets: tree,
			Obs:     obs,
			Hist:    hist,
		})
		if !routed {
			res.Failed = append(res.Failed, e[1])
			ok = false
			continue
		}
		res.Paths = append(res.Paths, p)
		obs.SetPath(p, true)
		attached[e[1]] = true
		tree = append(tree, p...)
	}
	// De-duplicate failed list order for determinism.
	sort.Ints(res.Failed)
	return res, ok
}

// Connected reports whether the routed paths plus terminals form a single
// connected component (used by tests and flow assertions). Terminals with no
// paths count as connected only when there is at most one terminal.
func Connected(terms []geom.Pt, paths []grid.Path) bool {
	if len(terms) <= 1 {
		return true
	}
	// Union-find over cells.
	parent := map[geom.Pt]geom.Pt{}
	var find func(p geom.Pt) geom.Pt
	find = func(p geom.Pt) geom.Pt {
		if parent[p] == p {
			return p
		}
		r := find(parent[p])
		parent[p] = r
		return r
	}
	add := func(p geom.Pt) {
		if _, ok := parent[p]; !ok {
			parent[p] = p
		}
	}
	union := func(a, b geom.Pt) {
		add(a)
		add(b)
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, t := range terms {
		add(t)
	}
	// Terminals lying on a path cell merge by identity; path cells merge
	// along their explicit steps.
	for _, p := range paths {
		for i, c := range p {
			add(c)
			if i > 0 {
				union(p[i-1], c)
			}
		}
	}
	root := find(terms[0])
	for _, t := range terms[1:] {
		if find(t) != root {
			return false
		}
	}
	return true
}
