package valve

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
)

// designJSON is the on-disk representation of a Design. Activation sequences
// are stored as "0-1-X" strings and points as [x, y] pairs to keep design
// files hand-editable.
type designJSON struct {
	Name       string   `json:"name"`
	Width      int      `json:"width"`
	Height     int      `json:"height"`
	Delta      int      `json:"delta"`
	Valves     []vJSON  `json:"valves"`
	Obstacles  [][2]int `json:"obstacles,omitempty"`
	Pins       [][2]int `json:"pins"`
	LMClusters [][]int  `json:"lm_clusters,omitempty"`
}

type vJSON struct {
	Pos [2]int `json:"pos"`
	Seq string `json:"seq"`
}

// MarshalJSON implements json.Marshaler for Design.
func (d *Design) MarshalJSON() ([]byte, error) {
	dj := designJSON{
		Name:       d.Name,
		Width:      d.W,
		Height:     d.H,
		Delta:      d.Delta,
		LMClusters: d.LMClusters,
	}
	for _, v := range d.Valves {
		dj.Valves = append(dj.Valves, vJSON{Pos: [2]int{v.Pos.X, v.Pos.Y}, Seq: v.Seq.String()})
	}
	for _, o := range d.Obstacles {
		dj.Obstacles = append(dj.Obstacles, [2]int{o.X, o.Y})
	}
	for _, p := range d.Pins {
		dj.Pins = append(dj.Pins, [2]int{p.X, p.Y})
	}
	return json.Marshal(dj)
}

// UnmarshalJSON implements json.Unmarshaler for Design.
func (d *Design) UnmarshalJSON(data []byte) error {
	var dj designJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return err
	}
	d.Name = dj.Name
	d.W, d.H = dj.Width, dj.Height
	d.Delta = dj.Delta
	d.LMClusters = dj.LMClusters
	d.Valves = nil
	for i, v := range dj.Valves {
		seq, err := ParseSeq(v.Seq)
		if err != nil {
			return fmt.Errorf("valve %d: %w", i, err)
		}
		d.Valves = append(d.Valves, Valve{
			ID:  i,
			Pos: geom.Pt{X: v.Pos[0], Y: v.Pos[1]},
			Seq: seq,
		})
	}
	d.Obstacles = nil
	for _, o := range dj.Obstacles {
		d.Obstacles = append(d.Obstacles, geom.Pt{X: o[0], Y: o[1]})
	}
	d.Pins = nil
	for _, p := range dj.Pins {
		d.Pins = append(d.Pins, geom.Pt{X: p[0], Y: p[1]})
	}
	return nil
}

// Write serializes d as indented JSON to w.
func (d *Design) Write(w io.Writer) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Read parses a Design from r and validates it.
func Read(r io.Reader) (*Design, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var d Design
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
