package valve_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/designcache"
	"repro/internal/geom"
	"repro/internal/valve"
)

// FuzzJSONPresentationCanon pins that the cache key depends only on the
// parsed design, never on its JSON presentation: the same design bytes
// re-serialized compactly, re-indented, and round-tripped through a
// generic map (which re-orders object fields — Go marshals map keys
// sorted, structs in declaration order) must parse to identical CanonKey
// AND RawKey. Valve-order permutations (semantic, raw-key-visible) are
// covered by FuzzCanonKey in internal/designcache.
func FuzzJSONPresentationCanon(f *testing.F) {
	seed := func(d *valve.Design) {
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(fuzzDesign())
	f.Add([]byte(`{"name":"x","width":3,"height":3,"delta":1,"valves":[{"pos":[1,1],"seq":"0"}],"pins":[[0,0]]}`))
	f.Add([]byte(`{}`))
	const sig = "fuzz-sig"
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := valve.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		wantCanon := designcache.CanonKey(d, sig)
		wantRaw := designcache.RawKey(d, sig)

		// Compact: strip all inter-token whitespace.
		var compact bytes.Buffer
		canonical, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("accepted design fails to marshal: %v", err)
		}
		if err := json.Compact(&compact, canonical); err != nil {
			t.Fatalf("compact: %v", err)
		}

		// Map round-trip: object fields come back alphabetized, numbers
		// go through float64, and the indentation changes.
		var m map[string]any
		if err := json.Unmarshal(canonical, &m); err != nil {
			t.Fatalf("map round-trip decode: %v", err)
		}
		reordered, err := json.MarshalIndent(m, " ", "\t")
		if err != nil {
			t.Fatalf("map round-trip encode: %v", err)
		}

		for _, alt := range [][]byte{compact.Bytes(), reordered} {
			got, err := valve.Read(bytes.NewReader(alt))
			if err != nil {
				t.Fatalf("reformatted presentation rejected: %v\n%s", err, alt)
			}
			if k := designcache.CanonKey(got, sig); k != wantCanon {
				t.Fatalf("CanonKey changed under reformatting:\n%s", alt)
			}
			if k := designcache.RawKey(got, sig); k != wantRaw {
				t.Fatalf("RawKey changed under reformatting:\n%s", alt)
			}
		}
	})
}

func fuzzDesign() *valve.Design {
	seq := func(s string) valve.Seq {
		q, err := valve.ParseSeq(s)
		if err != nil {
			panic(err)
		}
		return q
	}
	p := func(x, y int) geom.Pt { return geom.Pt{X: x, Y: y} }
	return &valve.Design{
		Name: "fz", W: 8, H: 8, Delta: 1,
		Valves: []valve.Valve{
			{ID: 0, Pos: p(2, 2), Seq: seq("01")},
			{ID: 1, Pos: p(5, 5), Seq: seq("0X")},
		},
		Obstacles:  []geom.Pt{p(4, 4)},
		Pins:       []geom.Pt{p(0, 3), p(7, 3)},
		LMClusters: [][]int{{0, 1}},
	}
}
