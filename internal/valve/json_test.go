package valve

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	d := mkDesign()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.W != d.W || got.H != d.H || got.Delta != d.Delta {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Valves) != len(d.Valves) {
		t.Fatalf("valve count %d, want %d", len(got.Valves), len(d.Valves))
	}
	for i := range d.Valves {
		if got.Valves[i].Pos != d.Valves[i].Pos {
			t.Errorf("valve %d pos %v, want %v", i, got.Valves[i].Pos, d.Valves[i].Pos)
		}
		if got.Valves[i].Seq.String() != d.Valves[i].Seq.String() {
			t.Errorf("valve %d seq %q, want %q", i, got.Valves[i].Seq, d.Valves[i].Seq)
		}
	}
	if len(got.Obstacles) != 1 || len(got.Pins) != 2 || len(got.LMClusters) != 1 {
		t.Error("lists not round-tripped")
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	// Structurally valid JSON but semantically invalid design (no pins).
	src := `{"name":"x","width":5,"height":5,"valves":[{"pos":[1,1],"seq":"01"}],"pins":[]}`
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Error("expected validation error for pinless design")
	}
	if _, err := Read(strings.NewReader(`{not json`)); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Read(strings.NewReader(`{"name":"x","width":5,"height":5,"valves":[{"pos":[1,1],"seq":"0z"}],"pins":[[0,0]]}`)); err == nil {
		t.Error("expected sequence parse error")
	}
}
