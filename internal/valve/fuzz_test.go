package valve

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// pt abbreviates point literals in fuzz seeds.
func pt(x, y int) geom.Pt { return geom.Pt{X: x, Y: y} }

// FuzzParseSeq: ParseSeq must never panic and must round-trip exactly when
// it accepts the input.
func FuzzParseSeq(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "X", "01X10", "XXXXX", "0z1", "０１"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := ParseSeq(s)
		if err != nil {
			return
		}
		if q.String() != s {
			t.Fatalf("round trip %q -> %q", s, q.String())
		}
		// Accepted sequences must be self-compatible.
		if len(q) > 0 && !q.Compatible(q) {
			t.Fatalf("sequence %q not self-compatible", s)
		}
	})
}

// FuzzDesignJSON: arbitrary bytes through the Design decoder must never
// panic; accepted designs must re-serialize and re-validate.
func FuzzDesignJSON(f *testing.F) {
	d := mkDesignFuzz()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","width":3,"height":3,"valves":[{"pos":[1,1],"seq":"0"}],"pins":[[0,0]]}`))
	f.Add([]byte(`{"valves":[{"pos":[1]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("accepted design fails to serialize: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round-tripped design fails to parse: %v", err)
		}
		if len(again.Valves) != len(got.Valves) || again.W != got.W || again.H != got.H {
			t.Fatal("round trip changed the design")
		}
	})
}

func mkDesignFuzz() *Design {
	seq := func(s string) Seq { q, _ := ParseSeq(s); return q }
	return &Design{
		Name: "fz", W: 8, H: 8, Delta: 1,
		Valves: []Valve{
			{ID: 0, Pos: pt(2, 2), Seq: seq("01")},
			{ID: 1, Pos: pt(5, 5), Seq: seq("0X")},
		},
		Pins:       []geom.Pt{pt(0, 3), pt(7, 3)},
		LMClusters: [][]int{{0, 1}},
	}
}
