package valve

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestStatusCompatible(t *testing.T) {
	cases := []struct {
		a, b Status
		want bool
	}{
		{Open, Open, true},
		{Closed, Closed, true},
		{Open, Closed, false},
		{Closed, Open, false},
		{Open, DontC, true},
		{DontC, Closed, true},
		{DontC, DontC, true},
	}
	for _, c := range cases {
		if got := c.a.Compatible(c.b); got != c.want {
			t.Errorf("%c ~ %c = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestParseSeq(t *testing.T) {
	q, err := ParseSeq("01X10")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "01X10" {
		t.Errorf("round trip = %q", q.String())
	}
	if _, err := ParseSeq("012"); err == nil {
		t.Error("invalid status accepted")
	}
	empty, err := ParseSeq("")
	if err != nil || len(empty) != 0 {
		t.Error("empty sequence should parse")
	}
}

func TestSeqCompatible(t *testing.T) {
	mk := func(s string) Seq {
		q, err := ParseSeq(s)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	if !mk("0X1").Compatible(mk("001")) {
		t.Error("X should match 0")
	}
	if mk("01").Compatible(mk("00")) {
		t.Error("0 vs 1 should be incompatible")
	}
	if mk("01").Compatible(mk("011")) {
		t.Error("length mismatch should be incompatible")
	}
	if !mk("XXX").Compatible(mk("010")) {
		t.Error("all-X compatible with anything")
	}
}

func TestSeqMerge(t *testing.T) {
	mk := func(s string) Seq { q, _ := ParseSeq(s); return q }
	m, ok := mk("0X1X").Merge(mk("X01X"))
	if !ok || m.String() != "001X" {
		t.Errorf("Merge = %q ok=%v, want 001X", m.String(), ok)
	}
	if _, ok := mk("01").Merge(mk("10")); ok {
		t.Error("incompatible merge should fail")
	}
	if _, ok := mk("0").Merge(mk("01")); ok {
		t.Error("length-mismatched merge should fail")
	}
}

func TestMergePreservesCompatibility(t *testing.T) {
	// Property: if q ~ r then merge(q,r) is compatible with both.
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		toSeq := func(b []byte) Seq {
			s := make(Seq, len(b))
			for i, x := range b {
				switch x % 3 {
				case 0:
					s[i] = Open
				case 1:
					s[i] = Closed
				default:
					s[i] = DontC
				}
			}
			return s
		}
		q, r := toSeq(raw[:n]), toSeq(raw[n:2*n])
		m, ok := q.Merge(r)
		if ok != q.Compatible(r) {
			return false
		}
		if !ok {
			return true
		}
		return m.Compatible(q) && m.Compatible(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkDesign() *Design {
	seq := func(s string) Seq { q, _ := ParseSeq(s); return q }
	return &Design{
		Name: "t",
		W:    10, H: 10,
		Delta: 1,
		Valves: []Valve{
			{ID: 0, Pos: geom.Pt{X: 2, Y: 2}, Seq: seq("010")},
			{ID: 1, Pos: geom.Pt{X: 5, Y: 2}, Seq: seq("0X0")},
			{ID: 2, Pos: geom.Pt{X: 2, Y: 5}, Seq: seq("101")},
		},
		Obstacles:  []geom.Pt{{X: 7, Y: 7}},
		Pins:       []geom.Pt{{X: 0, Y: 0}, {X: 9, Y: 5}},
		LMClusters: [][]int{{0, 1}},
	}
}

func TestDesignValidateOK(t *testing.T) {
	if err := mkDesign().Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}
}

func TestDesignValidateErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Design)
	}{
		{"zero size", func(d *Design) { d.W = 0 }},
		{"negative delta", func(d *Design) { d.Delta = -1 }},
		{"off-grid valve", func(d *Design) { d.Valves[0].Pos = geom.Pt{X: 99, Y: 0} }},
		{"bad ID", func(d *Design) { d.Valves[1].ID = 7 }},
		{"valve on obstacle", func(d *Design) { d.Valves[0].Pos = geom.Pt{X: 7, Y: 7} }},
		{"duplicate position", func(d *Design) { d.Valves[1].Pos = d.Valves[0].Pos }},
		{"seq length mismatch", func(d *Design) { d.Valves[2].Seq = d.Valves[2].Seq[:2] }},
		{"no pins", func(d *Design) { d.Pins = nil }},
		{"interior pin", func(d *Design) { d.Pins = []geom.Pt{{X: 5, Y: 5}} }},
		{"off-grid obstacle", func(d *Design) { d.Obstacles = append(d.Obstacles, geom.Pt{X: -1, Y: 0}) }},
		{"tiny LM cluster", func(d *Design) { d.LMClusters = [][]int{{0}} }},
		{"unknown valve in cluster", func(d *Design) { d.LMClusters = [][]int{{0, 9}} }},
		{"valve in two clusters", func(d *Design) { d.LMClusters = [][]int{{0, 1}, {1, 2}} }},
		{"incompatible LM cluster", func(d *Design) { d.LMClusters = [][]int{{0, 2}} }},
	}
	for _, m := range mutations {
		d := mkDesign()
		m.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestCompatGraph(t *testing.T) {
	d := mkDesign()
	adj := d.CompatGraph()
	if !adj[0][1] || !adj[1][0] {
		t.Error("010 and 0X0 should be compatible")
	}
	if adj[0][2] {
		t.Error("010 and 101 should be incompatible")
	}
	if adj[1][2] {
		t.Error("0X0 and 101 should be incompatible")
	}
	if adj[0][0] {
		t.Error("diagonal must be false")
	}
}
