// Package valve models the control-layer inputs of a flow-based microfluidic
// biochip: microvalves with their positions and "0-1-X" activation sequences
// (Definitions 1-4 of the paper), the valve compatibility relation that
// governs which valves may share a control pin under broadcast addressing,
// and the whole-chip Design that the PACOR flow consumes.
package valve

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/geom"
)

// Status is one activation status at a single time step.
type Status byte

// The three activation statuses of Definition 1.
const (
	Open   Status = '0' // valve open
	Closed Status = '1' // valve closed
	DontC  Status = 'X' // don't care: either open or closed
)

// Valid reports whether s is one of the three legal statuses.
func (s Status) Valid() bool { return s == Open || s == Closed || s == DontC }

// Compatible implements Definition 2: two statuses are compatible iff they
// are equal or either is X.
func (s Status) Compatible(t Status) bool {
	return s == t || s == DontC || t == DontC
}

// Seq is an activation sequence (Definition 1): the status of a valve at
// each time step of the scheduled bioassay.
type Seq []Status

// ParseSeq parses a "0-1-X" string such as "01X10".
func ParseSeq(s string) (Seq, error) {
	seq := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		st := Status(s[i])
		if !st.Valid() {
			return nil, fmt.Errorf("valve: invalid activation status %q at position %d", s[i], i)
		}
		seq[i] = st
	}
	return seq, nil
}

// String renders the sequence as a "0-1-X" string.
func (q Seq) String() string {
	var b strings.Builder
	for _, s := range q {
		b.WriteByte(byte(s))
	}
	return b.String()
}

// Compatible implements Definition 3: sequences are compatible iff they have
// equal length and are elementwise compatible.
func (q Seq) Compatible(r Seq) bool {
	if len(q) != len(r) {
		return false
	}
	for i := range q {
		if !q[i].Compatible(r[i]) {
			return false
		}
	}
	return true
}

// Merge returns the most constrained sequence compatible with both q and r:
// X entries are resolved by the other sequence. It reports ok=false when the
// sequences are incompatible. Merging is how a cluster's combined switching
// pattern is derived when valves share one pressure source.
func (q Seq) Merge(r Seq) (Seq, bool) {
	if len(q) != len(r) {
		return nil, false
	}
	out := make(Seq, len(q))
	for i := range q {
		switch {
		case q[i] == r[i]:
			out[i] = q[i]
		case q[i] == DontC:
			out[i] = r[i]
		case r[i] == DontC:
			out[i] = q[i]
		default:
			return nil, false
		}
	}
	return out, true
}

// Valve is a microvalve on the control layer.
type Valve struct {
	ID  int     // dense identifier, index into Design.Valves
	Pos geom.Pt // routing-grid cell of the valve's control terminal
	Seq Seq     // activation sequence
}

// Compatible implements Definition 4.
func (v Valve) Compatible(w Valve) bool { return v.Seq.Compatible(w.Seq) }

// Design is one control-layer routing instance: the "Given" part of the
// problem formulation in Section 2.
type Design struct {
	Name string

	// W, H are the chip dimensions in routing grid cells.
	W, H int

	Valves []Valve

	// Obstacles are blocked routing cells (flow-layer punch-throughs etc.).
	Obstacles []geom.Pt

	// Pins are the feasible control pin positions CP, on the chip boundary.
	Pins []geom.Pt

	// LMClusters are the pre-specified clusters of valves (by valve ID) that
	// carry the length-matching constraint.
	LMClusters [][]int

	// Delta is the length-matching threshold δ.
	Delta int
}

// Validate checks structural sanity of the design: dimensions, on-grid valve
// and obstacle positions, boundary pins, equal-length sequences, no valve on
// an obstacle, LM clusters referencing real and pairwise-compatible valves.
func (d *Design) Validate() error {
	if d.W <= 0 || d.H <= 0 {
		return fmt.Errorf("valve: design %q has invalid size %dx%d", d.Name, d.W, d.H)
	}
	if d.Delta < 0 {
		return fmt.Errorf("valve: design %q has negative delta %d", d.Name, d.Delta)
	}
	in := func(p geom.Pt) bool { return p.X >= 0 && p.X < d.W && p.Y >= 0 && p.Y < d.H }
	onBoundary := func(p geom.Pt) bool {
		return in(p) && (p.X == 0 || p.Y == 0 || p.X == d.W-1 || p.Y == d.H-1)
	}
	obs := make(map[geom.Pt]bool, len(d.Obstacles))
	for _, o := range d.Obstacles {
		if !in(o) {
			return fmt.Errorf("valve: obstacle %v off-grid", o)
		}
		obs[o] = true
	}
	seqLen := -1
	occupied := make(map[geom.Pt]int, len(d.Valves))
	for i, v := range d.Valves {
		if v.ID != i {
			return fmt.Errorf("valve: valve at index %d has ID %d", i, v.ID)
		}
		if !in(v.Pos) {
			return fmt.Errorf("valve %d: position %v off-grid", i, v.Pos)
		}
		if obs[v.Pos] {
			return fmt.Errorf("valve %d: position %v is an obstacle", i, v.Pos)
		}
		if prev, dup := occupied[v.Pos]; dup {
			return fmt.Errorf("valve %d: position %v already occupied by valve %d", i, v.Pos, prev)
		}
		occupied[v.Pos] = i
		for j, s := range v.Seq {
			if !s.Valid() {
				return fmt.Errorf("valve %d: invalid status at step %d", i, j)
			}
		}
		if seqLen == -1 {
			seqLen = len(v.Seq)
		} else if len(v.Seq) != seqLen {
			return fmt.Errorf("valve %d: sequence length %d, want %d", i, len(v.Seq), seqLen)
		}
	}
	if len(d.Pins) == 0 {
		return errors.New("valve: design has no candidate control pins")
	}
	for _, p := range d.Pins {
		if !onBoundary(p) {
			return fmt.Errorf("valve: control pin %v not on chip boundary", p)
		}
	}
	seen := make(map[int]int)
	for ci, c := range d.LMClusters {
		if len(c) < 2 {
			return fmt.Errorf("valve: LM cluster %d has fewer than 2 valves", ci)
		}
		for _, id := range c {
			if id < 0 || id >= len(d.Valves) {
				return fmt.Errorf("valve: LM cluster %d references unknown valve %d", ci, id)
			}
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("valve: valve %d in LM clusters %d and %d", id, prev, ci)
			}
			seen[id] = ci
		}
		// The paper requires LM-constrained valves to be pairwise compatible
		// (end of Section 2).
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !d.Valves[c[i]].Compatible(d.Valves[c[j]]) {
					return fmt.Errorf("valve: LM cluster %d valves %d and %d are incompatible",
						ci, c[i], c[j])
				}
			}
		}
	}
	return nil
}

// CompatGraph returns the valve compatibility graph as an adjacency matrix:
// adj[i][j] == true iff valves i and j are compatible (i != j).
func (d *Design) CompatGraph() [][]bool {
	n := len(d.Valves)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d.Valves[i].Compatible(d.Valves[j]) {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	return adj
}
