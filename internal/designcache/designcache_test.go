package designcache

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/route"
	"repro/internal/valve"
)

func testDesign(t *testing.T, name string) *valve.Design {
	t.Helper()
	d, err := bench.Generate(name)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return d
}

// permuteValves returns d with its valves in reversed order, IDs re-densified
// and LM clusters remapped — a semantically identical presentation.
func permuteValves(d *valve.Design) *valve.Design {
	n := len(d.Valves)
	perm := &valve.Design{
		Name:       d.Name + "-perm",
		W:          d.W,
		H:          d.H,
		Delta:      d.Delta,
		Obstacles:  append([]geom.Pt(nil), d.Obstacles...),
		Pins:       append([]geom.Pt(nil), d.Pins...),
		Valves:     make([]valve.Valve, n),
		LMClusters: make([][]int, len(d.LMClusters)),
	}
	for i, v := range d.Valves {
		perm.Valves[n-1-i] = valve.Valve{ID: n - 1 - i, Pos: v.Pos, Seq: v.Seq}
	}
	for ci, c := range d.LMClusters {
		cc := make([]int, len(c))
		for i, id := range c {
			cc[i] = n - 1 - id
		}
		perm.LMClusters[ci] = cc
	}
	return perm
}

// routedOutput strips the wall-clock and counter fields, leaving exactly the
// routed solution — the bytes the byte-identity gates compare.
func routedOutput(res *pacor.Result) pacor.Result {
	out := *res
	out.Runtime = 0
	out.StageTimes = nil
	out.Negotiate = route.NegotiateStats{}
	out.LMReuse = pacor.LMReuseStats{}
	out.EscapeHier = route.HierStats{}
	return out
}

func sameRouted(t *testing.T, label string, got, want *pacor.Result) {
	t.Helper()
	g, w := routedOutput(got), routedOutput(want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: routed output differs\n got: %+v\nwant: %+v", label, g, w)
	}
}

// TestKeys: the canonical key is invariant to valve-order permutation while
// the raw key is not; a semantic change (one valve moved) shifts both; the
// params signature partitions the key space.
func TestKeys(t *testing.T) {
	d := testDesign(t, "S1")
	sig := ParamsSig(pacor.DefaultParams())

	perm := permuteValves(d)
	if err := perm.Validate(); err != nil {
		t.Fatalf("permuted design invalid: %v", err)
	}
	if CanonKey(d, sig) != CanonKey(perm, sig) {
		t.Fatal("valve permutation changed the canonical key")
	}
	if RawKey(d, sig) == RawKey(perm, sig) {
		t.Fatal("valve permutation left the raw key unchanged; exact-hit replay would mis-serve a permuted design")
	}

	nudged, err := bench.NudgeAny(d)
	if err != nil {
		t.Fatalf("nudge: %v", err)
	}
	if CanonKey(d, sig) == CanonKey(nudged, sig) {
		t.Fatal("moving a valve did not change the canonical key")
	}
	if RawKey(d, sig) == RawKey(nudged, sig) {
		t.Fatal("moving a valve did not change the raw key")
	}

	p2 := pacor.DefaultParams()
	p2.Lambda *= 2
	if CanonKey(d, sig) == CanonKey(d, ParamsSig(p2)) {
		t.Fatal("parameter change did not change the key")
	}

	named := *d
	named.Name = "same-chip-different-label"
	if RawKey(d, sig) != RawKey(&named, sig) {
		t.Fatal("the design name leaked into the content key")
	}
}

// TestExactHit: the second identical request is served from memory — same
// result pointer, no second route — and a permuted presentation of the same
// chip is NOT served from the raw entry (routing is not permutation-
// equivariant), but still parents it as a near hit.
func TestExactHit(t *testing.T) {
	d := testDesign(t, "S1")
	var routes atomic.Int32
	r := New(Options{RouteFn: func(d *valve.Design, p pacor.Params) (*pacor.Result, error) {
		routes.Add(1)
		return pacor.Route(d, p)
	}})

	res1, err := r.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Fatal("exact hit returned a different result pointer")
	}
	if got := routes.Load(); got != 1 {
		t.Fatalf("exact hit re-routed: %d routes", got)
	}
	s := r.Snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.NearHits != 0 {
		t.Fatalf("counters: %+v", s)
	}

	perm := permuteValves(d)
	res3, err := r.Route(perm, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if routes.Load() != 2 {
		t.Fatal("permuted design must route (raw keys differ)")
	}
	s = r.Snapshot()
	if s.NearHits != 1 {
		t.Fatalf("permuted sibling (Jaccard 1.0) not treated as near hit: %+v", s)
	}
	// Permuted valve order changes cluster iteration, so the routed output
	// may legitimately differ; correctness means it equals that ordering's
	// own cold route.
	cold, err := pacor.Route(perm, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sameRouted(t, "permuted near hit", res3, cold)
}

// TestNearHitByteIdentity: a nudged design routed through the cache is
// byte-identical to its cold route for every worker count and queue mode,
// with the negotiation counters proving searches were actually skipped.
func TestNearHitByteIdentity(t *testing.T) {
	d := testDesign(t, "S1")
	nudged, err := bench.NudgeAny(d)
	if err != nil {
		t.Fatalf("nudge: %v", err)
	}

	for _, workers := range []int{0, 1, 2, 4} {
		for _, queue := range []route.QueueMode{route.QueueAuto, route.QueueHeap} {
			params := pacor.DefaultParams()
			params.Workers = workers
			params.Queue = queue

			r := New(Options{})
			if _, err := r.Route(d, params); err != nil {
				t.Fatal(err)
			}
			warm, err := r.Route(nudged, params)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := pacor.Route(nudged, params)
			if err != nil {
				t.Fatal(err)
			}
			sameRouted(t, "near hit", warm, cold)

			s := r.Snapshot()
			if s.NearHits != 1 {
				t.Fatalf("workers=%d queue=%v: nudge was not a near hit: %+v", workers, queue, s)
			}
			if s.SeededEdges == 0 || s.SeededHits == 0 {
				t.Fatalf("workers=%d queue=%v: seeding skipped no searches: %+v", workers, queue, s)
			}
			if warm.Negotiate.Searches+warm.Negotiate.SeededHits != cold.Negotiate.Searches {
				t.Fatalf("workers=%d queue=%v: counters invariant broken: warm %+v cold %+v",
					workers, queue, warm.Negotiate, cold.Negotiate)
			}
			if warm.Negotiate.Searches >= cold.Negotiate.Searches {
				t.Fatalf("workers=%d queue=%v: seeding saved nothing: warm %d >= cold %d searches",
					workers, queue, warm.Negotiate.Searches, cold.Negotiate.Searches)
			}
		}
	}
}

// ordinaryNudges returns every valid unit nudge of a valve outside all LM
// clusters — the edit class whose candidate/selection sub-stage replays
// wholesale from a cached parent.
func ordinaryNudges(t *testing.T, d *valve.Design) []*valve.Design {
	t.Helper()
	inLM := make(map[int]bool)
	for _, c := range d.LMClusters {
		for _, id := range c {
			inLM[id] = true
		}
	}
	var out []*valve.Design
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for i := range d.Valves {
		if inLM[d.Valves[i].ID] {
			continue
		}
		for _, dir := range dirs {
			if nd, err := bench.Nudge(d, i, dir[0], dir[1]); err == nil {
				out = append(out, nd)
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("design has no nudgeable ordinary valve")
	}
	return out
}

// TestLMSeedReplay: an ordinary-valve nudge replays the LM candidate/
// selection sub-stage from the parent (the sink sequences are untouched),
// byte-identically to a cold route; a nudge of an LM-cluster valve refuses
// the replay for its own cluster and still routes byte-identically. The
// disk leg re-opens the cache directory in a fresh Router — the
// cross-process path — and must replay the same way.
func TestLMSeedReplay(t *testing.T) {
	d := testDesign(t, "S3")
	params := pacor.DefaultParams()

	var full *valve.Design // first variant achieving whole-stage replay
	replayed := 0
	for _, nd := range ordinaryNudges(t, d) {
		r := New(Options{})
		if _, err := r.Route(d, params); err != nil {
			t.Fatal(err)
		}
		warm, err := r.Route(nd, params)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := pacor.Route(nd, params)
		if err != nil {
			t.Fatal(err)
		}
		sameRouted(t, "ordinary nudge "+nd.Name, warm, cold)
		lr := warm.LMReuse
		if lr.CandReplayed == lr.CandClusters && lr.SelectionReplayed {
			replayed++
			if full == nil {
				full = nd
			}
		}
	}
	if full == nil {
		t.Fatalf("no ordinary nudge replayed the full LM stage (%d variants)", replayed)
	}

	// Cross-process: the parent reaches the child only through the gob disk
	// record.
	dir := t.TempDir()
	parent := New(Options{Dir: dir})
	if _, err := parent.Route(d, params); err != nil {
		t.Fatal(err)
	}
	child := New(Options{Dir: dir})
	warm, err := child.Route(full, params)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pacor.Route(full, params)
	if err != nil {
		t.Fatal(err)
	}
	sameRouted(t, "disk-seeded nudge", warm, cold)
	if lr := warm.LMReuse; lr.CandReplayed != lr.CandClusters || !lr.SelectionReplayed {
		t.Fatalf("disk round-trip lost the LM seed: %+v", lr)
	}
	if s := child.Snapshot(); s.NearHits != 1 || s.CandReplayed == 0 || s.SelReplayed != 1 {
		t.Fatalf("disk near-hit counters: %+v", s)
	}

	// An LM-valve nudge changes its own cluster's sink sequence: that cluster
	// must not replay, and the output must still match a cold route.
	lmNudged, err := bench.Nudge(d, d.LMClusters[0][0], 1, 0)
	if err != nil {
		lmNudged, err = bench.NudgeAny(d)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := New(Options{})
	if _, err := r.Route(d, params); err != nil {
		t.Fatal(err)
	}
	warmLM, err := r.Route(lmNudged, params)
	if err != nil {
		t.Fatal(err)
	}
	coldLM, err := pacor.Route(lmNudged, params)
	if err != nil {
		t.Fatal(err)
	}
	sameRouted(t, "lm-valve nudge", warmLM, coldLM)
	if lr := warmLM.LMReuse; lr.CandReplayed >= lr.CandClusters && lr.CandClusters > 0 {
		t.Fatalf("nudged cluster replayed stale candidates: %+v", lr)
	}
}

// TestCheckCacheOnSeededRun: -checkcache stays clean through a seeded run —
// every cross-run replay revalidates against a fresh search.
func TestCheckCacheOnSeededRun(t *testing.T) {
	d := testDesign(t, "S1")
	nudged, err := bench.NudgeAny(d)
	if err != nil {
		t.Fatal(err)
	}
	params := pacor.DefaultParams()
	params.Negotiate.CheckCache = true
	r := New(Options{})
	if _, err := r.Route(d, params); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(nudged, params); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); s.NearHits != 1 || s.SeededHits == 0 {
		t.Fatalf("checkcache run skipped seeding: %+v", s)
	}
}

// TestSingleFlight: N concurrent identical requests perform exactly one
// route and all callers receive the same result (run under -race in CI).
func TestSingleFlight(t *testing.T) {
	d := testDesign(t, "S1")
	var routes atomic.Int32
	release := make(chan struct{})
	r := New(Options{RouteFn: func(d *valve.Design, p pacor.Params) (*pacor.Result, error) {
		routes.Add(1)
		<-release // hold every waiter in the dedup path
		return pacor.Route(d, p)
	}})

	const n = 8
	results := make([]*pacor.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Route(d, pacor.DefaultParams())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	// Release the in-flight route only once every other caller is parked on
	// it — otherwise the fast route wins the race and they hit the store.
	for r.Snapshot().Dedup < n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := routes.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests performed %d routes", n, got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different result pointer", i)
		}
	}
	if s := r.Snapshot(); s.Dedup == 0 {
		t.Fatalf("no caller recorded as deduplicated: %+v", s)
	}
}

// TestLRUEviction: the store honors both the entry-count and the byte
// bounds, evicting from the cold end.
func TestLRUEviction(t *testing.T) {
	mkDesign := func(seed int64) *valve.Design {
		d, err := bench.GenerateSpec(bench.Spec{
			Name: "tiny", W: 24, H: 24, Valves: 6, Pins: 12, Obs: 10,
			ClusterSizes: []int{2, 2}, Window: 4, Seed: seed,
		})
		if err != nil {
			t.Fatalf("spec: %v", err)
		}
		return d
	}

	r := New(Options{MaxEntries: 2})
	for i := int64(0); i < 3; i++ {
		if _, err := r.Route(mkDesign(100+i), pacor.DefaultParams()); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := r.Len(); n != 2 {
		t.Fatalf("entry bound not enforced: %d resident", n)
	}
	if s := r.Snapshot(); s.Evictions != 1 {
		t.Fatalf("expected 1 eviction: %+v", s)
	}
	// The first design was coldest: requesting it again must re-route.
	var routes atomic.Int32
	r2 := New(Options{MaxEntries: 2, RouteFn: func(d *valve.Design, p pacor.Params) (*pacor.Result, error) {
		routes.Add(1)
		return pacor.Route(d, p)
	}})
	for i := int64(0); i < 3; i++ {
		if _, err := r2.Route(mkDesign(100+i), pacor.DefaultParams()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r2.Route(mkDesign(100), pacor.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if routes.Load() != 4 {
		t.Fatalf("evicted entry served without routing: %d routes", routes.Load())
	}

	// Byte bound: a cap far below one entry still keeps exactly the newest.
	r3 := New(Options{MaxBytes: 1})
	if _, err := r3.Route(mkDesign(100), pacor.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Route(mkDesign(101), pacor.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if n, _ := r3.Len(); n != 1 {
		t.Fatalf("byte bound kept %d entries", n)
	}
}

// TestDiskPersistence: a second Router over the same directory serves the
// first one's routes as disk hits, byte-identically; a corrupt record counts
// a DiskError and falls back to routing.
func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	d := testDesign(t, "S1")

	r1 := New(Options{Dir: dir})
	res1, err := r1.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	var routes atomic.Int32
	r2 := New(Options{Dir: dir, RouteFn: func(d *valve.Design, p pacor.Params) (*pacor.Result, error) {
		routes.Add(1)
		return pacor.Route(d, p)
	}})
	res2, err := r2.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if routes.Load() != 0 {
		t.Fatal("disk hit re-routed")
	}
	sameRouted(t, "disk hit", res2, res1)
	if s := r2.Snapshot(); s.DiskHits != 1 {
		t.Fatalf("counters: %+v", s)
	}

	// Cross-process near hit: a fresh Router (empty memory LRU) over the same
	// directory finds the parent on disk and seeds the nudged child.
	nudged, err := bench.NudgeAny(d)
	if err != nil {
		t.Fatal(err)
	}
	r4 := New(Options{Dir: dir})
	warm, err := r4.Route(nudged, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pacor.Route(nudged, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sameRouted(t, "disk-parent near hit", warm, cold)
	if s := r4.Snapshot(); s.NearHits != 1 || s.SeededHits == 0 {
		t.Fatalf("disk parent not used for seeding: %+v", s)
	}

	// Corrupt the record: the next fresh Router re-routes and reports it.
	sig := ParamsSig(pacor.DefaultParams())
	file := filepath.Join(dir, CanonKey(d, sig).String())
	if err := os.WriteFile(file, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := New(Options{Dir: dir})
	res3, err := r3.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sameRouted(t, "corrupt-record reroute", res3, res1)
	// The record decode failure is reported; the route degrades to a re-route
	// (a miss, or a near hit off the nudged sibling's record) — never a hit.
	if s := r3.Snapshot(); s.DiskErrors == 0 || s.Hits != 0 || s.DiskHits != 0 || s.Misses+s.NearHits != 1 {
		t.Fatalf("corrupt record not reported: %+v", s)
	}
}

// TestJaccardThreshold: a parent below the similarity threshold is not used
// for seeding — the route is a plain miss.
func TestJaccardThreshold(t *testing.T) {
	a, err := bench.GenerateSpec(bench.Spec{
		Name: "a", W: 24, H: 24, Valves: 6, Pins: 12, Obs: 10,
		ClusterSizes: []int{2, 2}, Window: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.GenerateSpec(bench.Spec{
		Name: "b", W: 24, H: 24, Valves: 6, Pins: 12, Obs: 10,
		ClusterSizes: []int{2, 2}, Window: 4, Seed: 8, // different geometry entirely
	})
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{Jaccard: 0.9})
	if _, err := r.Route(a, pacor.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(b, pacor.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); s.Misses != 2 || s.NearHits != 0 {
		t.Fatalf("dissimilar design still seeded: %+v", s)
	}
}
