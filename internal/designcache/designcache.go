package designcache

import (
	"sync"

	"repro/internal/pacor"
	"repro/internal/route"
	"repro/internal/valve"
)

// Options tune a Router. The zero value of every field selects a default.
type Options struct {
	// MaxEntries bounds the resident entry count (default 64; negative =
	// unbounded).
	MaxEntries int
	// MaxBytes bounds the resident size estimate across results and seeds
	// (default 256 MiB; negative = unbounded).
	MaxBytes int64
	// Dir, when non-empty, persists entries to disk (one file per canonical
	// key, gob-encoded) and consults the directory on memory misses.
	Dir string
	// Jaccard is the minimum valve∪obstacle-cell overlap for a cached design
	// to act as a near-hit warm parent (default 0.5).
	Jaccard float64
	// RouteFn replaces pacor.Route (tests substitute instrumented routers).
	RouteFn func(*valve.Design, pacor.Params) (*pacor.Result, error)
}

// Stats are a Router's cumulative counters (guarded by the Router's lock;
// read them via Snapshot).
type Stats struct {
	// Hits counts exact raw-key hits served from memory.
	Hits int
	// DiskHits counts exact hits loaded from the persistence directory.
	DiskHits int
	// NearHits counts misses routed with a warm parent seed.
	NearHits int
	// Misses counts cold routes (no parent above the threshold).
	Misses int
	// Dedup counts requests that waited on another in-flight identical
	// request instead of routing.
	Dedup int
	// SeededEdges and SeededHits accumulate the negotiation-layer counters
	// of every near-hit route (route.NegotiateStats).
	SeededEdges int
	SeededHits  int
	// CandReplayed and SelReplayed accumulate the LM-stage counters of every
	// near-hit route: candidate sets served from the parent's capture and
	// whole MWCP selections skipped (pacor.LMReuseStats).
	CandReplayed int
	SelReplayed  int
	// Evictions counts entries dropped to honor MaxEntries/MaxBytes.
	Evictions int
	// DiskErrors counts persistence failures (the cache degrades to memory
	// -only rather than failing the route).
	DiskErrors int
}

// entry is one resident design: its raw form identity, geometry bitmap,
// routed result, and the captured negotiation transcript and LM-stage
// capture that seed near-hit children. Entries are immutable once inserted;
// the LRU list is threaded through prev/next (head = most recent).
type entry struct {
	canon Key
	raw   Key
	sig   string
	w, h  int
	bits  []uint64
	res   *pacor.Result
	seed  *route.NegotiationSeed
	lm    *pacor.LMSeed
	size  int64

	prev, next *entry
}

// flight is one in-progress route shared by every concurrent identical
// request: the first caller routes, later callers block on done.
type flight struct {
	done chan struct{}
	res  *pacor.Result
	err  error
}

// Router is the cross-run cache: Route serves exact hits from the store,
// warm-seeds near hits, and deduplicates concurrent identical requests.
// Safe for concurrent use.
type Router struct {
	opts Options

	mu      sync.Mutex
	entries map[Key]*entry // by raw key (the replay identity)
	head    *entry         // LRU list, most recent first
	tail    *entry
	count   int
	bytes   int64
	flights map[Key]*flight
	stats   Stats
}

// DefaultMaxEntries and DefaultMaxBytes bound the resident store when
// Options leave them zero. 64 full S-series results with seeds measure well
// under the byte bound; the byte bound is the real guard on XL designs.
const (
	DefaultMaxEntries = 64
	DefaultMaxBytes   = 256 << 20
)

// New returns a Router with o's bounds. Dir, when set, is created lazily on
// first persist.
func New(o Options) *Router {
	if o.MaxEntries == 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.Jaccard == 0 {
		o.Jaccard = 0.5
	}
	if o.RouteFn == nil {
		o.RouteFn = pacor.Route
	}
	return &Router{
		opts:    o,
		entries: make(map[Key]*entry),
		flights: make(map[Key]*flight),
	}
}

// Snapshot returns the current counters.
func (r *Router) Snapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Len returns the resident entry count and byte estimate.
func (r *Router) Len() (entries int, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count, r.bytes
}

// Route routes d under params through the cache. An exact hit (raw key)
// returns the stored result; the caller must treat it as read-only — it is
// shared with the cache and with concurrent callers. A near hit routes with
// the best cached parent's transcript as params.NegSeed; a miss routes
// cold. Every computed route is captured and inserted. Concurrent identical
// requests coalesce into one route. params.NegSeed and params.NegCapture
// are overwritten by the cache; everything else passes through, and because
// seeding never changes routed output (route/seed.go), the result is byte-
// identical to an uncached pacor.Route for every hit class.
func (r *Router) Route(d *valve.Design, params pacor.Params) (*pacor.Result, error) {
	sig := ParamsSig(params)
	rawKey := RawKey(d, sig)

	r.mu.Lock()
	for {
		if e, ok := r.entries[rawKey]; ok {
			r.touch(e)
			r.stats.Hits++
			res := e.res
			r.mu.Unlock()
			return res, nil
		}
		fl, inFlight := r.flights[rawKey]
		if !inFlight {
			break
		}
		r.stats.Dedup++
		r.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		// The flight's entry normally landed in the store; loop rather than
		// returning fl.res directly so an entry evicted in between is simply
		// re-routed, never served stale.
		r.mu.Lock()
		if e, ok := r.entries[rawKey]; ok && e.res == fl.res {
			r.touch(e)
			r.stats.Hits++
			res := e.res
			r.mu.Unlock()
			return res, nil
		}
	}
	fl := &flight{done: make(chan struct{})}
	r.flights[rawKey] = fl
	r.mu.Unlock()

	res, err := r.routeSlow(d, params, sig, rawKey)

	r.mu.Lock()
	fl.res, fl.err = res, err
	delete(r.flights, rawKey)
	r.mu.Unlock()
	close(fl.done)
	return res, err
}

// routeSlow performs the miss path: disk probe, parent selection, seeded or
// cold route, capture, insert, persist. It runs outside the lock (the lock
// is taken only around store operations), so concurrent non-identical
// requests route in parallel.
func (r *Router) routeSlow(d *valve.Design, params pacor.Params, sig string, rawKey Key) (*pacor.Result, error) {
	canonKey := CanonKey(d, sig)
	bits := cellBits(d)

	if r.opts.Dir != "" {
		if e := r.loadDisk(canonKey, sig); e != nil {
			// A disk record is keyed canonically; it is an exact hit only
			// when its raw form also matches (see the package comment).
			r.mu.Lock()
			r.insertLocked(e)
			if e.raw == rawKey {
				r.stats.DiskHits++
				res := e.res
				r.mu.Unlock()
				return res, nil
			}
			r.mu.Unlock()
		}
	}

	parent := r.bestParent(bits, d.W, d.H, sig)
	if parent == nil && r.opts.Dir != "" {
		parent = r.diskParent(bits, d.W, d.H, sig)
	}
	capture := &route.NegotiationSeed{}
	lmCapture := &pacor.LMSeed{}
	if parent != nil {
		params.NegSeed = parent.seed
		params.LMSeed = parent.lm
	}
	params.NegCapture = capture
	params.LMCapture = lmCapture

	res, err := r.opts.RouteFn(d, params)
	if err != nil {
		return nil, err
	}

	e := &entry{
		canon: canonKey,
		raw:   rawKey,
		sig:   sig,
		w:     d.W,
		h:     d.H,
		bits:  bits,
		res:   res,
		seed:  capture,
		lm:    lmCapture,
		size:  entrySize(bits, res, capture, lmCapture),
	}
	r.mu.Lock()
	if parent != nil {
		r.stats.NearHits++
		r.stats.SeededEdges += res.Negotiate.SeededEdges
		r.stats.SeededHits += res.Negotiate.SeededHits
		r.stats.CandReplayed += res.LMReuse.CandReplayed
		if res.LMReuse.SelectionReplayed {
			r.stats.SelReplayed++
		}
	} else {
		r.stats.Misses++
	}
	r.insertLocked(e)
	r.mu.Unlock()

	if r.opts.Dir != "" {
		if err := r.storeDisk(e); err != nil {
			r.mu.Lock()
			r.stats.DiskErrors++
			r.mu.Unlock()
		}
	}
	return res, nil
}

// bestParent returns the cached design most similar to the request (same
// grid and parameters, highest Jaccard overlap at or above the threshold).
// The scan walks the LRU list, not the map, so ties resolve
// deterministically toward the most recently used parent.
func (r *Router) bestParent(bits []uint64, w, h int, sig string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *entry
	bestScore := 0.0
	for e := r.head; e != nil; e = e.next {
		if e.w != w || e.h != h || e.sig != sig || e.seed == nil || len(e.seed.Rounds) == 0 {
			continue
		}
		if score := jaccard(bits, e.bits); score > bestScore && score >= r.opts.Jaccard {
			best, bestScore = e, score
		}
	}
	if best == nil {
		return nil
	}
	r.touch(best)
	return best
}

// insertLocked adds e as most-recent and evicts from the cold end until the
// bounds hold. Replacing an existing raw key (disk load vs. concurrent
// route) keeps the newer entry.
func (r *Router) insertLocked(e *entry) {
	if old, ok := r.entries[e.raw]; ok {
		r.unlink(old)
	}
	r.entries[e.raw] = e
	r.linkFront(e)
	for r.tail != nil && r.count > 1 &&
		((r.opts.MaxEntries > 0 && r.count > r.opts.MaxEntries) ||
			(r.opts.MaxBytes > 0 && r.bytes > r.opts.MaxBytes)) {
		victim := r.tail
		r.unlink(victim)
		delete(r.entries, victim.raw)
		r.stats.Evictions++
	}
}

func (r *Router) linkFront(e *entry) {
	e.prev, e.next = nil, r.head
	if r.head != nil {
		r.head.prev = e
	}
	r.head = e
	if r.tail == nil {
		r.tail = e
	}
	r.count++
	r.bytes += e.size
}

func (r *Router) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		r.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		r.tail = e.prev
	}
	e.prev, e.next = nil, nil
	r.count--
	r.bytes -= e.size
}

// touch moves e to the front of the LRU list.
func (r *Router) touch(e *entry) {
	if r.head == e {
		return
	}
	r.unlink(e)
	r.linkFront(e)
}

// entrySize estimates an entry's resident bytes: the seeds dominate, the
// result's paths come second.
func entrySize(bits []uint64, res *pacor.Result, seed *route.NegotiationSeed, lm *pacor.LMSeed) int64 {
	n := int64(256) + int64(len(bits))*8 + seed.SizeBytes() + lm.SizeBytes()
	for i := range res.Clusters {
		c := &res.Clusters[i]
		n += 160 + int64(len(c.Valves)+len(c.FullLens))*8 + int64(len(c.Escape))*16
		for _, p := range c.Paths {
			n += 24 + int64(len(p))*16
		}
	}
	return n
}
