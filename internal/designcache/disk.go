package designcache

import (
	"encoding/gob"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"

	"repro/internal/pacor"
	"repro/internal/route"
)

// On-disk layout: one gob file per canonical key, named by the key's hex,
// written atomically (temp file + rename) so a crashed run never leaves a
// truncated record a later run would choke on. Records are keyed
// canonically — the broadest identity — and carry the raw key inside, so a
// load can distinguish an exact hit (raw match: serve the stored result)
// from a canonical sibling (different valve order: usable only as a warm
// near-hit parent). The layout mirrors pacorvet's content-addressed fact
// cache: content-hashed file names make invalidation automatic — a changed
// design or parameter set simply hashes elsewhere.

// diskVersion stamps the record layout; mismatched records are ignored (and
// re-routed), never misread.
const diskVersion = 1

type diskRecord struct {
	Version int
	Raw     Key
	Sig     string
	W, H    int
	Bits    []uint64
	Res     *pacor.Result
	Seed    *route.NegotiationSeed
	LM      *pacor.LMSeed
}

// storeDisk persists e into the cache directory.
func (r *Router) storeDisk(e *entry) error {
	if err := os.MkdirAll(r.opts.Dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(r.opts.Dir, e.canon.String())
	tmp, err := os.CreateTemp(r.opts.Dir, "tmp-*")
	if err != nil {
		return err
	}
	rec := diskRecord{
		Version: diskVersion,
		Raw:     e.raw,
		Sig:     e.sig,
		W:       e.w,
		H:       e.h,
		Bits:    e.bits,
		Res:     e.res,
		Seed:    e.seed,
		LM:      e.lm,
	}
	encErr := gob.NewEncoder(tmp).Encode(&rec)
	closeErr := tmp.Close()
	if err := errors.Join(encErr, closeErr); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return errors.Join(err, os.Remove(tmp.Name()))
	}
	return nil
}

// loadDisk loads the record for canonKey, if present and well-formed, as a
// resident entry. A failed read or a stale format returns nil — the caller
// routes as on a miss. Decode errors count as DiskErrors; a plain missing
// file does not.
func (r *Router) loadDisk(canonKey Key, sig string) *entry {
	f, err := os.Open(filepath.Join(r.opts.Dir, canonKey.String()))
	if err != nil {
		return nil
	}
	var rec diskRecord
	decErr := gob.NewDecoder(f).Decode(&rec)
	closeErr := f.Close()
	if err := errors.Join(decErr, closeErr); err != nil {
		r.mu.Lock()
		r.stats.DiskErrors++
		r.mu.Unlock()
		return nil
	}
	if rec.Version != diskVersion || rec.Sig != sig || rec.Res == nil || rec.Seed == nil ||
		rec.W <= 0 || rec.H <= 0 || len(rec.Bits) != (rec.W*rec.H+63)/64 {
		return nil
	}
	return &entry{
		canon: canonKey,
		raw:   rec.Raw,
		sig:   rec.Sig,
		w:     rec.W,
		h:     rec.H,
		bits:  rec.Bits,
		res:   rec.Res,
		seed:  rec.Seed,
		lm:    rec.LM,
		size:  entrySize(rec.Bits, rec.Res, rec.Seed, rec.LM),
	}
}

// diskParent scans the cache directory for the best warm parent of a design
// the memory store could not serve — the cross-process near-hit path (a
// fresh CLI invocation has an empty memory LRU; its parent lives only on
// disk). Records are visited in sorted file-name order so ties resolve
// deterministically; malformed records count DiskErrors and are skipped.
func (r *Router) diskParent(bits []uint64, w, h int, sig string) *entry {
	names, err := os.ReadDir(r.opts.Dir)
	if err != nil {
		return nil
	}
	var best *entry
	bestScore := 0.0
	for _, de := range names {
		raw, err := hex.DecodeString(de.Name())
		if err != nil || len(raw) != len(Key{}) {
			continue // temp files and strangers
		}
		var canonKey Key
		copy(canonKey[:], raw)
		e := r.loadDisk(canonKey, sig)
		if e == nil || e.w != w || e.h != h || e.seed == nil || len(e.seed.Rounds) == 0 {
			continue
		}
		if score := jaccard(bits, e.bits); score > bestScore && score >= r.opts.Jaccard {
			best, bestScore = e, score
		}
	}
	return best
}
