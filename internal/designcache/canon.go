// Package designcache is the cross-run routing cache: a content-addressed
// store of fully routed results keyed by a canonical hash of the valve
// design, with near-hit warm seeding of the negotiation stage for designs
// that differ only slightly from a cached parent (the interactive
// nudge-one-valve-and-reroute loop).
//
// Two key granularities coexist. The canonical key identifies designs up to
// semantically irrelevant JSON presentation — valve order, obstacle order,
// field order, whitespace — by fully sorting the canonical form. The raw key
// additionally preserves valve, pin, and LM-cluster order, because the
// routing flow is *not* permutation-equivariant: greedy clustering iterates
// valves by ID, so two valve orderings of one chip may route differently.
// Exact-hit replay therefore requires the raw forms to match; a
// canonical-key sibling with a different raw form is still a perfect warm
// parent (Jaccard 1.0) for a near-hit run.
package designcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/valve"
)

// Key is a sha256 content hash of a design form plus the flow parameter
// signature.
type Key [sha256.Size]byte

// String renders the key as hex (the on-disk file name).
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// ParamsSig fingerprints every pacor parameter that can change routed
// output. Wall-clock-only knobs — Workers, Queue, the cache and check modes,
// Trace, and the seed/capture wiring itself — are deliberately excluded, so
// one cache entry serves every execution strategy (the byte-identity sweeps
// pin exactly this property).
func ParamsSig(p pacor.Params) string {
	return fmt.Sprintf("m=%d;mc=%d;l=%g;sv=%d;er=%d;ec=%t;bh=%g;a=%g;g=%d;hm=%d;ht=%d;ha=%d",
		p.Mode, p.MaxCandidates, p.Lambda, p.Solver, p.EscapeRetries, p.ExactClustering,
		p.Negotiate.BaseHist, p.Negotiate.Alpha, p.Negotiate.Gamma,
		p.Hier.Mode, p.Hier.TileSize, p.Hier.AutoCells)
}

// canonVersion stamps the serialization layout; bump on any format change so
// stale on-disk entries can never alias a new-format key.
const canonVersion = 1

type hasher struct {
	buf []byte
}

func (w *hasher) word(v int) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(int64(v)))
}

func (w *hasher) pt(p geom.Pt) { w.word(p.X); w.word(p.Y) }

func (w *hasher) str(s string) {
	w.word(len(s))
	w.buf = append(w.buf, s...)
}

// sortedPts returns a sorted copy of pts (Y-major, then X).
func sortedPts(pts []geom.Pt) []geom.Pt {
	s := append([]geom.Pt(nil), pts...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Y != s[j].Y {
			return s[i].Y < s[j].Y
		}
		return s[i].X < s[j].X
	})
	return s
}

// designHash serializes d deterministically and hashes it together with sig.
// When canonical is set, valves are visited in position-sorted order, LM
// clusters are remapped to position-sorted valve ranks and fully sorted, and
// pins are sorted; otherwise the design's own order is preserved for valves,
// pins, and clusters. Obstacles are always sorted: they populate a set (the
// ObsMap) and their order can never reach the routed result. Name is always
// excluded — it labels the instance, it is not part of it.
func designHash(d *valve.Design, sig string, canonical bool) Key {
	w := &hasher{buf: make([]byte, 0, 1024)}
	w.word(canonVersion)
	w.str(sig)
	w.word(d.W)
	w.word(d.H)
	w.word(d.Delta)

	order := make([]int, len(d.Valves))
	for i := range order {
		order[i] = i
	}
	if canonical {
		sort.Slice(order, func(a, b int) bool {
			pa, pb := d.Valves[order[a]].Pos, d.Valves[order[b]].Pos
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
	}
	w.word(len(d.Valves))
	rank := make([]int, len(d.Valves))
	for ci, vi := range order {
		rank[vi] = ci
		v := &d.Valves[vi]
		w.pt(v.Pos)
		w.word(len(v.Seq))
		w.buf = append(w.buf, v.Seq.String()...)
	}

	obs := sortedPts(d.Obstacles)
	w.word(len(obs))
	for _, p := range obs {
		w.pt(p)
	}

	pins := d.Pins
	if canonical {
		pins = sortedPts(d.Pins)
	}
	w.word(len(pins))
	for _, p := range pins {
		w.pt(p)
	}

	clusters := d.LMClusters
	if canonical {
		clusters = make([][]int, len(d.LMClusters))
		for ci, c := range d.LMClusters {
			cc := make([]int, len(c))
			for i, id := range c {
				cc[i] = rank[id]
			}
			sort.Ints(cc)
			clusters[ci] = cc
		}
		sort.Slice(clusters, func(a, b int) bool {
			x, y := clusters[a], clusters[b]
			for i := 0; i < len(x) && i < len(y); i++ {
				if x[i] != y[i] {
					return x[i] < y[i]
				}
			}
			return len(x) < len(y)
		})
	}
	w.word(len(clusters))
	for _, c := range clusters {
		w.word(len(c))
		for _, id := range c {
			w.word(id)
		}
	}

	return sha256.Sum256(w.buf)
}

// CanonKey returns the canonical content key of d under sig: invariant to
// valve order, obstacle order, pin order, LM-cluster order, and any JSON
// presentation detail; sensitive to everything that defines the instance.
func CanonKey(d *valve.Design, sig string) Key { return designHash(d, sig, true) }

// RawKey returns the order-preserving content key of d under sig: the
// identity under which routed output is provably reproducible.
func RawKey(d *valve.Design, sig string) Key { return designHash(d, sig, false) }

// cellBits returns the design's occupied-cell bitmap (valves ∪ obstacles) —
// the geometry term of the Jaccard similarity that picks near-hit parents.
func cellBits(d *valve.Design) []uint64 {
	words := (d.W*d.H + 63) / 64
	bits := make([]uint64, words)
	set := func(p geom.Pt) {
		i := p.Y*d.W + p.X
		bits[i>>6] |= 1 << (uint(i) & 63)
	}
	for i := range d.Valves {
		set(d.Valves[i].Pos)
	}
	for _, p := range d.Obstacles {
		set(p)
	}
	return bits
}

// jaccard returns |a∩b| / |a∪b| over equal-length bitmaps (1.0 for two empty
// sets: identical geometry).
func jaccard(a, b []uint64) float64 {
	inter, union := 0, 0
	for i := range a {
		inter += bits.OnesCount64(a[i] & b[i])
		union += bits.OnesCount64(a[i] | b[i])
	}
	if union == 0 {
		return 1.0
	}
	return float64(inter) / float64(union)
}
