package designcache

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/valve"
)

// randomDesign builds a small syntactically valid design deterministically
// from seed: unique valve positions, a few obstacles and pins (duplicates
// allowed — they hash as sets/sequences, not geometry), and LM clusters over
// a prefix of the valves.
func randomDesign(seed uint64) *valve.Design {
	rng := rand.New(rand.NewSource(int64(seed)))
	w, h := 8+rng.Intn(32), 8+rng.Intn(32)
	nv := 2 + rng.Intn(10)
	d := &valve.Design{Name: "fuzz", W: w, H: h, Delta: rng.Intn(4)}
	used := map[geom.Pt]bool{}
	for i := 0; i < nv; i++ {
		var p geom.Pt
		for {
			p = geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}
			if !used[p] {
				break
			}
		}
		used[p] = true
		seq := make(valve.Seq, 1+rng.Intn(4))
		statuses := []valve.Status{valve.Open, valve.Closed, valve.DontC}
		for j := range seq {
			seq[j] = statuses[rng.Intn(len(statuses))]
		}
		d.Valves = append(d.Valves, valve.Valve{ID: i, Pos: p, Seq: seq})
	}
	for i := rng.Intn(6); i > 0; i-- {
		d.Obstacles = append(d.Obstacles, geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)})
	}
	for i := 1 + rng.Intn(6); i > 0; i-- {
		d.Pins = append(d.Pins, geom.Pt{X: rng.Intn(w), Y: 0})
	}
	for id := 0; id+1 < nv && rng.Intn(2) == 0; {
		size := 2 + rng.Intn(3)
		if id+size > nv {
			size = nv - id
		}
		c := make([]int, size)
		for i := range c {
			c[i] = id + i
		}
		d.LMClusters = append(d.LMClusters, c)
		id += size
	}
	return d
}

// shuffledPresentation returns d with valves (IDs re-densified, LM clusters
// remapped), obstacles, pins, and cluster order all permuted — a different
// JSON presentation of the same chip.
func shuffledPresentation(d *valve.Design, seed uint64) *valve.Design {
	rng := rand.New(rand.NewSource(int64(seed)))
	n := len(d.Valves)
	perm := rng.Perm(n) // perm[newIndex] = oldIndex
	newID := make([]int, n)
	p := &valve.Design{Name: d.Name + "-shuffled", W: d.W, H: d.H, Delta: d.Delta}
	for ni, oi := range perm {
		newID[oi] = ni
		v := d.Valves[oi]
		p.Valves = append(p.Valves, valve.Valve{ID: ni, Pos: v.Pos, Seq: v.Seq})
	}
	p.Obstacles = append([]geom.Pt(nil), d.Obstacles...)
	rng.Shuffle(len(p.Obstacles), func(i, j int) {
		p.Obstacles[i], p.Obstacles[j] = p.Obstacles[j], p.Obstacles[i]
	})
	p.Pins = append([]geom.Pt(nil), d.Pins...)
	rng.Shuffle(len(p.Pins), func(i, j int) {
		p.Pins[i], p.Pins[j] = p.Pins[j], p.Pins[i]
	})
	for _, c := range d.LMClusters {
		cc := make([]int, len(c))
		for i, id := range c {
			cc[i] = newID[id]
		}
		rng.Shuffle(len(cc), func(i, j int) { cc[i], cc[j] = cc[j], cc[i] })
		p.LMClusters = append(p.LMClusters, cc)
	}
	rng.Shuffle(len(p.LMClusters), func(i, j int) {
		p.LMClusters[i], p.LMClusters[j] = p.LMClusters[j], p.LMClusters[i]
	})
	return p
}

// FuzzCanonKey: the canonical key is invariant under every presentation
// permutation (valve order with ID re-densification, obstacle order, pin
// order, LM cluster order and internal order) and sensitive to a semantic
// change (one valve moved to a free cell). The raw key is sensitive to valve
// order whenever the permutation is not the identity.
func FuzzCanonKey(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(42), uint64(7))
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(987654321), uint64(123456789))
	f.Fuzz(func(t *testing.T, seed, permSeed uint64) {
		d := randomDesign(seed)
		sig := ParamsSig(pacor.DefaultParams())
		canon, raw := CanonKey(d, sig), RawKey(d, sig)

		p := shuffledPresentation(d, permSeed)
		if got := CanonKey(p, sig); got != canon {
			t.Fatalf("canonical key not permutation-invariant:\n orig %v\n perm %v", canon, got)
		}
		permuted := false
		for i := range p.Valves {
			if p.Valves[i].Pos != d.Valves[i].Pos {
				permuted = true
				break
			}
		}
		if permuted && RawKey(p, sig) == raw {
			t.Fatal("raw key ignored a valve reordering")
		}

		// Semantic change: move valve 0 to any free cell — both keys shift.
		occupied := map[geom.Pt]bool{}
		for i := range d.Valves {
			occupied[d.Valves[i].Pos] = true
		}
		moved := *d
		moved.Valves = append([]valve.Valve(nil), d.Valves...)
		for y := 0; y < d.H; y++ {
			for x := 0; x < d.W; x++ {
				if !occupied[geom.Pt{X: x, Y: y}] {
					moved.Valves[0].Pos = geom.Pt{X: x, Y: y}
					y = d.H
					break
				}
			}
		}
		if moved.Valves[0].Pos == d.Valves[0].Pos {
			return // grid fully occupied — nothing to move to
		}
		if CanonKey(&moved, sig) == canon {
			t.Fatal("canonical key missed a moved valve")
		}
		if RawKey(&moved, sig) == raw {
			t.Fatal("raw key missed a moved valve")
		}

		// A different parameter signature partitions the key space.
		if CanonKey(d, sig+";x") == canon {
			t.Fatal("canonical key ignored the parameter signature")
		}
	})
}
