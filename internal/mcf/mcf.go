// Package mcf implements integer min-cost max-flow by successive shortest
// paths with Johnson potentials (Dijkstra on reduced costs). It solves the
// escape-routing formulation of Section 5 of the paper: the paper writes the
// problem as an LP over grid flows, but its constraint matrix is a network
// matrix, so the integral min-cost flow optimum coincides with the LP
// optimum (Theorem 1's "optimal routing solution with minimized total
// cost") while directly yielding unit paths.
package mcf

import (
	"fmt"
	"math"
)

// Graph is a directed flow network over nodes 0..n-1.
type Graph struct {
	n    int
	arcs []arc     // forward/backward arcs interleaved: arc i pairs with i^1
	head [][]int32 // adjacency: arc indices per node
	orig []int32   // as-built capacity per arc pair (indexed id/2), for Reset
}

type arc struct {
	to   int32
	cap  int32 // residual capacity
	cost int32
}

// NewGraph returns an empty network with n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("mcf: invalid node count %d", n))
	}
	return &Graph{n: n, head: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddNode appends one node and returns its index.
func (g *Graph) AddNode() int {
	g.head = append(g.head, nil)
	g.n++
	return g.n - 1
}

// AddArc adds a directed arc with the given capacity and per-unit cost and
// returns its identifier for later Flow queries. Capacity must be
// non-negative.
func (g *Graph) AddArc(from, to, capacity, cost int) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcf: arc %d->%d out of range (n=%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mcf: negative capacity")
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: int32(to), cap: int32(capacity), cost: int32(cost)})
	g.arcs = append(g.arcs, arc{to: int32(from), cap: 0, cost: int32(-cost)})
	g.orig = append(g.orig, int32(capacity))
	g.head[from] = append(g.head[from], int32(id))
	g.head[to] = append(g.head[to], int32(id+1))
	return id
}

// Reset restores every arc to its as-built capacity, erasing all flow —
// including flow absorbed by Commit. The graph structure (nodes, arcs,
// costs) is untouched, so a caller can rebuild the network state between
// solver rounds without re-adding arcs or reallocating adjacency.
func (g *Graph) Reset() {
	for i := 0; i < len(g.arcs); i += 2 {
		g.arcs[i].cap = g.orig[i>>1]
		g.arcs[i^1].cap = 0
	}
}

// Commit absorbs the current flow into the capacities: every forward arc
// keeps its (already reduced) residual capacity, and the backward residual
// is zeroed so later MinCostFlow calls can neither cancel the committed
// flow nor see it via Flow/DecomposeUnitPaths. Sequential per-net routing
// on one shared graph uses it between nets: each net's decomposition then
// observes only its own unit of flow. Reset undoes all commits.
func (g *Graph) Commit() {
	for i := 0; i < len(g.arcs); i += 2 {
		g.arcs[i^1].cap = 0
	}
}

// SetCost re-prices arc id (an AddArc identifier) to cost, updating the
// paired backward arc to -cost. Re-pricing an arc that currently carries
// flow would corrupt the residual-cost invariant, so it panics; call it
// only on a flow-free graph (fresh, Reset, or after Commit).
func (g *Graph) SetCost(id, cost int) {
	if g.arcs[id^1].cap != 0 {
		panic(fmt.Sprintf("mcf: SetCost on arc %d carrying flow", id))
	}
	g.arcs[id].cost = int32(cost)
	g.arcs[id^1].cost = int32(-cost)
}

// Flow returns the flow pushed through arc id (0 before solving).
func (g *Graph) Flow(id int) int { return int(g.arcs[id^1].cap) }

// Cost returns the cost of arc id.
func (g *Graph) Cost(id int) int { return int(g.arcs[id].cost) }

// To returns the head node of arc id.
func (g *Graph) To(id int) int { return int(g.arcs[id].to) }

const inf = math.MaxInt64 / 4

// MinCostFlow pushes up to maxFlow units from s to t (maxFlow < 0 means
// maximum flow) along successive shortest paths and returns the flow value
// and total cost. Costs may be negative only on arcs out of s reachable in
// the first Bellman-Ford potential pass; the general case is handled by the
// initial Bellman-Ford.
//
// The call allocates fresh solver state; callers that solve repeatedly on
// the same (or equally sized) graphs should hold a Solver and reuse it.
func (g *Graph) MinCostFlow(s, t, maxFlow int) (flow, cost int) {
	var sv Solver
	return sv.MinCostFlow(g, s, t, maxFlow)
}

// Solver is a reusable arena for MinCostFlow runs: the potential, distance,
// and predecessor tables plus the Dijkstra frontier persist across calls, so
// repeated solves — the hierarchical global stage re-prices and re-solves
// one tile graph every negotiation round — allocate nothing in steady state.
// A Solver is not safe for concurrent use; the graph it runs on may change
// between calls (the arrays resize on demand).
//
// The frontier is a hand-rolled binary heap with the same sift order as
// container/heap over a d-ordered slice, so the node settle order — and with
// it every tie-break in the computed flow — is identical to the boxed
// implementation it replaced.
type Solver struct {
	pot    []int64
	dist   []int64
	inqArc []int32
	heap   []nodeItem
}

// NewSolver returns an empty solver arena.
func NewSolver() *Solver { return &Solver{} }

// MinCostFlow solves on g exactly like Graph.MinCostFlow, reusing the
// solver's arrays.
func (s *Solver) MinCostFlow(g *Graph, src, dst, maxFlow int) (flow, cost int) {
	if src == dst {
		return 0, 0
	}
	if len(s.pot) < g.n {
		s.pot = make([]int64, g.n)
		s.dist = make([]int64, g.n)
		s.inqArc = make([]int32, g.n)
	}
	pot, dist, inqArc := s.pot[:g.n], s.dist[:g.n], s.inqArc[:g.n]
	s.initPotentials(g, src, pot)
	want := int64(inf)
	if maxFlow >= 0 {
		want = int64(maxFlow)
	}
	var totalFlow, totalCost int64
	for totalFlow < want {
		// Dijkstra with reduced costs.
		for i := range dist {
			dist[i] = inf
			inqArc[i] = -1
		}
		dist[src] = 0
		s.heap = s.heap[:0]
		s.hpush(nodeItem{node: int32(src), d: 0})
		distT := int64(inf)
		for len(s.heap) > 0 {
			it := s.hpop()
			u := int(it.node)
			if it.d > dist[u] {
				continue
			}
			if u == dst {
				distT = it.d
				break // early exit: nodes beyond t keep dist >= distT
			}
			for _, ai := range g.head[u] {
				a := g.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				v := int(a.to)
				nd := dist[u] + int64(a.cost) + pot[u] - pot[v]
				if nd < dist[v] {
					dist[v] = nd
					inqArc[v] = ai
					s.hpush(nodeItem{node: int32(v), d: nd})
				}
			}
		}
		if distT >= inf {
			break // t unreachable: done
		}
		// Potential update with early exit: unvisited nodes (and nodes with
		// tentative distance beyond distT) clamp to distT, preserving
		// reduced-cost nonnegativity.
		for i := 0; i < g.n; i++ {
			d := dist[i]
			if d > distT {
				d = distT
			}
			pot[i] += d
		}
		// Bottleneck along the path.
		push := want - totalFlow
		for v := dst; v != src; {
			a := g.arcs[inqArc[v]]
			if int64(a.cap) < push {
				push = int64(a.cap)
			}
			v = int(g.arcs[inqArc[v]^1].to)
		}
		for v := dst; v != src; {
			ai := inqArc[v]
			g.arcs[ai].cap -= int32(push)
			g.arcs[ai^1].cap += int32(push)
			totalCost += push * int64(g.arcs[ai].cost)
			v = int(g.arcs[ai^1].to)
		}
		totalFlow += push
	}
	return int(totalFlow), int(totalCost)
}

// initPotentials fills pot via Bellman-Ford from src to support negative arc
// costs. With all-nonnegative costs it converges immediately.
func (s *Solver) initPotentials(g *Graph, src int, pot []int64) {
	hasNeg := false
	for i := 0; i < len(g.arcs); i += 2 {
		if g.arcs[i].cost < 0 && g.arcs[i].cap > 0 {
			hasNeg = true
			break
		}
	}
	if !hasNeg {
		for i := range pot {
			pot[i] = 0
		}
		return
	}
	for i := range pot {
		pot[i] = inf
	}
	pot[src] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if pot[u] >= inf {
				continue
			}
			for _, ai := range g.head[u] {
				a := g.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				if nd := pot[u] + int64(a.cost); nd < pot[int(a.to)] {
					pot[int(a.to)] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range pot {
		if pot[i] >= inf {
			pot[i] = 0 // unreachable: potential irrelevant
		}
	}
}

// nodeItem is one frontier entry: a node and its tentative distance.
type nodeItem struct {
	node int32
	d    int64
}

// hpush appends it and sifts up, mirroring container/heap's up().
func (s *Solver) hpush(it nodeItem) {
	h := append(s.heap, it)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].d < h[i].d) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	s.heap = h
}

// hpop removes and returns the minimum, mirroring container/heap's Pop()
// (swap root with last, sift down over the shortened slice).
func (s *Solver) hpop() nodeItem {
	h := s.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].d < h[j1].d {
			j = j2
		}
		if !(h[j].d < h[i].d) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	s.heap = h[:n]
	return it
}

// DecomposeUnitPaths decomposes the current flow from s to t into unit-flow
// paths (each a node sequence s..t). It consumes a copy of the flow, leaving
// the graph state untouched. Cycles in the flow (possible in principle, not
// produced by successive shortest paths with nonnegative costs) are dropped.
func (g *Graph) DecomposeUnitPaths(s, t int) [][]int {
	residFlow := make([]int32, len(g.arcs))
	for i := 0; i < len(g.arcs); i += 2 {
		residFlow[i] = g.arcs[i^1].cap // flow on forward arc i
	}
	var paths [][]int
	for {
		// Walk from s following arcs with positive flow.
		path := []int{s}
		arcsUsed := []int{}
		u := s
		visited := map[int]bool{s: true}
		found := true
		for u != t {
			next := -1
			for _, ai := range g.head[u] {
				if ai&1 == 1 { // backward arc
					continue
				}
				if residFlow[ai] > 0 && !visited[int(g.arcs[ai].to)] {
					next = int(ai)
					break
				}
			}
			if next == -1 {
				found = false
				break
			}
			u = int(g.arcs[next].to)
			visited[u] = true
			path = append(path, u)
			arcsUsed = append(arcsUsed, next)
		}
		if !found {
			break
		}
		for _, ai := range arcsUsed {
			residFlow[ai]--
		}
		paths = append(paths, path)
	}
	return paths
}
