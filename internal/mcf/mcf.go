// Package mcf implements integer min-cost max-flow by successive shortest
// paths with Johnson potentials (Dijkstra on reduced costs). It solves the
// escape-routing formulation of Section 5 of the paper: the paper writes the
// problem as an LP over grid flows, but its constraint matrix is a network
// matrix, so the integral min-cost flow optimum coincides with the LP
// optimum (Theorem 1's "optimal routing solution with minimized total
// cost") while directly yielding unit paths.
package mcf

import (
	"container/heap"
	"fmt"
	"math"
)

// Graph is a directed flow network over nodes 0..n-1.
type Graph struct {
	n    int
	arcs []arc     // forward/backward arcs interleaved: arc i pairs with i^1
	head [][]int32 // adjacency: arc indices per node
}

type arc struct {
	to   int32
	cap  int32 // residual capacity
	cost int32
}

// NewGraph returns an empty network with n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("mcf: invalid node count %d", n))
	}
	return &Graph{n: n, head: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddNode appends one node and returns its index.
func (g *Graph) AddNode() int {
	g.head = append(g.head, nil)
	g.n++
	return g.n - 1
}

// AddArc adds a directed arc with the given capacity and per-unit cost and
// returns its identifier for later Flow queries. Capacity must be
// non-negative.
func (g *Graph) AddArc(from, to, capacity, cost int) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcf: arc %d->%d out of range (n=%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic("mcf: negative capacity")
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: int32(to), cap: int32(capacity), cost: int32(cost)})
	g.arcs = append(g.arcs, arc{to: int32(from), cap: 0, cost: int32(-cost)})
	g.head[from] = append(g.head[from], int32(id))
	g.head[to] = append(g.head[to], int32(id+1))
	return id
}

// Flow returns the flow pushed through arc id (0 before solving).
func (g *Graph) Flow(id int) int { return int(g.arcs[id^1].cap) }

// Cost returns the cost of arc id.
func (g *Graph) Cost(id int) int { return int(g.arcs[id].cost) }

// To returns the head node of arc id.
func (g *Graph) To(id int) int { return int(g.arcs[id].to) }

const inf = math.MaxInt64 / 4

// MinCostFlow pushes up to maxFlow units from s to t (maxFlow < 0 means
// maximum flow) along successive shortest paths and returns the flow value
// and total cost. Costs may be negative only on arcs out of s reachable in
// the first Bellman-Ford potential pass; the general case is handled by the
// initial Bellman-Ford.
func (g *Graph) MinCostFlow(s, t, maxFlow int) (flow, cost int) {
	if s == t {
		return 0, 0
	}
	pot := g.initPotentials(s)
	dist := make([]int64, g.n)
	inqArc := make([]int32, g.n) // arc used to reach node
	want := int64(inf)
	if maxFlow >= 0 {
		want = int64(maxFlow)
	}
	var totalFlow, totalCost int64
	for totalFlow < want {
		// Dijkstra with reduced costs.
		for i := range dist {
			dist[i] = inf
			inqArc[i] = -1
		}
		dist[s] = 0
		pq := &nodeHeap{{node: int32(s), d: 0}}
		distT := int64(inf)
		for pq.Len() > 0 {
			it := heap.Pop(pq).(nodeItem)
			u := int(it.node)
			if it.d > dist[u] {
				continue
			}
			if u == t {
				distT = it.d
				break // early exit: nodes beyond t keep dist >= distT
			}
			for _, ai := range g.head[u] {
				a := g.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				v := int(a.to)
				nd := dist[u] + int64(a.cost) + pot[u] - pot[v]
				if nd < dist[v] {
					dist[v] = nd
					inqArc[v] = ai
					heap.Push(pq, nodeItem{node: int32(v), d: nd})
				}
			}
		}
		if distT >= inf {
			break // t unreachable: done
		}
		// Potential update with early exit: unvisited nodes (and nodes with
		// tentative distance beyond distT) clamp to distT, preserving
		// reduced-cost nonnegativity.
		for i := 0; i < g.n; i++ {
			d := dist[i]
			if d > distT {
				d = distT
			}
			pot[i] += d
		}
		// Bottleneck along the path.
		push := want - totalFlow
		for v := t; v != s; {
			a := g.arcs[inqArc[v]]
			if int64(a.cap) < push {
				push = int64(a.cap)
			}
			v = int(g.arcs[inqArc[v]^1].to)
		}
		for v := t; v != s; {
			ai := inqArc[v]
			g.arcs[ai].cap -= int32(push)
			g.arcs[ai^1].cap += int32(push)
			totalCost += push * int64(g.arcs[ai].cost)
			v = int(g.arcs[ai^1].to)
		}
		totalFlow += push
	}
	return int(totalFlow), int(totalCost)
}

// initPotentials runs Bellman-Ford from s to support negative arc costs.
// With all-nonnegative costs it converges immediately.
func (g *Graph) initPotentials(s int) []int64 {
	pot := make([]int64, g.n)
	hasNeg := false
	for i := 0; i < len(g.arcs); i += 2 {
		if g.arcs[i].cost < 0 && g.arcs[i].cap > 0 {
			hasNeg = true
			break
		}
	}
	if !hasNeg {
		return pot
	}
	for i := range pot {
		pot[i] = inf
	}
	pot[s] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if pot[u] >= inf {
				continue
			}
			for _, ai := range g.head[u] {
				a := g.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				if nd := pot[u] + int64(a.cost); nd < pot[int(a.to)] {
					pot[int(a.to)] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range pot {
		if pot[i] >= inf {
			pot[i] = 0 // unreachable: potential irrelevant
		}
	}
	return pot
}

// DecomposeUnitPaths decomposes the current flow from s to t into unit-flow
// paths (each a node sequence s..t). It consumes a copy of the flow, leaving
// the graph state untouched. Cycles in the flow (possible in principle, not
// produced by successive shortest paths with nonnegative costs) are dropped.
func (g *Graph) DecomposeUnitPaths(s, t int) [][]int {
	residFlow := make([]int32, len(g.arcs))
	for i := 0; i < len(g.arcs); i += 2 {
		residFlow[i] = g.arcs[i^1].cap // flow on forward arc i
	}
	var paths [][]int
	for {
		// Walk from s following arcs with positive flow.
		path := []int{s}
		arcsUsed := []int{}
		u := s
		visited := map[int]bool{s: true}
		found := true
		for u != t {
			next := -1
			for _, ai := range g.head[u] {
				if ai&1 == 1 { // backward arc
					continue
				}
				if residFlow[ai] > 0 && !visited[int(g.arcs[ai].to)] {
					next = int(ai)
					break
				}
			}
			if next == -1 {
				found = false
				break
			}
			u = int(g.arcs[next].to)
			visited[u] = true
			path = append(path, u)
			arcsUsed = append(arcsUsed, next)
		}
		if !found {
			break
		}
		for _, ai := range arcsUsed {
			residFlow[ai]--
		}
		paths = append(paths, path)
	}
	return paths
}

// nodeHeap is a min-heap over tentative distances.
type nodeItem struct {
	node int32
	d    int64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
