package mcf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// TestMinCostFlowMatchesLP cross-checks the successive-shortest-paths solver
// against the LP formulation of min-cost flow solved by internal/lp: for
// random small networks, fix the flow value at the max flow found by the
// combinatorial solver and compare optimal costs. Network matrices are
// totally unimodular, so the LP optimum equals the integral optimum — the
// same argument as the paper's Theorem 1.
func TestMinCostFlowMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		type arcRec struct{ from, to, cap, cost int }
		var arcs []arcRec
		for i := 0; i < 2*n; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			arcs = append(arcs, arcRec{from, to, 1 + rng.Intn(3), rng.Intn(6)})
		}
		if len(arcs) == 0 {
			continue
		}
		g := NewGraph(n)
		ids := make([]int, len(arcs))
		for i, a := range arcs {
			ids[i] = g.AddArc(a.from, a.to, a.cap, a.cost)
		}
		s, sink := 0, n-1
		flow, cost := g.MinCostFlow(s, sink, -1)
		if flow == 0 {
			continue
		}

		// LP: variables f_a; minimize sum cost_a f_a; conservation at every
		// non-terminal node; net outflow at s equals the target flow;
		// capacities as upper bounds.
		nv := len(arcs)
		c := make([]float64, nv)
		upper := make([]float64, nv)
		for i, a := range arcs {
			c[i] = -float64(a.cost) // lp maximizes; negate for min
			upper[i] = float64(a.cap)
		}
		var cons []lp.Constraint
		for v := 0; v < n; v++ {
			row := make([]float64, nv)
			for i, a := range arcs {
				if a.from == v {
					row[i] += 1
				}
				if a.to == v {
					row[i] -= 1
				}
			}
			switch v {
			case s:
				cons = append(cons, lp.Constraint{Coef: row, Op: lp.EQ, RHS: float64(flow)})
			case sink:
				cons = append(cons, lp.Constraint{Coef: row, Op: lp.EQ, RHS: -float64(flow)})
			default:
				cons = append(cons, lp.Constraint{Coef: row, Op: lp.EQ, RHS: 0})
			}
		}
		sol, err := lp.Solve(&lp.Problem{C: c, Constraints: cons, Upper: upper})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("trial %d: LP status %v for feasible flow", trial, sol.Status)
		}
		lpCost := -sol.Obj
		if math.Abs(lpCost-float64(cost)) > 1e-6 {
			t.Errorf("trial %d: SSP cost %d, LP cost %v (flow %d)", trial, cost, lpCost, flow)
		}
	}
}

// TestMaxFlowMatchesLP: the max flow value itself must match the LP with a
// free flow variable.
func TestMaxFlowMatchesLP(t *testing.T) {
	// Fixed layered network with parallel routes.
	g := NewGraph(6)
	type arcRec struct{ from, to, cap int }
	arcs := []arcRec{
		{0, 1, 3}, {0, 2, 2}, {1, 3, 2}, {1, 4, 2}, {2, 4, 2},
		{3, 5, 2}, {4, 5, 3}, {2, 3, 1},
	}
	for _, a := range arcs {
		g.AddArc(a.from, a.to, a.cap, 1)
	}
	flow, _ := g.MinCostFlow(0, 5, -1)

	nv := len(arcs)
	c := make([]float64, nv)
	upper := make([]float64, nv)
	for i, a := range arcs {
		if a.from == 0 {
			c[i] = 1 // maximize outflow of source
		}
		upper[i] = float64(a.cap)
	}
	var cons []lp.Constraint
	for v := 1; v < 5; v++ {
		row := make([]float64, nv)
		for i, a := range arcs {
			if a.from == v {
				row[i] += 1
			}
			if a.to == v {
				row[i] -= 1
			}
		}
		cons = append(cons, lp.Constraint{Coef: row, Op: lp.EQ, RHS: 0})
	}
	sol, err := lp.Solve(&lp.Problem{C: c, Constraints: cons, Upper: upper})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Obj-float64(flow)) > 1e-6 {
		t.Errorf("SSP max flow %d, LP max flow %v", flow, sol.Obj)
	}
}
