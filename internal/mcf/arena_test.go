package mcf

import (
	"math/rand"
	"testing"
)

// randomGraph builds a random layered-ish network and returns it with its
// source and sink.
func randomGraph(rng *rand.Rand, n, arcs int) (*Graph, int, int) {
	g := NewGraph(n)
	for i := 0; i < arcs; i++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		if from == to {
			continue
		}
		g.AddArc(from, to, 1+rng.Intn(3), rng.Intn(8))
	}
	return g, 0, n - 1
}

func TestResetRestoresCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		g, s, tt := randomGraph(rng, 8+rng.Intn(8), 30)
		f1, c1 := g.MinCostFlow(s, tt, -1)
		g.Reset()
		for id := 0; id < len(g.arcs); id += 2 {
			if g.Flow(id) != 0 {
				t.Fatalf("trial %d: arc %d carries flow %d after Reset", trial, id, g.Flow(id))
			}
		}
		f2, c2 := g.MinCostFlow(s, tt, -1)
		if f1 != f2 || c1 != c2 {
			t.Fatalf("trial %d: solve after Reset gave %d/%d, first solve %d/%d", trial, f2, c2, f1, c1)
		}
	}
}

func TestCommitHidesAndProtectsFlow(t *testing.T) {
	// Two disjoint unit paths 0->1->3 (cost 2) and 0->2->3 (cost 4).
	g := NewGraph(4)
	a01 := g.AddArc(0, 1, 1, 1)
	g.AddArc(1, 3, 1, 1)
	g.AddArc(0, 2, 1, 2)
	g.AddArc(2, 3, 1, 2)
	if f, c := g.MinCostFlow(0, 3, 1); f != 1 || c != 2 {
		t.Fatalf("first unit: flow=%d cost=%d, want 1/2", f, c)
	}
	g.Commit()
	if g.Flow(a01) != 0 {
		t.Fatalf("Flow after Commit = %d, want 0 (absorbed)", g.Flow(a01))
	}
	// The second unit must route on the expensive path — the committed
	// cheap path's backward residual is gone, so it can neither be
	// cancelled nor show up in the decomposition.
	if f, c := g.MinCostFlow(0, 3, 1); f != 1 || c != 4 {
		t.Fatalf("second unit: flow=%d cost=%d, want 1/4", f, c)
	}
	paths := g.DecomposeUnitPaths(0, 3)
	if len(paths) != 1 {
		t.Fatalf("decomposition sees %d paths, want only the uncommitted one", len(paths))
	}
	want := []int{0, 2, 3}
	for i, nd := range want {
		if paths[0][i] != nd {
			t.Fatalf("decomposed path %v, want %v", paths[0], want)
		}
	}
	// Reset undoes commits too.
	g.Reset()
	if f, c := g.MinCostFlow(0, 3, -1); f != 2 || c != 6 {
		t.Fatalf("after Reset: flow=%d cost=%d, want 2/6", f, c)
	}
}

func TestSetCostReprices(t *testing.T) {
	g := NewGraph(3)
	cheap := g.AddArc(0, 1, 1, 1)
	g.AddArc(1, 2, 1, 0)
	if _, c := g.MinCostFlow(0, 2, -1); c != 1 {
		t.Fatalf("cost=%d, want 1", c)
	}
	g.Reset()
	g.SetCost(cheap, 7)
	if _, c := g.MinCostFlow(0, 2, -1); c != 7 {
		t.Fatalf("cost after SetCost=%d, want 7", c)
	}
	if g.Cost(cheap) != 7 {
		t.Fatalf("Cost=%d, want 7", g.Cost(cheap))
	}
}

func TestSetCostPanicsOnFlow(t *testing.T) {
	g := NewGraph(2)
	a := g.AddArc(0, 1, 1, 1)
	g.MinCostFlow(0, 1, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetCost on an arc carrying flow did not panic")
		}
	}()
	g.SetCost(a, 2)
}

// TestSolverMatchesPerCallState checks that a reused Solver produces
// bit-identical flow state to fresh per-call solves across many graphs.
func TestSolverMatchesPerCallState(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sv := NewSolver()
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(12)
		seed := rng.Int63()
		ga, s, tt := randomGraph(rand.New(rand.NewSource(seed)), n, 40)
		gb, _, _ := randomGraph(rand.New(rand.NewSource(seed)), n, 40)
		fa, ca := ga.MinCostFlow(s, tt, -1)
		fb, cb := sv.MinCostFlow(gb, s, tt, -1)
		if fa != fb || ca != cb {
			t.Fatalf("trial %d: reused solver %d/%d, fresh %d/%d", trial, fb, cb, fa, ca)
		}
		for id := 0; id < len(ga.arcs); id += 2 {
			if ga.Flow(id) != gb.Flow(id) {
				t.Fatalf("trial %d: arc %d flow %d vs %d", trial, id, ga.Flow(id), gb.Flow(id))
			}
		}
	}
}

// TestSolverSteadyStateAllocs pins the arena behavior: after the first call
// has sized the arrays, Reset+solve cycles allocate nothing.
func TestSolverSteadyStateAllocs(t *testing.T) {
	g, s, tt := randomGraph(rand.New(rand.NewSource(7)), 24, 120)
	sv := NewSolver()
	sv.MinCostFlow(g, s, tt, -1) // size the arenas
	allocs := testing.AllocsPerRun(50, func() {
		g.Reset()
		sv.MinCostFlow(g, s, tt, -1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset+MinCostFlow allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkSolverReuse measures the arena path the hierarchical global stage
// runs every negotiation round: Reset, re-price, solve per-net unit flows.
func BenchmarkSolverReuse(b *testing.B) {
	g, s, tt := randomGraph(rand.New(rand.NewSource(7)), 256, 2048)
	sv := NewSolver()
	sv.MinCostFlow(g, s, tt, -1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		sv.MinCostFlow(g, s, tt, -1)
	}
}

// BenchmarkMinCostFlowFresh is the per-call baseline for the same instance.
func BenchmarkMinCostFlowFresh(b *testing.B) {
	g, s, tt := randomGraph(rand.New(rand.NewSource(7)), 256, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		g.MinCostFlow(s, tt, -1)
	}
}
