package mcf

import (
	"math/rand"
	"testing"
)

func TestSingleArc(t *testing.T) {
	g := NewGraph(2)
	a := g.AddArc(0, 1, 3, 5)
	flow, cost := g.MinCostFlow(0, 1, -1)
	if flow != 3 || cost != 15 {
		t.Fatalf("flow=%d cost=%d, want 3/15", flow, cost)
	}
	if g.Flow(a) != 3 {
		t.Errorf("arc flow = %d", g.Flow(a))
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 0->1 paths via 2 (cost 1+1) and 3 (cost 5+5), cap 1 each.
	g := NewGraph(4)
	g.AddArc(0, 2, 1, 1)
	g.AddArc(2, 1, 1, 1)
	g.AddArc(0, 3, 1, 5)
	g.AddArc(3, 1, 1, 5)
	flow, cost := g.MinCostFlow(0, 1, 1)
	if flow != 1 || cost != 2 {
		t.Fatalf("flow=%d cost=%d, want 1/2", flow, cost)
	}
	// Second unit must take the expensive path.
	g2 := NewGraph(4)
	g2.AddArc(0, 2, 1, 1)
	g2.AddArc(2, 1, 1, 1)
	g2.AddArc(0, 3, 1, 5)
	g2.AddArc(3, 1, 1, 5)
	flow, cost = g2.MinCostFlow(0, 1, -1)
	if flow != 2 || cost != 12 {
		t.Fatalf("flow=%d cost=%d, want 2/12", flow, cost)
	}
}

func TestResidualRerouting(t *testing.T) {
	// Classic instance where the second augmentation must push back over the
	// first path's arc: diamond with cross edge.
	//   0->1 (cap1,cost1), 0->2 (cap1,cost2), 1->2 (cap1,cost0),
	//   1->3 (cap1,cost2), 2->3 (cap1,cost1)
	g := NewGraph(4)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(0, 2, 1, 2)
	g.AddArc(1, 2, 1, 0)
	g.AddArc(1, 3, 1, 2)
	g.AddArc(2, 3, 1, 1)
	flow, cost := g.MinCostFlow(0, 3, -1)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2", flow)
	}
	// Optimal: 0-1-2-3 (cost 2) + 0-2? cap used... best total is 6:
	// 0-1-3 (3) + 0-2-3 (3) = 6, vs 0-1-2-3 (2) + 0-2?cap conflict.
	if cost != 6 {
		t.Fatalf("cost = %d, want 6", cost)
	}
}

func TestMaxFlowLimited(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 10, 1)
	g.AddArc(1, 2, 10, 1)
	flow, cost := g.MinCostFlow(0, 2, 4)
	if flow != 4 || cost != 8 {
		t.Fatalf("flow=%d cost=%d, want 4/8", flow, cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 1, 1)
	flow, cost := g.MinCostFlow(0, 2, -1)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow=%d cost=%d, want 0/0", flow, cost)
	}
}

func TestSelfSourceSink(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 1, 1)
	flow, cost := g.MinCostFlow(0, 0, -1)
	if flow != 0 || cost != 0 {
		t.Fatal("s==t must be 0 flow")
	}
}

func TestNegativeCosts(t *testing.T) {
	// A negative-cost arc must still yield the right optimum via
	// Bellman-Ford potentials.
	g := NewGraph(3)
	g.AddArc(0, 1, 1, -3)
	g.AddArc(1, 2, 1, 1)
	g.AddArc(0, 2, 1, 5)
	flow, cost := g.MinCostFlow(0, 2, 1)
	if flow != 1 || cost != -2 {
		t.Fatalf("flow=%d cost=%d, want 1/-2", flow, cost)
	}
}

func TestAddNode(t *testing.T) {
	g := NewGraph(1)
	a := g.AddNode()
	b := g.AddNode()
	if a != 1 || b != 2 || g.N() != 3 {
		t.Fatalf("AddNode ids %d %d n=%d", a, b, g.N())
	}
	g.AddArc(0, b, 2, 1)
	flow, _ := g.MinCostFlow(0, b, -1)
	if flow != 2 {
		t.Errorf("flow = %d", flow)
	}
}

func TestDecomposeUnitPaths(t *testing.T) {
	g := NewGraph(5)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(1, 4, 1, 1)
	g.AddArc(0, 2, 1, 1)
	g.AddArc(2, 3, 1, 1)
	g.AddArc(3, 4, 1, 1)
	flow, _ := g.MinCostFlow(0, 4, -1)
	if flow != 2 {
		t.Fatalf("flow = %d", flow)
	}
	paths := g.DecomposeUnitPaths(0, 4)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 4 {
			t.Errorf("bad path %v", p)
		}
	}
	// Graph state unchanged: decompose again gives the same answer.
	if again := g.DecomposeUnitPaths(0, 4); len(again) != 2 {
		t.Error("DecomposeUnitPaths mutated graph state")
	}
}

// TestFlowConservationRandom checks, on random graphs, that the resulting
// flow conserves at every interior node, respects capacities, and that the
// reported cost equals the sum over arcs of flow*cost.
func TestFlowConservationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(10)
		g := NewGraph(n)
		type arcRec struct{ id, from, to, cap, cost int }
		var recs []arcRec
		nArcs := n * 2
		for i := 0; i < nArcs; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			c := 1 + rng.Intn(4)
			w := rng.Intn(9)
			id := g.AddArc(from, to, c, w)
			recs = append(recs, arcRec{id, from, to, c, w})
		}
		flow, cost := g.MinCostFlow(0, n-1, -1)
		net := make([]int, n)
		sumCost := 0
		for _, r := range recs {
			f := g.Flow(r.id)
			if f < 0 || f > r.cap {
				t.Fatalf("trial %d: arc flow %d outside [0,%d]", trial, f, r.cap)
			}
			net[r.from] -= f
			net[r.to] += f
			sumCost += f * r.cost
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Fatalf("trial %d: conservation violated at %d (net %d)", trial, v, net[v])
			}
		}
		if net[n-1] != flow || net[0] != -flow {
			t.Fatalf("trial %d: source/sink imbalance", trial)
		}
		if sumCost != cost {
			t.Fatalf("trial %d: cost %d != sum %d", trial, cost, sumCost)
		}
	}
}

func TestPanics(t *testing.T) {
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanic("zero nodes", func() { NewGraph(0) })
	assertPanic("bad arc", func() { NewGraph(2).AddArc(0, 5, 1, 1) })
	assertPanic("neg cap", func() { NewGraph(2).AddArc(0, 1, -1, 1) })
}
