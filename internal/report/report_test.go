package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/pacor"
)

func fakeResult(mode pacor.Mode, matched, total int) *pacor.Result {
	return &pacor.Result{
		Mode:            mode,
		MultiClusters:   5,
		MatchedClusters: matched,
		MatchedLen:      matched * 10,
		TotalLen:        total,
		RoutedValves:    12,
		TotalValves:     12,
		Runtime:         50 * time.Millisecond,
		Clusters: []pacor.ClusterResult{
			{ID: 0, Valves: []int{0, 1}, LM: true, Matched: true, Routed: true,
				FullLens: []int{4, 4}},
			{ID: 1, Valves: []int{2}, Routed: true},
		},
	}
}

func TestTable2Format(t *testing.T) {
	rows := []Row{
		{Design: "X1", Mode: pacor.ModeWithoutSelection, Result: fakeResult(pacor.ModeWithoutSelection, 3, 100)},
		{Design: "X1", Mode: pacor.ModeDetourFirst, Result: fakeResult(pacor.ModeDetourFirst, 4, 110)},
		{Design: "X1", Mode: pacor.ModePACOR, Result: fakeResult(pacor.ModePACOR, 5, 105)},
	}
	out := Table2(rows)
	if !strings.Contains(out, "X1") {
		t.Error("design name missing")
	}
	if !strings.Contains(out, "3 / 4 / 5") {
		t.Errorf("matched columns missing:\n%s", out)
	}
	if !strings.Contains(out, "100 / 110 / 105") {
		t.Errorf("total length columns missing:\n%s", out)
	}
	if !strings.Contains(out, "100% / 100% / 100%") {
		t.Errorf("completion columns missing:\n%s", out)
	}
	if !strings.Contains(out, "Avg (normalized):") {
		t.Error("average row missing")
	}
	// PACOR's own normalized ratios are 1.00 by construction.
	if !strings.Contains(out, "PACOR: matched 1.00, matchedLen 1.00, totalLen 1.00, runtime 1.00") {
		t.Errorf("PACOR normalization wrong:\n%s", out)
	}
}

func TestTable2MissingMode(t *testing.T) {
	rows := []Row{
		{Design: "X1", Mode: pacor.ModePACOR, Result: fakeResult(pacor.ModePACOR, 5, 105)},
	}
	out := Table2(rows)
	if !strings.Contains(out, "- / - / 5") {
		t.Errorf("missing modes should render dashes:\n%s", out)
	}
}

func TestTable2Empty(t *testing.T) {
	out := Table2(nil)
	if !strings.Contains(out, "Design") {
		t.Error("header missing on empty input")
	}
}

func TestClusterReport(t *testing.T) {
	out := ClusterReport(fakeResult(pacor.ModePACOR, 5, 100))
	if !strings.Contains(out, "ID") || !strings.Contains(out, "FullLens") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "[4 4]") {
		t.Errorf("full lengths missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 clusters
		t.Errorf("lines = %d, want 3", len(lines))
	}
}
