package report

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/route"
)

// TestValidateHierFlow is the flow-level half of the hierarchical escape
// property: route an XL-family design (large enough that HierAuto engages the
// hierarchy, small enough for a unit test) with the hierarchy off and forced
// on, and require both solutions to pass the full post-route gate — channel
// DRC plus the pin-side rules. The hierarchical solution may differ from the
// flat one (it is approximate); Validate is its correctness contract.
func TestValidateHierFlow(t *testing.T) {
	d, err := bench.GenerateSpec(bench.XLSpec(120, 48, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []route.HierMode{route.HierOff, route.HierOn} {
		params := pacor.DefaultParams()
		params.Hier.Mode = mode
		res, err := pacor.Route(d, params)
		if err != nil {
			t.Fatalf("hier=%v: %v", mode, err)
		}
		if err := Validate(d, res); err != nil {
			t.Fatalf("hier=%v: post-route validation: %v", mode, err)
		}
		if res.CompletionRate() < 1 {
			t.Errorf("hier=%v: completion %.3f, want 1.0", mode, res.CompletionRate())
		}
		if mode == route.HierOn && res.EscapeHier.Corridors == 0 {
			t.Error("hier=on routed no corridors; the hierarchy never engaged")
		}
	}
}

// TestValidateCatchesViolations drives Validate's own checks: a solution
// mutated to share a pin, or to end an escape off its pin, must be rejected.
func TestValidateCatchesViolations(t *testing.T) {
	d, err := bench.GenerateSpec(bench.XLSpec(120, 48, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d, res); err != nil {
		t.Fatalf("baseline solution rejected: %v", err)
	}
	var routed []int
	for i := range res.Clusters {
		if res.Clusters[i].Routed {
			routed = append(routed, i)
		}
	}
	if len(routed) < 2 {
		t.Skip("need two routed clusters to mutate")
	}
	origPin := res.Clusters[routed[0]].Pin
	res.Clusters[routed[0]].Pin = res.Clusters[routed[1]].Pin
	if Validate(d, res) == nil {
		t.Error("shared pin not rejected")
	}
	res.Clusters[routed[0]].Pin = origPin
	if len(res.Clusters[routed[0]].Escape) > 0 {
		for _, p := range d.Pins {
			if p != origPin && p != res.Clusters[routed[1]].Pin {
				res.Clusters[routed[0]].Pin = p
				break
			}
		}
		if res.Clusters[routed[0]].Pin != origPin {
			if Validate(d, res) == nil {
				t.Error("escape ending off its pin not rejected")
			}
			res.Clusters[routed[0]].Pin = origPin
		}
	}
	if err := Validate(d, res); err != nil {
		t.Fatalf("restored solution rejected: %v", err)
	}
}
