// Package report formats flow results as the paper's Table 2: per design
// and mode, the number of multi-valve clusters, matched clusters, matched
// channel length, total channel length, and runtime, plus the normalized
// averages of the paper's last row.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pacor"
)

// Row is one (design, mode) measurement.
type Row struct {
	Design string
	Mode   pacor.Mode
	Result *pacor.Result
}

// Table2 renders rows in the paper's Table 2 layout. Rows are grouped by
// design (in first-seen order) with one column block per mode (in the order
// w/o Sel, Detour First, PACOR).
func Table2(rows []Row) string {
	modes := []pacor.Mode{pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR}
	byKey := map[string]map[pacor.Mode]*pacor.Result{}
	var designs []string
	for _, r := range rows {
		if byKey[r.Design] == nil {
			byKey[r.Design] = map[pacor.Mode]*pacor.Result{}
			designs = append(designs, r.Design)
		}
		byKey[r.Design][r.Mode] = r.Result
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s | %-26s | %-29s | %-29s | %-26s | %s\n",
		"Design", "#Clusters", "#Matched (wSel/DetF/PACOR)",
		"Matched len (wSel/DetF/PACOR)", "Total len (wSel/DetF/PACOR)",
		"Runtime s (wSel/DetF/PACOR)", "Compl")
	sums := map[pacor.Mode]struct {
		matched, matchedLen, totalLen, runtime float64
		n                                      int
	}{}
	for _, name := range designs {
		rs := byKey[name]
		ref := firstResult(rs, modes)
		if ref == nil {
			continue
		}
		var matched, mlen, tlen, rt, compl []string
		for _, m := range modes {
			r := rs[m]
			if r == nil {
				matched = append(matched, "-")
				mlen = append(mlen, "-")
				tlen = append(tlen, "-")
				rt = append(rt, "-")
				compl = append(compl, "-")
				continue
			}
			matched = append(matched, fmt.Sprintf("%d", r.MatchedClusters))
			mlen = append(mlen, fmt.Sprintf("%d", r.MatchedLen))
			tlen = append(tlen, fmt.Sprintf("%d", r.TotalLen))
			rt = append(rt, fmt.Sprintf("%.2f", r.Runtime.Seconds()))
			compl = append(compl, fmt.Sprintf("%.0f%%", 100*r.CompletionRate()))
			s := sums[m]
			if ref.MultiClusters > 0 {
				s.matched += float64(r.MatchedClusters) / float64(ref.MultiClusters)
			} else {
				s.matched++
			}
			s.matchedLen += float64(r.MatchedLen)
			s.totalLen += float64(r.TotalLen)
			s.runtime += r.Runtime.Seconds()
			s.n++
			sums[m] = s
		}
		fmt.Fprintf(&b, "%-8s %9d | %-26s | %-29s | %-29s | %-26s | %s\n",
			name, ref.MultiClusters,
			strings.Join(matched, " / "), strings.Join(mlen, " / "),
			strings.Join(tlen, " / "), strings.Join(rt, " / "),
			strings.Join(compl, " / "))
	}
	// Normalized averages (paper's "Avg." row): matched ratio averaged per
	// design; lengths and runtime as ratios of the PACOR totals.
	pac := sums[pacor.ModePACOR]
	var avg []string
	for _, m := range modes {
		s := sums[m]
		if s.n == 0 {
			avg = append(avg, "-")
			continue
		}
		matchedAvg := s.matched / float64(s.n)
		lenRatio, totRatio, rtRatio := 1.0, 1.0, 1.0
		if pac.matchedLen > 0 {
			lenRatio = s.matchedLen / pac.matchedLen
		}
		if pac.totalLen > 0 {
			totRatio = s.totalLen / pac.totalLen
		}
		if pac.runtime > 0 {
			rtRatio = s.runtime / pac.runtime
		}
		avg = append(avg, fmt.Sprintf("%s: matched %.2f, matchedLen %.2f, totalLen %.2f, runtime %.2f",
			m, matchedAvg, lenRatio, totRatio, rtRatio))
	}
	fmt.Fprintf(&b, "Avg (normalized):\n")
	for _, a := range avg {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}

func firstResult(rs map[pacor.Mode]*pacor.Result, modes []pacor.Mode) *pacor.Result {
	for _, m := range modes {
		if rs[m] != nil {
			return rs[m]
		}
	}
	return nil
}

// ClusterReport lists per-cluster outcomes of one run, sorted by ID — the
// drill-down behind a Table 2 row.
func ClusterReport(r *pacor.Result) string {
	cs := append([]pacor.ClusterResult(nil), r.Clusters...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s %-4s %-8s %-8s %-7s %-9s %s\n",
		"ID", "#Valves", "LM", "Matched", "Demoted", "Routed", "Length", "FullLens")
	for _, c := range cs {
		fmt.Fprintf(&b, "%-5d %-7d %-4v %-8v %-8v %-7v %-9d %v\n",
			c.ID, len(c.Valves), c.LM, c.Matched, c.Demoted, c.Routed,
			c.TotalLen(), c.FullLens)
	}
	return b.String()
}
