// Package report formats flow results as the paper's Table 2: per design
// and mode, the number of multi-valve clusters, matched clusters, matched
// channel length, total channel length, and runtime, plus the normalized
// averages of the paper's last row.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/valve"
)

// Row is one (design, mode) measurement.
type Row struct {
	Design string
	Mode   pacor.Mode
	Result *pacor.Result
}

// Table2 renders rows in the paper's Table 2 layout. Rows are grouped by
// design (in first-seen order) with one column block per mode (in the order
// w/o Sel, Detour First, PACOR).
func Table2(rows []Row) string {
	modes := []pacor.Mode{pacor.ModeWithoutSelection, pacor.ModeDetourFirst, pacor.ModePACOR}
	byKey := map[string]map[pacor.Mode]*pacor.Result{}
	var designs []string
	for _, r := range rows {
		if byKey[r.Design] == nil {
			byKey[r.Design] = map[pacor.Mode]*pacor.Result{}
			designs = append(designs, r.Design)
		}
		byKey[r.Design][r.Mode] = r.Result
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s | %-26s | %-29s | %-29s | %-26s | %s\n",
		"Design", "#Clusters", "#Matched (wSel/DetF/PACOR)",
		"Matched len (wSel/DetF/PACOR)", "Total len (wSel/DetF/PACOR)",
		"Runtime s (wSel/DetF/PACOR)", "Compl")
	sums := map[pacor.Mode]struct {
		matched, matchedLen, totalLen, runtime float64
		n                                      int
	}{}
	for _, name := range designs {
		rs := byKey[name]
		ref := firstResult(rs, modes)
		if ref == nil {
			continue
		}
		var matched, mlen, tlen, rt, compl []string
		for _, m := range modes {
			r := rs[m]
			if r == nil {
				matched = append(matched, "-")
				mlen = append(mlen, "-")
				tlen = append(tlen, "-")
				rt = append(rt, "-")
				compl = append(compl, "-")
				continue
			}
			matched = append(matched, fmt.Sprintf("%d", r.MatchedClusters))
			mlen = append(mlen, fmt.Sprintf("%d", r.MatchedLen))
			tlen = append(tlen, fmt.Sprintf("%d", r.TotalLen))
			rt = append(rt, fmt.Sprintf("%.2f", r.Runtime.Seconds()))
			compl = append(compl, fmt.Sprintf("%.0f%%", 100*r.CompletionRate()))
			s := sums[m]
			if ref.MultiClusters > 0 {
				s.matched += float64(r.MatchedClusters) / float64(ref.MultiClusters)
			} else {
				s.matched++
			}
			s.matchedLen += float64(r.MatchedLen)
			s.totalLen += float64(r.TotalLen)
			s.runtime += r.Runtime.Seconds()
			s.n++
			sums[m] = s
		}
		fmt.Fprintf(&b, "%-8s %9d | %-26s | %-29s | %-29s | %-26s | %s\n",
			name, ref.MultiClusters,
			strings.Join(matched, " / "), strings.Join(mlen, " / "),
			strings.Join(tlen, " / "), strings.Join(rt, " / "),
			strings.Join(compl, " / "))
	}
	// Normalized averages (paper's "Avg." row): matched ratio averaged per
	// design; lengths and runtime as ratios of the PACOR totals.
	pac := sums[pacor.ModePACOR]
	var avg []string
	for _, m := range modes {
		s := sums[m]
		if s.n == 0 {
			avg = append(avg, "-")
			continue
		}
		matchedAvg := s.matched / float64(s.n)
		lenRatio, totRatio, rtRatio := 1.0, 1.0, 1.0
		if pac.matchedLen > 0 {
			lenRatio = s.matchedLen / pac.matchedLen
		}
		if pac.totalLen > 0 {
			totRatio = s.totalLen / pac.totalLen
		}
		if pac.runtime > 0 {
			rtRatio = s.runtime / pac.runtime
		}
		avg = append(avg, fmt.Sprintf("%s: matched %.2f, matchedLen %.2f, totalLen %.2f, runtime %.2f",
			m, matchedAvg, lenRatio, totRatio, rtRatio))
	}
	fmt.Fprintf(&b, "Avg (normalized):\n")
	for _, a := range avg {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}

func firstResult(rs map[pacor.Mode]*pacor.Result, modes []pacor.Mode) *pacor.Result {
	for _, m := range modes {
		if rs[m] != nil {
			return rs[m]
		}
	}
	return nil
}

// ClusterReport lists per-cluster outcomes of one run, sorted by ID — the
// drill-down behind a Table 2 row.
func ClusterReport(r *pacor.Result) string {
	cs := append([]pacor.ClusterResult(nil), r.Clusters...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID < cs[j].ID })
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-7s %-4s %-8s %-8s %-7s %-9s %s\n",
		"ID", "#Valves", "LM", "Matched", "Demoted", "Routed", "Length", "FullLens")
	for _, c := range cs {
		fmt.Fprintf(&b, "%-5d %-7d %-4v %-8v %-8v %-7v %-9d %v\n",
			c.ID, len(c.Valves), c.LM, c.Matched, c.Demoted, c.Routed,
			c.TotalLen(), c.FullLens)
	}
	return b.String()
}

// Validate is the post-route design-rule gate behind the property tests and
// the CI smoke jobs: pacor.Verify's channel rules (on-grid paths, no overlap
// across clusters, no channel on an obstacle or foreign valve, cluster
// connectivity to its pin) plus the pin-side rules Verify leaves to the
// escape stage — every routed cluster's pin is one of the design's candidate
// pins, no two routed clusters share a pin, and a nonempty escape channel
// actually ends on the cluster's pin. The hierarchical escape router is
// approximate (pin assignment and lengths may differ from the flat network),
// so these invariants, not byte-identity, are its correctness contract.
func Validate(d *valve.Design, r *pacor.Result) error {
	if err := pacor.Verify(d, r); err != nil {
		return err
	}
	candidate := make(map[geom.Pt]bool, len(d.Pins))
	for _, p := range d.Pins {
		candidate[p] = true
	}
	pinOwner := map[geom.Pt]int{}
	for i := range r.Clusters {
		c := &r.Clusters[i]
		if !c.Routed {
			continue
		}
		if !candidate[c.Pin] {
			return fmt.Errorf("cluster %d: pin %v is not a candidate control pin", c.ID, c.Pin)
		}
		if prev, used := pinOwner[c.Pin]; used {
			return fmt.Errorf("clusters %d and %d share pin %v", prev, c.ID, c.Pin)
		}
		pinOwner[c.Pin] = c.ID
		if n := len(c.Escape); n > 0 && c.Escape[n-1] != c.Pin {
			return fmt.Errorf("cluster %d: escape ends at %v, pin is %v", c.ID, c.Escape[n-1], c.Pin)
		}
	}
	return nil
}
