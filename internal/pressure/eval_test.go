package pressure

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/pacor"
	"repro/internal/valve"
)

func routedDesign(t *testing.T) (*valve.Design, *pacor.Result) {
	t.Helper()
	seq := func(s string) valve.Seq { q, _ := valve.ParseSeq(s); return q }
	d := &valve.Design{
		Name: "pe", W: 20, H: 20, Delta: 1,
		Valves: []valve.Valve{
			{ID: 0, Pos: geom.Pt{X: 4, Y: 6}, Seq: seq("01")},
			{ID: 1, Pos: geom.Pt{X: 10, Y: 9}, Seq: seq("01")},
			{ID: 2, Pos: geom.Pt{X: 15, Y: 14}, Seq: seq("10")},
		},
		LMClusters: [][]int{{0, 1}},
	}
	for x := 1; x < 19; x += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: x, Y: 0}, geom.Pt{X: x, Y: 19})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestEvaluateCluster(t *testing.T) {
	d, res := routedDesign(t)
	for i := range res.Clusters {
		c := &res.Clusters[i]
		if !c.Routed || len(c.Valves) < 2 {
			continue
		}
		arr, skew, err := EvaluateCluster(d, c, DefaultParams())
		if err != nil {
			t.Fatalf("cluster %d: %v", c.ID, err)
		}
		if len(arr) != len(c.Valves) {
			t.Errorf("cluster %d: %d arrivals for %d valves", c.ID, len(arr), len(c.Valves))
		}
		for cell, at := range arr {
			if math.IsInf(at, 1) || at < 0 {
				t.Errorf("cluster %d: valve %v never actuated (t=%v)", c.ID, cell, at)
			}
		}
		if c.Matched && skew > 60 {
			t.Errorf("cluster %d: matched but skew %.1f suspiciously large", c.ID, skew)
		}
	}
}

func TestEvaluateClusterUnrouted(t *testing.T) {
	d, res := routedDesign(t)
	c := res.Clusters[0]
	c.Routed = false
	if _, _, err := EvaluateCluster(d, &c, DefaultParams()); err == nil {
		t.Error("unrouted cluster must error")
	}
}

func TestEvaluateResult(t *testing.T) {
	d, res := routedDesign(t)
	skews, err := EvaluateResult(d, res, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, c := range res.Clusters {
		if c.Routed && len(c.Valves) >= 2 {
			multi++
			if _, ok := skews[c.ID]; !ok {
				t.Errorf("cluster %d missing from skew map", c.ID)
			}
		}
	}
	if len(skews) != multi {
		t.Errorf("skews for %d clusters, want %d", len(skews), multi)
	}
}

func TestSimulateHorizon(t *testing.T) {
	// A tiny horizon must report +Inf rather than hanging.
	nw, err := NewNetwork([]grid.Path{line(0, 30, 0)}, geom.Pt{X: 0, Y: 0},
		[]geom.Pt{{X: 30, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.MaxTime = 1
	arr := nw.Simulate(p)
	if !math.IsInf(arr[geom.Pt{X: 30, Y: 0}], 1) {
		t.Error("horizon-limited simulation should report Inf")
	}
}
