package pressure

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func line(x0, x1, y int) grid.Path {
	var p grid.Path
	for x := x0; x <= x1; x++ {
		p = append(p, geom.Pt{X: x, Y: y})
	}
	return p
}

func TestArrivalMonotoneInLength(t *testing.T) {
	// Longer channels actuate later — the core physical fact behind the
	// length-matching constraint.
	prev := 0.0
	for _, n := range []int{5, 10, 20, 40} {
		path := line(0, n, 0)
		nw, err := NewNetwork([]grid.Path{path}, geom.Pt{X: 0, Y: 0},
			[]geom.Pt{{X: n, Y: 0}})
		if err != nil {
			t.Fatal(err)
		}
		arr := nw.Simulate(DefaultParams())
		at := arr[geom.Pt{X: n, Y: 0}]
		if math.IsInf(at, 1) {
			t.Fatalf("length %d never actuated", n)
		}
		if at <= prev {
			t.Errorf("length %d arrival %.2f not greater than previous %.2f", n, at, prev)
		}
		prev = at
	}
}

func TestDiffusiveScaling(t *testing.T) {
	// RC lines are diffusive: doubling length should far more than double
	// the delay (t ~ L^2).
	at := func(n int) float64 {
		nw, err := NewNetwork([]grid.Path{line(0, n, 0)}, geom.Pt{X: 0, Y: 0},
			[]geom.Pt{{X: n, Y: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Simulate(DefaultParams())[geom.Pt{X: n, Y: 0}]
	}
	t10, t20 := at(10), at(20)
	if t20 < 3*t10 {
		t.Errorf("doubling length: %.2f -> %.2f, expected superlinear (>3x)", t10, t20)
	}
}

func TestEqualLengthsEqualArrival(t *testing.T) {
	// Symmetric Y: two equal arms from a tap actuate simultaneously.
	tap := geom.Pt{X: 10, Y: 5}
	armA := grid.Path{{X: 10, Y: 5}, {X: 9, Y: 5}, {X: 8, Y: 5}, {X: 7, Y: 5}}
	armB := grid.Path{{X: 10, Y: 5}, {X: 11, Y: 5}, {X: 12, Y: 5}, {X: 13, Y: 5}}
	feed := grid.Path{{X: 10, Y: 0}, {X: 10, Y: 1}, {X: 10, Y: 2}, {X: 10, Y: 3}, {X: 10, Y: 4}, {X: 10, Y: 5}}
	va := geom.Pt{X: 7, Y: 5}
	vb := geom.Pt{X: 13, Y: 5}
	nw, err := NewNetwork([]grid.Path{feed, armA, armB}, geom.Pt{X: 10, Y: 0}, []geom.Pt{va, vb})
	if err != nil {
		t.Fatal(err)
	}
	_ = tap
	arr := nw.Simulate(DefaultParams())
	if sk := Skew(arr); sk > 1e-9 {
		t.Errorf("symmetric arms skew %.4f, want 0", sk)
	}
}

func TestMismatchedArmsSkew(t *testing.T) {
	// Arms of length 3 vs 9 from the same tap: significant skew.
	feed := grid.Path{{X: 10, Y: 0}, {X: 10, Y: 1}, {X: 10, Y: 2}}
	short := line(7, 10, 2) // valve at (7,2), tap at (10,2)
	long := line(10, 19, 2) // valve at (19,2)
	va := geom.Pt{X: 7, Y: 2}
	vb := geom.Pt{X: 19, Y: 2}
	nw, err := NewNetwork([]grid.Path{feed, short, long}, geom.Pt{X: 10, Y: 0}, []geom.Pt{va, vb})
	if err != nil {
		t.Fatal(err)
	}
	arr := nw.Simulate(DefaultParams())
	if sk := Skew(arr); sk <= 1 {
		t.Errorf("mismatched arms skew %.4f, want substantial", sk)
	}
	if arr[va] >= arr[vb] {
		t.Error("short arm should actuate first")
	}
}

func TestNearMatchedSmallSkew(t *testing.T) {
	// delta = 1 mismatch (paper's threshold) gives far smaller skew than a
	// gross mismatch.
	mk := func(longLen int) float64 {
		feed := grid.Path{{X: 20, Y: 0}, {X: 20, Y: 1}, {X: 20, Y: 2}}
		short := line(12, 20, 2)
		long := line(20, 20+longLen, 2)
		nw, err := NewNetwork([]grid.Path{feed, short, long}, geom.Pt{X: 20, Y: 0},
			[]geom.Pt{{X: 12, Y: 2}, {X: 20 + longLen, Y: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return Skew(nw.Simulate(DefaultParams()))
	}
	matched := mk(9) // 8 vs 9: delta = 1
	gross := mk(24)  // 8 vs 24
	if !(matched < gross/4) {
		t.Errorf("delta-1 skew %.3f should be far below gross-mismatch skew %.3f", matched, gross)
	}
}

func TestSourceOffChannel(t *testing.T) {
	if _, err := NewNetwork([]grid.Path{line(0, 3, 0)}, geom.Pt{X: 9, Y: 9}, nil); err == nil {
		t.Error("off-channel source must error")
	}
	if _, err := NewNetwork([]grid.Path{line(0, 3, 0)}, geom.Pt{X: 0, Y: 0},
		[]geom.Pt{{X: 9, Y: 9}}); err == nil {
		t.Error("off-channel probe must error")
	}
}

func TestProbeAtSource(t *testing.T) {
	nw, err := NewNetwork([]grid.Path{line(0, 3, 0)}, geom.Pt{X: 0, Y: 0},
		[]geom.Pt{{X: 0, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	arr := nw.Simulate(DefaultParams())
	if arr[geom.Pt{X: 0, Y: 0}] != 0 {
		t.Error("probe at the source actuates immediately")
	}
}

func TestSkewHelpers(t *testing.T) {
	if Skew(map[geom.Pt]float64{}) != 0 {
		t.Error("empty skew should be 0")
	}
	if Skew(map[geom.Pt]float64{{X: 0, Y: 0}: 1, {X: 1, Y: 0}: 4}) != 3 {
		t.Error("skew = last - first")
	}
	if !math.IsInf(Skew(map[geom.Pt]float64{{X: 0, Y: 0}: math.Inf(1)}), 1) {
		t.Error("unactuated probe gives Inf skew")
	}
}

func TestNetworkSharedJunctionSize(t *testing.T) {
	// Two paths sharing a junction cell must merge it into one node.
	a := grid.Path{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	b := grid.Path{{X: 2, Y: 0}, {X: 2, Y: 1}, {X: 2, Y: 2}}
	nw, err := NewNetwork([]grid.Path{a, b}, geom.Pt{X: 0, Y: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 5 {
		t.Errorf("nodes = %d, want 5 (junction merged)", nw.Size())
	}
}
