package pressure

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/pacor"
	"repro/internal/valve"
)

// EvaluateCluster simulates pressure propagation over one routed cluster:
// the step is injected at its control pin and the per-valve actuation times
// are returned together with the worst-case skew. The cluster must be
// routed.
func EvaluateCluster(d *valve.Design, c *pacor.ClusterResult, params Params) (map[geom.Pt]float64, float64, error) {
	if !c.Routed {
		return nil, 0, fmt.Errorf("pressure: cluster %d is not routed", c.ID)
	}
	paths := append([]grid.Path{}, c.Paths...)
	if len(c.Escape) > 0 {
		paths = append(paths, c.Escape)
	}
	probes := make([]geom.Pt, len(c.Valves))
	for i, v := range c.Valves {
		probes[i] = d.Valves[v].Pos
	}
	nw, err := NewNetwork(paths, c.Pin, probes)
	if err != nil {
		return nil, 0, err
	}
	arr := nw.Simulate(params)
	return arr, Skew(arr), nil
}

// EvaluateResult simulates every routed multi-valve cluster of a flow result
// and returns the skew per cluster ID.
func EvaluateResult(d *valve.Design, r *pacor.Result, params Params) (map[int]float64, error) {
	out := map[int]float64{}
	for i := range r.Clusters {
		c := &r.Clusters[i]
		if !c.Routed || len(c.Valves) < 2 {
			continue
		}
		_, skew, err := EvaluateCluster(d, c, params)
		if err != nil {
			return nil, fmt.Errorf("cluster %d: %w", c.ID, err)
		}
		out[c.ID] = skew
	}
	return out, nil
}
