// Package pressure simulates pneumatic pressure propagation through routed
// control channels — the physical phenomenon motivating the paper's
// length-matching constraint ("pressure propagation is very slow from the
// control pin to the corresponding valve(s) through the control channel",
// Section 1). The paper measures channel lengths as a proxy for delay; this
// package closes the loop by actually simulating the propagation on the
// routed geometry, so tests and experiments can confirm that length-matched
// clusters switch simultaneously while unmatched ones do not.
//
// Model: a channel is a chain of unit cells, each an RC node of a discrete
// transmission line (PDMS channels behave diffusively at these scales).
// A pressure step is applied at the control pin; explicit-Euler diffusion
//
//	dP_i/dt = sum_{j adj i} (P_j - P_i) / (R*C)
//
// runs until every valve-end pressure crosses the actuation threshold.
// Channel branches (Steiner trees) are handled naturally: junction cells
// connect their incident segments, so downstream loading skews arrival
// times exactly as it would on-chip.
package pressure

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Params are the simulation constants. The defaults normalize R = C = 1 and
// actuate at 50% of the source pressure; only ratios of arrival times are
// meaningful.
type Params struct {
	RC        float64 // per-cell resistance*capacitance
	Threshold float64 // actuation threshold as a fraction of source pressure
	Dt        float64 // Euler step; must be < RC/4 for stability (degree <= 4)
	MaxTime   float64 // simulation horizon
}

// DefaultParams returns stable defaults.
func DefaultParams() Params {
	return Params{RC: 1, Threshold: 0.5, Dt: 0.125, MaxTime: 1e6}
}

// Network is the cell-level RC network of one cluster's channels.
type Network struct {
	nodes  map[geom.Pt]int
	adj    [][]int32
	source int
	probes map[geom.Pt]int // probe cells (valves) -> node
}

// NewNetwork builds the network from channel paths. Adjacency follows the
// channel topology: consecutive cells within a path connect; cells of
// different paths connect only where they share the same grid cell (a
// junction). source is the pressure injection cell (the control pin).
func NewNetwork(paths []grid.Path, source geom.Pt, probes []geom.Pt) (*Network, error) {
	nw := &Network{nodes: map[geom.Pt]int{}, probes: map[geom.Pt]int{}}
	node := func(c geom.Pt) int {
		if id, ok := nw.nodes[c]; ok {
			return id
		}
		id := len(nw.adj)
		nw.nodes[c] = id
		nw.adj = append(nw.adj, nil)
		return id
	}
	link := func(a, b int) {
		for _, x := range nw.adj[a] {
			if int(x) == b {
				return
			}
		}
		nw.adj[a] = append(nw.adj[a], int32(b))
		nw.adj[b] = append(nw.adj[b], int32(a))
	}
	for _, p := range paths {
		for i, c := range p {
			id := node(c)
			if i > 0 {
				link(nw.nodes[p[i-1]], id)
			}
		}
	}
	sid, ok := nw.nodes[source]
	if !ok {
		return nil, fmt.Errorf("pressure: source %v not on any channel", source)
	}
	nw.source = sid
	for _, pr := range probes {
		id, ok := nw.nodes[pr]
		if !ok {
			return nil, fmt.Errorf("pressure: probe %v not on any channel", pr)
		}
		nw.probes[pr] = id
	}
	return nw, nil
}

// Size returns the number of RC nodes.
func (nw *Network) Size() int { return len(nw.adj) }

// Simulate applies a unit pressure step at the source and returns, per probe
// cell, the time its pressure first crosses the threshold. Probes that never
// cross within MaxTime map to +Inf.
func (nw *Network) Simulate(params Params) map[geom.Pt]float64 {
	n := len(nw.adj)
	p := make([]float64, n)
	next := make([]float64, n)
	p[nw.source] = 1

	arrival := make(map[geom.Pt]float64, len(nw.probes))
	pending := len(nw.probes)
	for cell, id := range nw.probes {
		if id == nw.source {
			arrival[cell] = 0
			pending--
		} else {
			arrival[cell] = math.Inf(1)
		}
	}
	if pending == 0 {
		return arrival
	}
	k := params.Dt / params.RC
	for t := params.Dt; t <= params.MaxTime && pending > 0; t += params.Dt {
		for i := 0; i < n; i++ {
			acc := 0.0
			for _, j := range nw.adj[i] {
				acc += p[j] - p[i]
			}
			next[i] = p[i] + k*acc
		}
		next[nw.source] = 1 // pressure source holds the rail
		p, next = next, p
		for cell, id := range nw.probes {
			if math.IsInf(arrival[cell], 1) && p[id] >= params.Threshold {
				arrival[cell] = t
				pending--
			}
		}
	}
	return arrival
}

// Skew returns the worst-case arrival-time difference across the probe set
// (Inf when any probe never actuated).
func Skew(arrivals map[geom.Pt]float64) float64 {
	first, last := math.Inf(1), math.Inf(-1)
	for _, t := range arrivals {
		if math.IsInf(t, 1) {
			return math.Inf(1)
		}
		first = math.Min(first, t)
		last = math.Max(last, t)
	}
	if math.IsInf(first, 1) {
		return 0
	}
	return last - first
}
