package geom

import (
	"testing"
	"testing/quick"
)

func TestTRRFromPointContains(t *testing.T) {
	p := Pt{5, 5}
	trr := TRRFromPoint(p, 3)
	// Every point within Manhattan distance 3 must be inside, others outside.
	for x := 0; x <= 10; x++ {
		for y := 0; y <= 10; y++ {
			q := Pt{x, y}
			want := Dist(p, q) <= 3
			if got := trr.ContainsPt(q); got != want {
				t.Errorf("ContainsPt(%v) = %v, want %v", q, got, want)
			}
		}
	}
}

func TestTRRDistMatchesBruteForce(t *testing.T) {
	p := Pt{4, 4}
	trr := TRRFromPoint(p, 2)
	for x := -2; x <= 10; x++ {
		for y := -2; y <= 10; y++ {
			q := Pt{x, y}
			want := Dist(p, q) - 2
			if want < 0 {
				want = 0
			}
			if got := trr.Dist(q); got != want {
				t.Errorf("Dist(%v) = %d, want %d", q, got, want)
			}
		}
	}
}

func TestTRRFromArc(t *testing.T) {
	// Arc from (0,0) to (3,3) has slope +1.
	a, b := Pt{0, 0}, Pt{3, 3}
	trr := TRRFromArc(a, b, 0)
	for i := 0; i <= 3; i++ {
		if !trr.ContainsPt(Pt{i, i}) {
			t.Errorf("arc point (%d,%d) not in zero-radius TRR", i, i)
		}
	}
	if trr.ContainsPt(Pt{1, 0}) {
		t.Error("off-arc point inside zero-radius TRR")
	}
	dil := TRRFromArc(a, b, 1)
	if !dil.ContainsPt(Pt{1, 0}) || !dil.ContainsPt(Pt{4, 3}) {
		t.Error("dilated arc TRR missing adjacent point")
	}
}

func TestTRRFromArcPanicsOnNonArc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-arc segment")
		}
	}()
	TRRFromArc(Pt{0, 0}, Pt{2, 1}, 1)
}

func TestTRRIntersect(t *testing.T) {
	a := TRRFromPoint(Pt{0, 0}, 4)
	b := TRRFromPoint(Pt{4, 0}, 4)
	got := a.Intersect(b)
	// The intersection must contain exactly the points within distance 4 of
	// both centers.
	for x := -6; x <= 10; x++ {
		for y := -8; y <= 8; y++ {
			q := Pt{x, y}
			want := Dist(q, Pt{0, 0}) <= 4 && Dist(q, Pt{4, 0}) <= 4
			if in := got.ContainsPt(q); in != want {
				t.Errorf("intersect.ContainsPt(%v) = %v, want %v", q, in, want)
			}
		}
	}
}

func TestTRRDistTRR(t *testing.T) {
	a := TRRFromPoint(Pt{0, 0}, 1)
	b := TRRFromPoint(Pt{10, 0}, 2)
	if d := a.DistTRR(b); d != 7 {
		t.Errorf("DistTRR = %d, want 7", d)
	}
	c := TRRFromPoint(Pt{2, 0}, 2)
	if d := a.DistTRR(c); d != 0 {
		t.Errorf("overlapping DistTRR = %d, want 0", d)
	}
}

func TestDistTRRProperty(t *testing.T) {
	// DistTRR equals the minimum pairwise point distance (checked on small
	// random disks via their grid points).
	f := func(ax, ay, bx, by int8, ra, rb uint8) bool {
		pa := Pt{int(ax), int(ay)}
		pb := Pt{int(bx), int(by)}
		a := TRRFromPoint(pa, int(ra%5))
		b := TRRFromPoint(pb, int(rb%5))
		got := a.DistTRR(b)
		want := Dist(pa, pb) - int(ra%5) - int(rb%5)
		if want < 0 {
			want = 0
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridPoints(t *testing.T) {
	trr := TRRFromPoint(Pt{3, 3}, 1)
	pts := trr.GridPoints(0)
	// Manhattan disk of radius 1 has 5 grid points.
	if len(pts) != 5 {
		t.Fatalf("GridPoints returned %d points, want 5: %v", len(pts), pts)
	}
	seen := map[Pt]bool{}
	for _, p := range pts {
		if Dist(p, Pt{3, 3}) > 1 {
			t.Errorf("point %v outside disk", p)
		}
		if seen[p] {
			t.Errorf("duplicate point %v", p)
		}
		seen[p] = true
	}
	if lim := trr.GridPoints(2); len(lim) != 2 {
		t.Errorf("limited GridPoints returned %d, want 2", len(lim))
	}
}

func TestNearestGridPt(t *testing.T) {
	trr := TRRFromPoint(Pt{5, 5}, 2)
	// A point inside maps to itself.
	if p, ok := trr.NearestGridPt(Pt{5, 5}); !ok || p != (Pt{5, 5}) {
		t.Errorf("inside point: got %v ok=%v", p, ok)
	}
	// A far point maps to the closest boundary grid point.
	p, ok := trr.NearestGridPt(Pt{20, 5})
	if !ok {
		t.Fatalf("expected ok for nonempty TRR with grid points")
	}
	if Dist(p, Pt{5, 5}) > 2 {
		t.Errorf("nearest point %v outside TRR", p)
	}
	if got, want := Dist(p, Pt{20, 5}), trr.Dist(Pt{20, 5}); got != want {
		t.Errorf("nearest dist = %d, want %d", got, want)
	}
}

func TestNearestGridPtParity(t *testing.T) {
	// Degenerate TRR at half-grid position: midpoint of (0,0)-(1,0) in uv has
	// u=..; build by intersecting two odd-distance disks.
	a := TRRFromPoint(Pt{0, 0}, 0)
	b := TRRFromPoint(Pt{1, 0}, 1)
	seg := a.Intersect(b.Expand(0))
	if seg.Empty() {
		t.Skip("unexpected empty intersection")
	}
	p, _ := seg.NearestGridPt(Pt{0, 0})
	if Dist(p, Pt{0, 0}) > 1 {
		t.Errorf("parity fallback too far: %v", p)
	}
}

func TestCore(t *testing.T) {
	// The merging segment of two points at even distance: radius 2 disks
	// around (0,0) and (4,0) intersect in the arc x+y in [2,2]... compute.
	a := TRRFromPoint(Pt{0, 0}, 2)
	b := TRRFromPoint(Pt{4, 0}, 2)
	seg := a.Intersect(b)
	c0, c1 := seg.Core()
	// Core endpoints must be inside the region and at distance exactly 2 from
	// both centers.
	for _, c := range []Pt{c0, c1} {
		if Dist(c, Pt{0, 0}) != 2 || Dist(c, Pt{4, 0}) != 2 {
			t.Errorf("core endpoint %v not equidistant", c)
		}
	}
}
