// Package geom provides the Manhattan-plane geometry used throughout the
// PACOR flow: integer grid points, rectangles, Manhattan (45°-tilted)
// segments, and tilted rectangular regions (TRRs).
//
// TRRs are the workhorse of the deferred-merge embedding (DME) algorithm:
// the locus of points at Manhattan distance <= r from a Manhattan arc is a
// TRR, and in the rotated coordinate system (u, v) = (x+y, x-y) every TRR is
// an axis-aligned rectangle, so intersections reduce to interval arithmetic.
package geom

import "fmt"

// Pt is an integer point on the routing grid.
type Pt struct {
	X, Y int
}

// String implements fmt.Stringer.
func (p Pt) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p translated by q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// Dist returns the Manhattan distance between p and q.
func Dist(p, q Pt) int { return Abs(p.X-q.X) + Abs(p.Y-q.Y) }

// Abs returns the absolute value of x.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Rect is an axis-aligned integer rectangle, inclusive of its boundary:
// it contains every point p with MinX <= p.X <= MaxX and MinY <= p.Y <= MaxY.
// A Rect with MinX > MaxX or MinY > MaxY is empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// RectOf returns the bounding box of the two points.
func RectOf(p, q Pt) Rect {
	return Rect{Min(p.X, q.X), Min(p.Y, q.Y), Max(p.X, q.X), Max(p.Y, q.Y)}
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the number of columns spanned by r (0 when empty).
func (r Rect) Width() int {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX + 1
}

// Height returns the number of rows spanned by r (0 when empty).
func (r Rect) Height() int {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY + 1
}

// Area returns the number of grid points inside r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Intersect returns the common region of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: Max(r.MinX, s.MinX),
		MinY: Max(r.MinY, s.MinY),
		MaxX: Min(r.MaxX, s.MaxX),
		MaxY: Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s.
// Empty operands are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: Min(r.MinX, s.MinX),
		MinY: Min(r.MinY, s.MinY),
		MaxX: Max(r.MaxX, s.MaxX),
		MaxY: Max(r.MaxY, s.MaxY),
	}
}

// Expand grows r by d in every direction. Negative d shrinks it.
func (r Rect) Expand(d int) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// OverlapRatio computes the area of the overlap between r and s divided by
// the smaller of the two areas, as used in the Steiner-tree overlap cost
// (Eq. 4 of the paper). It returns 0 when either rectangle is empty.
func OverlapRatio(r, s Rect) float64 {
	if r.Empty() || s.Empty() {
		return 0
	}
	ov := r.Intersect(s)
	if ov.Empty() {
		return 0
	}
	den := Min(r.Area(), s.Area())
	if den == 0 {
		return 0
	}
	return float64(ov.Area()) / float64(den)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,%d]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
