package geom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTRRExpandContainment(t *testing.T) {
	f := func(x, y int8, r0, dr uint8) bool {
		base := TRRFromPoint(Pt{int(x), int(y)}, int(r0%8))
		grown := base.Expand(int(dr % 8))
		// Every point of the base region stays inside the grown one.
		for _, p := range base.GridPoints(64) {
			if !grown.ContainsPt(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTRRIntersectIsSetIntersection(t *testing.T) {
	f := func(ax, ay, bx, by int8, ra, rb uint8) bool {
		a := TRRFromPoint(Pt{int(ax % 16), int(ay % 16)}, int(ra%6))
		b := TRRFromPoint(Pt{int(bx % 16), int(by % 16)}, int(rb%6))
		inter := a.Intersect(b)
		for x := -24; x <= 24; x += 3 {
			for y := -24; y <= 24; y += 3 {
				p := Pt{x, y}
				want := a.ContainsPt(p) && b.ContainsPt(p)
				if inter.Empty() {
					if want {
						return false
					}
					continue
				}
				if inter.ContainsPt(p) != want {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTRRDistPanicsOnEmpty(t *testing.T) {
	empty := TRR{U0: 1, U1: 0, V0: 0, V1: 0}
	assertPanics(t, "Dist", func() { empty.Dist(Pt{0, 0}) })
	assertPanics(t, "DistTRR lhs", func() { empty.DistTRR(TRRFromPoint(Pt{0, 0}, 1)) })
	assertPanics(t, "DistTRR rhs", func() { TRRFromPoint(Pt{0, 0}, 1).DistTRR(empty) })
	assertPanics(t, "NearestGridPt", func() { empty.NearestGridPt(Pt{0, 0}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestTRRGridPointsEmpty(t *testing.T) {
	empty := TRR{U0: 1, U1: 0, V0: 0, V1: 0}
	if pts := empty.GridPoints(0); len(pts) != 0 {
		t.Errorf("empty TRR has %d grid points", len(pts))
	}
	// A parity-only region (all corners odd u+v) has no integer points.
	odd := TRR{U0: 1, U1: 1, V0: 0, V1: 0}
	if pts := odd.GridPoints(0); len(pts) != 0 {
		t.Errorf("odd-parity TRR has %d grid points: %v", len(pts), pts)
	}
}

func TestNearestGridPtOddRegion(t *testing.T) {
	// Region with no integer points: ok must be false and the result within
	// one unit of the region.
	odd := TRR{U0: 1, U1: 1, V0: 0, V1: 0}
	p, ok := odd.NearestGridPt(Pt{5, 5})
	if ok {
		t.Error("odd-parity region cannot contain a grid point")
	}
	if odd.Dist(p) > 1 {
		t.Errorf("fallback point %v too far from region", p)
	}
}

func TestTRRString(t *testing.T) {
	s := TRRFromPoint(Pt{1, 2}, 3).String()
	if !strings.Contains(s, "u:[") || !strings.Contains(s, "v:[") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(Pt{3, 4}.String(), "(3,4)") {
		t.Error("Pt.String wrong")
	}
	if !strings.Contains((Rect{1, 2, 3, 4}).String(), "[1,3]") {
		t.Error("Rect.String wrong")
	}
}

func TestCoreRoundTrip(t *testing.T) {
	// For a point TRR the core collapses to the point itself.
	p := Pt{7, 3}
	a, b := TRRFromPoint(p, 0).Core()
	if a != p || b != p {
		t.Errorf("point core = %v,%v", a, b)
	}
	// For an arc TRR the core endpoints reproduce the arc.
	arc := TRRFromArc(Pt{2, 2}, Pt{5, 5}, 0)
	c0, c1 := arc.Core()
	if !(c0 == Pt{2, 2} && c1 == Pt{5, 5}) && !(c0 == Pt{5, 5} && c1 == Pt{2, 2}) {
		t.Errorf("arc core = %v,%v", c0, c1)
	}
}
