package geom

import "fmt"

// TRR is a tilted rectangular region: the Minkowski sum of a Manhattan arc
// (a segment of slope +1 or -1, possibly degenerate to a point) with a
// Manhattan disk of a given radius. TRRs are closed under intersection and
// are exactly the merging regions produced by the DME algorithm.
//
// A TRR is represented in the rotated coordinates
//
//	u = x + y,  v = x - y
//
// where Manhattan distance becomes Chebyshev distance, so a TRR is the
// axis-aligned box [U0,U1] x [V0,V1]. A point (x, y) maps to (u, v) with
// u + v even iff x, y are integers; TRRs arising from integer points may have
// odd u+v corners ("half-grid" positions), which is precisely the Lemma 1
// rounding phenomenon — callers snap back to the grid when embedding.
type TRR struct {
	U0, U1, V0, V1 int
}

// TRRFromPoint returns the TRR consisting of all points at Manhattan distance
// at most r from p.
func TRRFromPoint(p Pt, r int) TRR {
	u, v := p.X+p.Y, p.X-p.Y
	return TRR{u - r, u + r, v - r, v + r}
}

// TRRFromArc returns the TRR of radius r around the Manhattan arc from a to
// b. The arc must have slope +-1 or be a point; otherwise TRRFromArc panics,
// because a general segment is not a Manhattan arc and its dilation is not a
// TRR.
func TRRFromArc(a, b Pt, r int) TRR {
	if Abs(a.X-b.X) != Abs(a.Y-b.Y) {
		panic(fmt.Sprintf("geom: segment %v-%v is not a Manhattan arc", a, b))
	}
	ua, va := a.X+a.Y, a.X-a.Y
	ub, vb := b.X+b.Y, b.X-b.Y
	return TRR{Min(ua, ub) - r, Max(ua, ub) + r, Min(va, vb) - r, Max(va, vb) + r}
}

// Empty reports whether t contains no points.
func (t TRR) Empty() bool { return t.U0 > t.U1 || t.V0 > t.V1 }

// Expand dilates t by Manhattan radius r (Minkowski sum with a disk).
func (t TRR) Expand(r int) TRR {
	return TRR{t.U0 - r, t.U1 + r, t.V0 - r, t.V1 + r}
}

// Intersect returns the intersection of two TRRs, itself a TRR.
func (t TRR) Intersect(s TRR) TRR {
	return TRR{
		U0: Max(t.U0, s.U0),
		U1: Min(t.U1, s.U1),
		V0: Max(t.V0, s.V0),
		V1: Min(t.V1, s.V1),
	}
}

// ContainsPt reports whether the grid point p lies inside t.
func (t TRR) ContainsPt(p Pt) bool {
	u, v := p.X+p.Y, p.X-p.Y
	return u >= t.U0 && u <= t.U1 && v >= t.V0 && v <= t.V1
}

// Dist returns the Manhattan distance from grid point p to the region t
// (0 when p is inside).
func (t TRR) Dist(p Pt) int {
	if t.Empty() {
		panic("geom: Dist on empty TRR")
	}
	u, v := p.X+p.Y, p.X-p.Y
	du := rangeDist(u, t.U0, t.U1)
	dv := rangeDist(v, t.V0, t.V1)
	// In (u,v) space Manhattan distance becomes Chebyshev distance, so the
	// distance to the box is the max of the per-axis deficits.
	return Max(du, dv)
}

// DistTRR returns the minimum Manhattan distance between the two regions
// (0 when they intersect).
func (t TRR) DistTRR(s TRR) int {
	if t.Empty() || s.Empty() {
		panic("geom: DistTRR on empty TRR")
	}
	du := gapDist(t.U0, t.U1, s.U0, s.U1)
	dv := gapDist(t.V0, t.V1, s.V0, s.V1)
	return Max(du, dv)
}

func rangeDist(x, lo, hi int) int {
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}

func gapDist(a0, a1, b0, b1 int) int {
	if a1 < b0 {
		return b0 - a1
	}
	if b1 < a0 {
		return a0 - b1
	}
	return 0
}

// GridPoints returns the integer grid points contained in t, up to max points
// (max <= 0 means no limit). Points are produced in deterministic scan order.
// Only (u, v) pairs with u+v even correspond to integer (x, y).
func (t TRR) GridPoints(max int) []Pt {
	var pts []Pt
	for u := t.U0; u <= t.U1; u++ {
		for v := t.V0; v <= t.V1; v++ {
			if (u+v)&1 != 0 { // only even u+v maps to an integer grid point
				continue
			}
			x := (u + v) / 2
			y := (u - v) / 2
			pts = append(pts, Pt{x, y})
			if max > 0 && len(pts) >= max {
				return pts
			}
		}
	}
	return pts
}

// NearestGridPt returns a grid point inside t closest (in Manhattan distance)
// to p. When t contains no grid point (possible only for degenerate TRRs
// whose corners all have odd u+v), it returns the nearest grid point to t and
// ok=false; the caller absorbs the +-1 rounding slack (Lemma 1).
func (t TRR) NearestGridPt(p Pt) (Pt, bool) {
	if t.Empty() {
		panic("geom: NearestGridPt on empty TRR")
	}
	u0, v0 := p.X+p.Y, p.X-p.Y
	u := clamp(u0, t.U0, t.U1)
	v := clamp(v0, t.V0, t.V1)
	if (u+v)&1 == 0 {
		return Pt{(u + v) / 2, (u - v) / 2}, true
	}
	// Parity mismatch: try the four unit moves that stay closest to (u,v),
	// preferring ones inside the box.
	best := Pt{}
	bestOK := false
	bestD := int(^uint(0) >> 1)
	for _, cand := range [][2]int{{u + 1, v}, {u - 1, v}, {u, v + 1}, {u, v - 1}} {
		cu, cv := cand[0], cand[1]
		if (cu+cv)&1 != 0 {
			continue
		}
		q := Pt{(cu + cv) / 2, (cu - cv) / 2}
		inside := cu >= t.U0 && cu <= t.U1 && cv >= t.V0 && cv <= t.V1
		d := Dist(p, q)
		if inside && (!bestOK || d < bestD) {
			best, bestOK, bestD = q, true, d
		} else if !bestOK && d < bestD {
			best, bestD = q, d
		}
	}
	if bestOK {
		return best, true
	}
	return best, false
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Core returns the two endpoints of the Manhattan-arc core of t when t is
// degenerate in one rotated axis (a true merging segment); otherwise it
// returns the corners of the box diagonal. For DME merging segments produced
// by exact-radius intersection the region is always an arc.
func (t TRR) Core() (Pt, Pt) {
	// Corners in (u,v): (U0,V0) and (U1,V1) map back to x=(u+v)/2, y=(u-v)/2.
	a := Pt{(t.U0 + t.V0) / 2, (t.U0 - t.V0) / 2}
	b := Pt{(t.U1 + t.V1) / 2, (t.U1 - t.V1) / 2}
	return a, b
}

// String implements fmt.Stringer.
func (t TRR) String() string {
	return fmt.Sprintf("TRR{u:[%d,%d] v:[%d,%d]}", t.U0, t.U1, t.V0, t.V1)
}
