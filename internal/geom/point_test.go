package geom

import (
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Pt
		want int
	}{
		{Pt{0, 0}, Pt{0, 0}, 0},
		{Pt{0, 0}, Pt{3, 4}, 7},
		{Pt{-2, 5}, Pt{1, 1}, 7},
		{Pt{10, 10}, Pt{10, 3}, 7},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := Dist(c.q, c.p); got != c.want {
			t.Errorf("Dist not symmetric for %v,%v", c.p, c.q)
		}
	}
}

func TestDistProperties(t *testing.T) {
	// Triangle inequality and identity.
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Pt{int(ax), int(ay)}
		b := Pt{int(bx), int(by)}
		c := Pt{int(cx), int(cy)}
		if Dist(a, a) != 0 {
			return false
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(Pt{3, 7}, Pt{1, 2})
	if r != (Rect{1, 2, 3, 7}) {
		t.Fatalf("RectOf = %v", r)
	}
	if r.Width() != 3 || r.Height() != 6 || r.Area() != 18 {
		t.Errorf("dims: w=%d h=%d a=%d", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(Pt{1, 2}) || !r.Contains(Pt{3, 7}) || r.Contains(Pt{0, 2}) {
		t.Error("Contains wrong on boundary")
	}
	if (Rect{2, 2, 1, 1}).Empty() != true {
		t.Error("inverted rect should be empty")
	}
	if (Rect{2, 2, 1, 1}).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 3, 8, 9}
	got := a.Intersect(b)
	if got != (Rect{2, 3, 4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	if u := a.Union(b); u != (Rect{0, 0, 8, 9}) {
		t.Errorf("Union = %v", u)
	}
	empty := Rect{5, 5, 1, 1}
	if u := empty.Union(a); u != a {
		t.Errorf("Union with empty = %v", u)
	}
	disjoint := Rect{10, 10, 12, 12}
	if !a.Intersect(disjoint).Empty() {
		t.Error("disjoint intersect should be empty")
	}
}

func TestOverlapRatio(t *testing.T) {
	a := Rect{0, 0, 3, 3} // 16 points
	b := Rect{0, 0, 3, 3}
	if got := OverlapRatio(a, b); got != 1.0 {
		t.Errorf("identical rects ratio = %v, want 1", got)
	}
	c := Rect{2, 2, 5, 5} // overlap [2,3]x[2,3] = 4 points; min area 16
	if got := OverlapRatio(a, c); got != 0.25 {
		t.Errorf("ratio = %v, want 0.25", got)
	}
	d := Rect{10, 10, 11, 11}
	if got := OverlapRatio(a, d); got != 0 {
		t.Errorf("disjoint ratio = %v, want 0", got)
	}
	if got := OverlapRatio(Rect{1, 1, 0, 0}, a); got != 0 {
		t.Errorf("empty ratio = %v, want 0", got)
	}
}

func TestOverlapRatioProperties(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 uint8) bool {
		a := Rect{int(x0), int(y0), int(x0) + int(w0), int(y0) + int(h0)}
		b := Rect{int(x1), int(y1), int(x1) + int(w1), int(y1) + int(h1)}
		r := OverlapRatio(a, b)
		return r >= 0 && r <= 1 && r == OverlapRatio(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 || Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Min/Max wrong")
	}
	if Abs(-7) != 7 || Abs(7) != 7 || Abs(0) != 0 {
		t.Error("Abs wrong")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{2, 2, 4, 4}
	if e := r.Expand(1); e != (Rect{1, 1, 5, 5}) {
		t.Errorf("Expand = %v", e)
	}
	if e := r.Expand(-2); !e.Empty() {
		t.Errorf("over-shrunk rect should be empty, got %v", e)
	}
}
