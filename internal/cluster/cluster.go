// Package cluster implements valve clustering for broadcast addressing (the
// "Valve clustering" stage of Figure 2). Valves connected to the same
// control pin must be pairwise compatible, so minimizing the number of
// control pins is a minimum clique partition of the valve compatibility
// graph — NP-complete [Garey & Johnson], so as in the paper a fast greedy
// max-clique heuristic is used, with a local improvement pass.
//
// Pre-specified length-matching clusters are preserved verbatim: they arrive
// from the designer, are validated upstream, and each becomes one cluster
// with the LM flag set.
package cluster

import (
	"sort"

	"repro/internal/mwcp"
	"repro/internal/valve"
)

// Cluster is a set of pairwise-compatible valves that will share one control
// pin.
type Cluster struct {
	ID     int
	Valves []int // valve IDs, sorted ascending
	LM     bool  // carries the length-matching constraint
}

// Result is the output of the clustering stage.
type Result struct {
	Clusters []Cluster
}

// MultiValve returns the number of clusters with at least two valves — the
// "#Clusters" column of Table 2.
func (r *Result) MultiValve() int {
	n := 0
	for _, c := range r.Clusters {
		if len(c.Valves) >= 2 {
			n++
		}
	}
	return n
}

// Partition clusters the design's valves. LM clusters are kept as given;
// remaining valves are partitioned into as few pairwise-compatible clusters
// as possible using repeated greedy maximum-clique extraction on the
// compatibility graph.
func Partition(d *valve.Design) *Result {
	adj := d.CompatGraph()
	n := len(d.Valves)
	assigned := make([]bool, n)

	res := &Result{}
	for _, lm := range d.LMClusters {
		ids := append([]int(nil), lm...)
		sort.Ints(ids)
		for _, id := range ids {
			assigned[id] = true
		}
		res.Clusters = append(res.Clusters, Cluster{ID: len(res.Clusters), Valves: ids, LM: true})
	}

	free := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !assigned[i] {
			free = append(free, i)
		}
	}
	for len(free) > 0 {
		clique := greedyClique(free, adj)
		clique = improveClique(clique, free, adj)
		sort.Ints(clique)
		res.Clusters = append(res.Clusters, Cluster{ID: len(res.Clusters), Valves: clique})
		inClique := make(map[int]bool, len(clique))
		for _, v := range clique {
			inClique[v] = true
		}
		next := free[:0]
		for _, v := range free {
			if !inClique[v] {
				next = append(next, v)
			}
		}
		free = next
	}
	return res
}

// greedyClique extracts a maximal clique from cand: seed with the highest-
// degree vertex (within cand), then repeatedly add the compatible vertex
// with the largest remaining candidate degree.
func greedyClique(cand []int, adj [][]bool) []int {
	if len(cand) == 0 {
		return nil
	}
	deg := make(map[int]int, len(cand))
	for _, v := range cand {
		for _, w := range cand {
			if v != w && adj[v][w] {
				deg[v]++
			}
		}
	}
	seed := cand[0]
	for _, v := range cand[1:] {
		if deg[v] > deg[seed] || (deg[v] == deg[seed] && v < seed) {
			seed = v
		}
	}
	clique := []int{seed}
	pool := make([]int, 0, len(cand))
	for _, v := range cand {
		if v != seed && adj[seed][v] {
			pool = append(pool, v)
		}
	}
	for len(pool) > 0 {
		// Pick the pool vertex with the largest degree within the pool.
		best, bestDeg := -1, -1
		for _, v := range pool {
			dv := 0
			for _, w := range pool {
				if v != w && adj[v][w] {
					dv++
				}
			}
			if dv > bestDeg || (dv == bestDeg && (best == -1 || v < best)) {
				best, bestDeg = v, dv
			}
		}
		clique = append(clique, best)
		next := pool[:0]
		for _, v := range pool {
			if v != best && adj[best][v] {
				next = append(next, v)
			}
		}
		pool = next
	}
	return clique
}

// improveClique tries single-vertex augmentation: any free vertex adjacent
// to the whole clique joins it. (greedyClique already returns a maximal
// clique within cand, but improveClique guards against ordering artifacts
// and keeps the invariant explicit.)
func improveClique(clique, cand []int, adj [][]bool) []int {
	in := make(map[int]bool, len(clique))
	for _, v := range clique {
		in[v] = true
	}
	for _, v := range cand {
		if in[v] {
			continue
		}
		ok := true
		for _, w := range clique {
			if !adj[v][w] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, v)
			in[v] = true
		}
	}
	return clique
}

// Verify checks that every cluster in r is pairwise compatible in d and that
// every valve appears in exactly one cluster. It returns false on any
// violation; used by tests and by the flow's internal assertions.
func Verify(d *valve.Design, r *Result) bool {
	seen := make(map[int]bool)
	for _, c := range r.Clusters {
		for _, v := range c.Valves {
			if v < 0 || v >= len(d.Valves) || seen[v] {
				return false
			}
			seen[v] = true
		}
		for i, v := range c.Valves {
			for _, w := range c.Valves[i+1:] {
				if !d.Valves[v].Compatible(d.Valves[w]) {
					return false
				}
			}
		}
	}
	return len(seen) == len(d.Valves)
}

// Split partitions a cluster into two halves (used by de-clustering when a
// cluster cannot be routed). Valves are split by position order to keep the
// halves spatially coherent. Splitting a singleton returns it unchanged.
func Split(d *valve.Design, c Cluster) []Cluster {
	if len(c.Valves) <= 1 {
		return []Cluster{c}
	}
	ids := append([]int(nil), c.Valves...)
	sort.Slice(ids, func(i, j int) bool {
		pi, pj := d.Valves[ids[i]].Pos, d.Valves[ids[j]].Pos
		if pi.X != pj.X {
			return pi.X < pj.X
		}
		if pi.Y != pj.Y {
			return pi.Y < pj.Y
		}
		return ids[i] < ids[j]
	})
	mid := len(ids) / 2
	a := append([]int(nil), ids[:mid]...)
	b := append([]int(nil), ids[mid:]...)
	sort.Ints(a)
	sort.Ints(b)
	return []Cluster{
		{ID: c.ID, Valves: a, LM: false},
		{ID: -1, Valves: b, LM: false},
	}
}

// PartitionExact is the slower sibling of Partition: each extraction step
// takes a true maximum clique of the remaining compatibility graph (via the
// exact branch-and-bound in internal/mwcp) instead of the greedy clique.
// Repeated maximum-clique extraction is still a heuristic for minimum clique
// partition (the problem is NP-complete), but it never produces more
// clusters than the greedy variant on the instances the flow sees. Intended
// for small-to-medium valve counts.
func PartitionExact(d *valve.Design) *Result {
	adj := d.CompatGraph()
	n := len(d.Valves)
	assigned := make([]bool, n)

	res := &Result{}
	for _, lm := range d.LMClusters {
		ids := append([]int(nil), lm...)
		sort.Ints(ids)
		for _, id := range ids {
			assigned[id] = true
		}
		res.Clusters = append(res.Clusters, Cluster{ID: len(res.Clusters), Valves: ids, LM: true})
	}
	free := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !assigned[i] {
			free = append(free, i)
		}
	}
	for len(free) > 0 {
		// Build the subgraph over the free valves with unit weights.
		g := mwcp.NewCliqueGraph(len(free))
		for a := 0; a < len(free); a++ {
			for b := a + 1; b < len(free); b++ {
				if adj[free[a]][free[b]] {
					g.AddEdge(a, b)
				}
			}
		}
		cliqueIdx, _ := mwcp.MaxWeightClique(g)
		clique := make([]int, len(cliqueIdx))
		for i, ci := range cliqueIdx {
			clique[i] = free[ci]
		}
		sort.Ints(clique)
		res.Clusters = append(res.Clusters, Cluster{ID: len(res.Clusters), Valves: clique})
		inClique := make(map[int]bool, len(clique))
		for _, v := range clique {
			inClique[v] = true
		}
		next := free[:0]
		for _, v := range free {
			if !inClique[v] {
				next = append(next, v)
			}
		}
		free = next
	}
	return res
}
