package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/valve"
)

func seq(t *testing.T, s string) valve.Seq {
	t.Helper()
	q, err := valve.ParseSeq(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func design(t *testing.T, seqs []string, lm [][]int) *valve.Design {
	t.Helper()
	d := &valve.Design{Name: "t", W: 50, H: 50, Delta: 1, LMClusters: lm,
		Pins: []geom.Pt{{X: 0, Y: 0}}}
	for i, s := range seqs {
		d.Valves = append(d.Valves, valve.Valve{
			ID: i, Pos: geom.Pt{X: 1 + i, Y: 1 + (i*3)%40}, Seq: seq(t, s)})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPartitionAllCompatible(t *testing.T) {
	d := design(t, []string{"0X0", "000", "0XX", "X00"}, nil)
	r := Partition(d)
	if len(r.Clusters) != 1 {
		t.Fatalf("got %d clusters, want 1: %+v", len(r.Clusters), r.Clusters)
	}
	if !Verify(d, r) {
		t.Error("Verify failed")
	}
}

func TestPartitionAllIncompatible(t *testing.T) {
	d := design(t, []string{"001", "010", "100", "111"}, nil)
	r := Partition(d)
	if len(r.Clusters) != 4 {
		t.Fatalf("got %d clusters, want 4", len(r.Clusters))
	}
	if !Verify(d, r) {
		t.Error("Verify failed")
	}
}

func TestPartitionPreservesLM(t *testing.T) {
	d := design(t, []string{"0X0", "000", "010", "0X0"}, [][]int{{0, 1}})
	r := Partition(d)
	if !r.Clusters[0].LM {
		t.Fatal("first cluster must be the LM cluster")
	}
	if len(r.Clusters[0].Valves) != 2 || r.Clusters[0].Valves[0] != 0 || r.Clusters[0].Valves[1] != 1 {
		t.Fatalf("LM cluster corrupted: %v", r.Clusters[0].Valves)
	}
	if !Verify(d, r) {
		t.Error("Verify failed")
	}
	// Valves 2, 3 are both compatible with each other? "010" vs "0X0": yes.
	total := 0
	for _, c := range r.Clusters {
		total += len(c.Valves)
	}
	if total != 4 {
		t.Errorf("valves covered = %d, want 4", total)
	}
}

func TestPartitionRandomInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := []byte{'0', '1', 'X'}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		seqs := make([]string, n)
		for i := range seqs {
			b := make([]byte, 6)
			for j := range b {
				b[j] = letters[rng.Intn(3)]
			}
			seqs[i] = string(b)
		}
		d := design(t, seqs, nil)
		r := Partition(d)
		if !Verify(d, r) {
			t.Fatalf("trial %d: invalid partition for %v", trial, seqs)
		}
	}
}

func TestPartitionMinimality(t *testing.T) {
	// Two disjoint compatibility groups must give exactly two clusters.
	d := design(t, []string{"00", "0X", "11", "X1"}, nil)
	r := Partition(d)
	if len(r.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2: %+v", len(r.Clusters), r.Clusters)
	}
}

func TestMultiValve(t *testing.T) {
	r := &Result{Clusters: []Cluster{
		{Valves: []int{0, 1}},
		{Valves: []int{2}},
		{Valves: []int{3, 4, 5}},
	}}
	if got := r.MultiValve(); got != 2 {
		t.Errorf("MultiValve = %d, want 2", got)
	}
}

func TestSplit(t *testing.T) {
	d := design(t, []string{"0", "0", "0", "0", "0"}, nil)
	c := Cluster{ID: 3, Valves: []int{0, 1, 2, 3, 4}}
	parts := Split(d, c)
	if len(parts) != 2 {
		t.Fatalf("Split returned %d parts", len(parts))
	}
	seen := map[int]bool{}
	for _, p := range parts {
		if p.LM {
			t.Error("split parts must drop the LM flag")
		}
		for _, v := range p.Valves {
			if seen[v] {
				t.Errorf("valve %d duplicated", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 5 {
		t.Errorf("split lost valves: %v", seen)
	}
	single := Cluster{ID: 1, Valves: []int{2}}
	if got := Split(d, single); len(got) != 1 || got[0].ID != 1 {
		t.Error("singleton split should be identity")
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	d := design(t, []string{"01", "10"}, nil)
	bad := &Result{Clusters: []Cluster{{Valves: []int{0, 1}}}}
	if Verify(d, bad) {
		t.Error("incompatible cluster accepted")
	}
	missing := &Result{Clusters: []Cluster{{Valves: []int{0}}}}
	if Verify(d, missing) {
		t.Error("partial cover accepted")
	}
	dup := &Result{Clusters: []Cluster{{Valves: []int{0}}, {Valves: []int{0, 1}}}}
	if Verify(d, dup) {
		t.Error("duplicate valve accepted")
	}
	oob := &Result{Clusters: []Cluster{{Valves: []int{0, 5}}}}
	if Verify(d, oob) {
		t.Error("out-of-range valve accepted")
	}
}

func TestPartitionExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	letters := []byte{'0', '1', 'X'}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(14)
		seqs := make([]string, n)
		for i := range seqs {
			b := make([]byte, 5)
			for j := range b {
				b[j] = letters[rng.Intn(3)]
			}
			seqs[i] = string(b)
		}
		d := design(t, seqs, nil)
		greedy := Partition(d)
		exact := PartitionExact(d)
		if !Verify(d, exact) {
			t.Fatalf("trial %d: exact partition invalid", trial)
		}
		if len(exact.Clusters) > len(greedy.Clusters) {
			t.Errorf("trial %d: exact %d clusters > greedy %d",
				trial, len(exact.Clusters), len(greedy.Clusters))
		}
	}
}

func TestPartitionExactPreservesLM(t *testing.T) {
	d := design(t, []string{"0X0", "000", "010", "0X0"}, [][]int{{0, 1}})
	r := PartitionExact(d)
	if !r.Clusters[0].LM || len(r.Clusters[0].Valves) != 2 {
		t.Fatal("LM cluster not preserved")
	}
	if !Verify(d, r) {
		t.Error("Verify failed")
	}
}
