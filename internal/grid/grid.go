// Package grid models the uniform control-layer routing grid of a flow-based
// microfluidic biochip. Grid cells are unit squares; the minimum channel
// width and spacing design rules are absorbed into the grid pitch, so design
// rules reduce to "at most one channel per cell" (the paper's Section 2).
//
// The package provides the obstacle map (ObsMap in Algorithm 1), the routing
// path model, and cell/index conversions shared by the A*, negotiation,
// escape, and detour routers.
package grid

import (
	"fmt"
	"math/bits"

	"repro/internal/geom"
)

// Grid is a W x H routing grid. Cells are addressed by geom.Pt with
// 0 <= X < W and 0 <= Y < H, or by the dense index Y*W + X.
type Grid struct {
	W, H int
}

// New returns a grid of the given dimensions. It panics when either
// dimension is not positive; an empty chip is a caller bug, not a routable
// instance.
func New(w, h int) Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	return Grid{W: w, H: h}
}

// In reports whether p lies on the grid.
func (g Grid) In(p geom.Pt) bool {
	return p.X >= 0 && p.X < g.W && p.Y >= 0 && p.Y < g.H
}

// Index returns the dense index of p.
func (g Grid) Index(p geom.Pt) int { return p.Y*g.W + p.X }

// Pt returns the point for a dense index.
func (g Grid) Pt(i int) geom.Pt { return geom.Pt{X: i % g.W, Y: i / g.W} }

// Cells returns the number of grid cells.
func (g Grid) Cells() int { return g.W * g.H }

// OnBoundary reports whether p is on the chip boundary (where control pins
// may be placed).
func (g Grid) OnBoundary(p geom.Pt) bool {
	return g.In(p) && (p.X == 0 || p.Y == 0 || p.X == g.W-1 || p.Y == g.H-1)
}

// Dirs are the four Manhattan unit moves in deterministic order.
var Dirs = [4]geom.Pt{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}}

// Neighbors appends the in-grid orthogonal neighbors of p to dst and returns
// it. dst is reused to avoid per-call allocation in routing inner loops.
//
//pacor:allow hotalloc fills a caller-provided buffer; callers pass cap-4 scratch that never regrows
func (g Grid) Neighbors(p geom.Pt, dst []geom.Pt) []geom.Pt {
	dst = dst[:0]
	for _, d := range Dirs {
		q := p.Add(d)
		if g.In(q) {
			dst = append(dst, q)
		}
	}
	return dst
}

// Bounds returns the grid extent as a rectangle.
func (g Grid) Bounds() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: g.W - 1, MaxY: g.H - 1}
}

// ObsMap is the boolean per-cell obstacle map used by every router
// (Algorithm 1, step 2). True means the cell is blocked.
type ObsMap struct {
	g     Grid
	block []bool
	// journal, while journaling is on, records every cell whose value
	// actually changed (index plus the overwritten value), so callers can
	// rewind the map to an earlier state in O(changes) instead of re-copying
	// all O(W·H) cells. The incremental negotiation router uses this to
	// rebuild its per-round scratch map, and the sequential scheduler to
	// discard task mutations between snapshot-equivalent runs.
	journal    []int32
	journaling bool
}

// journalEntry packs a cell index and its overwritten value into one int32:
// index<<1 | oldValue. Grids stay far below 2^30 cells in this domain.
func journalEntry(i int, old bool) int32 {
	v := int32(i) << 1
	if old {
		v |= 1
	}
	return v
}

// StartJournal begins recording value changes into buf (reused, truncated).
// Every Set/SetPath/SetRect/CopyFrom that flips a cell appends the cell and
// its previous value; RewindJournal undoes suffixes of the record. Journaling
// stays on until StopJournal. Starting a second journal on a map whose first
// is still active would silently drop undo information, so it panics; nested
// scopes share one journal via JournalLen marks instead.
func (m *ObsMap) StartJournal(buf []int32) {
	if m.journaling {
		panic("grid: StartJournal on a map that is already journaling")
	}
	m.journal = buf[:0]
	m.journaling = true
}

// Journaling reports whether a journal is active on the map.
func (m *ObsMap) Journaling() bool { return m.journaling }

// StopJournal stops recording and returns the journal buffer so the caller
// can keep it for reuse. The map's contents are left as they are.
func (m *ObsMap) StopJournal() []int32 {
	m.journaling = false
	j := m.journal
	m.journal = nil
	return j
}

// JournalLen returns the current journal length — a mark for RewindJournal.
func (m *ObsMap) JournalLen() int { return len(m.journal) }

// RewindJournal undoes every journaled change at position >= mark (newest
// first, so repeated flips of one cell restore correctly) and truncates the
// journal to mark. It panics when journaling is off; rewinding against a
// dropped record would silently corrupt the map.
func (m *ObsMap) RewindJournal(mark int) {
	if !m.journaling {
		panic("grid: RewindJournal without an active journal")
	}
	for i := len(m.journal) - 1; i >= mark; i-- {
		e := m.journal[i]
		m.block[e>>1] = e&1 != 0
	}
	m.journal = m.journal[:mark]
}

// record journals a value change of cell i when journaling is on.
func (m *ObsMap) record(i int, old bool) {
	if m.journaling {
		m.journal = append(m.journal, journalEntry(i, old)) //pacor:allow hotalloc amortized journal growth, buffer reused across rounds via StartJournal
	}
}

// NewObsMap returns an all-clear obstacle map for g.
func NewObsMap(g Grid) *ObsMap {
	return &ObsMap{g: g, block: make([]bool, g.Cells())}
}

// Grid returns the underlying grid.
func (m *ObsMap) Grid() Grid { return m.g }

// Blocked reports whether p is blocked. Off-grid points are blocked.
func (m *ObsMap) Blocked(p geom.Pt) bool {
	if !m.g.In(p) {
		return true
	}
	return m.block[m.g.Index(p)]
}

// Set marks p blocked (true) or clear (false). Off-grid points are ignored.
// Only actual value changes reach the journal.
func (m *ObsMap) Set(p geom.Pt, blocked bool) {
	if m.g.In(p) {
		i := m.g.Index(p)
		if m.block[i] != blocked {
			m.record(i, m.block[i])
			m.block[i] = blocked
		}
	}
}

// SetPath marks every cell of the path blocked or clear.
func (m *ObsMap) SetPath(path Path, blocked bool) {
	for _, p := range path {
		m.Set(p, blocked)
	}
}

// SetRect marks every cell in r blocked or clear.
func (m *ObsMap) SetRect(r geom.Rect, blocked bool) {
	rr := r.Intersect(m.g.Bounds())
	for y := rr.MinY; y <= rr.MaxY; y++ {
		for x := rr.MinX; x <= rr.MaxX; x++ {
			i := y*m.g.W + x
			if m.block[i] != blocked {
				m.record(i, m.block[i])
				m.block[i] = blocked
			}
		}
	}
}

// Bits serializes the blocked set into dst as a bitmap of ceil(cells/64)
// words (bit i set iff cell i is blocked) and returns it, reusing dst's
// capacity. The bitmap is a portable value snapshot: unlike the map itself it
// can be diffed word-wise (DiffBits) and persisted, which is how the
// cross-run negotiation seeding turns an obstacle-set delta into dirty cells.
//
//pacor:allow hotalloc grows the caller's snapshot buffer once; steady-state captures reuse it
func (m *ObsMap) Bits(dst []uint64) []uint64 {
	n := (len(m.block) + 63) / 64
	if cap(dst) < n {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
		clear(dst)
	}
	for i, b := range m.block {
		if b {
			dst[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return dst
}

// DiffBits calls mark for every cell index whose bit differs between a and b,
// in ascending cell order. The bitmaps must be the same length (it panics
// otherwise — a silent truncation would drop diff cells and unsoundly skip
// invalidation downstream).
func DiffBits(a, b []uint64, mark func(cell int)) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("grid: DiffBits length mismatch %d != %d", len(a), len(b)))
	}
	for wi := range a {
		d := a[wi] ^ b[wi]
		for d != 0 {
			mark(wi<<6 + bits.TrailingZeros64(d))
			d &= d - 1
		}
	}
}

// Count returns the number of blocked cells.
func (m *ObsMap) Count() int {
	n := 0
	for _, b := range m.block {
		if b {
			n++
		}
	}
	return n
}

// Clone returns an independent copy of the map.
//
//pacor:allow hotalloc clone constructs a fresh map by contract; hot paths use CopyFrom instead
func (m *ObsMap) Clone() *ObsMap {
	c := &ObsMap{g: m.g, block: make([]bool, len(m.block))}
	copy(c.block, m.block)
	return c
}

// CopyFrom overwrites m's contents with src's. Both maps must share the
// same grid dimensions. With an active journal, only differing cells are
// written (and journaled), so a rewind can restore the pre-copy state.
func (m *ObsMap) CopyFrom(src *ObsMap) {
	if m.g != src.g {
		panic("grid: CopyFrom between different grids")
	}
	if !m.journaling {
		copy(m.block, src.block)
		return
	}
	for i, v := range src.block {
		if m.block[i] != v {
			m.record(i, m.block[i])
			m.block[i] = v
		}
	}
}

// Path is a sequence of grid cells where consecutive cells are orthogonal
// neighbors. A path of k cells has channel length k-1 grid units.
type Path []geom.Pt

// Len returns the channel length of the path in grid units (edges, not
// cells). The empty path has length 0.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Valid reports whether consecutive cells are orthogonal unit steps and no
// cell repeats. Self-crossing channels would short-circuit pressure paths.
//
//pacor:allow hotalloc verification utility, runs per finished path, not per search step
func (p Path) Valid() bool {
	seen := make(map[geom.Pt]bool, len(p))
	for i, c := range p {
		if seen[c] {
			return false
		}
		seen[c] = true
		if i > 0 && geom.Dist(p[i-1], c) != 1 {
			return false
		}
	}
	return true
}

// ValidOn reports Valid plus that every cell is on g.
func (p Path) ValidOn(g Grid) bool {
	if !p.Valid() {
		return false
	}
	for _, c := range p {
		if !g.In(c) {
			return false
		}
	}
	return true
}

// Reverse returns the path traversed backwards.
//
//pacor:allow hotalloc returns a fresh path by contract
func (p Path) Reverse() Path {
	r := make(Path, len(p))
	for i, c := range p {
		r[len(p)-1-i] = c
	}
	return r
}

// Clone returns a copy of the path.
//
//pacor:allow hotalloc returns a fresh path by contract
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// BBox returns the bounding box of the path (empty rect for empty path).
func (p Path) BBox() geom.Rect {
	if len(p) == 0 {
		return geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	}
	r := geom.RectOf(p[0], p[0])
	for _, c := range p[1:] {
		r = r.Union(geom.RectOf(c, c))
	}
	return r
}

// Contains reports whether the path visits c.
func (p Path) Contains(c geom.Pt) bool {
	for _, q := range p {
		if q == c {
			return true
		}
	}
	return false
}
