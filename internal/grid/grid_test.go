package grid

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-size grid")
		}
	}()
	New(0, 5)
}

func TestIndexRoundTrip(t *testing.T) {
	g := New(7, 5)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			p := geom.Pt{X: x, Y: y}
			if got := g.Pt(g.Index(p)); got != p {
				t.Fatalf("round trip %v -> %v", p, got)
			}
		}
	}
	if g.Cells() != 35 {
		t.Errorf("Cells = %d", g.Cells())
	}
}

func TestInAndBoundary(t *testing.T) {
	g := New(4, 3)
	if !g.In(geom.Pt{X: 0, Y: 0}) || !g.In(geom.Pt{X: 3, Y: 2}) {
		t.Error("corners should be in grid")
	}
	if g.In(geom.Pt{X: 4, Y: 0}) || g.In(geom.Pt{X: 0, Y: -1}) {
		t.Error("out-of-range points reported in grid")
	}
	if !g.OnBoundary(geom.Pt{X: 0, Y: 1}) || !g.OnBoundary(geom.Pt{X: 2, Y: 2}) {
		t.Error("boundary points not detected")
	}
	if g.OnBoundary(geom.Pt{X: 1, Y: 1}) {
		t.Error("interior point reported on boundary")
	}
	if g.OnBoundary(geom.Pt{X: -1, Y: 0}) {
		t.Error("off-grid point reported on boundary")
	}
}

func TestNeighbors(t *testing.T) {
	g := New(3, 3)
	var buf []geom.Pt
	buf = g.Neighbors(geom.Pt{X: 1, Y: 1}, buf)
	if len(buf) != 4 {
		t.Errorf("center neighbors = %d, want 4", len(buf))
	}
	buf = g.Neighbors(geom.Pt{X: 0, Y: 0}, buf)
	if len(buf) != 2 {
		t.Errorf("corner neighbors = %d, want 2", len(buf))
	}
	buf = g.Neighbors(geom.Pt{X: 1, Y: 0}, buf)
	if len(buf) != 3 {
		t.Errorf("edge neighbors = %d, want 3", len(buf))
	}
}

func TestObsMap(t *testing.T) {
	g := New(10, 10)
	m := NewObsMap(g)
	p := geom.Pt{X: 3, Y: 4}
	if m.Blocked(p) {
		t.Error("fresh map should be clear")
	}
	m.Set(p, true)
	if !m.Blocked(p) {
		t.Error("Set did not block")
	}
	if m.Count() != 1 {
		t.Errorf("Count = %d", m.Count())
	}
	m.Set(p, false)
	if m.Blocked(p) || m.Count() != 0 {
		t.Error("clear failed")
	}
	if !m.Blocked(geom.Pt{X: -1, Y: 0}) {
		t.Error("off-grid must read blocked")
	}
	m.Set(geom.Pt{X: 99, Y: 99}, true) // must not panic
}

func TestObsMapRectAndClone(t *testing.T) {
	g := New(8, 8)
	m := NewObsMap(g)
	m.SetRect(geom.Rect{MinX: 2, MinY: 2, MaxX: 4, MaxY: 3}, true)
	if m.Count() != 6 {
		t.Errorf("rect count = %d, want 6", m.Count())
	}
	c := m.Clone()
	c.Set(geom.Pt{X: 0, Y: 0}, true)
	if m.Blocked(geom.Pt{X: 0, Y: 0}) {
		t.Error("clone aliases original")
	}
	// Rect partially off-grid clips quietly.
	m.SetRect(geom.Rect{MinX: 6, MinY: 6, MaxX: 12, MaxY: 12}, true)
	if !m.Blocked(geom.Pt{X: 7, Y: 7}) {
		t.Error("clipped rect not applied")
	}
}

func TestPathValidity(t *testing.T) {
	ok := Path{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}
	if !ok.Valid() || ok.Len() != 2 {
		t.Error("valid path rejected")
	}
	jump := Path{{X: 0, Y: 0}, {X: 2, Y: 0}}
	if jump.Valid() {
		t.Error("non-unit step accepted")
	}
	diag := Path{{X: 0, Y: 0}, {X: 1, Y: 1}}
	if diag.Valid() {
		t.Error("diagonal step accepted")
	}
	loop := Path{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: 0, Y: 0}}
	if loop.Valid() {
		t.Error("self-crossing path accepted")
	}
	var empty Path
	if !empty.Valid() || empty.Len() != 0 {
		t.Error("empty path should be trivially valid with length 0")
	}
}

func TestPathValidOn(t *testing.T) {
	g := New(2, 2)
	p := Path{{X: 0, Y: 0}, {X: 0, Y: 1}}
	if !p.ValidOn(g) {
		t.Error("in-grid path rejected")
	}
	q := Path{{X: 1, Y: 1}, {X: 2, Y: 1}}
	if q.ValidOn(g) {
		t.Error("off-grid path accepted")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}
	r := p.Reverse()
	if r[0] != (geom.Pt{X: 1, Y: 1}) || r[2] != (geom.Pt{X: 0, Y: 0}) {
		t.Errorf("Reverse = %v", r)
	}
	if !r.Valid() {
		t.Error("reversed path invalid")
	}
	c := p.Clone()
	c[0] = geom.Pt{X: 9, Y: 9}
	if p[0] == c[0] {
		t.Error("Clone aliases")
	}
	bb := p.BBox()
	if bb != (geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
		t.Errorf("BBox = %v", bb)
	}
	if !p.Contains(geom.Pt{X: 1, Y: 0}) || p.Contains(geom.Pt{X: 2, Y: 2}) {
		t.Error("Contains wrong")
	}
	var empty Path
	if !empty.BBox().Empty() {
		t.Error("empty path BBox should be empty")
	}
}

func TestPathReverseProperty(t *testing.T) {
	f := func(steps []bool) bool {
		p := Path{{X: 0, Y: 0}}
		cur := geom.Pt{X: 0, Y: 0}
		for _, s := range steps {
			if s {
				cur = cur.Add(geom.Pt{X: 1, Y: 0})
			} else {
				cur = cur.Add(geom.Pt{X: 0, Y: 1})
			}
			p = append(p, cur)
		}
		rr := p.Reverse().Reverse()
		if len(rr) != len(p) {
			return false
		}
		for i := range p {
			if rr[i] != p[i] {
				return false
			}
		}
		return p.Len() == len(steps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
