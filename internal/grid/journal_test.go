package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestJournalRewindRestoresChanges(t *testing.T) {
	g := New(6, 6)
	m := NewObsMap(g)
	m.Set(geom.Pt{X: 1, Y: 1}, true)

	m.StartJournal(nil)
	if !m.Journaling() {
		t.Fatal("Journaling false after StartJournal")
	}
	m.Set(geom.Pt{X: 2, Y: 2}, true)
	m.Set(geom.Pt{X: 1, Y: 1}, false)
	m.SetPath(Path{{X: 0, Y: 0}, {X: 0, Y: 1}}, true)
	m.RewindJournal(0)
	if m.Count() != 1 || !m.Blocked(geom.Pt{X: 1, Y: 1}) {
		t.Fatalf("rewind did not restore the original map: count=%d", m.Count())
	}
	m.StopJournal()
	if m.Journaling() {
		t.Fatal("Journaling true after StopJournal")
	}
}

func TestJournalRecordsOnlyValueChanges(t *testing.T) {
	g := New(4, 4)
	m := NewObsMap(g)
	m.Set(geom.Pt{X: 0, Y: 0}, true)
	m.StartJournal(nil)
	m.Set(geom.Pt{X: 0, Y: 0}, true)  // no-op: already blocked
	m.Set(geom.Pt{X: 1, Y: 1}, false) // no-op: already clear
	m.Set(geom.Pt{X: -3, Y: 0}, true) // no-op: off grid
	if m.JournalLen() != 0 {
		t.Fatalf("no-op sets journaled %d entries", m.JournalLen())
	}
	m.Set(geom.Pt{X: 1, Y: 1}, true)
	if m.JournalLen() != 1 {
		t.Fatalf("JournalLen = %d after one change", m.JournalLen())
	}
	m.StopJournal()
}

func TestJournalNestedMarks(t *testing.T) {
	g := New(5, 5)
	m := NewObsMap(g)
	m.StartJournal(nil)
	m.Set(geom.Pt{X: 0, Y: 0}, true) // outer scope
	mark := m.JournalLen()
	m.Set(geom.Pt{X: 1, Y: 0}, true) // inner scope
	m.Set(geom.Pt{X: 0, Y: 0}, false)
	m.Set(geom.Pt{X: 0, Y: 0}, true) // repeated flips of one cell
	m.RewindJournal(mark)
	if m.Blocked(geom.Pt{X: 1, Y: 0}) {
		t.Error("inner change survived the rewind")
	}
	if !m.Blocked(geom.Pt{X: 0, Y: 0}) {
		t.Error("outer change lost by the inner rewind")
	}
	m.RewindJournal(0)
	if m.Count() != 0 {
		t.Errorf("full rewind left %d blocked cells", m.Count())
	}
	m.StopJournal()
}

func TestJournalCopyFromRecordsDiffs(t *testing.T) {
	g := New(4, 4)
	m := NewObsMap(g)
	m.Set(geom.Pt{X: 0, Y: 0}, true)
	src := NewObsMap(g)
	src.Set(geom.Pt{X: 3, Y: 3}, true)

	m.StartJournal(nil)
	m.CopyFrom(src)
	if m.JournalLen() != 2 {
		t.Fatalf("CopyFrom journaled %d entries, want 2 (one per differing cell)", m.JournalLen())
	}
	m.RewindJournal(0)
	if !m.Blocked(geom.Pt{X: 0, Y: 0}) || m.Blocked(geom.Pt{X: 3, Y: 3}) {
		t.Fatal("rewind did not undo CopyFrom")
	}
	m.StopJournal()
}

func TestJournalBufferReuse(t *testing.T) {
	g := New(4, 4)
	m := NewObsMap(g)
	m.StartJournal(nil)
	m.Set(geom.Pt{X: 1, Y: 1}, true)
	buf := m.StopJournal()
	if len(buf) != 1 {
		t.Fatalf("returned buffer has %d entries", len(buf))
	}
	m.StartJournal(buf) // reuse: must truncate, not replay
	if m.JournalLen() != 0 {
		t.Fatalf("reused buffer not truncated: len %d", m.JournalLen())
	}
	m.StopJournal()
}

func TestStartJournalPanicsWhenActive(t *testing.T) {
	m := NewObsMap(New(3, 3))
	m.StartJournal(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("nested StartJournal must panic")
		}
	}()
	m.StartJournal(nil)
}

func TestRewindJournalPanicsWithoutJournal(t *testing.T) {
	m := NewObsMap(New(3, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("RewindJournal without a journal must panic")
		}
	}()
	m.RewindJournal(0)
}

// TestJournalRandomizedRoundTrip: any interleaving of Set/SetPath/SetRect/
// CopyFrom under a journal rewinds back to the starting map exactly.
func TestJournalRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := New(12, 12)
	for trial := 0; trial < 50; trial++ {
		m := NewObsMap(g)
		for i := 0; i < 30; i++ {
			m.Set(geom.Pt{X: rng.Intn(12), Y: rng.Intn(12)}, rng.Intn(2) == 0)
		}
		want := m.Clone()
		other := NewObsMap(g)
		for i := 0; i < 20; i++ {
			other.Set(geom.Pt{X: rng.Intn(12), Y: rng.Intn(12)}, true)
		}

		m.StartJournal(nil)
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0:
				m.Set(geom.Pt{X: rng.Intn(12), Y: rng.Intn(12)}, rng.Intn(2) == 0)
			case 1:
				a := geom.Pt{X: rng.Intn(12), Y: rng.Intn(12)}
				m.SetPath(Path{a, {X: a.X, Y: (a.Y + 1) % 12}}, rng.Intn(2) == 0)
			case 2:
				r := geom.RectOf(
					geom.Pt{X: rng.Intn(12), Y: rng.Intn(12)},
					geom.Pt{X: rng.Intn(12), Y: rng.Intn(12)})
				m.SetRect(r, rng.Intn(2) == 0)
			case 3:
				m.CopyFrom(other)
			}
		}
		m.RewindJournal(0)
		m.StopJournal()
		for i := 0; i < g.Cells(); i++ {
			p := g.Pt(i)
			if m.Blocked(p) != want.Blocked(p) {
				t.Fatalf("trial %d: cell %v differs after rewind", trial, p)
			}
		}
	}
}
