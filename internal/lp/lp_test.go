package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  -> x=4, y=0, obj 12.
	p := &Problem{
		C: []float64{3, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Op: LE, RHS: 4},
			{Coef: []float64{1, 3}, Op: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Obj, 12) {
		t.Fatalf("got %v obj=%v, want optimal 12 (x=%v)", s.Status, s.Obj, s.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj 8/3.
	p := &Problem{
		C: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{2, 1}, Op: LE, RHS: 4},
			{Coef: []float64{1, 2}, Op: LE, RHS: 4},
		},
	}
	s := solveOK(t, p)
	if !approx(s.Obj, 8.0/3) {
		t.Fatalf("obj = %v, want 8/3", s.Obj)
	}
	if !approx(s.X[0], 4.0/3) || !approx(s.X[1], 4.0/3) {
		t.Errorf("x = %v", s.X)
	}
}

func TestEquality(t *testing.T) {
	// max x + 2y s.t. x + y == 3, y <= 2 -> x=1,y=2, obj 5.
	p := &Problem{
		C: []float64{1, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Op: EQ, RHS: 3},
			{Coef: []float64{0, 1}, Op: LE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if !approx(s.Obj, 5) {
		t.Fatalf("obj = %v want 5, x=%v", s.Obj, s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min x+y s.t. x + 2y >= 4, 3x + y >= 6 (max of negative).
	// Optimum at intersection x=8/5, y=6/5, min = 14/5.
	p := &Problem{
		C: []float64{-1, -1},
		Constraints: []Constraint{
			{Coef: []float64{1, 2}, Op: GE, RHS: 4},
			{Coef: []float64{3, 1}, Op: GE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(-s.Obj, 14.0/5) {
		t.Fatalf("min = %v, want 2.8 (x=%v)", -s.Obj, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		C: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Op: GE, RHS: 5},
			{Coef: []float64{1}, Op: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		C: []float64{1, 0},
		Constraints: []Constraint{
			{Coef: []float64{0, 1}, Op: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestUpperBounds(t *testing.T) {
	// max x + y with x,y in [0,1], x + y <= 1.5 -> 1.5.
	p := &Problem{
		C:     []float64{1, 1},
		Upper: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Op: LE, RHS: 1.5},
		},
	}
	s := solveOK(t, p)
	if !approx(s.Obj, 1.5) {
		t.Fatalf("obj = %v, want 1.5", s.Obj)
	}
	for j, v := range s.X {
		if v < -1e-9 || v > 1+1e-9 {
			t.Errorf("x[%d] = %v out of bounds", j, v)
		}
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2  means x >= 2; max -x -> x = 2.
	p := &Problem{
		C: []float64{-1},
		Constraints: []Constraint{
			{Coef: []float64{-1}, Op: LE, RHS: -2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.X[0], 2) {
		t.Fatalf("x = %v status=%v, want x=2", s.X, s.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP (Beale-like): must terminate via Bland's rule.
	p := &Problem{
		C: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coef: []float64{0.25, -60, -0.04, 9}, Op: LE, RHS: 0},
			{Coef: []float64{0.5, -90, -0.02, 3}, Op: LE, RHS: 0},
			{Coef: []float64{0, 0, 1, 0}, Op: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Obj, 0.05) {
		t.Fatalf("obj = %v status=%v, want 0.05", s.Obj, s.Status)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Feasibility-only problem: any feasible point is optimal with obj 0.
	p := &Problem{
		C: []float64{0, 0},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coef: []float64{1, -1}, Op: EQ, RHS: 0},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.X[0], 1) || !approx(s.X[1], 1) {
		t.Fatalf("x = %v, want (1,1)", s.X)
	}
}

func TestNoVariables(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("expected error for empty problem")
	}
}

func TestBadConstraintWidth(t *testing.T) {
	p := &Problem{C: []float64{1}, Constraints: []Constraint{{Coef: []float64{1, 2}, Op: LE, RHS: 1}}}
	if _, err := Solve(p); err == nil {
		t.Error("expected error for mis-sized constraint")
	}
}

// TestRandomVsBruteForce cross-checks the simplex against vertex enumeration
// on random small LPs with bounded boxes (so the optimum is at a box/plane
// vertex found by dense sampling of the 0/1 corners plus constraint planes;
// here we simply compare against a fine grid search, adequate for 2 vars).
func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		c := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		a1 := []float64{rng.Float64() * 2, rng.Float64() * 2}
		a2 := []float64{rng.Float64() * 2, rng.Float64() * 2}
		b1 := 1 + rng.Float64()*3
		b2 := 1 + rng.Float64()*3
		p := &Problem{
			C:     c,
			Upper: []float64{3, 3},
			Constraints: []Constraint{
				{Coef: a1, Op: LE, RHS: b1},
				{Coef: a2, Op: LE, RHS: b2},
			},
		}
		s := solveOK(t, p)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		// Grid search.
		best := math.Inf(-1)
		const steps = 300
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := 3 * float64(i) / steps
				y := 3 * float64(j) / steps
				if a1[0]*x+a1[1]*y <= b1+1e-9 && a2[0]*x+a2[1]*y <= b2+1e-9 {
					v := c[0]*x + c[1]*y
					if v > best {
						best = v
					}
				}
			}
		}
		if s.Obj < best-1e-2 {
			t.Errorf("trial %d: simplex obj %v below grid best %v", trial, s.Obj, best)
		}
		if s.Obj > best+0.1 {
			t.Errorf("trial %d: simplex obj %v unreasonably above grid best %v", trial, s.Obj, best)
		}
		// Verify feasibility of the returned point.
		x, y := s.X[0], s.X[1]
		if a1[0]*x+a1[1]*y > b1+1e-6 || a2[0]*x+a2[1]*y > b2+1e-6 ||
			x < -1e-9 || y < -1e-9 || x > 3+1e-9 || y > 3+1e-9 {
			t.Errorf("trial %d: infeasible solution %v", trial, s.X)
		}
	}
}
