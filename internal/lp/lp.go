// Package lp implements a dense two-phase primal simplex solver for linear
// programs. The paper's PACOR implementation delegates its ILP and LP
// sub-problems to the proprietary Gurobi optimizer [28]; this package (with
// internal/ilp on top) is the stdlib-only replacement. The instances PACOR
// generates — candidate-Steiner-tree selection MWCPs — are small (hundreds
// of variables), so a dense tableau with Bland anti-cycling is fast enough
// and, being exact, returns the same optima Gurobi would.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

// Constraint is a single linear constraint sum_j Coef[j]*x[j] Op RHS.
// Coef must have exactly NumVars entries (dense).
type Constraint struct {
	Coef []float64
	Op   Op
	RHS  float64
}

// Problem is a linear program: maximize C·x subject to the constraints and
// x >= 0. Variable upper bounds, when finite, are appended as constraints by
// the solver. Minimization is done by negating C.
type Problem struct {
	C           []float64
	Constraints []Constraint
	// Upper holds per-variable upper bounds; nil or +Inf entries mean
	// unbounded above. All variables are implicitly >= 0.
	Upper []float64
}

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("lp.Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // variable values (valid when Status == Optimal)
	Obj    float64   // objective value C·X
}

const eps = 1e-9

// maxPivots bounds simplex iterations; Bland's rule guarantees termination,
// the cap is a defense against numerical stalls on malformed input.
const maxPivots = 200000

// Solve runs the two-phase simplex algorithm on p.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.C)
	if n == 0 {
		return nil, errors.New("lp: problem has no variables")
	}
	cons := make([]Constraint, 0, len(p.Constraints)+n)
	for _, c := range p.Constraints {
		if len(c.Coef) != n {
			return nil, fmt.Errorf("lp: constraint has %d coefficients, want %d", len(c.Coef), n)
		}
		cons = append(cons, c)
	}
	for j, u := range p.Upper {
		if j >= n {
			return nil, fmt.Errorf("lp: upper bound for unknown variable %d", j)
		}
		if !math.IsInf(u, 1) {
			coef := make([]float64, n)
			coef[j] = 1
			cons = append(cons, Constraint{Coef: coef, Op: LE, RHS: u})
		}
	}
	t := newTableau(n, cons)
	// Phase 1: drive artificials out.
	if t.nArt > 0 {
		t.setPhase1Objective()
		if err := t.iterate(); err != nil {
			return nil, err
		}
		if t.objValue() < -eps {
			return &Solution{Status: Infeasible}, nil
		}
		if err := t.expelArtificials(); err != nil {
			return nil, err
		}
	}
	// Phase 2: the real objective.
	t.setObjective(p.C)
	if err := t.iterate(); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	x := t.extract(n)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is the dense simplex tableau in canonical (basis-identity) form.
// Columns: structural vars, then slack/surplus vars, then artificials, then
// the RHS column implicitly stored in rhs.
type tableau struct {
	m, n    int // constraints, structural variables
	nSlack  int
	nArt    int
	cols    int // n + nSlack + nArt
	a       [][]float64
	rhs     []float64
	basis   []int     // basis[i] = column basic in row i
	obj     []float64 // current objective coefficients over all columns
	artBase int       // first artificial column index
	phase1  bool
}

func newTableau(n int, cons []Constraint) *tableau {
	m := len(cons)
	t := &tableau{m: m, n: n}
	// Count slacks and artificials.
	for _, c := range cons {
		rhs := c.RHS
		op := c.Op
		if rhs < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			t.nSlack++
		case GE:
			t.nSlack++
			t.nArt++
		case EQ:
			t.nArt++
		}
	}
	t.cols = n + t.nSlack + t.nArt
	t.artBase = n + t.nSlack
	t.a = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)
	slack := n
	art := t.artBase
	for i, c := range cons {
		row := make([]float64, t.cols)
		rhs := c.RHS
		sign := 1.0
		op := c.Op
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			op = flip(op)
		}
		for j, v := range c.Coef {
			row[j] = sign * v
		}
		switch op {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
		t.a[i] = row
		t.rhs[i] = rhs
	}
	return t
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// setPhase1Objective sets maximize -(sum of artificials), priced out against
// the current (artificial) basis.
func (t *tableau) setPhase1Objective() {
	t.phase1 = true
	t.obj = make([]float64, t.cols)
	for j := t.artBase; j < t.cols; j++ {
		t.obj[j] = -1
	}
}

// setObjective installs the phase-2 objective (maximize c over structural
// variables; artificials get -inf-like exclusion by forcing coefficient far
// negative so they never re-enter).
func (t *tableau) setObjective(c []float64) {
	t.phase1 = false
	t.obj = make([]float64, t.cols)
	copy(t.obj, c)
	for j := t.artBase; j < t.cols; j++ {
		t.obj[j] = math.Inf(-1) // never re-enter
	}
}

// reducedCost returns c_j - c_B * column_j given the canonical tableau.
func (t *tableau) reducedCost(j int) float64 {
	r := t.obj[j]
	if math.IsInf(r, -1) {
		return math.Inf(-1)
	}
	for i := 0; i < t.m; i++ {
		cb := t.obj[t.basis[i]]
		// A basic artificial surviving into phase 2 sits at value 0 in a
		// redundant row; treat its cost as 0 rather than -inf.
		//pacor:allow floateq exact check against assigned sentinel costs, never computed values
		if cb != 0 && !math.IsInf(cb, -1) {
			r -= cb * t.a[i][j]
		}
	}
	return r
}

func (t *tableau) objValue() float64 {
	v := 0.0
	for i := 0; i < t.m; i++ {
		cb := t.obj[t.basis[i]]
		if math.IsInf(cb, -1) {
			continue
		}
		v += cb * t.rhs[i]
	}
	return v
}

// iterate runs simplex pivots until optimality (no positive reduced cost),
// returning errUnbounded when a column can grow forever.
func (t *tableau) iterate() error {
	for pivots := 0; pivots < maxPivots; pivots++ {
		// Bland's rule: entering = smallest index with positive reduced cost.
		enter := -1
		for j := 0; j < t.cols; j++ {
			if t.isBasic(j) {
				continue
			}
			if t.reducedCost(j) > eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test: smallest rhs/col over positive entries; Bland
		// tie-break on basis variable index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				ratio := t.rhs[i] / aij
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			if t.phase1 {
				return errors.New("lp: phase-1 unbounded (internal error)")
			}
			return errUnbounded
		}
		t.pivot(leave, enter)
	}
	return errors.New("lp: pivot limit exceeded")
}

func (t *tableau) isBasic(j int) bool {
	for i := 0; i < t.m; i++ {
		if t.basis[i] == j {
			return true
		}
	}
	return false
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	for j := 0; j < t.cols; j++ {
		t.a[leave][j] *= inv
	}
	t.rhs[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		// Exact zero skip: eliminating with f == 0 is a no-op; a tolerance
		// here would wrongly skip rows with small but real pivot factors.
		if f == 0 { //pacor:allow floateq exact-zero fast path, tolerance would skip real eliminations
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.a[i][j] -= f * t.a[leave][j]
		}
		t.rhs[i] -= f * t.rhs[leave]
	}
	t.basis[leave] = enter
}

// expelArtificials pivots any artificial still basic (at value 0) out of the
// basis, or drops its row when it is redundant.
func (t *tableau) expelArtificials() error {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artBase {
			continue
		}
		// Find a non-artificial column with nonzero entry to pivot in.
		done := false
		for j := 0; j < t.artBase; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				done = true
				break
			}
		}
		if !done {
			// Row is all-zero over real columns: redundant constraint.
			// Leave the artificial basic at value 0; it is inert because its
			// phase-2 objective is -inf and its row has no real columns.
			if math.Abs(t.rhs[i]) > eps {
				return errors.New("lp: inconsistent redundant row after phase 1")
			}
		}
	}
	return nil
}

// extract reads the values of the first n (structural) variables.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.rhs[i]
		}
	}
	return x
}
