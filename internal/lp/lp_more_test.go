package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality constraints leave a redundant artificial after
	// phase 1; the solver must still reach the optimum.
	p := &Problem{
		C: []float64{2, 3},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Op: EQ, RHS: 4},
			{Coef: []float64{1, 1}, Op: EQ, RHS: 4}, // redundant copy
			{Coef: []float64{2, 2}, Op: EQ, RHS: 8}, // scaled copy
			{Coef: []float64{0, 1}, Op: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Obj, 2*1+3*3) {
		t.Fatalf("obj = %v status = %v, want 11 at (1,3)", s.Obj, s.Status)
	}
}

func TestContradictoryRedundantRows(t *testing.T) {
	p := &Problem{
		C: []float64{1, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Op: EQ, RHS: 4},
			{Coef: []float64{1, 1}, Op: EQ, RHS: 5},
		},
	}
	s, err := Solve(p)
	if err != nil {
		// Detected as inconsistent during pivoting: acceptable.
		return
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestManyVariablesChain(t *testing.T) {
	// x1 <= x2 <= ... <= xn <= 1, maximize sum: all at 1.
	const n = 12
	var cons []Constraint
	for i := 0; i+1 < n; i++ {
		row := make([]float64, n)
		row[i], row[i+1] = 1, -1
		cons = append(cons, Constraint{Coef: row, Op: LE, RHS: 0})
	}
	last := make([]float64, n)
	last[n-1] = 1
	cons = append(cons, Constraint{Coef: last, Op: LE, RHS: 1})
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	s := solveOK(t, &Problem{C: c, Constraints: cons})
	if !approx(s.Obj, n) {
		t.Fatalf("obj = %v, want %d", s.Obj, n)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies x 3 demands, classic balanced transportation LP; optimum
	// computed by enumeration of basic solutions is 33:
	// costs: s0: [4 6 8], s1: [5 3 7]; supply [10, 15]; demand [8, 9, 8].
	cost := []float64{4, 6, 8, 5, 3, 7}
	neg := make([]float64, 6)
	for i, v := range cost {
		neg[i] = -v
	}
	var cons []Constraint
	// Supply rows.
	for s := 0; s < 2; s++ {
		row := make([]float64, 6)
		for d := 0; d < 3; d++ {
			row[s*3+d] = 1
		}
		rhs := 10.0
		if s == 1 {
			rhs = 15
		}
		cons = append(cons, Constraint{Coef: row, Op: LE, RHS: rhs})
	}
	// Demand columns.
	demand := []float64{8, 9, 8}
	for d := 0; d < 3; d++ {
		row := make([]float64, 6)
		row[d] = 1
		row[3+d] = 1
		cons = append(cons, Constraint{Coef: row, Op: EQ, RHS: demand[d]})
	}
	s := solveOK(t, &Problem{C: neg, Constraints: cons})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	// Hand-derived optimum: supplies are both tight (25 = 25); putting all
	// of d1 on s1 (e=9) leaves d+f=6 of s1 capacity, and the cost reduces
	// to 123 + d - f, minimized at d=0, f=6: cost 117.
	if !approx(-s.Obj, 117) {
		t.Errorf("LP cost %v, want 117", -s.Obj)
	}
	// Feasibility of the returned plan.
	x := s.X
	for d := 0; d < 3; d++ {
		if math.Abs(x[d]+x[3+d]-demand[d]) > 1e-6 {
			t.Errorf("demand %d unmet: %v", d, x[d]+x[3+d])
		}
	}
	if x[0]+x[1]+x[2] > 10+1e-6 || x[3]+x[4]+x[5] > 15+1e-6 {
		t.Error("supply exceeded")
	}
}

func TestRandomFeasibilityAgainstInteriorPoint(t *testing.T) {
	// Generate LPs that are feasible by construction (constraints satisfied
	// by a known point); the solver must never report infeasible.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		point := make([]float64, n)
		for i := range point {
			point[i] = rng.Float64() * 5
		}
		var cons []Constraint
		for k := 0; k < 2+rng.Intn(5); k++ {
			row := make([]float64, n)
			lhs := 0.0
			for i := range row {
				row[i] = rng.Float64()*4 - 2
				lhs += row[i] * point[i]
			}
			// Slack keeps the known point strictly feasible.
			cons = append(cons, Constraint{Coef: row, Op: LE, RHS: lhs + rng.Float64()})
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = -rng.Float64() // bounded below by x >= 0 when minimizing
		}
		s, err := Solve(&Problem{C: c, Constraints: cons})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status == Infeasible {
			t.Fatalf("trial %d: feasible-by-construction LP reported infeasible", trial)
		}
	}
}
