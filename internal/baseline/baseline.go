// Package baseline implements a prior-art-style control-layer router in the
// spirit of the direct approaches PACOR compares its motivation against
// (Amin et al., ICCD'09 — the first control-layer router — and the general
// practice before length-matching was considered): clusters are connected
// with plain MST topology and each cluster escapes greedily to its nearest
// free control pin with sequential A*, in cluster order, with no candidate
// trees, no negotiation, no min-cost-flow, and no detouring. It exists as
// the external comparison point for the evaluation: PACOR should dominate
// it on length matching and routability, at some runtime cost.
package baseline

import (
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/mstroute"
	"repro/internal/pacor"
	"repro/internal/route"
	"repro/internal/valve"
)

// Route runs the baseline router and reports its result in the same shape
// as the PACOR flow so the two are directly comparable.
func Route(d *valve.Design) (*pacor.Result, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	g := grid.New(d.W, d.H)
	obs := grid.NewObsMap(g)
	for _, o := range d.Obstacles {
		obs.Set(o, true)
	}
	for _, v := range d.Valves {
		obs.Set(v.Pos, true)
	}
	ws := route.NewWorkspace(g)

	part := cluster.Partition(d)
	res := &pacor.Result{TotalValves: len(d.Valves)}

	// Larger clusters first, as in the flow's MST stage.
	order := make([]int, len(part.Clusters))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(part.Clusters[order[a]].Valves) > len(part.Clusters[order[b]].Valves)
	})

	usedPins := map[geom.Pt]bool{}
	for _, ci := range order {
		c := part.Clusters[ci]
		cr := pacor.ClusterResult{ID: c.ID, Valves: c.Valves, LM: c.LM}
		pts := make([]geom.Pt, len(c.Valves))
		for i, v := range c.Valves {
			pts[i] = d.Valves[v].Pos
		}
		// Internal channels: plain MST (no negotiation, no retry).
		internalOK := true
		if len(pts) > 1 {
			mres, ok := mstroute.RouteClusterWS(ws, obs, pts, nil)
			cr.Paths = mres.Paths
			internalOK = ok
		}
		// Escape: greedy A* from any channel cell to the nearest free pin.
		if internalOK {
			sources := append([]geom.Pt(nil), pts...)
			for _, p := range cr.Paths {
				sources = append(sources, p...)
			}
			var freePins []geom.Pt
			for _, p := range d.Pins {
				if !usedPins[p] && !obs.Blocked(p) {
					freePins = append(freePins, p)
				}
			}
			if path, ok := ws.AStar(g, route.Request{
				Sources: sources, Targets: freePins, Obs: obs,
			}); ok {
				obs.SetPath(path, true)
				cr.Escape = path
				cr.Pin = path[len(path)-1]
				cr.Routed = true
				usedPins[cr.Pin] = true
			}
		}
		// No length matching: report the spread anyway so comparisons can
		// quantify what the baseline leaves unmatched.
		if cr.Routed && c.LM && len(c.Valves) >= 2 && internalOK {
			cr.FullLens = channelDistances(cr.Paths, pts, cr.Escape[0])
			cr.Matched = matched(cr.FullLens, d.Delta)
		}
		if len(c.Valves) >= 2 {
			res.MultiClusters++
		}
		if cr.Matched && len(c.Valves) >= 2 {
			res.MatchedClusters++
			res.MatchedLen += cr.TotalLen()
		}
		res.TotalLen += cr.TotalLen()
		if cr.Routed {
			res.RoutedValves += len(cr.Valves)
		}
		res.Clusters = append(res.Clusters, cr)
	}
	sort.Slice(res.Clusters, func(i, j int) bool { return res.Clusters[i].ID < res.Clusters[j].ID })
	res.Runtime = time.Since(start)
	return res, nil
}

// channelDistances BFS-walks the cluster's channel cells and returns each
// valve's distance to the take-off cell (-1 when unreachable, which cannot
// happen for a connected MST result).
func channelDistances(paths []grid.Path, valves []geom.Pt, takeoff geom.Pt) []int {
	adj := map[geom.Pt][]geom.Pt{}
	for _, seg := range paths {
		for i := 1; i < len(seg); i++ {
			adj[seg[i-1]] = append(adj[seg[i-1]], seg[i])
			adj[seg[i]] = append(adj[seg[i]], seg[i-1])
		}
	}
	dist := map[geom.Pt]int{takeoff: 0}
	queue := []geom.Pt{takeoff}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, q := range adj[c] {
			if _, seen := dist[q]; !seen {
				dist[q] = dist[c] + 1
				queue = append(queue, q)
			}
		}
	}
	out := make([]int, len(valves))
	for i, v := range valves {
		if dv, ok := dist[v]; ok {
			out[i] = dv
		} else {
			out[i] = -1
		}
	}
	return out
}

func matched(lens []int, delta int) bool {
	if len(lens) == 0 {
		return false
	}
	mn, mx := lens[0], lens[0]
	for _, l := range lens {
		if l < 0 {
			return false
		}
		if l < mn {
			mn = l
		}
		if l > mx {
			mx = l
		}
	}
	return mx-mn <= delta
}
