package baseline

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/pacor"
	"repro/internal/valve"
)

func TestBaselineRoutesSmallDesigns(t *testing.T) {
	for _, name := range []string{"S1", "S2", "S3", "S4"} {
		d, err := bench.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Route(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := pacor.Verify(d, res); err != nil {
			t.Errorf("%s: baseline violates design rules: %v", name, err)
		}
		if res.CompletionRate() < 0.8 {
			t.Errorf("%s: baseline completion %.2f unexpectedly low", name, res.CompletionRate())
		}
	}
}

func TestPACORDominatesBaselineOnMatching(t *testing.T) {
	totalBase, totalPacor := 0, 0
	for _, name := range []string{"S2", "S3", "S4", "S5"} {
		d, err := bench.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Route(d)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pacor.Route(d, pacor.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		totalBase += base.MatchedClusters
		totalPacor += p.MatchedClusters
		if base.MatchedClusters > p.MatchedClusters {
			t.Errorf("%s: baseline matched %d > PACOR %d", name, base.MatchedClusters, p.MatchedClusters)
		}
	}
	t.Logf("matched clusters: baseline %d, PACOR %d", totalBase, totalPacor)
	if totalPacor <= totalBase {
		t.Errorf("PACOR (%d) must match strictly more clusters than the baseline (%d) overall",
			totalPacor, totalBase)
	}
}

func TestBaselineReportsSpreads(t *testing.T) {
	d, err := bench.Generate("S3")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d)
	if err != nil {
		t.Fatal(err)
	}
	sawLens := false
	for _, c := range res.Clusters {
		if c.LM && c.Routed && len(c.FullLens) > 0 {
			sawLens = true
			for _, l := range c.FullLens {
				if l < 0 {
					t.Errorf("cluster %d: disconnected valve distance", c.ID)
				}
			}
		}
	}
	if !sawLens {
		t.Error("baseline should report channel distances for LM clusters")
	}
}

func TestBaselineInvalidDesign(t *testing.T) {
	if _, err := Route(&valve.Design{Name: "bad", W: 0, H: 4}); err == nil {
		t.Error("invalid design must error")
	}
}
