package seltree

import (
	"testing"

	"repro/internal/dme"
	"repro/internal/geom"
	"repro/internal/grid"
)

func candsFor(t *testing.T, obs *grid.ObsMap, clusters [][]geom.Pt, maxCand int) [][]*dme.Tree {
	t.Helper()
	var out [][]*dme.Tree
	for _, sinks := range clusters {
		c := dme.Candidates(obs, sinks, maxCand)
		if len(c) == 0 {
			t.Fatalf("no candidates for %v", sinks)
		}
		out = append(out, c)
	}
	return out
}

func TestSelectSingleCluster(t *testing.T) {
	g := grid.New(40, 40)
	obs := grid.NewObsMap(g)
	cands := candsFor(t, obs, [][]geom.Pt{
		{{X: 5, Y: 5}, {X: 17, Y: 11}, {X: 5, Y: 25}, {X: 17, Y: 31}},
	}, 6)
	for _, solver := range []Solver{SolverILP, SolverExact, SolverLocal} {
		cfg := DefaultConfig()
		cfg.Solver = solver
		pick, err := Select(cands, cfg)
		if err != nil {
			t.Fatalf("solver %d: %v", solver, err)
		}
		if len(pick) != 1 || pick[0] < 0 || pick[0] >= len(cands[0]) {
			t.Fatalf("solver %d: pick = %v", solver, pick)
		}
	}
}

func TestSelectAvoidsOverlap(t *testing.T) {
	// Two clusters side by side; candidates overlapping the neighbor's
	// territory must be penalized, so the selected pair should have less
	// overlap cost than the worst pair.
	g := grid.New(60, 40)
	obs := grid.NewObsMap(g)
	cands := candsFor(t, obs, [][]geom.Pt{
		{{X: 5, Y: 5}, {X: 21, Y: 13}, {X: 5, Y: 25}, {X: 21, Y: 33}},
		{{X: 35, Y: 5}, {X: 51, Y: 13}, {X: 35, Y: 25}, {X: 51, Y: 33}},
	}, 6)
	pick, err := Select(cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel := buildSelection(cands, 0.1)
	// Compare the chosen assignment's objective to all single-candidate
	// alternatives; it must be the maximum (ILP is exact).
	flatPick := []int{pick[0], len(cands[0]) + pick[1]}
	chosen := sel.Value(flatPick)
	for a := 0; a < len(cands[0]); a++ {
		for b := 0; b < len(cands[1]); b++ {
			v := sel.Value([]int{a, len(cands[0]) + b})
			if v > chosen+1e-9 {
				t.Fatalf("selection suboptimal: (%d,%d) has %v > chosen %v", a, b, v, chosen)
			}
		}
	}
}

func TestSelectEmpty(t *testing.T) {
	pick, err := Select(nil, DefaultConfig())
	if err != nil || pick != nil {
		t.Error("empty input should return nil, nil")
	}
}

func TestSelectMissingCandidates(t *testing.T) {
	if _, err := Select([][]*dme.Tree{{}}, DefaultConfig()); err == nil {
		t.Error("cluster with no candidates must error")
	}
}

func TestSelectLocalFallbackOnSize(t *testing.T) {
	g := grid.New(120, 120)
	obs := grid.NewObsMap(g)
	var clusters [][]geom.Pt
	for i := 0; i < 8; i++ {
		bx, by := (i%4)*30+4, (i/4)*60+4
		clusters = append(clusters, []geom.Pt{
			{X: bx, Y: by}, {X: bx + 12, Y: by + 6}, {X: bx, Y: by + 20}, {X: bx + 12, Y: by + 26},
		})
	}
	cands := candsFor(t, obs, clusters, 8)
	cfg := DefaultConfig()
	cfg.LocalFallbackSize = 10 // force the fallback path
	pick, err := Select(cands, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pick) != 8 {
		t.Fatalf("picks = %d", len(pick))
	}
	for i, p := range pick {
		if p < 0 || p >= len(cands[i]) {
			t.Errorf("pick[%d] = %d out of range", i, p)
		}
	}
}

func TestBuildSelectionWeights(t *testing.T) {
	g := grid.New(40, 40)
	obs := grid.NewObsMap(g)
	cands := candsFor(t, obs, [][]geom.Pt{
		{{X: 5, Y: 5}, {X: 17, Y: 11}},
		{{X: 5, Y: 25}, {X: 17, Y: 31}},
	}, 3)
	sel := buildSelection(cands, 0.1)
	if err := sel.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, w := range sel.NodeW {
		if w > 0 || w < -0.1 {
			t.Errorf("NodeW[%d] = %v outside [-lambda, 0]", i, w)
		}
	}
	for i := range sel.PairW {
		for j := range sel.PairW[i] {
			if sel.PairW[i][j] > 0 {
				t.Errorf("PairW[%d][%d] = %v positive", i, j, sel.PairW[i][j])
			}
			if sel.PairW[i][j] != sel.PairW[j][i] {
				t.Errorf("PairW not symmetric at %d,%d", i, j)
			}
		}
	}
}
