// Package seltree implements candidate Steiner tree selection (Section 4.2):
// each length-matching cluster contributes a set of candidate DME trees; one
// tree per cluster is chosen to jointly minimize estimated length mismatch
// (Equations 1-2) and pairwise routing overlap between clusters (Equations
// 3-4), via the maximum weight clique formulation solved by internal/mwcp.
package seltree

import (
	"fmt"

	"repro/internal/dme"
	"repro/internal/geom"
	"repro/internal/mwcp"
)

// Solver selects which MWCP algorithm performs the selection. The paper
// implemented all three and adopted the ILP.
type Solver int

// Available solvers.
const (
	SolverILP Solver = iota
	SolverExact
	SolverLocal
)

// Config tunes the selection stage.
type Config struct {
	// Lambda weighs mismatch cost against overlap cost (Eq. 2-3); the paper
	// uses 0.1, prioritizing routability over mismatch.
	Lambda float64
	Solver Solver
	// LocalFallbackSize: above this many total candidates the exact/ILP
	// solvers give way to local search (the ILP grows quadratically in
	// candidate pairs).
	LocalFallbackSize int
}

// DefaultConfig mirrors the paper's parameters.
func DefaultConfig() Config {
	return Config{Lambda: 0.1, Solver: SolverILP, LocalFallbackSize: 96}
}

// Select picks one candidate per cluster. cands[i] lists cluster i's
// candidate trees; every cluster must have at least one. It returns the
// selected index into each cands[i].
func Select(cands [][]*dme.Tree, cfg Config) ([]int, error) {
	for i, c := range cands {
		if len(c) == 0 {
			return nil, fmt.Errorf("seltree: cluster %d has no candidates", i)
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	sel := buildSelection(cands, cfg.Lambda)

	solver := cfg.Solver
	if len(sel.NodeW) > cfg.LocalFallbackSize && solver != SolverLocal {
		solver = SolverLocal
	}
	var pick []int
	var err error
	switch solver {
	case SolverILP:
		pick, _, err = mwcp.SolveILP(sel)
		if err != nil {
			// Oversized or numerically hard ILPs degrade to local search, as
			// a production flow must not fail the whole route on a selection
			// sub-problem.
			pick, _, err = mwcp.SolveLocal(sel)
		}
	case SolverExact:
		pick, _, err = mwcp.SolveExact(sel)
	default:
		pick, _, err = mwcp.SolveLocal(sel)
	}
	if err != nil {
		return nil, err
	}
	// Convert flat candidate ids back to per-cluster indices.
	out := make([]int, len(cands))
	base := 0
	for i, c := range cands {
		out[i] = pick[i] - base
		base += len(c)
	}
	return out, nil
}

// buildSelection assembles the MWCP instance: node weights Cm (Eq. 2) and
// pairwise overlap weights Co (Eq. 3-4).
func buildSelection(cands [][]*dme.Tree, lambda float64) *mwcp.Selection {
	var groups [][]int
	var flat []*dme.Tree
	var clusterOf []int
	for ci, c := range cands {
		var g []int
		for _, t := range c {
			g = append(g, len(flat))
			flat = append(flat, t)
			clusterOf = append(clusterOf, ci)
		}
		groups = append(groups, g)
	}
	n := len(flat)

	// Eq. 2: Cm_j = -lambda * ΔL_j / max ΔL.
	maxDL := 0
	dls := make([]int, n)
	for i, t := range flat {
		dls[i] = t.DeltaL()
		if dls[i] > maxDL {
			maxDL = dls[i]
		}
	}
	nodeW := make([]float64, n)
	for i := range nodeW {
		if maxDL > 0 {
			nodeW[i] = -lambda * float64(dls[i]) / float64(maxDL)
		}
	}

	// Eq. 3-4: Co_{i,j} = -(1-lambda) * sum over edge-bbox pairs of the
	// overlap ratio. Precompute per-candidate edge boxes.
	boxes := make([][]geom.Rect, n)
	for i, t := range flat {
		boxes[i] = t.EdgeBBoxes()
	}
	pairW := make([][]float64, n)
	for i := range pairW {
		pairW[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if clusterOf[i] == clusterOf[j] {
				continue
			}
			sum := 0.0
			for _, bi := range boxes[i] {
				for _, bj := range boxes[j] {
					sum += geom.OverlapRatio(bi, bj)
				}
			}
			w := -(1 - lambda) * sum
			pairW[i][j], pairW[j][i] = w, w
		}
	}
	return &mwcp.Selection{Groups: groups, NodeW: nodeW, PairW: pairW}
}
