package route

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func mustPath(t *testing.T, p grid.Path, ok bool) grid.Path {
	t.Helper()
	if !ok {
		t.Fatal("routing failed")
	}
	if !p.Valid() {
		t.Fatalf("invalid path %v", p)
	}
	return p
}

func TestAStarStraightLine(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	p, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 1, Y: 1}},
		Targets: []geom.Pt{{X: 7, Y: 1}},
		Obs:     obs,
	})
	p = mustPath(t, p, ok)
	if p.Len() != 6 {
		t.Errorf("len = %d, want 6", p.Len())
	}
	if p[0] != (geom.Pt{X: 1, Y: 1}) || p[len(p)-1] != (geom.Pt{X: 7, Y: 1}) {
		t.Errorf("endpoints wrong: %v", p)
	}
}

func TestAStarAroundWall(t *testing.T) {
	g := grid.New(9, 9)
	obs := grid.NewObsMap(g)
	// Vertical wall at x=4 with no gaps except y=8.
	for y := 0; y < 8; y++ {
		obs.Set(geom.Pt{X: 4, Y: y}, true)
	}
	p, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 8, Y: 0}},
		Obs:     obs,
	})
	p = mustPath(t, p, ok)
	// Must detour via y=8: 8 up + 8 across + 8 down = 24.
	if p.Len() != 24 {
		t.Errorf("len = %d, want 24", p.Len())
	}
	for _, c := range p {
		if obs.Blocked(c) {
			t.Errorf("path crosses obstacle at %v", c)
		}
	}
}

func TestAStarNoPath(t *testing.T) {
	g := grid.New(5, 5)
	obs := grid.NewObsMap(g)
	for y := 0; y < 5; y++ {
		obs.Set(geom.Pt{X: 2, Y: y}, true)
	}
	if _, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 4, Y: 4}},
		Obs:     obs,
	}); ok {
		t.Error("expected failure across full wall")
	}
}

func TestAStarMultiSourceMultiTarget(t *testing.T) {
	g := grid.New(20, 20)
	obs := grid.NewObsMap(g)
	// Path-to-path: nearest pair is (5,5)..(7,5) -> length 2.
	p, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}, {X: 5, Y: 5}},
		Targets: []geom.Pt{{X: 19, Y: 19}, {X: 7, Y: 5}},
		Obs:     obs,
	})
	p = mustPath(t, p, ok)
	if p.Len() != 2 {
		t.Errorf("len = %d, want 2 (nearest source-target pair)", p.Len())
	}
}

func TestAStarTargetOnObstacleAllowed(t *testing.T) {
	// Routing onto an already-routed path: target cells are obstacle-exempt.
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	target := geom.Pt{X: 5, Y: 5}
	obs.Set(target, true)
	p, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 5}},
		Targets: []geom.Pt{target},
		Obs:     obs,
	})
	p = mustPath(t, p, ok)
	if p[len(p)-1] != target {
		t.Error("did not land on target")
	}
}

func TestAStarHistoryAvoidance(t *testing.T) {
	g := grid.New(7, 3)
	obs := grid.NewObsMap(g)
	hist := make([]float64, g.Cells())
	// Penalize the straight row y=1 heavily.
	for x := 1; x < 6; x++ {
		hist[g.Index(geom.Pt{X: x, Y: 1})] = 10
	}
	p, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 1}},
		Targets: []geom.Pt{{X: 6, Y: 1}},
		Obs:     obs,
		Hist:    hist,
	})
	p = mustPath(t, p, ok)
	// Detour around the hot row: length 8 instead of 6.
	if p.Len() != 8 {
		t.Errorf("len = %d, want 8 (history detour)", p.Len())
	}
}

func TestAStarEmptyRequests(t *testing.T) {
	g := grid.New(4, 4)
	if _, ok := AStar(g, Request{}); ok {
		t.Error("empty request should fail")
	}
	if _, ok := AStar(g, Request{Sources: []geom.Pt{{X: 0, Y: 0}}}); ok {
		t.Error("no targets should fail")
	}
	if _, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 9, Y: 9}}, // off-grid
	}); ok {
		t.Error("off-grid target should fail")
	}
}

func TestAStarSourceEqualsTarget(t *testing.T) {
	g := grid.New(4, 4)
	p, ok := AStar(g, Request{
		Sources: []geom.Pt{{X: 2, Y: 2}},
		Targets: []geom.Pt{{X: 2, Y: 2}},
	})
	p = mustPath(t, p, ok)
	if p.Len() != 0 || len(p) != 1 {
		t.Errorf("trivial path = %v", p)
	}
}

func TestAStarOptimalityVsBFS(t *testing.T) {
	// Cross-check A* lengths against plain BFS on a maze.
	g := grid.New(15, 15)
	obs := grid.NewObsMap(g)
	for i := 0; i < 15; i += 2 {
		for y := 0; y < 12; y++ {
			obs.Set(geom.Pt{X: i, Y: (y + i) % 15}, true)
		}
	}
	src := geom.Pt{X: 1, Y: 14}
	dst := geom.Pt{X: 13, Y: 0}
	if obs.Blocked(src) || obs.Blocked(dst) {
		t.Fatal("bad test setup")
	}
	want := bfsLen(g, obs, src, dst)
	p, ok := AStar(g, Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs})
	if want == -1 {
		if ok {
			t.Fatal("A* found path where BFS did not")
		}
		return
	}
	p = mustPath(t, p, ok)
	if p.Len() != want {
		t.Errorf("A* len %d, BFS len %d", p.Len(), want)
	}
}

func bfsLen(g grid.Grid, obs *grid.ObsMap, src, dst geom.Pt) int {
	dist := make([]int, g.Cells())
	for i := range dist {
		dist[i] = -1
	}
	dist[g.Index(src)] = 0
	queue := []geom.Pt{src}
	var nbuf []geom.Pt
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p == dst {
			return dist[g.Index(p)]
		}
		nbuf = g.Neighbors(p, nbuf)
		for _, q := range nbuf {
			if obs.Blocked(q) && q != dst {
				continue
			}
			if dist[g.Index(q)] == -1 {
				dist[g.Index(q)] = dist[g.Index(p)] + 1
				queue = append(queue, q.Add(geom.Pt{}))
			}
		}
	}
	return -1
}
