package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestHierNegotiateEqualsFlat is the satellite property test of the
// hierarchical router's exactness contract: on random mid-size congested
// instances, negotiation with the hierarchy forced ON returns byte-identical
// paths (and identical search/round counters) to the flat router. The ladder
// makes this unconditional — a masked rung is accepted only when the mask
// clipped nothing (transcript identical to flat by construction), and any
// clipped rung escalates until the unmasked search — so the test asserts
// identity on every instance, not just fallback-free ones; the stats tell the
// two cases apart (CorridorHits = accepted masked searches, FlatFallbacks =
// escalations that ran the full ladder).
func TestHierNegotiateEqualsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	usedCorridor, fellBack := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 64 + rng.Intn(64)
		g := grid.New(n, n)
		obs := grid.NewObsMap(g)
		for i := 0; i < n*n/12; i++ {
			obs.Set(geom.Pt{X: rng.Intn(n), Y: rng.Intn(n)}, true)
		}
		var edges []Edge
		used := map[geom.Pt]bool{}
		pick := func() geom.Pt {
			for {
				p := geom.Pt{X: rng.Intn(n), Y: rng.Intn(n)}
				if !used[p] {
					used[p] = true
					obs.Set(p, false)
					return p
				}
			}
		}
		for i := 0; i < 4+rng.Intn(8); i++ {
			edges = append(edges, Edge{ID: i, Sources: []geom.Pt{pick()}, Targets: []geom.Pt{pick()}})
		}

		flat := DefaultNegotiateParams()
		flat.Hier.Mode = HierOff
		var flatStats NegotiateStats
		wf := AcquireWorkspace(g)
		wantPaths, wantOK := wf.NegotiateTracked(obs, edges, flat, &flatStats)
		ReleaseWorkspace(wf)

		hier := DefaultNegotiateParams()
		hier.Hier.Mode = HierOn
		hier.Hier.TileSize = 16
		var hierStats NegotiateStats
		wh := AcquireWorkspace(g)
		gotPaths, gotOK := wh.NegotiateTracked(obs, edges, hier, &hierStats)
		ReleaseWorkspace(wh)

		if gotOK != wantOK {
			t.Fatalf("trial %d: hier ok=%v, flat ok=%v", trial, gotOK, wantOK)
		}
		if len(gotPaths) != len(wantPaths) {
			t.Fatalf("trial %d: hier routed %d edges, flat %d", trial, len(gotPaths), len(wantPaths))
		}
		for id, p := range wantPaths {
			if !pathsEqual(p, gotPaths[id]) {
				t.Fatalf("trial %d edge %d: hier path differs from flat\nhier %v\nflat %v",
					trial, id, gotPaths[id], p)
			}
		}
		if hierStats.Searches != flatStats.Searches || hierStats.Rounds != flatStats.Rounds {
			t.Fatalf("trial %d: hier stats {searches %d rounds %d} differ from flat {%d %d}",
				trial, hierStats.Searches, hierStats.Rounds, flatStats.Searches, flatStats.Rounds)
		}
		usedCorridor += hierStats.Hier.CorridorHits + hierStats.Hier.Widened
		fellBack += hierStats.Hier.FlatFallbacks
	}
	// The sweep must actually exercise both sides of the ladder, or the
	// identity above proves nothing about the masked rungs.
	if usedCorridor == 0 {
		t.Error("no trial accepted a corridor-masked search; the hierarchy never engaged")
	}
	if fellBack == 0 {
		t.Error("no trial escalated to the flat rung; the clipped path is untested")
	}
}
