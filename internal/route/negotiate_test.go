package route

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestNegotiateTwoDisjointEdges(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	edges := []Edge{
		{ID: 0, Sources: []geom.Pt{{X: 0, Y: 2}}, Targets: []geom.Pt{{X: 9, Y: 2}}},
		{ID: 1, Sources: []geom.Pt{{X: 0, Y: 7}}, Targets: []geom.Pt{{X: 9, Y: 7}}},
	}
	paths, ok := Negotiate(obs, edges, DefaultNegotiateParams())
	if !ok {
		t.Fatal("negotiation failed on disjoint edges")
	}
	assertDisjointValid(t, paths)
}

func TestNegotiateConflict(t *testing.T) {
	// Edge 0's unique shortest route (the x=10 column) is the only possible
	// route for edge 1 (whose terminals are sealed from every other cell).
	// Greedy sequential routing therefore fails on the first rounds, and the
	// history mechanism must price edge 0 off the column onto its length-10
	// detour before edge 1 can route. With the saturating Eq. 5 history
	// (h -> bg/(1-alpha)), alpha must satisfy 4 + 4h > 10 + 2h at the fixed
	// point, so the test raises alpha to 0.8 (h_inf = 5).
	g := grid.New(21, 5)
	obs := grid.NewObsMap(g)
	for _, w := range []geom.Pt{{X: 9, Y: 1}, {X: 11, Y: 1}, {X: 8, Y: 2}, {X: 12, Y: 2}} {
		obs.Set(w, true)
	}
	edges := []Edge{
		{ID: 0, Sources: []geom.Pt{{X: 10, Y: 0}}, Targets: []geom.Pt{{X: 10, Y: 4}}},
		{ID: 1, Sources: []geom.Pt{{X: 9, Y: 2}}, Targets: []geom.Pt{{X: 11, Y: 2}}},
	}
	params := NegotiateParams{BaseHist: 1.0, Alpha: 0.8, Gamma: 10}
	paths, ok := Negotiate(obs, edges, params)
	if !ok {
		t.Fatal("negotiation failed to resolve the column conflict")
	}
	assertDisjointValid(t, paths)
	if paths[1].Len() != 2 {
		t.Errorf("edge 1 length %d, want the straight length 2", paths[1].Len())
	}
	if paths[0].Len() < 10 {
		t.Errorf("edge 0 length %d, want the detour (>=10)", paths[0].Len())
	}
	for _, p := range paths {
		for _, c := range p {
			if obs.Blocked(c) {
				t.Errorf("path crosses obstacle at %v", c)
			}
		}
	}
}

func TestNegotiateImpossible(t *testing.T) {
	// Three edges through a single one-cell corridor: at most one can route.
	g := grid.New(9, 5)
	obs := grid.NewObsMap(g)
	for y := 0; y < 5; y++ {
		if y != 2 {
			obs.Set(geom.Pt{X: 4, Y: y}, true)
		}
	}
	edges := []Edge{
		{ID: 0, Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 8, Y: 0}}},
		{ID: 1, Sources: []geom.Pt{{X: 0, Y: 2}}, Targets: []geom.Pt{{X: 8, Y: 2}}},
		{ID: 2, Sources: []geom.Pt{{X: 0, Y: 4}}, Targets: []geom.Pt{{X: 8, Y: 4}}},
	}
	params := DefaultNegotiateParams()
	_, ok := Negotiate(obs, edges, params)
	if ok {
		t.Fatal("three edges cannot share a one-cell corridor")
	}
}

func TestNegotiateLeavesObsUntouched(t *testing.T) {
	g := grid.New(8, 8)
	obs := grid.NewObsMap(g)
	obs.Set(geom.Pt{X: 3, Y: 3}, true)
	before := obs.Count()
	edges := []Edge{{ID: 0, Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 7, Y: 7}}}}
	if _, ok := Negotiate(obs, edges, DefaultNegotiateParams()); !ok {
		t.Fatal("route failed")
	}
	if obs.Count() != before {
		t.Error("Negotiate mutated the caller's obstacle map")
	}
}

func TestNegotiateOrderIndependenceViaHistory(t *testing.T) {
	// Edge 0's shortest path blocks edge 1 entirely if routed greedily; the
	// history mechanism must push edge 0 off the corridor in a later round.
	g := grid.New(7, 5)
	obs := grid.NewObsMap(g)
	// Corridor row y=2 is the only way across x=3 except y=0.
	for y := 0; y < 5; y++ {
		if y != 2 && y != 0 {
			obs.Set(geom.Pt{X: 3, Y: y}, true)
		}
	}
	edges := []Edge{
		// Edge 0 could use either corridor; shortest is y=2... source at y=1.
		{ID: 0, Sources: []geom.Pt{{X: 0, Y: 1}}, Targets: []geom.Pt{{X: 6, Y: 1}}},
		// Edge 1 must use y=2 (its endpoints are at y=2 and detour via y=0
		// would cross edge 0's territory).
		{ID: 1, Sources: []geom.Pt{{X: 0, Y: 2}}, Targets: []geom.Pt{{X: 6, Y: 2}}},
	}
	paths, ok := Negotiate(obs, edges, DefaultNegotiateParams())
	if !ok {
		t.Fatal("negotiation failed")
	}
	assertDisjointValid(t, paths)
}

func assertDisjointValid(t *testing.T, paths map[int]grid.Path) {
	t.Helper()
	used := map[geom.Pt]int{}
	for id, p := range paths {
		if !p.Valid() {
			t.Fatalf("edge %d: invalid path %v", id, p)
		}
		for _, c := range p {
			if other, clash := used[c]; clash {
				t.Fatalf("cell %v used by edges %d and %d", c, other, id)
			}
			used[c] = id
		}
	}
}
