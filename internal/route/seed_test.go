package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// negRun routes the instance once with the given seed/capture wiring and
// returns the outputs and stats.
func negRun(g grid.Grid, obs *grid.ObsMap, edges []Edge, workers int,
	seed, capture *NegotiationSeed, check bool) (map[int]grid.Path, bool, NegotiateStats) {
	var s NegotiateStats
	params := DefaultNegotiateParams()
	params.Workers = workers
	params.Seed = seed
	params.Capture = capture
	params.CheckCache = check
	ws := AcquireWorkspace(g)
	paths, ok := ws.NegotiateTracked(obs, edges, params, &s)
	ReleaseWorkspace(ws)
	return paths, ok, s
}

func pathsIdentical(t *testing.T, label string, got, want map[int]grid.Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d paths, want %d", label, len(got), len(want))
	}
	for id, p := range want {
		if !pathsEqual(p, got[id]) {
			t.Fatalf("%s: edge %d path differs\n got %v\nwant %v", label, id, got[id], p)
		}
	}
}

// TestSeedCaptureIsInert: running with capture enabled changes neither the
// routed output nor the observable counters of a cold run.
func TestSeedCaptureIsInert(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		g, obs, edges := randomNegotiateInstance(rng)
		wantPaths, wantOK, wantStats := negRun(g, obs, edges, 0, nil, nil, false)
		var cap NegotiationSeed
		paths, ok, stats := negRun(g, obs, edges, 0, nil, &cap, false)
		if ok != wantOK {
			t.Fatalf("trial %d: capture changed ok: %v vs %v", trial, ok, wantOK)
		}
		pathsIdentical(t, "capture run", paths, wantPaths)
		if !statsEqual(stats, wantStats) || stats.SeededHits != 0 || stats.SeededEdges != 0 {
			t.Fatalf("trial %d: capture changed stats: %+v vs %+v", trial, stats, wantStats)
		}
		if len(cap.Rounds) != wantStats.Rounds {
			t.Fatalf("trial %d: capture has %d rounds, run had %d", trial, len(cap.Rounds), wantStats.Rounds)
		}
		if cap.SizeBytes() <= 0 {
			t.Fatalf("trial %d: capture SizeBytes = %d", trial, cap.SizeBytes())
		}
	}
}

// TestSeedExactReplayIdentity: replaying a captured run on the identical
// instance produces byte-identical output with zero searches — every
// (round, edge) outcome comes from the parent transcript — for every worker
// count, with -checkcache validating each replay.
func TestSeedExactReplayIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 25; trial++ {
		g, obs, edges := randomNegotiateInstance(rng)
		var cap NegotiationSeed
		wantPaths, wantOK, cold := negRun(g, obs, edges, 0, nil, &cap, false)

		for _, workers := range []int{0, 1, 2, 4} {
			paths, ok, warm := negRun(g, obs, edges, workers, &cap, nil, true)
			if ok != wantOK {
				t.Fatalf("trial %d workers=%d: seeded ok=%v, want %v", trial, workers, ok, wantOK)
			}
			pathsIdentical(t, "seeded run", paths, wantPaths)
			if warm.Searches != 0 {
				t.Fatalf("trial %d workers=%d: exact replay still ran %d searches", trial, workers, warm.Searches)
			}
			if warm.SeededEdges != len(edges) {
				t.Fatalf("trial %d workers=%d: SeededEdges=%d, want %d", trial, workers, warm.SeededEdges, len(edges))
			}
			if cold.Searches != warm.Searches+warm.SeededHits || cold.CacheHits != warm.CacheHits {
				t.Fatalf("trial %d workers=%d: counters invariant broken: cold %+v warm %+v",
					trial, workers, cold, warm)
			}
			if warm.Rounds != cold.Rounds {
				t.Fatalf("trial %d workers=%d: rounds differ: %d vs %d", trial, workers, warm.Rounds, cold.Rounds)
			}
		}
	}
}

// TestSeedNearReplayIdentity: after perturbing the instance (an obstacle
// toggled, an edge terminal moved), a run seeded from the unperturbed capture
// is byte-identical to a cold run of the perturbed instance, satisfies the
// counters invariant Searches_cold = Searches_seeded + SeededHits (the
// within-run hit pattern is identical by construction), and actually skips
// searches.
func TestSeedNearReplayIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	sawSaving := false
	for trial := 0; trial < 40; trial++ {
		g, obs, edges := randomNegotiateInstance(rng)
		var cap NegotiationSeed
		negRun(g, obs, edges, 0, nil, &cap, false)

		// Perturb: toggle one non-terminal cell's obstacle state.
		pert := obs.Clone()
		for {
			c := geom.Pt{X: rng.Intn(g.W), Y: rng.Intn(g.H)}
			terminal := false
			for _, e := range edges {
				for _, q := range append(append([]geom.Pt{}, e.Sources...), e.Targets...) {
					if q == c {
						terminal = true
					}
				}
			}
			if !terminal {
				pert.Set(c, !pert.Blocked(c))
				break
			}
		}

		wantPaths, wantOK, cold := negRun(g, pert, edges, 0, nil, nil, false)
		for _, workers := range []int{0, 2} {
			paths, ok, warm := negRun(g, pert, edges, workers, &cap, nil, true)
			if ok != wantOK {
				t.Fatalf("trial %d workers=%d: seeded ok=%v, want %v", trial, workers, ok, wantOK)
			}
			pathsIdentical(t, "near-seeded run", paths, wantPaths)
			if cold.Searches != warm.Searches+warm.SeededHits {
				t.Fatalf("trial %d workers=%d: counters invariant broken:\ncold %+v\nwarm %+v",
					trial, workers, cold, warm)
			}
			if cold.CacheHits != warm.CacheHits || cold.Rounds != warm.Rounds {
				t.Fatalf("trial %d workers=%d: within-run pattern diverged:\ncold %+v\nwarm %+v",
					trial, workers, cold, warm)
			}
			if warm.SeededHits > 0 && warm.Searches < cold.Searches {
				sawSaving = true
			}
		}
	}
	if !sawSaving {
		t.Error("no trial skipped any search via seeding; the near-hit path is dead")
	}
}

// TestSeedEdgeSetChange: adding or dropping an edge leaves the surviving
// edges aligned (monotone LCS) and the output byte-identical to cold.
func TestSeedEdgeSetChange(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		g, obs, edges := randomNegotiateInstance(rng)
		if len(edges) < 4 {
			continue
		}
		var cap NegotiationSeed
		negRun(g, obs, edges, 0, nil, &cap, false)

		// Drop a middle edge and re-ID the survivors (as a re-clustered flow
		// request would).
		child := make([]Edge, 0, len(edges)-1)
		drop := 1 + rng.Intn(len(edges)-2)
		for i, e := range edges {
			if i == drop {
				continue
			}
			e.ID = len(child)
			child = append(child, e)
		}

		wantPaths, wantOK, cold := negRun(g, obs, child, 0, nil, nil, false)
		paths, ok, warm := negRun(g, obs, child, 0, &cap, nil, true)
		if ok != wantOK {
			t.Fatalf("trial %d: seeded ok=%v, want %v", trial, ok, wantOK)
		}
		pathsIdentical(t, "edge-dropped seeded run", paths, wantPaths)
		if warm.SeededEdges != len(child) {
			t.Fatalf("trial %d: SeededEdges=%d, want %d aligned", trial, warm.SeededEdges, len(child))
		}
		if cold.Searches != warm.Searches+warm.SeededHits {
			t.Fatalf("trial %d: counters invariant broken:\ncold %+v\nwarm %+v", trial, cold, warm)
		}
	}
}

// TestSeedRejectsMismatch: a seed from another grid, another parameter set,
// or with a malformed shape is ignored — the run is a plain cold run.
func TestSeedRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	g, obs, edges := randomNegotiateInstance(rng)
	var cap NegotiationSeed
	wantPaths, wantOK, cold := negRun(g, obs, edges, 0, nil, &cap, false)

	reject := func(label string, seed *NegotiationSeed) {
		t.Helper()
		paths, ok, warm := negRun(g, obs, edges, 0, seed, nil, false)
		if ok != wantOK {
			t.Fatalf("%s: ok=%v, want %v", label, ok, wantOK)
		}
		pathsIdentical(t, label, paths, wantPaths)
		if warm.SeededEdges != 0 || warm.SeededHits != 0 {
			t.Fatalf("%s: seed not rejected: %+v", label, warm)
		}
		if warm.Searches != cold.Searches {
			t.Fatalf("%s: rejected seed changed search count: %d vs %d", label, warm.Searches, cold.Searches)
		}
	}

	wrongGrid := cap
	wrongGrid.W++
	reject("wrong grid", &wrongGrid)

	wrongSig := cap
	wrongSig.ParamsSig = "bh=2;a=0.5;g=3"
	reject("wrong params", &wrongSig)

	malformed := cap
	malformed.Rounds = make([][]SeedEntry, len(cap.Rounds))
	copy(malformed.Rounds, cap.Rounds)
	malformed.Rounds[0] = append([]SeedEntry{{Edge: len(cap.Edges) + 7, Visits: make([]uint64, len(cap.Start))}}, cap.Rounds[0]...)
	reject("malformed edge index", &malformed)

	truncated := cap
	truncated.Start = cap.Start[:len(cap.Start)-1]
	reject("truncated start bitmap", &truncated)
}

// TestAlignEdges: exact-signature monotone matching — identical lists align
// fully, a dropped element aligns the rest, a permutation aligns a longest
// monotone subsequence, and signature collisions never align unequal edges.
func TestAlignEdges(t *testing.T) {
	mk := func(pts ...geom.Pt) Edge {
		return Edge{Sources: pts[:1], Targets: pts[1:]}
	}
	a := mk(geom.Pt{X: 0, Y: 0}, geom.Pt{X: 5, Y: 0})
	b := mk(geom.Pt{X: 0, Y: 1}, geom.Pt{X: 5, Y: 1})
	c := mk(geom.Pt{X: 0, Y: 2}, geom.Pt{X: 5, Y: 2})
	d := mk(geom.Pt{X: 0, Y: 3}, geom.Pt{X: 5, Y: 3})
	sig := func(e Edge) SeedEdge { return SeedEdge{Sources: e.Sources, Targets: e.Targets} }

	parent := []SeedEdge{sig(a), sig(b), sig(c), sig(d)}
	got := alignEdges([]Edge{a, b, c, d}, parent, nil)
	for i, pj := range got {
		if pj != i {
			t.Fatalf("identity alignment: align[%d]=%d", i, pj)
		}
	}

	got = alignEdges([]Edge{a, c, d}, parent, got)
	want := []int{0, 2, 3}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dropped-element alignment: got %v, want %v", got, want)
		}
	}

	// Permutation: only a monotone subsequence may align.
	got = alignEdges([]Edge{b, a, c}, parent, got)
	matched := 0
	last := -1
	for i, pj := range got {
		if pj < 0 {
			continue
		}
		matched++
		if pj <= last {
			t.Fatalf("non-monotone alignment %v", got)
		}
		last = pj
		if !edgeSigEqual(&[]Edge{b, a, c}[i], &parent[pj]) {
			t.Fatalf("aligned unequal signatures at child %d parent %d", i, pj)
		}
	}
	if matched < 2 {
		t.Fatalf("permutation aligned only %d edges: %v", matched, got)
	}
}
