package route

import (
	"fmt"
	"math"
)

// This file implements the Dial-style bucket queue behind the bucket QueueMode
// and the fixed-point quantization certificate that gates it.
//
// Both grid searches order their frontiers by an f key plus a deterministic
// tie-break (openLess / boundedLess: smaller f first, earlier push first).
// When
// every key the search can produce is an exact integer — unit step costs, or
// Eq.-5 history costs certified by HistQuant — the binary heap can be replaced
// by a ring of B = 2^k buckets indexed key mod B: push is O(1), pop advances a
// monotone cursor and takes the head of the first nonempty bucket. Within one
// bucket, items chain in push order and pop FIFO — the heaps' tie-break — so
// the pop sequence of the two
// implementations is identical item for item. Identical pop sequences mean
// identical expansions, stamps, and parent writes, so routed output is
// byte-identical between queue modes (the PR 5 identity property test sweeps
// this).
//
// The ring window: a bucket queue is valid while all live keys fit in
// [cur, cur+B). For A* with a consistent heuristic, a key pushed after popping
// f is in [f, f+maxStep+scale] (the heuristic moves by at most one cell, i.e.
// `scale` in fixed-point units), and before the first pop the live keys span
// the initial heuristic spread of the sources. The bounded search's
// under-length penalty (prio = 2*minLen − f) *decreases* as paths stretch, so
// its pushes can land below the cursor; push rolls the cursor back, and the
// ring is sized for the whole key universe [minLen, max(2*minLen, maxLen+H)]
// instead of a sliding window. When the required ring exceeds maxBucketSpan,
// the search falls back to the heap — same output, different constant factor.

// QueueMode selects the open-list implementation behind the grid searches.
type QueueMode uint8

const (
	// QueueAuto defers the choice: a request inherits its workspace's default
	// (SetQueueMode), and an auto workspace uses the bucket queue whenever the
	// request's key domain is certified integral, the heap otherwise.
	//
	// QueueAuto selects only between the heap and the bucket queue — never
	// BiAStar. The bidirectional search is cost-only: its path can differ in
	// shape (never length) from AStar's, so auto-selecting it would silently
	// change routed output. There is deliberately no QueueMode for it;
	// callers that only need a path cost opt in explicitly via BiAStar
	// (TestQueueAutoNeverSelectsBidir pins this).
	QueueAuto QueueMode = iota
	// QueueHeap forces the binary heap.
	QueueHeap
	// QueueBucket requests the Dial bucket queue; requests whose cost domain
	// is not exactly representable (or whose ring would exceed maxBucketSpan)
	// still fall back to the heap, preserving correctness over speed.
	QueueBucket
)

// String returns the flag spelling of m.
func (m QueueMode) String() string {
	switch m {
	case QueueHeap:
		return "heap"
	case QueueBucket:
		return "bucket"
	default:
		return "auto"
	}
}

// ParseQueueMode parses a -queue flag value.
func ParseQueueMode(s string) (QueueMode, error) {
	switch s {
	case "auto", "":
		return QueueAuto, nil
	case "heap":
		return QueueHeap, nil
	case "bucket":
		return QueueBucket, nil
	}
	return QueueAuto, fmt.Errorf("route: unknown queue mode %q (want auto|heap|bucket)", s)
}

const (
	// maxBucketSpan caps the ring size; searches whose key span would exceed
	// it run on the heap instead. 2^17 int32 heads is 512 KiB, allocated once
	// per workspace and reused.
	maxBucketSpan = 1 << 17
	// maxQuantScale caps the fixed-point scale HistQuant will certify. Scales
	// are powers of two, so scaling float64 costs is always exact; the cap
	// bounds the scaled key span (ring size) instead of precision.
	maxQuantScale = 1 << 12
)

// HistQuant computes the bucket-queue quantization certificate for the
// negotiation history domain: after `bumps` applications of Eq. 5
// (h' = base + alpha·h, starting from 0), every cell's history is one of the
// iterates h_0..h_bumps, so every step cost is 1+h_k. HistQuant returns the
// smallest power-of-two scale such that (1+h_k)·scale is an exact integer in
// float64 for every k ≤ bumps, plus the largest scaled step. ok=false when no
// scale ≤ maxQuantScale works — e.g. the paper's alpha = 0.1 once bumps ≥ 2
// (1.1 is not a dyadic rational) — in which case the search keeps the float64
// heap. Powers of two keep the certificate honest: multiplying a float64 by
// 2^k never rounds, so "scaled value is integral" is checkable exactly.
func HistQuant(base, alpha float64, bumps int) (scale, maxStep int64, ok bool) {
	scale = 1
	h := 0.0
	for k := 0; k <= bumps; k++ {
		step := 1.0 + h
		if h < 0 || step <= 0 || step > float64(maxBucketSpan) {
			return 0, 0, false
		}
		for {
			s := step * float64(scale)
			if s == math.Trunc(s) {
				break
			}
			if scale >= maxQuantScale {
				return 0, 0, false
			}
			scale <<= 1
		}
		h = base + alpha*h
	}
	// Second pass at the final scale: earlier iterates stay integral when the
	// scale doubles, so only the max needs recomputing.
	h = 0.0
	for k := 0; k <= bumps; k++ {
		if s := int64((1.0 + h) * float64(scale)); s > maxStep {
			maxStep = s
		}
		h = base + alpha*h
	}
	return scale, maxStep, true
}

// quant returns the request's certified fixed-point key domain: the scale and
// the largest scaled step cost. ok=false means the cost domain carries no
// integrality certificate (caller-supplied Hist without HistScale) and the
// search must use the heap.
func (r *Request) quant() (scale, maxStep int64, ok bool) {
	if r.Hist == nil {
		return 1, 1, true
	}
	if r.HistScale > 0 {
		return r.HistScale, r.HistMax, true
	}
	return 0, 0, false
}

// bqNode is one queued item: the payload value and the index of the next node
// in the same bucket (-1 ends the chain).
type bqNode struct {
	val  int32
	next int32
}

// bucketQueue is the reusable Dial ring. prep sizes it for one search; nodes
// are allocated append-only and recycled wholesale by the next prep. Each
// bucket is a singly linked chain pushed at the tail and popped at the head,
// so equal-key items pop in push order — the searches' FIFO tie-break.
type bucketQueue struct {
	head  []int32 // per-bucket chain head into nodes, -1 when empty
	tail  []int32 // per-bucket chain tail
	nodes []bqNode
	mask  int64
	cur   int64
	count int
}

// prep empties the queue and sizes the ring so keys spanning at most `span`
// (max key − min key) fit the window invariant. It reports false when the
// required ring would exceed maxBucketSpan; the caller then uses the heap.
//
//pacor:allow hotalloc ring and node arrays are workspace-resident, (re)allocated only when the span high-water mark grows
func (q *bucketQueue) prep(span int64) bool {
	if span < 0 || span >= maxBucketSpan {
		return false
	}
	b := int64(1)
	for b <= span {
		b <<= 1
	}
	if int64(len(q.head)) < b {
		q.head = make([]int32, b)
		q.tail = make([]int32, b)
	}
	h := q.head[:b]
	for i := range h {
		h[i] = -1
	}
	q.mask = b - 1
	q.cur = 0
	q.count = 0
	q.nodes = q.nodes[:0]
	return true
}

// push inserts val with the given key. A key below the cursor rolls the
// cursor back (the bounded search's under-length penalty shrinks keys).
//
//pacor:allow hotalloc amortized node-pool growth, capacity reused across searches
func (q *bucketQueue) push(key int64, val int32) {
	if q.count == 0 || key < q.cur {
		q.cur = key
	}
	b := key & q.mask
	n := int32(len(q.nodes))
	q.nodes = append(q.nodes, bqNode{val: val, next: -1})
	if q.head[b] < 0 {
		q.head[b] = n
	} else {
		q.nodes[q.tail[b]].next = n
	}
	q.tail[b] = n
	q.count++
}

// pop removes and returns the value with the smallest key (earliest push
// among equals). ok=false when the queue is empty. The cursor only moves
// forward past empty buckets; the window invariant guarantees the scan
// terminates within one ring revolution.
func (q *bucketQueue) pop() (val int32, ok bool) {
	if q.count == 0 {
		return -1, false
	}
	for {
		b := q.cur & q.mask
		n := q.head[b]
		if n >= 0 {
			q.head[b] = q.nodes[n].next
			q.count--
			return q.nodes[n].val, true
		}
		q.cur++
	}
}
