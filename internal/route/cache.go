package route

import (
	"fmt"
	"math/bits"

	"repro/internal/grid"
)

// This file implements the incremental negotiation cache: per-edge results
// carried across Algorithm 1 rounds, invalidated by a generation-stamped
// dirty-cell map.
//
// Correctness argument (the dirty-cone invariant, see docs/ALGORITHMS.md):
// a tracked search stamps every cell into its visit cone *before* reading
// that cell's obstacle or history state, so the cone is a superset of every
// cell whose external state the search observed. If no cone cell's state
// changed since the search ran, re-running it would read exactly the same
// values at every step — same frontier, same tie-breaks, same transcript —
// and must return the identical result. Such an edge replays its cached
// path (or cached failure) without running A* at all.
//
// Dirty cells come from two sources. First, the end-of-round history bump
// (Eq. 5) marks every cell of every routed path — which is why an edge that
// routed successfully can never replay across a failing round: its own path
// is inside its own cone. The cache instead pays off on edges that *failed*:
// an edge walled into a pocket by static obstacles floods the same sealed
// region every round, and that exhaustive failure replays for free. Second,
// an edge whose fresh outcome differs from its previous round's marks both
// the old and the new path cells: edges later in the sequence saw a
// different obstacle suffix and must not replay against the stale one. The
// marks use a monotone clock; an entry is valid only if no cone cell was
// marked after the entry was recorded. Marks by later edges spuriously
// invalidate earlier edges' entries in the next round — conservative, never
// unsound.

// NegotiateStats reports one (or, when accumulated, several) negotiation
// runs' work and cache behavior, and on failure the edges left unrouted.
type NegotiateStats struct {
	// Rounds counts Algorithm 1 iterations executed.
	Rounds int
	// Searches counts A* runs in the sequential transcript (scheduler-internal
	// speculative re-runs are not counted; they exist at any worker count's
	// discretion and never change the output).
	Searches int
	// CacheHits counts edges replayed from a valid cached cone.
	CacheHits int
	// CacheMisses counts edges searched while the cache was active (rounds
	// past the warm-up) because their entry was absent or invalidated.
	CacheMisses int
	// Invalidated counts the subset of CacheMisses whose entry existed but
	// had a dirty cell inside its cone.
	Invalidated int
	// SeededEdges counts child edges aligned to a cross-run seed's transcript
	// (seed.go) — the edges *eligible* for cross-run replay this run.
	SeededEdges int
	// SeededHits counts cross-run replays actually taken: (round, edge)
	// outcomes copied from the parent transcript instead of searched. Each
	// one is a search a cold run would have executed, so
	// Searches_cold = Searches_seeded + SeededHits whenever fresh-search
	// cones are deterministic (always, for flat negotiation).
	SeededHits int
	// Hier counts the hierarchical router's work (zero when the hierarchy is
	// off or below its auto threshold).
	Hier HierStats
	// FailedIDs lists, in edge order, the IDs left unrouted in the final
	// round when negotiation gave up (ok=false); empty on success.
	FailedIDs []int
}

// Add accumulates o into s (FailedIDs concatenate in call order).
func (s *NegotiateStats) Add(o NegotiateStats) {
	s.Rounds += o.Rounds
	s.Searches += o.Searches
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Invalidated += o.Invalidated
	s.SeededEdges += o.SeededEdges
	s.SeededHits += o.SeededHits
	s.Hier.Add(o.Hier)
	s.FailedIDs = append(s.FailedIDs, o.FailedIDs...) //pacor:allow hotalloc stats aggregation runs once per flow stage, not per search
}

// negEntry is one edge slot's cached search result.
type negEntry struct {
	// recorded is false until the slot's first tracked search this
	// negotiation run; round 0 runs untracked (lazy warm-up), so entries
	// appear in round 1 and replays start in round 2.
	recorded bool
	// ok / path are the recorded outcome (path nil when !ok).
	ok   bool
	path grid.Path
	// clock is the dirty clock at recording time; the entry is stale once
	// any cone cell carries a higher mark.
	clock int32
	// visits is the recorded search's visit cone (see Workspace.vbits).
	visits []uint64
}

// negReset prepares the workspace's cache state for one negotiation run of
// n edges on g: dirty map cleared, clock rewound, every entry unrecorded.
//
//pacor:allow hotalloc per-cell dirty map and entry table are workspace-resident, (re)allocated only on grid or edge-count growth
func (w *Workspace) negReset(g grid.Grid, n int) {
	if len(w.negDirty) != g.Cells() {
		w.negDirty = make([]int32, g.Cells())
	} else {
		clear(w.negDirty)
	}
	w.negClock = 0
	if cap(w.negEntries) < n {
		w.negEntries = make([]negEntry, n)
	}
	w.negEntries = w.negEntries[:n]
	for i := range w.negEntries {
		w.negEntries[i].recorded = false
	}
}

// negWorkFor returns the workspace-resident negotiation work map for g.
//
//pacor:allow hotalloc allocated once per grid change, reused across negotiation runs
func (w *Workspace) negWorkFor(g grid.Grid) *grid.ObsMap {
	if w.negWork == nil || w.negWork.Grid() != g {
		w.negWork = grid.NewObsMap(g)
	}
	return w.negWork
}

// negEntryValid reports whether e replays exactly: recorded, with no cell of
// its visit cone dirtied after it was recorded.
func (w *Workspace) negEntryValid(e *negEntry) bool {
	if !e.recorded {
		return false
	}
	for wi, word := range e.visits {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			if w.negDirty[i] > e.clock {
				return false
			}
			word &= word - 1
		}
	}
	return true
}

// negRecord stores an edge slot's fresh outcome and visit cone. When the
// outcome differs from the previous round's, the old and new path cells are
// marked dirty under a fresh clock tick — later edges saw a different
// obstacle suffix. The entry itself records the post-mark clock: the edge's
// own *inputs* did not change because its output did.
func (w *Workspace) negRecord(g grid.Grid, ent *negEntry, p grid.Path, ok bool, visits []uint64) {
	if ent.recorded && (ok != ent.ok || !pathsEqual(p, ent.path)) {
		w.negClock++
		for _, c := range ent.path {
			w.negDirty[g.Index(c)] = w.negClock
		}
		for _, c := range p {
			w.negDirty[g.Index(c)] = w.negClock
		}
	}
	ent.recorded = true
	ent.ok = ok
	ent.path = p
	ent.clock = w.negClock
	ent.visits = append(ent.visits[:0], visits...) //pacor:allow hotalloc per-entry cone buffer, grown once and reused across rounds
}

// negCheck is the -checkcache validation: re-run the search a hit would
// skip and fail loudly if the replayed result is not byte-identical. It
// mirrors the scheduler's speculative-commit validation, but as a hard
// failure — a divergence here means the dirty-cone invariant is broken.
func (w *Workspace) negCheck(g grid.Grid, req Request, id int, ent *negEntry) {
	p, ok := w.AStar(g, req)
	if ok != ent.ok || !pathsEqual(p, ent.path) {
		panic(fmt.Sprintf(
			"route: negotiation cache divergence on edge %d: cached ok=%v len=%d, fresh ok=%v len=%d",
			id, ent.ok, ent.path.Len(), ok, p.Len()))
	}
}

// pathsEqual reports cell-exact path equality.
func pathsEqual(a, b grid.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
