package route

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/mcf"
)

// This file implements the hierarchical two-stage negotiation router: a
// global stage assigns every edge a corridor of tiles with the min-cost-flow
// solver on the tile coarsening (tile.go), and the detailed stage confines
// each edge's A* to its corridor via Request.Mask.
//
// The hierarchy is EXACT for negotiation — a wall-clock knob, never a quality
// knob. The escalation ladder (hierSearch) accepts a masked result only when
// Workspace.Clipped reports that the mask never rejected a frontier cell, in
// which case the masked transcript is identical to the unmasked one; any
// clipped attempt escalates (corridor → wide corridor → no mask), and the
// final rung is the plain flat search. Committed paths therefore always equal
// the flat router's byte for byte, the golden outputs stay pinned, and the
// incremental cache's recorded cones stay sound (a ladder cone is a superset
// of the flat cone, so invalidation only ever over-triggers).
//
// What the corridor buys: on large grids the dominant cost of a failed or
// long search is the frontier disk. A corridor mask turns each search into a
// band around the tile path the global stage picked, and the global stage
// prices tile crossings by residual capacity (congestion steps) and by the
// negotiation history of the tiles, so corridors of different edges spread
// before the detailed searches ever collide.

// HierMode selects whether the hierarchical two-stage router runs.
type HierMode uint8

const (
	// HierAuto turns the hierarchy on only above HierParams.AutoCells grid
	// cells: small instances (where flat search is already cheap, and whose
	// golden outputs predate the hierarchy) run flat, large instances run
	// hierarchically.
	HierAuto HierMode = iota
	// HierOff forces the flat router.
	HierOff
	// HierOn forces the hierarchy regardless of grid size.
	HierOn
)

// String returns the flag spelling of m.
func (m HierMode) String() string {
	switch m {
	case HierOff:
		return "off"
	case HierOn:
		return "on"
	default:
		return "auto"
	}
}

// ParseHierMode parses a -hier flag value.
func ParseHierMode(s string) (HierMode, error) {
	switch s {
	case "auto", "":
		return HierAuto, nil
	case "off":
		return HierOff, nil
	case "on":
		return HierOn, nil
	}
	return HierAuto, fmt.Errorf("route: unknown hier mode %q (want auto|on|off)", s)
}

const (
	// DefaultTileSize is the tile side length of the coarsening. 32 keeps the
	// tile graph tiny (a 1024x1024 grid is 32x32 = 1024 tiles) while leaving
	// enough cells per tile boundary for meaningful crossing capacities.
	DefaultTileSize = 32
	// DefaultHierAutoCells is the HierAuto threshold: grids at or below this
	// many cells route flat. 80000 keeps every golden-pinned Table 1 design
	// (largest: Chip1 at 179x413 = 73927 cells) on the flat router while the
	// XL family (300x300 = 90000 cells and up) goes hierarchical.
	DefaultHierAutoCells = 80000

	// hierCorridorHalo / hierWideHalo are the tile dilations of the two
	// masked ladder rungs: the corridor plus one tile of slack, then a widened
	// band before falling back to the unmasked search.
	hierCorridorHalo = 1
	hierWideHalo     = 3
)

// HierParams configures the hierarchical router. The zero value is HierAuto
// with default tile size and threshold, so callers opt in by grid size alone.
type HierParams struct {
	Mode HierMode
	// TileSize is the tile side length, rounded up to a power of two.
	// 0 means DefaultTileSize.
	TileSize int
	// AutoCells is the HierAuto cell-count threshold (hierarchy on strictly
	// above it). 0 means DefaultHierAutoCells.
	AutoCells int
}

// tileSize resolves the effective tile side length.
func (p HierParams) tileSize() int {
	if p.TileSize <= 0 {
		return DefaultTileSize
	}
	return p.TileSize
}

// On reports whether the hierarchy runs on a grid with the given cell count.
func (p HierParams) On(cells int) bool {
	switch p.Mode {
	case HierOff:
		return false
	case HierOn:
		return true
	}
	ac := p.AutoCells
	if ac <= 0 {
		ac = DefaultHierAutoCells
	}
	return cells > ac
}

// HierStats counts the hierarchical router's per-stage work. All fields
// accumulate across runs (Add).
type HierStats struct {
	// Tiles is the number of tile nodes built by global-stage preparations.
	Tiles int
	// Corridors / NoCorridor split the per-round edge assignments: edges the
	// global stage gave a corridor vs. edges it could not (terminals spanning
	// tiles, or no residual tile capacity left) which search flat directly.
	Corridors  int
	NoCorridor int
	// CorridorHits / Widened / FlatFallbacks split the detailed searches by
	// the ladder rung that produced the accepted (never-clipped, or final
	// flat) result.
	CorridorHits  int
	Widened       int
	FlatFallbacks int
	// Repaired counts the escape detailed stage's repair rounds: re-runs of
	// the tile-level global assignment on the updated obstacle state for the
	// clusters whose corridor searches failed (zero for the negotiation
	// hierarchy, whose committed results never depend on commit order).
	Repaired int
	// Refined counts escape paths shortened by the penalty-free rip-up pass
	// that follows the greedy commit (also escape-only).
	Refined int
	// WindowCells sums the corridor window areas the detailed stage searched
	// in place of whole-grid disks.
	WindowCells int64
}

// Add accumulates o into s.
func (s *HierStats) Add(o HierStats) {
	s.Tiles += o.Tiles
	s.Corridors += o.Corridors
	s.NoCorridor += o.NoCorridor
	s.CorridorHits += o.CorridorHits
	s.Widened += o.Widened
	s.FlatFallbacks += o.FlatFallbacks
	s.Repaired += o.Repaired
	s.Refined += o.Refined
	s.WindowCells += o.WindowCells
}

// hierLevel identifies the ladder rung that produced a search result.
type hierLevel uint8

const (
	hierLevelNone hierLevel = iota // no corridor: searched flat directly
	hierLevelCorridor
	hierLevelWidened
	hierLevelFlat
)

// count folds one accepted search's rung into the stats.
func (s *HierStats) count(lvl hierLevel) {
	switch lvl {
	case hierLevelCorridor:
		s.CorridorHits++
	case hierLevelWidened:
		s.Widened++
	case hierLevelFlat:
		s.FlatFallbacks++
	}
}

// hierArc remembers one tile-graph arc for per-round re-pricing: the AddArc
// id, the tile the arc enters, and its congestion-stepped base cost.
type hierArc struct {
	id   int32
	to   int32
	base int32
}

// hierState is the workspace-resident hierarchical-router state: the tile
// coarsening and corridor graph of the current negotiation run, and the
// per-edge corridor masks of the current round. The mask bitmaps live in one
// shared slab sliced per edge.
type hierState struct {
	run    bool
	tiling Tiling
	graph  *mcf.Graph
	solver mcf.Solver
	arcs   []hierArc

	has   []bool
	masks []TileMask
	wide  []TileMask
	win   []geom.Rect
	bits  []uint64

	pen      []float64 // per-tile history mass (scratch, round re-pricing)
	corridor []int32   // current edge's corridor tiles (scratch)
}

// hierPrepare builds the run's tile coarsening and corridor graph from the
// round-start work map (terminals already blocked) and sizes the per-edge
// mask slabs. Called once per negotiation run; the graph is re-priced and
// re-solved per round by hierAssign, never rebuilt.
//
// Tile adjacency arcs are congestion-stepped: about half the crossing
// capacity at base cost T (the tile side — one tile of detailed routing),
// the remainder at 3T, in both directions. A corridor through a half-used
// boundary therefore pays a premium before the boundary is full, which
// spreads corridors across parallel routes instead of saturating one.
//
//pacor:allow hotalloc per-run graph and slab construction, amortized over every round's corridor assignments and searches
func (w *Workspace) hierPrepare(work *grid.ObsMap, nEdges int, hp HierParams, stats *NegotiateStats) {
	h := &w.hier
	h.run = true
	h.tiling.Rebuild(work, hp.tileSize()) //pacor:allow snapshotread runs on the round-start work map before any speculative worker exists, never on a scheduler snapshot
	nt := h.tiling.Tiles()
	size := h.tiling.Size()
	h.graph = mcf.NewGraph(nt)
	h.arcs = h.arcs[:0]
	h.tiling.ForEachAdjacency(func(u, v, c int) {
		fast := (c + 1) / 2
		h.addArc(u, v, fast, size)
		h.addArc(v, u, fast, size)
		if rest := c - fast; rest > 0 {
			h.addArc(u, v, rest, 3*size)
			h.addArc(v, u, rest, 3*size)
		}
	})

	words := h.tiling.maskWords()
	need := 2 * nEdges * words
	if cap(h.bits) < need {
		h.bits = make([]uint64, need)
	}
	h.bits = h.bits[:need]
	if cap(h.has) < nEdges {
		h.has = make([]bool, nEdges)
		h.masks = make([]TileMask, nEdges)
		h.wide = make([]TileMask, nEdges)
		h.win = make([]geom.Rect, nEdges)
	}
	h.has = h.has[:nEdges]
	h.masks = h.masks[:nEdges]
	h.wide = h.wide[:nEdges]
	h.win = h.win[:nEdges]
	if cap(h.pen) < nt {
		h.pen = make([]float64, nt)
	}
	h.pen = h.pen[:nt]
	if stats != nil {
		stats.Hier.Tiles += nt
	}
}

// addArc adds one tile-graph arc and records it for re-pricing.
//
//pacor:allow hotalloc amortized arc-record growth, reused across runs
func (h *hierState) addArc(u, v, capacity, base int) {
	id := h.graph.AddArc(u, v, capacity, base)
	h.arcs = append(h.arcs, hierArc{id: int32(id), to: int32(v), base: int32(base)})
}

// singleTile reports the common tile of pts; ok=false when pts is empty or
// spans tiles (such an edge gets no corridor and searches flat).
func (t *Tiling) singleTile(pts []geom.Pt) (int, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	ti := t.TileOf(pts[0])
	for _, p := range pts[1:] {
		if t.TileOf(p) != ti {
			return 0, false
		}
	}
	return ti, true
}

// hierAssign runs the global stage for one round: reset the corridor graph,
// re-price tile entries by the round's negotiation history, then assign each
// edge a corridor with a unit min-cost flow, committing each edge's flow so
// later edges see the residual congestion. Edges without a corridor (multi-
// tile terminals, or no residual capacity) search flat.
//
//pacor:allow hotalloc per-corridor decomposition scratch inside the mcf solver, amortized over the round's searches
func (w *Workspace) hierAssign(edges []Edge, hist []float64, round int, stats *NegotiateStats) {
	h := &w.hier
	t := &h.tiling
	h.graph.Reset()
	if round > 0 {
		// Fold the round's history into the arc costs: entering tile v costs
		// its base plus T times v's mean per-cell history, truncated to an
		// integer. The per-tile mass is accumulated by one index-order scan of
		// hist, so the float sums — and the priced costs — are deterministic.
		clear(h.pen)
		for i, v := range hist {
			if v != 0 {
				h.pen[t.TileOfIndex(i)] += v
			}
		}
		size := float64(t.Size())
		area := size * size
		for _, a := range h.arcs {
			pen := int64(size * h.pen[a.to] / area)
			h.graph.SetCost(int(a.id), int(a.base)+int(pen))
		}
	}

	words := t.maskWords()
	clear(h.bits)
	for ei := range edges {
		h.has[ei] = false
		e := &edges[ei]
		st, okS := t.singleTile(e.Sources)
		dt, okT := t.singleTile(e.Targets)
		if !okS || !okT {
			if stats != nil {
				stats.Hier.NoCorridor++
			}
			continue
		}
		h.corridor = h.corridor[:0]
		if st == dt {
			h.corridor = append(h.corridor, int32(st)) //pacor:allow hotalloc amortized corridor scratch, reused across edges
		} else {
			if f, _ := h.solver.MinCostFlow(h.graph, st, dt, 1); f != 1 {
				if stats != nil {
					stats.Hier.NoCorridor++
				}
				continue
			}
			paths := h.graph.DecomposeUnitPaths(st, dt)
			h.graph.Commit() // bake this edge's flow in: later edges can't cancel it
			if len(paths) == 0 {
				if stats != nil {
					stats.Hier.NoCorridor++
				}
				continue
			}
			for _, nd := range paths[0] {
				h.corridor = append(h.corridor, int32(nd)) //pacor:allow hotalloc amortized corridor scratch, reused across edges
			}
		}
		mb := h.bits[2*ei*words : (2*ei+1)*words]
		wb := h.bits[(2*ei+1)*words : (2*ei+2)*words]
		t.fillMask(&h.masks[ei], mb, h.corridor, hierCorridorHalo)
		t.fillMask(&h.wide[ei], wb, h.corridor, hierWideHalo)
		h.win[ei] = t.CorridorRect(h.corridor, hierCorridorHalo)
		h.has[ei] = true
		if stats != nil {
			stats.Hier.Corridors++
			stats.Hier.WindowCells += int64(h.win[ei].Area())
		}
	}
}

// hierSearch routes one request through the corridor escalation ladder:
// corridor mask, widened mask, then no mask. A masked rung's result is
// accepted only when the search never clipped (mask rejected nothing), which
// makes its transcript — and result — identical to the flat search's; any
// clipped rung escalates, successful or not, so the returned path ALWAYS
// equals the flat router's. Safe on scheduler worker workspaces: the masks
// are read-only and the ladder touches only the receiver's search state.
func (w *Workspace) hierSearch(g grid.Grid, req Request, mask, wide *TileMask) (grid.Path, bool, hierLevel) {
	req.Mask = mask
	p, ok := w.AStar(g, req)
	if w.clipped == 0 {
		return p, ok, hierLevelCorridor
	}
	req.Mask = wide
	p, ok = w.AStar(g, req)
	if w.clipped == 0 {
		return p, ok, hierLevelWidened
	}
	req.Mask = nil
	p, ok = w.AStar(g, req)
	return p, ok, hierLevelFlat
}

// negSearch is the negotiation round's search entry point: the ladder when
// edge ei holds a corridor, the flat search otherwise.
func (w *Workspace) negSearch(g grid.Grid, req Request, ei int) (grid.Path, bool, hierLevel) {
	h := &w.hier
	if !h.run || !h.has[ei] {
		p, ok := w.AStar(g, req)
		return p, ok, hierLevelNone
	}
	return w.hierSearch(g, req, &h.masks[ei], &h.wide[ei])
}
