package route

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestReleaseWorkspaceDouble is the dynamic counterpart of the wsaliasing
// analyzer's double-release check: releasing the same workspace twice must
// not put it into the pool twice, or two subsequent acquires would hand
// the same pointer to two owners.
func TestReleaseWorkspaceDouble(t *testing.T) {
	g := grid.New(17, 13) // odd size to get a dedicated pool
	ws := AcquireWorkspace(g)
	ReleaseWorkspace(ws)
	ReleaseWorkspace(ws) // must be a no-op

	a := AcquireWorkspace(g)
	b := AcquireWorkspace(g)
	if a == b {
		t.Fatalf("double release put one workspace into the pool twice: both acquires returned %p", a)
	}
	ReleaseWorkspace(a)
	ReleaseWorkspace(b)
}

// TestReleaseWorkspaceNil pins the documented no-op cases.
func TestReleaseWorkspaceNil(t *testing.T) {
	ReleaseWorkspace(nil)
	ReleaseWorkspace(&Workspace{}) // zero cells: never pooled
}

// TestAcquireWorkspaceReacquire checks that a released workspace can be
// acquired and used again: the acquire clears the pooled flag.
func TestAcquireWorkspaceReacquire(t *testing.T) {
	g, obs := scatterObs(24, 24, 60, 21)
	req := Request{Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 23, Y: 23}}, Obs: obs}
	want, okWant := AStar(g, req)

	ws := AcquireWorkspace(g)
	ReleaseWorkspace(ws)
	ws = AcquireWorkspace(g)
	got, ok := ws.AStar(g, req)
	if ok != okWant || (ok && got.Len() != want.Len()) {
		t.Fatalf("reacquired workspace: ok=%v len=%d, want ok=%v len=%d", ok, got.Len(), okWant, want.Len())
	}
	ReleaseWorkspace(ws)
}

// TestWorkspaceCrossGridReuse routes on two different grid sizes through
// the pooled wrappers: each size must draw from its own pool, and results
// must match fresh workspaces on both.
func TestWorkspaceCrossGridReuse(t *testing.T) {
	gSmall, obsSmall := scatterObs(16, 16, 40, 5)
	gLarge, obsLarge := scatterObs(40, 40, 300, 6)

	reqSmall := Request{Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 15, Y: 15}}, Obs: obsSmall}
	reqLarge := Request{Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 39, Y: 39}}, Obs: obsLarge}

	wantSmall, okSmall := NewWorkspace(gSmall).AStar(gSmall, reqSmall)
	wantLarge, okLarge := NewWorkspace(gLarge).AStar(gLarge, reqLarge)

	for i := 0; i < 4; i++ {
		ws := AcquireWorkspace(gSmall)
		if ws.cells != gSmall.Cells() {
			t.Fatalf("iteration %d: small-grid acquire returned %d-cell workspace, want %d", i, ws.cells, gSmall.Cells())
		}
		p, ok := ws.AStar(gSmall, reqSmall)
		if ok != okSmall || (ok && p.Len() != wantSmall.Len()) {
			t.Fatalf("iteration %d: small grid ok=%v len=%d, want ok=%v len=%d", i, ok, p.Len(), okSmall, wantSmall.Len())
		}
		ReleaseWorkspace(ws)

		wl := AcquireWorkspace(gLarge)
		if wl.cells != gLarge.Cells() {
			t.Fatalf("iteration %d: large-grid acquire returned %d-cell workspace, want %d", i, wl.cells, gLarge.Cells())
		}
		p, ok = wl.AStar(gLarge, reqLarge)
		if ok != okLarge || (ok && p.Len() != wantLarge.Len()) {
			t.Fatalf("iteration %d: large grid ok=%v len=%d, want ok=%v len=%d", i, ok, p.Len(), okLarge, wantLarge.Len())
		}
		ReleaseWorkspace(wl)
	}
}
