package route

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
)

// This file implements cross-run negotiation seeding: a NegotiationSeed
// captures one run's full per-round transcript — every edge's outcome and
// visit cone, round by round — and a later run on a near-identical design
// replays entries from it instead of searching.
//
// Correctness argument (the cross-run extension of cache.go's dirty-cone
// invariant, see docs/ALGORITHMS.md): the parent's entry for (round r, edge
// j) replays exactly in the child at (round r, child edge i aligned to j)
// when no cell of its recorded cone differs between the two runs' states at
// that point. Divergence is tracked in a monotone cross-run dirty bitmap
// seeded with the start-state diff (obstacles, valves, terminals — the
// design edit) and grown with the cells of every path where the child's
// committed outcome differs from the parent's. By induction over the
// sequential transcript, a cell outside the bitmap holds the same obstacle
// and history value in both runs at corresponding points: history bumps are
// deterministic per-cell functions of the rounds' routed paths, and every
// differing path is marked in full (old and new) the moment it diverges,
// while unaligned edges' paths — present in only one run — are marked
// unconditionally. A recorded cone is a superset of every cell its search
// read (the stamp-before-read discipline of workspace.go), so a cone
// disjoint from the bitmap proves the child's fresh search would read
// identical values at every step and return the identical result.
//
// The within-run cache (cache.go) keeps operating unchanged underneath:
// every cross-run replay performs exactly the bookkeeping the fresh search
// it replaced would have performed (negRecord with the same outcome and the
// same cone), so the within-run entry tables, dirty clocks, and hit/miss
// pattern of a seeded run are identical to a cold run's. That makes the
// counters invariant Searches_cold = Searches_seeded + SeededHits hold by
// construction whenever the fresh-search cones are deterministic (always
// true for flat negotiation; with the hierarchy engaged, differing corridor
// assignments between parent and child can change cones — never outcomes —
// and the invariant degrades to an inequality).

// SeedEdge identifies one edge slot of the captured run by its routing
// request (the committed source and target cells). Alignment between runs
// matches these signatures, not edge IDs, so re-labeled but geometrically
// identical requests still pair up.
type SeedEdge struct {
	Sources []geom.Pt
	Targets []geom.Pt
}

// SeedEntry is one (round, edge) outcome of the captured run: the edge slot
// it belongs to, whether it routed, the committed path, and the search's
// visit cone (the validity domain of the entry).
type SeedEntry struct {
	Edge   int
	OK     bool
	Path   grid.Path
	Visits []uint64
}

// NegotiationSeed is a portable capture of one negotiation run, suitable for
// replaying into a later run on the same grid. Rounds are delta-encoded:
// Rounds[r] lists only the entries whose outcome or cone changed relative to
// the previous round (Rounds[0] is complete), so edges that replayed within
// the run cost nothing to store. All fields are exported for gob
// persistence; a seed is immutable once captured — applying it never
// mutates it, and replayed paths alias its memory.
type NegotiationSeed struct {
	W, H int
	// ParamsSig fingerprints the negotiation parameters that shape outcomes
	// (BaseHist/Alpha/Gamma); a seed only applies under matching parameters.
	ParamsSig string
	// Start is the round-start obstacle bitmap (base map plus every edge
	// terminal) captured after terminal blocking; the child's diff against it
	// seeds the cross-run dirty bitmap.
	Start []uint64
	// Edges are the captured run's edge signatures in edge order.
	Edges []SeedEdge
	// Rounds is the delta-encoded per-round transcript.
	Rounds [][]SeedEntry
}

// SizeBytes estimates the seed's resident size for cache accounting.
func (s *NegotiationSeed) SizeBytes() int64 {
	if s == nil {
		return 0
	}
	const ptSize = 16
	n := int64(96) + int64(len(s.Start))*8
	for i := range s.Edges {
		n += 48 + int64(len(s.Edges[i].Sources)+len(s.Edges[i].Targets))*ptSize
	}
	for _, r := range s.Rounds {
		n += 24
		for i := range r {
			n += 56 + int64(len(r[i].Path))*ptSize + int64(len(r[i].Visits))*8
		}
	}
	return n
}

// negParamsSig fingerprints the outcome-shaping negotiation parameters.
// Workers, Queue, the cache knobs, and the hierarchy are deliberately
// absent: all are output-invariant (the hierarchy's negotiation stage is
// exact), so seeds stay valid across them.
func negParamsSig(p NegotiateParams) string {
	return fmt.Sprintf("bh=%g;a=%g;g=%d", p.BaseHist, p.Alpha, p.Gamma)
}

// seedSlot is one edge's current cross-run state: as the parent table, the
// parent's outcome for the round being replayed (aliasing seed memory); as
// the capture shadow, the last captured value (aliasing capture memory).
type seedSlot struct {
	set     bool
	aligned bool // parent table only: some child edge aligns to this slot
	ok      bool
	path    grid.Path
	visits  []uint64
}

// edgeSigHash hashes an edge's request signature (FNV-1a over the source and
// target coordinates, length-prefixed).
func edgeSigHash(sources, targets []geom.Pt) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v int) {
		h = (h ^ uint64(uint32(v))) * prime
	}
	mix(len(sources))
	for _, p := range sources {
		mix(p.X)
		mix(p.Y)
	}
	mix(len(targets))
	for _, p := range targets {
		mix(p.X)
		mix(p.Y)
	}
	return h
}

// edgeSigEqual reports exact signature equality between a child edge and a
// captured edge slot.
func edgeSigEqual(e *Edge, se *SeedEdge) bool {
	if len(e.Sources) != len(se.Sources) || len(e.Targets) != len(se.Targets) {
		return false
	}
	for i := range e.Sources {
		if e.Sources[i] != se.Sources[i] {
			return false
		}
	}
	for i := range e.Targets {
		if e.Targets[i] != se.Targets[i] {
			return false
		}
	}
	return true
}

// alignEdges computes a monotone matching (a longest common subsequence over
// exact edge signatures, via Hunt–Szymanski) between the child's edge list
// and the parent seed's, returning align[i] = parent index or -1. Monotone
// matters for soundness: the induction in the file comment pairs the two
// sequential transcripts position by position, so matched pairs must appear
// in the same relative order in both runs.
//
//pacor:allow hotalloc alignment scratch runs once per seeded negotiation run, amortized over every replay it enables
func alignEdges(child []Edge, parent []SeedEdge, align []int) []int {
	if cap(align) < len(child) {
		align = make([]int, len(child))
	}
	align = align[:len(child)]
	for i := range align {
		align[i] = -1
	}
	buckets := make(map[uint64][]int32, len(parent))
	for j := range parent {
		h := edgeSigHash(parent[j].Sources, parent[j].Targets)
		buckets[h] = append(buckets[h], int32(j))
	}
	type lisEnt struct {
		parent, child, prev int32
	}
	var ents []lisEnt
	var tails []int32
	for i := range child {
		cl := buckets[edgeSigHash(child[i].Sources, child[i].Targets)]
		// Candidates in decreasing parent order so one child element never
		// chains off its own earlier candidate (standard Hunt–Szymanski).
		for k := len(cl) - 1; k >= 0; k-- {
			j := cl[k]
			if !edgeSigEqual(&child[i], &parent[j]) {
				continue
			}
			pos := sort.Search(len(tails), func(t int) bool { return ents[tails[t]].parent >= j })
			prev := int32(-1)
			if pos > 0 {
				prev = tails[pos-1]
			}
			ents = append(ents, lisEnt{parent: j, child: int32(i), prev: prev})
			if pos == len(tails) {
				tails = append(tails, int32(len(ents)-1))
			} else {
				tails[pos] = int32(len(ents) - 1)
			}
		}
	}
	if len(tails) > 0 {
		for e := tails[len(tails)-1]; e >= 0; e = ents[e].prev {
			align[ents[e].child] = int(ents[e].parent)
		}
	}
	return align
}

// seedShapeOK validates a (possibly disk-loaded) seed against the grid: edge
// indices in range, cones sized to the grid's bitmap, path cells on-grid,
// successful entries non-empty. A malformed seed is rejected wholesale
// rather than risking out-of-range marks.
func seedShapeOK(g grid.Grid, s *NegotiationSeed, words int) bool {
	if len(s.Start) != words {
		return false
	}
	for _, r := range s.Rounds {
		for i := range r {
			se := &r[i]
			if se.Edge < 0 || se.Edge >= len(s.Edges) || len(se.Visits) != words {
				return false
			}
			if se.OK && len(se.Path) == 0 {
				return false
			}
			for _, c := range se.Path {
				if !g.In(c) {
					return false
				}
			}
		}
	}
	return true
}

// negSeedStart applies params.Seed to the run, returning whether seeding is
// active. It must run after the work map holds the round-start state
// (terminals blocked): the start-state diff against the seed's Start bitmap
// becomes the initial cross-run dirty set, unaligned parent edges' paths
// (all rounds — state the child never commits) are marked wholesale, and the
// edge alignment and parent table are prepared. SeededEdges counts the
// aligned slots.
//
//pacor:allow hotalloc cross-run bitmap, alignment, and parent table are workspace-resident, (re)allocated only on grid or edge-count growth
func (w *Workspace) negSeedStart(g grid.Grid, work *grid.ObsMap, edges []Edge, params NegotiateParams, stats *NegotiateStats) bool {
	s := params.Seed
	if s == nil || s.W != g.W || s.H != g.H || s.ParamsSig != negParamsSig(params) ||
		len(s.Edges) == 0 || len(s.Rounds) == 0 || len(edges) == 0 {
		return false
	}
	words := (g.Cells() + 63) / 64
	if !seedShapeOK(g, s, words) {
		return false
	}
	w.negAlign = alignEdges(edges, s.Edges, w.negAlign)
	if cap(w.negParent) < len(s.Edges) {
		w.negParent = make([]seedSlot, len(s.Edges))
	}
	w.negParent = w.negParent[:len(s.Edges)]
	for i := range w.negParent {
		w.negParent[i] = seedSlot{}
	}
	aligned := 0
	for _, pj := range w.negAlign {
		if pj >= 0 {
			w.negParent[pj].aligned = true
			aligned++
		}
	}
	if aligned == 0 {
		return false
	}
	if cap(w.negCross) < words {
		w.negCross = make([]uint64, words)
	}
	w.negCross = w.negCross[:words]
	clear(w.negCross)
	w.negStart = work.Bits(w.negStart)
	grid.DiffBits(w.negStart, s.Start, func(cell int) {
		w.negCross[cell>>6] |= 1 << (uint(cell) & 63)
	})
	// Paths of parent edges no child edge aligns to are obstacle state the
	// child run never reproduces: mark every version they ever committed.
	for _, r := range s.Rounds {
		for i := range r {
			if !w.negParent[r[i].Edge].aligned {
				w.negCrossMarkPath(g, r[i].Path)
			}
		}
	}
	w.negSeed = s
	if stats != nil {
		stats.SeededEdges += aligned
	}
	return true
}

// negParentApply advances the parent table to round r's state by applying
// the seed's delta for that round. Slots alias seed memory; nothing in the
// run mutates them.
func (w *Workspace) negParentApply(r int) {
	for _, se := range w.negSeed.Rounds[r] {
		slot := &w.negParent[se.Edge]
		slot.set = true
		slot.ok = se.OK
		slot.path = se.Path
		slot.visits = se.Visits
	}
}

// negParentValid reports whether child edge ei replays from the parent table
// this round: the parent transcript still covers this round, the edge is
// aligned, and the parent entry's cone is disjoint from the cross-run dirty
// bitmap.
func (w *Workspace) negParentValid(ei int) bool {
	if !w.negParentLive {
		return false
	}
	pj := w.negAlign[ei]
	if pj < 0 {
		return false
	}
	pe := &w.negParent[pj]
	if !pe.set {
		return false
	}
	for i, word := range pe.visits {
		if word&w.negCross[i] != 0 {
			return false
		}
	}
	return true
}

// negCrossMarkPath marks every cell of p in the cross-run dirty bitmap.
func (w *Workspace) negCrossMarkPath(g grid.Grid, p grid.Path) {
	for _, c := range p {
		i := g.Index(c)
		w.negCross[i>>6] |= 1 << (uint(i) & 63)
	}
}

// negCrossCompare records the divergence state of a fresh (or within-run
// replayed) outcome against the parent's entry for this round: identical
// outcomes contribute identical obstacle state and need no marks; differing
// or unpaired outcomes mark both runs' paths. Once the parent transcript is
// exhausted no replay can happen, so marks stop mattering and the compare
// short-circuits.
func (w *Workspace) negCrossCompare(g grid.Grid, ei int, p grid.Path, ok bool) {
	if !w.negParentLive {
		return
	}
	pj := w.negAlign[ei]
	if pj < 0 {
		w.negCrossMarkPath(g, p)
		return
	}
	pe := &w.negParent[pj]
	if pe.set && pe.ok == ok && pathsEqual(pe.path, p) {
		return
	}
	if pe.set {
		w.negCrossMarkPath(g, pe.path)
	}
	w.negCrossMarkPath(g, p)
}

// negCaptureStart prepares params.Capture to receive this run's transcript,
// returning whether capture is active. The capture's memory (Start, Edges,
// Rounds) is reused across runs through the caller's seed object.
//
//pacor:allow hotalloc capture tables are the run's product, returned to the caller; per-run construction is the contract
func (w *Workspace) negCaptureStart(g grid.Grid, work *grid.ObsMap, edges []Edge, params NegotiateParams) bool {
	c := params.Capture
	if c == nil || len(edges) == 0 {
		return false
	}
	c.W, c.H = g.W, g.H
	c.ParamsSig = negParamsSig(params)
	c.Start = work.Bits(c.Start)
	c.Edges = c.Edges[:0]
	for i := range edges {
		c.Edges = append(c.Edges, SeedEdge{
			Sources: append([]geom.Pt(nil), edges[i].Sources...),
			Targets: append([]geom.Pt(nil), edges[i].Targets...),
		})
	}
	c.Rounds = c.Rounds[:0]
	if cap(w.negShadow) < len(edges) {
		w.negShadow = make([]seedSlot, len(edges))
	}
	w.negShadow = w.negShadow[:len(edges)]
	for i := range w.negShadow {
		w.negShadow[i] = seedSlot{}
	}
	w.negCap = c
	return true
}

// negCaptureRound opens round r's delta bucket in the capture.
//
//pacor:allow hotalloc runs once per negotiation round on the capture path only; round count is data-dependent
func (w *Workspace) negCaptureRound() {
	w.negCap.Rounds = append(w.negCap.Rounds, nil)
}

// negCaptureRecord captures edge ei's outcome for the current round,
// delta-encoded: identical to the last captured value (the common case for
// edges that replayed) costs nothing. Captured paths and cones are deep
// copies — entry cones are workspace buffers reused across rounds, and a
// captured alias would be silently corrupted by a later search.
//
//pacor:allow hotalloc captured entries are deep copies by contract (the capture outlives every workspace buffer)
func (w *Workspace) negCaptureRecord(ei int, p grid.Path, ok bool, cone []uint64) {
	sh := &w.negShadow[ei]
	if sh.set && sh.ok == ok && pathsEqual(sh.path, p) && wordsEqual(sh.visits, cone) {
		return
	}
	pc := append(grid.Path(nil), p...)
	vc := append([]uint64(nil), cone...)
	c := w.negCap
	last := len(c.Rounds) - 1
	c.Rounds[last] = append(c.Rounds[last], SeedEntry{Edge: ei, OK: ok, Path: pc, Visits: vc})
	sh.set, sh.ok, sh.path, sh.visits = true, ok, pc, vc
}

// negSeedFinish clears the run's cross-run state so a pooled workspace never
// pins seed or capture memory past the run.
func (w *Workspace) negSeedFinish() {
	for i := range w.negParent {
		w.negParent[i] = seedSlot{}
	}
	for i := range w.negShadow {
		w.negShadow[i] = seedSlot{}
	}
	w.negSeed, w.negCap = nil, nil
	w.negSeedOn, w.negCapOn, w.negParentLive = false, false, false
}

// wordsEqual reports bitmap equality.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
