// Package route implements the grid routers of the PACOR flow: a
// multi-source multi-target A* (covering the paper's point-to-point,
// point-to-path, and path-to-path searches), the negotiation-based iterative
// router of Algorithm 1, and the minimum-length bounded router of Section 6.
package route

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Request describes one A* search. Sources start with cost 0; the search
// stops at the first target reached. Point-to-path and path-to-path routing
// are expressed by passing all cells of a path as Sources and/or Targets.
type Request struct {
	Sources []geom.Pt
	Targets []geom.Pt
	// Obs blocks cells. Source and target cells are exempt: a search onto an
	// already-routed (and therefore obstacle-marked) path must be able to
	// land on it.
	Obs *grid.ObsMap
	// Hist, when non-nil, adds a per-cell extra cost on entering each cell
	// (the negotiation history cost). Indexed by grid.Grid.Index.
	Hist []float64
	// Bounds, when non-nil, restricts the search to the given window (cells
	// outside are treated as blocked). Detour searches use it to stay local.
	Bounds *geom.Rect
}

// inBounds reports whether the request admits cell q.
func (r *Request) inBounds(q geom.Pt) bool {
	return r.Bounds == nil || r.Bounds.Contains(q)
}

// AStar finds a cheapest path from any source to any target. The returned
// path runs source..target. ok is false when no path exists.
func AStar(g grid.Grid, req Request) (path grid.Path, ok bool) {
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		return nil, false
	}
	isTarget := make(map[geom.Pt]bool, len(req.Targets))
	tb := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	for _, t := range req.Targets {
		if !g.In(t) {
			continue
		}
		isTarget[t] = true
		tb = tb.Union(geom.RectOf(t, t))
	}
	if len(isTarget) == 0 {
		return nil, false
	}
	h := func(p geom.Pt) float64 {
		// Distance to the target bounding box: admissible lower bound on the
		// distance to the nearest target.
		dx := 0
		if p.X < tb.MinX {
			dx = tb.MinX - p.X
		} else if p.X > tb.MaxX {
			dx = p.X - tb.MaxX
		}
		dy := 0
		if p.Y < tb.MinY {
			dy = tb.MinY - p.Y
		} else if p.Y > tb.MaxY {
			dy = p.Y - tb.MaxY
		}
		return float64(dx + dy)
	}

	n := g.Cells()
	gCost := make([]float64, n)
	parent := make([]int32, n)
	closed := make([]bool, n)
	inOpen := make([]bool, n)
	for i := range gCost {
		gCost[i] = -1
		parent[i] = -1
	}
	pq := &openHeap{}
	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		if gCost[i] == 0 {
			continue
		}
		gCost[i] = 0
		heap.Push(pq, openItem{idx: int32(i), f: h(s)})
		inOpen[i] = true
	}
	var nbuf []geom.Pt
	for pq.Len() > 0 {
		it := heap.Pop(pq).(openItem)
		i := int(it.idx)
		if closed[i] {
			continue
		}
		closed[i] = true
		p := g.Pt(i)
		if isTarget[p] {
			return reconstruct(g, parent, i), true
		}
		nbuf = g.Neighbors(p, nbuf)
		for _, q := range nbuf {
			j := g.Index(q)
			if closed[j] {
				continue
			}
			if !req.inBounds(q) && !isTarget[q] {
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !isTarget[q] {
				continue
			}
			step := 1.0
			if req.Hist != nil {
				step += req.Hist[j]
			}
			ng := gCost[i] + step
			if gCost[j] < 0 || ng < gCost[j] {
				gCost[j] = ng
				parent[j] = int32(i)
				heap.Push(pq, openItem{idx: int32(j), f: ng + h(q)})
				inOpen[j] = true
			}
		}
	}
	return nil, false
}

func reconstruct(g grid.Grid, parent []int32, end int) grid.Path {
	var rev grid.Path
	for i := end; i != -1; i = int(parent[i]) {
		rev = append(rev, g.Pt(i))
		if parent[i] == -1 {
			break
		}
	}
	return rev.Reverse()
}

type openItem struct {
	idx int32
	f   float64
}

type openHeap []openItem

func (h openHeap) Len() int           { return len(h) }
func (h openHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h openHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *openHeap) Push(x interface{}) {
	*h = append(*h, x.(openItem))
}
func (h *openHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
