// Package route implements the grid routers of the PACOR flow: a
// multi-source multi-target A* (covering the paper's point-to-point,
// point-to-path, and path-to-path searches), the negotiation-based iterative
// router of Algorithm 1, and the minimum-length bounded router of Section 6.
//
// All searches run on a reusable Workspace (generation-stamped per-cell
// arrays, no per-call O(W·H) allocation); the package-level functions are
// convenience wrappers over a pooled workspace.
package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// Request describes one A* search. Sources start with cost 0; the search
// stops at the first target reached. Point-to-path and path-to-path routing
// are expressed by passing all cells of a path as Sources and/or Targets.
type Request struct {
	Sources []geom.Pt
	Targets []geom.Pt
	// Obs blocks cells. Source and target cells are exempt: a search onto an
	// already-routed (and therefore obstacle-marked) path must be able to
	// land on it.
	Obs *grid.ObsMap
	// Hist, when non-nil, adds a per-cell extra cost on entering each cell
	// (the negotiation history cost). Indexed by grid.Grid.Index.
	Hist []float64
	// Bounds, when non-nil, restricts the search to the given window (cells
	// outside are treated as blocked). Detour searches use it to stay local.
	Bounds *geom.Rect
	// Mask, when non-nil, restricts the search to a set of tiles (cells in
	// unadmitted tiles are treated as blocked, targets exempt). The
	// hierarchical router confines each net's detailed search to its
	// corridor with it; Workspace.Clipped reports whether the mask (or
	// Bounds) actually rejected anything — a search that never clipped has a
	// transcript identical to the unmasked one.
	Mask *TileMask
	// Queue selects the open-list implementation. The zero value (QueueAuto)
	// inherits the workspace default (SetQueueMode); auto there too means
	// "bucket when the key domain is certified integral, heap otherwise".
	// Either way the routed output is byte-identical across modes — the knob
	// trades only wall-clock.
	Queue QueueMode
	// HistScale and HistMax certify the Hist cost domain for the bucket
	// queue: HistScale is a power-of-two fixed-point scale under which every
	// step cost 1+Hist[j] is an exact integer, and HistMax bounds the scaled
	// step. Producers of structured history (negotiation, via HistQuant) set
	// them; a request with non-nil Hist and HistScale == 0 is uncertified and
	// always searches on the heap.
	HistScale int64
	HistMax   int64
}

// inBounds reports whether the request admits cell q.
func (r *Request) inBounds(q geom.Pt) bool {
	return (r.Bounds == nil || r.Bounds.Contains(q)) &&
		(r.Mask == nil || r.Mask.Contains(q))
}

// AStar finds a cheapest path from any source to any target. The returned
// path runs source..target. ok is false when no path exists.
//
// This wrapper draws a pooled Workspace; callers in routing inner loops
// should hold their own Workspace and use its AStar method directly.
func AStar(g grid.Grid, req Request) (grid.Path, bool) {
	w := AcquireWorkspace(g)
	path, ok := w.AStar(g, req)
	ReleaseWorkspace(w)
	return path, ok
}
