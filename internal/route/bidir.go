package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// This file implements BiAStar, the bidirectional point-to-point variant of
// the grid search. Two Dijkstra frontiers — forward from the source, backward
// from the target — run on *reduced* edge costs and meet in the middle, so an
// open-field search expands ~two half-radius disks instead of one full disk.
//
// Cost model: every step costs 2 (doubled unit cost, keeping everything
// integral), and both directions share the balanced potential
//
//	pf(v) = ht(v) − hs(v)      (Manhattan distances to target / to source)
//
// giving the forward reduced cost of a step u→v as 2 + pf(v) − pf(u) and the
// backward reduced cost of traversing the same step v→u as the same value.
// Each Manhattan distance changes by ±1 per step, so pf changes by −2, 0, or
// +2 and every reduced cost lies in {0, 2, 4}: both frontiers are Dijkstra
// searches over tiny integer keys, run on two small Dial rings (span 4 — a
// pushed key exceeds the popped one by at most the maximum reduced step).
//
// Termination (see ALGORITHMS.md for the full argument): let μ̄ be the best
// reduced cost over all discovered meet vertices, and tf̄, tb̄ the reduced
// keys of each side's most recently settled vertex. Reduced path cost differs
// from true doubled cost by the constant pf(t) − pf(s), so minimizing μ̄
// minimizes true cost. The loop stops when tf̄ + tb̄ ≥ μ̄ (or, once one
// frontier is exhausted, when the surviving side's tf̄ alone reaches μ̄):
// any meet discovered later has reduced cost at least that bound, so μ̄ is
// optimal. Optimality also forces the joined path to be simple — a repeated
// cell x ≠ meet would imply d(x,meet) = 0.
//
// BiAStar trades expansion order for the two-disk profile, so its routed path
// can differ in *shape* (never in length) from AStar's. It is therefore a
// separate entry point used where only cost matters — it is NOT wired into
// the negotiation/flow pipeline, whose golden outputs pin AStar's exact
// paths. For the same reason there is no QueueMode that selects it:
// QueueAuto chooses only between the heap and the bucket queue (see
// queue.go), so no -queue flag value or workspace default can accidentally
// route paths through the bidirectional search.

// BiAStar finds a shortest path between a single source and a single target.
// Requests outside its profile — multiple sources or targets, a history
// layer, or a bounding window — delegate to AStar; the returned path length
// always equals AStar's (the property tests assert this).
func BiAStar(g grid.Grid, req Request) (grid.Path, bool) {
	w := AcquireWorkspace(g)
	path, ok := w.BiAStar(g, req)
	ReleaseWorkspace(w)
	return path, ok
}

// biEligible reports whether the request fits the bidirectional profile.
func biEligible(req *Request) bool {
	return len(req.Sources) == 1 && len(req.Targets) == 1 &&
		req.Hist == nil && req.Bounds == nil && req.Mask == nil
}

// growReverse sizes the backward-direction state arrays (allocated only when
// BiAStar is actually used, and only when the grid grows).
//
//pacor:allow hotalloc reverse arrays sized once per grid change, reused across searches
func (w *Workspace) growReverse() {
	if len(w.rstamp) < w.cells {
		w.rstamp = make([]int32, w.cells)
		w.rkey = make([]int32, w.cells)
		w.rparent = make([]int32, w.cells)
		w.rclosed = make([]bool, w.cells)
	}
}

// BiAStar is the workspace-backed bidirectional search. See the package-level
// BiAStar for semantics.
func (w *Workspace) BiAStar(g grid.Grid, req Request) (grid.Path, bool) {
	if !biEligible(&req) {
		return w.AStar(g, req)
	}
	s, t := req.Sources[0], req.Targets[0]
	if !g.In(s) || !g.In(t) {
		return nil, false
	}
	if s == t {
		return trivialPath(s), true
	}
	w.begin(g)
	w.growReverse()
	w.lastQueue = QueueBucket
	// Both rings hold a sliding window: single-key start, max reduced step 4.
	w.bqf.prep(4)
	w.bqb.prep(4)

	si, ti := g.Index(s), g.Index(t)
	pf := func(v geom.Pt) int32 { return int32(geom.Dist(v, t) - geom.Dist(v, s)) }

	// Forward labels live in the regular A* arrays (stamp/gCost/parent/
	// closed; gCost holds the small integer reduced key exactly), backward
	// labels in the reverse arrays under the same generation.
	w.touch(si)
	w.gCost[si] = 0
	w.bqf.push(0, int32(si))
	w.visit(ti)
	w.rstamp[ti] = w.gen
	w.rkey[ti] = 0
	w.rparent[ti] = -1
	w.rclosed[ti] = false
	w.bqb.push(0, int32(ti))

	const inf = int64(1) << 62
	mu := inf // best reduced meet cost found
	meet := int32(-1)
	var tf, tb int64 // reduced keys of the last settled vertex per side
	forward := false

	rtouch := func(j int) {
		w.visit(j)
		if w.rstamp[j] != w.gen {
			w.rstamp[j] = w.gen
			w.rkey[j] = -1
			w.rparent[j] = -1
			w.rclosed[j] = false
		}
	}

	for w.bqf.count > 0 || w.bqb.count > 0 {
		if meet >= 0 {
			stop := tf+tb >= mu
			if w.bqf.count == 0 {
				stop = tb >= mu
			} else if w.bqb.count == 0 {
				stop = tf >= mu
			}
			if stop {
				break
			}
		}
		forward = !forward
		if forward && w.bqf.count == 0 {
			forward = false
		} else if !forward && w.bqb.count == 0 {
			forward = true
		}

		if forward {
			v, _ := w.bqf.pop()
			i := int(v)
			if w.closed[i] {
				continue
			}
			w.closed[i] = true
			tf = int64(w.gCost[i])
			p := g.Pt(i)
			pu := pf(p)
			w.nbuf = g.Neighbors(p, w.nbuf)
			for _, q := range w.nbuf {
				j := g.Index(q)
				if w.track {
					if w.touch(j) && w.closed[j] {
						continue
					}
				}
				if req.Obs != nil && j != ti && req.Obs.Blocked(q) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
					continue
				}
				if !w.track {
					if w.touch(j) && w.closed[j] {
						continue
					}
				}
				nk := int64(w.gCost[i]) + int64(2+pf(q)-pu)
				if w.gCost[j] < 0 || nk < int64(w.gCost[j]) {
					w.gCost[j] = float64(nk)
					w.parent[j] = int32(i)
					w.bqf.push(nk, int32(j))
					if w.rstamp[j] == w.gen && w.rkey[j] >= 0 {
						if cand := nk + int64(w.rkey[j]); cand < mu {
							mu = cand
							meet = int32(j)
						}
					}
				}
			}
		} else {
			v, _ := w.bqb.pop()
			i := int(v)
			if w.rclosed[i] {
				continue
			}
			w.rclosed[i] = true
			tb = int64(w.rkey[i])
			p := g.Pt(i)
			pu := pf(p)
			w.nbuf = g.Neighbors(p, w.nbuf)
			for _, q := range w.nbuf {
				j := g.Index(q)
				if w.track {
					rtouch(j)
					if w.rclosed[j] {
						continue
					}
				}
				if req.Obs != nil && j != si && req.Obs.Blocked(q) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
					continue
				}
				if !w.track {
					rtouch(j)
					if w.rclosed[j] {
						continue
					}
				}
				// Backward reduced cost of arriving at q from i equals the
				// forward reduced cost of the step q→i: 2 + pf(i) − pf(q).
				nk := int64(w.rkey[i]) + int64(2+pu-pf(q))
				if w.rkey[j] < 0 || nk < int64(w.rkey[j]) {
					w.rkey[j] = int32(nk)
					w.rparent[j] = int32(i)
					w.bqb.push(nk, int32(j))
					if w.stamp[j] == w.gen && w.gCost[j] >= 0 {
						if cand := nk + int64(w.gCost[j]); cand < mu {
							mu = cand
							meet = int32(j)
						}
					}
				}
			}
		}
	}
	if meet < 0 {
		return nil, false
	}
	return w.reconstructBi(g, int(meet)), true
}

// trivialPath is the single-cell result for a search whose source is
// already the target.
//
//pacor:allow hotalloc single exact-size allocation for the result path returned to the caller
func trivialPath(p geom.Pt) grid.Path {
	return grid.Path{p}
}

// reconstructBi joins the forward parent chain (source..meet) with the
// backward parent chain (meet..target) into one exact-size path.
//
//pacor:allow hotalloc single exact-size allocation for the result path returned to the caller
func (w *Workspace) reconstructBi(g grid.Grid, meet int) grid.Path {
	nf := 1
	for i := meet; w.parent[i] >= 0; i = int(w.parent[i]) {
		nf++
	}
	nb := 0
	for i := meet; w.rparent[i] >= 0; i = int(w.rparent[i]) {
		nb++
	}
	path := make(grid.Path, nf+nb)
	i := meet
	for k := nf - 1; k >= 0; k-- {
		path[k] = g.Pt(i)
		i = int(w.parent[i])
	}
	i = meet
	for k := nf; k < nf+nb; k++ {
		i = int(w.rparent[i])
		path[k] = g.Pt(i)
	}
	return path
}
