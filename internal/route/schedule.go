package route

import (
	"sync"

	"repro/internal/geom"
	"repro/internal/grid"
)

// This file implements the deterministic speculative scheduler behind the
// parallel negotiation router (and the pacor flow's per-cluster routing
// stages): an ordered list of routing tasks executes across a worker pool
// with results byte-identical to the sequential reference loop, for every
// worker count.
//
// Mechanism: each task declares a spatial window (a scheduling hint). A task
// becomes runnable once every earlier task whose window overlaps its own has
// committed; tasks with pairwise-disjoint windows run concurrently — the
// wavefronts of the spatial-dependency DAG. Each run executes against a
// private snapshot of the obstacle state (base + all committed paths at
// snapshot time) while its workspace records every cell the searches touch.
// Results commit strictly in task order. At commit, a result whose snapshot
// missed the paths of earlier tasks is validated exactly: both grid searches
// stamp a cell before querying its obstacle status, so if no missed path
// cell is in the recorded visit set, the search transcript — and therefore
// the result — is identical to the sequential one. A result that did visit a
// missed path cell is discarded and the task re-runs against the full
// committed prefix, which is the sequential state by construction. The
// windows therefore only control how often the (rare) redo path is taken,
// never the output.

// ScheduledTask is one unit of work for RunScheduled.
type ScheduledTask struct {
	// Window estimates where the task's searches and resulting paths live;
	// see SearchWindow. An empty window overlaps nothing.
	Window geom.Rect
	// Run executes the task. obs holds the base obstacles plus the committed
	// paths of a prefix of earlier tasks; Run may mutate it freely as scratch
	// (mutations are discarded — only the returned Paths are committed, and
	// only when OK). Every obstacle read must go through searches on ws (or
	// cells the searches touched): ws.AStar, ws.BoundedAStar, and compositions
	// of them (mstroute.RouteClusterWS) qualify. Run must be deterministic in
	// the contents of obs and must not touch shared mutable state.
	Run func(ws *Workspace, obs *grid.ObsMap) TaskOutcome
}

// TaskOutcome is a task's result. Paths are the cells committed as obstacles
// for later tasks when OK; Payload rides along untouched for the caller's
// commit callback.
type TaskOutcome struct {
	OK      bool
	Paths   []grid.Path
	Payload interface{}
}

// RunScheduled executes tasks so that the commit sequence and the final
// contents of base are byte-identical to the sequential reference loop
//
//	scratch := base.Clone()
//	for i := range tasks {
//		scratch.CopyFrom(base)
//		out := tasks[i].Run(ws, scratch)
//		if out.OK {
//			for _, p := range out.Paths {
//				base.SetPath(p, true)
//			}
//		}
//		commit(i, out)
//	}
//
// for every worker count. commit is called exactly once per task, in task
// order, never concurrently; it must not call back into the scheduler. base
// is mutated in place (the committed paths accumulate onto it).
func RunScheduled(base *grid.ObsMap, tasks []ScheduledTask, workers int, commit func(i int, out TaskOutcome)) {
	var commitV func(int, TaskOutcome, []uint64)
	if commit != nil {
		commitV = func(i int, out TaskOutcome, _ []uint64) { commit(i, out) }
	}
	runScheduled(base, tasks, workers, false, commitV)
}

// RunScheduledVisits is RunScheduled with the committed run's visit set
// handed to the commit callback: visits is the bitmap of every cell the
// task's searches stamped — a superset of every cell whose obstacle state
// they read, because tracked searches stamp before reading. The negotiation
// cache records it as the edge's search cone. The slice is only valid for
// the duration of the callback; callers keep a copy.
func RunScheduledVisits(base *grid.ObsMap, tasks []ScheduledTask, workers int, commit func(i int, out TaskOutcome, visits []uint64)) {
	runScheduled(base, tasks, workers, true, commit)
}

func runScheduled(base *grid.ObsMap, tasks []ScheduledTask, workers int, needVisits bool, commit func(int, TaskOutcome, []uint64)) {
	if len(tasks) == 0 {
		return
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		runSequential(base, tasks, needVisits, commit)
		return
	}
	s := &scheduler{ //pacor:allow hotalloc per-run scheduler state, amortized over every task in the round
		g:          base.Grid(),
		base:       base,
		tasks:      tasks,
		commitFn:   commit,
		needVisits: needVisits,
		maxDep:     windowDeps(tasks),
		started:    make([]bool, len(tasks)),       //pacor:allow hotalloc per-run setup, not per search step
		results:    make([]*runResult, len(tasks)), //pacor:allow hotalloc per-run setup, not per search step
	}
	s.cond = sync.NewCond(&s.mu)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() { //pacor:allow hotalloc one spawn per worker per round, amortized over the round's tasks
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()
}

// runSequential is the reference loop (worker count 1): same snapshot
// semantics, no goroutines. The snapshot is maintained incrementally — one
// full copy up front, then each task's scratch mutations are rewound through
// the obstacle journal (O(task changes)) and the committed paths are applied
// to both maps, instead of re-copying O(cells) per task. Tracking is on only
// when the caller asked for visit sets.
func runSequential(base *grid.ObsMap, tasks []ScheduledTask, needVisits bool, commit func(int, TaskOutcome, []uint64)) {
	ws := AcquireWorkspace(base.Grid())
	scratch := ws.scratchFor(base.Grid())
	scratch.CopyFrom(base)
	scratch.StartJournal(ws.seqJournal)
	for i := range tasks {
		mark := scratch.JournalLen()
		var visits []uint64
		if needVisits {
			ws.StartVisitTracking()
		}
		out := tasks[i].Run(ws, scratch)
		if needVisits {
			ws.StopVisitTracking()
			ws.seqVisits = ws.CopyVisits(ws.seqVisits[:0])
			visits = ws.seqVisits
		}
		scratch.RewindJournal(mark)
		if out.OK {
			for _, p := range out.Paths {
				base.SetPath(p, true)
				scratch.SetPath(p, true)
			}
		}
		if commit != nil {
			commit(i, out, visits)
		}
	}
	ws.seqJournal = scratch.StopJournal()
	ReleaseWorkspace(ws)
}

// windowDeps computes, per task, the highest-numbered earlier task whose
// window overlaps its own (-1 when none). Because tasks commit in order,
// "every earlier overlapping task has committed" reduces to "the committed
// prefix extends past maxDep".
//
//pacor:allow hotalloc per-run dependency table, built once per scheduling round
func windowDeps(tasks []ScheduledTask) []int32 {
	maxDep := make([]int32, len(tasks))
	for j := range tasks {
		maxDep[j] = -1
		wj := tasks[j].Window
		if wj.Empty() {
			continue
		}
		for i := j - 1; i >= 0; i-- {
			if !tasks[i].Window.Intersect(wj).Empty() {
				maxDep[j] = int32(i)
				break
			}
		}
	}
	return maxDep
}

// runResult is one speculative result awaiting (or past) commit.
type runResult struct {
	out    TaskOutcome
	snap   int      // committed-prefix length the run's snapshot included
	visits []uint64 // cells the run's searches touched; nil for exact (redo) results
}

type scheduler struct {
	g     grid.Grid
	tasks []ScheduledTask
	// needVisits means the commit callback consumes visit sets, so the redo
	// path must re-run with tracking on instead of dropping the bitmap.
	needVisits bool

	mu   sync.Mutex
	cond *sync.Cond
	// base accumulates committed paths; workers snapshot from it under mu.
	base      *grid.ObsMap
	maxDep    []int32
	started   []bool
	results   []*runResult
	committed int
	commitFn  func(int, TaskOutcome, []uint64)
}

// worker claims runnable tasks until everything has committed. Each worker
// owns one workspace and one snapshot map for its whole lifetime.
//
//pacor:hot
func (s *scheduler) worker() {
	ws := AcquireWorkspace(s.g)
	scratch := grid.NewObsMap(s.g)
	var visitBuf []uint64
	s.mu.Lock()
	for {
		i := s.nextRunnable()
		if i < 0 {
			if s.committed == len(s.tasks) {
				break
			}
			s.cond.Wait()
			continue
		}
		s.started[i] = true
		scratch.CopyFrom(s.base)
		snap := s.committed
		s.mu.Unlock()

		ws.StartVisitTracking()
		out := s.tasks[i].Run(ws, scratch)
		ws.StopVisitTracking()
		visitBuf = ws.CopyVisits(visitBuf[:0])
		visits := append([]uint64(nil), visitBuf...) //pacor:allow hotalloc per-task capture of the visit set, one copy per task

		s.mu.Lock()
		s.results[i] = &runResult{out: out, snap: snap, visits: visits} //pacor:allow hotalloc one result record per task, not per search step
		s.advance(ws, scratch)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	ReleaseWorkspace(ws)
}

// nextRunnable returns the lowest-index unstarted task whose window
// dependencies have all committed, or -1. Called with mu held.
func (s *scheduler) nextRunnable() int {
	for i := s.committed; i < len(s.tasks); i++ {
		if !s.started[i] && int(s.maxDep[i]) < s.committed {
			return i
		}
	}
	return -1
}

// advance commits every consecutive available result, validating (and where
// necessary redoing) each against the exact sequential state. Called with mu
// held; ws and scratch are the calling worker's (idle at this point).
//
//pacor:locked
func (s *scheduler) advance(ws *Workspace, scratch *grid.ObsMap) {
	for s.committed < len(s.tasks) {
		i := s.committed
		r := s.results[i]
		if r == nil {
			return
		}
		if !s.valid(i, r) {
			// The speculative run observed a cell a later-committed path now
			// occupies: its transcript is unreliable. Re-run against the full
			// committed prefix — exactly the sequential state for task i.
			// When the caller consumes visit sets, the redo runs tracked so
			// its exact cone replaces the discarded speculative one.
			scratch.CopyFrom(s.base)
			if s.needVisits {
				ws.StartVisitTracking()
				r.out = s.tasks[i].Run(ws, scratch)
				ws.StopVisitTracking()
				r.visits = ws.CopyVisits(r.visits[:0])
			} else {
				r.out = s.tasks[i].Run(ws, scratch)
				r.visits = nil
			}
			r.snap = i
		}
		if r.out.OK {
			for _, p := range r.out.Paths {
				s.base.SetPath(p, true)
			}
		}
		s.committed = i + 1
		if s.commitFn != nil {
			s.commitFn(i, r.out, r.visits)
		}
	}
}

// valid reports whether result r of task i is exact: no path committed after
// r's snapshot was taken touches a cell r's searches visited. Called with mu
// held.
func (s *scheduler) valid(i int, r *runResult) bool {
	if r.visits == nil || r.snap == i {
		return true
	}
	for j := r.snap; j < i; j++ {
		rj := s.results[j]
		if !rj.out.OK {
			continue
		}
		for _, p := range rj.out.Paths {
			for _, c := range p {
				ci := s.g.Index(c)
				if r.visits[ci>>6]&(1<<(uint(ci)&63)) != 0 {
					return false
				}
			}
		}
	}
	return true
}
