package route

import (
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// schedScenario builds a deterministic routing workload: nEdges horizontal
// nets on a grid with a sparse obstacle lattice, each net a ScheduledTask
// whose Run is a single A* search (the negotiation round's shape).
func schedScenario(t *testing.T, nEdges int) (grid.Grid, *grid.ObsMap, []Edge) {
	t.Helper()
	g := grid.New(64, 4*nEdges+4)
	obs := grid.NewObsMap(g)
	for i := 0; i < g.Cells(); i += 37 {
		p := g.Pt(i)
		if p.X > 2 && p.X < 61 {
			obs.Set(p, true)
		}
	}
	edges := make([]Edge, nEdges)
	for i := range edges {
		y := 4*i + 2
		edges[i] = Edge{
			ID:      i,
			Sources: []geom.Pt{{X: 1, Y: y}},
			Targets: []geom.Pt{{X: 62, Y: (y + 7) % (4*nEdges + 4)}},
		}
	}
	return g, obs, edges
}

func edgeTasks(g grid.Grid, edges []Edge, window func(Edge) geom.Rect) []ScheduledTask {
	tasks := make([]ScheduledTask, len(edges))
	for i := range edges {
		e := edges[i]
		tasks[i] = ScheduledTask{
			Window: window(e),
			Run: func(ws *Workspace, obs *grid.ObsMap) TaskOutcome {
				p, ok := ws.AStar(g, Request{Sources: e.Sources, Targets: e.Targets, Obs: obs})
				if !ok {
					return TaskOutcome{}
				}
				return TaskOutcome{OK: true, Paths: []grid.Path{p}}
			},
		}
	}
	return tasks
}

// runCollect executes the tasks and returns the commit sequence plus the
// final obstacle map.
func runCollect(base *grid.ObsMap, tasks []ScheduledTask, workers int) ([]TaskOutcome, *grid.ObsMap) {
	final := base.Clone()
	outs := make([]TaskOutcome, 0, len(tasks))
	RunScheduled(final, tasks, workers, func(i int, out TaskOutcome) {
		if i != len(outs) {
			panic("commit out of order")
		}
		outs = append(outs, out)
	})
	return outs, final
}

func assertObsEqual(t *testing.T, want, got *grid.ObsMap) {
	t.Helper()
	g := want.Grid()
	for i := 0; i < g.Cells(); i++ {
		p := g.Pt(i)
		if want.Blocked(p) != got.Blocked(p) {
			t.Fatalf("obstacle maps differ at %v", p)
		}
	}
}

func TestRunScheduledMatchesSequential(t *testing.T) {
	g, obs, edges := schedScenario(t, 8)
	window := func(e Edge) geom.Rect { return SearchWindow(g, e.Sources, e.Targets) }
	wantOuts, wantObs := runCollect(obs, edgeTasks(g, edges, window), 1)
	for _, workers := range []int{2, 4, 8, 16} {
		gotOuts, gotObs := runCollect(obs, edgeTasks(g, edges, window), workers)
		if !reflect.DeepEqual(wantOuts, gotOuts) {
			t.Fatalf("workers=%d: commit sequence differs from sequential", workers)
		}
		assertObsEqual(t, wantObs, gotObs)
	}
}

// TestRunScheduledMispredictedWindows forces maximal speculation: every
// window is empty, so no task depends on any other and all run concurrently
// from stale snapshots. Correctness must then come entirely from the
// visit-set validation and sequential redo at commit.
func TestRunScheduledMispredictedWindows(t *testing.T) {
	g, obs, edges := schedScenario(t, 8)
	empty := func(Edge) geom.Rect { return geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0} }
	honest := func(e Edge) geom.Rect { return SearchWindow(g, e.Sources, e.Targets) }
	wantOuts, wantObs := runCollect(obs, edgeTasks(g, edges, honest), 1)
	for _, workers := range []int{2, 8} {
		gotOuts, gotObs := runCollect(obs, edgeTasks(g, edges, empty), workers)
		if !reflect.DeepEqual(wantOuts, gotOuts) {
			t.Fatalf("workers=%d: empty-window commit sequence differs from sequential", workers)
		}
		assertObsEqual(t, wantObs, gotObs)
	}
}

func TestRunScheduledFailuresCommitNothing(t *testing.T) {
	// A task that fails (no path) must not alter the base map, and its
	// failure must be reported in order.
	g := grid.New(8, 8)
	obs := grid.NewObsMap(g)
	for y := 0; y < 8; y++ {
		obs.Set(geom.Pt{X: 4, Y: y}, true) // wall: right half unreachable
	}
	edges := []Edge{
		{ID: 0, Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 7, Y: 0}}},
		{ID: 1, Sources: []geom.Pt{{X: 0, Y: 2}}, Targets: []geom.Pt{{X: 3, Y: 2}}},
	}
	window := func(e Edge) geom.Rect { return SearchWindow(g, e.Sources, e.Targets) }
	for _, workers := range []int{1, 2} {
		outs, final := runCollect(obs, edgeTasks(g, edges, window), workers)
		if outs[0].OK {
			t.Fatalf("workers=%d: walled-off edge reported success", workers)
		}
		if !outs[1].OK {
			t.Fatalf("workers=%d: reachable edge failed", workers)
		}
		want := obs.Clone()
		for _, p := range outs[1].Paths {
			want.SetPath(p, true)
		}
		assertObsEqual(t, want, final)
	}
}

func TestSearchWindow(t *testing.T) {
	g := grid.New(100, 100)
	w := SearchWindow(g, []geom.Pt{{X: 20, Y: 20}}, []geom.Pt{{X: 30, Y: 24}})
	for _, p := range []geom.Pt{{X: 20, Y: 20}, {X: 30, Y: 24}} {
		if !w.Contains(p) {
			t.Errorf("window %+v misses terminal %v", w, p)
		}
	}
	if w.Contains(geom.Pt{X: 90, Y: 90}) {
		t.Errorf("window %+v covers the far corner; no locality", w)
	}
	if !SearchWindow(g, nil, nil).Empty() {
		t.Error("window of no terminals should be empty")
	}
	// Windows clip to the grid.
	edge := SearchWindow(g, []geom.Pt{{X: 0, Y: 0}}, []geom.Pt{{X: 1, Y: 1}})
	if edge.Intersect(g.Bounds()) != edge {
		t.Errorf("window %+v exceeds grid bounds", edge)
	}
}

func TestNegotiateWorkersByteIdentical(t *testing.T) {
	_, obs, edges := schedScenario(t, 10)
	params := DefaultNegotiateParams()
	wantPaths, wantOK := Negotiate(obs, edges, params)
	for _, workers := range []int{1, 2, 4, 8} {
		p := params
		p.Workers = workers
		gotPaths, gotOK := Negotiate(obs, edges, p)
		if gotOK != wantOK {
			t.Fatalf("workers=%d: ok=%v, sequential ok=%v", workers, gotOK, wantOK)
		}
		if !reflect.DeepEqual(wantPaths, gotPaths) {
			t.Fatalf("workers=%d: paths differ from sequential", workers)
		}
	}
}

func TestWorkspacePoolRoundTrip(t *testing.T) {
	g1 := grid.New(16, 16)
	g2 := grid.New(32, 8)
	w1 := AcquireWorkspace(g1)
	ReleaseWorkspace(w1)
	w2 := AcquireWorkspace(g2)
	// Same cell count (256): the pool may hand back the same workspace; it
	// must be safely reusable either way.
	p, ok := w2.AStar(g2, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 31, Y: 7}},
		Obs:     grid.NewObsMap(g2),
	})
	if !ok || p.Len() != 38 {
		t.Fatalf("pooled workspace search: ok=%v len=%d, want the Manhattan distance 38", ok, p.Len())
	}
	ReleaseWorkspace(w2)
	ReleaseWorkspace(nil) // must be a no-op
}

// TestRunScheduledVisitsMatchesSequentialTracked: the visit cones delivered
// to the commit callback are identical, per task, to the cones a sequential
// tracked run produces — at every worker count.
func TestRunScheduledVisitsMatchesSequentialTracked(t *testing.T) {
	g, obs, edges := schedScenario(t, 8)
	window := func(e Edge) geom.Rect { return SearchWindow(g, e.Sources, e.Targets) }

	// Reference: route the tasks sequentially by hand with tracking on.
	wantVisits := make([][]uint64, len(edges))
	wantOuts := make([]TaskOutcome, len(edges))
	ref := obs.Clone()
	ws := NewWorkspace(g)
	for i, task := range edgeTasks(g, edges, window) {
		ws.StartVisitTracking()
		out := task.Run(ws, ref)
		ws.StopVisitTracking()
		wantVisits[i] = ws.CopyVisits(nil)
		wantOuts[i] = out
		for _, p := range out.Paths {
			ref.SetPath(p, true)
		}
	}

	for _, workers := range []int{1, 2, 4, 8} {
		final := obs.Clone()
		i := 0
		RunScheduledVisits(final, edgeTasks(g, edges, window), workers, func(j int, out TaskOutcome, visits []uint64) {
			if j != i {
				t.Fatalf("workers=%d: commit %d out of order (want %d)", workers, j, i)
			}
			if !reflect.DeepEqual(out, wantOuts[j]) {
				t.Fatalf("workers=%d task %d: outcome differs from sequential", workers, j)
			}
			if !reflect.DeepEqual(append([]uint64(nil), visits...), wantVisits[j]) {
				t.Fatalf("workers=%d task %d: visit cone differs from sequential tracked run", workers, j)
			}
			i++
		})
		if i != len(edges) {
			t.Fatalf("workers=%d: %d commits for %d tasks", workers, i, len(edges))
		}
		assertObsEqual(t, ref, final)
	}
}
