package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// randomNegotiateInstance builds a random multi-edge negotiation instance
// with enough congestion that multi-round (cache-exercising) runs occur.
func randomNegotiateInstance(rng *rand.Rand) (grid.Grid, *grid.ObsMap, []Edge) {
	w, h := 12+rng.Intn(14), 12+rng.Intn(14)
	g := grid.New(w, h)
	obs := grid.NewObsMap(g)
	for i := 0; i < g.Cells()/5; i++ {
		obs.Set(geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}, true)
	}
	used := map[geom.Pt]bool{}
	pick := func() geom.Pt {
		for {
			p := geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}
			if !used[p] {
				used[p] = true
				obs.Set(p, false)
				return p
			}
		}
	}
	n := 3 + rng.Intn(5)
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{ID: i, Sources: []geom.Pt{pick()}, Targets: []geom.Pt{pick()}}
	}
	return g, obs, edges
}

// TestNegotiateCacheByteIdentical: for random instances, every combination of
// worker count and cache mode (on, off, checked) returns the identical
// (paths, ok) — the cache is a pure wall-clock optimization.
func TestNegotiateCacheByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 40; trial++ {
		_, obs, edges := randomNegotiateInstance(rng)

		ref := DefaultNegotiateParams()
		ref.NoCache = true
		wantPaths, wantOK := Negotiate(obs, edges, ref)

		for _, workers := range []int{0, 1, 2, 4} {
			for _, mode := range []struct {
				name             string
				noCache, checked bool
			}{
				{"cache", false, false},
				{"nocache", true, false},
				{"checkcache", false, true},
			} {
				params := DefaultNegotiateParams()
				params.Workers = workers
				params.NoCache = mode.noCache
				params.CheckCache = mode.checked
				paths, ok := Negotiate(obs, edges, params)
				if ok != wantOK {
					t.Fatalf("trial %d workers=%d %s: ok=%v, want %v", trial, workers, mode.name, ok, wantOK)
				}
				if len(paths) != len(wantPaths) {
					t.Fatalf("trial %d workers=%d %s: %d paths, want %d", trial, workers, mode.name, len(paths), len(wantPaths))
				}
				for id, p := range wantPaths {
					if !pathsEqual(p, paths[id]) {
						t.Fatalf("trial %d workers=%d %s: edge %d path differs\n got %v\nwant %v",
							trial, workers, mode.name, id, paths[id], p)
					}
				}
			}
		}
	}
}

// TestNegotiateStatsInvariants: the counters are identical for every worker
// count, and a cache hit replaces exactly one search — Searches with the
// cache off equals Searches + CacheHits with it on.
func TestNegotiateStatsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sawHit := false
	for trial := 0; trial < 40; trial++ {
		g, obs, edges := randomNegotiateInstance(rng)

		runStats := func(workers int, noCache bool) NegotiateStats {
			var s NegotiateStats
			params := DefaultNegotiateParams()
			params.Workers = workers
			params.NoCache = noCache
			ws := AcquireWorkspace(g)
			ws.NegotiateTracked(obs, edges, params, &s)
			ReleaseWorkspace(ws)
			return s
		}

		on0 := runStats(0, false)
		off := runStats(0, true)
		if off.Searches != on0.Searches+on0.CacheHits {
			t.Fatalf("trial %d: off.Searches=%d, on.Searches=%d + on.CacheHits=%d",
				trial, off.Searches, on0.Searches, on0.CacheHits)
		}
		if off.Rounds != on0.Rounds {
			t.Fatalf("trial %d: rounds differ off=%d on=%d", trial, off.Rounds, on0.Rounds)
		}
		if off.CacheHits != 0 || off.CacheMisses != 0 || off.Invalidated != 0 {
			t.Fatalf("trial %d: cache counters nonzero with the cache off: %+v", trial, off)
		}
		for _, workers := range []int{1, 2, 4} {
			s := runStats(workers, false)
			if !statsEqual(s, on0) {
				t.Fatalf("trial %d workers=%d: stats %+v differ from sequential %+v", trial, workers, s, on0)
			}
		}
		if on0.CacheHits > 0 {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("no trial produced a cache hit; the instances no longer exercise the cache")
	}
}

func statsEqual(a, b NegotiateStats) bool {
	if a.Rounds != b.Rounds || a.Searches != b.Searches || a.CacheHits != b.CacheHits ||
		a.CacheMisses != b.CacheMisses || a.Invalidated != b.Invalidated ||
		len(a.FailedIDs) != len(b.FailedIDs) {
		return false
	}
	for i := range a.FailedIDs {
		if a.FailedIDs[i] != b.FailedIDs[i] {
			return false
		}
	}
	return true
}

// TestNegotiateFailedIDs: when negotiation gives up, the final round's
// unrouted edges are reported in edge order; on success FailedIDs is empty.
func TestNegotiateFailedIDs(t *testing.T) {
	// Three edges through a single one-cell corridor: at most one can route,
	// so two must appear in FailedIDs (which two is the router's business —
	// but the set must be deterministic and in edge order).
	g := grid.New(9, 5)
	obs := grid.NewObsMap(g)
	for y := 0; y < 5; y++ {
		if y != 2 {
			obs.Set(geom.Pt{X: 4, Y: y}, true)
		}
	}
	edges := []Edge{
		{ID: 10, Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 8, Y: 0}}},
		{ID: 11, Sources: []geom.Pt{{X: 0, Y: 2}}, Targets: []geom.Pt{{X: 8, Y: 2}}},
		{ID: 12, Sources: []geom.Pt{{X: 0, Y: 4}}, Targets: []geom.Pt{{X: 8, Y: 4}}},
	}
	for _, workers := range []int{0, 2} {
		var stats NegotiateStats
		params := DefaultNegotiateParams()
		params.Workers = workers
		ws := AcquireWorkspace(g)
		_, ok := ws.NegotiateTracked(obs, edges, params, &stats)
		ReleaseWorkspace(ws)
		if ok {
			t.Fatalf("workers=%d: three edges cannot share a one-cell corridor", workers)
		}
		if len(stats.FailedIDs) == 0 {
			t.Fatalf("workers=%d: failed negotiation reported no failed edges", workers)
		}
		for i := 1; i < len(stats.FailedIDs); i++ {
			if stats.FailedIDs[i-1] >= stats.FailedIDs[i] {
				t.Fatalf("workers=%d: FailedIDs not in edge order: %v", workers, stats.FailedIDs)
			}
		}
		for _, id := range stats.FailedIDs {
			if id < 10 || id > 12 {
				t.Fatalf("workers=%d: unknown failed ID %d", workers, id)
			}
		}
	}

	// Success path: FailedIDs stays empty.
	var stats NegotiateStats
	okEdges := []Edge{{ID: 0, Sources: []geom.Pt{{X: 0, Y: 2}}, Targets: []geom.Pt{{X: 8, Y: 2}}}}
	ws := AcquireWorkspace(g)
	if _, ok := ws.NegotiateTracked(obs, okEdges, DefaultNegotiateParams(), &stats); !ok {
		t.Fatal("single corridor edge must route")
	}
	ReleaseWorkspace(ws)
	if len(stats.FailedIDs) != 0 {
		t.Fatalf("successful negotiation reported failed edges %v", stats.FailedIDs)
	}
}

// TestDirtyCellOnConeBoundary: an entry is invalidated by a dirty cell that
// the search merely *touched* (frontier boundary, never expanded), and stays
// valid when the dirty cell lies strictly outside the visit cone. The touch
// set, not the expansion set, is the correctness boundary: a boundary cell's
// obstacle state was read to decide not to expand it.
func TestDirtyCellOnConeBoundary(t *testing.T) {
	g := grid.New(9, 9)
	obs := grid.NewObsMap(g)
	// Wall at x=4 except a gap at y=4 confines the cone's spill past the wall.
	for y := 0; y < 9; y++ {
		if y != 4 {
			obs.Set(geom.Pt{X: 4, Y: y}, true)
		}
	}
	w := NewWorkspace(g)
	// Route through the gap: expanding the gap cell (4,4) touches the wall
	// cells above and below it, which stay unexpanded (blocked).
	req := Request{Sources: []geom.Pt{{X: 0, Y: 4}}, Targets: []geom.Pt{{X: 5, Y: 4}}, Obs: obs}

	w.negReset(g, 1)
	w.StartVisitTracking()
	p, ok := w.AStar(g, req)
	w.StopVisitTracking()
	if !ok {
		t.Fatal("search failed")
	}
	visits := w.CopyVisits(nil)
	ent := &w.negEntries[0]
	w.negRecord(g, ent, p, ok, visits)
	if !w.negEntryValid(ent) {
		t.Fatal("fresh entry must be valid")
	}

	inCone := func(c geom.Pt) bool {
		i := g.Index(c)
		return visits[i>>6]&(1<<(i&63)) != 0
	}
	// The wall cell adjacent to the path is touched (its blockedness was
	// read) but never expanded — it must be in the cone.
	boundary := geom.Pt{X: 4, Y: 3}
	if !inCone(boundary) {
		t.Fatalf("wall cell %v not in the visit cone; the cone no longer covers touched cells", boundary)
	}
	w.negClock++
	w.negDirty[g.Index(boundary)] = w.negClock
	if w.negEntryValid(ent) {
		t.Fatal("entry still valid with a dirty cell on the cone boundary")
	}

	// Re-record, then dirty a cell strictly outside the cone (behind the
	// wall, reachable only through the distant gap): entry stays valid.
	w.negRecord(g, ent, p, ok, visits)
	if !w.negEntryValid(ent) {
		t.Fatal("re-recorded entry must be valid")
	}
	outside := geom.Pt{X: 8, Y: 0}
	if inCone(outside) {
		t.Fatalf("cell %v unexpectedly inside the cone; pick a farther cell", outside)
	}
	w.negClock++
	w.negDirty[g.Index(outside)] = w.negClock
	if !w.negEntryValid(ent) {
		t.Fatal("entry invalidated by a cell outside its cone")
	}
}

// TestNegRecordMarksChangedOutcome: when a slot's fresh outcome differs from
// its previous round's, both the old and the new path cells go dirty — and
// the entry itself stays valid (its own inputs did not change).
func TestNegRecordMarksChangedOutcome(t *testing.T) {
	g := grid.New(8, 8)
	w := NewWorkspace(g)
	w.negReset(g, 1)
	ent := &w.negEntries[0]

	oldPath := grid.Path{{X: 1, Y: 1}, {X: 2, Y: 1}}
	newPath := grid.Path{{X: 1, Y: 6}, {X: 2, Y: 6}}
	visits := make([]uint64, (g.Cells()+63)/64)
	for _, c := range newPath {
		i := g.Index(c)
		visits[i>>6] |= 1 << (i & 63)
	}

	w.negRecord(g, ent, oldPath, true, visits)
	clock0 := w.negClock
	w.negRecord(g, ent, newPath, true, visits)
	if w.negClock != clock0+1 {
		t.Fatalf("changed outcome must tick the clock once: %d -> %d", clock0, w.negClock)
	}
	for _, c := range append(oldPath.Clone(), newPath...) {
		if w.negDirty[g.Index(c)] != w.negClock {
			t.Fatalf("cell %v not marked dirty by the outcome change", c)
		}
	}
	if !w.negEntryValid(ent) {
		t.Fatal("an edge's own outcome change must not invalidate its own entry")
	}
}
