package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestBucketCertifiedHistIdentity drives AStar with caller-certified integral
// history costs (HistScale/HistMax, as the hierarchical escape stage supplies
// them) through both queue modes and requires byte-identical outcomes.
func TestBucketCertifiedHistIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := grid.Grid{W: 40 + rng.Intn(20), H: 40 + rng.Intn(20)}
		obs := grid.NewObsMap(g)
		for i := 0; i < g.Cells()/6; i++ {
			obs.Set(geom.Pt{X: rng.Intn(g.W), Y: rng.Intn(g.H)}, true)
		}
		hist := make([]float64, g.Cells())
		maxH := int64(0)
		for i := range hist {
			switch rng.Intn(5) {
			case 0:
				hist[i] = 4
			case 1:
				hist[i] = 16
			case 2:
				hist[i] = 20
			}
			if int64(hist[i]) > maxH {
				maxH = int64(hist[i])
			}
		}
		src := geom.Pt{X: rng.Intn(g.W), Y: rng.Intn(g.H)}
		dst := geom.Pt{X: rng.Intn(g.W), Y: rng.Intn(g.H)}
		req := Request{
			Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs,
			Hist: hist, HistScale: 1, HistMax: 1 + maxH,
		}
		wh := NewWorkspace(g)
		rh := req
		rh.Queue = QueueHeap
		ph, okh := wh.AStar(g, rh)
		wb := NewWorkspace(g)
		rb := req
		rb.Queue = QueueBucket
		pb, okb := wb.AStar(g, rb)
		if wb.lastQueue != QueueBucket {
			continue // ring infeasible; heap fallback is identity by construction
		}
		if okh != okb || !pathsEqual(ph, pb) {
			t.Fatalf("trial %d: heap ok=%v len=%d vs bucket ok=%v len=%d (src=%v dst=%v)",
				trial, okh, ph.Len(), okb, pb.Len(), src, dst)
		}
	}
}
