package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// BoundedAStar implements the minimum-length bounded routing of Section 6:
// it searches for a simple path whose length lies in [minLen, maxLen],
// preferring the shortest such path. Two modifications versus classic A*
// (as described in the paper): (1) the per-cell G value records the path
// length from the source and is only updated when it increases, so the
// search can deliberately pass a cell again on a longer path; and (2) the
// F value adds a penalty when the estimated total length G+H falls short of
// the bound, which steers the frontier toward detours.
//
// The search returns ok=false when no conforming path is found within the
// expansion budget.
//
// This wrapper draws a pooled Workspace; callers in routing inner loops
// should hold their own Workspace and use its BoundedAStar method directly.
func BoundedAStar(g grid.Grid, req Request, minLen, maxLen int) (grid.Path, bool) {
	w := AcquireWorkspace(g)
	path, ok := w.BoundedAStar(g, req, minLen, maxLen)
	ReleaseWorkspace(w)
	return path, ok
}

// bnode is one state of the bounded-length search: a cell reached with a
// specific path length, linked to its predecessor state. States live in the
// workspace arena (per-cell parent arrays do not suffice because states are
// (cell, length) pairs).
type bnode struct {
	cell   int32
	g      int32
	parent int32
}

// reconstructArena walks the arena's parent chain, allocating the result
// path exactly once.
//
//pacor:allow hotalloc single exact-size allocation for the result path returned to the caller
func reconstructArena(g grid.Grid, arena []bnode, idx int) grid.Path {
	n := 1
	for i := idx; arena[i].parent >= 0; i = int(arena[i].parent) {
		n++
	}
	path := make(grid.Path, n)
	i := idx
	for k := n - 1; k >= 0; k-- {
		path[k] = g.Pt(int(arena[i].cell))
		i = int(arena[i].parent)
	}
	return path
}

// ExtendPath lengthens an existing path by repeatedly inserting unit U-turn
// detours (each adding exactly 2 to the length) until the length reaches
// [minLen, maxLen]. Because the endpoints are fixed, every path between them
// has the same length parity, so a window of width >= 1 always contains a
// reachable target when free space admits the detours. The path's own cells
// count as blocked for the detour cells; obs blocks as usual. It returns the
// extended path and whether the window was reached.
//
//pacor:allow hotalloc detour post-pass runs once per net, not per search step; paths are value results
func ExtendPath(obs *grid.ObsMap, path grid.Path, minLen, maxLen int) (grid.Path, bool) {
	if path.Len() > maxLen {
		return path, false
	}
	if path.Len() >= minLen {
		return path, true
	}
	g := obs.Grid()
	cur := path.Clone()
	for cur.Len() < minLen {
		if cur.Len()+2 > maxLen {
			return cur, false // parity gap: +2 would overshoot
		}
		on := make(map[geom.Pt]bool, len(cur))
		for _, c := range cur {
			on[c] = true
		}
		applied := false
		for i := 0; i+1 < len(cur) && !applied; i++ {
			a, b := cur[i], cur[i+1]
			d := b.Sub(a)
			for _, s := range []geom.Pt{{X: -d.Y, Y: d.X}, {X: d.Y, Y: -d.X}} {
				ca, cb := a.Add(s), b.Add(s)
				if !g.In(ca) || !g.In(cb) || obs.Blocked(ca) || obs.Blocked(cb) || on[ca] || on[cb] {
					continue
				}
				ext := make(grid.Path, 0, len(cur)+2)
				ext = append(ext, cur[:i+1]...)
				ext = append(ext, ca, cb)
				ext = append(ext, cur[i+1:]...)
				cur = ext
				applied = true
				break
			}
		}
		if !applied {
			return cur, false
		}
	}
	return cur, cur.Len() >= minLen && cur.Len() <= maxLen
}
