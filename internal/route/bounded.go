package route

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/grid"
)

// BoundedAStar implements the minimum-length bounded routing of Section 6:
// it searches for a simple path whose length lies in [minLen, maxLen],
// preferring the shortest such path. Two modifications versus classic A*
// (as described in the paper): (1) the per-cell G value records the path
// length from the source and is only updated when it increases, so the
// search can deliberately pass a cell again on a longer path; and (2) the
// F value adds a penalty when the estimated total length G+H falls short of
// the bound, which steers the frontier toward detours.
//
// The search returns ok=false when no conforming path is found within the
// expansion budget.
func BoundedAStar(g grid.Grid, req Request, minLen, maxLen int) (grid.Path, bool) {
	if len(req.Sources) == 0 || len(req.Targets) == 0 || minLen > maxLen || maxLen < 0 {
		return nil, false
	}
	isTarget := make(map[geom.Pt]bool, len(req.Targets))
	tb := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	for _, t := range req.Targets {
		if g.In(t) {
			isTarget[t] = true
			tb = tb.Union(geom.RectOf(t, t))
		}
	}
	if len(isTarget) == 0 {
		return nil, false
	}
	h := func(p geom.Pt) int {
		dx := 0
		if p.X < tb.MinX {
			dx = tb.MinX - p.X
		} else if p.X > tb.MaxX {
			dx = p.X - tb.MaxX
		}
		dy := 0
		if p.Y < tb.MinY {
			dy = tb.MinY - p.Y
		} else if p.Y > tb.MaxY {
			dy = p.Y - tb.MaxY
		}
		return dx + dy
	}

	// Node arena for parent chains (states are (cell, length), so per-cell
	// parent arrays do not suffice).
	arena := make([]bnode, 0, 4*g.Cells())
	maxSeen := make([]int32, g.Cells())
	for i := range maxSeen {
		maxSeen[i] = -1
	}
	// Penalty: under-length states are ordered by decreasing G+H, so the
	// search stretches paths before settling; conforming states use plain
	// A* ordering.
	prio := func(gv, hv int) int {
		f := gv + hv
		if f < minLen {
			return 2*minLen - f
		}
		return f
	}

	pq := &boundedHeap{}
	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		arena = append(arena, bnode{cell: int32(i), g: 0, parent: -1})
		heap.Push(pq, boundedItem{node: int32(len(arena) - 1), f: int32(prio(0, h(s)))})
		if maxSeen[i] < 0 {
			maxSeen[i] = 0
		}
	}

	// Expansion budget: generous but bounded. A Bounds window shrinks it to
	// the window area so detour searches stay local and fast.
	cells := g.Cells()
	if req.Bounds != nil {
		if a := req.Bounds.Intersect(g.Bounds()).Area(); a < cells {
			cells = a
		}
	}
	budget := 16 * cells
	if budget < 65536 {
		budget = 65536
	}
	var nbuf []geom.Pt
	for pq.Len() > 0 && budget > 0 {
		budget--
		it := heap.Pop(pq).(boundedItem)
		nd := arena[it.node]
		p := g.Pt(int(nd.cell))
		if isTarget[p] && int(nd.g) >= minLen && int(nd.g) <= maxLen {
			// Cycles are possible in principle (the monotone-G rule only
			// requires strictly longer revisits), so validate at
			// reconstruction instead of paying an ancestor-chain walk on
			// every expansion.
			if path := reconstructArena(g, arena, int(it.node)); path.Valid() {
				return path, true
			}
			continue
		}
		nbuf = g.Neighbors(p, nbuf)
		for _, q := range nbuf {
			j := g.Index(q)
			ng := nd.g + 1
			if int(ng) > maxLen {
				continue
			}
			if !req.inBounds(q) && !isTarget[q] {
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !isTarget[q] {
				continue
			}
			// Monotone-G rule: only revisit a cell on a strictly longer path.
			if ng <= maxSeen[j] && !(isTarget[q] && int(ng) >= minLen) {
				continue
			}
			if ng > maxSeen[j] {
				maxSeen[j] = ng
			}
			arena = append(arena, bnode{cell: int32(j), g: ng, parent: it.node})
			heap.Push(pq, boundedItem{node: int32(len(arena) - 1), f: int32(prio(int(ng), h(q)))})
		}
	}
	return nil, false
}

// bnode is one state of the bounded-length search: a cell reached with a
// specific path length, linked to its predecessor state.
type bnode struct {
	cell   int32
	g      int32
	parent int32
}

func reconstructArena(g grid.Grid, arena []bnode, idx int) grid.Path {
	var rev grid.Path
	for i := idx; i != -1; i = int(arena[i].parent) {
		rev = append(rev, g.Pt(int(arena[i].cell)))
		if arena[i].parent == -1 {
			break
		}
	}
	return rev.Reverse()
}

type boundedItem struct {
	node int32
	f    int32
}

type boundedHeap []boundedItem

func (h boundedHeap) Len() int            { return len(h) }
func (h boundedHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h boundedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boundedHeap) Push(x interface{}) { *h = append(*h, x.(boundedItem)) }
func (h *boundedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ExtendPath lengthens an existing path by repeatedly inserting unit U-turn
// detours (each adding exactly 2 to the length) until the length reaches
// [minLen, maxLen]. Because the endpoints are fixed, every path between them
// has the same length parity, so a window of width >= 1 always contains a
// reachable target when free space admits the detours. The path's own cells
// count as blocked for the detour cells; obs blocks as usual. It returns the
// extended path and whether the window was reached.
func ExtendPath(obs *grid.ObsMap, path grid.Path, minLen, maxLen int) (grid.Path, bool) {
	if path.Len() > maxLen {
		return path, false
	}
	if path.Len() >= minLen {
		return path, true
	}
	g := obs.Grid()
	cur := path.Clone()
	for cur.Len() < minLen {
		if cur.Len()+2 > maxLen {
			return cur, false // parity gap: +2 would overshoot
		}
		on := make(map[geom.Pt]bool, len(cur))
		for _, c := range cur {
			on[c] = true
		}
		applied := false
		for i := 0; i+1 < len(cur) && !applied; i++ {
			a, b := cur[i], cur[i+1]
			d := b.Sub(a)
			for _, s := range []geom.Pt{{X: -d.Y, Y: d.X}, {X: d.Y, Y: -d.X}} {
				ca, cb := a.Add(s), b.Add(s)
				if !g.In(ca) || !g.In(cb) || obs.Blocked(ca) || obs.Blocked(cb) || on[ca] || on[cb] {
					continue
				}
				ext := make(grid.Path, 0, len(cur)+2)
				ext = append(ext, cur[:i+1]...)
				ext = append(ext, ca, cb)
				ext = append(ext, cur[i+1:]...)
				cur = ext
				applied = true
				break
			}
		}
		if !applied {
			return cur, false
		}
	}
	return cur, cur.Len() >= minLen && cur.Len() <= maxLen
}
