package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// Edge is one connection request for the negotiation router: route from any
// source cell to any target cell.
type Edge struct {
	ID      int
	Sources []geom.Pt
	Targets []geom.Pt
}

// NegotiateParams are the tuning constants of Algorithm 1 and Eq. 5. The
// paper sets BaseHist (bg) = 1.0, Alpha = 0.1, Gamma = 10.
type NegotiateParams struct {
	BaseHist float64
	Alpha    float64
	Gamma    int
	// Workers sets the pool size for routing each round's edges through the
	// spatial-dependency scheduler (RunScheduled). 0 or 1 routes the round
	// sequentially; any value produces byte-identical results — the scheduler
	// validates every speculative search against the exact sequential
	// obstacle state before committing it.
	Workers int
	// NoCache disables the incremental search-cone cache (cache.go). The
	// cache is a pure wall-clock optimization: on or off, every round's
	// routed paths are byte-identical.
	NoCache bool
	// CheckCache is the exact-validation mode: every cache hit re-runs its
	// search anyway and panics if the replayed result diverges. Strictly
	// slower than NoCache; for CI gates and debugging.
	CheckCache bool
	// Queue selects the open-list implementation of every inner search; see
	// QueueMode. Representability is asserted per round: a round whose
	// history domain carries a HistQuant certificate may run on the bucket
	// queue, any other round runs on the heap regardless of the setting
	// (e.g. the paper's Alpha = 0.1 after two bumps). Like Workers and the
	// cache knobs, the choice never changes routed output.
	Queue QueueMode
	// Hier configures the hierarchical two-stage router (hier.go): a tile-
	// level min-cost-flow global stage assigns each edge a corridor, and the
	// detailed searches run masked to it, escalating to the flat search
	// whenever the mask clips. For negotiation the hierarchy is exact — like
	// Workers, the cache, and Queue, it never changes routed output, only
	// wall-clock. The zero value is auto: on only above the cell threshold.
	Hier HierParams
	// Seed, when non-nil, warm-starts the run from a previous run's captured
	// transcript (cross-run incremental routing, seed.go): aligned edges
	// whose recorded cones avoid every cross-run divergence cell replay the
	// parent's per-round outcomes instead of searching. Like the within-run
	// cache it never changes routed output — replay is gated on the same
	// cone-disjointness proof — and a seed whose grid, parameters, or shape
	// don't match is ignored. Inert under NoCache.
	Seed *NegotiationSeed
	// Capture, when non-nil, records the run's full per-round transcript
	// (outcomes and visit cones, delta-encoded) into the pointed-to seed for
	// later use as Seed. Capture forces round 0 to run tracked (it needs the
	// cones), which changes wall-clock but never output or the Searches
	// counter. Inert under NoCache.
	Capture *NegotiationSeed
}

// DefaultNegotiateParams mirrors the paper's settings.
func DefaultNegotiateParams() NegotiateParams {
	return NegotiateParams{BaseHist: 1.0, Alpha: 0.1, Gamma: 10}
}

// Negotiate routes all edges on the shared obstacle map using the
// negotiation strategy of Algorithm 1: edges are routed sequentially with
// routed paths acting as obstacles; when any edge fails, the history cost of
// every cell on the routed paths is raised per Eq. 5 and the whole iteration
// restarts, up to Gamma rounds. On success it returns the path per edge ID.
// On failure it returns ok=false along with the paths of the last
// (incomplete) iteration for diagnostic use; obs is left unmodified either
// way.
//
// This wrapper draws a pooled Workspace; callers in routing inner loops
// should hold their own Workspace and use its Negotiate method directly.
func Negotiate(obs *grid.ObsMap, edges []Edge, params NegotiateParams) (map[int]grid.Path, bool) {
	w := AcquireWorkspace(obs.Grid())
	paths, ok := w.Negotiate(obs, edges, params)
	ReleaseWorkspace(w)
	return paths, ok
}

// Negotiate is the workspace-backed form of the package-level Negotiate:
// the same Algorithm 1, with every inner A* reusing w's search arrays and
// one scratch obstacle map shared across iterations.
func (w *Workspace) Negotiate(obs *grid.ObsMap, edges []Edge, params NegotiateParams) (map[int]grid.Path, bool) {
	return w.NegotiateTracked(obs, edges, params, nil)
}

// NegotiateTracked is Negotiate with run statistics: when stats is non-nil,
// round, search, and cache counters accumulate into it, and on failure the
// final round's unrouted edge IDs land in stats.FailedIDs (edge order).
//
// Rounds past the first run through the incremental cache (unless
// params.NoCache): each edge's search records its visit cone, and an edge
// whose cone contains no cell dirtied since — no history bump, no obstacle
// delta from an earlier edge's changed outcome — replays its previous
// result without searching. Round 0 runs untracked so the common
// converges-in-one-round case pays no tracking overhead. See cache.go for
// the invalidation argument.
func (w *Workspace) NegotiateTracked(obs *grid.ObsMap, edges []Edge, params NegotiateParams, stats *NegotiateStats) (map[int]grid.Path, bool) {
	g := obs.Grid()
	//pacor:allow hotalloc once per negotiation run, amortized over gamma iterations of inner searches
	hist := make([]float64, g.Cells()) // Step 1: initialize history cost
	//pacor:allow hotalloc result map returned to the caller, sized up front
	paths := make(map[int]grid.Path, len(edges))
	useCache := !params.NoCache && len(edges) > 0 &&
		(params.Gamma > 1 || params.Seed != nil || params.Capture != nil)
	if useCache {
		w.negReset(g, len(edges))
	}

	// Step 2's per-round ObsMap: one workspace-resident map, rebuilt per
	// round by journal rewind (O(round's committed paths)) instead of a full
	// O(cells) copy. Terminals are blocked once, below the rewind mark: a
	// channel may not run through another net's valve or merge point, while
	// an edge's own search is unaffected (sources seed unconditionally,
	// targets are obstacle-exempt), so edges of the same Steiner tree still
	// connect at their shared merging nodes.
	work := w.negWorkFor(g)
	work.CopyFrom(obs)
	work.StartJournal(w.negJournal)
	for _, e := range edges {
		for _, c := range e.Sources {
			work.Set(c, true)
		}
		for _, c := range e.Targets {
			work.Set(c, true)
		}
	}
	mark := work.JournalLen()
	w.negFailed = w.negFailed[:0]

	// Cross-run seeding and capture (seed.go) initialize against the
	// round-start state just journaled above: the seed's start bitmap must
	// diff against the same blocked set (base map plus terminals) a capture
	// of this run would record. Both are inert under NoCache so the cache-off
	// byte-identity sweeps exercise the plain path.
	w.negSeedOn, w.negCapOn, w.negParentLive = false, false, false
	if useCache {
		if params.Seed != nil {
			w.negSeedOn = w.negSeedStart(g, work, edges, params, stats)
		}
		if params.Capture != nil {
			w.negCapOn = w.negCaptureStart(g, work, edges, params)
		}
	}

	// Hierarchical global stage: coarsen the round-start work map (terminals
	// included as obstacles) once per run; corridors are reassigned per round
	// against the round's history. The run flag is always (re)set so a pooled
	// workspace never carries a stale hierarchy into a flat run.
	hierOn := params.Hier.On(g.Cells()) && len(edges) > 0
	w.hier.run = false
	if hierOn {
		w.hierPrepare(work, len(edges), params.Hier, stats)
	}

	// Queue-mode resolution happens once against the owning workspace so the
	// scheduler's worker workspaces see a fully resolved mode; the per-round
	// quantization certificate (HistQuant) is refreshed before each round —
	// round r's history values are the Eq.-5 iterates h_0..h_r, and once an
	// iterate stops being dyadic the run stays on the heap.
	w.negQueue = w.effQueue(params.Queue)
	quantOK := true

	routed := false
	for r := 0; r < params.Gamma; r++ { // Steps 5-16
		if r > 0 {
			work.RewindJournal(mark)
		}
		if hierOn {
			w.hierAssign(edges, hist, r, stats)
		}
		w.negScale, w.negMaxStep = 0, 0
		if quantOK && w.negQueue != QueueHeap {
			w.negScale, w.negMaxStep, quantOK = HistQuant(params.BaseHist, params.Alpha, r)
		}
		for k := range paths {
			delete(paths, k)
		}
		w.negFailed = w.negFailed[:0]
		if stats != nil {
			stats.Rounds++
		}
		if w.negSeedOn {
			w.negParentLive = r < len(w.negSeed.Rounds)
			if w.negParentLive {
				w.negParentApply(r)
			}
		}
		if w.negCapOn {
			w.negCaptureRound()
		}
		caching := useCache && r > 0
		var done bool
		if params.Workers > 1 && len(edges) > 1 {
			done = w.negRoundParallel(g, work, edges, hist, paths, params, caching, stats)
		} else {
			done = w.negRoundSeq(g, work, edges, hist, paths, params, caching, stats)
		}
		if done {
			routed = true
			break
		}
		// Steps 17-19: bump history along routed paths, then rip them up.
		// Bumped cells go dirty under a fresh clock tick — any cached cone
		// containing one saw a changed history value. (Map iteration order
		// varies, but the bump composes the same affine update per visit
		// regardless of visit order, so hist — and the dirty marks — are
		// order-independent.)
		if useCache {
			w.negClock++
		}
		for _, p := range paths {
			for _, c := range p {
				i := g.Index(c)
				hist[i] = params.BaseHist + params.Alpha*hist[i]
				if useCache {
					w.negDirty[i] = w.negClock
				}
			}
		}
	}
	w.negJournal = work.StopJournal()
	if w.negSeedOn || w.negCapOn {
		w.negSeedFinish()
	}
	if stats != nil && !routed {
		stats.FailedIDs = append(stats.FailedIDs, w.negFailed...) //pacor:allow hotalloc failure-path diagnostic, grows the caller's stats slice once
	}
	return paths, routed
}

// negReq builds the round's search request for one edge: the same sources,
// targets, work map, and history every call site (fresh search, cache
// validation, scheduler task) must use, with the resolved queue mode and the
// round's quantization certificate attached.
func (w *Workspace) negReq(e *Edge, work *grid.ObsMap, hist []float64) Request {
	return Request{
		Sources: e.Sources, Targets: e.Targets, Obs: work, Hist: hist,
		Queue: w.negQueue, HistScale: w.negScale, HistMax: w.negMaxStep,
	}
}

// negRoundSeq routes one round's edges sequentially (Steps 7-13), replaying
// valid within-run cache entries when caching is on and valid cross-run seed
// entries whenever the parent transcript covers the round. It reports
// whether every edge routed.
func (w *Workspace) negRoundSeq(g grid.Grid, work *grid.ObsMap, edges []Edge, hist []float64,
	paths map[int]grid.Path, params NegotiateParams, caching bool, stats *NegotiateStats) bool {
	done := true
	seedLive := w.negSeedOn && w.negParentLive
	capOn := w.negCapOn
	for ei := range edges {
		e := &edges[ei]
		req := w.negReq(e, work, hist)
		var p grid.Path
		var ok bool
		var lvl hierLevel
		switch {
		case caching && w.negEntryValid(&w.negEntries[ei]):
			// Within-run hit. Checked before the seed so a seeded run replays
			// exactly the hits a cold run would, keeping the hit/miss pattern
			// — and so the counters — identical.
			ent := &w.negEntries[ei]
			if params.CheckCache {
				w.negCheck(g, req, e.ID, ent)
			}
			if stats != nil {
				stats.CacheHits++
			}
			p, ok = ent.path, ent.ok
			if seedLive {
				w.negCrossCompare(g, ei, p, ok)
			}
			if capOn {
				w.negCaptureRecord(ei, p, ok, ent.visits)
			}
		case seedLive && w.negParentValid(ei):
			// Cross-run replay: copy the parent's outcome for this round. The
			// bookkeeping mirrors the fresh search it replaced — negRecord
			// with the parent's cone, which cone-disjointness proves equal to
			// the cone the fresh search would have produced — so the
			// within-run cache state stays identical to a cold run's.
			pe := &w.negParent[w.negAlign[ei]]
			if params.CheckCache {
				w.negCheck(g, req, e.ID, &negEntry{recorded: true, ok: pe.ok, path: pe.path}) //pacor:allow hotalloc CheckCache verification mode only, off on production runs
			}
			if stats != nil {
				stats.SeededHits++
			}
			p, ok = pe.path, pe.ok
			if caching {
				w.negRecord(g, &w.negEntries[ei], p, ok, pe.visits)
			}
			if capOn {
				w.negCaptureRecord(ei, p, ok, pe.visits)
			}
		case !caching && !capOn:
			// Plain untracked search (cold round 0). Cross-run comparison
			// needs only the committed path, so a live seed costs no tracking.
			p, ok, lvl = w.negSearch(g, req, ei)
			if stats != nil {
				stats.Searches++
				stats.Hier.count(lvl)
			}
			if seedLive {
				w.negCrossCompare(g, ei, p, ok)
			}
		default:
			if stats != nil {
				stats.Searches++
				if caching {
					// Round 0 under capture runs tracked but is not a cache
					// miss — cold stats must match the capture-free run.
					stats.CacheMisses++
					if w.negEntries[ei].recorded {
						stats.Invalidated++
					}
				}
			}
			// The whole ladder runs tracked: its recorded cone is the union of
			// every rung's visits — a superset of the flat search's cone, so
			// cache invalidation stays sound (it can only over-trigger).
			w.StartVisitTracking()
			p, ok, lvl = w.negSearch(g, req, ei)
			w.StopVisitTracking()
			if stats != nil {
				stats.Hier.count(lvl)
			}
			w.negVisits = w.CopyVisits(w.negVisits[:0])
			if caching {
				w.negRecord(g, &w.negEntries[ei], p, ok, w.negVisits)
			}
			if seedLive {
				w.negCrossCompare(g, ei, p, ok)
			}
			if capOn {
				w.negCaptureRecord(ei, p, ok, w.negVisits)
			}
		}
		if ok {
			paths[e.ID] = p
			work.SetPath(p, true) // Step 11: routed path becomes obstacle
		} else {
			done = false
			w.negFailed = append(w.negFailed, e.ID) //pacor:allow hotalloc amortized failed-ID growth, buffer reused across rounds
		}
	}
	return done
}

// negRoundParallel routes one round's edges, in slice order, through the
// spatial-dependency scheduler: routed paths commit onto work in edge order,
// exactly as the sequential Steps 7-13 loop does. With caching or seeding
// on, within-run and cross-run replays happen inline and skip task dispatch
// entirely; only maximal blocks of consecutive replay-ineligible edges go
// through the scheduler. An edge's eligibility is (re)examined only after
// everything before it has committed, because a block's changed outcomes can
// dirty a later edge's cone — within-run via the dirty clock, cross-run via
// the divergence bitmap; both are monotone, so an edge ineligible at
// block-forming time is still ineligible at its sequential turn, which is
// what makes batching sound. It reports whether every edge routed.
//
//pacor:hot
//pacor:allow hotalloc per-round task construction, amortized over the round's searches
func (w *Workspace) negRoundParallel(g grid.Grid, work *grid.ObsMap, edges []Edge, hist []float64,
	paths map[int]grid.Path, params NegotiateParams, caching bool, stats *NegotiateStats) bool {
	done := true
	seedLive := w.negSeedOn && w.negParentLive
	capOn := w.negCapOn
	if !caching && !capOn && !seedLive {
		tasks := make([]ScheduledTask, len(edges))
		for i := range edges {
			tasks[i] = w.negTask(g, w.negReq(&edges[i], work, hist), i)
		}
		RunScheduled(work, tasks, params.Workers, func(i int, out TaskOutcome) {
			if stats != nil {
				stats.Searches++
				if lvl, isHier := out.Payload.(hierLevel); isHier {
					stats.Hier.count(lvl)
				}
			}
			if out.OK {
				paths[edges[i].ID] = out.Paths[0]
			} else {
				done = false
				w.negFailed = append(w.negFailed, edges[i].ID)
			}
		})
		return done
	}
	commitInline := func(ei int, p grid.Path, ok bool) {
		if ok {
			paths[edges[ei].ID] = p
			work.SetPath(p, true)
		} else {
			done = false
			w.negFailed = append(w.negFailed, edges[ei].ID)
		}
	}
	needVisits := caching || capOn
	ei := 0
	for ei < len(edges) {
		if caching && w.negEntryValid(&w.negEntries[ei]) {
			e := &edges[ei]
			ent := &w.negEntries[ei]
			if params.CheckCache {
				w.negCheck(g, w.negReq(e, work, hist), e.ID, ent)
			}
			if stats != nil {
				stats.CacheHits++
			}
			if seedLive {
				w.negCrossCompare(g, ei, ent.path, ent.ok)
			}
			if capOn {
				w.negCaptureRecord(ei, ent.path, ent.ok, ent.visits)
			}
			commitInline(ei, ent.path, ent.ok)
			ei++
			continue
		}
		if seedLive && w.negParentValid(ei) {
			e := &edges[ei]
			pe := &w.negParent[w.negAlign[ei]]
			if params.CheckCache {
				w.negCheck(g, w.negReq(e, work, hist), e.ID, &negEntry{recorded: true, ok: pe.ok, path: pe.path})
			}
			if stats != nil {
				stats.SeededHits++
			}
			if caching {
				w.negRecord(g, &w.negEntries[ei], pe.path, pe.ok, pe.visits)
			}
			if capOn {
				w.negCaptureRecord(ei, pe.path, pe.ok, pe.visits)
			}
			commitInline(ei, pe.path, pe.ok)
			ei++
			continue
		}
		// Maximal block of consecutive replay-ineligible edges; the first
		// eligible edge ends the block and is re-checked once the block's
		// outcomes — and their dirty marks — have landed.
		m := ei + 1
		for m < len(edges) &&
			!(caching && w.negEntryValid(&w.negEntries[m])) &&
			!(seedLive && w.negParentValid(m)) {
			m++
		}
		base := ei
		block := edges[ei:m]
		tasks := make([]ScheduledTask, len(block))
		for i := range block {
			tasks[i] = w.negTask(g, w.negReq(&block[i], work, hist), base+i)
		}
		commitTask := func(i int, out TaskOutcome, visits []uint64) {
			if stats != nil {
				stats.Searches++
				if caching {
					stats.CacheMisses++
					if w.negEntries[base+i].recorded {
						stats.Invalidated++
					}
				}
				if lvl, isHier := out.Payload.(hierLevel); isHier {
					stats.Hier.count(lvl)
				}
			}
			var p grid.Path
			if out.OK {
				p = out.Paths[0]
			}
			if caching {
				w.negRecord(g, &w.negEntries[base+i], p, out.OK, visits)
			}
			if seedLive {
				w.negCrossCompare(g, base+i, p, out.OK)
			}
			if capOn {
				w.negCaptureRecord(base+i, p, out.OK, visits)
			}
			if out.OK {
				paths[block[i].ID] = p
			} else {
				done = false
				w.negFailed = append(w.negFailed, block[i].ID)
			}
		}
		if needVisits {
			RunScheduledVisits(work, tasks, params.Workers, commitTask)
		} else {
			RunScheduled(work, tasks, params.Workers, func(i int, out TaskOutcome) {
				commitTask(i, out, nil)
			})
		}
		ei = m
	}
	return done
}

// negTask wraps one edge's search as a scheduler task. req carries the
// edge's fully resolved request (negReq); the scheduler substitutes each
// run's private obstacle snapshot for req.Obs. When the hierarchy gave edge
// ei a corridor, the task runs the escalation ladder (exact — see hier.go)
// on the worker workspace and reports the accepted rung through Payload; the
// window covers the corridor so the scheduler's overlap heuristic sees where
// the masked search actually goes. The scheduler validates results by visit
// set, so a ladder that escalates past its window is still committed exactly.
//
//pacor:allow hotalloc one task record and one single-path result slice per edge, amortized over the edge's search
func (w *Workspace) negTask(g grid.Grid, req Request, ei int) ScheduledTask {
	var mask, wide *TileMask
	win := SearchWindow(g, req.Sources, req.Targets)
	if w.hier.run && w.hier.has[ei] {
		mask, wide = &w.hier.masks[ei], &w.hier.wide[ei]
		win = win.Union(w.hier.win[ei])
	}
	return ScheduledTask{
		Window: win,
		Run: func(ws *Workspace, obs *grid.ObsMap) TaskOutcome {
			r := req
			r.Obs = obs
			var p grid.Path
			var ok bool
			lvl := hierLevelNone
			if mask != nil {
				p, ok, lvl = ws.hierSearch(g, r, mask, wide)
			} else {
				p, ok = ws.AStar(g, r)
			}
			if !ok {
				return TaskOutcome{Payload: lvl}
			}
			return TaskOutcome{OK: true, Paths: []grid.Path{p}, Payload: lvl}
		},
	}
}
