package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// Edge is one connection request for the negotiation router: route from any
// source cell to any target cell.
type Edge struct {
	ID      int
	Sources []geom.Pt
	Targets []geom.Pt
}

// NegotiateParams are the tuning constants of Algorithm 1 and Eq. 5. The
// paper sets BaseHist (bg) = 1.0, Alpha = 0.1, Gamma = 10.
type NegotiateParams struct {
	BaseHist float64
	Alpha    float64
	Gamma    int
	// Workers sets the pool size for routing each round's edges through the
	// spatial-dependency scheduler (RunScheduled). 0 or 1 routes the round
	// sequentially; any value produces byte-identical results — the scheduler
	// validates every speculative search against the exact sequential
	// obstacle state before committing it.
	Workers int
}

// DefaultNegotiateParams mirrors the paper's settings.
func DefaultNegotiateParams() NegotiateParams {
	return NegotiateParams{BaseHist: 1.0, Alpha: 0.1, Gamma: 10}
}

// Negotiate routes all edges on the shared obstacle map using the
// negotiation strategy of Algorithm 1: edges are routed sequentially with
// routed paths acting as obstacles; when any edge fails, the history cost of
// every cell on the routed paths is raised per Eq. 5 and the whole iteration
// restarts, up to Gamma rounds. On success it returns the path per edge ID.
// On failure it returns ok=false along with the paths of the last
// (incomplete) iteration for diagnostic use; obs is left unmodified either
// way.
//
// This wrapper draws a pooled Workspace; callers in routing inner loops
// should hold their own Workspace and use its Negotiate method directly.
func Negotiate(obs *grid.ObsMap, edges []Edge, params NegotiateParams) (map[int]grid.Path, bool) {
	w := AcquireWorkspace(obs.Grid())
	paths, ok := w.Negotiate(obs, edges, params)
	ReleaseWorkspace(w)
	return paths, ok
}

// Negotiate is the workspace-backed form of the package-level Negotiate:
// the same Algorithm 1, with every inner A* reusing w's search arrays and
// one scratch obstacle map shared across iterations.
func (w *Workspace) Negotiate(obs *grid.ObsMap, edges []Edge, params NegotiateParams) (map[int]grid.Path, bool) {
	g := obs.Grid()
	//pacor:allow hotalloc once per negotiation run, amortized over gamma iterations of inner searches
	hist := make([]float64, g.Cells()) // Step 1: initialize history cost
	//pacor:allow hotalloc result map returned to the caller, sized up front
	paths := make(map[int]grid.Path, len(edges))
	var work *grid.ObsMap

	for r := 0; r < params.Gamma; r++ { // Steps 5-16
		// Step 2: ObsMap with this iteration's paths. The scratch map is
		// allocated once and rewound per iteration.
		if work == nil {
			work = obs.Clone()
		} else {
			work.CopyFrom(obs)
		}
		// Every edge's terminals are blocked for the other edges: a channel
		// may not run through another net's valve or merge point. An edge's
		// own search is unaffected (sources seed unconditionally, targets
		// are obstacle-exempt), so edges of the same Steiner tree still
		// connect at their shared merging nodes.
		for _, e := range edges {
			for _, c := range e.Sources {
				work.Set(c, true)
			}
			for _, c := range e.Targets {
				work.Set(c, true)
			}
		}
		for k := range paths {
			delete(paths, k)
		}
		done := true
		if params.Workers > 1 && len(edges) > 1 {
			done = negotiateRound(g, work, edges, hist, paths, params.Workers)
		} else {
			for _, e := range edges { // Steps 7-13
				p, ok := w.AStar(g, Request{
					Sources: e.Sources,
					Targets: e.Targets,
					Obs:     work,
					Hist:    hist,
				})
				if ok {
					paths[e.ID] = p
					work.SetPath(p, true) // Step 11: routed path becomes obstacle
				} else {
					done = false
				}
			}
		}
		if done {
			return paths, true
		}
		// Steps 17-19: bump history along routed paths, then rip them up.
		// (Map iteration order varies, but the bump composes the same affine
		// update per visit regardless of visit order, so hist is
		// order-independent.)
		for _, p := range paths {
			for _, c := range p {
				i := g.Index(c)
				hist[i] = params.BaseHist + params.Alpha*hist[i]
			}
		}
	}
	return paths, false
}

// negotiateRound routes one round's edges, in slice order, through the
// spatial-dependency scheduler: routed paths commit onto work in edge order,
// exactly as the sequential Steps 7-13 loop does. It reports whether every
// edge routed.
//
//pacor:hot
//pacor:allow hotalloc per-round task construction, amortized over the round's searches
func negotiateRound(g grid.Grid, work *grid.ObsMap, edges []Edge, hist []float64, paths map[int]grid.Path, workers int) bool {
	tasks := make([]ScheduledTask, len(edges))
	for i := range edges {
		e := edges[i]
		tasks[i] = ScheduledTask{
			Window: SearchWindow(g, e.Sources, e.Targets),
			Run: func(ws *Workspace, obs *grid.ObsMap) TaskOutcome {
				p, ok := ws.AStar(g, Request{
					Sources: e.Sources,
					Targets: e.Targets,
					Obs:     obs,
					Hist:    hist,
				})
				if !ok {
					return TaskOutcome{}
				}
				return TaskOutcome{OK: true, Paths: []grid.Path{p}}
			},
		}
	}
	done := true
	RunScheduled(work, tasks, workers, func(i int, out TaskOutcome) {
		if out.OK {
			paths[edges[i].ID] = out.Paths[0]
		} else {
			done = false
		}
	})
	return done
}
