package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// Edge is one connection request for the negotiation router: route from any
// source cell to any target cell.
type Edge struct {
	ID      int
	Sources []geom.Pt
	Targets []geom.Pt
}

// NegotiateParams are the tuning constants of Algorithm 1 and Eq. 5. The
// paper sets BaseHist (bg) = 1.0, Alpha = 0.1, Gamma = 10.
type NegotiateParams struct {
	BaseHist float64
	Alpha    float64
	Gamma    int
	// Workers sets the pool size for routing each round's edges through the
	// spatial-dependency scheduler (RunScheduled). 0 or 1 routes the round
	// sequentially; any value produces byte-identical results — the scheduler
	// validates every speculative search against the exact sequential
	// obstacle state before committing it.
	Workers int
	// NoCache disables the incremental search-cone cache (cache.go). The
	// cache is a pure wall-clock optimization: on or off, every round's
	// routed paths are byte-identical.
	NoCache bool
	// CheckCache is the exact-validation mode: every cache hit re-runs its
	// search anyway and panics if the replayed result diverges. Strictly
	// slower than NoCache; for CI gates and debugging.
	CheckCache bool
	// Queue selects the open-list implementation of every inner search; see
	// QueueMode. Representability is asserted per round: a round whose
	// history domain carries a HistQuant certificate may run on the bucket
	// queue, any other round runs on the heap regardless of the setting
	// (e.g. the paper's Alpha = 0.1 after two bumps). Like Workers and the
	// cache knobs, the choice never changes routed output.
	Queue QueueMode
	// Hier configures the hierarchical two-stage router (hier.go): a tile-
	// level min-cost-flow global stage assigns each edge a corridor, and the
	// detailed searches run masked to it, escalating to the flat search
	// whenever the mask clips. For negotiation the hierarchy is exact — like
	// Workers, the cache, and Queue, it never changes routed output, only
	// wall-clock. The zero value is auto: on only above the cell threshold.
	Hier HierParams
}

// DefaultNegotiateParams mirrors the paper's settings.
func DefaultNegotiateParams() NegotiateParams {
	return NegotiateParams{BaseHist: 1.0, Alpha: 0.1, Gamma: 10}
}

// Negotiate routes all edges on the shared obstacle map using the
// negotiation strategy of Algorithm 1: edges are routed sequentially with
// routed paths acting as obstacles; when any edge fails, the history cost of
// every cell on the routed paths is raised per Eq. 5 and the whole iteration
// restarts, up to Gamma rounds. On success it returns the path per edge ID.
// On failure it returns ok=false along with the paths of the last
// (incomplete) iteration for diagnostic use; obs is left unmodified either
// way.
//
// This wrapper draws a pooled Workspace; callers in routing inner loops
// should hold their own Workspace and use its Negotiate method directly.
func Negotiate(obs *grid.ObsMap, edges []Edge, params NegotiateParams) (map[int]grid.Path, bool) {
	w := AcquireWorkspace(obs.Grid())
	paths, ok := w.Negotiate(obs, edges, params)
	ReleaseWorkspace(w)
	return paths, ok
}

// Negotiate is the workspace-backed form of the package-level Negotiate:
// the same Algorithm 1, with every inner A* reusing w's search arrays and
// one scratch obstacle map shared across iterations.
func (w *Workspace) Negotiate(obs *grid.ObsMap, edges []Edge, params NegotiateParams) (map[int]grid.Path, bool) {
	return w.NegotiateTracked(obs, edges, params, nil)
}

// NegotiateTracked is Negotiate with run statistics: when stats is non-nil,
// round, search, and cache counters accumulate into it, and on failure the
// final round's unrouted edge IDs land in stats.FailedIDs (edge order).
//
// Rounds past the first run through the incremental cache (unless
// params.NoCache): each edge's search records its visit cone, and an edge
// whose cone contains no cell dirtied since — no history bump, no obstacle
// delta from an earlier edge's changed outcome — replays its previous
// result without searching. Round 0 runs untracked so the common
// converges-in-one-round case pays no tracking overhead. See cache.go for
// the invalidation argument.
func (w *Workspace) NegotiateTracked(obs *grid.ObsMap, edges []Edge, params NegotiateParams, stats *NegotiateStats) (map[int]grid.Path, bool) {
	g := obs.Grid()
	//pacor:allow hotalloc once per negotiation run, amortized over gamma iterations of inner searches
	hist := make([]float64, g.Cells()) // Step 1: initialize history cost
	//pacor:allow hotalloc result map returned to the caller, sized up front
	paths := make(map[int]grid.Path, len(edges))
	useCache := !params.NoCache && params.Gamma > 1 && len(edges) > 0
	if useCache {
		w.negReset(g, len(edges))
	}

	// Step 2's per-round ObsMap: one workspace-resident map, rebuilt per
	// round by journal rewind (O(round's committed paths)) instead of a full
	// O(cells) copy. Terminals are blocked once, below the rewind mark: a
	// channel may not run through another net's valve or merge point, while
	// an edge's own search is unaffected (sources seed unconditionally,
	// targets are obstacle-exempt), so edges of the same Steiner tree still
	// connect at their shared merging nodes.
	work := w.negWorkFor(g)
	work.CopyFrom(obs)
	work.StartJournal(w.negJournal)
	for _, e := range edges {
		for _, c := range e.Sources {
			work.Set(c, true)
		}
		for _, c := range e.Targets {
			work.Set(c, true)
		}
	}
	mark := work.JournalLen()
	w.negFailed = w.negFailed[:0]

	// Hierarchical global stage: coarsen the round-start work map (terminals
	// included as obstacles) once per run; corridors are reassigned per round
	// against the round's history. The run flag is always (re)set so a pooled
	// workspace never carries a stale hierarchy into a flat run.
	hierOn := params.Hier.On(g.Cells()) && len(edges) > 0
	w.hier.run = false
	if hierOn {
		w.hierPrepare(work, len(edges), params.Hier, stats)
	}

	// Queue-mode resolution happens once against the owning workspace so the
	// scheduler's worker workspaces see a fully resolved mode; the per-round
	// quantization certificate (HistQuant) is refreshed before each round —
	// round r's history values are the Eq.-5 iterates h_0..h_r, and once an
	// iterate stops being dyadic the run stays on the heap.
	w.negQueue = w.effQueue(params.Queue)
	quantOK := true

	routed := false
	for r := 0; r < params.Gamma; r++ { // Steps 5-16
		if r > 0 {
			work.RewindJournal(mark)
		}
		if hierOn {
			w.hierAssign(edges, hist, r, stats)
		}
		w.negScale, w.negMaxStep = 0, 0
		if quantOK && w.negQueue != QueueHeap {
			w.negScale, w.negMaxStep, quantOK = HistQuant(params.BaseHist, params.Alpha, r)
		}
		for k := range paths {
			delete(paths, k)
		}
		w.negFailed = w.negFailed[:0]
		if stats != nil {
			stats.Rounds++
		}
		caching := useCache && r > 0
		var done bool
		if params.Workers > 1 && len(edges) > 1 {
			done = w.negRoundParallel(g, work, edges, hist, paths, params, caching, stats)
		} else {
			done = w.negRoundSeq(g, work, edges, hist, paths, params, caching, stats)
		}
		if done {
			routed = true
			break
		}
		// Steps 17-19: bump history along routed paths, then rip them up.
		// Bumped cells go dirty under a fresh clock tick — any cached cone
		// containing one saw a changed history value. (Map iteration order
		// varies, but the bump composes the same affine update per visit
		// regardless of visit order, so hist — and the dirty marks — are
		// order-independent.)
		if useCache {
			w.negClock++
		}
		for _, p := range paths {
			for _, c := range p {
				i := g.Index(c)
				hist[i] = params.BaseHist + params.Alpha*hist[i]
				if useCache {
					w.negDirty[i] = w.negClock
				}
			}
		}
	}
	w.negJournal = work.StopJournal()
	if stats != nil && !routed {
		stats.FailedIDs = append(stats.FailedIDs, w.negFailed...) //pacor:allow hotalloc failure-path diagnostic, grows the caller's stats slice once
	}
	return paths, routed
}

// negReq builds the round's search request for one edge: the same sources,
// targets, work map, and history every call site (fresh search, cache
// validation, scheduler task) must use, with the resolved queue mode and the
// round's quantization certificate attached.
func (w *Workspace) negReq(e *Edge, work *grid.ObsMap, hist []float64) Request {
	return Request{
		Sources: e.Sources, Targets: e.Targets, Obs: work, Hist: hist,
		Queue: w.negQueue, HistScale: w.negScale, HistMax: w.negMaxStep,
	}
}

// negRoundSeq routes one round's edges sequentially (Steps 7-13), replaying
// valid cache entries when caching is on. It reports whether every edge
// routed.
func (w *Workspace) negRoundSeq(g grid.Grid, work *grid.ObsMap, edges []Edge, hist []float64,
	paths map[int]grid.Path, params NegotiateParams, caching bool, stats *NegotiateStats) bool {
	done := true
	for ei := range edges {
		e := &edges[ei]
		req := w.negReq(e, work, hist)
		var p grid.Path
		var ok bool
		var lvl hierLevel
		switch {
		case !caching:
			p, ok, lvl = w.negSearch(g, req, ei)
			if stats != nil {
				stats.Searches++
				stats.Hier.count(lvl)
			}
		case w.negEntryValid(&w.negEntries[ei]):
			ent := &w.negEntries[ei]
			if params.CheckCache {
				w.negCheck(g, req, e.ID, ent)
			}
			if stats != nil {
				stats.CacheHits++
			}
			p, ok = ent.path, ent.ok
		default:
			ent := &w.negEntries[ei]
			if stats != nil {
				stats.Searches++
				stats.CacheMisses++
				if ent.recorded {
					stats.Invalidated++
				}
			}
			// The whole ladder runs tracked: its recorded cone is the union of
			// every rung's visits — a superset of the flat search's cone, so
			// cache invalidation stays sound (it can only over-trigger).
			w.StartVisitTracking()
			p, ok, lvl = w.negSearch(g, req, ei)
			w.StopVisitTracking()
			if stats != nil {
				stats.Hier.count(lvl)
			}
			w.negVisits = w.CopyVisits(w.negVisits[:0])
			w.negRecord(g, ent, p, ok, w.negVisits)
		}
		if ok {
			paths[e.ID] = p
			work.SetPath(p, true) // Step 11: routed path becomes obstacle
		} else {
			done = false
			w.negFailed = append(w.negFailed, e.ID) //pacor:allow hotalloc amortized failed-ID growth, buffer reused across rounds
		}
	}
	return done
}

// negRoundParallel routes one round's edges, in slice order, through the
// spatial-dependency scheduler: routed paths commit onto work in edge order,
// exactly as the sequential Steps 7-13 loop does. With caching on, cache
// hits replay inline and skip task dispatch entirely; only maximal blocks of
// consecutive cache misses go through the scheduler. An edge's entry is
// (re)examined only after everything before it has committed, because a
// block's changed outcomes can dirty a later edge's cone. It reports whether
// every edge routed.
//
//pacor:hot
//pacor:allow hotalloc per-round task construction, amortized over the round's searches
func (w *Workspace) negRoundParallel(g grid.Grid, work *grid.ObsMap, edges []Edge, hist []float64,
	paths map[int]grid.Path, params NegotiateParams, caching bool, stats *NegotiateStats) bool {
	done := true
	if !caching {
		tasks := make([]ScheduledTask, len(edges))
		for i := range edges {
			tasks[i] = w.negTask(g, w.negReq(&edges[i], work, hist), i)
		}
		RunScheduled(work, tasks, params.Workers, func(i int, out TaskOutcome) {
			if stats != nil {
				stats.Searches++
				if lvl, isHier := out.Payload.(hierLevel); isHier {
					stats.Hier.count(lvl)
				}
			}
			if out.OK {
				paths[edges[i].ID] = out.Paths[0]
			} else {
				done = false
				w.negFailed = append(w.negFailed, edges[i].ID)
			}
		})
		return done
	}
	ei := 0
	for ei < len(edges) {
		if ent := &w.negEntries[ei]; w.negEntryValid(ent) {
			e := &edges[ei]
			if params.CheckCache {
				w.negCheck(g, w.negReq(e, work, hist), e.ID, ent)
			}
			if stats != nil {
				stats.CacheHits++
			}
			if ent.ok {
				paths[e.ID] = ent.path
				work.SetPath(ent.path, true)
			} else {
				done = false
				w.negFailed = append(w.negFailed, e.ID)
			}
			ei++
			continue
		}
		// Maximal block of consecutive misses. Entries already invalid stay
		// invalid (the dirty clock only grows), so batching them is sound;
		// the first currently-valid entry ends the block and is re-checked
		// once the block's outcomes — and their dirty marks — have landed.
		m := ei + 1
		for m < len(edges) && !w.negEntryValid(&w.negEntries[m]) {
			m++
		}
		base := ei
		block := edges[ei:m]
		tasks := make([]ScheduledTask, len(block))
		for i := range block {
			tasks[i] = w.negTask(g, w.negReq(&block[i], work, hist), base+i)
		}
		RunScheduledVisits(work, tasks, params.Workers, func(i int, out TaskOutcome, visits []uint64) {
			ent := &w.negEntries[base+i]
			if stats != nil {
				stats.Searches++
				stats.CacheMisses++
				if ent.recorded {
					stats.Invalidated++
				}
				if lvl, isHier := out.Payload.(hierLevel); isHier {
					stats.Hier.count(lvl)
				}
			}
			var p grid.Path
			if out.OK {
				p = out.Paths[0]
			}
			w.negRecord(g, ent, p, out.OK, visits)
			if out.OK {
				paths[block[i].ID] = p
			} else {
				done = false
				w.negFailed = append(w.negFailed, block[i].ID)
			}
		})
		ei = m
	}
	return done
}

// negTask wraps one edge's search as a scheduler task. req carries the
// edge's fully resolved request (negReq); the scheduler substitutes each
// run's private obstacle snapshot for req.Obs. When the hierarchy gave edge
// ei a corridor, the task runs the escalation ladder (exact — see hier.go)
// on the worker workspace and reports the accepted rung through Payload; the
// window covers the corridor so the scheduler's overlap heuristic sees where
// the masked search actually goes. The scheduler validates results by visit
// set, so a ladder that escalates past its window is still committed exactly.
//
//pacor:allow hotalloc one task record and one single-path result slice per edge, amortized over the edge's search
func (w *Workspace) negTask(g grid.Grid, req Request, ei int) ScheduledTask {
	var mask, wide *TileMask
	win := SearchWindow(g, req.Sources, req.Targets)
	if w.hier.run && w.hier.has[ei] {
		mask, wide = &w.hier.masks[ei], &w.hier.wide[ei]
		win = win.Union(w.hier.win[ei])
	}
	return ScheduledTask{
		Window: win,
		Run: func(ws *Workspace, obs *grid.ObsMap) TaskOutcome {
			r := req
			r.Obs = obs
			var p grid.Path
			var ok bool
			lvl := hierLevelNone
			if mask != nil {
				p, ok, lvl = ws.hierSearch(g, r, mask, wide)
			} else {
				p, ok = ws.AStar(g, r)
			}
			if !ok {
				return TaskOutcome{Payload: lvl}
			}
			return TaskOutcome{OK: true, Paths: []grid.Path{p}, Payload: lvl}
		},
	}
}
