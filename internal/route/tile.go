package route

import (
	"math/bits"

	"repro/internal/geom"
	"repro/internal/grid"
)

// This file implements the tile coarsening behind the hierarchical two-stage
// router (hier.go): the grid is partitioned into T×T tiles (T a power of
// two, so cell→tile is two shifts and a multiply), each tile knows how many
// of its cells are free, and each tile-to-tile adjacency knows how many free
// cell pairs straddle the shared edge — the crossing capacity the global
// MCMF stage budgets corridors against. TileMask is the detailed stage's
// companion: a per-tile bit set that restricts an A* request to its corridor
// (Request.Mask).

// Tiling is the T×T coarsening of one obstacle map.
type Tiling struct {
	g      grid.Grid
	size   int  // tile side length (power of two)
	shift  uint // log2(size)
	tw, th int  // tile-grid dimensions (ceil division)

	free     []int32 // free cells per tile
	capRight []int32 // free cell pairs across tile t's right edge (t -> t+1)
	capDown  []int32 // free cell pairs across tile t's bottom edge (t -> t+tw)
}

// tilePow2 rounds sz up to a power of two (minimum 2).
func tilePow2(sz int) int {
	if sz < 2 {
		sz = 2
	}
	if sz&(sz-1) != 0 {
		sz = 1 << bits.Len(uint(sz))
	}
	return sz
}

// NewTiling coarsens obs into tiles of the given side length (rounded up to
// a power of two).
func NewTiling(obs *grid.ObsMap, tileSize int) *Tiling {
	t := &Tiling{}
	t.Rebuild(obs, tileSize)
	return t
}

// Rebuild recomputes the tiling for obs, reusing the per-tile arrays when
// the tile-grid shape is unchanged.
//
//pacor:hot
//pacor:allow hotalloc per-tile arrays (re)allocated only when the tile-grid shape changes; Rebuild reuses them across negotiation runs
func (t *Tiling) Rebuild(obs *grid.ObsMap, tileSize int) {
	g := obs.Grid()
	size := tilePow2(tileSize)
	t.g = g
	t.size = size
	t.shift = uint(bits.TrailingZeros(uint(size)))
	t.tw = (g.W + size - 1) / size
	t.th = (g.H + size - 1) / size
	n := t.tw * t.th
	if len(t.free) != n {
		t.free = make([]int32, n)
		t.capRight = make([]int32, n)
		t.capDown = make([]int32, n)
	} else {
		clear(t.free)
		clear(t.capRight)
		clear(t.capDown)
	}
	// One pass over the cells: count free cells per tile and free cell pairs
	// across tile edges (a pair is usable by a channel only when both cells
	// are free).
	for y := 0; y < g.H; y++ {
		ty := y >> t.shift
		for x := 0; x < g.W; x++ {
			p := geom.Pt{X: x, Y: y}
			if obs.Blocked(p) {
				continue
			}
			ti := ty*t.tw + x>>t.shift
			t.free[ti]++
			if x+1 < g.W && (x+1)&(size-1) == 0 && !obs.Blocked(geom.Pt{X: x + 1, Y: y}) {
				t.capRight[ti]++
			}
			if y+1 < g.H && (y+1)&(size-1) == 0 && !obs.Blocked(geom.Pt{X: x, Y: y + 1}) {
				t.capDown[ti]++
			}
		}
	}
}

// Size returns the tile side length.
func (t *Tiling) Size() int { return t.size }

// Tiles returns the number of tiles.
func (t *Tiling) Tiles() int { return t.tw * t.th }

// TileOf returns the tile index of cell p.
func (t *Tiling) TileOf(p geom.Pt) int {
	return (p.Y>>t.shift)*t.tw + p.X>>t.shift
}

// TileOfIndex returns the tile index of the cell with grid index i.
func (t *Tiling) TileOfIndex(i int) int {
	return ((i/t.g.W)>>t.shift)*t.tw + (i%t.g.W)>>t.shift
}

// FreeCells returns the number of unblocked cells in tile ti.
func (t *Tiling) FreeCells(ti int) int { return int(t.free[ti]) }

// TileRect returns the cell rectangle of tile ti, clipped to the grid.
func (t *Tiling) TileRect(ti int) geom.Rect {
	tx, ty := ti%t.tw, ti/t.tw
	r := geom.Rect{
		MinX: tx << t.shift, MinY: ty << t.shift,
		MaxX: (tx+1)<<t.shift - 1, MaxY: (ty+1)<<t.shift - 1,
	}
	return r.Intersect(t.g.Bounds())
}

// ForEachAdjacency calls fn for every tile pair sharing an edge with a
// positive crossing capacity (free cell pairs across the edge), in
// deterministic tile order. Adjacency is undirected; callers add arcs in
// both directions.
func (t *Tiling) ForEachAdjacency(fn func(u, v, capacity int)) {
	for ti := 0; ti < t.tw*t.th; ti++ {
		if c := int(t.capRight[ti]); c > 0 {
			fn(ti, ti+1, c)
		}
		if c := int(t.capDown[ti]); c > 0 {
			fn(ti, ti+t.tw, c)
		}
	}
}

// CorridorRect returns the cell bounding box of the corridor tiles expanded
// by halo tiles on every side, clipped to the grid. An empty corridor gives
// an empty rect.
func (t *Tiling) CorridorRect(tiles []int32, halo int) geom.Rect {
	bb := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	for _, ti := range tiles {
		bb = bb.Union(t.TileRect(int(ti)))
	}
	if bb.Empty() {
		return bb
	}
	return bb.Expand(halo << t.shift).Intersect(t.g.Bounds())
}

// TileMask restricts a search to a set of tiles (Request.Mask): Contains is
// a shift, a multiply, and one bit test per probed cell.
type TileMask struct {
	shift uint
	tw    int
	bits  []uint64
}

// Contains reports whether in-grid cell p lies in an admitted tile.
func (m *TileMask) Contains(p geom.Pt) bool {
	ti := (p.Y>>m.shift)*m.tw + p.X>>m.shift
	return m.bits[ti>>6]&(1<<(uint(ti)&63)) != 0
}

// maskWords returns the bitmap length for one mask over this tiling.
func (t *Tiling) maskWords() int { return (t.tw*t.th + 63) / 64 }

// fillMask populates a mask over bits (len maskWords, pre-cleared) with the
// corridor tiles dilated by halo tiles in every direction (Chebyshev, so
// diagonal neighbors are included — a detailed path may hug a tile corner).
//
//pacor:hot
func (t *Tiling) fillMask(m *TileMask, bits []uint64, tiles []int32, halo int) {
	m.shift = t.shift
	m.tw = t.tw
	m.bits = bits
	for _, ti := range tiles {
		tx, ty := int(ti)%t.tw, int(ti)/t.tw
		for y := ty - halo; y <= ty+halo; y++ {
			if y < 0 || y >= t.th {
				continue
			}
			for x := tx - halo; x <= tx+halo; x++ {
				if x < 0 || x >= t.tw {
					continue
				}
				j := y*t.tw + x
				bits[j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
}

// BuildMask allocates a fresh mask admitting the corridor tiles dilated by
// halo tiles (the escape stage builds a handful per run; the negotiation
// stage uses workspace-resident slabs via fillMask instead).
//
//pacor:hot
//pacor:allow hotalloc one mask per corridor on the escape control path, not per search step
func (t *Tiling) BuildMask(tiles []int32, halo int) *TileMask {
	m := &TileMask{}
	t.fillMask(m, make([]uint64, t.maskWords()), tiles, halo)
	return m
}
