package route

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// scatterObs builds a grid with deterministic random obstacles, keeping the
// corners free.
func scatterObs(w, h, blocks int, seed int64) (grid.Grid, *grid.ObsMap) {
	g := grid.New(w, h)
	obs := grid.NewObsMap(g)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < blocks; i++ {
		obs.Set(geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}, true)
	}
	obs.Set(geom.Pt{X: 0, Y: 0}, false)
	obs.Set(geom.Pt{X: w - 1, Y: h - 1}, false)
	return g, obs
}

// TestWorkspaceMatchesWrapper pins the workspace methods to the pooled
// wrappers: same paths, search for search, including reuse across many
// searches on one workspace.
func TestWorkspaceMatchesWrapper(t *testing.T) {
	g, obs := scatterObs(48, 48, 400, 3)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		src := geom.Pt{X: rng.Intn(48), Y: rng.Intn(48)}
		dst := geom.Pt{X: rng.Intn(48), Y: rng.Intn(48)}
		req := Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}
		p1, ok1 := AStar(g, req)
		p2, ok2 := ws.AStar(g, req)
		if ok1 != ok2 {
			t.Fatalf("search %d (%v->%v): ok %v vs %v", i, src, dst, ok1, ok2)
		}
		if ok1 && p1.Len() != p2.Len() {
			t.Fatalf("search %d (%v->%v): len %d vs %d", i, src, dst, p1.Len(), p2.Len())
		}
	}
}

// TestWorkspaceBoundedReuse runs many bounded searches on one workspace and
// checks each result against a fresh workspace.
func TestWorkspaceBoundedReuse(t *testing.T) {
	g, obs := scatterObs(32, 32, 120, 9)
	ws := NewWorkspace(g)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		src := geom.Pt{X: rng.Intn(32), Y: rng.Intn(32)}
		dst := geom.Pt{X: rng.Intn(32), Y: rng.Intn(32)}
		d := geom.Dist(src, dst)
		minL, maxL := d+4, d+6
		req := Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}
		p1, ok1 := NewWorkspace(g).BoundedAStar(g, req, minL, maxL)
		p2, ok2 := ws.BoundedAStar(g, req, minL, maxL)
		if ok1 != ok2 {
			t.Fatalf("search %d (%v->%v): ok %v vs %v", i, src, dst, ok1, ok2)
		}
		if !ok2 {
			continue
		}
		if !p2.Valid() || p2.Len() < minL || p2.Len() > maxL {
			t.Fatalf("search %d: invalid bounded path len %d not in [%d,%d]", i, p2.Len(), minL, maxL)
		}
		if p1.Len() != p2.Len() {
			t.Fatalf("search %d: len %d vs %d", i, p1.Len(), p2.Len())
		}
	}
}

// TestWorkspaceConcurrent runs many goroutines, each owning a workspace,
// over one shared read-only obstacle map, and checks every result against a
// sequentially computed reference. Run under -race this asserts the
// one-workspace-per-goroutine ownership rule makes shared-grid searches
// race-free.
func TestWorkspaceConcurrent(t *testing.T) {
	g, obs := scatterObs(64, 64, 600, 21)
	type query struct {
		src, dst geom.Pt
		bounded  bool
	}
	rng := rand.New(rand.NewSource(31))
	queries := make([]query, 256)
	for i := range queries {
		queries[i] = query{
			src:     geom.Pt{X: rng.Intn(64), Y: rng.Intn(64)},
			dst:     geom.Pt{X: rng.Intn(64), Y: rng.Intn(64)},
			bounded: i%4 == 0,
		}
	}
	search := func(ws *Workspace, q query) (int, bool) {
		req := Request{Sources: []geom.Pt{q.src}, Targets: []geom.Pt{q.dst}, Obs: obs}
		var p grid.Path
		var ok bool
		if q.bounded {
			d := geom.Dist(q.src, q.dst)
			p, ok = ws.BoundedAStar(g, req, d+2, d+4)
		} else {
			p, ok = ws.AStar(g, req)
		}
		return p.Len(), ok
	}
	refWS := NewWorkspace(g)
	type answer struct {
		len int
		ok  bool
	}
	ref := make([]answer, len(queries))
	for i, q := range queries {
		l, ok := search(refWS, q)
		ref[i] = answer{l, ok}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := NewWorkspace(g) // each goroutine owns its workspace
			for i := w; i < len(queries); i += goroutines {
				l, ok := search(ws, queries[i])
				if l != ref[i].len || ok != ref[i].ok {
					t.Errorf("goroutine %d query %d: got (%d,%v), want (%d,%v)",
						w, i, l, ok, ref[i].len, ref[i].ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestWorkspaceGenerationWrap forces the generation counter across its
// wrap-around and checks searches stay correct (stale stamps must not leak
// into the new epoch).
func TestWorkspaceGenerationWrap(t *testing.T) {
	g, obs := scatterObs(16, 16, 40, 5)
	ws := NewWorkspace(g)
	req := Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 15, Y: 15}},
		Obs:     obs,
	}
	want, wantOK := ws.AStar(g, req)
	ws.gen = math.MaxInt32 - 2
	for i := 0; i < 6; i++ { // crosses MaxInt32 and the reset to 1
		got, ok := ws.AStar(g, req)
		if ok != wantOK || got.Len() != want.Len() {
			t.Fatalf("search %d at gen %d: got (%d,%v), want (%d,%v)",
				i, ws.gen, got.Len(), ok, want.Len(), wantOK)
		}
	}
	if ws.gen >= math.MaxInt32-2 || ws.gen <= 0 {
		t.Fatalf("generation did not wrap cleanly: %d", ws.gen)
	}
}

// TestWorkspaceResize checks that one workspace serves grids of different
// sizes back to back.
func TestWorkspaceResize(t *testing.T) {
	ws := &Workspace{}
	for _, wh := range [][2]int{{8, 8}, {32, 16}, {8, 8}, {64, 64}} {
		g := grid.New(wh[0], wh[1])
		obs := grid.NewObsMap(g)
		p, ok := ws.AStar(g, Request{
			Sources: []geom.Pt{{X: 0, Y: 0}},
			Targets: []geom.Pt{{X: wh[0] - 1, Y: wh[1] - 1}},
			Obs:     obs,
		})
		if !ok || p.Len() != wh[0]-1+wh[1]-1 {
			t.Fatalf("%dx%d: len %d ok %v, want shortest %d", wh[0], wh[1], p.Len(), ok, wh[0]+wh[1]-2)
		}
	}
}
