package route

import (
	"math"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Workspace holds the per-cell search state of the grid routers so that
// repeated searches reuse one set of O(W·H) arrays instead of allocating
// them per call. Invalidation uses a generation stamp: every search bumps
// gen, and a cell's state (gCost/parent/closed for A*, maxSeen for the
// bounded search, target membership for both) is valid only when its stamp
// equals the current generation — no re-zeroing between searches.
//
// Ownership rule: a Workspace is NOT safe for concurrent use. Each goroutine
// must own its workspace; the grid and obstacle map may be shared read-only.
// The paths returned by searches never alias workspace memory, so they stay
// valid across later searches on the same workspace.
type Workspace struct {
	cells int
	gen   int32
	// stamp guards the per-cell search state: state arrays hold garbage from
	// earlier generations unless stamp[i] == gen.
	stamp []int32
	// tstamp marks target cells: cell i is a target iff tstamp[i] == gen.
	tstamp []int32

	gCost  []float64 // A*: best path cost so far (valid under stamp)
	parent []int32   // A*: predecessor cell index, -1 at sources
	closed []bool    // A*: settled cells

	maxSeen []int32 // bounded search: longest path length seen per cell

	open  []openItem    // A* frontier, reused across searches
	bopen []boundedItem // bounded-search frontier
	arena []bnode       // bounded-search state arena

	nbuf []geom.Pt // neighbor scratch

	// Visit tracking (the speculative scheduler's validation input): while
	// track is set, every cell brought into a search generation also sets its
	// bit in vbits. Because both searches stamp a cell before querying its
	// obstacle status, the bitmap is a superset of every cell whose external
	// state (ObsMap / Hist) the searches observed.
	track bool
	vbits []uint64

	// Incremental negotiation cache state (cache.go / negotiate.go). It lives
	// on the pooled workspace so repeated Negotiate calls reuse the dirty
	// map, entry table, work map, and journal instead of allocating per call.
	negWork    *grid.ObsMap // journaled per-round work map
	negJournal []int32      // obstacle-delta journal buffer for negWork
	negDirty   []int32      // per-cell dirty clock stamps
	negClock   int32        // monotone dirty clock of the current run
	negEntries []negEntry   // per-edge-slot cached results
	negVisits  []uint64     // scratch for capturing a search's visit cone
	negFailed  []int        // edge IDs unrouted in the current round

	// Sequential-scheduler scratch (runSequential): the snapshot map and its
	// journal, reused across rounds so per-task state restoration costs
	// O(task changes) instead of O(cells).
	sobs       *grid.ObsMap
	seqJournal []int32
	seqVisits  []uint64

	// pooled is true while the workspace sits in its sync.Pool. It makes a
	// double ReleaseWorkspace a no-op instead of poisoning the pool: two
	// Put calls of the same pointer would let two goroutines Get the same
	// workspace and race on every search array.
	pooled bool
}

// scratchFor returns the workspace-resident scratch obstacle map for g,
// (re)allocated only when the grid changes.
//
//pacor:allow hotalloc allocated once per grid change, reused across scheduler rounds
func (w *Workspace) scratchFor(g grid.Grid) *grid.ObsMap {
	if w.sobs == nil || w.sobs.Grid() != g {
		w.sobs = grid.NewObsMap(g)
	}
	return w.sobs
}

// NewWorkspace returns a workspace sized for g. Searches on other grid
// sizes transparently resize it.
func NewWorkspace(g grid.Grid) *Workspace {
	w := &Workspace{}
	w.grow(g.Cells())
	return w
}

// grow (re)allocates the per-cell arrays for n cells and resets generations.
//
//pacor:allow hotalloc runs only when the grid size changes; steady-state searches never reach it
func (w *Workspace) grow(n int) {
	w.cells = n
	w.gen = 0
	w.stamp = make([]int32, n)
	w.tstamp = make([]int32, n)
	w.gCost = make([]float64, n)
	w.parent = make([]int32, n)
	w.closed = make([]bool, n)
	w.maxSeen = make([]int32, n)
	if w.vbits != nil || w.track {
		w.vbits = make([]uint64, (n+63)/64)
	}
}

// StartVisitTracking clears the visited-cell bitmap and begins recording
// every cell the following searches touch. Tracking spans searches: the
// bitmap accumulates until the next StartVisitTracking. The scheduler uses
// the recorded set to prove that a speculative search could not have seen a
// concurrently committed path.
//
//pacor:allow hotalloc bitmap (re)sized once per tracking session, reused across all searches in it
func (w *Workspace) StartVisitTracking() {
	if need := (w.cells + 63) / 64; len(w.vbits) < need {
		w.vbits = make([]uint64, need)
	}
	clear(w.vbits)
	w.track = true
}

// StopVisitTracking stops recording; the bitmap keeps its contents until the
// next StartVisitTracking.
func (w *Workspace) StopVisitTracking() { w.track = false }

// CopyVisits copies the visited-cell bitmap into dst (grown as needed) and
// returns it, so the caller can keep the record while the workspace moves on
// to other searches.
//
//pacor:allow hotalloc grows the caller's capture buffer once; steady-state copies reuse it
func (w *Workspace) CopyVisits(dst []uint64) []uint64 {
	if cap(dst) < len(w.vbits) {
		dst = make([]uint64, len(w.vbits))
	}
	dst = dst[:len(w.vbits)]
	copy(dst, w.vbits)
	return dst
}

// visit records cell i in the tracking bitmap when tracking is active.
func (w *Workspace) visit(i int) {
	if w.track {
		w.vbits[i>>6] |= 1 << (uint(i) & 63)
	}
}

// begin starts a new search generation and clears the frontier buffers.
func (w *Workspace) begin(g grid.Grid) {
	if n := g.Cells(); n != w.cells {
		w.grow(n)
	}
	if w.gen == math.MaxInt32 {
		// Stamp wrap-around: after 2^31-1 searches the next generation would
		// collide with stale stamps; clear them and restart.
		clear(w.stamp)
		clear(w.tstamp)
		w.gen = 0
	}
	w.gen++
	w.open = w.open[:0]
	w.bopen = w.bopen[:0]
	w.arena = w.arena[:0]
}

// touch brings cell i into the current generation with A* initial state and
// reports whether it was already current.
func (w *Workspace) touch(i int) bool {
	w.visit(i)
	if w.stamp[i] == w.gen {
		return true
	}
	w.stamp[i] = w.gen
	w.gCost[i] = -1
	w.parent[i] = -1
	w.closed[i] = false
	return false
}

// touchBounded brings cell i into the current generation with bounded-search
// initial state.
func (w *Workspace) touchBounded(i int) {
	w.visit(i)
	if w.stamp[i] != w.gen {
		w.stamp[i] = w.gen
		w.maxSeen[i] = -1
	}
}

// markTargets stamps the in-grid targets and returns their bounding box and
// count.
func (w *Workspace) markTargets(g grid.Grid, targets []geom.Pt) (geom.Rect, int) {
	tb := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	n := 0
	for _, t := range targets {
		if !g.In(t) {
			continue
		}
		i := g.Index(t)
		if w.tstamp[i] != w.gen {
			w.tstamp[i] = w.gen
			n++
		}
		tb = tb.Union(geom.RectOf(t, t))
	}
	return tb, n
}

// isTarget reports whether cell index i is a target of the current search.
func (w *Workspace) isTarget(i int) bool { return w.tstamp[i] == w.gen }

// targetH is the admissible heuristic shared by both searches: Manhattan
// distance from p to the target bounding box.
func targetH(tb geom.Rect, p geom.Pt) int {
	dx := 0
	if p.X < tb.MinX {
		dx = tb.MinX - p.X
	} else if p.X > tb.MaxX {
		dx = p.X - tb.MaxX
	}
	dy := 0
	if p.Y < tb.MinY {
		dy = tb.MinY - p.Y
	} else if p.Y > tb.MaxY {
		dy = p.Y - tb.MaxY
	}
	return dx + dy
}

// AStar is the workspace-backed form of the package-level AStar: identical
// search semantics, no per-call allocation beyond the returned path.
func (w *Workspace) AStar(g grid.Grid, req Request) (grid.Path, bool) {
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		return nil, false
	}
	w.begin(g)
	tb, nt := w.markTargets(g, req.Targets)
	if nt == 0 {
		return nil, false
	}
	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		if w.touch(i) && w.gCost[i] == 0 {
			continue
		}
		w.gCost[i] = 0
		pushOpen(&w.open, openItem{idx: int32(i), f: float64(targetH(tb, s))})
	}
	for len(w.open) > 0 {
		it := popOpen(&w.open)
		i := int(it.idx)
		if w.closed[i] {
			continue
		}
		w.closed[i] = true
		p := g.Pt(i)
		if w.isTarget(i) {
			return w.reconstruct(g, i), true
		}
		w.nbuf = g.Neighbors(p, w.nbuf)
		for _, q := range w.nbuf {
			j := g.Index(q)
			// Tracked searches must stamp a cell before reading its obstacle
			// state: the visit cone has to be a superset of every cell read,
			// or speculative/cache validation cannot reason about the search.
			// Untracked searches skip blocked and out-of-window cells before
			// touching them — same skip decision (the state read is identical
			// in both orders), but no stamp writes on cells that contribute
			// nothing to the search.
			if w.track {
				if w.touch(j) && w.closed[j] {
					continue
				}
			}
			if !req.inBounds(q) && !w.isTarget(j) {
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !w.isTarget(j) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
				continue
			}
			if !w.track {
				if w.touch(j) && w.closed[j] {
					continue
				}
			}
			step := 1.0
			if req.Hist != nil {
				step += req.Hist[j]
			}
			ng := w.gCost[i] + step
			if w.gCost[j] < 0 || ng < w.gCost[j] {
				w.gCost[j] = ng
				w.parent[j] = int32(i)
				pushOpen(&w.open, openItem{idx: int32(j), f: ng + float64(targetH(tb, q))})
			}
		}
	}
	return nil, false
}

// reconstruct walks the parent chain from end, allocating the result path
// exactly once (chain length is counted first, then filled backwards).
//
//pacor:allow hotalloc single exact-size allocation for the result path returned to the caller
func (w *Workspace) reconstruct(g grid.Grid, end int) grid.Path {
	n := 1
	for i := end; w.parent[i] >= 0; i = int(w.parent[i]) {
		n++
	}
	path := make(grid.Path, n)
	i := end
	for k := n - 1; k >= 0; k-- {
		path[k] = g.Pt(i)
		i = int(w.parent[i])
	}
	return path
}

// BoundedAStar is the workspace-backed form of the package-level
// BoundedAStar: identical search semantics, reusing the state arena and
// per-cell length table across calls.
func (w *Workspace) BoundedAStar(g grid.Grid, req Request, minLen, maxLen int) (grid.Path, bool) {
	if len(req.Sources) == 0 || len(req.Targets) == 0 || minLen > maxLen || maxLen < 0 {
		return nil, false
	}
	w.begin(g)
	tb, nt := w.markTargets(g, req.Targets)
	if nt == 0 {
		return nil, false
	}
	// Penalty: under-length states are ordered by decreasing G+H, so the
	// search stretches paths before settling; conforming states use plain
	// A* ordering.
	prio := func(gv, hv int) int {
		f := gv + hv
		if f < minLen {
			return 2*minLen - f
		}
		return f
	}

	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		w.touchBounded(i)
		w.arena = append(w.arena, bnode{cell: int32(i), g: 0, parent: -1}) //pacor:allow hotalloc amortized arena growth, capacity reused across searches
		pushBounded(&w.bopen, boundedItem{node: int32(len(w.arena) - 1), f: int32(prio(0, targetH(tb, s)))})
		if w.maxSeen[i] < 0 {
			w.maxSeen[i] = 0
		}
	}

	// Expansion budget: generous but bounded. A Bounds window shrinks it to
	// the window area so detour searches stay local and fast.
	cells := g.Cells()
	if req.Bounds != nil {
		if a := req.Bounds.Intersect(g.Bounds()).Area(); a < cells {
			cells = a
		}
	}
	budget := 16 * cells
	if budget < 65536 {
		budget = 65536
	}
	for len(w.bopen) > 0 && budget > 0 {
		budget--
		it := popBounded(&w.bopen)
		nd := w.arena[it.node]
		p := g.Pt(int(nd.cell))
		if w.isTarget(int(nd.cell)) && int(nd.g) >= minLen && int(nd.g) <= maxLen {
			// Cycles are possible in principle (the monotone-G rule only
			// requires strictly longer revisits), so validate at
			// reconstruction instead of paying an ancestor-chain walk on
			// every expansion.
			if path := reconstructArena(g, w.arena, int(it.node)); path.Valid() {
				return path, true
			}
			continue
		}
		w.nbuf = g.Neighbors(p, w.nbuf)
		for _, q := range w.nbuf {
			j := g.Index(q)
			ng := nd.g + 1
			if int(ng) > maxLen {
				continue
			}
			// Same stamp ordering as AStar: tracked searches stamp before the
			// obstacle read, untracked ones skip dead cells without stamping.
			if w.track {
				w.touchBounded(j)
			}
			if !req.inBounds(q) && !w.isTarget(j) {
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !w.isTarget(j) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
				continue
			}
			if !w.track {
				w.touchBounded(j)
			}
			// Monotone-G rule: only revisit a cell on a strictly longer path.
			if ng <= w.maxSeen[j] && !(w.isTarget(j) && int(ng) >= minLen) {
				continue
			}
			if ng > w.maxSeen[j] {
				w.maxSeen[j] = ng
			}
			w.arena = append(w.arena, bnode{cell: int32(j), g: ng, parent: it.node}) //pacor:allow hotalloc amortized arena growth, capacity reused across searches
			pushBounded(&w.bopen, boundedItem{node: int32(len(w.arena) - 1), f: int32(prio(int(ng), targetH(tb, q)))})
		}
	}
	return nil, false
}

// --- frontier heaps --------------------------------------------------------
//
// Manual binary heaps over the reusable slices. The sift algorithms mirror
// container/heap exactly (same comparisons, same swap order), so tie-breaking
// among equal-f items — and therefore every routed path — is identical to the
// previous container/heap implementation, while push/pop avoid the
// interface boxing allocation of heap.Push.

type openItem struct {
	idx int32
	f   float64
}

func pushOpen(h *[]openItem, it openItem) {
	s := append(*h, it) //pacor:allow hotalloc amortized heap growth, capacity reused across searches
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func popOpen(h *[]openItem) openItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].f < s[j1].f {
			j = j2
		}
		if !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

type boundedItem struct {
	node int32
	f    int32
}

func pushBounded(h *[]boundedItem, it boundedItem) {
	s := append(*h, it) //pacor:allow hotalloc amortized heap growth, capacity reused across searches
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func popBounded(h *[]boundedItem) boundedItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].f < s[j1].f {
			j = j2
		}
		if !(s[j].f < s[i].f) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}
