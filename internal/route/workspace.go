package route

import (
	"math"

	"repro/internal/geom"
	"repro/internal/grid"
)

// Workspace holds the per-cell search state of the grid routers so that
// repeated searches reuse one set of O(W·H) arrays instead of allocating
// them per call. Invalidation uses a generation stamp: every search bumps
// gen, and a cell's state (gCost/parent/closed for A*, maxSeen for the
// bounded search, target membership for both) is valid only when its stamp
// equals the current generation — no re-zeroing between searches.
//
// Ownership rule: a Workspace is NOT safe for concurrent use. Each goroutine
// must own its workspace; the grid and obstacle map may be shared read-only.
// The paths returned by searches never alias workspace memory, so they stay
// valid across later searches on the same workspace.
type Workspace struct {
	cells int
	gen   int32
	// stamp guards the per-cell search state: state arrays hold garbage from
	// earlier generations unless stamp[i] == gen.
	stamp []int32
	// tstamp marks target cells: cell i is a target iff tstamp[i] == gen.
	tstamp []int32

	gCost  []float64 // A*: best path cost so far (valid under stamp)
	parent []int32   // A*: predecessor cell index, -1 at sources
	closed []bool    // A*: settled cells

	maxSeen []int32 // bounded search: longest path length seen per cell

	open  []openItem    // A* frontier (heap mode), reused across searches
	seq   uint32        // push sequence within the current search (tie-break)
	bopen []boundedItem // bounded-search frontier (heap mode)
	arena []bnode       // bounded-search state arena
	bq    bucketQueue   // Dial ring shared by both searches (bucket mode)

	// Bidirectional-search state (bidir.go): backward-direction labels under
	// the same generation stamp, plus the two frontier rings. Allocated only
	// when BiAStar is used.
	rstamp   []int32
	rkey     []int32
	rparent  []int32
	rclosed  []bool
	bqf, bqb bucketQueue

	// queue is the default open-list implementation for requests that leave
	// Queue as QueueAuto; see SetQueueMode. lastQueue records the
	// implementation the most recent search actually ran on (after
	// certification and ring-feasibility fallbacks) for tests and tools.
	queue     QueueMode
	lastQueue QueueMode

	// clipped counts, per search, frontier cells rejected by the request's
	// Bounds or Mask. The hierarchical escalation ladder keys on it: a
	// masked search that never clipped took every expansion the unmasked
	// search would have taken — identical transcript, identical result — so
	// only clipped searches escalate to a wider mask.
	clipped int

	nbuf []geom.Pt // neighbor scratch

	// Visit tracking (the speculative scheduler's validation input): while
	// track is set, every cell brought into a search generation also sets its
	// bit in vbits. Because both searches stamp a cell before querying its
	// obstacle status, the bitmap is a superset of every cell whose external
	// state (ObsMap / Hist) the searches observed.
	track bool
	vbits []uint64

	// Incremental negotiation cache state (cache.go / negotiate.go). It lives
	// on the pooled workspace so repeated Negotiate calls reuse the dirty
	// map, entry table, work map, and journal instead of allocating per call.
	negWork    *grid.ObsMap // journaled per-round work map
	negJournal []int32      // obstacle-delta journal buffer for negWork
	negDirty   []int32      // per-cell dirty clock stamps
	negClock   int32        // monotone dirty clock of the current run
	negEntries []negEntry   // per-edge-slot cached results
	negVisits  []uint64     // scratch for capturing a search's visit cone
	negFailed  []int        // edge IDs unrouted in the current round
	negQueue   QueueMode    // resolved queue mode of the current run
	negScale   int64        // current round's HistQuant certificate (0 = none)
	negMaxStep int64

	// Cross-run seeding state (seed.go): the parent transcript being
	// replayed, the capture being recorded, the monotone cross-run dirty
	// bitmap, and the child→parent edge alignment. Live only during a run
	// (negSeedFinish clears the pointers so the pool never pins a seed).
	negSeedOn     bool             // params.Seed accepted for this run
	negCapOn      bool             // params.Capture active for this run
	negParentLive bool             // parent transcript still covers the current round
	negSeed       *NegotiationSeed // accepted seed (immutable, aliased)
	negCap        *NegotiationSeed // capture under construction
	negCross      []uint64         // cross-run dirty bitmap (monotone)
	negStart      []uint64         // round-start bitmap scratch for the diff
	negAlign      []int            // child edge index -> parent edge index or -1
	negParent     []seedSlot       // parent edges' current-round state
	negShadow     []seedSlot       // capture delta-encoding shadow table

	// Sequential-scheduler scratch (runSequential): the snapshot map and its
	// journal, reused across rounds so per-task state restoration costs
	// O(task changes) instead of O(cells).
	sobs       *grid.ObsMap
	seqJournal []int32
	seqVisits  []uint64

	// Hierarchical negotiation state (hier.go): the tile coarsening, the
	// tile corridor graph (rebuilt once per negotiation run, re-priced and
	// re-solved per round), and the per-edge corridor masks of the current
	// round. Workspace-resident so repeated runs reuse the arenas.
	hier hierState

	// pooled is true while the workspace sits in its sync.Pool. It makes a
	// double ReleaseWorkspace a no-op instead of poisoning the pool: two
	// Put calls of the same pointer would let two goroutines Get the same
	// workspace and race on every search array.
	pooled bool
}

// scratchFor returns the workspace-resident scratch obstacle map for g,
// (re)allocated only when the grid changes.
//
//pacor:allow hotalloc allocated once per grid change, reused across scheduler rounds
func (w *Workspace) scratchFor(g grid.Grid) *grid.ObsMap {
	if w.sobs == nil || w.sobs.Grid() != g {
		w.sobs = grid.NewObsMap(g)
	}
	return w.sobs
}

// NewWorkspace returns a workspace sized for g. Searches on other grid
// sizes transparently resize it.
func NewWorkspace(g grid.Grid) *Workspace {
	w := &Workspace{}
	w.grow(g.Cells())
	return w
}

// grow (re)allocates the per-cell arrays for n cells and resets generations.
//
//pacor:allow hotalloc runs only when the grid size changes; steady-state searches never reach it
func (w *Workspace) grow(n int) {
	w.cells = n
	w.gen = 0
	w.stamp = make([]int32, n)
	w.tstamp = make([]int32, n)
	w.gCost = make([]float64, n)
	w.parent = make([]int32, n)
	w.closed = make([]bool, n)
	w.maxSeen = make([]int32, n)
	if w.rstamp != nil {
		// Reallocate (not keep) on shrink too: generations restart at 0 here,
		// and a stale stamp equal to a fresh generation would corrupt reads.
		w.rstamp = make([]int32, n)
		w.rkey = make([]int32, n)
		w.rparent = make([]int32, n)
		w.rclosed = make([]bool, n)
	}
	if w.vbits != nil || w.track {
		w.vbits = make([]uint64, (n+63)/64)
	}
}

// StartVisitTracking clears the visited-cell bitmap and begins recording
// every cell the following searches touch. Tracking spans searches: the
// bitmap accumulates until the next StartVisitTracking. The scheduler uses
// the recorded set to prove that a speculative search could not have seen a
// concurrently committed path.
//
//pacor:allow hotalloc bitmap (re)sized once per tracking session, reused across all searches in it
func (w *Workspace) StartVisitTracking() {
	if need := (w.cells + 63) / 64; len(w.vbits) < need {
		w.vbits = make([]uint64, need)
	}
	clear(w.vbits)
	w.track = true
}

// StopVisitTracking stops recording; the bitmap keeps its contents until the
// next StartVisitTracking.
func (w *Workspace) StopVisitTracking() { w.track = false }

// CopyVisits copies the visited-cell bitmap into dst (grown as needed) and
// returns it, so the caller can keep the record while the workspace moves on
// to other searches.
//
//pacor:allow hotalloc grows the caller's capture buffer once; steady-state copies reuse it
func (w *Workspace) CopyVisits(dst []uint64) []uint64 {
	if cap(dst) < len(w.vbits) {
		dst = make([]uint64, len(w.vbits))
	}
	dst = dst[:len(w.vbits)]
	copy(dst, w.vbits)
	return dst
}

// visit records cell i in the tracking bitmap when tracking is active.
func (w *Workspace) visit(i int) {
	if w.track {
		w.vbits[i>>6] |= 1 << (uint(i) & 63)
	}
}

// begin starts a new search generation and clears the frontier buffers.
func (w *Workspace) begin(g grid.Grid) {
	if n := g.Cells(); n != w.cells {
		w.grow(n)
	}
	if w.gen == math.MaxInt32 {
		// Stamp wrap-around: after 2^31-1 searches the next generation would
		// collide with stale stamps; clear them and restart.
		clear(w.stamp)
		clear(w.tstamp)
		clear(w.rstamp)
		w.gen = 0
	}
	w.gen++
	w.open = w.open[:0]
	w.bopen = w.bopen[:0]
	w.arena = w.arena[:0]
	w.seq = 0
	w.clipped = 0
}

// Clipped reports how many frontier cells the most recent search rejected
// through its request's Bounds or Mask. Zero means the window/mask never
// constrained the search: its transcript — and result — equal the
// unconstrained search's.
func (w *Workspace) Clipped() int { return w.clipped }

// SetQueueMode sets the workspace's default open-list implementation, used
// by searches whose Request leaves Queue as QueueAuto. Queue modes are a
// wall-clock knob only: routed output is byte-identical across them, so the
// setting is safe to flip between searches. AcquireWorkspace resets it to
// QueueAuto.
func (w *Workspace) SetQueueMode(m QueueMode) { w.queue = m }

// effQueue resolves a request's queue mode against the workspace default.
func (w *Workspace) effQueue(m QueueMode) QueueMode {
	if m == QueueAuto {
		return w.queue
	}
	return m
}

// nextSeq returns the next push sequence number of the current search.
func (w *Workspace) nextSeq() uint32 {
	s := w.seq
	w.seq++
	return s
}

// touch brings cell i into the current generation with A* initial state and
// reports whether it was already current.
func (w *Workspace) touch(i int) bool {
	w.visit(i)
	if w.stamp[i] == w.gen {
		return true
	}
	w.stamp[i] = w.gen
	w.gCost[i] = -1
	w.parent[i] = -1
	w.closed[i] = false
	return false
}

// touchBounded brings cell i into the current generation with bounded-search
// initial state.
func (w *Workspace) touchBounded(i int) {
	w.visit(i)
	if w.stamp[i] != w.gen {
		w.stamp[i] = w.gen
		w.maxSeen[i] = -1
	}
}

// markTargets stamps the in-grid targets and returns their bounding box and
// count.
func (w *Workspace) markTargets(g grid.Grid, targets []geom.Pt) (geom.Rect, int) {
	tb := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	n := 0
	for _, t := range targets {
		if !g.In(t) {
			continue
		}
		i := g.Index(t)
		if w.tstamp[i] != w.gen {
			w.tstamp[i] = w.gen
			n++
		}
		tb = tb.Union(geom.RectOf(t, t))
	}
	return tb, n
}

// isTarget reports whether cell index i is a target of the current search.
func (w *Workspace) isTarget(i int) bool { return w.tstamp[i] == w.gen }

// targetH is the admissible heuristic shared by both searches: Manhattan
// distance from p to the target bounding box.
func targetH(tb geom.Rect, p geom.Pt) int {
	dx := 0
	if p.X < tb.MinX {
		dx = tb.MinX - p.X
	} else if p.X > tb.MaxX {
		dx = p.X - tb.MaxX
	}
	dy := 0
	if p.Y < tb.MinY {
		dy = tb.MinY - p.Y
	} else if p.Y > tb.MaxY {
		dy = p.Y - tb.MaxY
	}
	return dx + dy
}

// AStar is the workspace-backed form of the package-level AStar: identical
// search semantics, no per-call allocation beyond the returned path. The
// open list runs on either the binary heap or the Dial bucket queue
// (queue.go) — both implement the same (f, push order) total order, so the
// choice never changes the routed path, only the wall clock.
func (w *Workspace) AStar(g grid.Grid, req Request) (grid.Path, bool) {
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		w.clipped = 0 // keep Clipped tied to this call even on the no-search path
		return nil, false
	}
	w.begin(g)
	tb, nt := w.markTargets(g, req.Targets)
	if nt == 0 {
		return nil, false
	}
	if w.effQueue(req.Queue) != QueueHeap {
		if scale, maxStep, ok := req.quant(); ok {
			// The bucket attempt inspects only source heuristics before
			// committing; when the ring is infeasible it returns done=false
			// without having stamped a cell, and the heap takes over on the
			// same generation.
			if path, found, done := w.astarBucket(g, req, tb, scale, maxStep); done {
				return path, found
			}
		}
	}
	return w.astarHeap(g, req, tb)
}

// astarHeap is the float64 binary-heap search loop.
func (w *Workspace) astarHeap(g grid.Grid, req Request, tb geom.Rect) (grid.Path, bool) {
	w.lastQueue = QueueHeap
	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		if w.touch(i) && w.gCost[i] == 0 {
			continue
		}
		w.gCost[i] = 0
		pushOpen(&w.open, openItem{idx: int32(i), seq: w.nextSeq(), f: float64(targetH(tb, s))})
	}
	for len(w.open) > 0 {
		it := popOpen(&w.open)
		i := int(it.idx)
		if w.closed[i] {
			continue
		}
		w.closed[i] = true
		p := g.Pt(i)
		if w.isTarget(i) {
			return w.reconstruct(g, i), true
		}
		w.nbuf = g.Neighbors(p, w.nbuf)
		for _, q := range w.nbuf {
			j := g.Index(q)
			// Tracked searches must stamp a cell before reading its obstacle
			// state: the visit cone has to be a superset of every cell read,
			// or speculative/cache validation cannot reason about the search.
			// Untracked searches skip blocked and out-of-window cells before
			// touching them — same skip decision (the state read is identical
			// in both orders), but no stamp writes on cells that contribute
			// nothing to the search.
			if w.track {
				if w.touch(j) && w.closed[j] {
					continue
				}
			}
			if !req.inBounds(q) && !w.isTarget(j) {
				w.clipped++
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !w.isTarget(j) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
				continue
			}
			if !w.track {
				if w.touch(j) && w.closed[j] {
					continue
				}
			}
			step := 1.0
			if req.Hist != nil {
				step += req.Hist[j]
			}
			ng := w.gCost[i] + step
			if w.gCost[j] < 0 || ng < w.gCost[j] {
				w.gCost[j] = ng
				w.parent[j] = int32(i)
				pushOpen(&w.open, openItem{idx: int32(j), seq: w.nextSeq(), f: ng + float64(targetH(tb, q))})
			}
		}
	}
	return nil, false
}

// astarBucket is the Dial bucket-queue search loop: the same expansion body
// as astarHeap, with frontier keys in the certified fixed-point integer
// domain (key = (g+h)·scale; the scale is a power of two, so the float64
// products are exact and the integer key order equals the float f order).
// done=false means the ring was infeasible for this request's key span; no
// cell has been stamped and the caller falls back to the heap.
func (w *Workspace) astarBucket(g grid.Grid, req Request, tb geom.Rect, scale, maxStep int64) (path grid.Path, found, done bool) {
	// Ring sizing: before the first pop the live keys span the sources'
	// heuristic spread; afterwards a pushed key exceeds the popped one by at
	// most step+scale (consistent heuristic, one cell per move).
	var hmin, hmax int64
	first := true
	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		h := int64(targetH(tb, s)) * scale
		if first {
			hmin, hmax = h, h
			first = false
		} else if h < hmin {
			hmin = h
		} else if h > hmax {
			hmax = h
		}
	}
	if first {
		return nil, false, true // no in-grid source; the heap would fail identically
	}
	span := hmax - hmin
	if m := maxStep + scale; m > span {
		span = m
	}
	if !w.bq.prep(span) {
		return nil, false, false
	}
	w.lastQueue = QueueBucket
	scaleF := float64(scale)
	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		if w.touch(i) && w.gCost[i] == 0 {
			continue
		}
		w.gCost[i] = 0
		w.bq.push(int64(targetH(tb, s))*scale, int32(i))
	}
	for {
		it, ok := w.bq.pop()
		if !ok {
			break
		}
		i := int(it)
		if w.closed[i] {
			continue
		}
		w.closed[i] = true
		p := g.Pt(i)
		if w.isTarget(i) {
			return w.reconstruct(g, i), true, true
		}
		w.nbuf = g.Neighbors(p, w.nbuf)
		for _, q := range w.nbuf {
			j := g.Index(q)
			// Same stamp-before-read discipline as astarHeap; see the comment
			// there.
			if w.track {
				if w.touch(j) && w.closed[j] {
					continue
				}
			}
			if !req.inBounds(q) && !w.isTarget(j) {
				w.clipped++
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !w.isTarget(j) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
				continue
			}
			if !w.track {
				if w.touch(j) && w.closed[j] {
					continue
				}
			}
			step := 1.0
			if req.Hist != nil {
				step += req.Hist[j]
			}
			ng := w.gCost[i] + step
			if w.gCost[j] < 0 || ng < w.gCost[j] {
				w.gCost[j] = ng
				w.parent[j] = int32(i)
				w.bq.push(int64((ng+float64(targetH(tb, q)))*scaleF), int32(j))
			}
		}
	}
	return nil, false, true
}

// reconstruct walks the parent chain from end, allocating the result path
// exactly once (chain length is counted first, then filled backwards).
//
//pacor:allow hotalloc single exact-size allocation for the result path returned to the caller
func (w *Workspace) reconstruct(g grid.Grid, end int) grid.Path {
	n := 1
	for i := end; w.parent[i] >= 0; i = int(w.parent[i]) {
		n++
	}
	path := make(grid.Path, n)
	i := end
	for k := n - 1; k >= 0; k-- {
		path[k] = g.Pt(i)
		i = int(w.parent[i])
	}
	return path
}

// BoundedAStar is the workspace-backed form of the package-level
// BoundedAStar: identical search semantics, reusing the state arena and
// per-cell length table across calls.
func (w *Workspace) BoundedAStar(g grid.Grid, req Request, minLen, maxLen int) (grid.Path, bool) {
	if len(req.Sources) == 0 || len(req.Targets) == 0 || minLen > maxLen || maxLen < 0 {
		w.clipped = 0 // keep Clipped tied to this call even on the no-search path
		return nil, false
	}
	w.begin(g)
	tb, nt := w.markTargets(g, req.Targets)
	if nt == 0 {
		return nil, false
	}
	// The bounded search ignores Hist (unit steps), so its keys are always
	// integral — no quantization certificate needed, only ring feasibility.
	if w.effQueue(req.Queue) != QueueHeap {
		if path, found, done := w.boundedBucket(g, req, tb, minLen, maxLen); done {
			return path, found
		}
	}
	return w.boundedHeap(g, req, tb, minLen, maxLen)
}

// boundedPrio is the bounded search's key: under-length states are ordered
// by decreasing G+H, so the search stretches paths before settling;
// conforming states use plain A* ordering.
func boundedPrio(minLen, gv, hv int) int {
	f := gv + hv
	if f < minLen {
		return 2*minLen - f
	}
	return f
}

// boundedHeap is the binary-heap bounded search loop.
func (w *Workspace) boundedHeap(g grid.Grid, req Request, tb geom.Rect, minLen, maxLen int) (grid.Path, bool) {
	w.lastQueue = QueueHeap
	prio := func(gv, hv int) int { return boundedPrio(minLen, gv, hv) }

	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		w.touchBounded(i)
		w.arena = append(w.arena, bnode{cell: int32(i), g: 0, parent: -1}) //pacor:allow hotalloc amortized arena growth, capacity reused across searches
		pushBounded(&w.bopen, boundedItem{node: int32(len(w.arena) - 1), f: int32(prio(0, targetH(tb, s)))})
		if w.maxSeen[i] < 0 {
			w.maxSeen[i] = 0
		}
	}

	// Expansion budget: generous but bounded. A Bounds window shrinks it to
	// the window area so detour searches stay local and fast.
	cells := g.Cells()
	if req.Bounds != nil {
		if a := req.Bounds.Intersect(g.Bounds()).Area(); a < cells {
			cells = a
		}
	}
	budget := 16 * cells
	if budget < 65536 {
		budget = 65536
	}
	for len(w.bopen) > 0 && budget > 0 {
		budget--
		it := popBounded(&w.bopen)
		nd := w.arena[it.node]
		p := g.Pt(int(nd.cell))
		if w.isTarget(int(nd.cell)) && int(nd.g) >= minLen && int(nd.g) <= maxLen {
			// Cycles are possible in principle (the monotone-G rule only
			// requires strictly longer revisits), so validate at
			// reconstruction instead of paying an ancestor-chain walk on
			// every expansion.
			if path := reconstructArena(g, w.arena, int(it.node)); path.Valid() {
				return path, true
			}
			continue
		}
		w.nbuf = g.Neighbors(p, w.nbuf)
		for _, q := range w.nbuf {
			j := g.Index(q)
			ng := nd.g + 1
			if int(ng) > maxLen {
				continue
			}
			// Same stamp ordering as AStar: tracked searches stamp before the
			// obstacle read, untracked ones skip dead cells without stamping.
			if w.track {
				w.touchBounded(j)
			}
			if !req.inBounds(q) && !w.isTarget(j) {
				w.clipped++
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !w.isTarget(j) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
				continue
			}
			if !w.track {
				w.touchBounded(j)
			}
			// Monotone-G rule: only revisit a cell on a strictly longer path.
			if ng <= w.maxSeen[j] && !(w.isTarget(j) && int(ng) >= minLen) {
				continue
			}
			if ng > w.maxSeen[j] {
				w.maxSeen[j] = ng
			}
			w.arena = append(w.arena, bnode{cell: int32(j), g: ng, parent: it.node}) //pacor:allow hotalloc amortized arena growth, capacity reused across searches
			pushBounded(&w.bopen, boundedItem{node: int32(len(w.arena) - 1), f: int32(prio(int(ng), targetH(tb, q)))})
		}
	}
	return nil, false
}

// boundedBucket is the Dial bucket-queue bounded search loop. Unlike A*'s
// sliding window, the under-length penalty makes keys non-monotone (a push
// can land below the cursor, which rolls back), so the ring covers the whole
// key universe: penalized keys lie in (minLen, 2·minLen], conforming keys in
// [minLen, maxLen + maxH] with maxH the heuristic's grid-corner maximum.
// done=false means that universe exceeds the ring cap; no cell has been
// stamped and the caller falls back to the heap.
func (w *Workspace) boundedBucket(g grid.Grid, req Request, tb geom.Rect, minLen, maxLen int) (path grid.Path, found, done bool) {
	gb := g.Bounds()
	maxH := 0
	for _, c := range [4]geom.Pt{
		{X: gb.MinX, Y: gb.MinY}, {X: gb.MaxX, Y: gb.MinY},
		{X: gb.MinX, Y: gb.MaxY}, {X: gb.MaxX, Y: gb.MaxY},
	} {
		if h := targetH(tb, c); h > maxH {
			maxH = h
		}
	}
	hi := int64(maxLen + maxH)
	if m := int64(2 * minLen); m > hi {
		hi = m
	}
	if !w.bq.prep(hi - int64(minLen)) {
		return nil, false, false
	}
	w.lastQueue = QueueBucket

	for _, s := range req.Sources {
		if !g.In(s) {
			continue
		}
		i := g.Index(s)
		w.touchBounded(i)
		w.arena = append(w.arena, bnode{cell: int32(i), g: 0, parent: -1}) //pacor:allow hotalloc amortized arena growth, capacity reused across searches
		w.bq.push(int64(boundedPrio(minLen, 0, targetH(tb, s))), int32(len(w.arena)-1))
		if w.maxSeen[i] < 0 {
			w.maxSeen[i] = 0
		}
	}

	cells := g.Cells()
	if req.Bounds != nil {
		if a := req.Bounds.Intersect(g.Bounds()).Area(); a < cells {
			cells = a
		}
	}
	budget := 16 * cells
	if budget < 65536 {
		budget = 65536
	}
	for budget > 0 {
		it, ok := w.bq.pop()
		if !ok {
			break
		}
		budget--
		nd := w.arena[it]
		p := g.Pt(int(nd.cell))
		if w.isTarget(int(nd.cell)) && int(nd.g) >= minLen && int(nd.g) <= maxLen {
			// Same reconstruction-time cycle check as boundedHeap.
			if path := reconstructArena(g, w.arena, int(it)); path.Valid() {
				return path, true, true
			}
			continue
		}
		w.nbuf = g.Neighbors(p, w.nbuf)
		for _, q := range w.nbuf {
			j := g.Index(q)
			ng := nd.g + 1
			if int(ng) > maxLen {
				continue
			}
			if w.track {
				w.touchBounded(j)
			}
			if !req.inBounds(q) && !w.isTarget(j) {
				w.clipped++
				continue
			}
			if req.Obs != nil && req.Obs.Blocked(q) && !w.isTarget(j) { //pacor:allow snapshotread untracked fast path; tracked searches stamp via the w.track branch above before this read
				continue
			}
			if !w.track {
				w.touchBounded(j)
			}
			if ng <= w.maxSeen[j] && !(w.isTarget(j) && int(ng) >= minLen) {
				continue
			}
			if ng > w.maxSeen[j] {
				w.maxSeen[j] = ng
			}
			w.arena = append(w.arena, bnode{cell: int32(j), g: ng, parent: it}) //pacor:allow hotalloc amortized arena growth, capacity reused across searches
			w.bq.push(int64(boundedPrio(minLen, int(ng), targetH(tb, q))), int32(len(w.arena)-1))
		}
	}
	return nil, false, true
}

// --- frontier heaps --------------------------------------------------------
//
// Manual binary heaps over the reusable slices (no interface boxing). Both
// heaps order by an explicit total order: smaller f first, and among equal f
// the earlier push first (openLess: lower seq; boundedLess: lower arena
// node). FIFO is load-bearing for the bounded search — its monotone-G
// pruning needs breadth-first settling among equal keys or parity-feasible
// windows become unreachable — and it is exactly the order the Dial bucket
// queue's chains produce, so every routed path is byte-identical across
// queue modes.

type openItem struct {
	idx int32
	seq uint32
	f   float64
}

func openLess(a, b openItem) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	return a.seq < b.seq
}

func pushOpen(h *[]openItem, it openItem) {
	s := append(*h, it) //pacor:allow hotalloc amortized heap growth, capacity reused across searches
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !openLess(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func popOpen(h *[]openItem) openItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && openLess(s[j2], s[j1]) {
			j = j2
		}
		if !openLess(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

type boundedItem struct {
	node int32
	f    int32
}

func boundedLess(a, b boundedItem) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	return a.node < b.node
}

func pushBounded(h *[]boundedItem, it boundedItem) {
	s := append(*h, it) //pacor:allow hotalloc amortized heap growth, capacity reused across searches
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !boundedLess(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func popBounded(h *[]boundedItem) boundedItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && boundedLess(s[j2], s[j1]) {
			j = j2
		}
		if !boundedLess(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}
