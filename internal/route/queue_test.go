package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestBucketQueueSlidingWindow drives the ring Dijkstra-style across many
// multiples of the bucket count: pops must come out in nondecreasing key
// order, and equal keys in push order, even as the window wraps the ring.
func TestBucketQueueSlidingWindow(t *testing.T) {
	var q bucketQueue
	if !q.prep(6) {
		t.Fatal("span 6 must be feasible")
	}
	// B = 8 here; keys advance to ~200, so the window laps the ring ~25 times.
	type pushed struct {
		key int64
		val int32
	}
	rng := rand.New(rand.NewSource(7))
	var log []pushed
	next := int32(0)
	push := func(key int64) {
		q.push(key, next)
		log = append(log, pushed{key, next})
		next++
	}
	push(0)
	push(0) // equal keys at the very start
	var pops []pushed
	for q.count > 0 {
		v, ok := q.pop()
		if !ok {
			t.Fatal("count > 0 but pop failed")
		}
		key := log[v].key
		pops = append(pops, pushed{key, v})
		// Push up to two successors within the window while below key 200.
		if key < 200 {
			for n := rng.Intn(3); n > 0; n-- {
				push(key + int64(rng.Intn(6)))
			}
		}
	}
	for i := 1; i < len(pops); i++ {
		a, b := pops[i-1], pops[i]
		if b.key < a.key {
			t.Fatalf("pop %d: key %d after %d (not nondecreasing)", i, b.key, a.key)
		}
		if b.key == a.key && b.val < a.val {
			t.Fatalf("pop %d: equal key %d popped val %d after %d (not FIFO)", i, b.key, b.val, a.val)
		}
	}
	if len(pops) != len(log) {
		t.Fatalf("popped %d of %d pushes", len(pops), len(log))
	}
}

// TestBucketQueueEmptySkipAndRollback covers the cursor mechanics: long empty
// stretches are skipped, and a push below the cursor (the bounded search's
// under-length penalty) rolls it back.
func TestBucketQueueEmptySkipAndRollback(t *testing.T) {
	var q bucketQueue
	if !q.prep(120) {
		t.Fatal("span 120 must be feasible")
	}
	q.push(100, 1)           // cursor starts at 100
	q.push(3, 2)             // below cursor: rolls back
	q.push(3, 3)             // equal key, later push
	want := []int32{2, 3, 1} // 3 before 100, FIFO within key 3, 96 empty buckets skipped
	for i, wv := range want {
		v, ok := q.pop()
		if !ok || v != wv {
			t.Fatalf("pop %d = %d,%v, want %d", i, v, ok, wv)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("empty queue popped a value")
	}
}

// TestBucketQueuePrepFeasibility pins the ring cap: spans at or past
// maxBucketSpan (and negative spans) are rejected, the boundary below passes.
func TestBucketQueuePrepFeasibility(t *testing.T) {
	var q bucketQueue
	if q.prep(-1) {
		t.Error("negative span accepted")
	}
	if q.prep(maxBucketSpan) {
		t.Error("span = maxBucketSpan accepted")
	}
	if !q.prep(maxBucketSpan - 1) {
		t.Error("span = maxBucketSpan-1 rejected")
	}
}

// TestHistQuant pins the certification rule: the paper's Alpha = 0.1 is
// certifiable through one history bump (h ∈ {0, 1}) and not past it (1.1 is
// not dyadic), while dyadic alphas certify deep and scales stay powers of two.
func TestHistQuant(t *testing.T) {
	for bumps, wantOK := range []bool{true, true, false, false} {
		scale, maxStep, ok := HistQuant(1.0, 0.1, bumps)
		if ok != wantOK {
			t.Errorf("alpha=0.1 bumps=%d: ok=%v, want %v", bumps, ok, wantOK)
		}
		if ok {
			if scale&(scale-1) != 0 || scale <= 0 {
				t.Errorf("alpha=0.1 bumps=%d: scale %d not a power of two", bumps, scale)
			}
			if maxStep != scale*int64(1+bumps) {
				// iterates are 0,1,2,... at alpha where certified (bumps ≤ 1)
				t.Errorf("alpha=0.1 bumps=%d: maxStep %d, scale %d", bumps, maxStep, scale)
			}
		}
	}
	// Dyadic alpha: h iterates 0, 1, 1.5, 1.75, ... all exact at scale 2^bumps
	// or less; certification must hold deep.
	for bumps := 0; bumps <= 12; bumps++ {
		scale, maxStep, ok := HistQuant(1.0, 0.5, bumps)
		if !ok {
			t.Fatalf("alpha=0.5 bumps=%d: not certified", bumps)
		}
		if scale&(scale-1) != 0 {
			t.Fatalf("alpha=0.5 bumps=%d: scale %d not a power of two", bumps, scale)
		}
		if maxStep < scale || maxStep > 3*scale {
			t.Fatalf("alpha=0.5 bumps=%d: maxStep %d implausible for scale %d", bumps, maxStep, scale)
		}
	}
	// Alpha = 0: history saturates after one bump; certified at scale 1.
	if scale, _, ok := HistQuant(1.0, 0, 64); !ok || scale != 1 {
		t.Errorf("alpha=0: scale=%d ok=%v, want 1 true", scale, ok)
	}
	if _, _, ok := HistQuant(-1, 0, 1); ok {
		t.Error("negative history certified")
	}
}

// TestParseQueueMode pins the flag grammar.
func TestParseQueueMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want QueueMode
		err  bool
	}{
		{"auto", QueueAuto, false}, {"", QueueAuto, false},
		{"heap", QueueHeap, false}, {"bucket", QueueBucket, false},
		{"Bucket", QueueAuto, true}, {"fifo", QueueAuto, true},
	} {
		m, err := ParseQueueMode(c.in)
		if (err != nil) != c.err || m != c.want {
			t.Errorf("ParseQueueMode(%q) = %v, %v", c.in, m, err)
		}
	}
	if QueueAuto.String() != "auto" || QueueHeap.String() != "heap" || QueueBucket.String() != "bucket" {
		t.Error("QueueMode.String round-trip broken")
	}
}

// TestAStarHeapFallbacks: a bucket-mode workspace must quietly run on the
// heap when the request's cost domain carries no integrality certificate
// (caller-supplied Hist), and on the bucket when it does.
func TestAStarHeapFallbacks(t *testing.T) {
	g := grid.New(16, 16)
	w := NewWorkspace(g)
	w.SetQueueMode(QueueBucket)
	hist := make([]float64, g.Cells())
	hist[g.Index(geom.Pt{X: 8, Y: 8})] = 0.3 // non-dyadic, uncertified
	req := Request{Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 15, Y: 15}}, Hist: hist}

	if _, ok := w.AStar(g, req); !ok {
		t.Fatal("search failed")
	}
	if w.lastQueue != QueueHeap {
		t.Errorf("uncertified Hist ran on %v, want heap", w.lastQueue)
	}

	// The same request with a certificate runs on the bucket. Scale 1 is
	// honest here only because this test's history values would break it —
	// so use a certified domain instead: nil Hist.
	req.Hist = nil
	req.HistScale, req.HistMax = 0, 0
	if _, ok := w.AStar(g, req); !ok {
		t.Fatal("search failed")
	}
	if w.lastQueue != QueueBucket {
		t.Errorf("unit-cost search ran on %v, want bucket", w.lastQueue)
	}

	// Forcing the heap wins over the workspace default.
	req.Queue = QueueHeap
	if _, ok := w.AStar(g, req); !ok {
		t.Fatal("search failed")
	}
	if w.lastQueue != QueueHeap {
		t.Errorf("Queue=heap request ran on %v", w.lastQueue)
	}
}

// TestQueueModesByteIdentical: on random mazes, heap and bucket searches
// (plain and bounded) return byte-identical paths, and the bucket mode is
// actually exercised.
func TestQueueModesByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := grid.New(24, 24)
	wHeap, wBucket := NewWorkspace(g), NewWorkspace(g)
	wHeap.SetQueueMode(QueueHeap)
	wBucket.SetQueueMode(QueueBucket)
	usedBucket := 0
	for trial := 0; trial < 60; trial++ {
		obs := grid.NewObsMap(g)
		for i := 0; i < 80; i++ {
			obs.Set(geom.Pt{X: rng.Intn(24), Y: rng.Intn(24)}, true)
		}
		src := geom.Pt{X: rng.Intn(24), Y: rng.Intn(24)}
		dst := geom.Pt{X: rng.Intn(24), Y: rng.Intn(24)}
		obs.Set(src, false)
		obs.Set(dst, false)
		req := Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}

		ph, okh := wHeap.AStar(g, req)
		pb, okb := wBucket.AStar(g, req)
		if okh != okb || !pathsEqual(ph, pb) {
			t.Fatalf("trial %d: A* diverged between queue modes\nheap   %v %v\nbucket %v %v", trial, ph, okh, pb, okb)
		}
		if wBucket.lastQueue == QueueBucket {
			usedBucket++
		}

		minLen := geom.Dist(src, dst) + rng.Intn(8)
		maxLen := minLen + rng.Intn(4)
		bh, okbh := wHeap.BoundedAStar(g, req, minLen, maxLen)
		bb, okbb := wBucket.BoundedAStar(g, req, minLen, maxLen)
		if okbh != okbb || !pathsEqual(bh, bb) {
			t.Fatalf("trial %d: bounded search diverged between queue modes", trial)
		}
	}
	if usedBucket == 0 {
		t.Error("no trial actually ran on the bucket queue")
	}
}

// TestNegotiateQueueByteIdentical is the PR 6 identity sweep: queue mode ×
// cache mode × worker count on random congested instances must return
// byte-identical paths and identical NegotiateStats counters. The queue
// mode, like the cache and the scheduler, is a pure wall-clock knob.
func TestNegotiateQueueByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		g, obs, edges := randomNegotiateInstance(rng)

		ref := DefaultNegotiateParams()
		ref.NoCache = true
		ref.Queue = QueueHeap
		wantPaths, wantOK := Negotiate(obs, edges, ref)
		var wantStats *NegotiateStats

		for _, queue := range []QueueMode{QueueHeap, QueueBucket, QueueAuto} {
			for _, workers := range []int{0, 1, 2, 4, 8} {
				for _, mode := range []struct {
					name             string
					noCache, checked bool
				}{
					{"cache", false, false},
					{"nocache", true, false},
					{"checkcache", false, true},
				} {
					params := DefaultNegotiateParams()
					params.Queue = queue
					params.Workers = workers
					params.NoCache = mode.noCache
					params.CheckCache = mode.checked
					var stats NegotiateStats
					ws := AcquireWorkspace(g)
					paths, ok := ws.NegotiateTracked(obs, edges, params, &stats)
					ReleaseWorkspace(ws)
					if ok != wantOK {
						t.Fatalf("trial %d queue=%v workers=%d %s: ok=%v, want %v",
							trial, queue, workers, mode.name, ok, wantOK)
					}
					for id, p := range wantPaths {
						if !pathsEqual(p, paths[id]) {
							t.Fatalf("trial %d queue=%v workers=%d %s: edge %d path differs\n got %v\nwant %v",
								trial, queue, workers, mode.name, id, paths[id], p)
						}
					}
					if len(paths) != len(wantPaths) {
						t.Fatalf("trial %d queue=%v workers=%d %s: %d paths, want %d",
							trial, queue, workers, mode.name, len(paths), len(wantPaths))
					}
					// Search/round counters must agree across queue modes and
					// worker counts; cache counters only within one cache mode.
					if mode.name == "cache" {
						if wantStats == nil {
							s := stats
							wantStats = &s
						} else if !statsEqual(stats, *wantStats) {
							t.Fatalf("trial %d queue=%v workers=%d: stats %+v differ from %+v",
								trial, queue, workers, stats, *wantStats)
						}
					}
				}
			}
		}
	}
}

// TestQueueAutoNeverSelectsBidir pins the honest-note contract from the PR 6
// bidirectional search: BiAStar is cost-only (its path can differ in SHAPE,
// never length, from AStar's), so no QueueMode may ever resolve to it — a
// caller routing paths under any mode, auto included, must get AStar's exact
// output. The test sweeps every workspace default x request mode over random
// instances and checks (a) the resolved open list is always the heap or the
// bucket, and (b) the routed path is byte-identical to a forced-heap search,
// which BiAStar's differently-shaped paths could not guarantee.
func TestQueueAutoNeverSelectsBidir(t *testing.T) {
	// There is deliberately no QueueMode spelling for the bidirectional
	// search; the flag parser must reject it rather than map it.
	if _, err := ParseQueueMode("bidir"); err == nil {
		t.Fatal(`ParseQueueMode("bidir") parsed; bidir must not be selectable as a queue mode`)
	}
	rng := rand.New(rand.NewSource(8008))
	g := grid.New(32, 32)
	ref := NewWorkspace(g)
	for trial := 0; trial < 40; trial++ {
		obs := grid.NewObsMap(g)
		for i := 0; i < 140; i++ {
			obs.Set(geom.Pt{X: rng.Intn(32), Y: rng.Intn(32)}, true)
		}
		src := geom.Pt{X: rng.Intn(32), Y: rng.Intn(32)}
		dst := geom.Pt{X: rng.Intn(32), Y: rng.Intn(32)}
		obs.Set(src, false)
		obs.Set(dst, false)
		req := Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}
		hr := req
		hr.Queue = QueueHeap
		want, wantOK := ref.AStar(g, hr)
		for _, def := range []QueueMode{QueueAuto, QueueHeap, QueueBucket} {
			for _, reqMode := range []QueueMode{QueueAuto, QueueHeap, QueueBucket} {
				w := NewWorkspace(g)
				w.SetQueueMode(def)
				r := req
				r.Queue = reqMode
				p, ok := w.AStar(g, r)
				if w.lastQueue != QueueHeap && w.lastQueue != QueueBucket {
					t.Fatalf("trial %d def=%v req=%v: resolved open list %v, want heap or bucket",
						trial, def, reqMode, w.lastQueue)
				}
				if ok != wantOK || !pathsEqual(p, want) {
					t.Fatalf("trial %d def=%v req=%v: path diverged from forced-heap AStar (bidir-shaped?)",
						trial, def, reqMode)
				}
			}
		}
	}
}
