package route

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestBoundedAStarTrivial(t *testing.T) {
	// Bound below the shortest distance behaves like plain A*.
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	p, ok := BoundedAStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 5, Y: 0}},
		Obs:     obs,
	}, 0, 100)
	p = mustPath(t, p, ok)
	if p.Len() != 5 {
		t.Errorf("len = %d, want 5", p.Len())
	}
}

func TestBoundedAStarStretch(t *testing.T) {
	// Demand length in [9, 10] for endpoints at distance 5: the search must
	// detour. Parity: any path between them has odd length, so 9 is hit.
	g := grid.New(12, 12)
	obs := grid.NewObsMap(g)
	p, ok := BoundedAStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 5, Y: 0}},
		Obs:     obs,
	}, 9, 10)
	p = mustPath(t, p, ok)
	if p.Len() < 9 || p.Len() > 10 {
		t.Errorf("len = %d, want in [9,10]", p.Len())
	}
}

func TestBoundedAStarExactWindowWithObstacles(t *testing.T) {
	g := grid.New(10, 6)
	obs := grid.NewObsMap(g)
	for x := 2; x < 8; x++ {
		obs.Set(geom.Pt{X: x, Y: 2}, true) // force detours around a bar
	}
	src := geom.Pt{X: 1, Y: 1}
	dst := geom.Pt{X: 8, Y: 1}
	for want := 7; want <= 15; want += 2 {
		p, ok := BoundedAStar(g, Request{
			Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs,
		}, want, want+1)
		if !ok {
			t.Fatalf("no path for window [%d,%d]", want, want+1)
		}
		if !p.Valid() {
			t.Fatalf("invalid path for window %d: %v", want, p)
		}
		if p.Len() < want || p.Len() > want+1 {
			t.Errorf("window [%d,%d]: len %d", want, want+1, p.Len())
		}
		for _, c := range p {
			if obs.Blocked(c) {
				t.Errorf("window %d: path hits obstacle %v", want, c)
			}
		}
	}
}

func TestBoundedAStarParityImpossible(t *testing.T) {
	// Window [6,6] for odd-distance endpoints is parity-infeasible.
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	if _, ok := BoundedAStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}},
		Targets: []geom.Pt{{X: 5, Y: 0}},
		Obs:     obs,
	}, 6, 6); ok {
		t.Error("parity-impossible window must fail")
	}
}

func TestBoundedAStarDegenerateInputs(t *testing.T) {
	g := grid.New(5, 5)
	if _, ok := BoundedAStar(g, Request{}, 0, 5); ok {
		t.Error("empty request")
	}
	if _, ok := BoundedAStar(g, Request{
		Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 1, Y: 0}},
	}, 5, 3); ok {
		t.Error("inverted window")
	}
}

func TestExtendPathBasic(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	base := grid.Path{{X: 1, Y: 5}, {X: 2, Y: 5}, {X: 3, Y: 5}, {X: 4, Y: 5}}
	ext, ok := ExtendPath(obs, base, 9, 10)
	if !ok {
		t.Fatal("extension failed in open space")
	}
	if ext.Len() != 9 {
		t.Errorf("len = %d, want 9", ext.Len())
	}
	if !ext.Valid() {
		t.Fatalf("invalid extended path %v", ext)
	}
	if ext[0] != base[0] || ext[len(ext)-1] != base[len(base)-1] {
		t.Error("endpoints moved")
	}
}

func TestExtendPathAlreadyLongEnough(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	base := grid.Path{{X: 1, Y: 5}, {X: 2, Y: 5}, {X: 3, Y: 5}}
	ext, ok := ExtendPath(obs, base, 2, 4)
	if !ok || ext.Len() != 2 {
		t.Error("in-window path should be returned unchanged")
	}
	if _, ok := ExtendPath(obs, base, 0, 1); ok {
		t.Error("over-long path cannot be shrunk")
	}
}

func TestExtendPathBlocked(t *testing.T) {
	// Wrap the path in obstacles so no U-turn fits.
	g := grid.New(10, 3)
	obs := grid.NewObsMap(g)
	for x := 0; x < 10; x++ {
		obs.Set(geom.Pt{X: x, Y: 0}, true)
		obs.Set(geom.Pt{X: x, Y: 2}, true)
	}
	base := grid.Path{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 1}}
	if _, ok := ExtendPath(obs, base, 6, 7); ok {
		t.Error("extension must fail in a sealed corridor")
	}
}

func TestExtendPathParityGap(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	base := grid.Path{{X: 1, Y: 5}, {X: 2, Y: 5}} // len 1
	// Window [4,4]: parity-infeasible (+2 steps from 1 give odd lengths).
	if _, ok := ExtendPath(obs, base, 4, 4); ok {
		t.Error("parity gap must fail")
	}
	// Window [4,5] is feasible: 5 is odd.
	ext, ok := ExtendPath(obs, base, 4, 5)
	if !ok || ext.Len() != 5 {
		t.Errorf("len = %d ok=%v, want 5", ext.Len(), ok)
	}
}

func TestExtendPathLargeStretchStacksDetours(t *testing.T) {
	g := grid.New(30, 30)
	obs := grid.NewObsMap(g)
	base := grid.Path{{X: 5, Y: 15}, {X: 6, Y: 15}, {X: 7, Y: 15}, {X: 8, Y: 15}, {X: 9, Y: 15}}
	ext, ok := ExtendPath(obs, base, 30, 31)
	if !ok {
		t.Fatal("large extension failed in open space")
	}
	if ext.Len() < 30 || ext.Len() > 31 {
		t.Errorf("len = %d", ext.Len())
	}
	if !ext.ValidOn(g) {
		t.Fatal("extended path invalid")
	}
}
