package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestBiAStarMatchesAStarCost: on random obstacle fields, the bidirectional
// search must agree with A* on reachability and on exact path length (shape
// may differ — the meet-in-the-middle expansion order is different), and the
// returned path must be valid, simple, and obstacle-free.
func TestBiAStarMatchesAStarCost(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 80; trial++ {
		w, h := 8+rng.Intn(24), 8+rng.Intn(24)
		g := grid.New(w, h)
		obs := grid.NewObsMap(g)
		density := 0.05 + rng.Float64()*0.35
		for i := 0; i < g.Cells(); i++ {
			if rng.Float64() < density {
				obs.Set(g.Pt(i), true)
			}
		}
		src := geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}
		dst := geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}
		obs.Set(src, false)
		obs.Set(dst, false)
		req := Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs}

		pa, oka := AStar(g, req)
		pb, okb := BiAStar(g, req)
		if oka != okb {
			t.Fatalf("trial %d: reachability disagrees (A*=%v, bi=%v)", trial, oka, okb)
		}
		if !oka {
			continue
		}
		if pb.Len() != pa.Len() {
			t.Fatalf("trial %d: bi length %d != A* length %d", trial, pb.Len(), pa.Len())
		}
		if !pb.Valid() || !pb.ValidOn(g) {
			t.Fatalf("trial %d: bi path invalid: %v", trial, pb)
		}
		if pb[0] != src || pb[len(pb)-1] != dst {
			t.Fatalf("trial %d: bi endpoints wrong", trial)
		}
		for _, c := range pb {
			if obs.Blocked(c) && c != src && c != dst {
				t.Fatalf("trial %d: bi path through obstacle %v", trial, c)
			}
		}
	}
}

// TestBiAStarDegenerate covers the special cases: identical endpoints, out of
// grid endpoints, and blocked targets (exempt, like AStar's).
func TestBiAStarDegenerate(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	s := geom.Pt{X: 3, Y: 3}
	if p, ok := BiAStar(g, Request{Sources: []geom.Pt{s}, Targets: []geom.Pt{s}, Obs: obs}); !ok || len(p) != 1 || p[0] != s {
		t.Errorf("s==t: got %v, %v", p, ok)
	}
	if _, ok := BiAStar(g, Request{Sources: []geom.Pt{{X: -1, Y: 0}}, Targets: []geom.Pt{s}}); ok {
		t.Error("out-of-grid source routed")
	}
	// Blocked target is exempt, exactly like AStar.
	dst := geom.Pt{X: 8, Y: 8}
	obs.Set(dst, true)
	req := Request{Sources: []geom.Pt{s}, Targets: []geom.Pt{dst}, Obs: obs}
	pa, oka := AStar(g, req)
	pb, okb := BiAStar(g, req)
	if !oka || !okb || pa.Len() != pb.Len() {
		t.Errorf("blocked target: A* %v/%v, bi %v/%v", pa.Len(), oka, pb.Len(), okb)
	}
}

// TestBiAStarDelegates: requests outside the point-to-point profile fall back
// to AStar and return its exact path.
func TestBiAStarDelegates(t *testing.T) {
	g := grid.New(12, 12)
	obs := grid.NewObsMap(g)
	multi := Request{
		Sources: []geom.Pt{{X: 0, Y: 0}, {X: 0, Y: 11}},
		Targets: []geom.Pt{{X: 11, Y: 5}},
		Obs:     obs,
	}
	pa, oka := AStar(g, multi)
	pb, okb := BiAStar(g, multi)
	if oka != okb || !pathsEqual(pa, pb) {
		t.Error("multi-source request did not delegate to AStar")
	}
	hist := make([]float64, g.Cells())
	hreq := Request{Sources: []geom.Pt{{X: 0, Y: 0}}, Targets: []geom.Pt{{X: 11, Y: 11}}, Obs: obs, Hist: hist}
	pa, oka = AStar(g, hreq)
	pb, okb = BiAStar(g, hreq)
	if oka != okb || !pathsEqual(pa, pb) {
		t.Error("history request did not delegate to AStar")
	}
}
