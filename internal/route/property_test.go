package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestAStarMatchesBFSRandomMazes: on random obstacle fields, A* path length
// must equal BFS shortest-path length (or both must fail).
func TestAStarMatchesBFSRandomMazes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		w, h := 8+rng.Intn(20), 8+rng.Intn(20)
		g := grid.New(w, h)
		obs := grid.NewObsMap(g)
		density := 0.1 + rng.Float64()*0.3
		for i := 0; i < g.Cells(); i++ {
			if rng.Float64() < density {
				obs.Set(g.Pt(i), true)
			}
		}
		src := geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}
		dst := geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}
		obs.Set(src, false)
		obs.Set(dst, false)
		want := bfsLen(g, obs, src, dst)
		p, ok := AStar(g, Request{Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs})
		if (want == -1) != !ok {
			t.Fatalf("trial %d: BFS=%d ok=%v disagree", trial, want, ok)
		}
		if ok {
			if p.Len() != want {
				t.Fatalf("trial %d: A* %d != BFS %d", trial, p.Len(), want)
			}
			if !p.ValidOn(g) {
				t.Fatalf("trial %d: invalid path", trial)
			}
			for _, c := range p {
				if obs.Blocked(c) && c != src && c != dst {
					t.Fatalf("trial %d: path through obstacle %v", trial, c)
				}
			}
		}
	}
}

// TestBoundedAStarWindowInvariant: any returned path has length within the
// requested window and stays simple.
func TestBoundedAStarWindowInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		g := grid.New(16, 16)
		obs := grid.NewObsMap(g)
		for i := 0; i < 25; i++ {
			obs.Set(geom.Pt{X: rng.Intn(16), Y: rng.Intn(16)}, true)
		}
		src := geom.Pt{X: rng.Intn(16), Y: rng.Intn(16)}
		dst := geom.Pt{X: rng.Intn(16), Y: rng.Intn(16)}
		if src == dst {
			continue
		}
		obs.Set(src, false)
		obs.Set(dst, false)
		d := geom.Dist(src, dst)
		minLen := d + rng.Intn(10)
		maxLen := minLen + 1 + rng.Intn(4)
		p, ok := BoundedAStar(g, Request{
			Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs,
		}, minLen, maxLen)
		if !ok {
			continue // failure is allowed; success must be correct
		}
		if p.Len() < minLen || p.Len() > maxLen {
			t.Fatalf("trial %d: len %d outside [%d,%d]", trial, p.Len(), minLen, maxLen)
		}
		if !p.Valid() {
			t.Fatalf("trial %d: non-simple path", trial)
		}
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("trial %d: endpoints moved", trial)
		}
	}
}

// TestBoundedAStarFindsParityFeasibleWindows: on an empty grid, every
// parity-feasible window must be achievable.
func TestBoundedAStarFindsParityFeasibleWindows(t *testing.T) {
	g := grid.New(30, 30)
	obs := grid.NewObsMap(g)
	src := geom.Pt{X: 5, Y: 15}
	dst := geom.Pt{X: 12, Y: 15} // distance 7, odd
	for minLen := 7; minLen <= 21; minLen++ {
		maxLen := minLen
		feasible := (minLen-7)%2 == 0
		p, ok := BoundedAStar(g, Request{
			Sources: []geom.Pt{src}, Targets: []geom.Pt{dst}, Obs: obs,
		}, minLen, maxLen)
		if feasible && !ok {
			t.Errorf("window [%d,%d]: parity-feasible but failed", minLen, maxLen)
		}
		if !feasible && ok {
			t.Errorf("window [%d,%d]: parity-infeasible but returned %d", minLen, maxLen, p.Len())
		}
	}
}

// TestExtendPathInvariants: extension preserves endpoints, validity, and
// adds even length.
func TestExtendPathInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		g := grid.New(24, 24)
		obs := grid.NewObsMap(g)
		for i := 0; i < 30; i++ {
			obs.Set(geom.Pt{X: rng.Intn(24), Y: rng.Intn(24)}, true)
		}
		// Random L-shaped base path.
		x0, y0 := 2+rng.Intn(10), 2+rng.Intn(20)
		x1 := x0 + 3 + rng.Intn(8)
		var base grid.Path
		for x := x0; x <= x1; x++ {
			p := geom.Pt{X: x, Y: y0}
			obs.Set(p, false)
			base = append(base, p)
		}
		obs.SetPath(base, true)
		work := obs.Clone()
		work.SetPath(base, false)
		target := base.Len() + 2*(1+rng.Intn(5))
		ext, ok := ExtendPath(work, base, target, target+1)
		if !ok {
			continue
		}
		if ext.Len() != target {
			t.Fatalf("trial %d: len %d, want %d (even increments)", trial, ext.Len(), target)
		}
		if ext[0] != base[0] || ext[len(ext)-1] != base[len(base)-1] {
			t.Fatalf("trial %d: endpoints moved", trial)
		}
		if !ext.ValidOn(g) {
			t.Fatalf("trial %d: invalid extension", trial)
		}
		for _, c := range ext[1 : len(ext)-1] {
			if work.Blocked(c) && !base.Contains(c) {
				t.Fatalf("trial %d: extension through obstacle %v", trial, c)
			}
		}
	}
}

// TestNegotiateRandomValidity: on random multi-edge instances, success means
// pairwise-disjoint valid paths avoiding obstacles.
func TestNegotiateRandomValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		g := grid.New(20, 20)
		obs := grid.NewObsMap(g)
		for i := 0; i < 20; i++ {
			obs.Set(geom.Pt{X: rng.Intn(20), Y: rng.Intn(20)}, true)
		}
		var edges []Edge
		used := map[geom.Pt]bool{}
		pick := func() geom.Pt {
			for {
				p := geom.Pt{X: rng.Intn(20), Y: rng.Intn(20)}
				if !used[p] {
					used[p] = true
					obs.Set(p, false)
					return p
				}
			}
		}
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			edges = append(edges, Edge{ID: i, Sources: []geom.Pt{pick()}, Targets: []geom.Pt{pick()}})
		}
		paths, ok := Negotiate(obs, edges, DefaultNegotiateParams())
		if !ok {
			continue
		}
		if len(paths) != n {
			t.Fatalf("trial %d: %d paths for %d edges", trial, len(paths), n)
		}
		seen := map[geom.Pt]int{}
		for id, p := range paths {
			if !p.ValidOn(g) {
				t.Fatalf("trial %d: invalid path", trial)
			}
			if p[0] != edges[id].Sources[0] || p[len(p)-1] != edges[id].Targets[0] {
				t.Fatalf("trial %d edge %d: endpoints wrong", trial, id)
			}
			for _, c := range p {
				if other, dup := seen[c]; dup && other != id {
					t.Fatalf("trial %d: cell %v shared by %d and %d", trial, c, other, id)
				}
				seen[c] = id
				if obs.Blocked(c) {
					t.Fatalf("trial %d: path through obstacle %v", trial, c)
				}
			}
		}
	}
}
