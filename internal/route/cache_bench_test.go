package route

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// hitHeavyInstance builds the shape the incremental cache is designed for:
// edges sealed into obstacle pockets. A trapped edge exhaustively floods its
// pocket and fails — every round, identically, because nothing inside the
// pocket ever changes (failed edges route no path, so the history bump never
// touches pocket cells). With the cache on, rounds past the warm-up replay
// those floods for free; with it off, every round pays the full flood again.
// Two routable edges outside the pockets keep the instance shaped like a real
// negotiation (some paths commit and get bumped each failing round).
func hitHeavyInstance() (*grid.ObsMap, []Edge) {
	const pockets = 6
	const side = 30 // interior flood area per pocket: side*side cells
	g := grid.New(pockets*(side+3)+2, side+8)
	obs := grid.NewObsMap(g)
	edges := make([]Edge, 0, pockets+2)
	for k := 0; k < pockets; k++ {
		x0 := 1 + k*(side+3)
		// Sealed box [x0, x0+side+1] x [1, side+2]; the edge's terminals sit
		// inside, its target unreachable behind an inner full wall.
		for x := x0; x <= x0+side+1; x++ {
			obs.Set(geom.Pt{X: x, Y: 1}, true)
			obs.Set(geom.Pt{X: x, Y: side + 2}, true)
		}
		for y := 1; y <= side+2; y++ {
			obs.Set(geom.Pt{X: x0, Y: y}, true)
			obs.Set(geom.Pt{X: x0 + side + 1, Y: y}, true)
		}
		// Inner wall splits the pocket; source floods its whole half.
		for y := 2; y <= side+1; y++ {
			obs.Set(geom.Pt{X: x0 + side - 1, Y: y}, true)
		}
		edges = append(edges, Edge{
			ID:      k,
			Sources: []geom.Pt{{X: x0 + 1, Y: 2}},
			Targets: []geom.Pt{{X: x0 + side, Y: 2}},
		})
	}
	// Routable edges along the open strip below the pockets.
	y := side + 4
	edges = append(edges,
		Edge{ID: pockets, Sources: []geom.Pt{{X: 0, Y: y}}, Targets: []geom.Pt{{X: g.W - 1, Y: y}}},
		Edge{ID: pockets + 1, Sources: []geom.Pt{{X: 0, Y: y + 2}}, Targets: []geom.Pt{{X: g.W - 1, Y: y + 2}}},
	)
	return obs, edges
}

// invalidationHeavyInstance is the cache's worst case: heavily conflicting
// edges whose outcomes keep changing, so history bumps and outcome deltas
// dirty every cached cone and nearly every round re-searches. The cache then
// measures pure tracking overhead.
func invalidationHeavyInstance() (*grid.ObsMap, []Edge) {
	g := grid.New(24, 24)
	obs := grid.NewObsMap(g)
	// A narrow three-corridor wall every edge must cross.
	for y := 0; y < 24; y++ {
		if y != 4 && y != 12 && y != 20 {
			obs.Set(geom.Pt{X: 12, Y: y}, true)
		}
	}
	edges := make([]Edge, 6)
	for i := range edges {
		edges[i] = Edge{
			ID:      i,
			Sources: []geom.Pt{{X: 0, Y: 2 + 4*i}},
			Targets: []geom.Pt{{X: 23, Y: 2 + 4*((i+3)%6)}},
		}
	}
	return obs, edges
}

func benchNegotiate(b *testing.B, obs *grid.ObsMap, edges []Edge, noCache bool) {
	params := DefaultNegotiateParams()
	params.NoCache = noCache
	ws := NewWorkspace(obs.Grid())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Negotiate(obs, edges, params)
	}
}

// BenchmarkNegotiateIncremental measures the incremental cache on its best
// shape (HitHeavy: sealed-pocket floods replay for free) and its worst
// (InvalidationHeavy: every cone dirtied every round, pure tracking
// overhead). Compare the Cache/NoCache pairs.
func BenchmarkNegotiateIncremental(b *testing.B) {
	hitObs, hitEdges := hitHeavyInstance()
	invObs, invEdges := invalidationHeavyInstance()
	b.Run("HitHeavy/Cache", func(b *testing.B) { benchNegotiate(b, hitObs, hitEdges, false) })
	b.Run("HitHeavy/NoCache", func(b *testing.B) { benchNegotiate(b, hitObs, hitEdges, true) })
	b.Run("InvalidationHeavy/Cache", func(b *testing.B) { benchNegotiate(b, invObs, invEdges, false) })
	b.Run("InvalidationHeavy/NoCache", func(b *testing.B) { benchNegotiate(b, invObs, invEdges, true) })
}
