package route

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestTilingCountsBruteForce checks the coarsening's bookkeeping — free cells
// per tile and crossing capacities per adjacency — against a brute-force
// recount on random obstacle maps with grid sizes that do and do not divide
// evenly by the tile side.
func TestTilingCountsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 25; trial++ {
		g := grid.Grid{W: 20 + rng.Intn(45), H: 20 + rng.Intn(45)}
		obs := grid.NewObsMap(g)
		for i := 0; i < g.Cells()/5; i++ {
			obs.Set(geom.Pt{X: rng.Intn(g.W), Y: rng.Intn(g.H)}, true)
		}
		size := []int{2, 4, 8, 16}[rng.Intn(4)]
		tl := NewTiling(obs, size)
		if tl.Size() != size {
			t.Fatalf("trial %d: size %d rounded to %d", trial, size, tl.Size())
		}

		free := make([]int, tl.Tiles())
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				p := geom.Pt{X: x, Y: y}
				ti := tl.TileOf(p)
				if ti != tl.TileOfIndex(g.Index(p)) {
					t.Fatalf("trial %d: TileOf(%v)=%d but TileOfIndex=%d", trial, p, ti, tl.TileOfIndex(g.Index(p)))
				}
				if !tl.TileRect(ti).Contains(p) {
					t.Fatalf("trial %d: %v outside its tile rect %v", trial, p, tl.TileRect(ti))
				}
				if !obs.Blocked(p) {
					free[ti]++
				}
			}
		}
		for ti := range free {
			if tl.FreeCells(ti) != free[ti] {
				t.Fatalf("trial %d tile %d: FreeCells=%d, brute force %d", trial, ti, tl.FreeCells(ti), free[ti])
			}
		}

		// Crossing capacities: count free cell pairs straddling each tile edge.
		capOf := map[[2]int]int{}
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				p := geom.Pt{X: x, Y: y}
				if obs.Blocked(p) {
					continue
				}
				for _, q := range []geom.Pt{{X: x + 1, Y: y}, {X: x, Y: y + 1}} {
					if !g.In(q) || obs.Blocked(q) {
						continue
					}
					if u, v := tl.TileOf(p), tl.TileOf(q); u != v {
						capOf[[2]int{u, v}]++
					}
				}
			}
		}
		got := map[[2]int]int{}
		prev := -1
		tl.ForEachAdjacency(func(u, v, c int) {
			if c <= 0 {
				t.Fatalf("trial %d: adjacency %d-%d with capacity %d", trial, u, v, c)
			}
			if u < prev {
				t.Fatalf("trial %d: adjacency order not deterministic (tile %d after %d)", trial, u, prev)
			}
			prev = u
			got[[2]int{u, v}] = c
		})
		if len(got) != len(capOf) {
			t.Fatalf("trial %d: %d adjacencies, brute force %d", trial, len(got), len(capOf))
		}
		for k, c := range capOf {
			if got[k] != c {
				t.Fatalf("trial %d: adjacency %v capacity %d, brute force %d", trial, k, got[k], c)
			}
		}
	}
}

// TestTileMaskHalo checks BuildMask against a brute-force Chebyshev dilation
// and CorridorRect against the mask's cell bounding box plus halo.
func TestTileMaskHalo(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 20; trial++ {
		g := grid.Grid{W: 30 + rng.Intn(34), H: 30 + rng.Intn(34)}
		obs := grid.NewObsMap(g)
		tl := NewTiling(obs, 8)
		var corridor []int32
		for n := 1 + rng.Intn(4); n > 0; n-- {
			corridor = append(corridor, int32(rng.Intn(tl.Tiles())))
		}
		for _, halo := range []int{0, 1, 3} {
			m := tl.BuildMask(corridor, halo)
			admitted := func(ti int) bool {
				tx, ty := ti%tl.tw, ti/tl.tw
				for _, c := range corridor {
					cx, cy := int(c)%tl.tw, int(c)/tl.tw
					dx, dy := tx-cx, ty-cy
					if dx < 0 {
						dx = -dx
					}
					if dy < 0 {
						dy = -dy
					}
					if dx <= halo && dy <= halo {
						return true
					}
				}
				return false
			}
			for y := 0; y < g.H; y++ {
				for x := 0; x < g.W; x++ {
					p := geom.Pt{X: x, Y: y}
					if m.Contains(p) != admitted(tl.TileOf(p)) {
						t.Fatalf("trial %d halo %d: Contains(%v)=%v, brute force %v",
							trial, halo, p, m.Contains(p), admitted(tl.TileOf(p)))
					}
				}
			}
			r := tl.CorridorRect(corridor, halo)
			for _, c := range corridor {
				if !r.Contains(geom.Pt{X: (int(c) % tl.tw) << tl.shift, Y: (int(c) / tl.tw) << tl.shift}) {
					t.Fatalf("trial %d halo %d: corridor tile %d outside CorridorRect %v", trial, halo, c, r)
				}
			}
		}
	}
}
