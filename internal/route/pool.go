package route

import (
	"sync"

	"repro/internal/grid"
)

// wsPools holds one sync.Pool of Workspaces per grid cell count, so an
// acquired workspace comes back with its per-cell arrays already sized for
// the grid — no grow() on first use. The package-level AStar / BoundedAStar
// / Negotiate wrappers and the parallel scheduler's workers draw from here;
// hot flow code holds an explicitly owned workspace instead.
var wsPools sync.Map // cells (int) -> *sync.Pool of *Workspace

// poolFor returns the pool serving n-cell grids, creating it on first use.
//
//pacor:allow hotalloc pool and workspace construction happen once per distinct grid size, not per search
func poolFor(n int) *sync.Pool {
	if p, ok := wsPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := wsPools.LoadOrStore(n, &sync.Pool{New: func() interface{} {
		w := &Workspace{} //pacor:allow hotalloc pool miss constructs the reusable workspace exactly once
		w.grow(n)
		return w
	}})
	return p.(*sync.Pool)
}

// AcquireWorkspace returns a pooled workspace sized for g. Pair with
// ReleaseWorkspace. The returned workspace is exclusively owned until
// released; it must not be shared between goroutines.
func AcquireWorkspace(g grid.Grid) *Workspace {
	w := poolFor(g.Cells()).Get().(*Workspace)
	w.pooled = false
	w.queue = QueueAuto // a previous holder's SetQueueMode must not leak
	return w
}

// ReleaseWorkspace returns w to the pool serving its current size. Releasing
// nil is a no-op, as is releasing a workspace that is already back in the
// pool — a double Put of one pointer would hand the same workspace to two
// goroutines. The caller must not use w after the first release.
func ReleaseWorkspace(w *Workspace) {
	if w == nil || w.cells == 0 || w.pooled {
		return
	}
	w.pooled = true
	poolFor(w.cells).Put(w)
}
