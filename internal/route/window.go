package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// SearchWindow estimates the spatial extent of a search between the two
// terminal sets: their joint bounding box inflated by a detour margin, the
// same bounding idea the detour stage uses to keep its bounded reroutes
// local (a conforming path of bounded length stays within the terminal bbox
// expanded by half the slack; see internal/detour's reroute window).
//
// The scheduler uses windows only as a dependency heuristic: two searches
// whose windows are disjoint almost never interact through the
// routed-paths-as-obstacles rule, so they can run concurrently. A search
// that does stray outside its window is caught exactly by the visit-set
// validation at commit time — a window misprediction costs a redo, never
// correctness.
func SearchWindow(g grid.Grid, sources, targets []geom.Pt) geom.Rect {
	bb := geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	for _, p := range sources {
		bb = bb.Union(geom.RectOf(p, p))
	}
	for _, p := range targets {
		bb = bb.Union(geom.RectOf(p, p))
	}
	if bb.Empty() {
		return bb
	}
	// Margin: half the bbox half-perimeter, floored at 8 cells. A shortest
	// path stays inside the bbox; history-driven detours wander further, and
	// this slack absorbs the common case. Larger margins trade parallelism
	// (more window overlaps, deeper dependency chains) for fewer redos.
	m := (bb.Width() + bb.Height()) / 2
	if m < 8 {
		m = 8
	}
	return bb.Expand(m).Intersect(g.Bounds())
}
