// Package ilp implements a 0-1 integer linear program solver by
// branch-and-bound over the LP relaxation from internal/lp. Together they
// replace the Gurobi optimizer the paper uses for its MWCP candidate-tree
// selection (Section 4.2). Instances are small, and branch-and-bound with
// LP bounds is exact, so results match a commercial solver's optima.
package ilp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lp"
)

// Problem is a mixed 0-1 program: maximize C·x subject to Constraints, with
// x[j] binary when Binary[j] is true and continuous in [0, Upper[j]]
// otherwise.
type Problem struct {
	C           []float64
	Constraints []lp.Constraint
	Binary      []bool
	// Upper bounds for continuous variables; binary variables are bounded
	// by 1 regardless. Nil entries default to +Inf (continuous) / 1 (binary).
	Upper []float64
	// Warm, when non-nil, provides a feasible starting solution used to seed
	// the incumbent bound, pruning the tree from the first node. Infeasible
	// warm starts are silently ignored.
	Warm []float64
}

// Solution is the incumbent returned by Solve.
type Solution struct {
	Status lp.Status
	X      []float64
	Obj    float64
	Nodes  int // branch-and-bound nodes explored
}

const intTol = 1e-6

// feasible checks a candidate warm-start point against all constraints,
// bounds, and integrality.
func feasible(p *Problem, upper []float64, x []float64) bool {
	for j, v := range x {
		if v < -intTol || v > upper[j]+intTol {
			return false
		}
		if p.Binary[j] && math.Abs(v-math.Round(v)) > intTol {
			return false
		}
	}
	for _, c := range p.Constraints {
		lhs := 0.0
		for j, a := range c.Coef {
			lhs += a * x[j]
		}
		switch c.Op {
		case lp.LE:
			if lhs > c.RHS+1e-6 {
				return false
			}
		case lp.GE:
			if lhs < c.RHS-1e-6 {
				return false
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// MaxNodes caps the branch-and-bound tree; exceeding it returns an error so
// callers can fall back to a heuristic (as PACOR does for oversized MWCPs).
const MaxNodes = 200000

// Solve runs best-bound-first branch and bound.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.C)
	if n == 0 {
		return nil, errors.New("ilp: problem has no variables")
	}
	if len(p.Binary) != n {
		return nil, fmt.Errorf("ilp: Binary mask has %d entries, want %d", len(p.Binary), n)
	}
	upper := make([]float64, n)
	for j := 0; j < n; j++ {
		switch {
		case p.Binary[j]:
			upper[j] = 1
		case p.Upper != nil && j < len(p.Upper):
			upper[j] = p.Upper[j]
		default:
			upper[j] = math.Inf(1)
		}
	}

	best := &Solution{Status: lp.Infeasible, Obj: math.Inf(-1)}
	if p.Warm != nil && len(p.Warm) == n && feasible(p, upper, p.Warm) {
		obj := 0.0
		for j := 0; j < n; j++ {
			obj += p.C[j] * p.Warm[j]
		}
		best = &Solution{Status: lp.Optimal, X: append([]float64(nil), p.Warm...), Obj: obj}
	}
	nodes := 0

	// node fixes a subset of binaries; fixed[j] in {-1 (free), 0, 1}.
	type node struct {
		fixed []int8
		bound float64
	}
	root := node{fixed: make([]int8, n), bound: math.Inf(1)}
	for j := range root.fixed {
		root.fixed[j] = -1
	}
	stack := []node{root}

	relax := func(fixed []int8) (*lp.Solution, error) {
		cons := append([]lp.Constraint(nil), p.Constraints...)
		up := append([]float64(nil), upper...)
		for j, f := range fixed {
			if f == -1 {
				continue
			}
			coef := make([]float64, n)
			coef[j] = 1
			cons = append(cons, lp.Constraint{Coef: coef, Op: lp.EQ, RHS: float64(f)})
		}
		return lp.Solve(&lp.Problem{C: p.C, Constraints: cons, Upper: up})
	}

	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.bound <= best.Obj+intTol {
			continue // pruned by bound computed at push time
		}
		nodes++
		if nodes > MaxNodes {
			return nil, errors.New("ilp: node limit exceeded")
		}
		rel, err := relax(nd.fixed)
		if err != nil {
			return nil, err
		}
		if rel.Status == lp.Unbounded {
			return &Solution{Status: lp.Unbounded, Nodes: nodes}, nil
		}
		if rel.Status == lp.Infeasible || rel.Obj <= best.Obj+intTol {
			continue
		}
		// Most fractional binary variable.
		branch := -1
		worst := 0.0
		for j := 0; j < n; j++ {
			if !p.Binary[j] {
				continue
			}
			f := rel.X[j] - math.Floor(rel.X[j])
			frac := math.Min(f, 1-f)
			if frac > intTol && frac > worst {
				worst = frac
				branch = j
			}
		}
		if branch == -1 {
			// Integral (in the binaries): new incumbent.
			if rel.Obj > best.Obj {
				x := append([]float64(nil), rel.X...)
				for j := 0; j < n; j++ {
					if p.Binary[j] {
						x[j] = math.Round(x[j])
					}
				}
				best = &Solution{Status: lp.Optimal, X: x, Obj: rel.Obj}
			}
			continue
		}
		for _, v := range []int8{1, 0} {
			child := node{fixed: append([]int8(nil), nd.fixed...), bound: rel.Obj}
			child.fixed[branch] = v
			stack = append(stack, child)
		}
	}
	best.Nodes = nodes
	return best, nil
}
