package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// Classic 0-1 knapsack: values 60,100,120, weights 10,20,30, cap 50.
	// Optimum: items 2,3 = 220.
	p := &Problem{
		C:      []float64{60, 100, 120},
		Binary: []bool{true, true, true},
		Constraints: []lp.Constraint{
			{Coef: []float64{10, 20, 30}, Op: lp.LE, RHS: 50},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || !approx(s.Obj, 220) {
		t.Fatalf("obj = %v status=%v, want 220", s.Obj, s.Status)
	}
	if s.X[0] != 0 || s.X[1] != 1 || s.X[2] != 1 {
		t.Errorf("x = %v, want [0 1 1]", s.X)
	}
}

func TestLPvsILPGap(t *testing.T) {
	// LP relaxation of knapsack is fractional; ILP must be integral and
	// below the LP bound.
	c := []float64{10, 6, 4}
	w := []float64{5, 4, 3}
	p := &Problem{
		C:      c,
		Binary: []bool{true, true, true},
		Constraints: []lp.Constraint{
			{Coef: w, Op: lp.LE, RHS: 7},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := lp.Solve(&lp.Problem{C: c, Upper: []float64{1, 1, 1},
		Constraints: []lp.Constraint{{Coef: w, Op: lp.LE, RHS: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Obj > rel.Obj+1e-6 {
		t.Errorf("ILP obj %v exceeds LP bound %v", s.Obj, rel.Obj)
	}
	for j, v := range s.X {
		if math.Abs(v-math.Round(v)) > 1e-6 {
			t.Errorf("x[%d] = %v not integral", j, v)
		}
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		C:      []float64{1, 1},
		Binary: []bool{true, true},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1}, Op: lp.GE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestEqualityPick(t *testing.T) {
	// Exactly one of three, maximize weights.
	p := &Problem{
		C:      []float64{3, 5, 4},
		Binary: []bool{true, true, true},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1, 1}, Op: lp.EQ, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 5) || s.X[1] != 1 {
		t.Fatalf("x = %v obj=%v, want pick index 1", s.X, s.Obj)
	}
}

func TestMixedContinuous(t *testing.T) {
	// max 2b + y, b binary, 0 <= y <= 1.5, b + y <= 2.
	p := &Problem{
		C:      []float64{2, 1},
		Binary: []bool{true, false},
		Upper:  []float64{1, 1.5},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1}, Op: lp.LE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 3) || s.X[0] != 1 || !approx(s.X[1], 1) {
		t.Fatalf("x = %v obj=%v, want b=1 y=1 obj=3", s.X, s.Obj)
	}
}

func TestNegativeWeights(t *testing.T) {
	// All weights negative with a cover constraint: pick the least bad.
	p := &Problem{
		C:      []float64{-5, -2, -9},
		Binary: []bool{true, true, true},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1, 1}, Op: lp.GE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, -2) || s.X[1] != 1 {
		t.Fatalf("x = %v obj = %v, want pick index 1 at -2", s.X, s.Obj)
	}
}

func TestRandomKnapsackVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		c := make([]float64, n)
		w := make([]float64, n)
		bin := make([]bool, n)
		for j := 0; j < n; j++ {
			c[j] = float64(rng.Intn(40) - 10)
			w[j] = float64(1 + rng.Intn(10))
			bin[j] = true
		}
		cap := float64(5 + rng.Intn(20))
		p := &Problem{C: c, Binary: bin,
			Constraints: []lp.Constraint{{Coef: w, Op: lp.LE, RHS: cap}}}
		s, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force all subsets.
		best := math.Inf(-1)
		for mask := 0; mask < 1<<n; mask++ {
			wt, val := 0.0, 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					wt += w[j]
					val += c[j]
				}
			}
			if wt <= cap && val > best {
				best = val
			}
		}
		if !approx(s.Obj, best) {
			t.Errorf("trial %d: ILP %v, brute force %v", trial, s.Obj, best)
		}
	}
}

func TestBadInput(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("empty problem must error")
	}
	if _, err := Solve(&Problem{C: []float64{1}, Binary: []bool{}}); err == nil {
		t.Error("mask mismatch must error")
	}
}

func TestWarmStartMatchesColdOptimum(t *testing.T) {
	p := &Problem{
		C:      []float64{60, 100, 120},
		Binary: []bool{true, true, true},
		Constraints: []lp.Constraint{
			{Coef: []float64{10, 20, 30}, Op: lp.LE, RHS: 50},
		},
	}
	cold, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Warm = []float64{0, 1, 1} // the optimum itself
	warm, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(cold.Obj, warm.Obj) {
		t.Fatalf("warm obj %v != cold obj %v", warm.Obj, cold.Obj)
	}
	if warm.Nodes > cold.Nodes {
		t.Errorf("warm start explored %d nodes, cold %d — seeding should prune",
			warm.Nodes, cold.Nodes)
	}
}

func TestWarmStartInfeasibleIgnored(t *testing.T) {
	p := &Problem{
		C:      []float64{1, 1},
		Binary: []bool{true, true},
		Constraints: []lp.Constraint{
			{Coef: []float64{1, 1}, Op: lp.LE, RHS: 1},
		},
		Warm: []float64{1, 1}, // violates the constraint
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Obj, 1) {
		t.Fatalf("obj = %v, want 1 (bad warm start must not poison the bound)", s.Obj)
	}
}

func TestWarmStartFractionalBinaryIgnored(t *testing.T) {
	p := &Problem{
		C:      []float64{1},
		Binary: []bool{true},
		Warm:   []float64{0.5},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.X[0] != 1 {
		t.Fatalf("x = %v, want 1", s.X)
	}
}
