package actuation

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/valve"
)

// geomPt aliases geom.Pt for the test helper below.
type geomPt = geom.Pt

// twoMixerAssay: two 3-valve mixers plus a shared transport valve.
func twoMixerAssay() *Assay {
	mixPhases := [][]valve.Status{
		{valve.Closed, valve.Open, valve.Open},
		{valve.Open, valve.Closed, valve.Open},
		{valve.Open, valve.Open, valve.Closed},
	}
	return &Assay{
		Valves: 7,
		Units: []Unit{
			{Name: "mixer0", Valves: []int{0, 1, 2}, Phases: mixPhases},
			{Name: "mixer1", Valves: []int{3, 4, 5}, Phases: mixPhases},
			{Name: "trans", Valves: []int{6}, Phases: [][]valve.Status{{valve.Open}}},
		},
		Ops: []Op{
			{Name: "mixA", Unit: 0, Dur: 6},
			{Name: "mixB", Unit: 1, Dur: 6},
			{Name: "move", Unit: 2, Dur: 2, Deps: []int{0, 1}},
			{Name: "mixC", Unit: 0, Dur: 3, Deps: []int{2}},
		},
	}
}

func TestSynthesizeSchedule(t *testing.T) {
	a := twoMixerAssay()
	s, err := Synthesize(a)
	if err != nil {
		t.Fatal(err)
	}
	// mixA and mixB run in parallel from 0; move starts at 6; mixC at 8.
	if s.Start[0] != 0 || s.Start[1] != 0 {
		t.Errorf("parallel mixes start at %d,%d, want 0,0", s.Start[0], s.Start[1])
	}
	if s.Start[2] != 6 {
		t.Errorf("move starts at %d, want 6", s.Start[2])
	}
	if s.Start[3] != 8 {
		t.Errorf("mixC starts at %d, want 8", s.Start[3])
	}
	if s.Steps != 11 {
		t.Errorf("makespan = %d, want 11", s.Steps)
	}
	for v, sq := range s.Seqs {
		if len(sq) != s.Steps {
			t.Errorf("valve %d sequence length %d, want %d", v, len(sq), s.Steps)
		}
	}
}

func TestSynthesizeSequences(t *testing.T) {
	s, err := Synthesize(twoMixerAssay())
	if err != nil {
		t.Fatal(err)
	}
	// During mixA (steps 0-5), valve 0 follows the mixer phase pattern:
	// closed at phase 0, open otherwise.
	want := []valve.Status{
		valve.Closed, valve.Open, valve.Open, valve.Closed, valve.Open, valve.Open,
	}
	for tstep, w := range want {
		if s.Seqs[0][tstep] != w {
			t.Errorf("valve 0 step %d = %c, want %c", tstep, s.Seqs[0][tstep], w)
		}
	}
	// While mixer0 is idle (steps 6-7), its valves are don't-care.
	if s.Seqs[0][6] != valve.DontC || s.Seqs[0][7] != valve.DontC {
		t.Error("idle unit valves must be don't-care")
	}
	// The transport valve is don't-care until step 6, open for 6-7.
	if s.Seqs[6][0] != valve.DontC {
		t.Error("undriven steps must be don't-care")
	}
	if s.Seqs[6][6] != valve.Open || s.Seqs[6][7] != valve.Open {
		t.Error("transport valve must be open during move")
	}
}

func TestLMClusters(t *testing.T) {
	a := twoMixerAssay()
	s, err := Synthesize(a)
	if err != nil {
		t.Fatal(err)
	}
	clusters := LMClusters(a, s)
	// Mixer valves within a unit are NOT pairwise compatible (the rotating
	// phase pattern drives them differently), so no clusters emerge here.
	for _, c := range clusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !s.Seqs[c[i]].Compatible(s.Seqs[c[j]]) {
					t.Errorf("cluster %v members %d,%d incompatible", c, c[i], c[j])
				}
			}
		}
	}
	// A lockstep unit (all valves share one state per phase) must cluster.
	lock := &Assay{
		Valves: 3,
		Units: []Unit{{
			Name: "gate", Valves: []int{0, 1, 2},
			Phases: [][]valve.Status{
				{valve.Closed, valve.Closed, valve.Closed},
				{valve.Open, valve.Open, valve.Open},
			},
		}},
		Ops: []Op{{Name: "gate", Unit: 0, Dur: 4}},
	}
	ls, err := Synthesize(lock)
	if err != nil {
		t.Fatal(err)
	}
	lc := LMClusters(lock, ls)
	if len(lc) != 1 || len(lc[0]) != 3 {
		t.Fatalf("lockstep unit should give one 3-valve cluster, got %v", lc)
	}
}

func TestValidateErrors(t *testing.T) {
	base := twoMixerAssay()
	mutations := []struct {
		name string
		mut  func(*Assay)
	}{
		{"no valves", func(a *Assay) { a.Valves = 0 }},
		{"empty unit", func(a *Assay) { a.Units[0].Valves = nil }},
		{"bad valve ref", func(a *Assay) { a.Units[0].Valves = []int{99} }},
		{"no phases", func(a *Assay) { a.Units[0].Phases = nil }},
		{"ragged phase", func(a *Assay) { a.Units[0].Phases[0] = a.Units[0].Phases[0][:1] }},
		{"bad status", func(a *Assay) { a.Units[0].Phases[0][0] = valve.Status('z') }},
		{"bad unit ref", func(a *Assay) { a.Ops[0].Unit = 9 }},
		{"zero duration", func(a *Assay) { a.Ops[0].Dur = 0 }},
		{"bad dep", func(a *Assay) { a.Ops[0].Deps = []int{42} }},
		{"cycle", func(a *Assay) { a.Ops[0].Deps = []int{3} }},
	}
	for _, m := range mutations {
		a := twoMixerAssay()
		m.mut(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: expected error", m.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base assay invalid: %v", err)
	}
}

func TestSynthesizeSerializesUnitConflicts(t *testing.T) {
	// Two independent ops on the same unit must not overlap.
	a := &Assay{
		Valves: 1,
		Units:  []Unit{{Name: "u", Valves: []int{0}, Phases: [][]valve.Status{{valve.Closed}}}},
		Ops: []Op{
			{Name: "a", Unit: 0, Dur: 3},
			{Name: "b", Unit: 0, Dur: 3},
		},
	}
	s, err := Synthesize(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps != 6 {
		t.Errorf("makespan = %d, want 6 (serialized)", s.Steps)
	}
	if s.Start[0] == s.Start[1] {
		t.Error("same-unit ops overlap")
	}
	// The valve is closed throughout (driven by both ops back to back).
	for tstep := 0; tstep < 6; tstep++ {
		if s.Seqs[0][tstep] != valve.Closed {
			t.Errorf("step %d = %c, want 1", tstep, s.Seqs[0][tstep])
		}
	}
}

func TestSynthesizeFeedsDesign(t *testing.T) {
	// The synthesized sequences must satisfy valve.Design validation.
	lock := &Assay{
		Valves: 4,
		Units: []Unit{
			{Name: "g1", Valves: []int{0, 1}, Phases: [][]valve.Status{
				{valve.Closed, valve.Closed}, {valve.Open, valve.Open}}},
			{Name: "g2", Valves: []int{2, 3}, Phases: [][]valve.Status{
				{valve.Open, valve.Open}, {valve.Closed, valve.Closed}}},
		},
		Ops: []Op{
			{Name: "p1", Unit: 0, Dur: 4},
			{Name: "p2", Unit: 1, Dur: 4},
		},
	}
	s, err := Synthesize(lock)
	if err != nil {
		t.Fatal(err)
	}
	d := &valve.Design{Name: "synth", W: 20, H: 20, Delta: 1,
		LMClusters: LMClusters(lock, s)}
	pos := [][2]int{{4, 4}, {8, 6}, {4, 12}, {8, 14}}
	for v, sq := range s.Seqs {
		d.Valves = append(d.Valves, valve.Valve{ID: v,
			Pos: pt(pos[v][0], pos[v][1]), Seq: sq})
	}
	d.Pins = append(d.Pins, pt(0, 5), pt(19, 5), pt(0, 15), pt(19, 15))
	if err := d.Validate(); err != nil {
		t.Fatalf("synthesized design invalid: %v", err)
	}
}

// pt is a test helper for geometry literals.
func pt(x, y int) geomPt { return geomPt{X: x, Y: y} }
