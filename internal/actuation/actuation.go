// Package actuation synthesizes valve activation sequences from a scheduled
// bioassay — the upstream substrate the paper's problem formulation assumes
// ("the activation sequences ... are obtained by the resource binding and
// scheduling process", Section 2, after Minhass et al.). A bioassay is a DAG
// of fluidic operations (mix, transport, wash, ...) bound to chip units;
// each unit actuates a set of valves with a unit-specific phase pattern.
// List scheduling serializes the operations onto the units, and the
// resulting timeline is projected onto each valve as a "0-1-X" sequence:
// the valve is driven while its unit is busy and don't-care otherwise.
//
// The output plugs directly into valve.Design: sequences of equal length,
// one per valve, with the pairwise compatibility structure that the
// clustering stage consumes.
package actuation

import (
	"fmt"
	"sort"

	"repro/internal/valve"
)

// Unit is a functional unit on the chip (mixer, pump, multiplexer rank...)
// actuating a fixed set of valves.
type Unit struct {
	Name   string
	Valves []int // valve IDs driven by this unit
	// Phases is the unit's actuation pattern per busy time step: Phases[k]
	// gives the open/closed state of each of the unit's valves during the
	// k-th step of an operation running on this unit. Every row must have
	// len(Valves) entries. A mixer, e.g., cycles its three pump valves.
	Phases [][]valve.Status
}

// Op is one fluidic operation of the bioassay.
type Op struct {
	Name string
	Unit int   // index into the Units slice
	Dur  int   // duration in time steps (must be >= 1)
	Deps []int // indices of operations that must complete first
}

// Assay is a scheduled bioassay specification.
type Assay struct {
	Units  []Unit
	Ops    []Op
	Valves int // total number of valves on the chip
}

// Schedule is the synthesis result.
type Schedule struct {
	// Start[i] is the start step of operation i; the makespan is Steps.
	Start []int
	Steps int
	// Seqs[v] is valve v's activation sequence over the whole schedule.
	Seqs []valve.Seq
}

// Validate checks structural sanity of the assay.
func (a *Assay) Validate() error {
	if a.Valves <= 0 {
		return fmt.Errorf("actuation: no valves")
	}
	for ui, u := range a.Units {
		if len(u.Valves) == 0 {
			return fmt.Errorf("actuation: unit %d (%s) drives no valves", ui, u.Name)
		}
		for _, v := range u.Valves {
			if v < 0 || v >= a.Valves {
				return fmt.Errorf("actuation: unit %d references valve %d (have %d)", ui, v, a.Valves)
			}
		}
		if len(u.Phases) == 0 {
			return fmt.Errorf("actuation: unit %d (%s) has no phases", ui, u.Name)
		}
		for pi, ph := range u.Phases {
			if len(ph) != len(u.Valves) {
				return fmt.Errorf("actuation: unit %d phase %d has %d states, want %d",
					ui, pi, len(ph), len(u.Valves))
			}
			for _, st := range ph {
				if !st.Valid() {
					return fmt.Errorf("actuation: unit %d phase %d has invalid status", ui, pi)
				}
			}
		}
	}
	for oi, op := range a.Ops {
		if op.Unit < 0 || op.Unit >= len(a.Units) {
			return fmt.Errorf("actuation: op %d (%s) uses unknown unit %d", oi, op.Name, op.Unit)
		}
		if op.Dur < 1 {
			return fmt.Errorf("actuation: op %d (%s) has duration %d", oi, op.Name, op.Dur)
		}
		for _, dep := range op.Deps {
			if dep < 0 || dep >= len(a.Ops) {
				return fmt.Errorf("actuation: op %d depends on unknown op %d", oi, dep)
			}
		}
	}
	if cycle(a.Ops) {
		return fmt.Errorf("actuation: dependency cycle")
	}
	return nil
}

func cycle(ops []Op) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(ops))
	var visit func(int) bool
	visit = func(i int) bool {
		color[i] = gray
		for _, d := range ops[i].Deps {
			switch color[d] {
			case gray:
				return true
			case white:
				if visit(d) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := range ops {
		if color[i] == white && visit(i) {
			return true
		}
	}
	return false
}

// Synthesize list-schedules the assay (earliest-start, ties by operation
// index) and projects the timeline onto per-valve activation sequences.
// Valves not driven by any unit, and steps where a valve's unit is idle,
// are don't-care.
func Synthesize(a *Assay) (*Schedule, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	n := len(a.Ops)
	start := make([]int, n)
	done := make([]bool, n)
	unitFree := make([]int, len(a.Units))
	opEnd := make([]int, n)

	// Process in topological waves, earliest-ready first, deterministic by
	// index among ties.
	remaining := n
	for remaining > 0 {
		best := -1
		bestStart := 0
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			ready := true
			est := 0
			for _, d := range a.Ops[i].Deps {
				if !done[d] {
					ready = false
					break
				}
				if opEnd[d] > est {
					est = opEnd[d]
				}
			}
			if !ready {
				continue
			}
			if t := unitFree[a.Ops[i].Unit]; t > est {
				est = t
			}
			if best == -1 || est < bestStart {
				best = i
				bestStart = est
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("actuation: scheduling deadlock (cycle?)")
		}
		start[best] = bestStart
		opEnd[best] = bestStart + a.Ops[best].Dur
		unitFree[a.Ops[best].Unit] = opEnd[best]
		done[best] = true
		remaining--
	}
	steps := 0
	for i := range a.Ops {
		if opEnd[i] > steps {
			steps = opEnd[i]
		}
	}
	if steps == 0 {
		steps = 1
	}

	seqs := make([]valve.Seq, a.Valves)
	for v := range seqs {
		sq := make(valve.Seq, steps)
		for t := range sq {
			sq[t] = valve.DontC
		}
		seqs[v] = sq
	}
	for i, op := range a.Ops {
		u := a.Units[op.Unit]
		for t := 0; t < op.Dur; t++ {
			phase := u.Phases[t%len(u.Phases)]
			for k, v := range u.Valves {
				seqs[v][start[i]+t] = phase[k]
			}
		}
	}
	return &Schedule{Start: start, Steps: steps, Seqs: seqs}, nil
}

// LMClusters derives the natural length-matching clusters from the assay:
// every unit whose valves must switch in lockstep (two or more valves with
// pairwise-compatible sequences) becomes one cluster. Units whose sequences
// came out incompatible (overlapping multi-unit valves) are skipped.
func LMClusters(a *Assay, s *Schedule) [][]int {
	var out [][]int
	for _, u := range a.Units {
		if len(u.Valves) < 2 {
			continue
		}
		ok := true
		for i := 0; i < len(u.Valves) && ok; i++ {
			for j := i + 1; j < len(u.Valves); j++ {
				if !s.Seqs[u.Valves[i]].Compatible(s.Seqs[u.Valves[j]]) {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		c := append([]int(nil), u.Valves...)
		sort.Ints(c)
		out = append(out, c)
	}
	return out
}
