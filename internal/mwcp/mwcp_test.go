package mwcp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// small fixed instance: 2 groups x 2 candidates.
func fixedSel() *Selection {
	// candidates: 0,1 (group 0), 2,3 (group 1)
	pw := make([][]float64, 4)
	for i := range pw {
		pw[i] = make([]float64, 4)
	}
	set := func(a, b int, w float64) { pw[a][b] = w; pw[b][a] = w }
	set(0, 2, -5)
	set(0, 3, -1)
	set(1, 2, 0)
	set(1, 3, -4)
	return &Selection{
		Groups: [][]int{{0, 1}, {2, 3}},
		NodeW:  []float64{-1, -2, -1, -3},
		PairW:  pw,
	}
}

func TestSolveExactFixed(t *testing.T) {
	s := fixedSel()
	pick, val, err := SolveExact(s)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate: (0,2): -1-1-5=-7; (0,3): -1-3-1=-5; (1,2): -2-1+0=-3; (1,3): -2-3-4=-9.
	if !approx(val, -3) {
		t.Fatalf("val = %v, want -3 (pick %v)", val, pick)
	}
	if pick[0] != 1 || pick[1] != 2 {
		t.Errorf("pick = %v, want [1 2]", pick)
	}
	if !approx(s.Value(pick), val) {
		t.Error("Value disagrees with returned val")
	}
}

func TestSolveILPFixed(t *testing.T) {
	pick, val, err := SolveILP(fixedSel())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(val, -3) || pick[0] != 1 || pick[1] != 2 {
		t.Fatalf("ILP pick = %v val = %v, want [1 2] at -3", pick, val)
	}
}

func TestSolveLocalFixed(t *testing.T) {
	pick, val, err := SolveLocal(fixedSel())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(val, -3) || pick[0] != 1 || pick[1] != 2 {
		t.Fatalf("local pick = %v val = %v, want [1 2] at -3", pick, val)
	}
}

func TestPositivePairWeights(t *testing.T) {
	pw := make([][]float64, 4)
	for i := range pw {
		pw[i] = make([]float64, 4)
	}
	pw[0][2], pw[2][0] = 3, 3
	s := &Selection{
		Groups: [][]int{{0, 1}, {2, 3}},
		NodeW:  []float64{0, 1, 0, 1},
		PairW:  pw,
	}
	// (0,2): 3; (1,3): 2; (0,3): 1; (1,2): 1. Optimum 3.
	for name, solver := range map[string]func(*Selection) ([]int, float64, error){
		"exact": SolveExact, "ilp": SolveILP, "local": SolveLocal,
	} {
		pick, val, err := solver(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !approx(val, 3) || pick[0] != 0 || pick[1] != 2 {
			t.Errorf("%s: pick %v val %v, want [0 2] at 3", name, pick, val)
		}
	}
}

func TestSolversAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nGroups := 2 + rng.Intn(4)
		var groups [][]int
		id := 0
		for g := 0; g < nGroups; g++ {
			sz := 1 + rng.Intn(3)
			var grp []int
			for k := 0; k < sz; k++ {
				grp = append(grp, id)
				id++
			}
			groups = append(groups, grp)
		}
		n := id
		nodeW := make([]float64, n)
		pw := make([][]float64, n)
		for i := range pw {
			pw[i] = make([]float64, n)
			nodeW[i] = -rng.Float64() * 3
		}
		gOf := make([]int, n)
		for gi, g := range groups {
			for _, c := range g {
				gOf[c] = gi
			}
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if gOf[a] != gOf[b] && rng.Float64() < 0.5 {
					w := -rng.Float64() * 2
					pw[a][b], pw[b][a] = w, w
				}
			}
		}
		s := &Selection{Groups: groups, NodeW: nodeW, PairW: pw}
		_, ve, err := SolveExact(s)
		if err != nil {
			t.Fatal(err)
		}
		_, vi, err := SolveILP(s)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(ve, vi) {
			t.Errorf("trial %d: exact %v != ilp %v", trial, ve, vi)
		}
		_, vl, err := SolveLocal(s)
		if err != nil {
			t.Fatal(err)
		}
		if vl > ve+1e-9 {
			t.Errorf("trial %d: local %v beats exact %v", trial, vl, ve)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Selection{
		{Groups: [][]int{{0}}, NodeW: []float64{0}, PairW: [][]float64{}},
		{Groups: [][]int{{}}, NodeW: []float64{0}, PairW: [][]float64{{0}}},
		{Groups: [][]int{{5}}, NodeW: []float64{0}, PairW: [][]float64{{0}}},
		{Groups: [][]int{{0}, {0}}, NodeW: []float64{0}, PairW: [][]float64{{0}}},
		{Groups: [][]int{{0}}, NodeW: []float64{0, 0}, PairW: [][]float64{{0}, {0, 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMaxWeightCliqueTriangle(t *testing.T) {
	g := NewCliqueGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	clique, w := MaxWeightClique(g)
	if !approx(w, 3) || len(clique) != 3 {
		t.Fatalf("clique = %v w=%v, want triangle 0-1-2", clique, w)
	}
	if clique[0] != 0 || clique[1] != 1 || clique[2] != 2 {
		t.Errorf("clique = %v", clique)
	}
}

func TestMaxWeightCliqueWeighted(t *testing.T) {
	// A heavy isolated vertex beats a light triangle.
	g := NewCliqueGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.W[3] = 10
	clique, w := MaxWeightClique(g)
	if !approx(w, 10) || len(clique) != 1 || clique[0] != 3 {
		t.Fatalf("clique = %v w=%v, want [3] at 10", clique, w)
	}
}

func TestMaxWeightCliqueEmpty(t *testing.T) {
	clique, w := MaxWeightClique(NewCliqueGraph(0))
	if len(clique) != 0 || w != 0 {
		t.Error("empty graph should give empty clique")
	}
}

func TestMaxWeightCliqueVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		g := NewCliqueGraph(n)
		for i := range g.W {
			g.W[i] = rng.Float64() * 5
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(a, b)
				}
			}
		}
		_, got := MaxWeightClique(g)
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			w := 0.0
			for a := 0; a < n && ok; a++ {
				if mask&(1<<a) == 0 {
					continue
				}
				w += g.W[a]
				for b := a + 1; b < n; b++ {
					if mask&(1<<b) != 0 && !g.Adj[a][b] {
						ok = false
						break
					}
				}
			}
			if ok && w > best {
				best = w
			}
		}
		if !approx(got, best) {
			t.Errorf("trial %d: B&B %v, brute force %v", trial, got, best)
		}
	}
}

func TestCliqueSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	NewCliqueGraph(2).AddEdge(1, 1)
}
