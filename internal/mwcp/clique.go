package mwcp

import (
	"fmt"
	"sort"
)

// CliqueGraph is an undirected vertex-weighted graph for the generic
// maximum-weight clique problem (used by the valve-clustering formulation
// and as a cross-check for the selection solvers).
type CliqueGraph struct {
	W   []float64
	Adj [][]bool
}

// NewCliqueGraph returns a graph with n isolated vertices of weight 1.
func NewCliqueGraph(n int) *CliqueGraph {
	g := &CliqueGraph{W: make([]float64, n), Adj: make([][]bool, n)}
	for i := range g.Adj {
		g.W[i] = 1
		g.Adj[i] = make([]bool, n)
	}
	return g
}

// AddEdge connects u and v.
func (g *CliqueGraph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("mwcp: self-loop at %d", u))
	}
	g.Adj[u][v] = true
	g.Adj[v][u] = true
}

// MaxWeightClique returns a maximum-weight clique (vertex set, ascending)
// and its weight, by branch and bound with a weight-sum upper bound.
// Exponential in the worst case; intended for the modest graphs produced by
// valve clustering and tests.
func MaxWeightClique(g *CliqueGraph) ([]int, float64) {
	n := len(g.W)
	if n == 0 {
		return nil, 0
	}
	// Order vertices by descending weight for better early bounds.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.W[order[a]] > g.W[order[b]] })

	var best []int
	bestW := 0.0
	var cur []int

	var rec func(cand []int, curW float64)
	rec = func(cand []int, curW float64) {
		if curW > bestW {
			bestW = curW
			best = append([]int(nil), cur...)
		}
		ub := curW
		for _, v := range cand {
			if g.W[v] > 0 {
				ub += g.W[v]
			}
		}
		if ub <= bestW {
			return
		}
		for i, v := range cand {
			if g.W[v] <= 0 && curW+positiveSum(g, cand[i:]) <= bestW {
				break
			}
			cur = append(cur, v)
			var next []int
			for _, w := range cand[i+1:] {
				if g.Adj[v][w] {
					next = append(next, w)
				}
			}
			rec(next, curW+g.W[v])
			cur = cur[:len(cur)-1]
		}
	}
	rec(order, 0)
	sort.Ints(best)
	return best, bestW
}

func positiveSum(g *CliqueGraph, vs []int) float64 {
	s := 0.0
	for _, v := range vs {
		if g.W[v] > 0 {
			s += g.W[v]
		}
	}
	return s
}
