// Package mwcp solves the maximum-weight clique problems that arise when
// selecting one candidate Steiner tree per cluster (Section 4.2 of the
// paper). Candidates of the same cluster are pairwise non-adjacent, so the
// underlying graph is complete multipartite and a clique contains at most
// one candidate per cluster; the paper further requires every cluster to be
// covered, which turns the problem into "pick exactly one node per group,
// maximizing node weights plus induced edge weights".
//
// Mirroring the paper, three solvers are provided: an exact graph-based
// branch-and-bound (SolveExact), an ILP-based method on top of internal/ilp
// (SolveILP — the variant the paper adopted), and an unconstrained-
// quadratic-programming-style local search (SolveLocal). A generic
// maximum-weight-clique routine (MaxWeightClique) is exposed for the
// clustering formulation and for cross-validation in tests.
package mwcp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/ilp"
	"repro/internal/lp"
)

// Selection is a grouped quadratic selection problem: pick exactly one
// candidate from each group to maximize
//
//	sum_i NodeW[pick_i] + sum_{i<j} PairW[pick_i][pick_j].
//
// NodeW is indexed by candidate; PairW must be symmetric with a zero
// diagonal, and entries between candidates of the same group are ignored.
type Selection struct {
	Groups [][]int
	NodeW  []float64
	PairW  [][]float64
}

// Validate checks structural consistency.
func (s *Selection) Validate() error {
	n := len(s.NodeW)
	if len(s.PairW) != n {
		return fmt.Errorf("mwcp: PairW has %d rows, want %d", len(s.PairW), n)
	}
	for i, row := range s.PairW {
		if len(row) != n {
			return fmt.Errorf("mwcp: PairW row %d has %d cols, want %d", i, len(row), n)
		}
	}
	seen := make([]bool, n)
	for gi, g := range s.Groups {
		if len(g) == 0 {
			return fmt.Errorf("mwcp: group %d is empty", gi)
		}
		for _, c := range g {
			if c < 0 || c >= n {
				return fmt.Errorf("mwcp: group %d references candidate %d (n=%d)", gi, c, n)
			}
			if seen[c] {
				return fmt.Errorf("mwcp: candidate %d in multiple groups", c)
			}
			seen[c] = true
		}
	}
	return nil
}

// Value computes the objective of a complete pick (one candidate index per
// group).
func (s *Selection) Value(pick []int) float64 {
	v := 0.0
	for i, c := range pick {
		v += s.NodeW[c]
		for _, d := range pick[i+1:] {
			v += s.PairW[c][d]
		}
	}
	return v
}

// SolveExact finds the optimal pick by branch and bound over groups.
// Groups are ordered smallest-first to tighten early pruning. The bound
// adds, for every unassigned group, its best node weight plus the best
// possible pairwise interaction with already-picked and future candidates
// (0 when all pair weights are non-positive, as in PACOR's cost model).
func SolveExact(s *Selection) ([]int, float64, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	order := make([]int, len(s.Groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(s.Groups[order[a]]) < len(s.Groups[order[b]])
	})

	// optimistic[g] = best node weight in group g plus best non-negative
	// pairwise weight it could collect from every other group.
	optimistic := make([]float64, len(s.Groups))
	for gi, g := range s.Groups {
		best := math.Inf(-1)
		for _, c := range g {
			v := s.NodeW[c]
			for gj, h := range s.Groups {
				if gj == gi {
					continue
				}
				bestPair := 0.0
				for _, d := range h {
					if w := s.PairW[c][d]; w > bestPair {
						bestPair = w
					}
				}
				v += bestPair
			}
			if v > best {
				best = v
			}
		}
		optimistic[gi] = best
	}

	bestVal := math.Inf(-1)
	var bestPick []int
	pick := make([]int, 0, len(s.Groups))

	var rec func(depth int, acc float64)
	rec = func(depth int, acc float64) {
		if depth == len(order) {
			if acc > bestVal {
				bestVal = acc
				bestPick = append([]int(nil), pick...)
			}
			return
		}
		// Upper bound for remaining groups.
		ub := acc
		for _, gi := range order[depth:] {
			ub += optimistic[gi]
		}
		if ub <= bestVal+1e-12 {
			return
		}
		gi := order[depth]
		for _, c := range s.Groups[gi] {
			delta := s.NodeW[c]
			for _, p := range pick {
				delta += s.PairW[c][p]
			}
			pick = append(pick, c)
			rec(depth+1, acc+delta)
			pick = pick[:len(pick)-1]
		}
	}
	rec(0, 0)
	if bestPick == nil {
		return nil, 0, errors.New("mwcp: no feasible pick (empty groups?)")
	}
	// Re-order bestPick back to group order.
	byGroup := make([]int, len(s.Groups))
	for i, gi := range order {
		byGroup[gi] = bestPick[i]
	}
	return byGroup, bestVal, nil
}

// SolveILP solves the selection with the linearized 0-1 program the paper
// feeds to Gurobi: x_c per candidate with one-per-group equality rows, and a
// product variable y_{cd} per nonzero pair weight, linearized according to
// the weight's sign.
func SolveILP(s *Selection) ([]int, float64, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(s.NodeW)
	group := make([]int, n)
	for i := range group {
		group[i] = -1
	}
	for gi, g := range s.Groups {
		for _, c := range g {
			group[c] = gi
		}
	}
	type pair struct{ a, b int }
	var pairs []pair
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if group[a] == -1 || group[b] == -1 || group[a] == group[b] {
				continue
			}
			if s.PairW[a][b] != 0 {
				pairs = append(pairs, pair{a, b})
			}
		}
	}
	nv := n + len(pairs)
	c := make([]float64, nv)
	binary := make([]bool, nv)
	upper := make([]float64, nv)
	for i := 0; i < n; i++ {
		c[i] = s.NodeW[i]
		binary[i] = true
		upper[i] = 1
	}
	var cons []lp.Constraint
	for _, g := range s.Groups {
		row := make([]float64, nv)
		for _, cand := range g {
			row[cand] = 1
		}
		cons = append(cons, lp.Constraint{Coef: row, Op: lp.EQ, RHS: 1})
	}
	for pi, pr := range pairs {
		yi := n + pi
		w := s.PairW[pr.a][pr.b]
		c[yi] = w
		upper[yi] = 1
		if w < 0 {
			// Maximization pushes y down; force y >= xa + xb - 1.
			row := make([]float64, nv)
			row[pr.a], row[pr.b], row[yi] = 1, 1, -1
			cons = append(cons, lp.Constraint{Coef: row, Op: lp.LE, RHS: 1})
		} else {
			// Maximization pushes y up; force y <= xa and y <= xb.
			ra := make([]float64, nv)
			ra[yi], ra[pr.a] = 1, -1
			cons = append(cons, lp.Constraint{Coef: ra, Op: lp.LE, RHS: 0})
			rb := make([]float64, nv)
			rb[yi], rb[pr.b] = 1, -1
			cons = append(cons, lp.Constraint{Coef: rb, Op: lp.LE, RHS: 0})
		}
	}
	// Warm-start the branch and bound with the local-search solution: its
	// objective usually prunes most of the tree immediately.
	var warm []float64
	if lpick, _, lerr := SolveLocal(s); lerr == nil {
		warm = make([]float64, nv)
		for _, cand := range lpick {
			warm[cand] = 1
		}
		for pi, pr := range pairs {
			if warm[pr.a] > 0.5 && warm[pr.b] > 0.5 {
				warm[n+pi] = 1
			} else if s.PairW[pr.a][pr.b] < 0 {
				warm[n+pi] = 0
			}
		}
	}
	sol, err := ilp.Solve(&ilp.Problem{C: c, Constraints: cons, Binary: binary, Upper: upper, Warm: warm})
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("mwcp: ILP status %v", sol.Status)
	}
	pick := make([]int, len(s.Groups))
	for gi, g := range s.Groups {
		pick[gi] = -1
		for _, cand := range g {
			if sol.X[cand] > 0.5 {
				pick[gi] = cand
				break
			}
		}
		if pick[gi] == -1 {
			return nil, 0, fmt.Errorf("mwcp: ILP left group %d unassigned", gi)
		}
	}
	return pick, s.Value(pick), nil
}

// SolveLocal runs a deterministic greedy construction followed by
// steepest-descent single-candidate swaps — the unconstrained quadratic
// programming flavor from the paper's reference [25], adapted to the
// one-per-group constraint by searching over feasible swaps only.
func SolveLocal(s *Selection) ([]int, float64, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	pick := make([]int, len(s.Groups))
	// Greedy: assign groups in size order, choosing the candidate with the
	// best marginal value against already-picked candidates.
	order := make([]int, len(s.Groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(s.Groups[order[a]]) < len(s.Groups[order[b]])
	})
	done := make([]bool, len(s.Groups))
	for _, gi := range order {
		best, bestVal := -1, math.Inf(-1)
		for _, cand := range s.Groups[gi] {
			v := s.NodeW[cand]
			for gj, p := range pick {
				if done[gj] {
					v += s.PairW[cand][p]
				}
			}
			if v > bestVal {
				best, bestVal = cand, v
			}
		}
		pick[gi] = best
		done[gi] = true
	}
	// Steepest-descent over single-group swaps, escalating to simultaneous
	// two-group swaps when no single swap improves (escapes the shallow
	// local optima that pairwise interaction terms create).
	const maxRounds = 1000
	for round := 0; round < maxRounds; round++ {
		if s.improveSingle(pick) {
			continue
		}
		if !s.improvePair(pick) {
			break
		}
	}
	return pick, s.Value(pick), nil
}

// marginal returns the objective contribution of placing cand in group gi
// against the current pick of all other groups.
func (s *Selection) marginal(pick []int, gi, cand int) float64 {
	v := s.NodeW[cand]
	for gj, p := range pick {
		if gj != gi {
			v += s.PairW[cand][p]
		}
	}
	return v
}

func (s *Selection) improveSingle(pick []int) bool {
	bestGain := 1e-12
	bestGroup, bestCand := -1, -1
	for gi, g := range s.Groups {
		curVal := s.marginal(pick, gi, pick[gi])
		for _, cand := range g {
			if cand == pick[gi] {
				continue
			}
			if gain := s.marginal(pick, gi, cand) - curVal; gain > bestGain {
				bestGain, bestGroup, bestCand = gain, gi, cand
			}
		}
	}
	if bestGroup == -1 {
		return false
	}
	pick[bestGroup] = bestCand
	return true
}

func (s *Selection) improvePair(pick []int) bool {
	base := s.Value(pick)
	for gi := 0; gi < len(s.Groups); gi++ {
		for gj := gi + 1; gj < len(s.Groups); gj++ {
			for _, a := range s.Groups[gi] {
				for _, b := range s.Groups[gj] {
					if a == pick[gi] && b == pick[gj] {
						continue
					}
					oa, ob := pick[gi], pick[gj]
					pick[gi], pick[gj] = a, b
					if s.Value(pick) > base+1e-12 {
						return true
					}
					pick[gi], pick[gj] = oa, ob
				}
			}
		}
	}
	return false
}
