package pacor

import (
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/route"
)

// ClusterResult reports one cluster's routing outcome.
type ClusterResult struct {
	ID     int
	Valves []int
	// LM records whether the cluster carried the length-matching constraint
	// as given (before any de-clustering).
	LM bool
	// Matched is true when the final per-valve channel lengths to the shared
	// point agree within the design's delta.
	Matched bool
	// Demoted is true when the LM constraint had to be abandoned (failed
	// negotiation routing or escape de-clustering).
	Demoted bool
	// Routed is true when the cluster reached a control pin.
	Routed bool
	// Paths are the cluster-internal channel segments.
	Paths []grid.Path
	// Escape is the channel from the cluster's take-off to its pin.
	Escape grid.Path
	// Pin is the assigned control pin (valid when Routed).
	Pin geom.Pt
	// FullLens are the per-valve channel lengths to the shared point
	// (tree root or pair tap); nil for ordinary clusters.
	FullLens []int
}

// InternalLen sums the cluster-internal channel length.
func (c *ClusterResult) InternalLen() int {
	n := 0
	for _, p := range c.Paths {
		n += p.Len()
	}
	return n
}

// TotalLen sums internal and escape channel length.
func (c *ClusterResult) TotalLen() int { return c.InternalLen() + c.Escape.Len() }

// Result is the outcome of one full flow run — the row data of Table 2.
type Result struct {
	Mode     Mode
	Clusters []ClusterResult
	// MultiClusters counts clusters with >= 2 valves ("#Clusters").
	MultiClusters int
	// MatchedClusters counts multi-valve clusters routed with the
	// length-matching constraint satisfied ("#Matched Clusters").
	MatchedClusters int
	// MatchedLen is the summed channel length of matched clusters
	// ("Total matched channel length").
	MatchedLen int
	// TotalLen is the summed channel length of all channels
	// ("Total channel length").
	TotalLen int
	// RoutedValves / TotalValves give the routing completion rate.
	RoutedValves, TotalValves int
	Runtime                   time.Duration
	// StageTimes records wall time per flow stage (clustering, lmrouting,
	// mstrouting, escape, detour) for profiling and the runtime columns.
	StageTimes map[string]time.Duration
	// Negotiate aggregates Algorithm 1's work and incremental-cache counters
	// across every negotiation call of the run (LM routing, rescue, refine).
	// The counters are deterministic for every worker count; Rounds is also
	// cache-independent, while a cache hit replaces exactly one search
	// (Searches with the cache off equals Searches + CacheHits with it on).
	Negotiate route.NegotiateStats
	// LMReuse reports what the cross-run LM-stage seed replayed (zero when
	// the run was not seeded; see Params.LMSeed).
	LMReuse LMReuseStats
	// EscapeHier aggregates the hierarchical escape router's per-stage work
	// across the escape retries (zero when the hierarchy is off or the grid
	// is below its auto threshold; see Params.Hier). The negotiation
	// hierarchy's counters live in Negotiate.Hier.
	EscapeHier route.HierStats
}

// CompletionRate returns the fraction of valves connected to a control pin.
func (r *Result) CompletionRate() float64 {
	if r.TotalValves == 0 {
		return 1
	}
	return float64(r.RoutedValves) / float64(r.TotalValves)
}

// AllPaths returns every channel path of the solution (for rendering and
// design-rule verification).
func (r *Result) AllPaths() []grid.Path {
	var out []grid.Path
	for i := range r.Clusters {
		out = append(out, r.Clusters[i].Paths...)
		if len(r.Clusters[i].Escape) > 0 {
			out = append(out, r.Clusters[i].Escape)
		}
	}
	return out
}
