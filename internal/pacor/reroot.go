package pacor

import (
	"repro/internal/detour"
	"repro/internal/dme"
	"repro/internal/geom"
	"repro/internal/grid"
)

// rerootTreeNet rebuilds a routed tree cluster's detour net with full paths
// measured to a new take-off cell lying anywhere on the net. When escape
// routing cannot reach the DME root (the root can be sealed by the
// cluster's own channels), the flow takes off elsewhere on the tree; the
// length-matching constraint then applies to the channel lengths from each
// valve to that take-off, which is exactly the net re-rooted at the
// take-off cell. Returns nil when the take-off is not on the net.
func rerootTreeNet(tr *dme.Tree, net *detour.Net, takeoff geom.Pt) *detour.Net {
	edges := tr.Edges()
	segs := make([]grid.Path, len(net.Segments))
	copy(segs, net.Segments)
	k, j := locate(segs, takeoff)
	if k < 0 {
		return nil
	}
	parentEdgeOf := make(map[int]int, len(edges))
	for ei, e := range edges {
		parentEdgeOf[e.Child] = ei
	}
	leafOf := make(map[int]int)
	for ni, nd := range tr.Topo.Nodes {
		if nd.Sink >= 0 {
			leafOf[nd.Sink] = ni
		}
	}
	pathToRoot := func(n int) []int {
		var out []int
		for n != tr.Topo.Root {
			e := parentEdgeOf[n]
			out = append(out, e)
			n = edges[e].Parent
		}
		return out
	}
	// Split segment k at the take-off: child side keeps index k, parent side
	// appends as kB. Either part may be a single cell (zero length).
	childPart := segs[k][:j+1].Clone()
	parentPart := segs[k][j:].Clone()
	segs[k] = childPart
	kB := len(segs)
	segs = append(segs, parentPart)

	full := make([][]int, len(tr.Sinks))
	for s := range tr.Sinks {
		ptr := pathToRoot(leafOf[s])
		if idx := indexOf(ptr, k); idx >= 0 {
			// The leaf lies under edge k: climb to k's child, then the child
			// part of the split segment reaches the take-off.
			fp := append([]int(nil), ptr[:idx]...)
			full[s] = append(fp, k)
			continue
		}
		// Climb to the LCA with k's parent node, descend to it, then take
		// the parent part of the split segment.
		pPath := pathToRoot(edges[k].Parent)
		i1, i2 := len(ptr), len(pPath)
		for i1 > 0 && i2 > 0 && ptr[i1-1] == pPath[i2-1] {
			i1--
			i2--
		}
		fp := append([]int(nil), ptr[:i1]...)
		for i := i2 - 1; i >= 0; i-- {
			fp = append(fp, pPath[i])
		}
		full[s] = append(fp, kB)
	}
	return &detour.Net{Segments: segs, FullPaths: full}
}

// rerootPairNet rebuilds a pair cluster's net around a new tap cell on
// either arm.
func rerootPairNet(net *detour.Net, takeoff geom.Pt) *detour.Net {
	if len(net.Segments) != 2 {
		return nil
	}
	// Whole channel: valve0 .. old tap .. valve1.
	arm0, arm1 := net.Segments[0], net.Segments[1]
	whole := arm0.Clone()
	rev := arm1.Reverse()
	whole = append(whole, rev[1:]...) // skip the shared tap cell
	for i, c := range whole {
		if c == takeoff {
			return &detour.Net{
				Segments: []grid.Path{
					whole[:i+1].Clone(),
					whole[i:].Clone().Reverse(),
				},
				FullPaths: [][]int{{0}, {1}},
			}
		}
	}
	return nil
}

func locate(segs []grid.Path, c geom.Pt) (int, int) {
	for si, s := range segs {
		for ci, cell := range s {
			if cell == c {
				return si, ci
			}
		}
	}
	return -1, -1
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
