package pacor

import (
	"bytes"
	"testing"

	"repro/internal/bench"
)

// TestWorkerCountByteIdentical routes the synthetic Table 1 benchmarks with
// every worker count and requires the serialized results to be byte-for-byte
// identical: the parallel scheduler must be an execution detail, invisible
// in the output. Runtime fields are zeroed before comparison — wall time is
// the one thing allowed to differ.
func TestWorkerCountByteIdentical(t *testing.T) {
	names := []string{"S1", "S2", "S3", "S4", "S5"}
	if testing.Short() {
		names = names[:3]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			var want []byte
			for _, workers := range []int{0, 1, 2, 4, 8} {
				d, err := bench.Generate(name)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				params := DefaultParams()
				params.Workers = workers
				res, err := Route(d, params)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				res.Runtime = 0
				res.StageTimes = nil
				var buf bytes.Buffer
				if err := res.WriteJSON(&buf); err != nil {
					t.Fatalf("workers=%d: marshal: %v", workers, err)
				}
				if want == nil {
					want = buf.Bytes()
					continue
				}
				if !bytes.Equal(want, buf.Bytes()) {
					t.Errorf("workers=%d: routed result differs from sequential (workers=0)", workers)
				}
			}
		})
	}
}
