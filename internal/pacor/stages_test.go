package pacor

import (
	"testing"
)

func TestStageTimesRecorded(t *testing.T) {
	d := testDesign(t)
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"clustering", "lmrouting", "mstrouting", "escape", "detour"} {
		if _, ok := res.StageTimes[stage]; !ok {
			t.Errorf("stage %q missing from StageTimes", stage)
		}
	}
	var sum int64
	for _, d := range res.StageTimes {
		if d < 0 {
			t.Error("negative stage time")
		}
		sum += d.Nanoseconds()
	}
	if sum > res.Runtime.Nanoseconds() {
		t.Errorf("stage times %v exceed total runtime %v", sum, res.Runtime)
	}
}

func TestExactClusteringMode(t *testing.T) {
	d := testDesign(t)
	params := DefaultParams()
	params.ExactClustering = true
	res, err := Route(d, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate() != 1 {
		t.Errorf("completion %.2f", res.CompletionRate())
	}
	if err := Verify(d, res); err != nil {
		t.Error(err)
	}
	// Exact clustering must not create more clusters than the greedy mode.
	greedy, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) > len(greedy.Clusters) {
		t.Errorf("exact %d clusters > greedy %d", len(res.Clusters), len(greedy.Clusters))
	}
}
