// Package pacor orchestrates the complete control-layer routing flow of the
// paper (Figure 2): valve clustering, length-matching-aware cluster routing
// (DME candidates -> MWCP selection -> negotiation routing), MST-based
// routing for ordinary clusters, min-cost-flow escape routing to control
// pins with de-clustering retries, and final path detouring for the
// length-matching constraint.
package pacor

import (
	"io"

	"repro/internal/route"
	"repro/internal/seltree"
)

// Mode selects the flow variant, matching the self-comparison columns of
// Table 2.
type Mode int

// Flow variants.
const (
	// ModePACOR is the full flow: candidate selection, escape routing, and
	// final-stage detouring.
	ModePACOR Mode = iota
	// ModeWithoutSelection ("w/o Sel") skips the MWCP candidate-tree
	// selection and takes each cluster's first candidate.
	ModeWithoutSelection
	// ModeDetourFirst detours for length matching immediately after the
	// negotiation-based routing stage, before escape routing.
	ModeDetourFirst
)

func (m Mode) String() string {
	switch m {
	case ModePACOR:
		return "PACOR"
	case ModeWithoutSelection:
		return "w/o Sel"
	case ModeDetourFirst:
		return "Detour First"
	}
	return "unknown"
}

// Params are the flow's tuning knobs; defaults mirror the paper.
type Params struct {
	Mode Mode
	// MaxCandidates bounds candidate Steiner trees per cluster.
	MaxCandidates int
	// Lambda weighs mismatch vs overlap in selection (Eq. 2-3).
	Lambda float64
	// Negotiate holds Algorithm 1's bg/alpha/gamma.
	Negotiate route.NegotiateParams
	// Workers sets the worker-pool size for the flow's parallel routing
	// stages (negotiation rounds, ordinary-cluster MST routing, escape
	// rip-up rerouting). 0 or 1 runs everything sequentially; every value
	// produces byte-identical results (see route.RunScheduled). It also
	// seeds Negotiate.Workers unless that is set explicitly.
	Workers int
	// Queue selects the open-list implementation behind every grid search of
	// the flow (route.QueueMode). Like Workers and the cache knobs it is a
	// pure wall-clock knob — routed output is byte-identical across modes —
	// and it seeds Negotiate.Queue unless that is set explicitly.
	Queue route.QueueMode
	// Hier configures the hierarchical two-stage router (route.HierParams)
	// for both the negotiation searches (exact — output unchanged) and the
	// escape stage (approximate — pin assignment and total length may differ
	// from the flat flow network; Result.EscapeHier reports the stage's
	// work). The zero value is auto: hierarchical only above the cell
	// threshold, so every design at or below 256x256 routes exactly as
	// before. It seeds Negotiate.Hier unless that is set explicitly.
	Hier route.HierParams
	// Solver picks the MWCP solver (the paper adopted ILP).
	Solver seltree.Solver
	// EscapeRetries bounds the de-clustering/rip-up escape rounds.
	EscapeRetries int
	// ExactClustering replaces the greedy max-clique heuristic of the valve
	// clustering stage with exact maximum-clique extraction (slower; for
	// small designs and ablations).
	ExactClustering bool
	// Trace, when non-nil, receives escape-stage diagnostics. Library code
	// never writes to process stdout (the nostdout invariant): callers that
	// want tracing inject the destination here.
	Trace io.Writer
	// NegSeed, when non-nil, warm-starts the flow's main length-matching
	// negotiation from a previous run's captured transcript
	// (route.NegotiationSeed; designcache feeds this on a near-hit). Seeding
	// never changes routed output — see seed.go's cone-disjointness gate —
	// and only the main call consumes it: rescue and refinement negotiate
	// different edge sets against different base maps, where the parent
	// transcript does not apply.
	NegSeed *route.NegotiationSeed
	// NegCapture, when non-nil, receives the main negotiation call's full
	// transcript for use as a later run's NegSeed.
	NegCapture *route.NegotiationSeed
	// LMSeed, when non-nil, warm-starts the candidate-generation and MWCP
	// selection sub-stage from a previous run's capture (see lmseed.go):
	// clusters whose sink sequence matches and whose construction read cone
	// avoids every changed cell replay their candidates, and the selection
	// replays when the whole instance fingerprint matches. Like NegSeed it
	// never changes routed output.
	LMSeed *LMSeed
	// LMCapture, when non-nil, receives this run's candidate/selection
	// capture for use as a later run's LMSeed.
	LMCapture *LMSeed
}

// DefaultParams returns the paper's settings.
func DefaultParams() Params {
	return Params{
		Mode:          ModePACOR,
		MaxCandidates: 6,
		Lambda:        0.1,
		Negotiate:     route.DefaultNegotiateParams(),
		Solver:        seltree.SolverILP,
		EscapeRetries: 6,
	}
}
