package pacor

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/valve"
)

// testDesign builds a 30x30 chip: one 4-valve LM cluster, one 2-valve LM
// pair, two ordinary valves, a few obstacles, pins along the boundary.
func testDesign(t *testing.T) *valve.Design {
	t.Helper()
	seq := func(s string) valve.Seq {
		q, err := valve.ParseSeq(s)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	d := &valve.Design{
		Name: "unit", W: 30, H: 30, Delta: 1,
		Valves: []valve.Valve{
			// LM cluster of four (diagonal pairs for non-degenerate DME).
			{ID: 0, Pos: geom.Pt{X: 6, Y: 6}, Seq: seq("0101")},
			{ID: 1, Pos: geom.Pt{X: 14, Y: 10}, Seq: seq("0101")},
			{ID: 2, Pos: geom.Pt{X: 6, Y: 18}, Seq: seq("010X")},
			{ID: 3, Pos: geom.Pt{X: 14, Y: 22}, Seq: seq("0101")},
			// LM pair.
			{ID: 4, Pos: geom.Pt{X: 22, Y: 8}, Seq: seq("1010")},
			{ID: 5, Pos: geom.Pt{X: 26, Y: 14}, Seq: seq("1010")},
			// Ordinary valves (mutually incompatible with everything).
			{ID: 6, Pos: geom.Pt{X: 22, Y: 22}, Seq: seq("0011")},
			{ID: 7, Pos: geom.Pt{X: 10, Y: 26}, Seq: seq("1100")},
		},
		Obstacles: []geom.Pt{
			{X: 18, Y: 14}, {X: 18, Y: 15}, {X: 18, Y: 16}, {X: 3, Y: 12},
		},
		LMClusters: [][]int{{0, 1, 2, 3}, {4, 5}},
	}
	for x := 2; x < 28; x += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: x, Y: 0}, geom.Pt{X: x, Y: 29})
	}
	for y := 2; y < 28; y += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: 0, Y: y}, geom.Pt{X: 29, Y: y})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouteFullFlow(t *testing.T) {
	d := testDesign(t)
	for _, mode := range []Mode{ModePACOR, ModeWithoutSelection, ModeDetourFirst} {
		params := DefaultParams()
		params.Mode = mode
		res, err := Route(d, params)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.CompletionRate() != 1.0 {
			t.Errorf("%v: completion %.2f, want 1.0", mode, res.CompletionRate())
		}
		if err := Verify(d, res); err != nil {
			t.Errorf("%v: verification failed: %v", mode, err)
		}
		if res.MultiClusters != 2 {
			t.Errorf("%v: MultiClusters = %d, want 2", mode, res.MultiClusters)
		}
		if res.TotalLen <= 0 {
			t.Errorf("%v: TotalLen = %d", mode, res.TotalLen)
		}
	}
}

func TestRoutePACORMatchesClusters(t *testing.T) {
	d := testDesign(t)
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedClusters != 2 {
		t.Fatalf("matched = %d, want 2 (ample space)", res.MatchedClusters)
	}
	for _, c := range res.Clusters {
		if !c.LM || c.Demoted {
			continue
		}
		if len(c.FullLens) == 0 {
			t.Errorf("cluster %d: no full lengths", c.ID)
			continue
		}
		mn, mx := c.FullLens[0], c.FullLens[0]
		for _, l := range c.FullLens {
			if l < mn {
				mn = l
			}
			if l > mx {
				mx = l
			}
		}
		if mx-mn > d.Delta {
			t.Errorf("cluster %d: spread %d exceeds delta %d (lens %v)",
				c.ID, mx-mn, d.Delta, c.FullLens)
		}
	}
	if res.MatchedLen <= 0 || res.MatchedLen > res.TotalLen {
		t.Errorf("MatchedLen = %d, TotalLen = %d", res.MatchedLen, res.TotalLen)
	}
}

func TestRouteDeterministic(t *testing.T) {
	d := testDesign(t)
	a, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLen != b.TotalLen || a.MatchedClusters != b.MatchedClusters ||
		a.MatchedLen != b.MatchedLen {
		t.Errorf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.TotalLen, a.MatchedClusters, a.MatchedLen,
			b.TotalLen, b.MatchedClusters, b.MatchedLen)
	}
}

func TestRouteSingletonOnly(t *testing.T) {
	seq := func(s string) valve.Seq { q, _ := valve.ParseSeq(s); return q }
	d := &valve.Design{
		Name: "solo", W: 10, H: 10, Delta: 1,
		Valves: []valve.Valve{
			{ID: 0, Pos: geom.Pt{X: 5, Y: 5}, Seq: seq("01")},
			{ID: 1, Pos: geom.Pt{X: 3, Y: 7}, Seq: seq("10")},
		},
		Pins: []geom.Pt{{X: 0, Y: 5}, {X: 9, Y: 5}, {X: 5, Y: 0}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate() != 1.0 {
		t.Fatalf("completion %.2f", res.CompletionRate())
	}
	if res.MultiClusters != 0 || res.MatchedClusters != 0 {
		t.Error("no multi-valve clusters expected")
	}
	if err := Verify(d, res); err != nil {
		t.Error(err)
	}
}

func TestRouteInvalidDesign(t *testing.T) {
	d := &valve.Design{Name: "bad", W: 0, H: 5}
	if _, err := Route(d, DefaultParams()); err == nil {
		t.Error("invalid design must error")
	}
}

func TestVerifyCatchesOverlap(t *testing.T) {
	d := testDesign(t)
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: make one cluster's escape path overlap another's channel.
	var donor, victim *ClusterResult
	for i := range res.Clusters {
		if len(res.Clusters[i].Escape) > 0 {
			if donor == nil {
				donor = &res.Clusters[i]
			} else {
				victim = &res.Clusters[i]
				break
			}
		}
	}
	if donor == nil || victim == nil {
		t.Skip("need two escape paths")
	}
	victim.Escape = donor.Escape.Clone()
	if err := Verify(d, res); err == nil {
		t.Error("Verify accepted overlapping channels")
	}
}
