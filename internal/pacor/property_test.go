package pacor

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/valve"
)

// randomDesign builds a random small-but-routable design: valves with
// clearance, grouped codes, boundary pins.
func randomDesign(rng *rand.Rand) *valve.Design {
	w := 24 + rng.Intn(24)
	h := 24 + rng.Intn(24)
	d := &valve.Design{Name: "rand", W: w, H: h, Delta: 1}
	occupied := map[geom.Pt]bool{}
	clearAt := func(p geom.Pt) bool {
		for dx := -2; dx <= 2; dx++ {
			for dy := -2; dy <= 2; dy++ {
				if geom.Abs(dx)+geom.Abs(dy) <= 2 && occupied[geom.Pt{X: p.X + dx, Y: p.Y + dy}] {
					return false
				}
			}
		}
		return true
	}
	place := func() (geom.Pt, bool) {
		for try := 0; try < 500; try++ {
			p := geom.Pt{X: 2 + rng.Intn(w-4), Y: 2 + rng.Intn(h-4)}
			if clearAt(p) {
				occupied[p] = true
				return p, true
			}
		}
		return geom.Pt{}, false
	}
	// Obstacles.
	for i := 0; i < rng.Intn(20); i++ {
		p := geom.Pt{X: 2 + rng.Intn(w-4), Y: 2 + rng.Intn(h-4)}
		if !occupied[p] {
			occupied[p] = true
			d.Obstacles = append(d.Obstacles, p)
		}
	}
	// Clusters.
	nClusters := 1 + rng.Intn(3)
	id := 0
	code := 0
	mkSeq := func(c int) valve.Seq {
		sq := make(valve.Seq, 6)
		for b := 0; b < 6; b++ {
			if c&(1<<b) != 0 {
				sq[b] = valve.Closed
			} else {
				sq[b] = valve.Open
			}
		}
		return sq
	}
	for ci := 0; ci < nClusters; ci++ {
		size := 2 + rng.Intn(3)
		var cluster []int
		sq := mkSeq(code)
		code++
		for k := 0; k < size; k++ {
			p, ok := place()
			if !ok {
				break
			}
			d.Valves = append(d.Valves, valve.Valve{ID: id, Pos: p, Seq: sq})
			cluster = append(cluster, id)
			id++
		}
		if len(cluster) >= 2 {
			d.LMClusters = append(d.LMClusters, cluster)
		}
	}
	// Singletons.
	for k := 0; k < rng.Intn(4); k++ {
		p, ok := place()
		if !ok {
			break
		}
		d.Valves = append(d.Valves, valve.Valve{ID: id, Pos: p, Seq: mkSeq(code)})
		code++
		id++
	}
	// Pins on all four sides.
	for x := 1; x < w-1; x += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: x, Y: 0}, geom.Pt{X: x, Y: h - 1})
	}
	for y := 1; y < h-1; y += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: 0, Y: y}, geom.Pt{X: w - 1, Y: y})
	}
	return d
}

// TestRouteRandomDesigns: random designs route without error, pass the
// independent design-rule verifier, and achieve full completion (these
// instances are sparse by construction).
func TestRouteRandomDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		d := randomDesign(rng)
		if len(d.Valves) == 0 {
			continue
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: generated design invalid: %v", trial, err)
		}
		for _, mode := range []Mode{ModePACOR, ModeWithoutSelection, ModeDetourFirst} {
			params := DefaultParams()
			params.Mode = mode
			res, err := Route(d, params)
			if err != nil {
				t.Fatalf("trial %d/%v: %v", trial, mode, err)
			}
			if err := Verify(d, res); err != nil {
				t.Fatalf("trial %d/%v: %v", trial, mode, err)
			}
			if res.CompletionRate() != 1.0 {
				t.Errorf("trial %d/%v: completion %.3f (%dx%d, %d valves)",
					trial, mode, res.CompletionRate(), d.W, d.H, len(d.Valves))
			}
		}
	}
}

// TestRouteSealedValveReportsIncompletion: a valve walled in by obstacles
// cannot route; the flow must degrade gracefully (report, not panic, and
// route everything else).
func TestRouteSealedValveReportsIncompletion(t *testing.T) {
	seq := func(s string) valve.Seq { q, _ := valve.ParseSeq(s); return q }
	d := &valve.Design{
		Name: "sealed", W: 16, H: 16, Delta: 1,
		Valves: []valve.Valve{
			{ID: 0, Pos: geom.Pt{X: 8, Y: 8}, Seq: seq("01")},
			{ID: 1, Pos: geom.Pt{X: 3, Y: 3}, Seq: seq("10")},
		},
		Obstacles: []geom.Pt{
			{X: 7, Y: 8}, {X: 9, Y: 8}, {X: 8, Y: 7}, {X: 8, Y: 9},
		},
	}
	for x := 1; x < 15; x += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: x, Y: 0})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutedValves != 1 {
		t.Errorf("routed %d valves, want exactly the reachable one", res.RoutedValves)
	}
	if res.CompletionRate() != 0.5 {
		t.Errorf("completion %.2f, want 0.5", res.CompletionRate())
	}
	if err := Verify(d, res); err != nil {
		t.Errorf("partial solution must still verify: %v", err)
	}
}

// TestRerootTreeNetInvariants: re-rooting preserves total geometry and
// reports distances consistent with BFS over the channel cells.
func TestRerootTreeNetInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 15; trial++ {
		d := randomDesign(rng)
		if len(d.LMClusters) == 0 || len(d.LMClusters[0]) < 3 {
			continue
		}
		res, err := Route(d, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Clusters {
			if !c.LM || c.Demoted || len(c.FullLens) < 3 || len(c.Paths) < 2 {
				continue
			}
			// The escape take-off is the first escape cell; distances from
			// valves must match the cell-level BFS over the channels.
			if len(c.Escape) == 0 {
				continue
			}
			takeoff := c.Escape[0]
			spread := netCellSpreadFromPaths(c.Paths, valvePts(d, c.Valves))
			if sp, ok := spread[takeoff]; ok {
				mn, mx := minMax(c.FullLens)
				if mx-mn != sp {
					t.Errorf("trial %d cluster %d: FullLens spread %d, BFS spread %d",
						trial, c.ID, mx-mn, sp)
				}
			}
		}
	}
}

func valvePts(d *valve.Design, ids []int) []geom.Pt {
	pts := make([]geom.Pt, len(ids))
	for i, v := range ids {
		pts[i] = d.Valves[v].Pos
	}
	return pts
}

func minMax(xs []int) (int, int) {
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

// netCellSpreadFromPaths mirrors netCellSpread but over raw paths (test-side
// reimplementation to cross-check the production one).
func netCellSpreadFromPaths(paths []gridPath, leaves []geom.Pt) map[geom.Pt]int {
	adj := map[geom.Pt][]geom.Pt{}
	for _, seg := range paths {
		for i := 1; i < len(seg); i++ {
			adj[seg[i-1]] = append(adj[seg[i-1]], seg[i])
			adj[seg[i]] = append(adj[seg[i]], seg[i-1])
		}
	}
	var mn, mx map[geom.Pt]int
	for _, leaf := range leaves {
		dist := map[geom.Pt]int{leaf: 0}
		queue := []geom.Pt{leaf}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for _, q := range adj[c] {
				if _, seen := dist[q]; !seen {
					dist[q] = dist[c] + 1
					queue = append(queue, q)
				}
			}
		}
		if mn == nil {
			mn, mx = map[geom.Pt]int{}, map[geom.Pt]int{}
			for c, v := range dist {
				mn[c], mx[c] = v, v
			}
			continue
		}
		for c, v := range dist {
			if cur, ok := mn[c]; !ok || v < cur {
				mn[c] = v
			}
			if cur, ok := mx[c]; !ok || v > cur {
				mx[c] = v
			}
		}
	}
	out := map[geom.Pt]int{}
	for c := range mx {
		out[c] = mx[c] - mn[c]
	}
	return out
}

// gridPath aliases grid.Path for the cross-check helper.
type gridPath = grid.Path

// TestRouteDeclustersAcrossWall: two compatible valves separated by a full
// wall cannot form one routed cluster; the flow must de-cluster them and
// still connect each to its own pin (Figure 2's "Declustering" box).
func TestRouteDeclustersAcrossWall(t *testing.T) {
	seq := func(s string) valve.Seq { q, _ := valve.ParseSeq(s); return q }
	d := &valve.Design{
		Name: "wall", W: 17, H: 17, Delta: 1,
		Valves: []valve.Valve{
			{ID: 0, Pos: geom.Pt{X: 4, Y: 8}, Seq: seq("01")},
			{ID: 1, Pos: geom.Pt{X: 12, Y: 8}, Seq: seq("01")},
		},
	}
	for y := 0; y < 17; y++ {
		d.Obstacles = append(d.Obstacles, geom.Pt{X: 8, Y: y})
	}
	for y := 1; y < 16; y += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: 0, Y: y}, geom.Pt{X: 16, Y: y})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate() != 1 {
		t.Fatalf("completion %.2f, want 1 via de-clustering", res.CompletionRate())
	}
	if err := Verify(d, res); err != nil {
		t.Fatal(err)
	}
	// The two valves must end on different pins (different sides).
	pins := map[geom.Pt]bool{}
	for _, c := range res.Clusters {
		if c.Routed {
			pins[c.Pin] = true
		}
	}
	if len(pins) != 2 {
		t.Errorf("expected 2 distinct pins, got %d", len(pins))
	}
}

// TestRouteDeclustersLMAcrossWall: the same situation with a pre-specified
// LM cluster must demote it (unmatched) rather than fail.
func TestRouteDeclustersLMAcrossWall(t *testing.T) {
	seq := func(s string) valve.Seq { q, _ := valve.ParseSeq(s); return q }
	d := &valve.Design{
		Name: "wall-lm", W: 17, H: 17, Delta: 1,
		Valves: []valve.Valve{
			{ID: 0, Pos: geom.Pt{X: 4, Y: 8}, Seq: seq("01")},
			{ID: 1, Pos: geom.Pt{X: 12, Y: 8}, Seq: seq("01")},
		},
		LMClusters: [][]int{{0, 1}},
	}
	for y := 0; y < 17; y++ {
		d.Obstacles = append(d.Obstacles, geom.Pt{X: 8, Y: y})
	}
	for y := 1; y < 16; y += 2 {
		d.Pins = append(d.Pins, geom.Pt{X: 0, Y: y}, geom.Pt{X: 16, Y: y})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate() != 1 {
		t.Fatalf("completion %.2f", res.CompletionRate())
	}
	if res.MatchedClusters != 0 {
		t.Errorf("separated LM pair cannot be matched, got %d", res.MatchedClusters)
	}
	if err := Verify(d, res); err != nil {
		t.Fatal(err)
	}
}
