package pacor

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/grid"
)

// resultJSON is the stable on-disk schema for a routing result, consumed by
// downstream tooling (mask generation, visualization). Paths serialize as
// [x,y] cell lists.
type resultJSON struct {
	Mode            string        `json:"mode"`
	MultiClusters   int           `json:"clusters"`
	MatchedClusters int           `json:"matched_clusters"`
	MatchedLen      int           `json:"matched_length"`
	TotalLen        int           `json:"total_length"`
	RoutedValves    int           `json:"routed_valves"`
	TotalValves     int           `json:"total_valves"`
	RuntimeMS       float64       `json:"runtime_ms"`
	Clusters        []clusterJSON `json:"cluster_results"`
}

type clusterJSON struct {
	ID       int        `json:"id"`
	Valves   []int      `json:"valves"`
	LM       bool       `json:"length_matching"`
	Matched  bool       `json:"matched"`
	Demoted  bool       `json:"demoted"`
	Routed   bool       `json:"routed"`
	Pin      [2]int     `json:"pin,omitempty"`
	FullLens []int      `json:"full_lengths,omitempty"`
	Paths    [][][2]int `json:"paths,omitempty"`
	Escape   [][2]int   `json:"escape,omitempty"`
}

func pathJSON(p grid.Path) [][2]int {
	out := make([][2]int, len(p))
	for i, c := range p {
		out[i] = [2]int{c.X, c.Y}
	}
	return out
}

// WriteJSON serializes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	rj := resultJSON{
		Mode:            r.Mode.String(),
		MultiClusters:   r.MultiClusters,
		MatchedClusters: r.MatchedClusters,
		MatchedLen:      r.MatchedLen,
		TotalLen:        r.TotalLen,
		RoutedValves:    r.RoutedValves,
		TotalValves:     r.TotalValves,
		RuntimeMS:       float64(r.Runtime) / float64(time.Millisecond),
	}
	for i := range r.Clusters {
		c := &r.Clusters[i]
		cj := clusterJSON{
			ID: c.ID, Valves: c.Valves, LM: c.LM, Matched: c.Matched,
			Demoted: c.Demoted, Routed: c.Routed, FullLens: c.FullLens,
		}
		if c.Routed {
			cj.Pin = [2]int{c.Pin.X, c.Pin.Y}
			cj.Escape = pathJSON(c.Escape)
		}
		for _, p := range c.Paths {
			cj.Paths = append(cj.Paths, pathJSON(p))
		}
		rj.Clusters = append(rj.Clusters, cj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rj)
}
