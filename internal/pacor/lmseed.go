package pacor

// Cross-run reuse of the candidate-generation and selection sub-stage of
// routeLMClusters — the flow's single most expensive computation (the MWCP
// ILP alone is over half of a cold S5 route).
//
// Soundness rests on two determinism arguments:
//
//  1. Candidate replay (per cluster). dme.CandidatesTraced reads the
//     obstacle map only through freeNear probes; everything else it computes
//     is pure geometry of the sink sequence. The recorded probe cone is
//     therefore the construction's entire external read set, and the probe
//     sequence itself is determined by the obstacle content at the probed
//     cells (each probe's position depends only on earlier probe outcomes
//     and the sinks). So if a new run has the same sink sequence and its
//     obstacle map agrees with the captured run's on every recorded cell,
//     re-running would reproduce the capture exactly — the seed returns the
//     captured candidate trees without running it. The cone test is a
//     bitmap intersection against the diff of the two runs' obstacle
//     bitmaps, both taken at stage entry (static obstacles plus valves).
//
//  2. Selection replay (whole instance). seltree.Select is a deterministic
//     function of the ordered candidate lists and its config. The seed
//     fingerprints the ordered lists (dme.Fingerprint) and replays the
//     captured picks when the fingerprint, cluster count, and config (baked
//     into the seed's params signature) all match — whether the individual
//     lists were themselves replayed or regenerated to identical content.
//
// Both replays return exactly what recomputation would, so routed output is
// byte-identical with and without a seed for every hit/miss combination.
// LM clusters come from the design's explicit LMClusters list, so editing an
// ordinary valve leaves every sink sequence untouched: the common
// interactive edit replays candidate generation and selection wholesale and
// pays only for the stages that genuinely depend on the moved cell.

import (
	"fmt"

	"repro/internal/dme"
	"repro/internal/geom"
	"repro/internal/grid"
)

// LMClusterSeed is one captured tree cluster: its sink sequence (the cluster
// identity — candidate construction is order-sensitive), the read cone of
// its candidate construction, and the constructed candidates. Cands aliases
// the capturing run's trees; they are immutable after construction.
type LMClusterSeed struct {
	Sinks []geom.Pt
	Cone  []int32 // in-grid cells probed during construction (may repeat)
	Cands []*dme.Tree
	Hash  uint64 // dme.Fingerprint(Cands)
}

// LMSeed is a captured run of the candidate/selection sub-stage, usable to
// seed a later run on the same grid with the same stage parameters.
type LMSeed struct {
	W, H int
	Sig  string   // lmParamsSig of the capturing run
	Bits []uint64 // obstacle bitmap (static + valves) at stage entry

	// Clusters holds one entry per tree cluster, in flow order.
	Clusters []LMClusterSeed

	// SelKey fingerprints the selection instance (ordered candidate lists of
	// the non-demoted clusters); Picks is seltree.Select's output for it.
	// HavePicks distinguishes a captured selection from a mode that never
	// selects (w/o Sel) or an instance with no tree clusters.
	SelKey    uint64
	Picks     []int
	HavePicks bool
}

// SizeBytes estimates the seed's resident size (for cache accounting).
func (s *LMSeed) SizeBytes() int64 {
	if s == nil {
		return 0
	}
	n := int64(96) + int64(len(s.Bits))*8 + int64(len(s.Picks))*8
	for i := range s.Clusters {
		c := &s.Clusters[i]
		n += 64 + int64(len(c.Sinks))*16 + int64(len(c.Cone))*4
		for _, t := range c.Cands {
			n += 64 + int64(len(t.Sinks)+len(t.Pos))*16 + int64(len(t.Req)+len(t.Topo.Nodes))*8
		}
	}
	return n
}

// LMReuseStats reports what the LM-stage seed replayed in one run.
type LMReuseStats struct {
	// CandClusters counts tree clusters; CandReplayed of them took their
	// candidate lists from the seed instead of running construction.
	CandClusters int
	CandReplayed int
	// SelectionReplayed is true when the MWCP selection was served from the
	// seed (the ILP did not run).
	SelectionReplayed bool
}

// lmParamsSig captures every parameter the candidate/selection sub-stage
// depends on. Workers/Queue/Hier and the negotiation knobs are excluded:
// they do not reach this stage.
func lmParamsSig(p Params) string {
	return fmt.Sprintf("m=%d;mc=%d;l=%g;sv=%d;ec=%t", p.Mode, p.MaxCandidates, p.Lambda, p.Solver, p.ExactClustering)
}

// usable reports whether s can seed a run on grid w x h with signature sig.
func (s *LMSeed) usable(w, h int, sig string) bool {
	return s != nil && s.W == w && s.H == h && s.Sig == sig &&
		len(s.Bits) == (w*h+63)/64
}

// lookup returns the captured cluster with exactly the given sink sequence.
// Linear scan: tree-cluster counts are small (single digits on the paper
// benchmarks) and the scan runs once per cluster per route.
func (s *LMSeed) lookup(sinks []geom.Pt) *LMClusterSeed {
	for i := range s.Clusters {
		c := &s.Clusters[i]
		if len(c.Sinks) != len(sinks) {
			continue
		}
		same := true
		for j := range sinks {
			if c.Sinks[j] != sinks[j] {
				same = false
				break
			}
		}
		if same {
			return c
		}
	}
	return nil
}

// coneClean reports whether none of the probed cells changed between the
// captured and the current run (diff is the XOR of the two obstacle
// bitmaps). A nil diff means no seed — never clean.
func coneClean(cone []int32, diff []uint64) bool {
	if diff == nil {
		return false
	}
	for _, c := range cone {
		if diff[c>>6]&(1<<(uint(c)&63)) != 0 {
			return false
		}
	}
	return true
}

// diffBitmaps returns a XOR b (length-checked by the caller via usable).
func diffBitmaps(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// selInstanceKey fingerprints the whole selection instance from the ordered
// per-cluster candidate fingerprints.
func selInstanceKey(hashes []uint64) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(hashes)))
	for _, v := range hashes {
		mix(v)
	}
	return h
}

// conePt converts a probed cell to its bitmap index.
func conePt(g grid.Grid, p geom.Pt) int32 {
	return int32(p.Y*g.W + p.X)
}
