package pacor

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/detour"
	"repro/internal/geom"
	"repro/internal/grid"
)

func pairNet() *detour.Net {
	// valve0 (2,5) .. tap (8,5) .. valve1 (12,5)
	var arm0, arm1 grid.Path
	for x := 2; x <= 8; x++ {
		arm0 = append(arm0, geom.Pt{X: x, Y: 5})
	}
	for x := 12; x >= 8; x-- {
		arm1 = append(arm1, geom.Pt{X: x, Y: 5})
	}
	return &detour.Net{Segments: []grid.Path{arm0, arm1}, FullPaths: [][]int{{0}, {1}}}
}

func TestRerootPairNetMovesTap(t *testing.T) {
	net := pairNet()
	// Re-root at (10,5): arms become 8 and 2.
	re := rerootPairNet(net, geom.Pt{X: 10, Y: 5})
	if re == nil {
		t.Fatal("reroot failed")
	}
	l0, l1 := re.FullLen(0), re.FullLen(1)
	if l0+l1 != 10 {
		t.Errorf("arm lengths %d+%d, want total 10", l0, l1)
	}
	if !(l0 == 8 && l1 == 2) && !(l0 == 2 && l1 == 8) {
		t.Errorf("arms %d,%d, want 8 and 2", l0, l1)
	}
	// Endpoints: each arm runs valve .. new tap.
	for i, seg := range re.Segments {
		if seg[len(seg)-1] != (geom.Pt{X: 10, Y: 5}) {
			t.Errorf("segment %d does not end at the new tap: %v", i, seg[len(seg)-1])
		}
	}
}

func TestRerootPairNetAtValve(t *testing.T) {
	net := pairNet()
	re := rerootPairNet(net, geom.Pt{X: 2, Y: 5})
	if re == nil {
		t.Fatal("reroot at valve failed")
	}
	mn, mx := re.Spread()
	if mn != 0 || mx != 10 {
		t.Errorf("spread [%d,%d], want [0,10]", mn, mx)
	}
}

func TestRerootPairNetOffNet(t *testing.T) {
	if rerootPairNet(pairNet(), geom.Pt{X: 0, Y: 0}) != nil {
		t.Error("off-net takeoff must return nil")
	}
	if rerootPairNet(&detour.Net{Segments: []grid.Path{{{X: 0, Y: 0}}}}, geom.Pt{X: 0, Y: 0}) != nil {
		t.Error("malformed net must return nil")
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModePACOR:            "PACOR",
		ModeWithoutSelection: "w/o Sel",
		ModeDetourFirst:      "Detour First",
		Mode(99):             "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	d := testDesign(t)
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	paths := res.AllPaths()
	if len(paths) == 0 {
		t.Fatal("AllPaths empty")
	}
	total := 0
	for _, p := range paths {
		total += p.Len()
	}
	if total != res.TotalLen {
		t.Errorf("AllPaths length %d != TotalLen %d", total, res.TotalLen)
	}
	empty := &Result{}
	if empty.CompletionRate() != 1 {
		t.Error("zero-valve completion should be 1")
	}
	SetDebugEscape(true)
	SetDebugEscape(false)
}

// TestTraceOption checks that escape-stage tracing goes to the injected
// writer — and only there — instead of process stdout.
func TestTraceOption(t *testing.T) {
	d := testDesign(t)
	var buf bytes.Buffer
	params := DefaultParams()
	params.Trace = &buf
	if _, err := Route(d, params); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "escape round") {
		t.Errorf("trace writer got no escape-round lines; got %q", buf.String())
	}

	// Quiet by default: no trace writer, no output.
	buf.Reset()
	if _, err := Route(d, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("default params wrote %q to a stale buffer", buf.String())
	}
}
