package pacor

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	d := testDesign(t)
	res, err := Route(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back["mode"] != "PACOR" {
		t.Errorf("mode = %v", back["mode"])
	}
	if int(back["total_valves"].(float64)) != len(d.Valves) {
		t.Error("total_valves wrong")
	}
	clusters, ok := back["cluster_results"].([]interface{})
	if !ok || len(clusters) != len(res.Clusters) {
		t.Fatalf("cluster_results count wrong")
	}
	first := clusters[0].(map[string]interface{})
	if _, ok := first["paths"]; !ok {
		t.Error("paths missing for routed multi-valve cluster")
	}
	if int(back["total_length"].(float64)) != res.TotalLen {
		t.Error("total_length mismatch")
	}
}
