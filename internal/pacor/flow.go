package pacor

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/detour"
	"repro/internal/dme"
	"repro/internal/escape"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/mstroute"
	"repro/internal/route"
	"repro/internal/seltree"
	"repro/internal/valve"
)

// debugEscape routes escape-stage tracing to stderr when enabled via
// SetDebugEscape (tests and debugging only); Params.Trace takes
// precedence and needs no global state.
var debugEscape = false

// tracef writes escape-stage diagnostics to w; a nil writer silences it.
func tracef(w io.Writer, format string, args ...any) {
	if w == nil {
		return
	}
	_, _ = fmt.Fprintf(w, format, args...) //pacor:allow liberrs trace output is best-effort diagnostics
}

// traceWriter resolves the effective trace destination for one flow run.
func traceWriter(params Params) io.Writer {
	if params.Trace != nil {
		return params.Trace
	}
	if debugEscape {
		return os.Stderr
	}
	return nil
}

// cluster kinds
const (
	kindTree = iota // LM cluster with >= 3 valves: DME Steiner tree
	kindPair        // LM cluster with exactly 2 valves: direct edge + middle tap
	kindOrd         // ordinary cluster: MST routing, free take-off
)

// flowCluster is the mutable per-cluster state of one flow run.
type flowCluster struct {
	id     int
	valves []int
	lm     bool
	kind   int

	tree  *dme.Tree
	cands []*dme.Tree // candidate trees (kindTree only)
	net   *detour.Net
	// paths are the cluster-internal channel segments. For LM clusters this
	// aliases net.Segments.
	paths []grid.Path

	demoted bool
	// relaxTap frees the escape take-off to any channel cell of an LM
	// cluster whose preferred tap (tree root / pair middle) is unreachable;
	// the net is re-rooted at the chosen take-off afterwards, keeping the
	// length-matching constraint alive.
	relaxTap bool
	routed   bool
	escape   grid.Path
	pin      geom.Pt
}

func (fc *flowCluster) positions(d *valve.Design) []geom.Pt {
	pts := make([]geom.Pt, len(fc.valves))
	for i, v := range fc.valves {
		pts[i] = d.Valves[v].Pos
	}
	return pts
}

// Route runs the full PACOR flow on the design.
func Route(d *valve.Design, params Params) (*Result, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	g := grid.New(d.W, d.H)
	obs := grid.NewObsMap(g)
	for _, o := range d.Obstacles {
		obs.Set(o, true)
	}
	for _, v := range d.Valves {
		obs.Set(v.Pos, true)
	}
	// The flow's sequential stages share one search workspace; the parallel
	// stages (negotiation rounds, per-cluster batches) draw one workspace per
	// worker from the grid-keyed pool inside route.RunScheduled. One
	// workspace per goroutine is the rule.
	ws := route.NewWorkspace(g)
	ws.SetQueueMode(params.Queue)
	if params.Negotiate.Workers == 0 {
		params.Negotiate.Workers = params.Workers
	}
	if params.Negotiate.Queue == route.QueueAuto {
		params.Negotiate.Queue = params.Queue
	}
	if params.Negotiate.Hier == (route.HierParams{}) {
		params.Negotiate.Hier = params.Hier
	}

	stageTimes := map[string]time.Duration{}
	stage := func(name string, since time.Time) {
		stageTimes[name] += time.Since(since)
	}

	// Stage 1: valve clustering (Figure 2).
	t0 := time.Now()
	var part *cluster.Result
	if params.ExactClustering {
		part = cluster.PartitionExact(d)
	} else {
		part = cluster.Partition(d)
	}
	var fcs []*flowCluster
	for _, c := range part.Clusters {
		fc := &flowCluster{id: c.ID, valves: c.Valves, lm: c.LM}
		switch {
		case c.LM && len(c.Valves) >= 3:
			fc.kind = kindTree
		case c.LM && len(c.Valves) == 2:
			fc.kind = kindPair
		default:
			fc.kind = kindOrd
		}
		fcs = append(fcs, fc)
	}

	stage("clustering", t0)

	// Stage 2: length-matching cluster routing. Every negotiation call of the
	// run accumulates its work counters into one stats record.
	var negStats route.NegotiateStats
	var lmStats LMReuseStats
	t0 = time.Now()
	routeLMClusters(ws, d, obs, fcs, params, &negStats, &lmStats)

	// Repair pass: re-realize badly routed trees (the paper reconstructs the
	// DME tree when negotiation exceeds its iteration bound; congested
	// realizations with hopeless spreads get the same treatment here).
	refineLMClusters(ws, d, obs, fcs, params, &negStats)
	stage("lmrouting", t0)

	// Detour-first variant matches lengths before escape routing.
	if params.Mode == ModeDetourFirst {
		t0 = time.Now()
		matchAll(ws, obs, fcs, d.Delta)
		stage("detour", t0)
	}

	// Stage 3: MST routing for ordinary (and demoted) clusters.
	t0 = time.Now()
	fcs = routeOrdinary(d, obs, fcs, params.Workers, params.Queue)
	stage("mstrouting", t0)

	// Stage 4: escape routing with de-clustering retries.
	t0 = time.Now()
	var escHier route.HierStats
	fcs = escapeRoute(ws, d, obs, fcs, params, &escHier)
	stage("escape", t0)

	// Stage 5: final path detouring (PACOR and w/o Sel variants).
	if params.Mode != ModeDetourFirst {
		t0 = time.Now()
		matchAll(ws, obs, fcs, d.Delta)
		stage("detour", t0)
	}

	res := assemble(d, fcs, params.Mode, time.Since(start))
	res.StageTimes = stageTimes
	res.Negotiate = negStats
	res.LMReuse = lmStats
	res.EscapeHier = escHier
	return res, nil
}

// routeLMClusters computes candidate trees, selects one per cluster (per
// mode), and routes all LM clusters jointly with negotiation. Clusters whose
// edges cannot all be routed are demoted to ordinary MST routing.
func routeLMClusters(ws *route.Workspace, d *valve.Design, obs *grid.ObsMap, fcs []*flowCluster, params Params, negStats *route.NegotiateStats, lmStats *LMReuseStats) {
	// Candidate construction per cluster is independent (read-only over the
	// static obstacle map), so it fans out across goroutines; results are
	// collected by index, keeping the flow deterministic.
	var pending []*flowCluster
	for _, fc := range fcs {
		if fc.kind == kindTree {
			pending = append(pending, fc)
		}
	}

	// Cross-run seeding of this sub-stage (lmseed.go): a usable seed replays
	// candidate construction per cluster (sink sequence match + clean read
	// cone) and the MWCP selection as a whole (instance fingerprint match).
	sig := lmParamsSig(params)
	seed := params.LMSeed
	if !seed.usable(d.W, d.H, sig) {
		seed = nil
	}
	capt := params.LMCapture
	var bits, diff []uint64
	if seed != nil || capt != nil {
		bits = obs.Bits(nil)
	}
	if seed != nil {
		diff = diffBitmaps(bits, seed.Bits)
	}
	if capt != nil {
		*capt = LMSeed{W: d.W, H: d.H, Sig: sig, Bits: bits}
	}

	candsByIdx := make([][]*dme.Tree, len(pending))
	hashes := make([]uint64, len(pending))
	cones := make([][]int32, len(pending))
	replayed := make([]bool, len(pending))
	var wg sync.WaitGroup
	for i, fc := range pending {
		wg.Add(1)
		go func(i int, fc *flowCluster) {
			defer wg.Done()
			sinks := fc.positions(d)
			if seed != nil {
				if ps := seed.lookup(sinks); ps != nil && coneClean(ps.Cone, diff) {
					candsByIdx[i] = ps.Cands
					hashes[i] = ps.Hash
					cones[i] = ps.Cone
					replayed[i] = true
					return
				}
			}
			if seed == nil && capt == nil {
				candsByIdx[i] = dme.Candidates(obs, sinks, params.MaxCandidates)
				return
			}
			var probe func(geom.Pt)
			if capt != nil {
				g := obs.Grid()
				probe = func(p geom.Pt) { cones[i] = append(cones[i], conePt(g, p)) }
			}
			candsByIdx[i] = dme.CandidatesTraced(obs, sinks, params.MaxCandidates, probe)
			hashes[i] = dme.Fingerprint(candsByIdx[i])
		}(i, fc)
	}
	wg.Wait()
	lmStats.CandClusters = len(pending)
	for _, r := range replayed {
		if r {
			lmStats.CandReplayed++
		}
	}
	if capt != nil {
		capt.Clusters = make([]LMClusterSeed, len(pending))
		for i, fc := range pending {
			capt.Clusters[i] = LMClusterSeed{
				Sinks: fc.positions(d), Cone: cones[i],
				Cands: candsByIdx[i], Hash: hashes[i],
			}
		}
	}
	var treeClusters []*flowCluster
	var cands [][]*dme.Tree
	var treeHashes []uint64
	for i, fc := range pending {
		if len(candsByIdx[i]) == 0 {
			fc.demoted = true
			fc.kind = kindOrd
			continue
		}
		treeClusters = append(treeClusters, fc)
		cands = append(cands, candsByIdx[i])
		treeHashes = append(treeHashes, hashes[i])
	}

	// Candidate selection (Section 4.2). "w/o Sel" takes the first.
	picks := make([]int, len(cands))
	selects := params.Mode != ModeWithoutSelection && len(cands) > 0
	var selKey uint64
	if selects && (seed != nil || capt != nil) {
		selKey = selInstanceKey(treeHashes)
	}
	if selects {
		if seed != nil && seed.HavePicks && seed.SelKey == selKey && len(seed.Picks) == len(picks) {
			copy(picks, seed.Picks)
			lmStats.SelectionReplayed = true
		} else {
			cfg := seltree.DefaultConfig()
			cfg.Lambda = params.Lambda
			cfg.Solver = params.Solver
			if p, err := seltree.Select(cands, cfg); err == nil {
				picks = p
			}
		}
	}
	if capt != nil && selects {
		capt.SelKey = selKey
		capt.Picks = append([]int(nil), picks...)
		capt.HavePicks = true
	}
	for i, fc := range treeClusters {
		fc.cands = cands[i]
		fc.tree = cands[i][picks[i]]
	}
	resolveNodeCollisions(d, treeClusters)

	// Negotiation-based routing (Algorithm 1) over all LM edges at once.
	const edgeStride = 1 << 12
	var edges []route.Edge
	for _, fc := range fcs {
		switch fc.kind {
		case kindTree:
			for ei, e := range fc.tree.Edges() {
				edges = append(edges, route.Edge{
					ID:      fc.id*edgeStride + ei,
					Sources: []geom.Pt{e.From},
					Targets: []geom.Pt{e.To},
				})
			}
		case kindPair:
			pts := fc.positions(d)
			edges = append(edges, route.Edge{
				ID:      fc.id * edgeStride,
				Sources: []geom.Pt{pts[0]},
				Targets: []geom.Pt{pts[1]},
			})
		}
	}
	if len(edges) == 0 {
		return
	}
	// Only the main negotiation call carries the cross-run seed and capture:
	// rescue and refinement route different edge sets on different base maps,
	// where a parent transcript can't align.
	np := params.Negotiate
	np.Seed = params.NegSeed
	np.Capture = params.NegCapture
	paths, _ := ws.NegotiateTracked(obs, edges, np, negStats)

	// First pass: commit every completely routed cluster, so the rescue
	// pass below sees the full environment.
	var incompleteTrees []*flowCluster
	for _, fc := range fcs {
		switch fc.kind {
		case kindTree:
			treeEdges := fc.tree.Edges()
			segs := make([]grid.Path, len(treeEdges))
			complete := true
			for ei := range treeEdges {
				p, ok := paths[fc.id*edgeStride+ei]
				if !ok {
					complete = false
					break
				}
				segs[ei] = p
			}
			if !complete {
				incompleteTrees = append(incompleteTrees, fc)
				continue
			}
			for _, p := range segs {
				obs.SetPath(p, true)
			}
			fc.net = netFromTree(fc.tree, segs)
			fc.paths = fc.net.Segments
		case kindPair:
			p, ok := paths[fc.id*edgeStride]
			if !ok {
				fc.demoted = true
				fc.kind = kindOrd
				continue
			}
			obs.SetPath(p, true)
			fc.net = netFromPair(p)
			fc.paths = fc.net.Segments
		}
	}
	// Rescue pass: a cluster whose selected candidate could not be realized
	// jointly tries its remaining candidates solo against the committed
	// environment before giving up the LM constraint (the paper reconstructs
	// the DME tree when negotiation exhausts its iterations).
	for _, fc := range incompleteTrees {
		if !rescueTreeCluster(ws, d, obs, fc, params, negStats) {
			fc.demoted = true
			fc.kind = kindOrd
			fc.tree = nil
		}
	}
}

// rescueTreeCluster tries every candidate of an unrealized tree cluster
// solo against the current obstacle map, committing the first that routes
// completely. Returns false when no candidate routes.
func rescueTreeCluster(ws *route.Workspace, d *valve.Design, obs *grid.ObsMap, fc *flowCluster, params Params, negStats *route.NegotiateStats) bool {
	for _, cand := range fc.cands {
		blocked := false
		for ni, nd := range cand.Topo.Nodes {
			if nd.Sink < 0 && obs.Blocked(cand.Pos[ni]) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		var edges []route.Edge
		for ei, e := range cand.Edges() {
			edges = append(edges, route.Edge{
				ID: ei, Sources: []geom.Pt{e.From}, Targets: []geom.Pt{e.To}})
		}
		paths, ok := ws.NegotiateTracked(obs, edges, params.Negotiate, negStats)
		if !ok {
			continue
		}
		segs := make([]grid.Path, len(edges))
		for ei := range edges {
			segs[ei] = paths[ei]
		}
		for _, p := range segs {
			obs.SetPath(p, true)
		}
		fc.tree = cand
		fc.net = netFromTree(cand, segs)
		fc.paths = fc.net.Segments
		return true
	}
	return false
}

// resolveNodeCollisions makes the selected trees' internal node positions
// pairwise distinct (and distinct from every valve): two clusters embedding
// a merging node on the same free cell would otherwise both route channels
// into it. Clusters keep their selected candidate when possible and fall
// back to the first collision-free alternative.
func resolveNodeCollisions(d *valve.Design, treeClusters []*flowCluster) {
	used := make(map[geom.Pt]bool, len(d.Valves))
	for _, v := range d.Valves {
		used[v.Pos] = true
	}
	nodesOf := func(t *dme.Tree) []geom.Pt {
		var out []geom.Pt
		for ni, nd := range t.Topo.Nodes {
			if nd.Sink < 0 {
				out = append(out, t.Pos[ni])
			}
		}
		return out
	}
	conflicts := func(t *dme.Tree) bool {
		for _, p := range nodesOf(t) {
			if used[p] {
				return true
			}
		}
		return false
	}
	for _, fc := range treeClusters {
		if conflicts(fc.tree) {
			for _, cand := range fc.cands {
				if !conflicts(cand) {
					fc.tree = cand
					break
				}
			}
			// All candidates collide: keep the selection; the negotiation
			// router will fail the colliding edges and demote the cluster,
			// which is the safe outcome.
		}
		for _, p := range nodesOf(fc.tree) {
			used[p] = true
		}
	}
}

// refineLMClusters re-routes tree clusters whose realized spread exceeds
// delta, alone against the fixed environment: own channels are ripped and
// every candidate tree (only the already-selected one in "w/o Sel" mode) is
// re-routed solo; the realization with the smallest (spread, length) wins.
func refineLMClusters(ws *route.Workspace, d *valve.Design, obs *grid.ObsMap, fcs []*flowCluster, params Params, negStats *route.NegotiateStats) {
	allowSwitch := params.Mode != ModeWithoutSelection
	for _, fc := range fcs {
		if fc.kind != kindTree || fc.net == nil || fc.demoted {
			continue
		}
		mn, mx := fc.net.Spread()
		if mx-mn <= d.Delta {
			continue
		}
		bestSpread, bestLen := mx-mn, netLen(fc.net)
		var bestTree *dme.Tree
		var bestNet *detour.Net

		base := obs.Clone()
		for _, p := range fc.paths {
			base.SetPath(p, false)
		}
		remarkValves(d, base)

		cands := fc.cands
		if !allowSwitch {
			cands = []*dme.Tree{fc.tree}
		}
		for _, cand := range cands {
			// A candidate whose internal nodes sit on other clusters'
			// channels (or valves) would route into them: skip it.
			blockedNode := false
			for ni, nd := range cand.Topo.Nodes {
				if nd.Sink < 0 && base.Blocked(cand.Pos[ni]) {
					blockedNode = true
					break
				}
			}
			if blockedNode {
				continue
			}
			var edges []route.Edge
			for ei, e := range cand.Edges() {
				edges = append(edges, route.Edge{
					ID: ei, Sources: []geom.Pt{e.From}, Targets: []geom.Pt{e.To}})
			}
			paths, ok := ws.NegotiateTracked(base, edges, params.Negotiate, negStats)
			if !ok {
				continue
			}
			segs := make([]grid.Path, len(edges))
			for ei := range edges {
				segs[ei] = paths[ei]
			}
			net := netFromTree(cand, segs)
			nmn, nmx := net.Spread()
			if nmx-nmn < bestSpread || (nmx-nmn == bestSpread && netLen(net) < bestLen) {
				bestSpread, bestLen = nmx-nmn, netLen(net)
				bestTree, bestNet = cand, net
			}
		}
		if bestNet == nil {
			continue
		}
		for _, p := range fc.paths {
			obs.SetPath(p, false)
		}
		remarkValves(d, obs)
		for _, p := range bestNet.Segments {
			obs.SetPath(p, true)
		}
		fc.tree = bestTree
		fc.net = bestNet
		fc.paths = bestNet.Segments
	}
}

// netLen sums a net's channel length.
func netLen(n *detour.Net) int {
	total := 0
	for _, s := range n.Segments {
		total += s.Len()
	}
	return total
}

// netFromTree converts a routed DME tree into a detour net: one segment per
// tree edge, full paths walking leaf -> root (Definitions 5-6).
func netFromTree(tr *dme.Tree, segs []grid.Path) *detour.Net {
	edges := tr.Edges()
	parentEdge := make(map[int]int, len(edges))
	for i, e := range edges {
		parentEdge[e.Child] = i
	}
	leafOf := make(map[int]int)
	for ni, nd := range tr.Topo.Nodes {
		if nd.Sink >= 0 {
			leafOf[nd.Sink] = ni
		}
	}
	net := &detour.Net{Segments: segs, FullPaths: make([][]int, len(tr.Sinks))}
	for s := range tr.Sinks {
		node := leafOf[s]
		var fp []int
		for node != tr.Topo.Root {
			ei := parentEdge[node]
			fp = append(fp, ei)
			node = edges[ei].Parent
		}
		net.FullPaths[s] = fp
	}
	return net
}

// netFromPair splits a two-valve path at its middle cell (the escape
// take-off, per Section 5) into two arm segments.
func netFromPair(p grid.Path) *detour.Net {
	mid := len(p) / 2
	arm0 := p[:mid+1].Clone()
	// Arm 1 runs valve -> tap, mirroring arm 0's orientation.
	arm1 := p[mid:].Clone().Reverse()
	return &detour.Net{
		Segments:  []grid.Path{arm0, arm1},
		FullPaths: [][]int{{0}, {1}},
	}
}

// tap returns the LM cluster's escape take-off cell.
func (fc *flowCluster) tapCell() geom.Pt {
	if fc.kind == kindTree {
		return fc.tree.Root()
	}
	// Pair: both arms end at the tap.
	arm := fc.net.Segments[0]
	return arm[len(arm)-1]
}

// matchAll runs Algorithm 2 on every intact LM cluster.
func matchAll(ws *route.Workspace, obs *grid.ObsMap, fcs []*flowCluster, delta int) {
	for _, fc := range fcs {
		if fc.net == nil || fc.demoted {
			continue
		}
		detour.MatchWS(ws, obs, fc.net, delta)
		fc.paths = fc.net.Segments
	}
}

// routeOrdinary routes every ordinary cluster with MST + A*, de-clustering
// on failure (Figure 2's "Declustering" box). It may append new clusters
// (split halves) and returns the updated slice.
//
// Each pass over the queue runs as one batch through the spatial-dependency
// scheduler: clusters whose windows are disjoint route concurrently, results
// commit onto obs in queue order, so the routed paths — and the split/retry
// cascade they trigger — are byte-identical to the sequential FIFO loop for
// every worker count. Split halves form the next batch, mirroring the
// sequential queue where they are appended behind all current entries.
func routeOrdinary(d *valve.Design, obs *grid.ObsMap, fcs []*flowCluster, workers int, qmode route.QueueMode) []*flowCluster {
	queue := make([]*flowCluster, 0, len(fcs))
	for _, fc := range fcs {
		if fc.kind == kindOrd {
			queue = append(queue, fc)
		}
	}
	// Larger clusters first: they need the most contiguous free space.
	sort.SliceStable(queue, func(i, j int) bool {
		return len(queue[i].valves) > len(queue[j].valves)
	})
	nextID := 0
	for _, fc := range fcs {
		if fc.id >= nextID {
			nextID = fc.id + 1
		}
	}
	g := obs.Grid()
	for len(queue) > 0 {
		batch := queue[:0:0]
		for _, fc := range queue {
			if len(fc.valves) > 1 { // singletons have no internal channels
				batch = append(batch, fc)
			}
		}
		queue = nil
		tasks := make([]route.ScheduledTask, len(batch))
		for i := range batch {
			tasks[i] = mstClusterTask(g, batch[i].positions(d), qmode)
		}
		route.RunScheduled(obs, tasks, workers, func(i int, out route.TaskOutcome) {
			fc := batch[i]
			if out.OK {
				fc.paths = out.Paths
				return
			}
			// De-cluster: split spatially and retry the halves next batch.
			halves := cluster.Split(d, cluster.Cluster{ID: fc.id, Valves: fc.valves})
			if len(halves) < 2 {
				return
			}
			fc.valves = halves[0].Valves
			fc.demoted = true
			other := &flowCluster{id: nextID, valves: halves[1].Valves, kind: kindOrd, demoted: true}
			nextID++
			fcs = append(fcs, other)
			queue = append(queue, fc, other)
		})
	}
	return fcs
}

// escapeRoute connects every cluster to a control pin via min-cost flow,
// retrying per the paper's de-clustering and path rip-up stage: an unrouted
// LM cluster first loses its root-only take-off restriction (demotion, the
// cheap rip-up), an unrouted multi-valve cluster is split into bare-valve
// singletons, and a trapped singleton triggers rip-up of the blocking
// clusters' channels: the trapped valve's escape is committed first and the
// blockers' internal channels re-route around it.
func escapeRoute(ws *route.Workspace, d *valve.Design, obs *grid.ObsMap, fcs []*flowCluster, params Params, escHier *route.HierStats) []*flowCluster {
	trace := traceWriter(params)
	byID := func() map[int]*flowCluster {
		m := make(map[int]*flowCluster, len(fcs))
		for _, fc := range fcs {
			m[fc.id] = fc
		}
		return m
	}
	nextID := 0
	for _, fc := range fcs {
		if fc.id >= nextID {
			nextID = fc.id + 1
		}
	}
	retries := params.EscapeRetries
	if retries < 1 {
		retries = 1
	}
	// Escapes committed early by rip-up (already marked in obs).
	committed := map[int]grid.Path{}
	usedPins := map[geom.Pt]bool{}

	var res *escape.Result
	for round := 0; round < retries; round++ {
		terms := buildTerminals(d, fcs, committed, params.Workers)
		var pins []geom.Pt
		for _, p := range d.Pins {
			if !usedPins[p] {
				pins = append(pins, p)
			}
		}
		if params.Hier.On(obs.Grid().Cells()) {
			var hs route.HierStats
			res, hs = escape.RouteHier(obs, terms, pins, params.Hier, params.Workers, params.Queue)
			escHier.Add(hs)
		} else {
			res = escape.Route(obs, terms, pins)
		}
		tracef(trace, "escape round %d: %d terms, unrouted %v\n", round, len(terms), res.Unrouted)
		if len(res.Unrouted) == 0 {
			break
		}
		if round == retries-1 {
			break
		}
		m := byID()
		progress := false
		var trapped []*flowCluster
		for _, id := range res.Unrouted {
			fc := m[id]
			if fc == nil {
				continue
			}
			if (fc.kind == kindTree || fc.kind == kindPair) && !fc.demoted && !fc.relaxTap {
				// Cheap relaxation: free take-off anywhere on the channels;
				// the net re-roots at the chosen cell, so matching survives.
				fc.relaxTap = true
				progress = true
				continue
			}
			if len(fc.valves) > 1 {
				// Split into bare singletons with internals ripped.
				for _, p := range fc.paths {
					obs.SetPath(p, false)
				}
				remarkValves(d, obs)
				fc.paths = nil
				fc.net = nil
				fc.tree = nil
				fc.kind = kindOrd
				fc.demoted = true
				rest := fc.valves[1:]
				fc.valves = fc.valves[:1]
				for _, v := range rest {
					fcs = append(fcs, &flowCluster{
						id: nextID, valves: []int{v}, kind: kindOrd, demoted: true,
					})
					nextID++
				}
				progress = true
				continue
			}
			trapped = append(trapped, fc)
		}
		if len(trapped) > 0 && ripAndCommit(ws, d, obs, &fcs, &nextID, trapped, usedPins, committed, trace, params.Workers, params.Queue) {
			progress = true
		}
		if !progress {
			break
		}
	}
	// Commit the final assignment.
	m := byID()
	for id, p := range res.Paths {
		fc := m[id]
		if fc == nil {
			continue
		}
		fc.routed = true
		fc.escape = p
		fc.pin = res.Pins[id]
		obs.SetPath(p, true)
	}
	for id, p := range committed {
		fc := m[id]
		if fc == nil {
			continue
		}
		fc.routed = true
		fc.escape = p
		fc.pin = p[len(p)-1]
	}
	// Re-root LM nets whose escape took off away from the preferred tap.
	for _, fc := range fcs {
		if !fc.routed || fc.net == nil || fc.demoted || len(fc.escape) == 0 {
			continue
		}
		takeoff := fc.escape[0]
		if takeoff == fc.tapCell() {
			continue
		}
		var rerooted *detour.Net
		if fc.kind == kindTree {
			rerooted = rerootTreeNet(fc.tree, fc.net, takeoff)
		} else if fc.kind == kindPair {
			rerooted = rerootPairNet(fc.net, takeoff)
		}
		if rerooted == nil {
			// Take-off off the net (should not happen): abandon matching.
			fc.demoted = true
			continue
		}
		fc.net = rerooted
		fc.paths = rerooted.Segments
	}
	return fcs
}

// ripAndCommit frees trapped clusters by ripping the channels that seal
// them in (identified by flood fill from their take-offs), committing each
// trapped cluster's escape directly, and only then re-routing every ripped
// cluster's internal channels around the committed escapes — rerouting
// earlier could re-enclose a later trapped valve. Ordinary blockers are
// ripped before intact LM blockers (the paper's "higher rip-up cost" for
// LM clusters). Returns true when at least one escape was committed.
func ripAndCommit(ws *route.Workspace, d *valve.Design, obs *grid.ObsMap, fcsp *[]*flowCluster, nextID *int,
	trapped []*flowCluster, usedPins map[geom.Pt]bool, committed map[int]grid.Path, trace io.Writer, workers int, qmode route.QueueMode) bool {
	g := obs.Grid()
	owner := map[geom.Pt]*flowCluster{}
	for _, fc := range *fcsp {
		for _, p := range fc.paths {
			for _, c := range p {
				owner[c] = fc
			}
		}
		// Escapes committed in earlier rounds also seal space; they can be
		// ripped and re-routed by a later flow round.
		if ce, ok := committed[fc.id]; ok {
			for _, c := range ce {
				owner[c] = fc
			}
		}
	}
	rippedSet := map[*flowCluster]bool{}
	var ripped []*flowCluster
	rip := func(b *flowCluster) {
		if rippedSet[b] {
			return
		}
		rippedSet[b] = true
		ripped = append(ripped, b)
		for _, p := range b.paths {
			obs.SetPath(p, false)
		}
		if ce, ok := committed[b.id]; ok {
			obs.SetPath(ce, false)
			delete(usedPins, ce[len(ce)-1])
			delete(committed, b.id)
		}
		// Ripped paths start/end on valve cells; those must stay blocked.
		remarkValves(d, obs)
	}
	anyCommitted := false
	for _, tc := range trapped {
		takeoffs := tc.takeoffs(d)
		blockers := findBlockers(obs, takeoffs, owner, tc)
		// LM-intact blockers last: ripping them forfeits their matching.
		sort.SliceStable(blockers, func(i, j int) bool {
			li := (blockers[i].kind == kindTree || blockers[i].kind == kindPair) && !blockers[i].demoted
			lj := (blockers[j].kind == kindTree || blockers[j].kind == kindPair) && !blockers[j].demoted
			if li != lj {
				return !li
			}
			return len(blockers[i].valves) < len(blockers[j].valves)
		})
		tryEscape := func() bool {
			var freePins []geom.Pt
			for _, p := range d.Pins {
				if !usedPins[p] && !obs.Blocked(p) {
					freePins = append(freePins, p)
				}
			}
			path, ok := ws.AStar(g, route.Request{
				Sources: takeoffs,
				Targets: freePins,
				Obs:     obs,
			})
			if !ok {
				return false
			}
			obs.SetPath(path, true)
			committed[tc.id] = path
			usedPins[path[len(path)-1]] = true
			anyCommitted = true
			return true
		}
		if tryEscape() {
			continue // earlier rips already freed this valve
		}
		done := false
		for _, b := range blockers {
			rip(b)
			if tryEscape() {
				done = true
				break
			}
		}
		if !done {
			tracef(trace, "ripAndCommit: cluster %d still trapped after %d blockers\n", tc.id, len(blockers))
		}
	}
	// Re-route every ripped cluster around the committed escapes.
	rerouteRipped(d, obs, fcsp, nextID, ripped, workers, qmode)
	return anyCommitted || len(ripped) > 0
}

// buildTerminals assembles the escape terminals for every not-yet-committed
// cluster. The per-cluster take-off cost (a BFS over the net's channel tree
// per valve, netCellSpread) reads no shared mutable state, so with workers
// > 1 the per-cluster computations fan out over a fixed worker pool; the
// indexed writes keep the output order identical to the sequential loop.
func buildTerminals(d *valve.Design, fcs []*flowCluster, committed map[int]grid.Path, workers int) []escape.Terminal {
	var pending []*flowCluster
	for _, fc := range fcs {
		if _, done := committed[fc.id]; !done {
			pending = append(pending, fc)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	terms := make([]escape.Terminal, len(pending))
	build := func(i int) {
		fc := pending[i]
		cells := fc.takeoffs(d)
		terms[i] = escape.Terminal{
			ClusterID: fc.id,
			Cells:     cells,
			Costs:     fc.takeoffCosts(d, cells),
		}
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		for i := range pending {
			build(i)
		}
		return terms
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pending); i += workers {
				build(i)
			}
		}(w)
	}
	wg.Wait()
	return terms
}

// remarkValves re-blocks every valve cell (rip-up unmarks whole paths,
// including their valve endpoints).
func remarkValves(d *valve.Design, obs *grid.ObsMap) {
	for _, v := range d.Valves {
		obs.Set(v.Pos, true)
	}
}

// findBlockers flood-fills free cells from the take-offs and returns the
// distinct clusters owning the channel cells on the region's border,
// nearest-contact first.
func findBlockers(obs *grid.ObsMap, takeoffs []geom.Pt, owner map[geom.Pt]*flowCluster,
	self *flowCluster) []*flowCluster {
	g := obs.Grid()
	seen := map[geom.Pt]bool{}
	queue := append([]geom.Pt(nil), takeoffs...)
	for _, c := range takeoffs {
		seen[c] = true
	}
	contact := map[*flowCluster]int{}
	var order []*flowCluster
	var nbuf []geom.Pt
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		nbuf = g.Neighbors(p, nbuf)
		for _, q := range nbuf {
			if seen[q] {
				continue
			}
			seen[q] = true
			if obs.Blocked(q) {
				if fc := owner[q]; fc != nil && fc != self {
					if contact[fc] == 0 {
						order = append(order, fc)
					}
					contact[fc]++
				}
				continue
			}
			queue = append(queue, q)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return contact[order[i]] > contact[order[j]]
	})
	return order
}

// mstClusterTask wraps one cluster's MST routing (mstroute.RouteClusterWS on
// a scratch snapshot) as a scheduler task. RouteClusterWS reads obstacles
// only through the workspace's searches, so the task qualifies for
// speculative execution under route.RunScheduled.
func mstClusterTask(g grid.Grid, pos []geom.Pt, qmode route.QueueMode) route.ScheduledTask {
	return route.ScheduledTask{
		Window: route.SearchWindow(g, pos, nil),
		Run: func(ws *route.Workspace, scratch *grid.ObsMap) route.TaskOutcome {
			// Worker workspaces come from the pool with the default (auto)
			// queue mode; adopt the flow's.
			ws.SetQueueMode(qmode)
			res, ok := mstroute.RouteClusterWS(ws, scratch, pos, nil)
			if !ok {
				return route.TaskOutcome{}
			}
			return route.TaskOutcome{OK: true, Paths: res.Paths}
		},
	}
}

// rerouteRipped re-routes the ripped clusters' internal channels with MST
// (their LM structure, if any, is forfeited — the paper's rip-up cost). The
// clusters route as one scheduler batch committing in rip order, so the
// outcome is byte-identical to rerouting them one by one. When even MST
// routing fails, a cluster splits into bare singletons so that every valve
// can still escape on its own.
func rerouteRipped(d *valve.Design, obs *grid.ObsMap, fcsp *[]*flowCluster, nextID *int, ripped []*flowCluster, workers int, qmode route.QueueMode) {
	var active []*flowCluster
	for _, fc := range ripped {
		fc.net = nil
		fc.tree = nil
		fc.kind = kindOrd
		fc.demoted = true
		fc.paths = nil
		if len(fc.valves) > 1 {
			active = append(active, fc)
		}
	}
	g := obs.Grid()
	tasks := make([]route.ScheduledTask, len(active))
	for i := range active {
		tasks[i] = mstClusterTask(g, active[i].positions(d), qmode)
	}
	route.RunScheduled(obs, tasks, workers, func(i int, out route.TaskOutcome) {
		fc := active[i]
		if out.OK {
			fc.paths = out.Paths
			return
		}
		rest := fc.valves[1:]
		fc.valves = fc.valves[:1]
		for _, v := range rest {
			*fcsp = append(*fcsp, &flowCluster{
				id: *nextID, valves: []int{v}, kind: kindOrd, demoted: true,
			})
			*nextID++
		}
	})
}

// takeoffs returns the cluster's permitted escape take-off cells.
func (fc *flowCluster) takeoffs(d *valve.Design) []geom.Pt {
	if (fc.kind == kindTree || fc.kind == kindPair) && !fc.demoted && fc.net != nil && !fc.relaxTap {
		return []geom.Pt{fc.tapCell()}
	}
	var cells []geom.Pt
	seen := map[geom.Pt]bool{}
	add := func(p geom.Pt) {
		if !seen[p] {
			seen[p] = true
			cells = append(cells, p)
		}
	}
	for _, v := range fc.valves {
		add(d.Valves[v].Pos)
	}
	for _, p := range fc.paths {
		for _, c := range p {
			add(c)
		}
	}
	return cells
}

// takeoffCosts returns per-cell take-off penalties: for an LM cluster with a
// relaxed tap, taking off at cell X re-roots the net at X, so the penalty is
// proportional to the resulting length spread (max-min tree distance from
// the valves to X). Ordinary clusters take off anywhere for free.
func (fc *flowCluster) takeoffCosts(d *valve.Design, cells []geom.Pt) []int {
	if fc.net == nil || fc.demoted || !fc.relaxTap {
		return nil
	}
	spread := netCellSpread(fc.net, fc.positions(d))
	costs := make([]int, len(cells))
	for i, c := range cells {
		if sp, ok := spread[c]; ok {
			// Weight 2: one unit of spread typically costs ~1 unit of later
			// detour wirelength per affected arm; bias the flow toward
			// low-spread take-offs without making completion impossible.
			costs[i] = 2 * sp
		}
	}
	return costs
}

// netCellSpread computes, for every channel cell of the net, the spread
// (max-min) of tree distances from the given leaves to that cell.
func netCellSpread(net *detour.Net, leaves []geom.Pt) map[geom.Pt]int {
	// Cell-level adjacency of the net's channel tree: consecutive segment
	// cells are adjacent; junction cells coincide across segments.
	adj := map[geom.Pt][]geom.Pt{}
	for _, seg := range net.Segments {
		for i := 1; i < len(seg); i++ {
			adj[seg[i-1]] = append(adj[seg[i-1]], seg[i])
			adj[seg[i]] = append(adj[seg[i]], seg[i-1])
		}
	}
	var mn, mx map[geom.Pt]int
	for _, leaf := range leaves {
		dist := map[geom.Pt]int{leaf: 0}
		queue := []geom.Pt{leaf}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for _, q := range adj[c] {
				if _, seen := dist[q]; !seen {
					dist[q] = dist[c] + 1
					queue = append(queue, q)
				}
			}
		}
		if mn == nil {
			mn = map[geom.Pt]int{}
			mx = map[geom.Pt]int{}
			for c, v := range dist {
				mn[c], mx[c] = v, v
			}
			continue
		}
		for c, v := range dist {
			if cur, ok := mn[c]; !ok || v < cur {
				mn[c] = v
			}
			if cur, ok := mx[c]; !ok || v > cur {
				mx[c] = v
			}
		}
	}
	out := make(map[geom.Pt]int, len(mx))
	for c := range mx {
		out[c] = mx[c] - mn[c]
	}
	return out
}

// assemble builds the public Result.
func assemble(d *valve.Design, fcs []*flowCluster, mode Mode, runtime time.Duration) *Result {
	r := &Result{Mode: mode, Runtime: runtime, TotalValves: len(d.Valves)}
	for _, fc := range fcs {
		cr := ClusterResult{
			ID:      fc.id,
			Valves:  fc.valves,
			LM:      fc.lm,
			Demoted: fc.demoted,
			Routed:  fc.routed,
			Paths:   fc.paths,
			Escape:  fc.escape,
			Pin:     fc.pin,
		}
		if fc.net != nil && !fc.demoted {
			cr.FullLens = make([]int, len(fc.net.FullPaths))
			for i := range fc.net.FullPaths {
				cr.FullLens[i] = fc.net.FullLen(i)
			}
			cr.Matched = fc.routed && fc.net.Matched(d.Delta)
		}
		if len(fc.valves) >= 2 {
			r.MultiClusters++
		}
		if cr.Matched && len(fc.valves) >= 2 {
			r.MatchedClusters++
			r.MatchedLen += cr.TotalLen()
		}
		r.TotalLen += cr.TotalLen()
		if fc.routed {
			r.RoutedValves += len(fc.valves)
		}
		r.Clusters = append(r.Clusters, cr)
	}
	sort.Slice(r.Clusters, func(i, j int) bool { return r.Clusters[i].ID < r.Clusters[j].ID })
	return r
}

// Verify checks the solution's design rules: every channel cell on-grid, no
// two channels of different clusters sharing a cell, no channel on an
// obstacle or foreign valve, every routed cluster's channels connected to
// its pin. It returns an error describing the first violation.
func Verify(d *valve.Design, r *Result) error {
	g := grid.New(d.W, d.H)
	static := grid.NewObsMap(g)
	for _, o := range d.Obstacles {
		static.Set(o, true)
	}
	valveOwner := map[geom.Pt]int{}
	for ci := range r.Clusters {
		for _, v := range r.Clusters[ci].Valves {
			valveOwner[d.Valves[v].Pos] = ci
		}
	}
	owner := map[geom.Pt]int{}
	for ci := range r.Clusters {
		c := &r.Clusters[ci]
		paths := append([]grid.Path{}, c.Paths...)
		if len(c.Escape) > 0 {
			paths = append(paths, c.Escape)
		}
		for _, p := range paths {
			if !p.ValidOn(g) {
				return fmt.Errorf("cluster %d: invalid path %v", c.ID, p)
			}
			for _, cell := range p {
				if static.Blocked(cell) {
					return fmt.Errorf("cluster %d: channel on obstacle %v", c.ID, cell)
				}
				if vo, isValve := valveOwner[cell]; isValve && vo != ci {
					return fmt.Errorf("cluster %d: channel crosses foreign valve at %v", c.ID, cell)
				}
				if prev, used := owner[cell]; used && prev != ci {
					return fmt.Errorf("clusters %d and %d share cell %v",
						r.Clusters[prev].ID, c.ID, cell)
				}
				owner[cell] = ci
			}
		}
		// Connectivity: valves + internal paths + escape form one component
		// reaching the pin.
		if c.Routed && len(c.Valves) > 0 {
			pts := make([]geom.Pt, 0, len(c.Valves)+1)
			for _, v := range c.Valves {
				pts = append(pts, d.Valves[v].Pos)
			}
			pts = append(pts, c.Pin)
			if !mstroute.Connected(pts, paths) {
				return fmt.Errorf("cluster %d: valves and pin not connected", c.ID)
			}
		}
	}
	return nil
}

// SetDebugEscape toggles escape-stage tracing (used by debugging tools).
func SetDebugEscape(v bool) { debugEscape = v }
