package render

import (
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/pacor"
	"repro/internal/valve"
)

// SVG renders a routed chip as a standalone SVG document: obstacles in
// gray, candidate pins as hollow squares, per-cluster channels in rotating
// colors (escape channels dashed), valves as filled circles, and assigned
// pins as rings. Suitable for inclusion in papers or design reviews.
func SVG(d *valve.Design, r *pacor.Result) string {
	const cell = 8 // pixels per routing grid
	w, h := d.W*cell, d.H*cell
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w, h, w, h)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`, w, h)
	b.WriteString("\n")

	cx := func(x int) int { return x*cell + cell/2 }
	cy := func(y int) int { return y*cell + cell/2 }

	// Candidate pins.
	for _, p := range d.Pins {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#bbbbbb"/>`,
			p.X*cell+1, p.Y*cell+1, cell-2, cell-2)
		b.WriteString("\n")
	}
	// Obstacles.
	for _, o := range d.Obstacles {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#888888"/>`,
			o.X*cell, o.Y*cell, cell, cell)
		b.WriteString("\n")
	}

	palette := []string{
		"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
		"#17becf", "#e377c2", "#8c564b", "#bcbd22", "#7f7f7f",
	}
	if r != nil {
		for i := range r.Clusters {
			c := &r.Clusters[i]
			color := palette[c.ID%len(palette)]
			for _, p := range c.Paths {
				writePolyline(&b, p, cell, color, "")
			}
			if len(c.Escape) > 0 {
				writePolyline(&b, c.Escape, cell, color, ` stroke-dasharray="4,3"`)
			}
			if c.Routed {
				fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="%d" fill="none" stroke="%s" stroke-width="2"/>`,
					cx(c.Pin.X), cy(c.Pin.Y), cell/2+1, color)
				b.WriteString("\n")
			}
		}
	}
	// Valves on top.
	for _, v := range d.Valves {
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="%d" fill="#000000"/>`,
			cx(v.Pos.X), cy(v.Pos.Y), cell/3)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func writePolyline(b *strings.Builder, p grid.Path, cell int, color, extra string) {
	if len(p) == 0 {
		return
	}
	var pts []string
	for _, c := range p {
		pts = append(pts, fmt.Sprintf("%d,%d", c.X*cell+cell/2, c.Y*cell+cell/2))
	}
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="3" stroke-linecap="round" stroke-linejoin="round"%s/>`,
		strings.Join(pts, " "), color, extra)
	b.WriteString("\n")
}
