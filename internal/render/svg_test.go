package render

import (
	"strings"
	"testing"

	"repro/internal/pacor"
)

func TestSVGStructure(t *testing.T) {
	d := design(t)
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	out := SVG(d, res)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a well-formed SVG document")
	}
	if strings.Count(out, "<circle") < len(d.Valves) {
		t.Error("valve circles missing")
	}
	if !strings.Contains(out, "polyline") {
		t.Error("channel polylines missing")
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("escape channels should be dashed")
	}
	if strings.Count(out, "<rect") < len(d.Pins)+len(d.Obstacles) {
		t.Error("pin/obstacle rects missing")
	}
	// Balanced tags (every element self-closes except svg).
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGWithoutResult(t *testing.T) {
	d := design(t)
	out := SVG(d, nil)
	if !strings.Contains(out, "<circle") {
		t.Error("design-only SVG should still draw valves")
	}
	if strings.Contains(out, "polyline") {
		t.Error("design-only SVG must not contain channels")
	}
}
