package render

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/valve"
)

func design(t *testing.T) *valve.Design {
	t.Helper()
	seq := func(s string) valve.Seq { q, _ := valve.ParseSeq(s); return q }
	d := &valve.Design{
		Name: "r", W: 8, H: 6, Delta: 1,
		Valves: []valve.Valve{
			{ID: 0, Pos: geom.Pt{X: 2, Y: 2}, Seq: seq("01")},
			{ID: 1, Pos: geom.Pt{X: 5, Y: 3}, Seq: seq("10")},
		},
		Obstacles: []geom.Pt{{X: 4, Y: 1}},
		Pins:      []geom.Pt{{X: 0, Y: 2}, {X: 7, Y: 3}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDesignRender(t *testing.T) {
	d := design(t)
	out := Design(d)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != d.H {
		t.Fatalf("rows = %d, want %d", len(lines), d.H)
	}
	for i, l := range lines {
		if len(l) != d.W {
			t.Fatalf("row %d width = %d, want %d", i, len(l), d.W)
		}
	}
	if lines[2][2] != GlyphValve || lines[3][5] != GlyphValve {
		t.Error("valves not rendered")
	}
	if lines[1][4] != GlyphObstacle {
		t.Error("obstacle not rendered")
	}
	if lines[2][0] != GlyphPin || lines[3][7] != GlyphPin {
		t.Error("pins not rendered")
	}
	if lines[0][0] != GlyphFree {
		t.Error("free cell not rendered")
	}
}

func TestResultRender(t *testing.T) {
	d := design(t)
	res, err := pacor.Route(d, pacor.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	out := Result(d, res)
	if !strings.ContainsRune(out, rune(GlyphEscape)) {
		t.Error("escape channels missing from render")
	}
	if !strings.ContainsRune(out, rune(GlyphUsedPin)) {
		t.Error("used pins missing from render")
	}
	if strings.Count(out, string(GlyphValve)) != len(d.Valves) {
		t.Errorf("valve glyph count = %d, want %d",
			strings.Count(out, string(GlyphValve)), len(d.Valves))
	}
}

func TestRenderOffGridSafe(t *testing.T) {
	c := newCanvas(3, 3)
	c.set(geom.Pt{X: -1, Y: 0}, 'x') // must not panic
	c.set(geom.Pt{X: 3, Y: 3}, 'x')
	if strings.ContainsRune(c.String(), 'x') {
		t.Error("off-grid set leaked onto canvas")
	}
}
