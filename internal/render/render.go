// Package render draws designs and routing results as ASCII maps, for the
// examples, debugging, and golden-eye inspection of small chips.
package render

import (
	"strings"

	"repro/internal/geom"
	"repro/internal/pacor"
	"repro/internal/valve"
)

// Glyphs used by Result (in increasing precedence).
const (
	GlyphFree     = '.'
	GlyphPin      = '+'
	GlyphObstacle = '#'
	GlyphChannel  = '*'
	GlyphEscape   = '~'
	GlyphUsedPin  = '@'
	GlyphValve    = 'V'
)

// Design renders the bare chip: obstacles, valves, candidate pins.
func Design(d *valve.Design) string {
	c := newCanvas(d.W, d.H)
	c.stampDesign(d)
	return c.String()
}

// Result renders the routed chip. Cluster-internal channels draw as '*',
// escape channels as '~', used pins as '@'.
func Result(d *valve.Design, r *pacor.Result) string {
	c := newCanvas(d.W, d.H)
	c.stampDesign(d)
	for i := range r.Clusters {
		cl := &r.Clusters[i]
		for _, p := range cl.Paths {
			for _, cell := range p {
				c.set(cell, GlyphChannel)
			}
		}
		for _, cell := range cl.Escape {
			c.set(cell, GlyphEscape)
		}
		if cl.Routed {
			c.set(cl.Pin, GlyphUsedPin)
		}
	}
	// Valves stay visible on top of channels.
	for _, v := range d.Valves {
		c.set(v.Pos, GlyphValve)
	}
	return c.String()
}

type canvas struct {
	w, h  int
	cells []byte
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h, cells: make([]byte, w*h)}
	for i := range c.cells {
		c.cells[i] = GlyphFree
	}
	return c
}

func (c *canvas) set(p geom.Pt, glyph byte) {
	if p.X >= 0 && p.X < c.w && p.Y >= 0 && p.Y < c.h {
		c.cells[p.Y*c.w+p.X] = glyph
	}
}

func (c *canvas) stampDesign(d *valve.Design) {
	for _, p := range d.Pins {
		c.set(p, GlyphPin)
	}
	for _, o := range d.Obstacles {
		c.set(o, GlyphObstacle)
	}
	for _, v := range d.Valves {
		c.set(v.Pos, GlyphValve)
	}
}

func (c *canvas) String() string {
	var b strings.Builder
	b.Grow((c.w + 1) * c.h)
	for y := 0; y < c.h; y++ {
		b.Write(c.cells[y*c.w : (y+1)*c.w])
		b.WriteByte('\n')
	}
	return b.String()
}
