package detour

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// sealedNet builds a net whose short arm can be extended a little but not
// enough to match: one U-turn fits before the corridor closes.
func sealedNet(t *testing.T) (*grid.ObsMap, *Net) {
	t.Helper()
	g := grid.New(30, 9)
	obs := grid.NewObsMap(g)
	// Long arm: 20 cells to the tap. Short arm: 4 cells, in a corridor that
	// has room for exactly one U-turn next to its first edge.
	long := hPath(2, 22, 4)
	short := hPath(26, 22, 4)
	// Seal above/below the short arm except one 2-cell niche at x=25,26, y=3.
	for x := 23; x <= 28; x++ {
		if x != 25 && x != 26 {
			obs.Set(geom.Pt{X: x, Y: 3}, true)
		}
		obs.Set(geom.Pt{X: x, Y: 5}, true)
	}
	obs.Set(geom.Pt{X: 24, Y: 2}, true)
	obs.Set(geom.Pt{X: 25, Y: 2}, true)
	obs.Set(geom.Pt{X: 26, Y: 2}, true)
	obs.Set(geom.Pt{X: 27, Y: 2}, true)
	net := &Net{
		Segments:  []grid.Path{long, short},
		FullPaths: [][]int{{0}, {1}},
	}
	markNet(obs, net)
	return obs, net
}

func TestMatchRestoresOnPartialFailure(t *testing.T) {
	obs, net := sealedNet(t)
	before0, before1 := net.Segments[0].Len(), net.Segments[1].Len()
	if Match(obs, net, 1) {
		t.Fatal("sealed short arm cannot fully match")
	}
	if net.Segments[0].Len() != before0 || net.Segments[1].Len() != before1 {
		t.Error("Match must restore the original geometry on failure")
	}
}

func TestMatchBestEffortKeepsPartialProgress(t *testing.T) {
	obs, net := sealedNet(t)
	_, mxBefore := net.Spread()
	mnBefore, _ := net.Spread()
	spreadBefore := mxBefore - mnBefore
	if MatchBestEffort(obs, net, 1) {
		t.Fatal("sealed short arm cannot fully match even best-effort")
	}
	mn, mx := net.Spread()
	if mx-mn >= spreadBefore {
		t.Errorf("best effort kept spread %d, want below %d", mx-mn, spreadBefore)
	}
	// The kept geometry must be consistent with obs.
	for _, s := range net.Segments {
		for _, c := range s {
			if !obs.Blocked(c) {
				t.Errorf("kept segment cell %v not marked", c)
			}
		}
	}
}

func TestMatchBestEffortMatchesWhenPossible(t *testing.T) {
	g := grid.New(24, 12)
	obs := grid.NewObsMap(g)
	net := &Net{
		Segments:  []grid.Path{hPath(2, 10, 5), hPath(14, 10, 5)},
		FullPaths: [][]int{{0}, {1}},
	}
	markNet(obs, net)
	if !MatchBestEffort(obs, net, 1) {
		t.Fatal("open space must fully match")
	}
	mn, mx := net.Spread()
	if mx-mn > 1 {
		t.Errorf("spread %d", mx-mn)
	}
}
