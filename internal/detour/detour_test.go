package detour

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// hPath builds a horizontal path from (x0,y) to (x1,y).
func hPath(x0, x1, y int) grid.Path {
	var p grid.Path
	step := 1
	if x1 < x0 {
		step = -1
	}
	for x := x0; ; x += step {
		p = append(p, geom.Pt{X: x, Y: y})
		if x == x1 {
			break
		}
	}
	return p
}

// markNet blocks every segment cell.
func markNet(obs *grid.ObsMap, net *Net) {
	for _, s := range net.Segments {
		obs.SetPath(s, true)
	}
}

func TestMatchAlreadyMatched(t *testing.T) {
	g := grid.New(20, 20)
	obs := grid.NewObsMap(g)
	net := &Net{
		Segments:  []grid.Path{hPath(2, 8, 5), hPath(14, 8, 5)},
		FullPaths: [][]int{{0}, {1}},
	}
	markNet(obs, net)
	if !Match(obs, net, 0) {
		t.Fatal("equal-length net should match immediately")
	}
}

func TestMatchTwoArmTap(t *testing.T) {
	// Two arms to a tap at (10,5): left arm 8, right arm 4. Detour the right
	// arm by 4 to reach [7,8].
	g := grid.New(24, 12)
	obs := grid.NewObsMap(g)
	net := &Net{
		Segments:  []grid.Path{hPath(2, 10, 5), hPath(14, 10, 5)},
		FullPaths: [][]int{{0}, {1}},
	}
	markNet(obs, net)
	if !Match(obs, net, 1) {
		t.Fatal("match failed in open space")
	}
	mn, mx := net.Spread()
	if mx-mn > 1 {
		t.Errorf("spread [%d,%d] exceeds delta", mn, mx)
	}
	// Endpoints preserved.
	if net.Segments[1][0] != (geom.Pt{X: 14, Y: 5}) {
		t.Errorf("valve end moved: %v", net.Segments[1][0])
	}
	if net.Segments[1][len(net.Segments[1])-1] != (geom.Pt{X: 10, Y: 5}) {
		t.Errorf("tap end moved")
	}
	// obs must reflect the new geometry.
	for _, s := range net.Segments {
		for _, c := range s {
			if !obs.Blocked(c) {
				t.Errorf("cell %v of updated net not blocked", c)
			}
		}
	}
}

func TestMatchTreeSharedSegment(t *testing.T) {
	// Y-tree: valves A(2,2) and B(2,8) join at (6,5) [segments 0,1], trunk
	// (6,5)->(12,5) [segment 2]. A's arm is length 7, B's arm 7 via
	// construction below; make A shorter to force a sink-side detour.
	g := grid.New(20, 14)
	obs := grid.NewObsMap(g)
	segA := grid.Path{{X: 4, Y: 5}, {X: 5, Y: 5}, {X: 6, Y: 5}}                                                                       // short arm: len 2
	segB := grid.Path{{X: 2, Y: 8}, {X: 3, Y: 8}, {X: 4, Y: 8}, {X: 5, Y: 8}, {X: 6, Y: 8}, {X: 6, Y: 7}, {X: 6, Y: 6}, {X: 6, Y: 5}} // len 7
	trunk := grid.Path{{X: 6, Y: 5}, {X: 7, Y: 5}, {X: 8, Y: 5}}                                                                      // len 2, shared
	net := &Net{
		Segments:  []grid.Path{segA, segB, trunk},
		FullPaths: [][]int{{0, 2}, {1, 2}},
	}
	markNet(obs, net)
	if !Match(obs, net, 1) {
		t.Fatal("tree match failed")
	}
	mn, mx := net.Spread()
	if mx-mn > 1 {
		t.Errorf("spread [%d,%d]", mn, mx)
	}
	// The shared trunk must not have been the one lengthened (sink-side
	// first would already fix arm A alone); either way lengths match.
	if net.FullLen(0) < 7-1 {
		t.Errorf("full len A = %d", net.FullLen(0))
	}
}

func TestMatchFailsWhenSealed(t *testing.T) {
	// The short arm is in a 1-wide corridor: no room to detour.
	g := grid.New(24, 12)
	obs := grid.NewObsMap(g)
	for x := 1; x <= 11; x++ {
		obs.Set(geom.Pt{X: x, Y: 4}, true)
		obs.Set(geom.Pt{X: x, Y: 6}, true)
	}
	for x := 12; x <= 22; x++ {
		obs.Set(geom.Pt{X: x, Y: 4}, true)
		obs.Set(geom.Pt{X: x, Y: 6}, true)
	}
	net := &Net{
		Segments:  []grid.Path{hPath(2, 10, 5), hPath(14, 10, 5)},
		FullPaths: [][]int{{0}, {1}},
	}
	markNet(obs, net)
	before := net.Clone()
	obsBefore := obs.Clone()
	if Match(obs, net, 1) {
		t.Fatal("sealed corridor should fail to match")
	}
	// Restoration: net and obs unchanged.
	for i := range net.Segments {
		if net.Segments[i].Len() != before.Segments[i].Len() {
			t.Error("net not restored after failure")
		}
	}
	for y := 0; y < 12; y++ {
		for x := 0; x < 24; x++ {
			p := geom.Pt{X: x, Y: y}
			if obs.Blocked(p) != obsBefore.Blocked(p) {
				t.Fatalf("obs not restored at %v", p)
			}
		}
	}
}

func TestMatchRespectsForeignChannels(t *testing.T) {
	// A foreign channel hems in the short arm on one side; the detour must
	// go the other way and never touch foreign cells.
	g := grid.New(24, 12)
	obs := grid.NewObsMap(g)
	foreign := hPath(12, 22, 4)
	obs.SetPath(foreign, true)
	net := &Net{
		Segments:  []grid.Path{hPath(2, 10, 5), hPath(14, 10, 5)},
		FullPaths: [][]int{{0}, {1}},
	}
	markNet(obs, net)
	if !Match(obs, net, 1) {
		t.Fatal("match failed")
	}
	cells := map[geom.Pt]bool{}
	for _, s := range net.Segments {
		for _, c := range s {
			cells[c] = true
		}
	}
	for _, c := range foreign {
		if cells[c] {
			t.Errorf("detour overlaps foreign channel at %v", c)
		}
	}
}

func TestSpreadAndFullLen(t *testing.T) {
	net := &Net{
		Segments:  []grid.Path{hPath(0, 3, 0), hPath(0, 5, 1), hPath(0, 2, 2)},
		FullPaths: [][]int{{0, 2}, {1, 2}},
	}
	if net.FullLen(0) != 5 || net.FullLen(1) != 7 {
		t.Errorf("FullLen = %d,%d", net.FullLen(0), net.FullLen(1))
	}
	mn, mx := net.Spread()
	if mn != 5 || mx != 7 {
		t.Errorf("Spread = %d,%d", mn, mx)
	}
	if net.Matched(1) {
		t.Error("spread 2 should not match delta 1")
	}
	if !net.Matched(2) {
		t.Error("spread 2 should match delta 2")
	}
	empty := &Net{}
	if mn, mx := empty.Spread(); mn != 0 || mx != 0 {
		t.Error("empty net spread should be 0,0")
	}
}

func TestCloneIndependence(t *testing.T) {
	net := &Net{
		Segments:  []grid.Path{hPath(0, 3, 0)},
		FullPaths: [][]int{{0}},
	}
	c := net.Clone()
	c.Segments[0][0] = geom.Pt{X: 99, Y: 99}
	c.FullPaths[0][0] = 42
	if net.Segments[0][0] == (geom.Pt{X: 99, Y: 99}) || net.FullPaths[0][0] == 42 {
		t.Error("Clone aliases the original")
	}
}
