// Package detour implements the final length-matching stage (Section 6,
// Algorithm 2): after a length-matching cluster is routed, its shorter full
// paths are detoured until every valve's channel length to the shared point
// lies within [maxL-δ, maxL]. Segments are detoured in path-sequence order
// (sink side first — Definition 6) because sink-side segments are not shared
// with other full paths; rerouting uses the minimum-length bounded A* with a
// U-turn extension fallback.
package detour

import (
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/route"
)

// Net is one routed length-matching cluster: a set of channel segments and,
// per valve, the ordered list of segment indices from the valve up to the
// root/tap (the full path PF_i as a path sequence Ps_i).
type Net struct {
	Segments []grid.Path
	// FullPaths[i] lists segment indices sink-side first for valve i.
	FullPaths [][]int
}

// Clone deep-copies the net.
func (n *Net) Clone() *Net {
	c := &Net{
		Segments:  make([]grid.Path, len(n.Segments)),
		FullPaths: make([][]int, len(n.FullPaths)),
	}
	for i, s := range n.Segments {
		c.Segments[i] = s.Clone()
	}
	for i, f := range n.FullPaths {
		c.FullPaths[i] = append([]int(nil), f...)
	}
	return c
}

// FullLen returns valve i's channel length to the root.
func (n *Net) FullLen(i int) int {
	l := 0
	for _, s := range n.FullPaths[i] {
		l += n.Segments[s].Len()
	}
	return l
}

// Spread returns the min and max full-path lengths.
func (n *Net) Spread() (mn, mx int) {
	if len(n.FullPaths) == 0 {
		return 0, 0
	}
	mn, mx = n.FullLen(0), n.FullLen(0)
	for i := 1; i < len(n.FullPaths); i++ {
		l := n.FullLen(i)
		mn = geom.Min(mn, l)
		mx = geom.Max(mx, l)
	}
	return mn, mx
}

// Matched reports whether every pair of full paths differs by at most delta.
func (n *Net) Matched(delta int) bool {
	mn, mx := n.Spread()
	return mx-mn <= delta
}

// maxRounds is the paper's θ: the iteration bound of Algorithm 2.
const maxRounds = 10

// Match detours the net's short full paths until matched within delta.
// obs must contain every channel cell of the chip INCLUDING this net's own
// segments. On success the net's segments are updated in place and obs
// reflects the new geometry; on failure both are restored (Algorithm 2
// steps 22-24) and ok is false.
func Match(obs *grid.ObsMap, net *Net, delta int) bool {
	return match(route.NewWorkspace(obs.Grid()), obs, net, delta, false)
}

// MatchBestEffort is Match without the all-or-nothing restore: when full
// matching fails, partial detours that reduced the spread are kept. The
// paper's Algorithm 2 restores (Match); this variant exists for the
// ablation comparing the two policies — a reduced spread still reduces
// simulated actuation skew even when it misses delta.
func MatchBestEffort(obs *grid.ObsMap, net *Net, delta int) bool {
	return match(route.NewWorkspace(obs.Grid()), obs, net, delta, true)
}

// MatchWS is Match with a caller-owned search workspace (one per goroutine);
// every bounded-length reroute search reuses ws instead of allocating.
func MatchWS(ws *route.Workspace, obs *grid.ObsMap, net *Net, delta int) bool {
	return match(ws, obs, net, delta, false)
}

// MatchBestEffortWS is MatchBestEffort with a caller-owned search workspace.
func MatchBestEffortWS(ws *route.Workspace, obs *grid.ObsMap, net *Net, delta int) bool {
	return match(ws, obs, net, delta, true)
}

func match(ws *route.Workspace, obs *grid.ObsMap, net *Net, delta int, bestEffort bool) bool {
	if net.Matched(delta) {
		return true
	}
	backupNet := net.Clone()
	// The all-or-nothing restore (Algorithm 2 steps 22-24) rewinds a change
	// journal on obs instead of keeping an O(cells) clone: detours touch a
	// handful of cells per round, so undoing them is proportional to the work
	// actually done. A caller may already be journaling obs (e.g. a scheduler
	// scratch map); nested scopes share that journal via a mark.
	owned := !obs.Journaling()
	if owned {
		obs.StartJournal(nil)
	}
	mark := obs.JournalLen()
	done := func(ok bool) bool {
		if owned {
			obs.StopJournal()
		}
		return ok
	}
	restore := func() {
		*net = *backupNet
		obs.RewindJournal(mark)
	}

	for r := 0; r < maxRounds; r++ { // Steps 3-6
		if net.Matched(delta) {
			return done(true)
		}
		_, maxL := net.Spread()
		detoured := make([]bool, len(net.Segments)) // Fd, step 7
		progress := false
		for i := range net.FullPaths { // Steps 8-21
			l := net.FullLen(i)
			if l >= maxL-delta {
				continue
			}
			success := false
			for _, si := range net.FullPaths[i] { // Steps 12-21
				if detoured[si] {
					// An earlier detour this round already lengthened a
					// shared segment of this full path.
					success = true
					break
				}
				seg := net.Segments[si]
				need := l - seg.Len() // length contributed by other segments
				ltMin := (maxL - delta) - need
				ltMax := maxL - need
				if newSeg, ok := rerouteSegment(ws, obs, net, si, ltMin, ltMax, bestEffort); ok {
					obs.SetPath(net.Segments[si], false)
					obs.SetPath(newSeg, true)
					net.Segments[si] = newSeg
					detoured[si] = true
					success = true
					progress = true
					break
				}
			}
			if !success {
				if bestEffort {
					// Keep the spread reduction achieved so far.
					return done(net.Matched(delta))
				}
				// Steps 22-24: restore and give up.
				restore()
				return done(false)
			}
		}
		if !progress && !net.Matched(delta) {
			break
		}
	}
	if net.Matched(delta) {
		return done(true)
	}
	if bestEffort {
		return done(false)
	}
	restore()
	return done(false)
}

// rerouteSegment searches for a replacement of segment si with length in
// [ltMin, ltMax], keeping its endpoints. The segment's own interior cells
// are freed for the search; everything else in obs blocks. In best-effort
// mode a partial lengthening below ltMin still counts as success (the
// spread shrinks even though the window is missed).
//
// The segment is freed on obs itself under a journal mark (match always has
// a journal active) and the mark is rewound before returning, so obs is
// left exactly as it came in — the caller commits the swap.
func rerouteSegment(ws *route.Workspace, obs *grid.ObsMap, net *Net, si, ltMin, ltMax int, bestEffort bool) (grid.Path, bool) {
	seg := net.Segments[si]
	if len(seg) < 2 || ltMin > ltMax {
		return nil, false
	}
	if seg.Len() >= ltMin && seg.Len() <= ltMax {
		return seg, true
	}
	if seg.Len() > ltMax {
		// Shortening is the ordinary router's job, not the detour stage's.
		return nil, false
	}
	g := obs.Grid()
	mk := obs.JournalLen()
	defer obs.RewindJournal(mk)
	obs.SetPath(seg, false)
	// Keep the endpoints blocked against *other* nets but exempt for this
	// search via Sources/Targets.
	src := seg[0]
	dst := seg[len(seg)-1]
	// Any path of length <= ltMax between the endpoints stays within their
	// bounding box expanded by half the slack; windowing the search there
	// keeps the detour local and cheap.
	window := seg.BBox().Union(geom.RectOf(src, dst)).Expand((ltMax-geom.Dist(src, dst))/2 + 2)
	// For very large windows the bounded search gets expensive when it
	// fails; the cheap U-turn extension goes first there.
	cheapFirst := window.Area() > 10000
	if cheapFirst {
		if p, ok := route.ExtendPath(obs, seg, ltMin, ltMax); ok {
			return p, true
		}
	}
	if p, ok := ws.BoundedAStar(g, route.Request{
		Sources: []geom.Pt{src},
		Targets: []geom.Pt{dst},
		Obs:     obs,
		Bounds:  &window,
	}, ltMin, ltMax); ok {
		return p, true
	}
	if !cheapFirst {
		// Fallback: stack U-turn extensions onto the existing geometry.
		if p, ok := route.ExtendPath(obs, seg, ltMin, ltMax); ok {
			return p, true
		}
	}
	if bestEffort {
		// Keep whatever lengthening the extension achieved.
		if p, _ := route.ExtendPath(obs, seg, ltMin, ltMax); p.Len() > seg.Len() && p.Len() <= ltMax {
			return p, true
		}
	}
	return nil, false
}
