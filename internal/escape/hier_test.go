package escape

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/route"
)

// hierCheckValid asserts the escape invariants shared by the flat and
// hierarchical routers: disjoint valid paths over free non-boundary cells,
// each ending at a distinct candidate pin, with Unrouted exactly
// complementing the routed set. The hierarchical router is approximate —
// its pin assignment and lengths may differ from the flat network — so these
// invariants, not byte-identity, are its contract (the negotiation
// hierarchy's byte-identity property lives in route.TestHierNegotiateEqualsFlat).
func hierCheckValid(t *testing.T, trial int, g grid.Grid, obs *grid.ObsMap, res *Result, nTerms int, pins []geom.Pt) {
	t.Helper()
	candidate := map[geom.Pt]bool{}
	for _, p := range pins {
		candidate[p] = true
	}
	usedCells := map[geom.Pt]int{}
	usedPins := map[geom.Pt]int{}
	routed := map[int]bool{}
	for id, p := range res.Paths {
		routed[id] = true
		if !p.Valid() {
			t.Fatalf("trial %d: invalid path for %d", trial, id)
		}
		pin := p[len(p)-1]
		if !candidate[pin] {
			t.Fatalf("trial %d: path of %d ends at non-pin %v", trial, id, pin)
		}
		if prev, dup := usedPins[pin]; dup {
			t.Fatalf("trial %d: pin %v used by %d and %d", trial, pin, prev, id)
		}
		usedPins[pin] = id
		if res.Pins[id] != pin {
			t.Fatalf("trial %d: Pins map inconsistent for %d", trial, id)
		}
		for i, c := range p {
			if i == 0 {
				continue // take-off sits on the cluster's own channel
			}
			if prev, dup := usedCells[c]; dup {
				t.Fatalf("trial %d: cell %v shared by %d and %d", trial, c, prev, id)
			}
			usedCells[c] = id
			if obs.Blocked(c) && c != pin {
				t.Fatalf("trial %d: path of %d crosses blocked %v", trial, id, c)
			}
			if g.OnBoundary(c) && c != pin {
				t.Fatalf("trial %d: non-pin boundary cell %v used by %d", trial, c, id)
			}
		}
	}
	for _, id := range res.Unrouted {
		if routed[id] {
			t.Fatalf("trial %d: %d both routed and unrouted", trial, id)
		}
	}
	if len(res.Paths)+len(res.Unrouted) != nTerms {
		t.Fatalf("trial %d: %d routed + %d unrouted != %d terminals",
			trial, len(res.Paths), len(res.Unrouted), nTerms)
	}
}

// TestRouteHierValidity sweeps RouteHier over random instances — including
// corridor-fallback and final-flat-pass cases — and asserts the escape
// invariants hold on every one. Cardinality is checked in aggregate: the
// greedy commit may trail the exact network by a cluster on an adversarial
// instance (the flow's de-clustering retries exist for exactly that), but
// across the sweep it must stay within a few percent of the flat optimum or
// the fallback ladder is broken.
func TestRouteHierValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	hp := route.HierParams{Mode: route.HierOn, TileSize: 8}
	sawFallback := false
	hierRouted, flatRouted := 0, 0
	for trial := 0; trial < 40; trial++ {
		w, h := 24+rng.Intn(40), 24+rng.Intn(40)
		g := grid.New(w, h)
		obs := grid.NewObsMap(g)
		for i := 0; i < g.Cells()/8; i++ {
			obs.Set(geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}, true)
		}
		nTerms := 2 + rng.Intn(8)
		var terms []Terminal
		for i := 0; i < nTerms; i++ {
			c := geom.Pt{X: 1 + rng.Intn(w-2), Y: 1 + rng.Intn(h-2)}
			obs.Set(c, true)
			terms = append(terms, Terminal{ClusterID: i, Cells: []geom.Pt{c}})
		}
		var pins []geom.Pt
		for x := 1; x < w-1; x += 3 {
			pins = append(pins, geom.Pt{X: x, Y: 0})
		}
		for _, workers := range []int{0, 4} {
			res, st := RouteHier(obs, terms, pins, hp, workers, route.QueueAuto)
			hierCheckValid(t, trial, g, obs, res, nTerms, pins)
			if st.FlatFallbacks > 0 || st.NoCorridor > 0 {
				sawFallback = true
			}
			flat := Route(obs, terms, pins)
			hierRouted += len(res.Paths)
			flatRouted += len(flat.Paths)
		}
	}
	if !sawFallback {
		t.Error("no trial exercised a fallback; the sweep proves nothing about the ladder")
	}
	if hierRouted < flatRouted*95/100 {
		t.Errorf("hierarchy routed %d clusters across the sweep, flat %d (> 5%% behind)", hierRouted, flatRouted)
	}
}

// TestRouteHierDeterministicAcrossWorkers pins byte-identical hierarchical
// output for every worker count (the scheduler's commit-order contract).
func TestRouteHierDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	hp := route.HierParams{Mode: route.HierOn, TileSize: 8}
	for trial := 0; trial < 10; trial++ {
		w, h := 40+rng.Intn(24), 40+rng.Intn(24)
		g := grid.New(w, h)
		obs := grid.NewObsMap(g)
		for i := 0; i < g.Cells()/10; i++ {
			obs.Set(geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}, true)
		}
		var terms []Terminal
		for i := 0; i < 6; i++ {
			c := geom.Pt{X: 1 + rng.Intn(w-2), Y: 1 + rng.Intn(h-2)}
			obs.Set(c, true)
			terms = append(terms, Terminal{ClusterID: i, Cells: []geom.Pt{c}})
		}
		var pins []geom.Pt
		for x := 1; x < w-1; x += 2 {
			pins = append(pins, geom.Pt{X: x, Y: 0})
		}
		base, baseStats := RouteHier(obs, terms, pins, hp, 0, route.QueueAuto)
		for _, workers := range []int{1, 2, 8} {
			res, st := RouteHier(obs, terms, pins, hp, workers, route.QueueAuto)
			if len(res.Paths) != len(base.Paths) || res.TotalLen != base.TotalLen {
				t.Fatalf("trial %d workers=%d: result shape differs from sequential", trial, workers)
			}
			for id, p := range base.Paths {
				q := res.Paths[id]
				if len(p) != len(q) {
					t.Fatalf("trial %d workers=%d cluster %d: path lengths differ", trial, workers, id)
				}
				for i := range p {
					if p[i] != q[i] {
						t.Fatalf("trial %d workers=%d cluster %d: paths differ at %d", trial, workers, id, i)
					}
				}
			}
			if st != baseStats {
				t.Fatalf("trial %d workers=%d: stats %+v differ from sequential %+v", trial, workers, st, baseStats)
			}
		}
	}
}
