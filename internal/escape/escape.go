// Package escape implements the escape-routing stage of Section 5: routed
// clusters are connected to boundary control pins by solving one global
// minimum-cost flow. The construction realizes the paper's LP constraints
// directly on a network:
//
//   - each routing grid is split into an in-node and an out-node joined by a
//     capacity-1 arc, enforcing Constraint (12) (inflow+outflow <= 2, i.e. at
//     most one path through a cell);
//   - obstacle cells and non-pin boundary cells get no in/out arc
//     (Constraint 8);
//   - a cluster node with capacity 1 fans out to that cluster's permitted
//     take-off cells (Constraints 6, 10: root for LM clusters of >= 3 valves,
//     path middle for 2-valve LM clusters, any path cell otherwise); take-off
//     cells accept no inward flow (Constraints 7, 11);
//   - each candidate control pin connects to the super sink with capacity 1.
//
// Successive shortest paths maximize the number of routed clusters first and
// total channel length second — the LP's beta-weighted objective — and the
// network matrix integrality gives Theorem 1's optimality.
package escape

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/mcf"
)

// Terminal is one cluster's take-off set.
type Terminal struct {
	ClusterID int
	Cells     []geom.Pt
	// Costs, when non-nil, assigns a per-cell take-off penalty (same length
	// as Cells). The flow then trades escape channel length against the
	// penalty — PACOR uses it to steer length-matching clusters toward
	// take-offs that keep their spread small.
	Costs []int
}

// Result maps cluster IDs to their escape path and assigned control pin.
type Result struct {
	Paths map[int]grid.Path // first cell is the take-off, last is the pin
	Pins  map[int]geom.Pt
	// Unrouted lists cluster IDs that could not reach any pin.
	Unrouted []int
	// TotalLen is the summed channel length of all escape paths.
	TotalLen int
}

// Route solves the escape problem. obs must contain every existing channel
// cell, valve, and chip obstacle; take-off cells may (and normally do) lie
// on blocked cells — they are junctions on existing channels. pins is the
// candidate control pin set CP.
func Route(obs *grid.ObsMap, terms []Terminal, pins []geom.Pt) *Result {
	g := obs.Grid()
	cells := g.Cells()
	// Node ids: in(c) = 2c, out(c) = 2c+1, then S, T, then cluster nodes.
	S := 2 * cells
	T := S + 1
	base := T + 1
	net := mcf.NewGraph(base + len(terms))

	pinSet := make(map[geom.Pt]bool, len(pins))
	for _, p := range pins {
		if g.In(p) {
			pinSet[p] = true
		}
	}
	takeoff := make(map[geom.Pt]bool)
	for _, tm := range terms {
		for _, c := range tm.Cells {
			takeoff[c] = true
		}
	}

	usable := func(p geom.Pt) bool {
		if !g.In(p) || obs.Blocked(p) {
			return false
		}
		// Constraint (8): boundary cells that are not control pins carry no
		// flow.
		if g.OnBoundary(p) && !pinSet[p] {
			return false
		}
		return true
	}

	// Grid fabric: in->out per usable cell, out->neighbor-in per adjacency.
	// Take-off cells are normally blocked (they sit on existing channels) but
	// still need outgoing adjacency so an escape path can leave them; they
	// get no in->out arc, which is exactly Constraints (7) and (11).
	var nbuf []geom.Pt
	for i := 0; i < cells; i++ {
		p := g.Pt(i)
		if !usable(p) && !takeoff[p] {
			continue
		}
		if usable(p) {
			net.AddArc(2*i, 2*i+1, 1, 0)
		}
		nbuf = g.Neighbors(p, nbuf)
		for _, q := range nbuf {
			if usable(q) {
				net.AddArc(2*i+1, 2*g.Index(q), 1, 1)
			}
		}
	}
	// Pins drain to T. A pin covered by an existing channel is unusable
	// unless that channel is a take-off cell (zero-length escape).
	for _, p := range pins {
		if g.In(p) && (!obs.Blocked(p) || takeoff[p]) {
			net.AddArc(2*g.Index(p)+1, T, 1, 0)
		}
	}
	// Cluster nodes: S -> C_q -> out(cell) for each take-off cell. Take-off
	// cells sit on existing channels (blocked), so they have no in->out arc
	// and therefore no inward flow (Constraints 7, 11). A take-off that is
	// itself a usable free cell (a bare valve) also has its fabric arcs; the
	// cluster arc injects directly into its out-node either way.
	for k, tm := range terms {
		cq := base + k
		net.AddArc(S, cq, 1, 0)
		for i, c := range tm.Cells {
			if g.In(c) {
				cost := 0
				if tm.Costs != nil {
					cost = tm.Costs[i]
				}
				net.AddArc(cq, 2*g.Index(c)+1, 1, cost)
			}
		}
	}

	flow, _ := net.MinCostFlow(S, T, -1)
	res := &Result{
		Paths: make(map[int]grid.Path),
		Pins:  make(map[int]geom.Pt),
	}
	if flow > 0 {
		for _, nodes := range net.DecomposeUnitPaths(S, T) {
			// nodes = S, C_q, out(c0), in(c1), out(c1), ..., in(pin), T
			if len(nodes) < 3 {
				continue
			}
			q := nodes[1] - base
			if q < 0 || q >= len(terms) {
				continue
			}
			var path grid.Path
			for _, nd := range nodes[2 : len(nodes)-1] {
				c := g.Pt(nd / 2)
				if len(path) == 0 || path[len(path)-1] != c {
					path = append(path, c)
				}
			}
			if len(path) == 0 {
				continue
			}
			id := terms[q].ClusterID
			res.Paths[id] = path
			res.Pins[id] = path[len(path)-1]
			res.TotalLen += path.Len()
		}
	}
	for _, tm := range terms {
		if _, ok := res.Paths[tm.ClusterID]; !ok {
			res.Unrouted = append(res.Unrouted, tm.ClusterID)
		}
	}
	sort.Ints(res.Unrouted)
	return res
}
