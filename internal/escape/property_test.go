package escape

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestRandomScenarios: on random obstacle fields with random terminals and
// pins, the escape solution must always be internally consistent: valid
// disjoint paths, pins used at most once, paths over free cells only, and
// the unrouted list exactly complementing the routed set.
func TestRandomScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		w, h := 16+rng.Intn(16), 16+rng.Intn(16)
		g := grid.New(w, h)
		obs := grid.NewObsMap(g)
		for i := 0; i < g.Cells()/8; i++ {
			obs.Set(geom.Pt{X: rng.Intn(w), Y: rng.Intn(h)}, true)
		}
		nTerms := 2 + rng.Intn(6)
		var terms []Terminal
		for i := 0; i < nTerms; i++ {
			c := geom.Pt{X: 1 + rng.Intn(w-2), Y: 1 + rng.Intn(h-2)}
			obs.Set(c, true) // terminals sit on channels
			terms = append(terms, Terminal{ClusterID: i, Cells: []geom.Pt{c}})
		}
		var pins []geom.Pt
		for x := 1; x < w-1; x += 3 {
			pins = append(pins, geom.Pt{X: x, Y: 0})
		}
		res := Route(obs, terms, pins)

		routed := map[int]bool{}
		usedCells := map[geom.Pt]int{}
		usedPins := map[geom.Pt]int{}
		for id, p := range res.Paths {
			routed[id] = true
			if !p.Valid() {
				t.Fatalf("trial %d: invalid path for %d", trial, id)
			}
			pin := p[len(p)-1]
			if prev, dup := usedPins[pin]; dup {
				t.Fatalf("trial %d: pin %v used by %d and %d", trial, pin, prev, id)
			}
			usedPins[pin] = id
			if res.Pins[id] != pin {
				t.Fatalf("trial %d: Pins map inconsistent", trial)
			}
			for i, c := range p {
				if i == 0 {
					continue // take-off sits on the cluster's own channel
				}
				if prev, dup := usedCells[c]; dup {
					t.Fatalf("trial %d: cell %v shared by %d and %d", trial, c, prev, id)
				}
				usedCells[c] = id
				if obs.Blocked(c) {
					t.Fatalf("trial %d: path of %d crosses blocked %v", trial, id, c)
				}
				if g.OnBoundary(c) && c != pin {
					t.Fatalf("trial %d: non-pin boundary cell %v used", trial, c)
				}
			}
		}
		for _, id := range res.Unrouted {
			if routed[id] {
				t.Fatalf("trial %d: %d both routed and unrouted", trial, id)
			}
		}
		if len(res.Paths)+len(res.Unrouted) != nTerms {
			t.Fatalf("trial %d: %d routed + %d unrouted != %d terminals",
				trial, len(res.Paths), len(res.Unrouted), nTerms)
		}
	}
}

// TestRoutedCountIsMaximum: with k terminals and k' >= k reachable pins in
// an open field, all terminals route (the flow maximizes cardinality first).
func TestRoutedCountIsMaximum(t *testing.T) {
	g := grid.New(24, 24)
	obs := grid.NewObsMap(g)
	var terms []Terminal
	for i := 0; i < 5; i++ {
		c := geom.Pt{X: 4 + 4*i, Y: 12}
		obs.Set(c, true)
		terms = append(terms, Terminal{ClusterID: i, Cells: []geom.Pt{c}})
	}
	var pins []geom.Pt
	for x := 2; x < 22; x += 4 {
		pins = append(pins, geom.Pt{X: x, Y: 0})
	}
	res := Route(obs, terms, pins)
	if len(res.Unrouted) != 0 {
		t.Fatalf("open field with enough pins: unrouted %v", res.Unrouted)
	}
}

// TestCostsBiasTakeoffChoice: with a penalized near cell and a free far
// cell, the flow must weigh the penalty against the extra channel length.
func TestCostsBiasTakeoffChoice(t *testing.T) {
	g := grid.New(20, 8)
	obs := grid.NewObsMap(g)
	near := geom.Pt{X: 16, Y: 4}
	far := geom.Pt{X: 4, Y: 4}
	obs.Set(near, true)
	obs.Set(far, true)
	pins := []geom.Pt{{X: 19, Y: 4}}
	// Penalty larger than the distance saving: the far take-off wins.
	res := Route(obs, []Terminal{{
		ClusterID: 0,
		Cells:     []geom.Pt{near, far},
		Costs:     []int{100, 0},
	}}, pins)
	if len(res.Unrouted) != 0 {
		t.Fatal("unrouted")
	}
	if res.Paths[0][0] != far {
		t.Errorf("take-off %v, want the unpenalized far cell", res.Paths[0][0])
	}
	// Small penalty: the near take-off wins.
	res = Route(obs, []Terminal{{
		ClusterID: 0,
		Cells:     []geom.Pt{near, far},
		Costs:     []int{2, 0},
	}}, pins)
	if res.Paths[0][0] != near {
		t.Errorf("take-off %v, want the near cell for small penalty", res.Paths[0][0])
	}
}
