package escape

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/mcf"
	"repro/internal/route"
)

// This file implements the hierarchical escape router: the drop-in
// alternative to Route for large grids, where the flat construction's
// per-cell flow network (two nodes and up to six arcs per grid cell)
// dominates the whole PACOR flow's runtime.
//
// Two stages replace the single grid-scale min-cost flow:
//
//  1. Global: the grid is coarsened into tiles (route.Tiling) and a small
//     flow network is solved over tile nodes — S → cluster → take-off tile →
//     ... → pin tile → T, with tile-crossing capacities from free boundary
//     cell pairs and congestion-stepped costs. One joint solve assigns every
//     cluster a tile corridor and budgets each tile's candidate pins.
//  2. Detailed: each cluster's escape channel is an A* from its take-off set
//     to its destination tile's candidate pins, masked to its corridor
//     (widened one rung on failure), run through the deterministic
//     speculative scheduler so disjoint corridors route concurrently while
//     results commit in cluster order.
//
// The global stage deliberately assigns tiles, not pins: committed escape
// channels partition the free space (every channel is a wall from the
// interior to the boundary), so whichever single pin a global pass picked
// would often end up in the wrong region by the time its cluster commits.
// Targeting the destination tile's whole pin set lets the search land on the
// nearest pin still reachable in ITS region. A taken pin seals itself for
// every later search — a boundary pin has exactly one interior access cell,
// and the path that claimed the pin occupies it — so the sequential commit
// transcript assigns distinct pins without any bookkeeping in the hot path
// (the tile→T capacity already bounds units per tile by pins per tile).
//
// Clusters that fail even the widened search are NOT retried unmasked —
// at chip scale an unmasked search is the grid-size cost the hierarchy
// exists to avoid, and the corridor that failed was assigned on a map that
// no longer exists (every commit since has moved the walls). Instead the
// repair loop re-runs the global stage on the current obstacle state for
// the failed clusters only (see hierRepairRounds); a final flat pass
// sweeps up whatever the repair rounds could not place, including the
// zero-length escapes onto covered take-off pins that the conservative
// capacity model excludes.
//
// Unlike the negotiation hierarchy (route/hier.go), this one is
// APPROXIMATE: the flat network optimizes pin assignment and total length
// jointly and exactly (Theorem 1); here pin choice is greedy within the
// corridor's tile and paths commit in cluster order, so total escape length
// can differ from the flat optimum. Callers report the delta explicitly
// (EXPERIMENTS.md). Routability is protected by the repair loop and the
// final flat pass.
//
// Determinism: the tile network is built in deterministic order, unit-path
// decomposition follows deterministic residual walks, candidate pins keep
// input order, repair rounds run sequentially in terminal order, and the
// scheduler commits in task order — so the result is byte-identical for
// every worker count.

// hierRepairRounds bounds the detailed stage's repair loop: a cluster that
// fails inside its corridor is usually walled in by paths committed before
// it, and its corridor — assigned on the empty grid — no longer reflects the
// free space. Each repair round rebuilds the tile graph on the CURRENT
// obstacle state (committed paths included) and re-runs the small tile-level
// flow for the failed clusters only, so they get corridors that steer around
// the walls. Rounds are cheap (the tile graph is ~w*h/1024 nodes and the
// failure set shrinks monotonically — a round that commits nothing ends the
// loop), and they replace both the per-unit unmasked searches and the
// whole-stage replays that made failures grid-scale expensive.
const hierRepairRounds = 3

// hierRingPenalty is the extra per-cell cost the detailed stage charges for
// entering a cell one step inside the boundary. A greedy path that runs
// parallel to the boundary on that ring seals every pin along its stretch
// for all later clusters. hierTakeoffPenalty is the (stiffer) charge for
// entering a cell adjacent to any take-off: most take-offs are a single cell
// (an LM tree root or pair tap), and one committed path brushing past can
// wall one in for good. Every path starts by stepping off its own take-off
// into a penalized cell, but that is a constant on all of its candidates and
// steers nothing. Penalties make sealing cells last-resort-only while leaving
// them available when there is genuinely no other way through; the flow
// network needs no such nudge — its max-flow objective would never seal a
// take-off or pin it still has to route a unit through.
const (
	hierRingPenalty    = 4
	hierTakeoffPenalty = 16
)

// RouteHier solves the escape problem hierarchically. It matches Route's
// contract (obs is not modified; the result has the same shape) but not
// necessarily its exact output; the returned stats report the per-stage
// work. Take-off Costs are honored approximately: they price the global
// stage's cluster→tile arcs (each distinct take-off tile at its cheapest
// member), steering corridors toward cheap take-off regions, but the
// detailed search then lands on whichever take-off cell it reaches first —
// the flat network's exact penalty-vs-length trade-off is not replayed.
func RouteHier(obs *grid.ObsMap, terms []Terminal, pins []geom.Pt, hp route.HierParams, workers int, queue route.QueueMode) (*Result, route.HierStats) {
	var st route.HierStats
	g := obs.Grid()

	pinSet := make(map[geom.Pt]bool, len(pins))
	for _, p := range pins {
		if g.In(p) {
			pinSet[p] = true
		}
	}
	takeoff := make(map[geom.Pt]bool)
	for _, tm := range terms {
		for _, c := range tm.Cells {
			takeoff[c] = true
		}
	}

	// Detailed-stage work map. Beyond the existing obstacles: boundary cells
	// that are not control pins carry no flow (Constraint 8), and EVERY pin
	// cell is blocked — a search reaches its own pin through the target
	// exemption, so pre-blocking keeps every path off foreign pins (the flat
	// network's per-cell capacity does this implicitly).
	work := obs.Clone()
	for x := 0; x < g.W; x++ {
		for _, p := range []geom.Pt{{X: x, Y: 0}, {X: x, Y: g.H - 1}} {
			if !pinSet[p] {
				work.Set(p, true)
			}
		}
	}
	for y := 0; y < g.H; y++ {
		for _, p := range []geom.Pt{{X: 0, Y: y}, {X: g.W - 1, Y: y}} {
			if !pinSet[p] {
				work.Set(p, true)
			}
		}
	}
	for _, p := range pins {
		if g.In(p) {
			work.Set(p, true)
		}
	}

	ts := hp.TileSize
	if ts <= 0 {
		ts = route.DefaultTileSize
	}

	type unit struct {
		k        int // terminal index
		corridor []int32
		tgts     []geom.Pt
	}

	// assign is the global stage: coarsen om into tiles, solve the tile-level
	// flow for the given terminal indices, and decompose the result into
	// per-cluster corridors. om is the capacity source — the pristine work
	// map on the first call, the current committed state in repair rounds —
	// and usedPin masks pins already claimed. Terminals that get no corridor
	// (no residual capacity, or no reachable pin tile) are simply absent from
	// the returned units.
	var pnbuf []geom.Pt
	assign := func(om *grid.ObsMap, ks []int, usedPin map[geom.Pt]bool) (*route.Tiling, []unit) {
		t := route.NewTiling(om, ts)
		nt := t.Tiles()
		st.Tiles += nt
		S := nt
		T := nt + 1
		base := nt + 2
		net := mcf.NewGraph(base + len(ks))
		D := t.Size()
		t.ForEachAdjacency(func(u, v, c int) {
			// Congestion steps: about half the crossing capacity at base cost
			// D (one tile of detailed routing), the rest at a premium, so
			// corridors spread across parallel routes before saturating one
			// boundary.
			fast := (c + 1) / 2
			net.AddArc(u, v, fast, D)
			net.AddArc(v, u, fast, D)
			if rest := c - fast; rest > 0 {
				net.AddArc(u, v, rest, 3*D)
				net.AddArc(v, u, rest, 3*D)
			}
		})
		// Pin drains: each tile accepts as many units as it has REACHABLE
		// candidate pins — unclaimed, unblocked, and with a free interior
		// access cell in om. A boundary pin's only way in is its single
		// interior neighbor; when a channel sits on it the pin can never
		// terminate a detailed search, and admitting it would both waste a
		// unit of global capacity and fix a search on an impossible target.
		// Pins covered by an existing channel are reachable only as
		// zero-length escapes onto a take-off; the final flat pass handles
		// those, keeping the global capacity model conservative.
		tilePins := make([][]geom.Pt, nt)
		for _, p := range pins {
			if !g.In(p) || obs.Blocked(p) || usedPin[p] {
				continue
			}
			pnbuf = g.Neighbors(p, pnbuf)
			open := false
			for _, q := range pnbuf {
				if !om.Blocked(q) {
					open = true
					break
				}
			}
			if open {
				ti := t.TileOf(p)
				tilePins[ti] = append(tilePins[ti], p)
			}
		}
		for ti := 0; ti < nt; ti++ {
			if n := len(tilePins[ti]); n > 0 {
				net.AddArc(ti, T, n, 0)
			}
		}
		// Cluster injections: S → C_q → each distinct take-off tile, priced
		// at the tile's cheapest take-off penalty (zero without Costs).
		var tl, tc []int
		for x, k := range ks {
			tm := terms[k]
			cq := base + x
			net.AddArc(S, cq, 1, 0)
			tl, tc = tl[:0], tc[:0]
			for i, c := range tm.Cells {
				if !g.In(c) {
					continue
				}
				ti := t.TileOf(c)
				cost := 0
				if tm.Costs != nil {
					cost = tm.Costs[i]
				}
				found := false
				for y := range tl {
					if tl[y] == ti {
						if cost < tc[y] {
							tc[y] = cost
						}
						found = true
						break
					}
				}
				if !found {
					tl = append(tl, ti)
					tc = append(tc, cost)
				}
			}
			for y := range tl {
				net.AddArc(cq, tl[y], 1, tc[y])
			}
		}

		net.MinCostFlow(S, T, -1)

		// Corridor extraction. Units decompose in cluster order (S's arc
		// order); each unit targets its destination tile's whole candidate-
		// pin slice — units sharing a tile share the slice read-only, and the
		// tile→T capacity bounds them by its length. Which pin a unit gets is
		// decided by its detailed search at commit time (see the package
		// comment above).
		var units []unit
		for _, nodes := range net.DecomposeUnitPaths(S, T) {
			if len(nodes) < 4 {
				continue
			}
			x := nodes[1] - base
			if x < 0 || x >= len(ks) {
				continue
			}
			dest := nodes[len(nodes)-2]
			pl := tilePins[dest]
			if len(pl) == 0 {
				continue // defensive; a pinless tile never gets a tile→T arc
			}
			corr := make([]int32, 0, len(nodes)-3)
			for _, nd := range nodes[2 : len(nodes)-1] {
				corr = append(corr, int32(nd))
			}
			units = append(units, unit{k: ks[x], corridor: corr, tgts: pl})
		}
		st.Corridors += len(units)
		return t, units
	}

	allK := make([]int, len(terms))
	for k := range allK {
		allK[k] = k
	}
	t, units := assign(work, allK, nil)
	hasUnit := make([]bool, len(terms))
	for _, u := range units {
		hasUnit[u.k] = true
	}
	var noCorr []int
	for k := range terms {
		if !hasUnit[k] {
			st.NoCorridor++
			noCorr = append(noCorr, k)
		}
	}

	inSrcs := func(k int) []geom.Pt {
		cells := terms[k].Cells
		ok := true
		for _, c := range cells {
			if !g.In(c) {
				ok = false
				break
			}
		}
		if ok {
			return cells
		}
		srcs := make([]geom.Pt, 0, len(cells))
		for _, c := range cells {
			if g.In(c) {
				srcs = append(srcs, c)
			}
		}
		return srcs
	}
	// Static seal penalties (see hierRingPenalty / hierTakeoffPenalty).
	// Integral values under scale 1 keep the requests bucket-queue certified.
	ring := make([]float64, g.Cells())
	for x := 1; x < g.W-1; x++ {
		ring[g.Index(geom.Pt{X: x, Y: 1})] = hierRingPenalty
		ring[g.Index(geom.Pt{X: x, Y: g.H - 2})] = hierRingPenalty
	}
	for y := 1; y < g.H-1; y++ {
		ring[g.Index(geom.Pt{X: 1, Y: y})] = hierRingPenalty
		ring[g.Index(geom.Pt{X: g.W - 2, Y: y})] = hierRingPenalty
	}
	var nbuf []geom.Pt
	maxHist := float64(hierRingPenalty)
	for _, tm := range terms {
		for _, c := range tm.Cells {
			if !g.In(c) {
				continue
			}
			nbuf = g.Neighbors(c, nbuf)
			for _, q := range nbuf {
				ring[g.Index(q)] += hierTakeoffPenalty
				if h := ring[g.Index(q)]; h > maxHist {
					maxHist = h
				}
			}
		}
	}

	// Per-unit request state for the scheduled pass.
	type unitPrep struct {
		srcs       []geom.Pt
		mask, wide *route.TileMask
		win        geom.Rect
	}
	prep := make([]unitPrep, len(units))
	for i := range units {
		u := units[i]
		srcs := inSrcs(u.k)
		prep[i] = unitPrep{
			srcs: srcs,
			mask: t.BuildMask(u.corridor, 1),
			wide: t.BuildMask(u.corridor, 3),
			win: t.CorridorRect(u.corridor, 3).
				Union(route.SearchWindow(g, srcs, u.tgts)),
		}
	}

	// Scheduled pass: one task per unit, committed in cluster order. The
	// in-task ladder is corridor → widened only; units that fail both go to
	// the repair loop below instead of searching the whole grid.
	res := &Result{
		Paths: make(map[int]grid.Path),
		Pins:  make(map[int]geom.Pt),
	}
	usedPin := make(map[geom.Pt]bool, len(units))
	att := work.Clone()
	var failedK []int // terminal indices, in commit order
	tasks := make([]route.ScheduledTask, len(units))
	for i := range units {
		u := units[i]
		pr := &prep[i]
		st.WindowCells += int64(pr.win.Area())
		req := route.Request{
			Sources: pr.srcs, Targets: u.tgts, Queue: queue,
			Hist: ring, HistScale: 1, HistMax: 1 + int64(maxHist),
		}
		mask, wide := pr.mask, pr.wide
		tasks[i] = route.ScheduledTask{
			Window: pr.win,
			Run: func(ws *route.Workspace, sobs *grid.ObsMap) route.TaskOutcome {
				return detailLadder(ws, sobs, g, req, mask, wide)
			},
		}
	}
	route.RunScheduled(att, tasks, workers, func(i int, out route.TaskOutcome) {
		u := units[i]
		if lvl, _ := out.Payload.(int); lvl == 0 && out.OK {
			st.CorridorHits++
		} else {
			st.Widened++
		}
		if !out.OK {
			failedK = append(failedK, u.k)
			return
		}
		p := out.Paths[0]
		pin := p[len(p)-1]
		if usedPin[pin] {
			// Defensive: a taken pin's access cell is occupied by its
			// taker's path, so a committed (i.e. validated-against-att)
			// search cannot end on it; kept as a cheap guard against a
			// future multi-access-pin geometry.
			failedK = append(failedK, u.k)
			return
		}
		id := terms[u.k].ClusterID
		res.Paths[id] = p
		res.Pins[id] = pin
		res.TotalLen += p.Len()
		usedPin[pin] = true
	})

	// Repair loop: re-run the global stage on the committed state for the
	// failures (including the clusters the first solve left corridor-less —
	// capacity freed up by the flat map's consumption pattern may cover them
	// now), route the fresh corridors sequentially in terminal order, and
	// stop as soon as a round places nothing.
	failedK = append(failedK, noCorr...)
	sort.Ints(failedK)
	for round := 0; len(failedK) > 0 && round < hierRepairRounds; round++ {
		rt, runits := assign(att, failedK, usedPin)
		if len(runits) == 0 {
			break
		}
		st.Repaired++
		placed := make(map[int]bool, len(runits))
		rws := route.AcquireWorkspace(g)
		for _, u := range runits {
			mask := rt.BuildMask(u.corridor, 1)
			wide := rt.BuildMask(u.corridor, 3)
			st.WindowCells += int64(rt.CorridorRect(u.corridor, 3).Area())
			req := route.Request{
				Sources: inSrcs(u.k), Targets: u.tgts, Obs: att, Mask: mask,
				Queue: queue, Hist: ring, HistScale: 1, HistMax: 1 + int64(maxHist),
			}
			p, ok := rws.AStar(g, req)
			if ok {
				st.CorridorHits++
			} else {
				req.Mask = wide
				p, ok = rws.AStar(g, req)
				st.Widened++
			}
			if !ok {
				continue
			}
			pin := p[len(p)-1]
			if usedPin[pin] {
				continue // defensive, as in the scheduled commit
			}
			id := terms[u.k].ClusterID
			res.Paths[id] = p
			res.Pins[id] = pin
			res.TotalLen += p.Len()
			usedPin[pin] = true
			att.SetPath(p, true)
			placed[u.k] = true
		}
		route.ReleaseWorkspace(rws)
		if len(placed) == 0 {
			break
		}
		rest := failedK[:0]
		for _, k := range failedK {
			if !placed[k] {
				rest = append(rest, k)
			}
		}
		failedK = rest
	}

	// Final flat pass, in terminal order: whatever the repair rounds could
	// not place searches the whole grid for any still-unused pin (including
	// blocked take-off pins — the zero-length escapes the global capacity
	// model excluded). Sequential by construction: each routed path
	// immediately blocks its cells for the next.
	if len(failedK) > 0 {
		ws := route.AcquireWorkspace(g)
		for _, k := range failedK {
			var tgts []geom.Pt
			for _, p := range pins {
				if g.In(p) && !usedPin[p] && (!obs.Blocked(p) || takeoff[p]) {
					tgts = append(tgts, p)
				}
			}
			st.FlatFallbacks++
			p, ok := ws.AStar(g, route.Request{
				Sources: inSrcs(k), Targets: tgts, Obs: att, Queue: queue,
			})
			if !ok {
				continue
			}
			id := terms[k].ClusterID
			pin := p[len(p)-1]
			res.Paths[id] = p
			res.Pins[id] = pin
			res.TotalLen += p.Len()
			usedPin[pin] = true
			att.SetPath(p, true)
		}
		route.ReleaseWorkspace(ws)
	}

	// Refinement: the seal penalties buy routability during the greedy commit
	// but leave every path carrying their detours. With the full assignment
	// known, sealing no longer matters — rip each unit's path in turn and
	// re-route it penalty-free to its assigned pin against everything else,
	// keeping the shorter result. One pass recovers most of the greedy
	// stage's length overhead (the detour stage downstream needs the freed
	// cells for length matching). The pin stays fixed, so the pin bookkeeping
	// is untouched; clusters routed by a repair round or the flat pass refine
	// too (within their original corridor's widened mask, then unmasked),
	// their old path guaranteeing the re-search can only improve.
	rws := route.AcquireWorkspace(g)
	for i := range units {
		u := units[i]
		id := terms[u.k].ClusterID
		pin, ok := res.Pins[id]
		if !ok || !usedPin[pin] {
			continue
		}
		old := res.Paths[id]
		if len(old) < 3 {
			continue
		}
		for _, c := range old {
			att.Set(c, work.Blocked(c))
		}
		pr := &prep[i]
		req := route.Request{
			Sources: pr.srcs, Targets: []geom.Pt{pin}, Obs: att,
			Mask: pr.wide, Queue: queue,
		}
		p, ok := rws.AStar(g, req)
		if !ok {
			req.Mask = nil
			p, ok = rws.AStar(g, req)
		}
		if ok && p.Len() < old.Len() {
			st.Refined++
			res.TotalLen += p.Len() - old.Len()
			res.Paths[id] = p
			att.SetPath(p, true)
		} else {
			att.SetPath(old, true)
		}
	}
	route.ReleaseWorkspace(rws)

	for _, tm := range terms {
		if _, ok := res.Paths[tm.ClusterID]; !ok {
			res.Unrouted = append(res.Unrouted, tm.ClusterID)
		}
	}
	sort.Ints(res.Unrouted)
	return res, st
}

// detailLadder is the per-unit body of the scheduled detail pass: the
// corridor mask first, the widened mask on a miss, Payload recording which
// rung succeeded (0 corridor, 1 widened) so the commit callback can keep
// the hit statistics.
//
//pacor:hot
func detailLadder(ws *route.Workspace, sobs *grid.ObsMap, g grid.Grid, req route.Request, mask, wide *route.TileMask) route.TaskOutcome {
	r := req
	r.Obs = sobs
	r.Mask = mask
	lvl := 0
	p, ok := ws.AStar(g, r)
	if !ok {
		r.Mask = wide
		p, ok = ws.AStar(g, r)
		lvl = 1
	}
	if !ok {
		return route.TaskOutcome{Payload: lvl}
	}
	//pacor:allow hotalloc one-element path slice per completed unit, on the commit path rather than the search loop
	return route.TaskOutcome{OK: true, Paths: []grid.Path{p}, Payload: lvl}
}
