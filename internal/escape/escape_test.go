package escape

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestSingleClusterToNearestPin(t *testing.T) {
	g := grid.New(12, 12)
	obs := grid.NewObsMap(g)
	take := geom.Pt{X: 6, Y: 6}
	obs.Set(take, true) // take-off sits on an existing channel
	pins := []geom.Pt{{X: 0, Y: 6}, {X: 11, Y: 6}, {X: 6, Y: 0}}
	res := Route(obs, []Terminal{{ClusterID: 7, Cells: []geom.Pt{take}}}, pins)
	if len(res.Unrouted) != 0 {
		t.Fatalf("unrouted: %v", res.Unrouted)
	}
	p := res.Paths[7]
	if p[0] != take {
		t.Errorf("path starts at %v, want take-off", p[0])
	}
	if p.Len() != 5 {
		t.Errorf("len = %d, want 5 (nearest pin is 5 in-fabric steps... )", p.Len())
	}
	if res.Pins[7] != p[len(p)-1] {
		t.Error("pin mismatch")
	}
	if res.TotalLen != p.Len() {
		t.Errorf("TotalLen = %d, path len %d", res.TotalLen, p.Len())
	}
}

func TestDisjointPathsForTwoClusters(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	a := geom.Pt{X: 4, Y: 4}
	b := geom.Pt{X: 5, Y: 4}
	obs.Set(a, true)
	obs.Set(b, true)
	pins := []geom.Pt{{X: 4, Y: 0}, {X: 5, Y: 0}}
	res := Route(obs, []Terminal{
		{ClusterID: 0, Cells: []geom.Pt{a}},
		{ClusterID: 1, Cells: []geom.Pt{b}},
	}, pins)
	if len(res.Unrouted) != 0 {
		t.Fatalf("unrouted: %v", res.Unrouted)
	}
	seen := map[geom.Pt]int{}
	for id, p := range res.Paths {
		if !p.Valid() {
			t.Fatalf("cluster %d: invalid path %v", id, p)
		}
		for _, c := range p[1:] { // take-offs may touch their own channel
			if prev, dup := seen[c]; dup {
				t.Fatalf("cell %v shared by clusters %d and %d", c, prev, id)
			}
			seen[c] = id
		}
	}
	// Each cluster must land on a distinct pin.
	if res.Pins[0] == res.Pins[1] {
		t.Error("clusters share a pin")
	}
}

func TestMaximizesRoutedCount(t *testing.T) {
	// One pin, two clusters: exactly one routes; the other reports unrouted.
	g := grid.New(8, 8)
	obs := grid.NewObsMap(g)
	a := geom.Pt{X: 3, Y: 3}
	b := geom.Pt{X: 4, Y: 3}
	obs.Set(a, true)
	obs.Set(b, true)
	res := Route(obs, []Terminal{
		{ClusterID: 0, Cells: []geom.Pt{a}},
		{ClusterID: 1, Cells: []geom.Pt{b}},
	}, []geom.Pt{{X: 0, Y: 3}})
	if len(res.Paths) != 1 || len(res.Unrouted) != 1 {
		t.Fatalf("paths=%d unrouted=%v, want 1 and 1", len(res.Paths), res.Unrouted)
	}
}

func TestAvoidsObstaclesAndForeignChannels(t *testing.T) {
	g := grid.New(12, 12)
	obs := grid.NewObsMap(g)
	take := geom.Pt{X: 6, Y: 6}
	obs.Set(take, true)
	// A wall between take-off and the left pin.
	for y := 0; y < 12; y++ {
		if y != 10 {
			obs.Set(geom.Pt{X: 3, Y: y}, true)
		}
	}
	pins := []geom.Pt{{X: 0, Y: 6}}
	res := Route(obs, []Terminal{{ClusterID: 0, Cells: []geom.Pt{take}}}, pins)
	if len(res.Unrouted) != 0 {
		t.Fatalf("unrouted: %v", res.Unrouted)
	}
	p := res.Paths[0]
	for _, c := range p[1:] {
		if obs.Blocked(c) {
			t.Errorf("path crosses blocked cell %v", c)
		}
	}
	// Must detour through the gap at (3,10).
	if !p.Contains(geom.Pt{X: 3, Y: 10}) {
		t.Errorf("path %v does not use the only gap", p)
	}
}

func TestBoundaryNonPinBlocked(t *testing.T) {
	// Constraint (8): the path may not run along the boundary except at its
	// pin.
	g := grid.New(8, 8)
	obs := grid.NewObsMap(g)
	take := geom.Pt{X: 1, Y: 1}
	obs.Set(take, true)
	res := Route(obs, []Terminal{{ClusterID: 0, Cells: []geom.Pt{take}}},
		[]geom.Pt{{X: 7, Y: 4}})
	if len(res.Unrouted) != 0 {
		t.Fatalf("unrouted: %v", res.Unrouted)
	}
	p := res.Paths[0]
	for _, c := range p[:len(p)-1] {
		if g.OnBoundary(c) {
			t.Errorf("path uses non-pin boundary cell %v", c)
		}
	}
}

func TestMultiCellTakeoffPicksBest(t *testing.T) {
	// An ordinary cluster may take off anywhere along its channel; the flow
	// must use the cell nearest a pin.
	g := grid.New(12, 12)
	obs := grid.NewObsMap(g)
	var cellsList []geom.Pt
	for x := 2; x <= 9; x++ {
		c := geom.Pt{X: x, Y: 5}
		obs.Set(c, true)
		cellsList = append(cellsList, c)
	}
	pins := []geom.Pt{{X: 11, Y: 5}}
	res := Route(obs, []Terminal{{ClusterID: 0, Cells: cellsList}}, pins)
	if len(res.Unrouted) != 0 {
		t.Fatal("unrouted")
	}
	if res.Paths[0].Len() != 2 {
		t.Errorf("len = %d, want 2 (take off at (9,5))", res.Paths[0].Len())
	}
}

func TestTakeoffOnPin(t *testing.T) {
	g := grid.New(8, 8)
	obs := grid.NewObsMap(g)
	take := geom.Pt{X: 0, Y: 4}
	obs.Set(take, true)
	res := Route(obs, []Terminal{{ClusterID: 0, Cells: []geom.Pt{take}}},
		[]geom.Pt{{X: 0, Y: 4}})
	if len(res.Unrouted) != 0 {
		t.Fatalf("unrouted: %v", res.Unrouted)
	}
	if res.Paths[0].Len() != 0 {
		t.Errorf("zero-length escape expected, got %v", res.Paths[0])
	}
	if res.Pins[0] != take {
		t.Error("pin should be the take-off itself")
	}
}

func TestTotalLenMinimized(t *testing.T) {
	// Two clusters, two pins arranged so a greedy nearest assignment for the
	// first cluster would force a long route for the second; min-cost flow
	// must find the global optimum.
	g := grid.New(20, 7)
	obs := grid.NewObsMap(g)
	a := geom.Pt{X: 9, Y: 3} // closer to left pin by 1
	b := geom.Pt{X: 10, Y: 3}
	obs.Set(a, true)
	obs.Set(b, true)
	pins := []geom.Pt{{X: 0, Y: 3}, {X: 19, Y: 3}}
	res := Route(obs, []Terminal{
		{ClusterID: 0, Cells: []geom.Pt{b}}, // listed first but nearer right pin
		{ClusterID: 1, Cells: []geom.Pt{a}},
	}, pins)
	if len(res.Unrouted) != 0 {
		t.Fatal("unrouted")
	}
	if res.TotalLen != 9+9 {
		t.Errorf("TotalLen = %d, want 18 (a->left, b->right)", res.TotalLen)
	}
	if res.Pins[0] != (geom.Pt{X: 19, Y: 3}) || res.Pins[1] != (geom.Pt{X: 0, Y: 3}) {
		t.Errorf("assignment wrong: %v", res.Pins)
	}
}

func TestNoPins(t *testing.T) {
	g := grid.New(6, 6)
	obs := grid.NewObsMap(g)
	take := geom.Pt{X: 3, Y: 3}
	obs.Set(take, true)
	res := Route(obs, []Terminal{{ClusterID: 0, Cells: []geom.Pt{take}}}, nil)
	if len(res.Unrouted) != 1 {
		t.Error("no pins must leave the cluster unrouted")
	}
}
