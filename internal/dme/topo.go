// Package dme implements the deferred-merge embedding construction of
// candidate Steiner trees for length-matching clusters (Section 4.1 of the
// paper, after Chao/Hsu/Ho/Kahng's zero-skew clock routing). The connection
// topology comes from balanced bipartition (BB); merging segments are
// computed bottom-up as TRR intersections under the linear delay model
// (delay = channel length); the top-down embedding snaps merging nodes to
// unblocked grid cells, searching outward in expanding loops when the ideal
// node is blocked (the paper's obstacle workaround). Selecting different
// root embeddings yields the multiple candidate trees that the MWCP stage
// chooses among.
package dme

import (
	"math/bits"
	"sort"

	"repro/internal/geom"
)

// Topo is a binary connection topology over a cluster's sinks. Node 0..n-1
// are stored in Nodes; leaves carry the sink index, internal nodes their two
// children.
type Topo struct {
	Nodes []TopoNode
	Root  int
}

// TopoNode is one node of the topology tree.
type TopoNode struct {
	Left, Right int // -1 for leaves
	Sink        int // sink index for leaves, -1 for internal nodes
}

// Leaves returns the number of sinks in the topology.
func (t *Topo) Leaves() int {
	n := 0
	for _, nd := range t.Nodes {
		if nd.Sink >= 0 {
			n++
		}
	}
	return n
}

// exactBBLimit bounds the exact balanced-bipartition enumeration
// (C(12,6) = 924 subsets at the limit); larger clusters use the axis-median
// heuristic split.
const exactBBLimit = 12

// BalancedBipartition builds the BB connection topology: the sink set is
// recursively split into two size-balanced halves minimizing the sum of the
// halves' Manhattan diameters (the paper sets every sink capacitance to 1 so
// BB yields a balanced binary tree).
func BalancedBipartition(sinks []geom.Pt) *Topo {
	if len(sinks) == 0 {
		return &Topo{Root: -1}
	}
	t := &Topo{}
	idx := make([]int, len(sinks))
	for i := range idx {
		idx[i] = i
	}
	t.Root = t.build(sinks, idx)
	return t
}

func (t *Topo) build(sinks []geom.Pt, idx []int) int {
	if len(idx) == 1 {
		t.Nodes = append(t.Nodes, TopoNode{Left: -1, Right: -1, Sink: idx[0]})
		return len(t.Nodes) - 1
	}
	a, b := bipartition(sinks, idx)
	l := t.build(sinks, a)
	r := t.build(sinks, b)
	t.Nodes = append(t.Nodes, TopoNode{Left: l, Right: r, Sink: -1})
	return len(t.Nodes) - 1
}

// bipartition splits idx into two balanced halves minimizing the sum of
// diameters — exactly for small sets, by axis-median otherwise.
func bipartition(sinks []geom.Pt, idx []int) (a, b []int) {
	n := len(idx)
	if n == 2 {
		return idx[:1], idx[1:]
	}
	if n <= exactBBLimit {
		return exactBipartition(sinks, idx)
	}
	return medianBipartition(sinks, idx)
}

func diameter(sinks []geom.Pt, idx []int, mask uint32, want bool) int {
	d := 0
	for i := 0; i < len(idx); i++ {
		if (mask&(1<<i) != 0) != want {
			continue
		}
		for j := i + 1; j < len(idx); j++ {
			if (mask&(1<<j) != 0) != want {
				continue
			}
			if dd := geom.Dist(sinks[idx[i]], sinks[idx[j]]); dd > d {
				d = dd
			}
		}
	}
	return d
}

func exactBipartition(sinks []geom.Pt, idx []int) (a, b []int) {
	n := len(idx)
	half := n / 2
	best := -1
	var bestMask uint32
	// Fix idx[0] in side A to halve the enumeration.
	for mask := uint32(1); mask < 1<<n; mask++ {
		if mask&1 == 0 {
			continue
		}
		if bits.OnesCount32(mask) != half && bits.OnesCount32(mask) != n-half {
			continue
		}
		cost := diameter(sinks, idx, mask, true) + diameter(sinks, idx, mask, false)
		if best == -1 || cost < best {
			best = cost
			bestMask = mask
		}
	}
	for i := 0; i < n; i++ {
		if bestMask&(1<<i) != 0 {
			a = append(a, idx[i])
		} else {
			b = append(b, idx[i])
		}
	}
	return a, b
}

func medianBipartition(sinks []geom.Pt, idx []int) (a, b []int) {
	minX, maxX := sinks[idx[0]].X, sinks[idx[0]].X
	minY, maxY := sinks[idx[0]].Y, sinks[idx[0]].Y
	for _, i := range idx[1:] {
		minX = geom.Min(minX, sinks[i].X)
		maxX = geom.Max(maxX, sinks[i].X)
		minY = geom.Min(minY, sinks[i].Y)
		maxY = geom.Max(maxY, sinks[i].Y)
	}
	sorted := append([]int(nil), idx...)
	if maxX-minX >= maxY-minY {
		sort.Slice(sorted, func(i, j int) bool {
			pi, pj := sinks[sorted[i]], sinks[sorted[j]]
			if pi.X != pj.X {
				return pi.X < pj.X
			}
			if pi.Y != pj.Y {
				return pi.Y < pj.Y
			}
			return sorted[i] < sorted[j]
		})
	} else {
		sort.Slice(sorted, func(i, j int) bool {
			pi, pj := sinks[sorted[i]], sinks[sorted[j]]
			if pi.Y != pj.Y {
				return pi.Y < pj.Y
			}
			if pi.X != pj.X {
				return pi.X < pj.X
			}
			return sorted[i] < sorted[j]
		})
	}
	half := len(sorted) / 2
	return sorted[:half], sorted[half:]
}
