package dme

import (
	"fmt"

	"repro/internal/geom"
)

// Tree is an embedded candidate Steiner tree for one cluster: every topology
// node has a grid position, and every non-root node a required channel
// length to its parent. Required lengths come from the DME edge lengths and
// are at least the Manhattan distance between the embedded endpoints with
// matching parity, so the router can realize them exactly (possibly with
// detours).
type Tree struct {
	Sinks []geom.Pt
	Topo  *Topo
	Pos   []geom.Pt // position per topology node
	Req   []int     // required channel length to parent (root: 0)
}

// Root returns the embedded root position (the escape-routing terminal for
// clusters of three or more valves).
func (t *Tree) Root() geom.Pt { return t.Pos[t.Topo.Root] }

// Edge is one parent-child connection of an embedded tree.
type Edge struct {
	Child, Parent int // topology node indices
	From, To      geom.Pt
	Req           int // required routed length
}

// Edges lists the tree's edges child-first (sink side before root side).
func (t *Tree) Edges() []Edge {
	var edges []Edge
	var rec func(n int)
	rec = func(n int) {
		nd := t.Topo.Nodes[n]
		if nd.Sink >= 0 {
			return
		}
		rec(nd.Left)
		rec(nd.Right)
		edges = append(edges,
			Edge{Child: nd.Left, Parent: n, From: t.Pos[nd.Left], To: t.Pos[n], Req: t.Req[nd.Left]},
			Edge{Child: nd.Right, Parent: n, From: t.Pos[nd.Right], To: t.Pos[n], Req: t.Req[nd.Right]},
		)
	}
	if t.Topo.Root >= 0 {
		rec(t.Topo.Root)
	}
	return edges
}

// LeafFullLens returns, per sink index, the required full-path length from
// the sink to the tree root (Definition 5's l(PF_i), under the required edge
// lengths).
func (t *Tree) LeafFullLens() []int {
	lens := make([]int, len(t.Sinks))
	var rec func(n, acc int)
	rec = func(n, acc int) {
		nd := t.Topo.Nodes[n]
		if nd.Sink >= 0 {
			lens[nd.Sink] = acc
			return
		}
		rec(nd.Left, acc+t.Req[nd.Left])
		rec(nd.Right, acc+t.Req[nd.Right])
	}
	if t.Topo.Root >= 0 {
		rec(t.Topo.Root, 0)
	}
	return lens
}

// DeltaL is the length mismatch of the candidate tree (Equation 1):
// max full-path length minus min full-path length.
func (t *Tree) DeltaL() int {
	lens := t.LeafFullLens()
	if len(lens) == 0 {
		return 0
	}
	mn, mx := lens[0], lens[0]
	for _, l := range lens[1:] {
		mn = geom.Min(mn, l)
		mx = geom.Max(mx, l)
	}
	return mx - mn
}

// TotalReq is the summed required channel length of all edges — the
// estimated wire length of the candidate.
func (t *Tree) TotalReq() int {
	n := 0
	for i, r := range t.Req {
		if i != t.Topo.Root {
			n += r
		}
	}
	return n
}

// EdgeBBoxes returns the bounding box per edge (for the Equation 3-4 overlap
// cost between candidate trees of different clusters).
func (t *Tree) EdgeBBoxes() []geom.Rect {
	edges := t.Edges()
	boxes := make([]geom.Rect, len(edges))
	for i, e := range edges {
		boxes[i] = geom.RectOf(e.From, e.To)
	}
	return boxes
}

// Validate checks internal consistency: every Req is at least the Manhattan
// distance of its edge and parity-compatible with it, so the edge is
// routable at exactly its required length on an obstacle-free grid.
func (t *Tree) Validate() error {
	if t.Topo.Root < 0 {
		return fmt.Errorf("dme: empty tree")
	}
	for _, e := range t.Edges() {
		d := geom.Dist(e.From, e.To)
		if e.Req < d {
			return fmt.Errorf("dme: edge %v-%v requires %d < distance %d", e.From, e.To, e.Req, d)
		}
		if (e.Req-d)%2 != 0 {
			return fmt.Errorf("dme: edge %v-%v requires %d, parity mismatch with distance %d", e.From, e.To, e.Req, d)
		}
	}
	return nil
}
