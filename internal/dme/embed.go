package dme

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// Bias selects where on a merging region an internal node is embedded,
// yielding the distinct candidate trees of Figure 3.
type Bias int

// Embedding biases: nearest to the parent, or toward either core endpoint
// of the merging region.
const (
	BiasNearest Bias = iota
	BiasLow
	BiasHigh
)

// Embed runs the top-down merging-node embedding phase for one choice of
// root position and one placement bias, producing a candidate tree.
// rootPick must lie inside (or near) the root merging region; it is snapped
// to a free grid cell first. Obstacle-blocked merging nodes are displaced by
// an expanding-loop search around the ideal position (the paper's
// workaround), and edge required lengths absorb the displacement with
// parity-correct slack.
func Embed(obs *grid.ObsMap, sinks []geom.Pt, topo *Topo, info []mergeInfo, rootPick geom.Pt, bias Bias) *Tree {
	return embedTraced(obs, sinks, topo, info, rootPick, bias, nil)
}

// embedTraced is Embed with read-cone tracing: probe, when non-nil, receives
// every in-grid cell whose occupancy the embedding consulted. The probe
// sequence is deterministic in the obstacle content at the probed cells, so
// two maps that agree on a recorded cone embed identically (the replay
// soundness argument of pacor's LM-stage seed).
func embedTraced(obs *grid.ObsMap, sinks []geom.Pt, topo *Topo, info []mergeInfo, rootPick geom.Pt, bias Bias, probe func(geom.Pt)) *Tree {
	t := &Tree{
		Sinks: sinks,
		Topo:  topo,
		Pos:   make([]geom.Pt, len(topo.Nodes)),
		Req:   make([]int, len(topo.Nodes)),
	}
	used := make(map[geom.Pt]bool)
	for _, s := range sinks {
		used[s] = true
	}

	var place func(n int, pos geom.Pt)
	place = func(n int, pos geom.Pt) {
		nd := topo.Nodes[n]
		t.Pos[n] = pos
		used[pos] = true
		if nd.Sink >= 0 {
			return
		}
		for _, side := range []struct {
			child, e int
		}{{nd.Left, info[n].ea}, {nd.Right, info[n].eb}} {
			cn := topo.Nodes[side.child]
			var q geom.Pt
			if cn.Sink >= 0 {
				q = sinks[cn.Sink] // leaves are fixed at the valves
			} else {
				// Ideal position: on the child's merging region, at edge
				// length from the parent, as close to the parent as allowed.
				region := info[side.child].ms.Intersect(geom.TRRFromPoint(pos, side.e))
				if region.Empty() {
					region = info[side.child].ms
				}
				ref := pos
				switch bias {
				case BiasLow:
					ref, _ = region.Core()
				case BiasHigh:
					_, ref = region.Core()
				}
				// ok is deliberately dropped: when the region has no grid
				// point (odd-parity degenerate arc), NearestGridPt returns
				// the nearest outside point and freeNear absorbs the +-1
				// slack along with occupancy (Lemma 1).
				q, _ = region.NearestGridPt(ref)
				q = freeNear(obs, used, q, probe)
			}
			req := side.e
			d := geom.Dist(pos, q)
			if req < d {
				req = d
			}
			if (req-d)%2 != 0 {
				req++
			}
			t.Req[side.child] = req
			place(side.child, q)
		}
	}
	if topo.Root >= 0 {
		root := rootPick
		if nd := topo.Nodes[topo.Root]; nd.Sink < 0 {
			root = freeNear(obs, used, rootPick, probe)
		} else {
			root = sinks[nd.Sink]
		}
		place(topo.Root, root)
	}
	return t
}

// freeNear returns the first in-grid, unblocked, unused cell found on
// expanding Manhattan rings around q (the paper's encircling-loop search).
// If the whole chip is exhausted it returns q unchanged — the routing stage
// will then fail this candidate, which is the correct signal upstream.
// probe, when non-nil, records every in-grid cell whose Blocked state is
// consulted (off-grid probes depend only on the grid dimensions and the
// used set is embedding-internal, so these probes are the entire external
// read set of the construction).
func freeNear(obs *grid.ObsMap, used map[geom.Pt]bool, q geom.Pt, probe func(geom.Pt)) geom.Pt {
	g := obs.Grid()
	free := func(p geom.Pt) bool {
		if !g.In(p) {
			return false
		}
		if probe != nil {
			probe(p)
		}
		return !obs.Blocked(p) && !used[p]
	}
	if free(q) {
		return q
	}
	maxR := g.W + g.H
	for r := 1; r <= maxR; r++ {
		// Walk the Manhattan ring of radius r in deterministic order.
		for dx := -r; dx <= r; dx++ {
			dy := r - geom.Abs(dx)
			p := geom.Pt{X: q.X + dx, Y: q.Y + dy}
			if free(p) {
				return p
			}
			if dy != 0 {
				p = geom.Pt{X: q.X + dx, Y: q.Y - dy}
				if free(p) {
					return p
				}
			}
		}
	}
	return q
}

// Candidates computes up to maxCand distinct candidate Steiner trees for the
// cluster by sampling root embeddings from the root merging region: the two
// core endpoints, the core midpoint, and further grid points of the region.
// Every returned tree satisfies Tree.Validate.
func Candidates(obs *grid.ObsMap, sinks []geom.Pt, maxCand int) []*Tree {
	return CandidatesTraced(obs, sinks, maxCand, nil)
}

// CandidatesTraced is Candidates with read-cone tracing. probe, when
// non-nil, receives every in-grid cell whose occupancy the construction
// consulted (cells may repeat). Everything else Candidates computes —
// topology, merging segments, root picks — is pure geometry of the sinks,
// so two obstacle maps that agree on all probed cells yield identical
// candidate lists for identical sink sequences. pacor's LM-stage seed
// records the cone and replays the candidates when no recorded cell changed
// between runs.
func CandidatesTraced(obs *grid.ObsMap, sinks []geom.Pt, maxCand int, probe func(geom.Pt)) []*Tree {
	if len(sinks) == 0 || maxCand <= 0 {
		return nil
	}
	topo := BalancedBipartition(sinks)
	info := mergeSegments(sinks, topo)
	if len(sinks) == 1 {
		return []*Tree{embedTraced(obs, sinks, topo, info, sinks[0], BiasNearest, probe)}
	}
	rootMS := info[topo.Root].ms

	var picks []geom.Pt
	addPick := func(p geom.Pt) {
		for _, q := range picks {
			if q == p {
				return
			}
		}
		picks = append(picks, p)
	}
	// NearestGridPt's fallback (nearest point off the region by one unit,
	// Lemma 1) is acceptable for a root pick: the edge slack absorbs it.
	c0, c1 := rootMS.Core()
	p0, _ := rootMS.NearestGridPt(c0)
	addPick(p0)
	p1, _ := rootMS.NearestGridPt(c1)
	addPick(p1)
	pm, _ := rootMS.NearestGridPt(geom.Pt{X: (c0.X + c1.X) / 2, Y: (c0.Y + c1.Y) / 2})
	addPick(pm)
	for _, p := range rootMS.GridPoints(2 * maxCand) {
		if len(picks) >= 3*maxCand {
			break
		}
		addPick(p)
	}

	var trees []*Tree
	seen := map[string]bool{}
	for _, bias := range []Bias{BiasNearest, BiasLow, BiasHigh} {
		for _, p := range picks {
			if len(trees) >= maxCand {
				return trees
			}
			tr := embedTraced(obs, sinks, topo, info, p, bias, probe)
			if tr.Validate() != nil {
				continue
			}
			key := treeKey(tr)
			if seen[key] {
				continue
			}
			seen[key] = true
			trees = append(trees, tr)
		}
	}
	return trees
}

// Fingerprint content-hashes a candidate list (FNV-1a over positions and
// required lengths, order-sensitive). Two lists with equal fingerprints came
// from identical sink sequences embedded on indistinguishable maps, so every
// deterministic consumer — notably seltree.Select — produces the same output
// for both; pacor's LM-stage seed keys its selection replay on it.
func Fingerprint(cands []*Tree) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	pt := func(p geom.Pt) { mix(uint64(uint32(p.X))<<32 | uint64(uint32(p.Y))) }
	mix(uint64(len(cands)))
	for _, t := range cands {
		mix(uint64(len(t.Sinks)))
		for _, s := range t.Sinks {
			pt(s)
		}
		mix(uint64(uint32(t.Topo.Root)))
		for _, nd := range t.Topo.Nodes {
			mix(uint64(uint32(nd.Left))<<32 | uint64(uint32(nd.Right)))
			mix(uint64(uint32(nd.Sink)))
		}
		for _, p := range t.Pos {
			pt(p)
		}
		for _, r := range t.Req {
			mix(uint64(r))
		}
	}
	return h
}

func treeKey(t *Tree) string {
	b := make([]byte, 0, 8*len(t.Pos))
	for _, p := range t.Pos {
		b = append(b, byte(p.X), byte(p.X>>8), byte(p.Y), byte(p.Y>>8))
	}
	for _, r := range t.Req {
		b = append(b, byte(r), byte(r>>8))
	}
	return string(b)
}
