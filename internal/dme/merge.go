package dme

import "repro/internal/geom"

// mergeInfo is the bottom-up state of one topology node: its merging region
// (a TRR, degenerate to a Manhattan arc in the exact case), the downstream
// channel length t from this node to its sinks (equal for all sinks up to
// the +-1 rounding of Lemma 1), and the embedded edge lengths toward its
// children.
type mergeInfo struct {
	ms     geom.TRR
	t      int
	ea, eb int // edge length to Left and Right child (internal nodes)
}

// mergeSegments runs the bottom-up merging-segment computation phase of DME
// over the topology, under the linear delay model: merging two subtrees with
// downstream lengths ta, tb at region distance d gives edge lengths
// ea+eb = d with ta+ea = tb+eb when |ta-tb| <= d, and a detoured edge
// (ea or eb exceeding the geometric distance) otherwise. Odd d+diff floors
// ea, introducing the +-1 skew of Lemma 1 that detouring later removes.
func mergeSegments(sinks []geom.Pt, topo *Topo) []mergeInfo {
	info := make([]mergeInfo, len(topo.Nodes))
	var rec func(n int)
	rec = func(n int) {
		nd := topo.Nodes[n]
		if nd.Sink >= 0 {
			info[n] = mergeInfo{ms: geom.TRRFromPoint(sinks[nd.Sink], 0), t: 0}
			return
		}
		rec(nd.Left)
		rec(nd.Right)
		a, b := info[nd.Left], info[nd.Right]
		d := a.ms.DistTRR(b.ms)
		diff := b.t - a.t
		var ea, eb int
		switch {
		case diff >= d:
			ea, eb = diff, 0 // subtree b is deeper: detour edge a
		case -diff >= d:
			ea, eb = 0, -diff // subtree a is deeper: detour edge b
		default:
			ea = (d + diff) / 2
			if ea < 0 {
				ea = 0
			}
			eb = d - ea
		}
		ms := a.ms.Expand(ea).Intersect(b.ms.Expand(eb))
		if ms.Empty() {
			// Rounding can shave the intersection empty by one unit; widen
			// the shorter side (costs at most +1 skew, removed by detour).
			ms = a.ms.Expand(ea + 1).Intersect(b.ms.Expand(eb + 1))
		}
		t := geom.Max(a.t+ea, b.t+eb)
		info[n] = mergeInfo{ms: ms, t: t, ea: ea, eb: eb}
	}
	if topo.Root >= 0 {
		rec(topo.Root)
	}
	return info
}
