package dme

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

// TestCandidatesRandomInvariants: for random sink sets on random obstacle
// fields, every candidate validates, its required lengths dominate the
// Manhattan distances with matching parity (Tree.Validate), full-path
// lengths are at least the sink-to-root distance, and ΔL stays bounded by
// the tree depth (one rounding unit per merge level plus obstacle slack).
func TestCandidatesRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		g := grid.New(48, 48)
		obs := grid.NewObsMap(g)
		for i := 0; i < 40; i++ {
			obs.Set(geom.Pt{X: rng.Intn(48), Y: rng.Intn(48)}, true)
		}
		n := 2 + rng.Intn(6)
		sinks := make([]geom.Pt, 0, n)
		seen := map[geom.Pt]bool{}
		for len(sinks) < n {
			p := geom.Pt{X: 2 + rng.Intn(44), Y: 2 + rng.Intn(44)}
			if seen[p] {
				continue
			}
			seen[p] = true
			obs.Set(p, false)
			sinks = append(sinks, p)
		}
		cands := Candidates(obs, sinks, 5)
		if len(cands) == 0 {
			t.Fatalf("trial %d: no candidates for %v", trial, sinks)
		}
		for ci, tr := range cands {
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d cand %d: %v", trial, ci, err)
			}
			lens := tr.LeafFullLens()
			root := tr.Root()
			for si, s := range sinks {
				if lens[si] < geom.Dist(s, root) {
					t.Errorf("trial %d cand %d: sink %d full len %d < distance %d",
						trial, ci, si, lens[si], geom.Dist(s, root))
				}
			}
			if tr.TotalReq() < mstLowerBound(sinks)/2 {
				t.Errorf("trial %d cand %d: total length %d below half the MST bound",
					trial, ci, tr.TotalReq())
			}
		}
	}
}

// mstLowerBound: Steiner tree weight is at least half the MST weight; used
// as a sanity floor.
func mstLowerBound(pts []geom.Pt) int {
	n := len(pts)
	if n < 2 {
		return 0
	}
	in := make([]bool, n)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = 1 << 30
	}
	in[0] = true
	for j := 1; j < n; j++ {
		dist[j] = geom.Dist(pts[0], pts[j])
	}
	total := 0
	for k := 1; k < n; k++ {
		best := -1
		for j := 0; j < n; j++ {
			if !in[j] && (best == -1 || dist[j] < dist[best]) {
				best = j
			}
		}
		total += dist[best]
		in[best] = true
		for j := 0; j < n; j++ {
			if !in[j] {
				if d := geom.Dist(pts[best], pts[j]); d < dist[j] {
					dist[j] = d
				}
			}
		}
	}
	return total
}

// TestMergeSegmentEquidistance: merging segments of sibling subtrees keep
// equal distance-plus-delay to both sides (within the 1-unit rounding of
// Lemma 1), checked on random two-level clusters.
func TestMergeSegmentEquidistance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		sinks := []geom.Pt{
			{X: rng.Intn(30), Y: rng.Intn(30)},
			{X: rng.Intn(30), Y: rng.Intn(30)},
		}
		if sinks[0] == sinks[1] {
			continue
		}
		topo := BalancedBipartition(sinks)
		info := mergeSegments(sinks, topo)
		root := info[topo.Root]
		d := geom.Dist(sinks[0], sinks[1])
		if root.ea+root.eb != d {
			t.Fatalf("trial %d: ea+eb = %d, want %d", trial, root.ea+root.eb, d)
		}
		if geom.Abs(root.ea-root.eb) > 1 {
			t.Fatalf("trial %d: |ea-eb| = %d > 1", trial, geom.Abs(root.ea-root.eb))
		}
		for _, p := range root.ms.GridPoints(16) {
			da, db := geom.Dist(p, sinks[0]), geom.Dist(p, sinks[1])
			if da != root.ea || db != root.eb {
				t.Errorf("trial %d: ms point %v at distances %d,%d want %d,%d",
					trial, p, da, db, root.ea, root.eb)
			}
		}
	}
}

// TestEmbedReqParityAlwaysRoutable: every edge requirement must be exactly
// realizable by a detoured path on an empty grid: req >= dist and matching
// parity (this is what lets the detour stage hit the window).
func TestEmbedReqParityAlwaysRoutable(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := grid.New(64, 64)
	obs := grid.NewObsMap(g)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		sinks := make([]geom.Pt, 0, n)
		seen := map[geom.Pt]bool{}
		for len(sinks) < n {
			p := geom.Pt{X: 4 + rng.Intn(56), Y: 4 + rng.Intn(56)}
			if !seen[p] {
				seen[p] = true
				sinks = append(sinks, p)
			}
		}
		for _, tr := range Candidates(obs, sinks, 3) {
			for _, e := range tr.Edges() {
				d := geom.Dist(e.From, e.To)
				if e.Req < d || (e.Req-d)%2 != 0 {
					t.Fatalf("trial %d: edge %v->%v req %d unrealizable (dist %d)",
						trial, e.From, e.To, e.Req, d)
				}
			}
		}
	}
}
