package dme

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
)

func TestBalancedBipartitionShape(t *testing.T) {
	sinks := []geom.Pt{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	topo := BalancedBipartition(sinks)
	if topo.Leaves() != 4 {
		t.Fatalf("leaves = %d, want 4", topo.Leaves())
	}
	if len(topo.Nodes) != 7 {
		t.Fatalf("nodes = %d, want 7 (balanced binary over 4)", len(topo.Nodes))
	}
	// Every sink appears exactly once.
	seen := map[int]int{}
	for _, nd := range topo.Nodes {
		if nd.Sink >= 0 {
			seen[nd.Sink]++
		}
	}
	for i := 0; i < 4; i++ {
		if seen[i] != 1 {
			t.Errorf("sink %d appears %d times", i, seen[i])
		}
	}
}

func TestBalancedBipartitionMinimizesDiameters(t *testing.T) {
	// Two tight pairs far apart: BB must pair the close ones.
	sinks := []geom.Pt{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 20, Y: 20}, {X: 21, Y: 20}}
	topo := BalancedBipartition(sinks)
	root := topo.Nodes[topo.Root]
	groupOf := func(n int) map[int]bool {
		g := map[int]bool{}
		var rec func(int)
		rec = func(i int) {
			nd := topo.Nodes[i]
			if nd.Sink >= 0 {
				g[nd.Sink] = true
				return
			}
			rec(nd.Left)
			rec(nd.Right)
		}
		rec(n)
		return g
	}
	l := groupOf(root.Left)
	if !(l[0] && l[1]) && !(l[2] && l[3]) {
		t.Errorf("BB split %v does not pair the close sinks", l)
	}
}

func TestBalancedBipartitionLargeHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sinks := make([]geom.Pt, 20) // above exactBBLimit
	seen := map[geom.Pt]bool{}
	for i := range sinks {
		for {
			p := geom.Pt{X: rng.Intn(60), Y: rng.Intn(60)}
			if !seen[p] {
				sinks[i], seen[p] = p, true
				break
			}
		}
	}
	topo := BalancedBipartition(sinks)
	if topo.Leaves() != 20 {
		t.Fatalf("leaves = %d", topo.Leaves())
	}
	if len(topo.Nodes) != 39 {
		t.Fatalf("nodes = %d, want 39", len(topo.Nodes))
	}
}

func TestBalancedBipartitionEmpty(t *testing.T) {
	topo := BalancedBipartition(nil)
	if topo.Root != -1 || topo.Leaves() != 0 {
		t.Error("empty sink set should give empty topology")
	}
}

func TestMergeSegmentsEvenPair(t *testing.T) {
	sinks := []geom.Pt{{X: 0, Y: 0}, {X: 4, Y: 0}}
	topo := BalancedBipartition(sinks)
	info := mergeSegments(sinks, topo)
	root := info[topo.Root]
	if root.ea+root.eb != 4 {
		t.Errorf("ea+eb = %d, want 4", root.ea+root.eb)
	}
	if root.ea != 2 || root.eb != 2 {
		t.Errorf("ea,eb = %d,%d, want 2,2", root.ea, root.eb)
	}
	if root.t != 2 {
		t.Errorf("t = %d, want 2", root.t)
	}
	// Every grid point of the merging segment is equidistant (2) from both.
	for _, p := range root.ms.GridPoints(0) {
		if geom.Dist(p, sinks[0]) != 2 || geom.Dist(p, sinks[1]) != 2 {
			t.Errorf("ms point %v not equidistant", p)
		}
	}
}

func TestMergeSegmentsOddPairLemma1(t *testing.T) {
	// Odd distance: rounding forces a +-1 skew (Lemma 1).
	sinks := []geom.Pt{{X: 0, Y: 0}, {X: 3, Y: 0}}
	topo := BalancedBipartition(sinks)
	info := mergeSegments(sinks, topo)
	root := info[topo.Root]
	if root.ea+root.eb != 3 {
		t.Errorf("ea+eb = %d, want 3", root.ea+root.eb)
	}
	if geom.Abs(root.ea-root.eb) != 1 {
		t.Errorf("|ea-eb| = %d, want 1", geom.Abs(root.ea-root.eb))
	}
	if root.ms.Empty() {
		t.Error("merging region empty")
	}
}

func TestMergeSegmentsDetourCase(t *testing.T) {
	// Three collinear sinks: pairing (0,0)-(2,0) gives t=1; merging with the
	// far sink (20,0) at distance ~19 with diff 1 <= d works normally; build
	// an explicit deep-vs-shallow case instead with 4 sinks.
	sinks := []geom.Pt{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 100, Y: 0}, {X: 101, Y: 0}}
	topo := BalancedBipartition(sinks)
	info := mergeSegments(sinks, topo)
	root := info[topo.Root]
	// Left pair diameter 40 -> t=20; right pair t=0 or 1; distance between
	// merge regions < 20 means the right edge detours.
	if root.ea != 0 && root.eb != 0 {
		// Detour manifests as one side zero and other side = t-difference.
		la, lb := info[topo.Nodes[topo.Root].Left], info[topo.Nodes[topo.Root].Right]
		d := la.ms.DistTRR(lb.ms)
		if geom.Abs(la.t-lb.t) > d {
			t.Errorf("expected detour split, got ea=%d eb=%d (d=%d, ta=%d tb=%d)",
				root.ea, root.eb, d, la.t, lb.t)
		}
	}
}

func TestEmbedFourSinksZeroMismatch(t *testing.T) {
	// Symmetric 4-sink cluster on an empty chip: DME must embed with ΔL <= 1.
	g := grid.New(40, 40)
	obs := grid.NewObsMap(g)
	sinks := []geom.Pt{{X: 10, Y: 10}, {X: 30, Y: 10}, {X: 10, Y: 30}, {X: 30, Y: 30}}
	trees := Candidates(obs, sinks, 6)
	if len(trees) == 0 {
		t.Fatal("no candidates")
	}
	for _, tr := range trees {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.DeltaL() != 0 {
			t.Errorf("symmetric cluster ΔL = %d, want 0", tr.DeltaL())
		}
	}
}

func TestEmbedAsymmetricBounds(t *testing.T) {
	g := grid.New(60, 60)
	obs := grid.NewObsMap(g)
	sinks := []geom.Pt{{X: 5, Y: 5}, {X: 50, Y: 7}, {X: 12, Y: 44}, {X: 33, Y: 21}, {X: 48, Y: 48}}
	trees := Candidates(obs, sinks, 8)
	if len(trees) == 0 {
		t.Fatal("no candidates")
	}
	for _, tr := range trees {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		// Rounding can cost at most 1 per internal merge on the path; with 5
		// sinks the tree depth is 3, so ΔL should be small.
		if tr.DeltaL() > 3 {
			t.Errorf("ΔL = %d, want <= 3", tr.DeltaL())
		}
	}
}

func TestCandidatesDistinct(t *testing.T) {
	// Diagonally offset pairs give non-degenerate (segment) merging regions,
	// hence multiple embedding choices (Figure 3).
	g := grid.New(40, 40)
	obs := grid.NewObsMap(g)
	sinks := []geom.Pt{{X: 5, Y: 5}, {X: 17, Y: 11}, {X: 5, Y: 25}, {X: 17, Y: 31}}
	trees := Candidates(obs, sinks, 6)
	if len(trees) < 2 {
		t.Fatalf("want multiple candidates, got %d", len(trees))
	}
	seen := map[string]bool{}
	for _, tr := range trees {
		k := treeKey(tr)
		if seen[k] {
			t.Error("duplicate candidate tree")
		}
		seen[k] = true
	}
}

func TestEmbedAvoidsObstacles(t *testing.T) {
	g := grid.New(30, 30)
	obs := grid.NewObsMap(g)
	// Block the natural center merge area.
	obs.SetRect(geom.Rect{MinX: 12, MinY: 12, MaxX: 18, MaxY: 18}, true)
	sinks := []geom.Pt{{X: 5, Y: 5}, {X: 25, Y: 5}, {X: 5, Y: 25}, {X: 25, Y: 25}}
	trees := Candidates(obs, sinks, 6)
	if len(trees) == 0 {
		t.Fatal("no candidates with blocked center")
	}
	for _, tr := range trees {
		for n, pos := range tr.Pos {
			if tr.Topo.Nodes[n].Sink >= 0 {
				continue
			}
			if obs.Blocked(pos) {
				t.Errorf("internal node %d embedded on obstacle %v", n, pos)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestEmbedTwoSinks(t *testing.T) {
	g := grid.New(20, 20)
	obs := grid.NewObsMap(g)
	sinks := []geom.Pt{{X: 2, Y: 2}, {X: 14, Y: 2}}
	trees := Candidates(obs, sinks, 4)
	if len(trees) == 0 {
		t.Fatal("no candidates")
	}
	tr := trees[0]
	lens := tr.LeafFullLens()
	if geom.Abs(lens[0]-lens[1]) > 1 {
		t.Errorf("two-sink mismatch %v", lens)
	}
	if tr.TotalReq() < 12 {
		t.Errorf("total length %d below Manhattan distance 12", tr.TotalReq())
	}
}

func TestEmbedSingleSink(t *testing.T) {
	g := grid.New(10, 10)
	obs := grid.NewObsMap(g)
	trees := Candidates(obs, []geom.Pt{{X: 3, Y: 3}}, 4)
	if len(trees) != 1 {
		t.Fatalf("candidates = %d, want 1", len(trees))
	}
	if trees[0].Root() != (geom.Pt{X: 3, Y: 3}) {
		t.Error("single-sink root must be the sink")
	}
	if trees[0].DeltaL() != 0 || trees[0].TotalReq() != 0 {
		t.Error("single-sink tree must be trivial")
	}
}

func TestEdgesChildFirst(t *testing.T) {
	g := grid.New(40, 40)
	obs := grid.NewObsMap(g)
	sinks := []geom.Pt{{X: 10, Y: 10}, {X: 30, Y: 10}, {X: 10, Y: 30}, {X: 30, Y: 30}}
	trees := Candidates(obs, sinks, 1)
	if len(trees) == 0 {
		t.Fatal("no candidates")
	}
	edges := trees[0].Edges()
	if len(edges) != 6 {
		t.Fatalf("edges = %d, want 6", len(edges))
	}
	// Child-first: by the time an edge references a parent node as Child,
	// its own child edges must already have appeared.
	seenAsChild := map[int]bool{}
	for _, e := range edges {
		seenAsChild[e.Child] = true
	}
	for i, e := range edges {
		nd := trees[0].Topo.Nodes[e.Child]
		if nd.Sink >= 0 {
			continue
		}
		found := 0
		for _, prev := range edges[:i] {
			if prev.Parent == e.Child {
				found++
			}
		}
		if found != 2 {
			t.Errorf("edge %d: internal child %d has %d earlier sub-edges, want 2", i, e.Child, found)
		}
	}
}

func TestFreeNearRing(t *testing.T) {
	g := grid.New(11, 11)
	obs := grid.NewObsMap(g)
	c := geom.Pt{X: 5, Y: 5}
	obs.Set(c, true)
	used := map[geom.Pt]bool{}
	p := freeNear(obs, used, c, nil)
	if geom.Dist(p, c) != 1 {
		t.Errorf("freeNear = %v, want an adjacent cell", p)
	}
	// Block radius-1 ring too.
	for _, d := range []geom.Pt{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}} {
		obs.Set(c.Add(d), true)
	}
	used[geom.Pt{X: 5, Y: 7}] = true // and one used cell at radius 2
	p = freeNear(obs, used, c, nil)
	if geom.Dist(p, c) != 2 || used[p] || obs.Blocked(p) {
		t.Errorf("freeNear = %v, want a free radius-2 cell", p)
	}
}
