package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeParallelModule lays out a diamond-shaped seven-package module —
// four leaves, two mids that each import two leaves, and a top importing
// both mids — so the parallel driver has real width and real dependency
// edges to schedule. Every package carries one deliberate wsaliasing
// violation, which makes finding order observable end to end.
func writeParallelModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()

	leaky := func(pkg, imports string) string {
		return fmt.Sprintf(`// Package %[1]s is part of the parallel-driver diamond.
package %[1]s
%[2]s
// Workspace stands in for the pooled search state.
type Workspace struct{ N int }

// AcquireWorkspace stands in for the pooled acquire.
func AcquireWorkspace() *Workspace { return &Workspace{} }

// ReleaseWorkspace stands in for the pooled release.
func ReleaseWorkspace(*Workspace) {}

// Leaky never releases: one stable finding per package.
func Leaky() int {
	ws := AcquireWorkspace()
	return ws.N
}
`, pkg, imports)
	}

	files := map[string]string{
		"go.mod":         "module parmod\n\ngo 1.22\n",
		"leafa/leafa.go": leaky("leafa", ""),
		"leafb/leafb.go": leaky("leafb", ""),
		"leafc/leafc.go": leaky("leafc", ""),
		"leafd/leafd.go": leaky("leafd", ""),
		"midab/midab.go": leaky("midab", "\nimport (\n\t_ \"parmod/leafa\"\n\t_ \"parmod/leafb\"\n)\n"),
		"midcd/midcd.go": leaky("midcd", "\nimport (\n\t_ \"parmod/leafc\"\n\t_ \"parmod/leafd\"\n)\n"),
		"top/top.go":     leaky("top", "\nimport (\n\t_ \"parmod/midab\"\n\t_ \"parmod/midcd\"\n)\n"),
	}
	for name, content := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// jobsRun lints the diamond module with the given worker count and
// returns the findings serialized to JSON plus the run stats.
func jobsRun(t *testing.T, root, cacheDir string, jobs int) (string, *RunStats) {
	t.Helper()
	stats := &RunStats{}
	findings, err := Run(Options{
		Dir:      root,
		Patterns: []string{"./..."},
		CacheDir: cacheDir,
		Jobs:     jobs,
		Stats:    stats,
	})
	if err != nil {
		t.Fatalf("lint run (-j %d): %v", jobs, err)
	}
	out, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), stats
}

// TestParallelByteIdentity pins the driver's core contract: the findings
// and stats are byte-identical for every -j value, on a cold cache and on
// a warm one.
func TestParallelByteIdentity(t *testing.T) {
	root := writeParallelModule(t)

	baseCache := filepath.Join(root, "cache-j1")
	want, wantStats := jobsRun(t, root, baseCache, 1)
	if want == "[]" || want == "null" {
		t.Fatal("diamond module produced no findings; identity check is vacuous")
	}
	if wantStats.Packages != 7 {
		t.Fatalf("diamond module lists %d packages, want 7", wantStats.Packages)
	}

	for _, jobs := range []int{2, 4, 8} {
		// Cold: a fresh cache per worker count, so every package is
		// analyzed live under contention.
		cold, coldStats := jobsRun(t, root, filepath.Join(root, fmt.Sprintf("cache-j%d", jobs)), jobs)
		if cold != want {
			t.Errorf("-j %d cold findings differ from -j 1:\nwant %s\ngot  %s", jobs, want, cold)
		}
		if coldStats.Reanalyzed != wantStats.Packages {
			t.Errorf("-j %d cold stats = %+v, want all %d packages re-analyzed", jobs, coldStats, wantStats.Packages)
		}
		if !reflect.DeepEqual(coldStats.ReanalyzedPkgs, wantStats.ReanalyzedPkgs) {
			t.Errorf("-j %d cold re-analysis order = %v, want %v (deps order)", jobs, coldStats.ReanalyzedPkgs, wantStats.ReanalyzedPkgs)
		}

		// Warm: replay through the -j 1 cache; every package must hit and
		// the serialized findings must still match byte for byte.
		warm, warmStats := jobsRun(t, root, baseCache, jobs)
		if warm != want {
			t.Errorf("-j %d warm findings differ from -j 1:\nwant %s\ngot  %s", jobs, want, warm)
		}
		if warmStats.CacheHits != wantStats.Packages {
			t.Errorf("-j %d warm stats = %+v, want all %d packages from cache", jobs, warmStats, wantStats.Packages)
		}
	}
}

// TestParallelSelfModule runs the real module both ways and compares the
// serialized output — the end-to-end identity the CI job re-checks with a
// warm cache. Skipped in -short mode: it type-checks the whole repo twice.
func TestParallelSelfModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module double lint")
	}
	seq, seqStats := jobsRun(t, "../..", t.TempDir(), 1)
	par, parStats := jobsRun(t, "../..", t.TempDir(), 4)
	if seq != par {
		t.Errorf("-j 4 self-lint differs from -j 1:\nseq %s\npar %s", seq, par)
	}
	if seqStats.Packages != parStats.Packages {
		t.Errorf("package counts differ: seq %d, par %d", seqStats.Packages, parStats.Packages)
	}
}
