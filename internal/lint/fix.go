package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// FixResult summarizes one ApplyFixes call.
type FixResult struct {
	// Files are the rewritten file paths, sorted.
	Files []string
	// Applied counts the edits written to disk.
	Applied int
	// Skipped counts edits dropped because they overlapped an
	// earlier-positioned edit in the same file.
	Skipped int
}

// ApplyFixes applies the first suggested fix of every finding that carries
// one, writing the rewritten files in place. Relative edit paths are
// resolved against dir (matching Options.Dir). Identical edits are
// deduplicated; of two overlapping edits the earlier-positioned one wins
// and the other is skipped, so a second lint-and-fix round converges
// instead of corrupting the file.
func ApplyFixes(findings []Finding, dir string) (FixResult, error) {
	var res FixResult
	byFile := map[string][]TextEdit{}
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		for _, e := range f.Fixes[0].Edits {
			path := e.File
			if !filepath.IsAbs(path) {
				path = filepath.Join(dir, path)
			}
			e.File = path
			byFile[path] = append(byFile[path], e)
		}
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, path := range files {
		edits := byFile[path]
		sort.Slice(edits, func(i, j int) bool {
			a, b := edits[i], edits[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.End != b.End {
				return a.End < b.End
			}
			return a.New < b.New
		})
		// Dedup exact duplicates (two analyzers suggesting the same edit),
		// then drop overlaps.
		kept := edits[:0]
		for _, e := range edits {
			if len(kept) > 0 {
				prev := kept[len(kept)-1]
				if prev == e {
					continue
				}
				if e.Start < prev.End || (e.Start == prev.Start && prev.Start == prev.End && e.Start == e.End) {
					// Overlapping ranges, or two distinct insertions at the
					// same point (ordering would be arbitrary): keep the first.
					res.Skipped++
					continue
				}
			}
			kept = append(kept, e)
		}

		src, err := os.ReadFile(path)
		if err != nil {
			return res, fmt.Errorf("lint: fix: %v", err)
		}
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			if e.Start < 0 || e.End > len(src) || e.Start > e.End {
				return res, fmt.Errorf("lint: fix: edit [%d,%d) out of range for %s (%d bytes)", e.Start, e.End, path, len(src))
			}
			src = append(src[:e.Start], append([]byte(e.New), src[e.End:]...)...)
		}
		st, err := os.Stat(path)
		if err != nil {
			return res, fmt.Errorf("lint: fix: %v", err)
		}
		if err := os.WriteFile(path, src, st.Mode().Perm()); err != nil {
			return res, fmt.Errorf("lint: fix: %v", err)
		}
		res.Files = append(res.Files, path)
		res.Applied += len(kept)
	}
	return res, nil
}
