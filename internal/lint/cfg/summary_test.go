package cfg

import (
	"bytes"
	"testing"
)

func sampleSummaries() map[string]*Summary {
	return map[string]*Summary{
		"p.Finish": {
			Params: []ParamSummary{{ReleasesAlways: true, ReleasesMay: true}},
		},
		"p.(T).Commit": {
			Recv:   true,
			Params: []ParamSummary{{StopsJournalAlways: true, StopsJournalMay: true}},
		},
		"p.Stamp": {StampsAlways: true, Checked: true},
		"p.Die":   {NoReturn: true},
		"p.host$0": {
			Params: []ParamSummary{{Escapes: true}},
		},
	}
}

// TestEncodeDecodeRoundTrip checks that DecodePackage inverts
// EncodePackage for everything that crosses the package boundary
// (closures deliberately do not).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	sums := sampleSummaries()
	blob, err := EncodePackage(sums)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePackage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["p.host$0"]; ok {
		t.Error("closure summary crossed the package boundary")
	}
	for _, key := range []string{"p.Finish", "p.(T).Commit", "p.Stamp", "p.Die"} {
		if !got[key].Equal(sums[key]) {
			t.Errorf("%s: decoded %+v, want %+v", key, got[key], sums[key])
		}
	}
}

// TestEncodeDeterministic pins byte-identical encoding across calls —
// the blob's hash stands in for the package interface in cache keys.
func TestEncodeDeterministic(t *testing.T) {
	a, err := EncodePackage(sampleSummaries())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		b, err := EncodePackage(sampleSummaries())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("encoding differs between calls:\n%s\n%s", a, b)
		}
	}
}

// TestSummaryEqual covers the fixed-point change detector.
func TestSummaryEqual(t *testing.T) {
	a := &Summary{Params: []ParamSummary{{ReleasesAlways: true}}}
	b := &Summary{Params: []ParamSummary{{ReleasesAlways: true}}}
	if !a.Equal(b) {
		t.Error("identical summaries compare unequal")
	}
	b.Params[0].Escapes = true
	if a.Equal(b) {
		t.Error("differing param summaries compare equal")
	}
	if a.Equal(nil) {
		t.Error("non-nil equals nil")
	}
	var n *Summary
	if !n.Equal(nil) {
		t.Error("nil does not equal nil")
	}
}

// TestParamOutOfRange pins the zero-value fallback for variadic tails.
func TestParamOutOfRange(t *testing.T) {
	s := &Summary{Params: []ParamSummary{{ReleasesAlways: true}}}
	if got := s.Param(5); got != (ParamSummary{}) {
		t.Errorf("out-of-range Param = %+v, want zero", got)
	}
	var n *Summary
	if got := n.Param(0); got != (ParamSummary{}) {
		t.Errorf("nil Param = %+v, want zero", got)
	}
}

// TestStore covers the accumulation API the driver uses across packages.
func TestStore(t *testing.T) {
	s := NewStore()
	if s.Get("x") != nil {
		t.Error("empty store returned a summary")
	}
	s.Put("x", &Summary{NoReturn: true})
	s.PutAll(map[string]*Summary{"y": {StampsAlways: true}})
	if got := s.Get("x"); got == nil || !got.NoReturn {
		t.Errorf("Get(x) = %+v", got)
	}
	if got := s.Get("y"); got == nil || !got.StampsAlways {
		t.Errorf("Get(y) = %+v", got)
	}
}
