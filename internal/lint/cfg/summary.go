package cfg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file defines the function-summary lattice the interprocedural
// analyzers consume. A Summary condenses one function body into the
// protocol effects visible at its call sites — does it release a pooled
// workspace passed in, stamp visits before reading obstacle state, open or
// close an obstacle journal, never return — so callers apply the summary
// instead of giving up ("escapes") at the call. Summaries are computed
// bottom-up over the call graph's SCCs with a fixed point for recursion
// (see internal/lint/summaries.go) and serialized per package into the
// driver's fact cache; the serialized form deliberately excludes closures,
// whose keys and captured objects are meaningless outside their package.

// ParamSummary describes a function's effect on one parameter (the
// receiver counts as parameter 0 for methods). "Always" bits are
// must-facts — true on every terminating path; "May" bits are
// may-facts — true on at least one path.
type ParamSummary struct {
	// ReleasesAlways: every terminating path passes the parameter to
	// ReleaseWorkspace (directly or through a callee that does). A call
	// discharges the caller's release obligation.
	ReleasesAlways bool `json:",omitempty"`
	// ReleasesMay: some path releases, some does not — worse than either
	// extreme, because the caller can neither keep nor drop the
	// obligation.
	ReleasesMay bool `json:",omitempty"`
	// Escapes: the parameter may be retained beyond the call (stored,
	// returned, captured, passed to an unknown callee). Callers must stop
	// tracking it.
	Escapes bool `json:",omitempty"`
	// StopsJournalAlways: every terminating path calls StopJournal on the
	// parameter.
	StopsJournalAlways bool `json:",omitempty"`
	// StopsJournalMay: some path calls StopJournal on the parameter.
	StopsJournalMay bool `json:",omitempty"`
	// OpensJournal: some path calls StartJournal on the parameter and
	// returns without stopping it.
	OpensJournal bool `json:",omitempty"`
	// LocksParam / UnlocksParam: some path acquires / releases the
	// parameter as a mutex (Lock/RLock, Unlock/RUnlock — directly or
	// through a callee's summary). The concurrency analyzers transfer
	// locksets through calls with these bits.
	LocksParam   bool `json:",omitempty"`
	UnlocksParam bool `json:",omitempty"`
	// WGDoneMay / WGDoneAlways: Done is called on the parameter WaitGroup
	// on some / every terminating path (deferred calls count on every
	// path).
	WGDoneMay    bool `json:",omitempty"`
	WGDoneAlways bool `json:",omitempty"`
}

// Summary is the effect summary of one function.
type Summary struct {
	// Recv is true when the function is a method and Params[0] is the
	// receiver.
	Recv bool `json:",omitempty"`
	// Params are the per-parameter effects, receiver first for methods.
	Params []ParamSummary `json:",omitempty"`
	// StampsAlways: every terminating path stamps a workspace visit
	// (touch/visit/StartVisitTracking) before returning, so code after the
	// call is in the stamped state.
	StampsAlways bool `json:",omitempty"`
	// ReadsUnstamped: some path reads ObsMap.Blocked before any visit
	// stamp inside this function. Propagated to call sites that are
	// themselves un-stamped — unless the callee is Checked.
	ReadsUnstamped bool `json:",omitempty"`
	// Checked: the function is itself inside the snapshotread analyzer's
	// scope (hot package or //pacor:hot, with a workspace in scope), so
	// violations are reported in its own body and do not propagate to
	// callers; it is its own reporting boundary.
	Checked bool `json:",omitempty"`
	// NoReturn: the function cannot return normally on any path (every
	// path panics, exits, or loops forever). Callers prune the successor
	// paths of such calls.
	NoReturn bool `json:",omitempty"`
	// Concurrency effects, all may-facts folded transitively over
	// synchronous callees: Spawns starts a goroutine; LocksAny/UnlocksAny
	// acquire or release some mutex; SendsChan/RecvsChan perform channel
	// operations; WGAdd/WGDone/WGWait are sync.WaitGroup traffic. The
	// concurrency analyzers use them for barrier detection (a callee that
	// waits ends the spawner's racy window) and hygiene checks.
	Spawns     bool `json:",omitempty"`
	LocksAny   bool `json:",omitempty"`
	UnlocksAny bool `json:",omitempty"`
	SendsChan  bool `json:",omitempty"`
	RecvsChan  bool `json:",omitempty"`
	WGAdd      bool `json:",omitempty"`
	WGDone     bool `json:",omitempty"`
	WGWait     bool `json:",omitempty"`
}

// Param returns the i-th parameter summary, zero when out of range (more
// arguments than summarized parameters — variadic tail, or a partially
// checked package).
func (s *Summary) Param(i int) ParamSummary {
	if s == nil || i < 0 || i >= len(s.Params) {
		return ParamSummary{}
	}
	return s.Params[i]
}

// Equal reports whether two summaries carry the same facts (fixed-point
// detection during SCC iteration).
func (s *Summary) Equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Recv != o.Recv || s.StampsAlways != o.StampsAlways ||
		s.ReadsUnstamped != o.ReadsUnstamped || s.Checked != o.Checked ||
		s.NoReturn != o.NoReturn || len(s.Params) != len(o.Params) {
		return false
	}
	if s.Spawns != o.Spawns || s.LocksAny != o.LocksAny ||
		s.UnlocksAny != o.UnlocksAny || s.SendsChan != o.SendsChan ||
		s.RecvsChan != o.RecvsChan || s.WGAdd != o.WGAdd ||
		s.WGDone != o.WGDone || s.WGWait != o.WGWait {
		return false
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// A Store holds summaries keyed by callgraph function key, accumulated
// across packages in dependency order so a package's analysis finds its
// dependencies' summaries already present. It is safe for concurrent use:
// the parallel driver summarizes independent packages on separate
// goroutines against one shared store.
type Store struct {
	mu sync.RWMutex
	m  map[string]*Summary
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: map[string]*Summary{}} }

// Get returns the summary for key, or nil.
func (s *Store) Get(key string) *Summary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[key]
}

// Put records the summary for key, replacing any previous one.
func (s *Store) Put(key string, sum *Summary) {
	s.mu.Lock()
	s.m[key] = sum
	s.mu.Unlock()
}

// PutAll records every summary in m.
func (s *Store) PutAll(m map[string]*Summary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range m {
		s.m[k] = v
	}
}

// EncodePackage serializes a package's summary map deterministically
// (sorted keys, closure entries dropped) for the fact cache. The blob both
// persists the facts and — hashed — stands in for the package's analysis-
// relevant interface in dependents' cache keys: a source change that
// leaves every summary intact does not dirty dependents (early cutoff).
func EncodePackage(sums map[string]*Summary) ([]byte, error) {
	keys := make([]string, 0, len(sums))
	for k := range sums {
		if strings.Contains(k, "$") {
			continue // closures never cross the package boundary
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(sums[k])
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// DecodePackage inverts EncodePackage.
func DecodePackage(blob []byte) (map[string]*Summary, error) {
	if len(blob) == 0 {
		return map[string]*Summary{}, nil
	}
	out := map[string]*Summary{}
	if err := json.Unmarshal(blob, &out); err != nil {
		return nil, fmt.Errorf("summary blob: %v", err)
	}
	return out, nil
}
