// Package cfg builds per-function control-flow graphs over go/ast and
// solves forward dataflow problems on them, entirely on the standard
// library. It is the analysis substrate behind the dataflow-aware
// analyzers in internal/lint (wsaliasing, snapshotread, nondeterm): the
// syntax-level walkers cannot see that a workspace escapes on one branch
// but is released on the other, or that an obstacle read precedes its
// visit stamp only on the error path — a flow graph can.
//
// The graph is intentionally lint-grade rather than compiler-grade:
// short-circuit evaluation inside a condition is not split into blocks
// (the whole condition is one node), panics do not terminate blocks, and
// deferred calls appear where the defer statement executes. Those
// approximations err toward fewer spurious paths, which is the right
// direction for a reporting tool.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: a maximal run of straight-line code. Nodes
// holds the block's statements and control-flow expressions in source
// order; a bare ast.Expr among them is a control condition (if/for
// condition, switch tag, case expression, or range operand) rather than an
// expression statement.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the statements and control expressions executed by the
	// block, in order.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next.
	Succs []*Block
	// Preds are the blocks control may arrive from.
	Preds []*Block
}

// A Graph is the control-flow graph of one function body. Entry has no
// predecessors; Exit is a synthetic empty block reached by every return
// and by falling off the end of the body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the control-flow graph of body. Closures inside body are not
// expanded — an *ast.FuncLit is an opaque value in the block that mentions
// it, and callers analyze closure bodies as separate graphs.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit)
	return g
}

// RPO returns the blocks reachable from Entry in reverse postorder — the
// order forward dataflow converges fastest in.
func (g *Graph) RPO() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Idoms returns the immediate dominator of every block, indexed by
// Block.Index, using the Cooper–Harvey–Kennedy iterative algorithm. The
// entry block's immediate dominator is itself; unreachable blocks map to
// nil.
func (g *Graph) Idoms() []*Block {
	rpo := g.RPO()
	num := make([]int, len(g.Blocks)) // block index -> RPO position
	for i := range num {
		num[i] = -1
	}
	for i, b := range rpo {
		num[b.Index] = i
	}
	idom := make([]*Block, len(g.Blocks))
	idom[g.Entry.Index] = g.Entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for num[a.Index] > num[b.Index] {
				a = idom[a.Index]
			}
			for num[b.Index] > num[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var d *Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if d == nil {
					d = p
				} else {
					d = intersect(d, p)
				}
			}
			if d != nil && idom[b.Index] != d {
				idom[b.Index] = d
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom tree returned by
// Idoms (every block dominates itself).
func Dominates(idom []*Block, a, b *Block) bool {
	for {
		if b == a {
			return true
		}
		d := idom[b.Index]
		if d == nil || d == b {
			return false
		}
		b = d
	}
}

// --- builder ---------------------------------------------------------------

type labelInfo struct {
	target *Block // the labeled statement's entry (goto target)
	brk    *Block // break target when the labeled statement is breakable
	cont   *Block // continue target when the labeled statement is a loop
}

type builder struct {
	g   *Graph
	cur *Block

	breaks    []*Block
	continues []*Block
	labels    map[string]*labelInfo
	labelNext string // label attached to the next loop/switch/select
	fallNext  *Block // fallthrough target inside the current switch clause
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) takeLabel() string {
	l := b.labelNext
	b.labelNext = ""
	return l
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) pushLoop(name string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if name != "" {
		li := b.label(name)
		li.brk, li.cont = brk, cont
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreakable(name string, brk *Block) {
	b.breaks = append(b.breaks, brk)
	if name != "" {
		b.label(name).brk = brk
	}
}

func (b *builder) popBreakable() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		after := b.newBlock()
		b.edge(thenEnd, after)
		if elseEnd != nil {
			b.edge(elseEnd, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		if post != nil {
			b.cur = post
			b.add(s.Post)
			b.edge(post, head)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		b.edge(head, body)
		after := b.newBlock()
		b.edge(head, after)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		cond := b.cur
		after := b.newBlock()
		b.pushBreakable(label, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cond, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.popBreakable()
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // dead continuation

	case *ast.BranchStmt:
		b.add(s)
		var target *Block
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				target = b.label(s.Label.Name).brk
			} else if len(b.breaks) > 0 {
				target = b.breaks[len(b.breaks)-1]
			}
		case token.CONTINUE:
			if s.Label != nil {
				target = b.label(s.Label.Name).cont
			} else if len(b.continues) > 0 {
				target = b.continues[len(b.continues)-1]
			}
		case token.GOTO:
			if s.Label != nil {
				target = b.label(s.Label.Name).target
			}
		case token.FALLTHROUGH:
			target = b.fallNext
		}
		if target != nil {
			b.edge(b.cur, target)
		}
		b.cur = b.newBlock() // dead continuation

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.labelNext = s.Label.Name
		b.stmt(s.Stmt)
		b.labelNext = ""

	case *ast.EmptyStmt:
		// nothing

	default:
		// Expression, assignment, declaration, send, inc/dec, defer, go:
		// straight-line code.
		b.add(s)
	}
}

// caseClauses lowers the body of a switch or type switch: every clause is
// a successor of the current block (clause conditions are evaluated in
// order, but the lint-grade graph treats them as one fan-out), with an
// implicit break to the join block and explicit fallthrough edges.
func (b *builder) caseClauses(label string, clauses []ast.Stmt, allowFall bool) {
	cond := b.cur
	after := b.newBlock()
	b.pushBreakable(label, after)
	savedFall := b.fallNext
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(cond, blocks[i])
	}
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallNext = nil
		if allowFall && i+1 < len(clauses) {
			b.fallNext = blocks[i+1]
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallNext = savedFall
	if !hasDefault {
		b.edge(cond, after)
	}
	b.popBreakable()
	b.cur = after
}
