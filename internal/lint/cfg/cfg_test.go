package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a single function declaration and
// returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// checkInvariants verifies structural sanity: pred/succ symmetry, indices,
// and that Entry has no predecessors.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if len(g.Entry.Preds) != 0 {
		t.Errorf("entry has %d preds", len(g.Entry.Preds))
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("exit has %d succs", len(g.Exit.Succs))
	}
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("block %d has Index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Errorf("edge %d->%d missing from preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				t.Errorf("edge %d->%d missing from succs", p.Index, b.Index)
			}
		}
	}
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

func reachable(g *Graph) map[*Block]bool {
	m := map[*Block]bool{}
	for _, b := range g.RPO() {
		m[b] = true
	}
	return m
}

func TestStraightLine(t *testing.T) {
	g := New(parseBody(t, "x := 1\ny := x\n_ = y"))
	checkInvariants(t, g)
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should flow straight to exit")
	}
}

func TestIfElseJoin(t *testing.T) {
	g := New(parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`))
	checkInvariants(t, g)
	// Entry (with cond) -> then, else; both -> join -> exit.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2", len(g.Entry.Succs))
	}
	join := g.Entry.Succs[0].Succs[0]
	if join != g.Entry.Succs[1].Succs[0] {
		t.Fatalf("then and else do not meet at one join block")
	}
	if len(join.Preds) != 2 {
		t.Errorf("join has %d preds, want 2", len(join.Preds))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := New(parseBody(t, "x := 0\nif x > 0 {\n\tx = 1\n}\n_ = x"))
	checkInvariants(t, g)
	// The condition block must have an edge skipping the then-block.
	var then, after *Block
	for _, s := range g.Entry.Succs {
		if len(s.Preds) == 2 {
			after = s
		} else {
			then = s
		}
	}
	if then == nil || after == nil {
		t.Fatalf("missing then/after shape: succs=%d", len(g.Entry.Succs))
	}
	if !containsBlock(then.Succs, after) {
		t.Errorf("then does not rejoin after")
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := New(parseBody(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}"))
	checkInvariants(t, g)
	// Some reachable block must have a back edge (successor already seen on
	// the path), i.e. the graph is cyclic.
	idom := g.Idoms()
	cyclic := false
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if Dominates(idom, s, b) {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Error("for loop produced an acyclic graph")
	}
}

func TestReturnReachesExit(t *testing.T) {
	g := New(parseBody(t, `
x := 0
if x > 0 {
	return
}
x = 2
_ = x`))
	checkInvariants(t, g)
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit has %d preds, want 2 (return + fallthrough)", len(g.Exit.Preds))
	}
}

func TestBreakContinue(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < 10; i++ {
	if i == 3 {
		continue
	}
	if i == 5 {
		break
	}
	_ = i
}`))
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := New(parseBody(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i+j > 2 {
			break outer
		}
	}
}
_ = 1`))
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestGotoForward(t *testing.T) {
	g := New(parseBody(t, `
x := 0
if x == 0 {
	goto done
}
x = 1
done:
_ = x`))
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := New(parseBody(t, `
x := 0
switch x {
case 0:
	x = 1
	fallthrough
case 1:
	x = 2
default:
	x = 3
}
_ = x`))
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestSelectShape(t *testing.T) {
	g := New(parseBody(t, `
a := make(chan int)
b := make(chan int)
select {
case <-a:
	_ = 1
case <-b:
	_ = 2
}`))
	checkInvariants(t, g)
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestRangeZeroIterations(t *testing.T) {
	// The range head must have an edge straight to the after-block: a
	// zero-iteration range skips the body.
	g := New(parseBody(t, "m := map[int]int{}\nfor k := range m {\n\t_ = k\n}"))
	checkInvariants(t, g)
	idom := g.Idoms()
	// The body must not dominate the exit.
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok && b != g.Entry {
				if Dominates(idom, b, g.Exit) {
					t.Errorf("range body dominates exit; zero-iteration edge missing")
				}
			}
		}
	}
}

func TestDominance(t *testing.T) {
	g := New(parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`))
	idom := g.Idoms()
	// Entry dominates everything reachable.
	for b := range reachable(g) {
		if !Dominates(idom, g.Entry, b) {
			t.Errorf("entry does not dominate block %d", b.Index)
		}
	}
	// Neither arm dominates the exit.
	for _, arm := range g.Entry.Succs {
		if Dominates(idom, arm, g.Exit) {
			t.Errorf("branch arm %d dominates exit", arm.Index)
		}
	}
}

// TestSolveMustStamp runs a small must-analysis ("has f() been called on
// every path?") over an if-without-else and a loop, checking join
// directionality.
func TestSolveMustStamp(t *testing.T) {
	isStamp := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "stamp" {
					found = true
				}
			}
			return true
		})
		return found
	}
	solve := func(body string) bool {
		g := New(parseBody(t, body))
		in := Solve(g, Problem[bool]{
			Entry: false,
			Transfer: func(b *Block, in bool) bool {
				out := in
				for _, n := range b.Nodes {
					if isStamp(n) {
						out = true
					}
				}
				return out
			},
			Join:  func(a, b bool) bool { return a && b },
			Equal: func(a, b bool) bool { return a == b },
		})
		return in[g.Exit.Index]
	}

	if got := solve("stamp()\n_ = 1"); !got {
		t.Error("straight-line stamp not seen at exit")
	}
	if got := solve("x := 0\nif x > 0 {\n\tstamp()\n}\n_ = x"); got {
		t.Error("one-armed stamp should not reach exit on all paths")
	}
	if got := solve("x := 0\nif x > 0 {\n\tstamp()\n} else {\n\tstamp()\n}\n_ = x"); !got {
		t.Error("both-armed stamp should reach exit")
	}
	if got := solve("for i := 0; i < 3; i++ {\n\tstamp()\n}\n_ = 1"); got {
		t.Error("stamp inside a maybe-zero-iteration loop should not reach exit")
	}
}

// TestSolveMayTaint runs a small may-analysis (union join) checking that
// facts merge across branches.
func TestSolveMayTaint(t *testing.T) {
	g := New(parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`))
	type fact map[string]bool
	countAssigns := func(b *Block, in fact) fact {
		out := fact{}
		for k := range in {
			out[k] = true
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					out[id.Name+":"+as.Tok.String()] = true
				}
			}
		}
		return out
	}
	in := Solve(g, Problem[fact]{
		Entry:    fact{},
		Transfer: countAssigns,
		Join: func(a, b fact) fact {
			u := fact{}
			for k := range a {
				u[k] = true
			}
			for k := range b {
				u[k] = true
			}
			return u
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
	got := in[g.Exit.Index]
	if !got["x:="] || !got["x::="] {
		t.Errorf("exit fact missing branch assignments: %v", got)
	}
}
