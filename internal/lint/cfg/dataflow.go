package cfg

// A Problem describes a forward dataflow analysis over a Graph. F is the
// fact type (a map, a bitset, a bool — whatever the analysis needs).
//
// Contract: Transfer and Join must be pure — they return new facts and do
// not mutate their arguments — and Transfer must be monotone in the fact
// lattice. Solve may alias facts between blocks, so a Transfer that
// mutated its input would corrupt its predecessors' results.
type Problem[F any] struct {
	// Entry is the fact flowing into the graph's entry block.
	Entry F
	// Transfer computes the fact leaving b given the fact entering it.
	Transfer func(b *Block, in F) F
	// Join combines facts arriving over two predecessor edges (the lattice
	// least upper bound: union for may-analyses, intersection for
	// must-analyses).
	Join func(a, b F) F
	// Equal reports whether two facts are equal (fixed-point detection).
	Equal func(a, b F) bool
}

// Solve iterates p to a fixed point and returns the fact entering every
// block, indexed by Block.Index. Unreachable blocks keep the zero F and
// never contribute to a join, which makes the zero value the implicit
// "unreached" element of the lattice. Callers typically replay Transfer
// over interesting blocks afterwards to attach diagnostics to the nodes
// that change the fact.
func Solve[F any](g *Graph, p Problem[F]) []F {
	in := make([]F, len(g.Blocks))
	out := make([]F, len(g.Blocks))
	hasIn := make([]bool, len(g.Blocks))
	hasOut := make([]bool, len(g.Blocks))
	queued := make([]bool, len(g.Blocks))

	rpo := g.RPO()
	queue := make([]*Block, 0, len(rpo))
	for _, b := range rpo {
		queue = append(queue, b)
		queued[b.Index] = true
	}

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false

		var newIn F
		haveFact := false
		if b == g.Entry {
			newIn = p.Entry
			haveFact = true
		}
		for _, pr := range b.Preds {
			if !hasOut[pr.Index] {
				continue // unreached predecessor contributes nothing yet
			}
			if !haveFact {
				newIn = out[pr.Index]
				haveFact = true
			} else {
				newIn = p.Join(newIn, out[pr.Index])
			}
		}
		if !haveFact {
			continue // block not reached yet; a predecessor change requeues it
		}
		if hasIn[b.Index] && p.Equal(in[b.Index], newIn) {
			continue
		}
		in[b.Index] = newIn
		hasIn[b.Index] = true

		newOut := p.Transfer(b, newIn)
		if hasOut[b.Index] && p.Equal(out[b.Index], newOut) {
			continue
		}
		out[b.Index] = newOut
		hasOut[b.Index] = true
		for _, s := range b.Succs {
			if !queued[s.Index] {
				queue = append(queue, s)
				queued[s.Index] = true
			}
		}
	}
	return in
}
