package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTestModule lays out a tiny two-package module: leaf (no deps) and
// top (imports leaf, holds a deliberate wsaliasing violation so findings
// survive caching). Returns the module root.
func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachemod\n\ngo 1.22\n",
		"leaf/leaf.go": `// Package leaf is the dependency.
package leaf

// Workspace stands in for the pooled search state.
type Workspace struct{ N int }

// AcquireWorkspace stands in for the pooled acquire.
func AcquireWorkspace() *Workspace { return &Workspace{} }

// ReleaseWorkspace stands in for the pooled release.
func ReleaseWorkspace(*Workspace) {}

// Finish releases on every path.
func Finish(ws *Workspace) int {
	n := ws.N
	ReleaseWorkspace(ws)
	return n
}
`,
		"top/top.go": `// Package top depends on leaf.
package top

import "cachemod/leaf"

// Clean discharges through leaf.Finish's summary.
func Clean() int {
	ws := leaf.AcquireWorkspace()
	return leaf.Finish(ws)
}

// Leaky never releases: one stable finding to round-trip through the
// cache.
func Leaky() int {
	ws := leaf.AcquireWorkspace()
	return ws.N
}
`,
	}
	for name, content := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// cacheRun lints the test module with the fact cache at cacheDir and
// returns the findings plus the run stats.
func cacheRun(t *testing.T, root, cacheDir string) ([]Finding, *RunStats) {
	t.Helper()
	stats := &RunStats{}
	findings, err := Run(Options{
		Dir:      root,
		Patterns: []string{"./..."},
		CacheDir: cacheDir,
		Stats:    stats,
	})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	return findings, stats
}

// TestCacheRoundTrip pins the incremental contract: a warm run re-analyzes
// nothing and reproduces the cold run's findings byte for byte.
func TestCacheRoundTrip(t *testing.T) {
	root := writeTestModule(t)
	cacheDir := filepath.Join(root, ".pacorvet-cache")

	cold, coldStats := cacheRun(t, root, cacheDir)
	if coldStats.CacheHits != 0 || coldStats.Reanalyzed != coldStats.Packages {
		t.Fatalf("cold run stats = %+v, want all %d packages re-analyzed", coldStats, coldStats.Packages)
	}
	if len(cold) == 0 {
		t.Fatal("test module produced no findings; the round-trip checks nothing")
	}

	warm, warmStats := cacheRun(t, root, cacheDir)
	if warmStats.Reanalyzed != 0 || warmStats.CacheHits != warmStats.Packages {
		t.Fatalf("warm run stats = %+v, want all %d packages from cache", warmStats, warmStats.Packages)
	}

	coldJSON, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("warm findings differ from cold:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

// TestCacheEarlyCutoff pins the summary-hash cutoff: editing a comment in
// the leaf package dirties the leaf (its sources changed) but not its
// dependent, whose key folds in only the leaf's summary hash.
func TestCacheEarlyCutoff(t *testing.T) {
	root := writeTestModule(t)
	cacheDir := filepath.Join(root, ".pacorvet-cache")
	cacheRun(t, root, cacheDir)

	leaf := filepath.Join(root, "leaf", "leaf.go")
	data, err := os.ReadFile(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leaf, append(data, []byte("\n// trailing comment, no semantic change\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats := cacheRun(t, root, cacheDir)
	if want := []string{"cachemod/leaf"}; !reflect.DeepEqual(stats.ReanalyzedPkgs, want) {
		t.Errorf("re-analyzed %v after a leaf comment edit, want %v (early cutoff for dependents)", stats.ReanalyzedPkgs, want)
	}
}

// TestCacheInvalidationPropagates is the early-cutoff counterpart: a
// semantic change to the leaf's summaries must dirty the dependent too.
func TestCacheInvalidationPropagates(t *testing.T) {
	root := writeTestModule(t)
	cacheDir := filepath.Join(root, ".pacorvet-cache")

	cold, _ := cacheRun(t, root, cacheDir)

	// Finish stops releasing: top.Clean now leaks.
	leaf := filepath.Join(root, "leaf", "leaf.go")
	data, err := os.ReadFile(leaf)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(data), "\tReleaseWorkspace(ws)\n", "\t// no longer releases\n", 1)
	if patched == string(data) {
		t.Fatal("release line not found in test module source")
	}
	if err := os.WriteFile(leaf, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	warm, stats := cacheRun(t, root, cacheDir)
	if stats.Reanalyzed != 2 {
		t.Errorf("re-analyzed %v after a leaf summary change, want both packages", stats.ReanalyzedPkgs)
	}
	if len(warm) <= len(cold) {
		t.Errorf("summary change produced no new finding: cold %d, warm %d", len(cold), len(warm))
	}
}
