package lint

import (
	"go/ast"

	"repro/internal/lint/cfg"
)

// AnalyzerSnapshotRead guards the scheduler's validation protocol: the
// speculative parallel router (route.RunScheduled) can only prove a run's
// transcript identical to the sequential one if every obstacle-state read
// is preceded by a visit stamp on the workspace — Workspace.touch /
// touchBounded / visit / StartVisitTracking — so that a path committed
// after the snapshot provably was or wasn't observed. An ObsMap.Blocked
// read reachable before any stamp is invisible to validation and silently
// breaks the byte-identical guarantee.
//
// Scope: functions in the hot routing packages (internal/route,
// internal/grid) and //pacor:hot functions elsewhere, and only those with
// a Workspace in scope (receiver, parameter, or acquired locally) —
// helpers that legitimately read obstacle state outside the speculation
// protocol are not the target. The check is a must-analysis over the
// control-flow graph: the fact "some stamp has happened" must hold on
// every path into a Blocked read.
var AnalyzerSnapshotRead = &Analyzer{
	Name: "snapshotread",
	Doc:  "in hot routing code, ObsMap reads must be preceded by a workspace visit stamp on every path",
	Run:  runSnapshotRead,
}

// snapStampMethods are the Workspace methods that stamp cells into the
// visit set (or switch tracking on).
var snapStampMethods = map[string]bool{
	"StartVisitTracking": true,
	"touch":              true,
	"touchBounded":       true,
	"visit":              true,
}

func runSnapshotRead(p *Pass) {
	inHotPkg := pathHasSuffix(p.PkgPath, hotPackages...)
	for _, file := range p.Files {
		for _, fn := range flowFuncs(file) {
			if !inHotPkg && !p.HotFunc(fn.decl) {
				continue
			}
			if !snapWsInScope(p, fn) {
				continue
			}
			checkSnapshotFunc(p, fn)
		}
	}
}

// snapWsInScope reports whether fn has a *Workspace available: as the
// method receiver, as a parameter (its own or, for a closure, the host
// function's), or acquired in the body.
func snapWsInScope(p *Pass, fn flowFunc) bool {
	isWs := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			if namedTypeName(p.TypeOf(f.Type)) == "Workspace" {
				return true
			}
		}
		return false
	}
	if isWs(fn.decl.Recv) || isWs(fn.decl.Type.Params) {
		return true
	}
	if fn.lit != nil && isWs(fn.lit.Type.Params) {
		return true
	}
	found := false
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if wsAcquireCall(nodeAsExpr(n)) != nil {
			found = true
		}
		return !found
	})
	return found
}

func nodeAsExpr(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}

// checkSnapshotFunc runs the must-stamped analysis over one body.
func checkSnapshotFunc(p *Pass, fn flowFunc) {
	g := cfg.New(fn.body)
	facts := cfg.Solve(g, cfg.Problem[bool]{
		Entry: false,
		Transfer: func(b *cfg.Block, in bool) bool {
			stamped := in
			for _, n := range b.Nodes {
				snapScanNode(p, n, &stamped, nil)
			}
			return stamped
		},
		Join:  func(a, b bool) bool { return a && b }, // must hold on every path
		Equal: func(a, b bool) bool { return a == b },
	})
	for _, b := range g.RPO() {
		stamped := facts[b.Index]
		for _, n := range b.Nodes {
			snapScanNode(p, n, &stamped, fn.decl)
		}
	}
}

// snapScanNode scans one CFG node in preorder (approximating evaluation
// order), raising *stamped at stamp calls and, when reporting (decl
// non-nil), flagging Blocked reads seen while *stamped is false. Calls to
// known functions consult their summaries: a callee that stamps on every
// path raises the fact like a direct stamp, and a callee that reads
// Blocked before stamping is itself a violation at this call site —
// unless it is Checked (reported in its own body already).
func snapScanNode(p *Pass, n ast.Node, stamped *bool, decl *ast.FuncDecl) {
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv := namedTypeName(p.TypeOf(sel.X))
			if snapStampMethods[sel.Sel.Name] && recv == "Workspace" {
				*stamped = true
				return true
			}
			if sel.Sel.Name == "Blocked" && recv == "ObsMap" && !*stamped && decl != nil {
				p.Reportf(call.Pos(), "ObsMap.Blocked read is reachable before any workspace visit stamp; stamp the cell first (Workspace.touch/StartVisitTracking) or the scheduler cannot validate speculative runs")
				return true
			}
		}
		if sum := p.ip.calleeSummary(call); sum != nil {
			if sum.ReadsUnstamped && !sum.Checked && !*stamped && decl != nil {
				p.Reportf(call.Pos(), "call to %s reads ObsMap.Blocked before any workspace visit stamp on this path; stamp first, or stamp inside the callee", snapCalleeName(p, call))
			}
			if sum.StampsAlways {
				*stamped = true
			}
		}
		return true
	})
}

// snapCalleeName renders the resolved callee of call for a finding
// message, without the package-path prefix.
func snapCalleeName(p *Pass, call *ast.CallExpr) string {
	key := p.ip.calleeKey(call)
	if i := lastSlash(key); i >= 0 {
		key = key[i+1:]
	}
	return key
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
