package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/cfg"
)

// AnalyzerSharedCapture is a RacerD-style compositional race check on
// spawned closures: a variable captured by a `go` closure that is written
// on one side (goroutine or spawner) and accessed on the other without a
// common must-held lock, before any synchronization barrier, is a data
// race. Two rules fire:
//
//   - loop spawn: a closure spawned inside a loop writes a captured
//     variable declared outside the loop without a lock — concurrent
//     instances of the closure race with each other (Go 1.22 per-iteration
//     loop variables are exempt: each instance captures its own copy);
//   - spawner window: between the `go` statement and the spawner's next
//     barrier (WaitGroup.Wait, a channel receive, or a call that does
//     either), spawner accesses race goroutine accesses when at least one
//     side writes and their must-locksets are disjoint.
//
// Known unsoundness, chosen so today's repo stays finding-free: element
// and map-entry writes (a[i] = x) are never flagged (disjoint-index
// sharding is the repo's idiom), accesses inside closures nested in the
// goroutine are invisible, and sync-typed captures (Mutex, WaitGroup,
// Cond, channels) are exempt.
var AnalyzerSharedCapture = &Analyzer{
	Name: "sharedcapture",
	Doc:  "captured variables written by a spawned closure and accessed concurrently without a lock",
	Run:  runSharedCapture,
}

// concAccess is one read or write of a captured variable.
type concAccess struct {
	write bool
	locks lockset
}

func runSharedCapture(p *Pass) {
	if p.ip == nil {
		return
	}
	for _, file := range p.Files {
		for _, fn := range flowFuncs(file) {
			if fn.body != nil {
				checkSpawns(p, fn)
			}
		}
	}
}

// checkSpawns analyzes every go statement directly in fn's body.
func checkSpawns(p *Pass, fn flowFunc) {
	var spawns []*ast.GoStmt
	inspectShallow(fn.body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, gs)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}

	// Per-node must-locksets and the CFG, shared by every spawn site.
	g := cfg.New(fn.body)
	idom := g.Idoms()
	heldAt := map[ast.Node]lockset{}
	lockWalk(p, fn.body, func(n ast.Node, held lockset) {
		heldAt[n] = held.clone()
	})
	loops := hostLoopSpans(fn.body)

	for _, gs := range spawns {
		lit := spawnedClosure(p, gs)
		if lit == nil {
			continue // named-function spawns pass arguments by value
		}
		caps := capturedVars(p, fn, lit)
		if len(caps) == 0 {
			continue
		}
		capSet := map[types.Object]bool{}
		for _, c := range caps {
			capSet[c] = true
		}

		gorAcc := map[types.Object][]concAccess{}
		lockWalk(p, lit.Body, func(n ast.Node, held lockset) {
			collectAccesses(p, n, capSet, held, gorAcc)
		})
		spawnerAcc := windowAccesses(p, g, idom, heldAt, gs, capSet)

		loop, inLoop := enclosingLoop(loops, gs.Pos())
		for _, obj := range caps {
			ga, sa := gorAcc[obj], spawnerAcc[obj]
			if inLoop && obj.Pos() < loop.lo && hasUnlockedWrite(ga) {
				p.Reportf(gs.Pos(), "closure spawned in a loop writes captured variable %s without a lock; concurrent instances of the closure race on it", obj.Name())
				continue
			}
			if racyPair(ga, sa) {
				p.Reportf(gs.Pos(), "captured variable %s is accessed by both this goroutine and its spawner after the go statement, with a write on at least one side and no common lock or barrier between them", obj.Name())
			}
		}
	}
}

// racyPair reports whether some goroutine access and some spawner-window
// access conflict: at least one of the pair writes and their must-locksets
// share no lock.
func racyPair(ga, sa []concAccess) bool {
	for _, a := range ga {
		for _, b := range sa {
			if !a.write && !b.write {
				continue
			}
			if !locksOverlap(a.locks, b.locks) {
				return true
			}
		}
	}
	return false
}

func locksOverlap(a, b lockset) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func hasUnlockedWrite(acc []concAccess) bool {
	for _, a := range acc {
		if a.write && len(a.locks) == 0 {
			return true
		}
	}
	return false
}

// spawnedClosure resolves the closure a go statement runs: a literal
// operand, or a call through a call-only bound closure variable.
func spawnedClosure(p *Pass, gs *ast.GoStmt) *ast.FuncLit {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun
	case *ast.Ident:
		return p.ip.boundLit(p.ObjectOf(fun))
	}
	return nil
}

// capturedVars returns the function-local variables lit captures from its
// enclosing function, in declaration order. Synchronization objects
// (mutexes, wait groups, condition variables, channels) are exempt: they
// are shared by design.
func capturedVars(p *Pass, fn flowFunc, lit *ast.FuncLit) []types.Object {
	hostLo, hostHi := fn.body.Pos(), fn.body.End()
	if fn.decl != nil {
		hostLo, hostHi = fn.decl.Pos(), fn.decl.End()
	}
	seen := map[types.Object]bool{}
	var out []types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own parameters and locals
		}
		if v.Pos() < hostLo || v.Pos() >= hostHi {
			return true // package-level state is not a capture
		}
		if isSyncType(v.Type()) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch namedTypeName(t) {
	case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Locker":
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// collectAccesses records obj reads and writes in node n (shallow: nested
// closures keep their accesses to themselves). A write is a whole-variable
// or field-path assignment; element and map-entry stores are deliberately
// not writes (disjoint-index sharding).
func collectAccesses(p *Pass, n ast.Node, objs map[types.Object]bool, held lockset, out map[types.Object][]concAccess) {
	writeOf := func(lhs ast.Expr) types.Object {
		for {
			switch e := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if obj := p.ObjectOf(e); obj != nil && objs[obj] {
					return obj
				}
				return nil
			case *ast.SelectorExpr:
				lhs = e.X
			default:
				return nil // index, deref, call results: not a tracked write
			}
		}
	}
	written := map[types.Object]bool{}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if obj := writeOf(lhs); obj != nil && !written[obj] {
					written[obj] = true
					out[obj] = append(out[obj], concAccess{write: true, locks: held.clone()})
				}
			}
		case *ast.IncDecStmt:
			if obj := writeOf(m.X); obj != nil && !written[obj] {
				written[obj] = true
				out[obj] = append(out[obj], concAccess{write: true, locks: held.clone()})
			}
		}
		return true
	})
	inspectShallow(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.ObjectOf(id); obj != nil && objs[obj] && !written[obj] {
			out[obj] = append(out[obj], concAccess{locks: held.clone()})
		}
		return true
	})
}

// windowAccesses collects the spawner's accesses to the captured variables
// in the concurrent window: every CFG node forward-reachable from the go
// statement (back edges excluded) up to the first barrier on each path.
func windowAccesses(p *Pass, g *cfg.Graph, idom []*cfg.Block, heldAt map[ast.Node]lockset, gs *ast.GoStmt, objs map[types.Object]bool) map[types.Object][]concAccess {
	out := map[types.Object][]concAccess{}
	startBlock, startIdx := -1, -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(gs) {
				startBlock, startIdx = b.Index, i
			}
		}
	}
	if startBlock < 0 {
		return out
	}

	visited := map[int]bool{}
	type item struct{ block, from int }
	queue := []item{{startBlock, startIdx + 1}}
	visited[startBlock] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		b := g.Blocks[it.block]
		stopped := false
		for _, n := range b.Nodes[it.from:] {
			if isBarrier(p, n) {
				stopped = true
				break
			}
			collectAccesses(p, n, objs, heldAt[n], out)
		}
		if stopped {
			continue
		}
		for _, s := range b.Succs {
			if visited[s.Index] || cfg.Dominates(idom, s, b) {
				continue // back edge: the next iteration re-spawns, handled by the loop rule
			}
			visited[s.Index] = true
			queue = append(queue, item{s.Index, 0})
		}
	}
	return out
}

// hostLoopSpans returns the source spans of loop statements directly in
// body.
func hostLoopSpans(body *ast.BlockStmt) []posSpan {
	var out []posSpan
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			out = append(out, posSpan{n.Pos(), n.End()})
		case *ast.RangeStmt:
			out = append(out, posSpan{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

type posSpan struct{ lo, hi token.Pos }

// enclosingLoop returns the innermost loop span containing pos.
func enclosingLoop(spans []posSpan, pos token.Pos) (posSpan, bool) {
	best, found := posSpan{}, false
	for _, s := range spans {
		if s.lo <= pos && pos < s.hi && (!found || s.lo > best.lo) {
			best, found = s, true
		}
	}
	return best, found
}
