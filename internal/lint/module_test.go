package lint

import (
	"path/filepath"
	"testing"
)

// TestModuleClean is the in-repo mirror of the CI gate: the whole module
// must produce zero unsuppressed findings under the full registry. A
// failure here means either a real invariant regression or a new
// violation that needs fixing (preferred) or a justified //pacor:allow.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(Options{
		Dir:      root,
		Patterns: []string{"./..."},
	})
	if err != nil {
		t.Fatalf("lint run on module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings above or suppress each with a justified //pacor:allow (see docs/LINTING.md)")
	}
}
