package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

// gitTest runs one git command in dir, failing the test on error.
func gitTest(t *testing.T, dir string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", append([]string{
		"-c", "user.email=test@example.com",
		"-c", "user.name=test",
	}, args...)...)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

// TestDiffPatterns pins the changed-package mapping: an edit to the leaf
// package affects the leaf and its reverse dependency, an edit to the top
// package affects only the top, and an untracked file counts as changed.
func TestDiffPatterns(t *testing.T) {
	root := writeTestModule(t)
	gitTest(t, root, "init", "-q")
	gitTest(t, root, "add", ".")
	gitTest(t, root, "commit", "-q", "-m", "seed")

	affected, err := DiffPatterns(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 0 {
		t.Errorf("clean tree affects %v, want none", affected)
	}

	top := filepath.Join(root, "top", "top.go")
	data, err := os.ReadFile(top)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(top, append(data, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	affected, err = DiffPatterns(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"cachemod/top"}; !reflect.DeepEqual(affected, want) {
		t.Errorf("top edit affects %v, want %v", affected, want)
	}

	// A leaf edit pulls in the reverse dependency.
	leaf := filepath.Join(root, "leaf", "leaf.go")
	data, err = os.ReadFile(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(leaf, append(data, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	affected, err = DiffPatterns(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"cachemod/leaf", "cachemod/top"}; !reflect.DeepEqual(affected, want) {
		t.Errorf("leaf edit affects %v, want %v", affected, want)
	}

	// An untracked package counts as changed too.
	gitTest(t, root, "add", ".")
	gitTest(t, root, "commit", "-q", "-m", "edits")
	extra := filepath.Join(root, "extra", "extra.go")
	if err := os.MkdirAll(filepath.Dir(extra), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(extra, []byte("// Package extra is new.\npackage extra\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	affected, err = DiffPatterns(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"cachemod/extra"}; !reflect.DeepEqual(affected, want) {
		t.Errorf("untracked package affects %v, want %v", affected, want)
	}
}

// TestDiffPatternsDeletedDir pins the deleted-package behavior: removing a
// package's whole directory must not fail or come back empty — the deleted
// path itself is skipped (there is nothing to list), and its now-broken
// reverse dependencies are returned instead.
func TestDiffPatternsDeletedDir(t *testing.T) {
	root := writeTestModule(t)
	gitTest(t, root, "init", "-q")
	gitTest(t, root, "add", ".")
	gitTest(t, root, "commit", "-q", "-m", "seed")

	if err := os.RemoveAll(filepath.Join(root, "leaf")); err != nil {
		t.Fatal(err)
	}
	affected, err := DiffPatterns(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"cachemod/top"}; !reflect.DeepEqual(affected, want) {
		t.Errorf("deleting leaf/ affects %v, want %v", affected, want)
	}

	// The returned pattern must actually lint: the broken import surfaces
	// as findings on top, not as a hard load failure.
	if _, err := Run(Options{Dir: root, Patterns: affected}); err != nil {
		t.Fatalf("Run over %v: %v", affected, err)
	}
}
