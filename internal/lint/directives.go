package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives understood by the driver, all written as line comments with no
// space after "//":
//
//	//pacor:allow <analyzer>[,<analyzer>...] <justification>
//	    Suppresses findings of the named analyzers on the directive's own
//	    line, or — when the comment stands alone on its line — on the next
//	    source line. Placed in a function's doc comment, it covers the
//	    whole function body (for functions that are exempt by design, like
//	    one-time buffer growth). The justification is mandatory; an allow
//	    directive without one is itself reported.
//
//	//pacor:hot
//	    In a function's doc comment or trailing the func line: subjects the
//	    function to the hotalloc analyzer even outside the hot packages.
//
//	//pacor:pkgpath <import/path>
//	    Fixture-only: overrides the package path seen by analyzers when a
//	    directory of loose files is linted (testdata has no go.mod entry).
//
//	//pacor:locked
//	    In a function's doc comment or trailing the func line: asserts that
//	    every caller holds the scheduler lock, so the commitorder analyzer
//	    accepts the function's own shared-state writes and instead requires
//	    a must-held lock at each call site.
const (
	allowPrefix   = "//pacor:allow"
	hotPrefix     = "//pacor:hot"
	pkgpathPrefix = "//pacor:pkgpath"
	lockedPrefix  = "//pacor:locked"
)

// allowDirective is one parsed //pacor:allow comment (kept only for
// directives that are themselves findings, i.e. missing a justification).
type allowDirective struct {
	analyzers []string
	pos       token.Pos
}

// allowRange is a function-scope suppression from a doc-comment directive.
type allowRange struct {
	from, to  int // line span, inclusive
	analyzers map[string]bool
}

// fileDirectives holds everything pacor:-flavored found in one file.
type fileDirectives struct {
	// allow maps source line -> analyzer names suppressed on that line.
	allow map[int]map[string]bool
	// ranges are function-scope suppressions (doc-comment directives).
	ranges []allowRange
	// unjustified are allow directives missing a justification.
	unjustified []allowDirective
	// pkgpath is the //pacor:pkgpath override, or "".
	pkgpath string
}

// suppressed reports whether a finding by analyzer on line is covered by
// a line or function-scope allow.
func (d fileDirectives) suppressed(analyzer string, line int) bool {
	if d.allow[line][analyzer] {
		return true
	}
	for _, r := range d.ranges {
		if line >= r.from && line <= r.to && r.analyzers[analyzer] {
			return true
		}
	}
	return false
}

// parseDirectives extracts pacor directives from one parsed file.
// Suppression targets the comment's own line; a comment that is the only
// thing on its line targets the line below instead, so both styles work:
//
//	x := m[k] //pacor:allow floateq exact sentinel comparison
//
//	//pacor:allow hotalloc one-time construction
//	buf := make([]byte, n)
func parseDirectives(fset *token.FileSet, file *ast.File) fileDirectives {
	d := fileDirectives{allow: map[int]map[string]bool{}}

	// Doc-comment directives suppress across the whole declaration. Record
	// which comments those are so the line pass below skips them.
	docComment := map[*ast.Comment]*ast.FuncDecl{}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			docComment[c] = fn
		}
	}

	// Lines that hold any non-comment token: a comment on such a line is a
	// trailing comment and applies to its own line.
	codeLines := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return false
		}
		if _, ok := n.(*ast.CommentGroup); ok {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		codeLines[fset.Position(n.End()).Line] = true
		return true
	})

	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			switch {
			case strings.HasPrefix(text, allowPrefix):
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					d.unjustified = append(d.unjustified, allowDirective{pos: c.Pos()})
					continue
				}
				names := strings.Split(fields[0], ",")
				if len(fields) < 2 {
					d.unjustified = append(d.unjustified, allowDirective{analyzers: names, pos: c.Pos()})
					continue
				}
				set := map[string]bool{}
				for _, n := range names {
					set[strings.TrimSpace(n)] = true
				}
				if fn, ok := docComment[c]; ok {
					d.ranges = append(d.ranges, allowRange{
						from:      fset.Position(fn.Pos()).Line,
						to:        fset.Position(fn.End()).Line,
						analyzers: set,
					})
					continue
				}
				line := fset.Position(c.Pos()).Line
				if !codeLines[line] {
					line++ // standalone comment: covers the next line
				}
				if cur := d.allow[line]; cur != nil {
					for n := range set {
						cur[n] = true
					}
				} else {
					d.allow[line] = set
				}
			case strings.HasPrefix(text, pkgpathPrefix):
				rest := strings.TrimSpace(strings.TrimPrefix(text, pkgpathPrefix))
				if rest != "" {
					d.pkgpath = rest
				}
			}
		}
	}
	return d
}

// hotFuncs returns the function declarations in file marked //pacor:hot,
// either in the doc comment or as a trailing comment on the func line.
func hotFuncs(fset *token.FileSet, file *ast.File) map[*ast.FuncDecl]bool {
	return markedFuncs(fset, file, hotPrefix)
}

// lockedFuncs returns the function declarations in file marked
// //pacor:locked (callers hold the scheduler lock).
func lockedFuncs(fset *token.FileSet, file *ast.File) map[*ast.FuncDecl]bool {
	return markedFuncs(fset, file, lockedPrefix)
}

// markedFuncs returns the function declarations carrying the given bare
// directive, either in the doc comment or trailing the func line.
func markedFuncs(fset *token.FileSet, file *ast.File, prefix string) map[*ast.FuncDecl]bool {
	marked := map[*ast.FuncDecl]bool{}

	// Comment lines carrying the bare directive.
	markLines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Text == prefix || strings.HasPrefix(c.Text, prefix+" ") {
				markLines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fn.Doc != nil {
			for _, c := range fn.Doc.List {
				if c.Text == prefix || strings.HasPrefix(c.Text, prefix+" ") {
					marked[fn] = true
				}
			}
		}
		if markLines[fset.Position(fn.Pos()).Line] {
			marked[fn] = true
		}
	}
	return marked
}
