package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// AnalyzerWsAliasing guards the pooled-workspace ownership contract behind
// the PR 3 scheduler: a *Workspace obtained from AcquireWorkspace is owned
// by exactly one goroutine, must reach ReleaseWorkspace on every control
// path (or the pool shrinks until every search allocates again), must not
// be used after release (the pool may already have handed it to another
// goroutine), and must not be released twice. The check is a forward
// dataflow analysis over the function's control-flow graph: each acquired
// variable carries a may-state bitset {acquired, released, escaped}, and
// joins take the union, so "released on one branch, leaked on the other"
// is visible where a syntax walk is blind.
//
// A workspace that escapes — passed to a callee, returned, stored into a
// structure, or captured by a closure — transfers its obligations to the
// receiver, and the local analysis stops tracking it. Goroutine handoff is
// the exception: a variable referenced by two or more `go` spawn sites
// (one site inside a loop counts double) is shared mutable search state
// and is flagged regardless.
//
// Calls are resolved interprocedurally when the driver provides summaries
// (Pass.ip): passing the workspace to a helper whose summary says it
// releases on every path discharges the obligation at the call site
// instead of escaping; a helper that releases on only some paths, or a
// call-only closure binding whose body leaks on a branch, keeps the
// obligation alive — cases the intraprocedural analysis either missed or
// wrote off as escapes.
var AnalyzerWsAliasing = &Analyzer{
	Name: "wsaliasing",
	Doc:  "pooled workspaces must be released on every path, never used after release, and owned by one goroutine",
	Run:  runWsAliasing,
}

// wsState maps each tracked workspace variable to its may-state bitset. A
// missing key means "not yet acquired".
type wsState map[types.Object]uint8

const (
	wsAcq uint8 = 1 << iota // holds a live pooled workspace on some path
	wsRel                   // released on some path
	wsEsc                   // escaped the function's ownership on some path
)

// wsSite records one AcquireWorkspace call site and the flow-insensitive
// facts about its variable.
type wsSite struct {
	name   string
	stmt   ast.Node // the acquiring statement
	qual   string   // callee qualifier as spelled ("route." or "")
	hasRel bool     // some ReleaseWorkspace(v) appears in the function
	defRel bool     // a defer ReleaseWorkspace(v) appears
	spawns int      // weighted count of `go` sites referencing v
}

func runWsAliasing(p *Pass) {
	for _, file := range p.Files {
		for _, fn := range flowFuncs(file) {
			checkWsFunc(p, fn)
		}
	}
}

type wsFunc struct {
	p       *Pass
	tracked map[types.Object]*wsSite
}

func checkWsFunc(p *Pass, fn flowFunc) {
	a := &wsFunc{p: p, tracked: map[types.Object]*wsSite{}}

	// Pass 1 (shallow): find acquire sites owned by this body. Acquires
	// inside nested closures belong to the closure's own flowFunc.
	inspectShallow(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call := wsAcquireCall(rhs)
				if call == nil {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if obj := p.ObjectOf(id); obj != nil {
					a.tracked[obj] = &wsSite{name: id.Name, stmt: n, qual: wsCallQual(call)}
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				call := wsAcquireCall(vs.Values[0])
				if call == nil {
					continue
				}
				if obj := p.ObjectOf(vs.Names[0]); obj != nil {
					a.tracked[obj] = &wsSite{name: vs.Names[0].Name, stmt: n, qual: wsCallQual(call)}
				}
			}
		}
		return true
	})
	if len(a.tracked) == 0 {
		return
	}

	// Pass 2 (deep): flow-insensitive facts — existing releases (anywhere,
	// closures included: a release inside a deferred closure still returns
	// the workspace) and goroutine spawn sites referencing the variable.
	var loops [][2]token.Pos
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
		case *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l[0] <= pos && pos < l[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := a.releaseTarget(n); obj != nil {
				if s := a.tracked[obj]; s != nil {
					s.hasRel = true
				}
			}
		case *ast.DeferStmt:
			if obj := a.releaseTarget(n.Call); obj != nil {
				if s := a.tracked[obj]; s != nil {
					s.defRel = true
				}
			} else if rel, _, ok := a.deferSummaryFacts(n.Call); ok {
				for obj := range rel {
					if s := a.tracked[obj]; s != nil {
						s.defRel = true
					}
				}
			}
		case *ast.GoStmt:
			w := 1
			if inLoop(n.Pos()) {
				w = 2 // one spawn site in a loop starts many goroutines
			}
			for obj := range a.referenced(n.Call) {
				if s := a.tracked[obj]; s != nil {
					s.spawns += w
				}
			}
		}
		return true
	})

	// Pass 3: dataflow. Solve for the state entering every block, then
	// replay reachable blocks with reporting on.
	g := cfg.New(fn.body)
	facts := cfg.Solve(g, cfg.Problem[wsState]{
		Entry: wsState{},
		Transfer: func(b *cfg.Block, in wsState) wsState {
			out := wsCopyState(in)
			for _, n := range b.Nodes {
				a.node(n, out, nil)
			}
			return out
		},
		Join:  wsJoinState,
		Equal: wsEqualState,
	})
	for _, b := range g.RPO() {
		fact := wsCopyState(facts[b.Index])
		for _, n := range b.Nodes {
			a.node(n, fact, p)
		}
	}

	// Exit obligations: a variable still (maybe) acquired at exit with no
	// deferred release leaks its workspace on that path.
	exit := facts[g.Exit.Index]
	for obj, site := range a.tracked {
		st := exit[obj]
		if st&wsAcq != 0 && st&wsEsc == 0 && !site.defRel {
			var fix *SuggestedFix
			if !site.hasRel {
				line := "defer " + site.qual + "ReleaseWorkspace(" + site.name + ")"
				if ed, ok := p.InsertLineAfter(site.stmt.Pos(), line); ok {
					fix = &SuggestedFix{Message: "defer the release at the acquire site", Edits: []TextEdit{ed}}
				}
			}
			p.ReportFix(site.stmt.Pos(), fix, "workspace %s does not reach ReleaseWorkspace on every path; release it or defer the release here", site.name)
		}
		if site.spawns >= 2 {
			p.Reportf(site.stmt.Pos(), "workspace %s is referenced by %d goroutine spawns; a pooled workspace must stay owned by a single goroutine", site.name, site.spawns)
		}
	}
}

// node interprets one CFG node against fact. When p is non-nil the walk is
// a reporting replay; during Solve it is nil and the walk only updates
// fact.
func (a *wsFunc) node(n ast.Node, fact wsState, p *Pass) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, fact, p)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Names) == 1 && len(vs.Values) == 1 && wsAcquireCall(vs.Values[0]) != nil {
				if obj := a.p.ObjectOf(vs.Names[0]); obj != nil && a.tracked[obj] != nil {
					fact[obj] = wsAcq
					continue
				}
			}
			for _, v := range vs.Values {
				a.expr(v, fact, p, true)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if obj := a.releaseTarget(call); obj != nil && a.tracked[obj] != nil {
				st := fact[obj]
				if st&wsEsc == 0 {
					if p != nil && st&wsRel != 0 {
						p.Reportf(call.Pos(), "workspace %s may already be released here; a double release poisons the pool", a.tracked[obj].name)
					}
					fact[obj] = (st | wsRel) &^ wsAcq
				}
				return
			}
		}
		a.expr(n.X, fact, p, false)
	case *ast.DeferStmt:
		if obj := a.releaseTarget(n.Call); obj != nil && a.tracked[obj] != nil {
			return // accounted for flow-insensitively via wsSite.defRel
		}
		if _, esc, ok := a.deferSummaryFacts(n.Call); ok {
			// Must-releases were folded into wsSite.defRel by pass 2; only
			// the partial effects (may-release, capture escape) matter here.
			for obj := range esc {
				fact[obj] |= wsEsc
			}
			return
		}
		a.expr(n.Call, fact, p, false)
	case *ast.GoStmt:
		a.expr(n.Call, fact, p, false)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.expr(r, fact, p, true)
		}
	case *ast.SendStmt:
		a.expr(n.Chan, fact, p, false)
		a.expr(n.Value, fact, p, true)
	case *ast.IncDecStmt:
		a.expr(n.X, fact, p, false)
	case ast.Expr:
		a.expr(n, fact, p, false) // control condition
	}
}

// assign interprets one assignment: an AcquireWorkspace pairing sets the
// acquired state, any other right-hand side is walked for uses and
// escapes, and reassigning a tracked variable from something else drops
// its obligations (the old value's owner is whoever it escaped to).
func (a *wsFunc) assign(n *ast.AssignStmt, fact wsState, p *Pass) {
	acquired := map[int]bool{}
	paired := len(n.Lhs) == len(n.Rhs)
	for i, rhs := range n.Rhs {
		if paired && (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) {
			if call := wsAcquireCall(rhs); call != nil {
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := a.p.ObjectOf(id); obj != nil && a.tracked[obj] != nil {
						fact[obj] = wsAcq
						acquired[i] = true
						continue
					}
				}
			}
		}
		a.expr(rhs, fact, p, true)
	}
	for i, lhs := range n.Lhs {
		if acquired[i] {
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := a.p.ObjectOf(id); obj != nil && a.tracked[obj] != nil && n.Tok == token.ASSIGN {
				delete(fact, obj) // overwritten with a non-pool value
			}
			continue
		}
		a.expr(lhs, fact, p, false)
	}
}

// expr walks an expression, reporting uses of released workspaces and
// recording escapes. escaping is true when the expression's value flows
// somewhere that may retain it (call argument, return, store, send).
func (a *wsFunc) expr(e ast.Expr, fact wsState, p *Pass, escaping bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		obj := a.p.ObjectOf(e)
		if obj == nil {
			return
		}
		site := a.tracked[obj]
		if site == nil {
			return
		}
		st := fact[obj]
		if st&wsEsc != 0 {
			return
		}
		if p != nil && st&wsRel != 0 {
			p.Reportf(e.Pos(), "workspace %s is used after ReleaseWorkspace; the pool may already have handed it to another goroutine", site.name)
		}
		if escaping {
			fact[obj] = st | wsEsc
		}
	case *ast.ParenExpr:
		a.expr(e.X, fact, p, escaping)
	case *ast.StarExpr:
		a.expr(e.X, fact, p, escaping)
	case *ast.UnaryExpr:
		a.expr(e.X, fact, p, escaping || e.Op == token.AND)
	case *ast.SelectorExpr:
		// Selecting a field or method copies a value out of the workspace;
		// the workspace itself does not escape.
		a.expr(e.X, fact, p, false)
	case *ast.CallExpr:
		if a.interpCall(e, fact, p) {
			return
		}
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.SelectorExpr:
			a.expr(fun.X, fact, p, false) // method receiver: a use, not an escape
		case *ast.Ident:
			// plain callee name carries no workspace
		default:
			a.expr(e.Fun, fact, p, false)
		}
		for _, arg := range e.Args {
			a.expr(arg, fact, p, true) // the callee may retain the pointer
		}
	case *ast.FuncLit:
		if a.callOnlyBinding(e) {
			// Every call of this literal is a visible call site; its capture
			// effects are applied there (interpCall), not at the definition.
			return
		}
		// Closure capture: obligations transfer to the closure.
		for obj := range a.referencedIn(e.Body) {
			if a.tracked[obj] != nil {
				st := fact[obj]
				if p != nil && st&wsRel != 0 && st&wsEsc == 0 {
					p.Reportf(e.Pos(), "closure captures workspace %s after ReleaseWorkspace", a.tracked[obj].name)
				}
				fact[obj] = st | wsEsc
			}
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			a.expr(el, fact, p, true)
		}
	case *ast.KeyValueExpr:
		a.expr(e.Key, fact, p, false)
		a.expr(e.Value, fact, p, escaping)
	case *ast.BinaryExpr:
		a.expr(e.X, fact, p, false)
		a.expr(e.Y, fact, p, false)
	case *ast.IndexExpr:
		a.expr(e.X, fact, p, escaping)
		a.expr(e.Index, fact, p, false)
	case *ast.SliceExpr:
		a.expr(e.X, fact, p, escaping)
	case *ast.TypeAssertExpr:
		a.expr(e.X, fact, p, escaping)
	default:
		// Conservative fallback: treat every mentioned workspace as a use.
		inspectShallow(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				a.expr(id, fact, p, false)
			}
			return true
		})
	}
}

// interpCall applies the resolved callee's summary at one synchronous call
// site: a parameter the callee always releases discharges the obligation
// here; a parameter it may release or retain escapes; a parameter it
// merely reads is a use. Calls through call-only closure bindings apply
// the literal's capture effects the same way. Returns false when no
// interprocedural fact is available (the caller falls back to the
// conservative walk).
func (a *wsFunc) interpCall(call *ast.CallExpr, fact wsState, p *Pass) bool {
	ip := a.p.ip
	if ip == nil || ip.graph == nil {
		return false
	}
	edge, ok := ip.graph.Sites[call]
	if !ok || edge.Kind != callgraph.KindCall || edge.Callee == "" {
		return false
	}
	var lit *ast.FuncLit
	if node := ip.graph.ByKey[edge.Callee]; node != nil && node.Lit != nil {
		lit = node.Lit
	}
	sum := ip.store.Get(edge.Callee)
	if lit == nil && sum == nil {
		return false
	}

	// The callee expression: receivers and function values are uses.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		a.expr(fun.X, fact, p, false)
	case *ast.Ident:
		// plain callee name carries no workspace
	default:
		a.expr(call.Fun, fact, p, false)
	}

	// Capture effects of a bound closure apply at its call sites.
	if lit != nil {
		for obj := range a.referencedIn(lit.Body) {
			if a.tracked[obj] == nil {
				continue
			}
			a.applyWsEffect(obj, ip.capEffect(lit, obj), fact, p, call.Pos())
		}
	}

	base := 0
	if sum != nil && sum.Recv {
		base = 1
	}
	for i, arg := range call.Args {
		id, isIdent := ast.Unparen(arg).(*ast.Ident)
		var obj types.Object
		if isIdent {
			obj = a.p.ObjectOf(id)
		}
		if obj == nil || a.tracked[obj] == nil {
			a.expr(arg, fact, p, true)
			continue
		}
		if sum == nil || base+i >= len(sum.Params) {
			a.expr(arg, fact, p, true)
			continue
		}
		ps := sum.Param(base + i)
		a.applyWsEffect(obj, objEffect{
			relAlways: ps.ReleasesAlways,
			relMay:    ps.ReleasesMay,
			escapes:   ps.Escapes,
		}, fact, p, arg.Pos())
	}
	return true
}

// applyWsEffect folds one callee-side effect on a tracked workspace into
// the caller's state.
func (a *wsFunc) applyWsEffect(obj types.Object, eff objEffect, fact wsState, p *Pass, pos token.Pos) {
	st := fact[obj]
	if st&wsEsc != 0 {
		return
	}
	switch {
	case eff.relAlways:
		if p != nil && st&wsRel != 0 {
			p.Reportf(pos, "workspace %s may already be released here; a double release poisons the pool", a.tracked[obj].name)
		}
		fact[obj] = (st | wsRel) &^ wsAcq
	case eff.escapes || eff.relMay:
		// A partial release is as bad as an escape for local reasoning:
		// the caller can no longer know whether it still owns the value.
		fact[obj] = st | wsEsc
	default:
		if p != nil && st&wsRel != 0 {
			p.Reportf(pos, "workspace %s is used after ReleaseWorkspace; the pool may already have handed it to another goroutine", a.tracked[obj].name)
		}
	}
}

// callOnlyBinding reports whether lit is bound to a variable whose every
// use is a call (so the literal in value position is not an escape).
func (a *wsFunc) callOnlyBinding(lit *ast.FuncLit) bool {
	ip := a.p.ip
	if ip == nil || ip.graph == nil {
		return false
	}
	for obj, l := range ip.graph.Bindings {
		if l == lit && ip.graph.CallOnly[obj] {
			return true
		}
	}
	return false
}

// deferSummaryFacts classifies one deferred call interprocedurally:
// rel holds tracked objects the deferred work always releases (folded into
// wsSite.defRel), esc holds objects it may retain or only partially
// release. ok is false when the call resolves to nothing — the caller
// falls back to the conservative escape walk.
func (a *wsFunc) deferSummaryFacts(call *ast.CallExpr) (rel, esc map[types.Object]bool, ok bool) {
	ip := a.p.ip
	if ip == nil || ip.graph == nil {
		return nil, nil, false
	}
	rel = map[types.Object]bool{}
	esc = map[types.Object]bool{}

	lit, _ := ast.Unparen(call.Fun).(*ast.FuncLit)
	var sum *cfg.Summary
	if e, found := ip.graph.Sites[call]; found && e.Callee != "" && e.Kind != callgraph.KindUnknown {
		if node := ip.graph.ByKey[e.Callee]; node != nil && node.Lit != nil {
			lit = node.Lit
		} else {
			sum = ip.store.Get(e.Callee)
		}
	}
	if lit == nil && sum == nil {
		return nil, nil, false
	}

	if lit != nil {
		for obj := range a.referencedIn(lit.Body) {
			if a.tracked[obj] == nil {
				continue
			}
			eff := ip.capEffect(lit, obj)
			switch {
			case eff.relAlways:
				rel[obj] = true
			case eff.escapes:
				esc[obj] = true
				// A may-release keeps the obligation alive: neither
				// discharged nor escaped, so the exit check still fires.
			}
		}
		for _, arg := range call.Args {
			for obj := range a.referenced(arg) {
				esc[obj] = true
			}
		}
		return rel, esc, true
	}

	base := 0
	if sum.Recv {
		base = 1
		if sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr); selOK {
			for obj := range a.referenced(sel.X) {
				if sum.Param(0).ReleasesAlways {
					rel[obj] = true
				} else if sum.Param(0).Escapes {
					esc[obj] = true
				}
			}
		}
	}
	for i, arg := range call.Args {
		id, isIdent := ast.Unparen(arg).(*ast.Ident)
		var obj types.Object
		if isIdent {
			obj = a.p.ObjectOf(id)
		}
		if obj == nil || a.tracked[obj] == nil {
			for o := range a.referenced(arg) {
				esc[o] = true
			}
			continue
		}
		ps := sum.Param(base + i)
		switch {
		case ps.ReleasesAlways:
			rel[obj] = true
		case ps.Escapes, base+i >= len(sum.Params):
			esc[obj] = true
		}
	}
	return rel, esc, true
}

// referenced returns the tracked objects mentioned anywhere under n,
// closure bodies included.
func (a *wsFunc) referenced(n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := a.p.ObjectOf(id); obj != nil && a.tracked[obj] != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func (a *wsFunc) referencedIn(body *ast.BlockStmt) map[types.Object]bool {
	return a.referenced(body)
}

// releaseTarget returns the tracked variable released by call
// (ReleaseWorkspace(v)), or nil.
func (a *wsFunc) releaseTarget(call *ast.CallExpr) types.Object {
	id := calleeIdent(call)
	if id == nil || id.Name != "ReleaseWorkspace" || len(call.Args) != 1 {
		return nil
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return a.p.ObjectOf(arg)
}

// wsAcquireCall returns e as an AcquireWorkspace call, or nil.
func wsAcquireCall(e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id := calleeIdent(call)
	if id == nil || id.Name != "AcquireWorkspace" {
		return nil
	}
	return call
}

// wsCallQual returns the package qualifier the acquire call was spelled
// with ("route." for route.AcquireWorkspace, "" for a same-package call),
// so an inserted release matches the file's imports.
func wsCallQual(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			return x.Name + "."
		}
	}
	return ""
}

func wsCopyState(f wsState) wsState {
	out := make(wsState, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func wsJoinState(a, b wsState) wsState {
	out := wsCopyState(a)
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func wsEqualState(a, b wsState) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}
