package lint

import (
	"go/ast"
	"go/types"
)

// This file holds the shared machinery the dataflow-aware analyzers
// (wsaliasing, snapshotread, nondeterm) build on top of internal/lint/cfg:
// enumerating analyzable function bodies and walking nodes without
// crossing into closures, whose control flow belongs to their own graph.

// A flowFunc is one analyzable function body: a declared function, or a
// closure nested inside one (analyzed separately — the cfg builder treats
// FuncLits as opaque values).
type flowFunc struct {
	// decl is the enclosing function declaration (the closure's host when
	// lit is non-nil); directive lookups (//pacor:hot) key off it.
	decl *ast.FuncDecl
	// lit is the closure, nil for the declaration itself.
	lit *ast.FuncLit
	// typ and body belong to lit when non-nil, else to decl.
	typ  *ast.FuncType
	body *ast.BlockStmt
	// name labels the function in messages.
	name string
}

// flowFuncs enumerates every function body in file, closures included,
// outermost first.
func flowFuncs(file *ast.File) []flowFunc {
	var out []flowFunc
	for _, d := range file.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, flowFunc{decl: fn, typ: fn.Type, body: fn.Body, name: fn.Name.Name})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if l, ok := n.(*ast.FuncLit); ok {
				out = append(out, flowFunc{decl: fn, lit: l, typ: l.Type, body: l.Body, name: fn.Name.Name + " closure"})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks n in preorder like ast.Inspect but does not descend
// into function literals: f still sees the *ast.FuncLit node itself (so a
// caller can treat the closure as a value), never its body.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			f(m)
			return false
		}
		return f(m)
	})
}

// namedTypeName unwraps pointers from t and returns the name of the
// resulting named type ("" when t is unnamed or nil). The dataflow
// analyzers match the repo's own types (Workspace, ObsMap) by name so the
// fixture corpus can declare self-contained stand-ins.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// calleeIdent returns the rightmost identifier of call's callee: f for
// f(...), m for x.m(...), nil for anything else.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}
