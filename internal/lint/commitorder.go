package lint

import (
	"go/ast"
)

// AnalyzerCommitOrder enforces the scheduler's concurrency contract inside
// spawn-graph worker roles (functions that run exclusively on spawned
// goroutines, in the hot packages or marked //pacor:hot):
//
//   - shared obstacle state may only be mutated through the commit path:
//     an ObsMap mutator on a receiver that is not body-local requires a
//     must-held lock at the call site, or an enclosing function marked
//     //pacor:locked ("my callers hold the lock" — the scheduler's
//     advance());
//   - a call to a //pacor:locked function itself requires a must-held
//     lock at the call site;
//   - obstacle reads need a prior visit stamp on every path, the
//     snapshotread rule tightened from "workspace in scope" to "running
//     on a worker role" (bodies with a workspace in scope are already
//     covered by snapshotread and are not re-reported here).
//
// Functions the spawn graph cannot place (role unknown — e.g. task
// closures stored in a struct and invoked by another package) are
// skipped: the scheduler contract only binds code proven to run on
// workers.
var AnalyzerCommitOrder = &Analyzer{
	Name: "commitorder",
	Doc:  "worker-role goroutines must mutate shared obstacle state under a lock (commit path) and stamp before reading",
	Run:  runCommitOrder,
}

// obsMutators are the ObsMap methods that change observable state.
var obsMutators = map[string]bool{
	"Set": true, "SetPath": true, "SetRect": true, "CopyFrom": true,
	"StartJournal": true, "StopJournal": true, "RewindJournal": true,
}

func runCommitOrder(p *Pass) {
	if p.ip == nil {
		return
	}
	inHotPkg := pathHasSuffix(p.PkgPath, hotPackages...)

	// //pacor:locked declarations of this package, by callgraph key, for
	// the call-site rule.
	p.ip.initRoles()
	lockedKey := map[string]bool{}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && p.LockedFunc(fd) {
				if key := p.ip.declKey[fd]; key != "" {
					lockedKey[key] = true
				}
			}
		}
	}

	for _, file := range p.Files {
		for _, fn := range flowFuncs(file) {
			if fn.body == nil {
				continue
			}
			if !inHotPkg && !p.HotFunc(fn.decl) {
				continue
			}
			if !p.ip.funcRole(fn).SpawnOnly() {
				continue
			}
			locked := p.LockedFunc(fn.decl)
			if !locked {
				checkCommitWrites(p, fn, lockedKey)
			}
			if !snapWsInScope(p, fn) {
				checkSnapshotFunc(p, fn)
			}
		}
	}
}

// checkCommitWrites flags unlocked mutations of shared obstacle state and
// unlocked calls into //pacor:locked helpers inside one worker-role body.
func checkCommitWrites(p *Pass, fn flowFunc, lockedKey map[string]bool) {
	lockWalk(p, fn.body, func(n ast.Node, held lockset) {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if len(held) > 0 {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
				obsMutators[sel.Sel.Name] && namedTypeName(p.TypeOf(sel.X)) == "ObsMap" &&
				sharedObsRecv(p, fn, sel.X) {
				p.Reportf(call.Pos(), "worker-role %s mutates shared obstacle state (ObsMap.%s) without holding a lock; commit through the scheduler or mark the helper //pacor:locked", fn.name, sel.Sel.Name)
				return true
			}
			if key := p.ip.calleeKey(call); key != "" && lockedKey[key] {
				p.Reportf(call.Pos(), "worker-role %s calls //pacor:locked %s without holding a lock", fn.name, key[lastSlash(key)+1:])
			}
			return true
		})
	})
}

// sharedObsRecv reports whether the receiver expression denotes obstacle
// state shared across goroutines. Body-local variables and direct
// parameters are per-goroutine (the scheduler hands each worker its own
// scratch map); anything reached through a field path rooted outside the
// body — receiver fields, captures, package state — is shared.
func sharedObsRecv(p *Pass, fn flowFunc, e ast.Expr) bool {
	bodyLocal := func(id *ast.Ident) bool {
		obj := p.ObjectOf(id)
		if obj == nil {
			return false
		}
		return fn.body.Pos() <= obj.Pos() && obj.Pos() < fn.body.End()
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if bodyLocal(e) || isParamIdent(p, fn, e) {
			return false
		}
		return true
	case *ast.SelectorExpr:
		root := e.X
		for {
			switch r := ast.Unparen(root).(type) {
			case *ast.SelectorExpr:
				root = r.X
				continue
			case *ast.Ident:
				return !bodyLocal(r)
			}
			return true
		}
	}
	return true
}

// isParamIdent reports whether id resolves to a parameter (or receiver)
// of fn itself.
func isParamIdent(p *Pass, fn flowFunc, id *ast.Ident) bool {
	obj := p.ObjectOf(id)
	if obj == nil {
		return false
	}
	var lo, hi int
	if fn.lit != nil {
		lo, hi = int(fn.lit.Pos()), int(fn.lit.Body.Pos())
	} else if fn.decl != nil && fn.decl.Body != nil {
		lo, hi = int(fn.decl.Pos()), int(fn.decl.Body.Pos())
	} else {
		return false
	}
	return lo <= int(obj.Pos()) && int(obj.Pos()) < hi
}
