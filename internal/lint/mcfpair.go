package lint

import (
	"go/ast"

	"repro/internal/lint/cfg"
)

// AnalyzerMcfPair enforces the min-cost-flow arena contract (see
// internal/mcf): SetCost may only re-price a flow-free graph — fresh,
// Reset, or Committed — because it rewrites the residual arc pair
// wholesale; and DecomposeUnitPaths reads unit flow, so calling it on a
// graph with no flow since the last Commit/Reset reads nothing. The
// analysis tracks, per access path of a Graph-named value (an identifier
// or a single-root field chain like h.graph), two facts over the CFG:
// "may carry flow from a solve in this body" (union join) and "definitely
// flow-free" (intersection join). A call the analyzer does not recognize
// that mentions the graph resets both to unknown, so helpers that solve
// or commit behind a function boundary cause silence, never false
// positives.
var AnalyzerMcfPair = &Analyzer{
	Name: "mcfpair",
	Doc:  "mcf.Graph arena pairing: SetCost only on a flow-free graph, DecomposeUnitPaths only after a solve",
	Run:  runMcfPair,
}

func runMcfPair(p *Pass) {
	for _, file := range p.Files {
		for _, fn := range flowFuncs(file) {
			if fn.body != nil {
				checkMcfBody(p, fn.body)
			}
		}
	}
}

// mcfFact tracks up to 64 graph access paths: solved bits are may-facts
// ("a MinCostFlow in this body may have left flow here"), free bits are
// must-facts ("flow-free on every path").
type mcfFact struct{ solved, free uint64 }

func checkMcfBody(p *Pass, body *ast.BlockStmt) {
	// Collect the tracked access paths: receivers of Graph-named method
	// calls and first arguments of Solver.MinCostFlow, keyed canonically.
	bits := map[string]uint64{}
	nextBit := uint64(1)
	keyOf := func(e ast.Expr) uint64 {
		if namedTypeName(p.TypeOf(e)) != "Graph" {
			return 0
		}
		k := lockKeyOf(p.Info, e)
		if k == "" {
			return 0
		}
		if b, ok := bits[k]; ok {
			return b
		}
		if nextBit == 0 {
			return 0 // more than 64 graphs in one body; untracked
		}
		b := nextBit
		bits[k] = b
		nextBit <<= 1
		return b
	}
	interesting := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "MinCostFlow", "Commit", "Reset", "SetCost", "DecomposeUnitPaths":
				if keyOf(sel.X) != 0 {
					interesting = true
				}
				if sel.Sel.Name == "MinCostFlow" && len(call.Args) >= 1 && keyOf(call.Args[0]) != 0 {
					interesting = true // Solver.MinCostFlow(g, ...)
				}
			}
		}
		return true
	})
	if !interesting {
		return
	}

	step := func(n ast.Node, fact *mcfFact, report bool) {
		inspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for i, lhs := range m.Lhs {
					b := uint64(0)
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if k := lockKeyOf(p.Info, id); k != "" {
							b = bits[k]
						}
					} else if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						if k := lockKeyOf(p.Info, sel); k != "" {
							b = bits[k]
						}
					}
					if b == 0 {
						continue
					}
					fact.solved &^= b
					fact.free &^= b
					if i < len(m.Rhs) && isFreshGraph(p, m.Rhs[i]) {
						fact.free |= b
					}
				}
			case *ast.CallExpr:
				mcfCall(p, m, fact, bits, report)
				return true
			}
			return true
		})
	}

	g := cfg.New(body)
	facts := cfg.Solve(g, cfg.Problem[mcfFact]{
		// Entry: nothing known — a parameter or field may arrive in any
		// state, so neither a SetCost nor a Decompose at the top is
		// reportable.
		Entry: mcfFact{},
		Transfer: func(b *cfg.Block, in mcfFact) mcfFact {
			f := in
			for _, nd := range b.Nodes {
				step(nd, &f, false)
			}
			return f
		},
		Join: func(a, b mcfFact) mcfFact {
			return mcfFact{solved: a.solved | b.solved, free: a.free & b.free}
		},
		Equal: func(a, b mcfFact) bool { return a == b },
	})
	for _, b := range g.RPO() {
		f := facts[b.Index]
		for _, nd := range b.Nodes {
			step(nd, &f, true)
		}
	}
}

// mcfCall applies one call's effect on the arena state and, in the
// reporting replay, checks the pairing rules.
func mcfCall(p *Pass, call *ast.CallExpr, fact *mcfFact, bits map[string]uint64, report bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// An unknown call mentioning a tracked graph could solve, commit,
		// or reset it: drop to unknown.
		clearMentioned(p, call, fact, bits)
		return
	}
	bitOf := func(e ast.Expr) uint64 {
		if namedTypeName(p.TypeOf(e)) != "Graph" {
			return 0
		}
		if k := lockKeyOf(p.Info, e); k != "" {
			return bits[k]
		}
		return 0
	}
	recv := bitOf(sel.X)
	switch sel.Sel.Name {
	case "MinCostFlow":
		b := recv
		if b == 0 && len(call.Args) >= 1 {
			b = bitOf(call.Args[0]) // Solver.MinCostFlow(g, src, dst, maxFlow)
		}
		if b != 0 {
			fact.solved |= b
			fact.free &^= b
			return
		}
	case "Commit", "Reset":
		if recv != 0 {
			fact.solved &^= recv
			fact.free |= recv
			return
		}
	case "SetCost":
		if recv != 0 {
			if report && fact.solved&recv != 0 {
				p.Reportf(call.Pos(), "SetCost re-prices a graph that may still carry flow from a MinCostFlow on this path; Commit or Reset first (mcf arena contract)")
			}
			return
		}
	case "DecomposeUnitPaths":
		if recv != 0 {
			if report && fact.free&recv != 0 {
				p.Reportf(call.Pos(), "DecomposeUnitPaths on a flow-free graph (no MinCostFlow since the last Commit/Reset on every path here) decomposes nothing")
			}
			return
		}
	}
	clearMentioned(p, call, fact, bits)
}

// clearMentioned resets every tracked graph mentioned in call to unknown.
func clearMentioned(p *Pass, call *ast.CallExpr, fact *mcfFact, bits map[string]uint64) {
	ast.Inspect(call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if namedTypeName(p.TypeOf(e)) != "Graph" {
			return true
		}
		if k := lockKeyOf(p.Info, e); k != "" {
			if b := bits[k]; b != 0 {
				fact.solved &^= b
				fact.free &^= b
			}
		}
		return true
	})
}

// isFreshGraph reports whether e constructs a flow-free graph: NewGraph(...)
// or a Graph composite literal (possibly addressed).
func isFreshGraph(p *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id := calleeIdent(e); id != nil && id.Name == "NewGraph" {
			return namedTypeName(p.TypeOf(e)) == "Graph"
		}
	case *ast.UnaryExpr:
		return isFreshGraph(p, e.X)
	case *ast.CompositeLit:
		return namedTypeName(p.TypeOf(e)) == "Graph"
	}
	return false
}
