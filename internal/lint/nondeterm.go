package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/cfg"
)

// AnalyzerNonDeterm hunts sources of run-to-run divergence in library
// code — the repo's outputs (Table 2, golden sweeps, the parallel
// scheduler's commit stream) must be byte-identical across runs and
// worker counts, so anything that injects entropy into a routing decision
// is a bug even when each individual run looks correct:
//
//   - math/rand package-level functions draw from the process-global,
//     randomly-seeded source (rand.New(rand.NewSource(seed)) is the
//     deterministic idiom and stays allowed);
//   - a select with two or more communication cases commits to a
//     pseudo-randomly chosen ready case;
//   - a channel send inside a map range publishes Go's randomized map
//     iteration order to other goroutines (this check moved here from
//     maporder: cross-goroutine leaks are nondeterminism, not just
//     ordering);
//   - wall-clock values (time.Now/time.Since) that flow into a branch or
//     loop condition make control flow depend on machine load. Storing or
//     returning durations is fine — only conditions are flagged, tracked
//     by a taint analysis over the control-flow graph.
var AnalyzerNonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "library code must not let random sources, racing selects, map order, or wall-clock time steer routing results",
	Run:  runNonDeterm,
}

func runNonDeterm(p *Pass) {
	if !libPackage(p.PkgPath) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkGlobalRand(p, n)
			case *ast.SelectStmt:
				checkSelect(p, n)
			case *ast.RangeStmt:
				checkMapRangeSend(p, n)
			}
			return true
		})
		for _, fn := range flowFuncs(file) {
			checkClockTaint(p, fn)
		}
	}
}

// checkGlobalRand flags math/rand package-level calls other than the
// constructors of explicitly-seeded sources.
func checkGlobalRand(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if !isPkgIdent(p, id, "math/rand") && !isPkgIdent(p, id, "math/rand/v2") {
		return
	}
	if sel.Sel.Name == "New" || sel.Sel.Name == "NewSource" {
		return // building an explicitly-seeded source: the deterministic idiom
	}
	p.Reportf(call.Pos(), "%s.%s draws from the process-global random source; thread a rand.New(rand.NewSource(seed)) through instead", id.Name, sel.Sel.Name)
}

// checkSelect flags selects that can race: with two or more communication
// cases simultaneously ready, the runtime commits to one pseudo-randomly.
func checkSelect(p *Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		p.Reportf(sel.Pos(), "select with %d communication cases commits to a nondeterministically chosen ready case; order the communications deterministically", comm)
	}
}

// checkMapRangeSend flags channel sends inside map-range bodies: the
// receiving goroutine observes Go's randomized iteration order.
func checkMapRangeSend(p *Pass, rng *ast.RangeStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	inspectShallow(rng.Body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			p.Reportf(send.Pos(), "channel send inside map range leaks iteration order across goroutines; collect into a slice and sort first")
		}
		return true
	})
}

// clockFact is the set of variables holding wall-clock-derived values.
type clockFact map[types.Object]bool

// checkClockTaint runs the wall-clock taint analysis over one body:
// time.Now/time.Since results propagate through assignments, and a
// tainted value appearing in a control condition is flagged.
func checkClockTaint(p *Pass, fn flowFunc) {
	g := cfg.New(fn.body)
	facts := cfg.Solve(g, cfg.Problem[clockFact]{
		Entry: clockFact{},
		Transfer: func(b *cfg.Block, in clockFact) clockFact {
			out := make(clockFact, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				clockTransferNode(p, n, out)
			}
			return out
		},
		Join: func(a, b clockFact) clockFact {
			u := make(clockFact, len(a)+len(b))
			for k := range a {
				u[k] = true
			}
			for k := range b {
				u[k] = true
			}
			return u
		},
		Equal: func(a, b clockFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
	for _, b := range g.RPO() {
		fact := make(clockFact, len(facts[b.Index]))
		for k := range facts[b.Index] {
			fact[k] = true
		}
		for _, n := range b.Nodes {
			if cond, ok := n.(ast.Expr); ok {
				if clockTouched(p, cond, fact) {
					p.Reportf(cond.Pos(), "wall-clock time steers control flow here; a load-dependent branch makes routing output differ run to run")
				}
				continue
			}
			clockTransferNode(p, n, fact)
		}
	}
}

// clockTransferNode propagates taint through one straight-line node:
// assignments and declarations whose right-hand side touches the clock
// taint their left-hand identifiers; plain reassignment clears them.
func clockTransferNode(p *Pass, n ast.Node, fact clockFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		paired := len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.ObjectOf(id)
			if obj == nil {
				continue
			}
			var tainted bool
			if paired {
				tainted = clockTouched(p, n.Rhs[i], fact)
			} else {
				for _, rhs := range n.Rhs {
					tainted = tainted || clockTouched(p, rhs, fact)
				}
			}
			if tainted {
				fact[obj] = true
			} else if paired {
				delete(fact, obj)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := p.ObjectOf(name)
				if obj == nil {
					continue
				}
				tainted := false
				if len(vs.Values) == len(vs.Names) {
					tainted = clockTouched(p, vs.Values[i], fact)
				} else {
					for _, v := range vs.Values {
						tainted = tainted || clockTouched(p, v, fact)
					}
				}
				if tainted {
					fact[obj] = true
				}
			}
		}
	}
}

// clockTouched reports whether e mentions a wall-clock source call or a
// tainted variable.
func clockTouched(p *Pass, e ast.Expr, fact clockFact) bool {
	touched := false
	inspectShallow(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isClockCall(p, n) {
				touched = true
			}
		case *ast.Ident:
			if obj := p.ObjectOf(n); obj != nil && fact[obj] {
				touched = true
			}
		}
		return !touched
	})
	return touched
}

// isClockCall reports whether call is time.Now or time.Since.
func isClockCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isPkgIdent(p, id, "time") {
		return false
	}
	return sel.Sel.Name == "Now" || sel.Sel.Name == "Since"
}
