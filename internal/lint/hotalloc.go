package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc guards the zero-allocation invariant on the routing hot
// path: functions in the hot packages (internal/route, internal/grid) and
// any function marked //pacor:hot must not allocate per call. It flags
// make, new, append growth, pointer composite literals, map/slice
// composite literals, and container/heap usage (the boxed heap the
// workspace refactor removed). Constructor-shaped functions (New*, init)
// are exempt: one-time construction is how the reusable buffers come to
// exist in the first place. Deliberate amortized growth is suppressed at
// the site with a justified //pacor:allow hotalloc.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no per-call allocation (make/new/append/composite literals/container-heap) in hot-path functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	hotPkg := pathHasSuffix(p.PkgPath, hotPackages...)
	for _, file := range p.Files {
		// container/heap has no place in a hot package at all: the inline
		// generation-stamped heaps exist precisely to avoid its interface
		// boxing.
		if hotPkg {
			for _, imp := range file.Imports {
				if imp.Path.Value == `"container/heap"` {
					p.Reportf(imp.Pos(), "container/heap boxes every node; use the workspace's inline heap")
				}
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !hotPkg && !p.HotFunc(fn) {
				continue
			}
			if isConstructor(fn) && !p.HotFunc(fn) {
				continue
			}
			checkAllocs(p, fn)
		}
	}
}

// isConstructor reports whether fn is construction-time code exempt from
// the allocation rule.
func isConstructor(fn *ast.FuncDecl) bool {
	return strings.HasPrefix(fn.Name.Name, "New") || fn.Name.Name == "init"
}

// checkAllocs reports allocation sites inside one hot function.
func checkAllocs(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are checked as part of the enclosing function: they
			// run on the same hot path.
			return true
		case *ast.GoStmt:
			// Spawning a goroutine from a closure allocates the capture (and
			// the g stack) per call. Worker pools amortize this over a batch
			// of work and say so with a justified //pacor:allow.
			if _, ok := n.Call.Fun.(*ast.FuncLit); ok {
				p.Reportf(n.Pos(), "goroutine closure in hot function %s allocates its capture per spawn", fn.Name.Name)
			}
		case *ast.CallExpr:
			switch {
			case isBuiltin(p, n.Fun, "make"):
				p.Reportf(n.Pos(), "make in hot function %s allocates per call; reuse a workspace buffer", fn.Name.Name)
			case isBuiltin(p, n.Fun, "new"):
				p.Reportf(n.Pos(), "new in hot function %s allocates per call; reuse a workspace buffer", fn.Name.Name)
			case isBuiltin(p, n.Fun, "append"):
				p.Reportf(n.Pos(), "append in hot function %s may grow its backing array; preallocate capacity", fn.Name.Name)
			case isPkgCall(p, n, "container/heap"):
				p.Reportf(n.Pos(), "container/heap call in hot function %s boxes its argument", fn.Name.Name)
			}
		case *ast.UnaryExpr:
			// &T{...} escapes-by-construction in most hot-path uses.
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "pointer composite literal in hot function %s allocates", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			t := p.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				p.Reportf(n.Pos(), "%s composite literal in hot function %s allocates", kindName(t), fn.Name.Name)
			}
		}
		return true
	})
}

// kindName names a slice/map type for the finding message.
func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}

// isPkgCall reports whether call's function is a selector on the package
// imported from pkgPath (heap.Push, heap.Pop, ...).
func isPkgCall(p *Pass, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && isPkgIdent(p, id, pkgPath)
}
