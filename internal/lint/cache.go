package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
)

// This file implements the driver's content-addressed fact cache. One
// entry per package, keyed by a hash of everything the package's analysis
// can observe: the cache format version, the toolchain, the analyzer
// registry, the package's own source bytes, and the summary hash of every
// module dependency. The last part gives early cutoff — editing a comment
// in a leaf package changes the leaf's key (it is re-analyzed) but not its
// summaries, so every dependent still hits.

// cacheVersion invalidates all entries when the analysis format changes.
const cacheVersion = "pacorvet-fact-cache-v2"

// cacheEntry is the persisted analysis result of one package.
type cacheEntry struct {
	// Path is the package import path; guards hash-filename collisions.
	Path string
	// Key is the content hash the entry was computed under.
	Key string
	// SummaryHash is the hash of Summaries, folded into dependents' keys.
	SummaryHash string
	// Summaries is the cfg.EncodePackage blob of the package's function
	// summaries.
	Summaries json.RawMessage
	// Findings are the package's surviving findings (module-relative
	// paths); meaningful only when Linted.
	Findings []Finding
	// Linted records whether the package was a lint target when the entry
	// was written. A dependency-only entry can satisfy a dependent's
	// summary needs but not a target's finding needs.
	Linted bool
}

// factCache is an on-disk store of cacheEntry files.
type factCache struct {
	dir string
}

// openFactCache creates dir if needed and returns the cache.
func openFactCache(dir string) (*factCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &factCache{dir: dir}, nil
}

// entryFile maps an import path to its cache filename.
func (c *factCache) entryFile(importPath string) string {
	h := sha256.Sum256([]byte(importPath))
	return filepath.Join(c.dir, hex.EncodeToString(h[:])[:24]+".json")
}

// load returns the entry for importPath, or nil when absent or
// unreadable (a corrupt entry is just a miss).
func (c *factCache) load(importPath string) *cacheEntry {
	data, err := os.ReadFile(c.entryFile(importPath))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Path != importPath {
		return nil
	}
	return &e
}

// save persists the entry for importPath.
func (c *factCache) save(importPath string, e *cacheEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return os.WriteFile(c.entryFile(importPath), data, 0o644)
}

// hashHex returns the hex SHA-256 of data.
func hashHex(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// cacheKey computes mp's content-addressed key. Module dependencies must
// already carry their summary hash (the caller processes packages in
// dependency order).
func cacheKey(mp *modPkg, byPath map[string]*modPkg, analyzers []*Analyzer) string {
	var b bytes.Buffer
	b.WriteString(cacheVersion)
	b.WriteByte('\n')
	b.WriteString(runtime.Version())
	b.WriteByte('\n')
	for _, a := range analyzers {
		b.WriteString(a.Name)
		b.WriteByte(' ')
	}
	b.WriteByte('\n')
	b.WriteString(mp.lp.ImportPath)
	b.WriteByte('\n')
	for _, f := range mp.lp.GoFiles {
		b.WriteString(f)
		b.WriteByte('\n')
		b.WriteString(hashHex(mp.srcBytes[filepath.Join(mp.lp.Dir, f)]))
		b.WriteByte('\n')
	}
	for _, d := range mp.lp.Deps {
		dep := byPath[d]
		if dep == nil {
			continue // standard library: covered by the toolchain version
		}
		b.WriteString(d)
		b.WriteByte('=')
		b.WriteString(dep.sumHash)
		b.WriteByte('\n')
	}
	return hashHex(b.Bytes())
}
