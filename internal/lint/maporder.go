package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMapOrder guards the determinism invariant: Go map iteration
// order is random, so a `for k := range m` body must not let that order
// leak into anything ordered — appending to a slice that is never sorted
// afterwards, or writing output. Every such leak is a run-to-run diff in
// reports, golden files, or the parallel sweep. (Channel sends inside
// map ranges, which leak the order across goroutines, are nondeterm's
// territory.)
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map-range bodies must not leak iteration order into slices (without a later sort) or writers",
	Run:  runMapOrder,
}

// Output-shaped call names: reaching one of these from a map-range body
// emits in iteration order.
var writeFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true,
}

// Sort-shaped call names: passing the collected slice to one of these
// after the loop restores determinism.
var sortFuncs = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Strings": true, "Ints": true, "Float64s": true,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(p, fn.Body)
		}
	}
}

// checkMapRanges walks one function body looking for ranges over maps.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		inspectMapRangeBody(p, body, rng)
		return true
	})
}

// inspectMapRangeBody reports order leaks out of one map-range statement.
// fnBody is the enclosing function body, used to look for a sort that
// re-establishes order after the loop.
func inspectMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Idents appended to inside the loop but declared outside it.
	appended := map[types.Object]*ast.Ident{}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, isOutput := outputCall(p, n); isOutput {
				p.Reportf(n.Pos(), "%s inside map range emits in iteration order; collect and sort first", name)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(p, call.Fun, "append") || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.ObjectOf(id)
				if obj == nil || obj.Pos() == token.NoPos {
					continue
				}
				// Only slices declared outside the loop can leak.
				if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
					appended[obj] = id
				}
			}
		}
		return true
	})

	for obj, id := range appended {
		if !sortedAfter(p, fnBody, rng, obj) {
			p.Reportf(id.Pos(), "append to %q inside map range without a later sort leaks iteration order", id.Name)
		}
	}
}

// outputCall reports whether call is an output-shaped call (fmt.Printf,
// w.Write, enc.Encode, ...) and returns a printable name for it.
func outputCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !writeFuncs[sel.Sel.Name] {
		return "", false
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		return base.Name + "." + sel.Sel.Name, true
	}
	return sel.Sel.Name, true
}

// sortedAfter reports whether obj is passed to a sort call after the
// range statement ends, anywhere in the enclosing function body.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.ObjectOf(id) == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// isBuiltin reports whether fun denotes the named predeclared function.
func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.ObjectOf(id)
	if obj == nil {
		// Untyped fallback: trust the spelling.
		return true
	}
	_, isB := obj.(*types.Builtin)
	return isB
}
