package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// This file computes function-effect summaries (cfg.Summary) bottom-up
// over the package call graph: Tarjan SCCs are processed callee-first, and
// each SCC iterates to a fixed point so (mutual) recursion converges.
// Must-facts start optimistic (true) and can only decay; may-facts start
// false and can only grow; NoReturn starts true and can only decay — one
// global monotone direction, so the iteration terminates.
//
// The same machinery doubles as the analyzers' call-site resolver: given a
// call expression, ipResolver finds the callee's summary, and given a
// function literal bound to a local variable it computes the literal's
// effect on a captured object (capEffect), which is how "the cleanup
// closure releases the workspace" stops being an escape.

// hardNoReturn are well-known functions that never return normally.
var hardNoReturn = map[string]bool{
	"builtin.panic":  true,
	"os.Exit":        true,
	"runtime.Goexit": true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
}

// summarizePackage builds cp's call graph, computes a summary for every
// function body (closures included), publishes them in store, and returns
// the package's summary map. The graph is retained on cp for the
// analyzers' resolver.
func summarizePackage(cp *checkedPackage, store *cfg.Store) map[string]*cfg.Summary {
	g := callgraph.Build(cp.path, cp.files, cp.info)
	cp.graph = g

	hot := map[*ast.FuncDecl]bool{}
	for _, f := range cp.files {
		for fn := range hotFuncs(cp.fset, f) {
			hot[fn] = true
		}
	}
	inHotPkg := pathHasSuffix(cp.path, hotPackages...)
	pseudo := &Pass{Fset: cp.fset, Info: cp.info}
	checked := func(n *callgraph.Node) bool {
		decl := enclosingDecl(n)
		if decl == nil {
			return false
		}
		if !inHotPkg && !hot[decl] {
			return false
		}
		fn := flowFunc{decl: decl, lit: n.Lit, typ: decl.Type, body: n.Body()}
		if n.Lit != nil {
			fn.typ = n.Lit.Type
		}
		return snapWsInScope(pseudo, fn)
	}

	r := &ipResolver{info: cp.info, graph: g, store: store, active: map[*ast.FuncLit]bool{}}
	for _, scc := range g.SCCs() {
		for _, n := range scc {
			store.Put(n.Key, optimisticSummary(n))
		}
		for iter := 0; ; iter++ {
			changed := false
			for _, n := range scc {
				ns := r.summarizeNode(n, checked(n))
				if !ns.Equal(store.Get(n.Key)) {
					store.Put(n.Key, ns)
					changed = true
				}
			}
			if !changed {
				break
			}
			if iter >= 32 {
				// Safety valve: should be unreachable given monotonicity,
				// but a bug here must degrade to "conservative", never
				// spin or over-claim.
				for _, n := range scc {
					store.Put(n.Key, conservativeSummary(n))
				}
				break
			}
		}
	}

	out := map[string]*cfg.Summary{}
	for _, n := range g.Nodes {
		out[n.Key] = store.Get(n.Key)
	}
	return out
}

// enclosingDecl walks a node's parent chain to the declaration hosting it.
func enclosingDecl(n *callgraph.Node) *ast.FuncDecl {
	for n != nil {
		if n.Decl != nil {
			return n.Decl
		}
		n = n.Parent
	}
	return nil
}

// nodeParamObjs returns the receiver (for methods) followed by the
// parameter objects of n, in declaration order; nil entries stand for
// unnamed parameters.
func nodeParamObjs(n *callgraph.Node, info *types.Info) (objs []types.Object, hasRecv bool) {
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			objs = append(objs, nil)
			return
		}
		for _, name := range f.Names {
			var obj types.Object
			if info != nil {
				obj = info.Defs[name]
			}
			objs = append(objs, obj)
		}
	}
	var typ *ast.FuncType
	if n.Decl != nil {
		typ = n.Decl.Type
		if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
			hasRecv = true
			addField(n.Decl.Recv.List[0])
		}
	} else {
		typ = n.Lit.Type
	}
	if typ.Params != nil {
		for _, f := range typ.Params.List {
			addField(f)
		}
	}
	return objs, hasRecv
}

// optimisticSummary is the SCC iteration's starting point: must-facts
// true, may-facts false.
func optimisticSummary(n *callgraph.Node) *cfg.Summary {
	objs, hasRecv := nodeParamObjs(n, nil)
	sum := &cfg.Summary{Recv: hasRecv, StampsAlways: true, NoReturn: true}
	for range objs {
		sum.Params = append(sum.Params, cfg.ParamSummary{ReleasesAlways: true, StopsJournalAlways: true})
	}
	return sum
}

// conservativeSummary claims nothing and escapes everything — the safe
// bailout value.
func conservativeSummary(n *callgraph.Node) *cfg.Summary {
	objs, hasRecv := nodeParamObjs(n, nil)
	sum := &cfg.Summary{Recv: hasRecv, ReadsUnstamped: true}
	for range objs {
		sum.Params = append(sum.Params, cfg.ParamSummary{Escapes: true})
	}
	return sum
}

// summarizeNode computes one node's summary from its body against the
// store's current view of every callee.
func (r *ipResolver) summarizeNode(n *callgraph.Node, checked bool) *cfg.Summary {
	objs, hasRecv := nodeParamObjs(n, r.info)
	res := r.bodyEffects(n.Body(), objs)
	sum := &cfg.Summary{Recv: hasRecv, Params: make([]cfg.ParamSummary, len(objs))}
	for i, eff := range res.effs {
		sum.Params[i] = cfg.ParamSummary{
			ReleasesAlways:     eff.relAlways,
			ReleasesMay:        eff.relMay,
			Escapes:            eff.escapes,
			StopsJournalAlways: eff.stopAlways,
			StopsJournalMay:    eff.stopMay,
			OpensJournal:       eff.opens,
		}
	}
	sum.StampsAlways = res.stampsAlways
	sum.ReadsUnstamped = res.readsUnstamped && !isObsMapMethod(n)
	sum.Checked = checked
	sum.NoReturn = res.noReturn
	r.concEffects(n, objs, sum)
	return sum
}

// isObsMapMethod reports whether n is a method of the obstacle map itself:
// ObsMap's internals read their own bits by design, and those reads are
// the protocol's implementation, not violations to propagate to callers.
func isObsMapMethod(n *callgraph.Node) bool {
	if n.Decl == nil || n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return false
	}
	return recvAstTypeName(n.Decl.Recv.List[0].Type) == "ObsMap"
}

func recvAstTypeName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return recvAstTypeName(e.X)
	case *ast.Ident:
		return e.Name
	}
	return ""
}

// ipResolver resolves call sites against the summary store and computes
// body/capture effects. One resolver serves both the summary fixpoint and
// the analyzers of a package.
type ipResolver struct {
	info  *types.Info
	graph *callgraph.Graph
	store *cfg.Store
	// active guards capEffect against cycles through self-referential
	// closure bindings.
	active map[*ast.FuncLit]bool
	// roles caches the spawn graph's role inference (computed on first
	// use); declKey indexes the graph's declaration nodes by syntax.
	roles   map[string]callgraph.Role
	declKey map[*ast.FuncDecl]string
}

// initRoles computes the spawn-graph roles once per resolver.
func (r *ipResolver) initRoles() {
	if r == nil || r.graph == nil || r.roles != nil {
		return
	}
	r.roles = r.graph.SpawnRoles()
	r.declKey = map[*ast.FuncDecl]string{}
	for _, n := range r.graph.Nodes {
		if n.Decl != nil {
			r.declKey[n.Decl] = n.Key
		}
	}
}

// funcRole returns fn's spawn-graph role (0 when unknown).
func (r *ipResolver) funcRole(fn flowFunc) callgraph.Role {
	if r == nil || r.graph == nil {
		return 0
	}
	r.initRoles()
	switch {
	case fn.lit != nil:
		return r.roles[r.graph.LitKey[fn.lit]]
	case fn.decl != nil:
		return r.roles[r.declKey[fn.decl]]
	}
	return 0
}

// calleeSummary returns the summary of call's resolved synchronous
// callee, or nil (unknown edge, go/defer statement, or no summary yet).
func (r *ipResolver) calleeSummary(call *ast.CallExpr) *cfg.Summary {
	if r == nil || r.graph == nil {
		return nil
	}
	e, ok := r.graph.Sites[call]
	if !ok || e.Kind != callgraph.KindCall || e.Callee == "" {
		return nil
	}
	return r.store.Get(e.Callee)
}

// calleeKey returns the callgraph key of call's resolved synchronous
// callee, or "".
func (r *ipResolver) calleeKey(call *ast.CallExpr) string {
	if r == nil || r.graph == nil {
		return ""
	}
	e, ok := r.graph.Sites[call]
	if !ok || e.Kind != callgraph.KindCall {
		return ""
	}
	return e.Callee
}

// boundLit returns the literal bound to obj when every call through obj is
// a visible call site.
func (r *ipResolver) boundLit(obj types.Object) *ast.FuncLit {
	if r == nil || r.graph == nil || !r.graph.CallOnly[obj] {
		return nil
	}
	return r.graph.Bindings[obj]
}

// objEffect is a function body's effect on one object (a parameter, or a
// variable captured by a closure).
type objEffect struct {
	relAlways, relMay   bool
	escapes             bool
	stopAlways, stopMay bool
	opens               bool
}

// capEffect computes lit's effect on captured object obj. A cycle (a
// closure reachable from itself through bindings) degrades to escape.
func (r *ipResolver) capEffect(lit *ast.FuncLit, obj types.Object) objEffect {
	if r.active[lit] {
		return objEffect{escapes: true}
	}
	r.active[lit] = true
	defer delete(r.active, lit)
	res := r.bodyEffects(lit.Body, []types.Object{obj})
	return res.effs[0]
}

type bodyResult struct {
	effs           []objEffect
	stampsAlways   bool
	readsUnstamped bool
	noReturn       bool
}

// ipFact is the dataflow fact: per-target bitmasks (bit i = targets[i])
// plus the must-stamped bit. rel/stop are must-facts (intersection at
// joins), the rest are may-facts (union).
type ipFact struct {
	rel, relMay   uint64
	stop, stopMay uint64
	open, esc     uint64
	stamped       bool
}

// bodyEffects runs the effect dataflow over body for the given target
// objects (at most 64; extras get a conservative escape).
func (r *ipResolver) bodyEffects(body *ast.BlockStmt, targets []types.Object) bodyResult {
	res := bodyResult{effs: make([]objEffect, len(targets))}
	bit := map[types.Object]uint64{}
	for i, obj := range targets {
		if obj == nil {
			continue
		}
		if i >= 64 {
			res.effs[i] = objEffect{escapes: true}
			continue
		}
		bit[obj] = 1 << uint(i)
	}

	s := &ipScan{r: r, bit: bit}
	g := cfg.New(body)
	r.pruneNoReturn(g)

	// Deferred statements execute at exit on every path; classify them
	// once, fold their effects into the exit fact, and skip them during
	// the per-block walk.
	var deferRel, deferStop, deferEsc uint64
	inspectShallow(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		rel, stop, esc := s.deferEffects(d.Call)
		deferRel |= rel
		deferStop |= stop
		deferEsc |= esc
		return true
	})

	facts := cfg.Solve(g, cfg.Problem[ipFact]{
		Entry: ipFact{},
		Transfer: func(b *cfg.Block, in ipFact) ipFact {
			out := in
			for _, n := range b.Nodes {
				s.node(n, &out)
			}
			return out
		},
		Join: func(a, b ipFact) ipFact {
			return ipFact{
				rel: a.rel & b.rel, relMay: a.relMay | b.relMay,
				stop: a.stop & b.stop, stopMay: a.stopMay | b.stopMay,
				open: a.open | b.open, esc: a.esc | b.esc,
				stamped: a.stamped && b.stamped,
			}
		},
		Equal: func(a, b ipFact) bool { return a == b },
	})

	exitReached := false
	for _, b := range g.RPO() {
		if b == g.Exit {
			exitReached = true
		}
	}
	res.noReturn = !exitReached

	// Replay with the collector on to find un-stamped obstacle reads.
	s.collect = &res
	for _, b := range g.RPO() {
		fact := facts[b.Index]
		for _, n := range b.Nodes {
			s.node(n, &fact)
		}
	}
	s.collect = nil

	exit := facts[g.Exit.Index]
	exit.rel |= deferRel
	exit.relMay |= deferRel
	exit.stop |= deferStop
	exit.stopMay |= deferStop
	exit.open &^= deferStop
	exit.esc |= deferEsc
	res.stampsAlways = exit.stamped && exitReached
	for i := range targets {
		if i >= 64 {
			break
		}
		m := uint64(1) << uint(i)
		if targets[i] == nil {
			continue
		}
		res.effs[i] = objEffect{
			relAlways:  exit.rel&m != 0 && exitReached,
			relMay:     exit.relMay&m != 0,
			escapes:    exit.esc&m != 0,
			stopAlways: exit.stop&m != 0 && exitReached,
			stopMay:    exit.stopMay&m != 0,
			opens:      exit.open&m != 0,
		}
	}
	return res
}

// pruneNoReturn detaches the successors of blocks that call a function
// known not to return, so paths through panics and exits stop feeding the
// exit join.
func (r *ipResolver) pruneNoReturn(g *cfg.Graph) {
	for _, b := range g.Blocks {
		cut := false
		for _, nd := range b.Nodes {
			if r.nodeNoReturn(nd) {
				cut = true
				break
			}
		}
		if !cut {
			continue
		}
		for _, s := range b.Succs {
			s.Preds = removeBlock(s.Preds, b)
		}
		b.Succs = nil
	}
}

func removeBlock(list []*cfg.Block, b *cfg.Block) []*cfg.Block {
	out := list[:0]
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// nodeNoReturn reports whether executing n always reaches a non-returning
// call.
func (r *ipResolver) nodeNoReturn(n ast.Node) bool {
	if r.graph == nil {
		return false
	}
	found := false
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		e, ok := r.graph.Sites[call]
		if !ok || e.Kind != callgraph.KindCall || e.Callee == "" {
			return true
		}
		if hardNoReturn[e.Callee] {
			found = true
			return false
		}
		if sum := r.store.Get(e.Callee); sum != nil && sum.NoReturn {
			found = true
			return false
		}
		return true
	})
	return found
}

// ipScan interprets AST nodes against an ipFact. collect is non-nil only
// during the reporting replay.
type ipScan struct {
	r       *ipResolver
	bit     map[types.Object]uint64
	collect *bodyResult
}

func (s *ipScan) objBit(e ast.Expr) uint64 {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || s.r.info == nil {
		return 0
	}
	obj := s.r.info.ObjectOf(id)
	if obj == nil {
		return 0
	}
	return s.bit[obj]
}

// node interprets one CFG node.
func (s *ipScan) node(n ast.Node, fact *ipFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			s.expr(rhs, fact, true)
		}
		for _, lhs := range n.Lhs {
			if _, ok := lhs.(*ast.Ident); ok {
				continue
			}
			s.expr(lhs, fact, false)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					s.expr(v, fact, true)
				}
			}
		}
	case *ast.ExprStmt:
		s.expr(n.X, fact, false)
	case *ast.DeferStmt:
		// Folded into the exit fact by bodyEffects.
	case *ast.GoStmt:
		// Asynchronous: no synchronous effect can be credited, and the
		// spawned goroutine may retain everything it mentions.
		fact.esc |= s.referencedMask(n.Call)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			s.expr(res, fact, true)
		}
	case *ast.SendStmt:
		s.expr(n.Chan, fact, false)
		s.expr(n.Value, fact, true)
	case *ast.IncDecStmt:
		s.expr(n.X, fact, false)
	case ast.Expr:
		s.expr(n, fact, false)
	}
}

// referencedMask returns the bits of every target mentioned anywhere under
// n, closure bodies included.
func (s *ipScan) referencedMask(n ast.Node) uint64 {
	var m uint64
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if s.r.info != nil {
				if obj := s.r.info.ObjectOf(id); obj != nil {
					m |= s.bit[obj]
				}
			}
		}
		return true
	})
	return m
}

// expr walks an expression, applying call effects and recording escapes.
func (s *ipScan) expr(e ast.Expr, fact *ipFact, escaping bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if escaping {
			fact.esc |= s.objBit(e)
		}
	case *ast.ParenExpr:
		s.expr(e.X, fact, escaping)
	case *ast.StarExpr:
		s.expr(e.X, fact, escaping)
	case *ast.UnaryExpr:
		s.expr(e.X, fact, escaping || e.Op.String() == "&")
	case *ast.SelectorExpr:
		s.expr(e.X, fact, false)
	case *ast.CallExpr:
		s.call(e, fact)
	case *ast.FuncLit:
		s.funcLit(e, fact)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.expr(el, fact, true)
		}
	case *ast.KeyValueExpr:
		s.expr(e.Key, fact, false)
		s.expr(e.Value, fact, escaping)
	case *ast.BinaryExpr:
		s.expr(e.X, fact, false)
		s.expr(e.Y, fact, false)
	case *ast.IndexExpr:
		s.expr(e.X, fact, escaping)
		s.expr(e.Index, fact, false)
	case *ast.SliceExpr:
		s.expr(e.X, fact, escaping)
	case *ast.TypeAssertExpr:
		s.expr(e.X, fact, escaping)
	default:
		fact.esc |= s.referencedMask(e)
	}
}

// funcLit handles a literal in value position: a call-only bound literal
// defers its capture effects to the visible call sites; anything else may
// run anywhere, so captures escape.
func (s *ipScan) funcLit(lit *ast.FuncLit, fact *ipFact) {
	if s.r.graph != nil {
		for obj, l := range s.r.graph.Bindings {
			if l == lit && s.r.graph.CallOnly[obj] {
				return
			}
		}
	}
	fact.esc |= s.referencedMask(lit.Body)
}

// typeNameOf names the (pointer-unwrapped) named type of e.
func (s *ipScan) typeNameOf(e ast.Expr) string {
	if s.r.info == nil {
		return ""
	}
	return namedTypeName(s.r.info.TypeOf(e))
}

// call interprets one synchronous call site.
func (s *ipScan) call(call *ast.CallExpr, fact *ipFact) {
	// Direct release of a target.
	if id := calleeIdent(call); id != nil && id.Name == "ReleaseWorkspace" && len(call.Args) == 1 {
		if m := s.objBit(call.Args[0]); m != 0 {
			fact.rel |= m
			fact.relMay |= m
			return
		}
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvType := s.typeNameOf(sel.X)
		// Journal protocol on a target ObsMap.
		if recvType == "ObsMap" {
			if m := s.objBit(sel.X); m != 0 {
				switch sel.Sel.Name {
				case "StartJournal":
					fact.open |= m
					for _, a := range call.Args {
						s.expr(a, fact, true)
					}
					return
				case "StopJournal":
					fact.stop |= m
					fact.stopMay |= m
					fact.open &^= m
					return
				case "RewindJournal", "JournalLen", "Journaling":
					for _, a := range call.Args {
						s.expr(a, fact, false)
					}
					return
				}
			}
			if sel.Sel.Name == "Blocked" && !fact.stamped && s.collect != nil {
				s.collect.readsUnstamped = true
			}
		}
		// Visit stamps raise the must-stamped bit.
		if recvType == "Workspace" && snapStampMethods[sel.Sel.Name] {
			fact.stamped = true
			s.expr(sel.X, fact, false)
			for _, a := range call.Args {
				s.expr(a, fact, false)
			}
			return
		}
	}

	// Immediately-invoked literal: capture effects apply here.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		s.applyLitCall(lit, call, fact)
		return
	}

	var edge callgraph.Edge
	resolved := false
	if s.r.graph != nil {
		edge, resolved = s.r.graph.Sites[call]
	}
	if resolved && edge.Callee != "" && edge.Kind != callgraph.KindUnknown {
		if node := s.r.graph.ByKey[edge.Callee]; node != nil && node.Lit != nil {
			// Call through a closure binding.
			s.applyLitCall(node.Lit, call, fact)
			return
		}
		if sum := s.r.store.Get(edge.Callee); sum != nil {
			s.applySummary(sum, call, fact)
			return
		}
	}

	// Unknown callee (or no summary): receiver is a use, arguments escape.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		s.expr(sel.X, fact, false)
	} else if _, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok {
		s.expr(call.Fun, fact, false)
	}
	for _, a := range call.Args {
		s.expr(a, fact, true)
	}
}

// applyLitCall applies a literal's capture effects plus its parameter
// summary to one call of it.
func (s *ipScan) applyLitCall(lit *ast.FuncLit, call *ast.CallExpr, fact *ipFact) {
	for obj, m := range s.bit {
		if !objReferencedIn(s.r.info, lit.Body, obj) {
			continue
		}
		eff := s.r.capEffect(lit, obj)
		s.applyEffect(eff, m, fact)
	}
	var litSum *cfg.Summary
	if s.r.graph != nil {
		if key := s.r.graph.LitKey[lit]; key != "" {
			litSum = s.r.store.Get(key)
		}
	}
	s.applyArgs(litSum, call.Args, 0, fact)
	if litSum != nil {
		s.applyCalleeGlobal(litSum, fact)
	}
}

// applySummary applies a declared callee's summary at one call site.
func (s *ipScan) applySummary(sum *cfg.Summary, call *ast.CallExpr, fact *ipFact) {
	argBase := 0
	if sum.Recv {
		argBase = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if m := s.objBit(sel.X); m != 0 {
				s.applyEffect(paramToEffect(sum.Param(0)), m, fact)
			} else {
				s.expr(sel.X, fact, false)
			}
		}
	}
	s.applyArgs(sum, call.Args, argBase, fact)
	s.applyCalleeGlobal(sum, fact)
}

// applyArgs maps arguments onto callee parameter summaries; arguments
// beyond the summarized parameters (variadic tails) escape.
func (s *ipScan) applyArgs(sum *cfg.Summary, args []ast.Expr, base int, fact *ipFact) {
	for i, a := range args {
		m := s.objBit(a)
		if m == 0 {
			s.expr(a, fact, true)
			continue
		}
		if sum == nil || base+i >= len(sum.Params) {
			fact.esc |= m
			continue
		}
		s.applyEffect(paramToEffect(sum.Param(base+i)), m, fact)
	}
}

// applyCalleeGlobal applies a callee's global (non-parameter) effects.
func (s *ipScan) applyCalleeGlobal(sum *cfg.Summary, fact *ipFact) {
	if sum.ReadsUnstamped && !fact.stamped && s.collect != nil {
		s.collect.readsUnstamped = true
	}
	if sum.StampsAlways {
		fact.stamped = true
	}
}

func paramToEffect(p cfg.ParamSummary) objEffect {
	return objEffect{
		relAlways:  p.ReleasesAlways,
		relMay:     p.ReleasesMay,
		escapes:    p.Escapes,
		stopAlways: p.StopsJournalAlways,
		stopMay:    p.StopsJournalMay,
		opens:      p.OpensJournal,
	}
}

// applyEffect folds one callee-side object effect into the caller fact
// for the targets in mask m.
func (s *ipScan) applyEffect(eff objEffect, m uint64, fact *ipFact) {
	if eff.relAlways {
		fact.rel |= m
	}
	if eff.relAlways || eff.relMay {
		fact.relMay |= m
	}
	if eff.escapes {
		fact.esc |= m
	}
	if eff.stopAlways {
		fact.stop |= m
	}
	if eff.stopAlways || eff.stopMay {
		fact.stopMay |= m
		// Optimistic: a may-stop (the conditional-ownership pattern)
		// clears the open bit rather than leaving a spurious leak.
		fact.open &^= m
	}
	if eff.opens {
		fact.open |= m
	}
}

// deferEffects classifies one deferred call into exit-time masks:
// must-release, must-stop-journal, and escapes.
func (s *ipScan) deferEffects(call *ast.CallExpr) (rel, stop, esc uint64) {
	// defer ReleaseWorkspace(t)
	if id := calleeIdent(call); id != nil && id.Name == "ReleaseWorkspace" && len(call.Args) == 1 {
		if m := s.objBit(call.Args[0]); m != 0 {
			return m, 0, 0
		}
	}
	// defer t.StopJournal()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s.typeNameOf(sel.X) == "ObsMap" && sel.Sel.Name == "StopJournal" {
			if m := s.objBit(sel.X); m != 0 {
				return 0, m, 0
			}
		}
	}
	// defer func(){...}() or defer boundClosure()
	lit, _ := ast.Unparen(call.Fun).(*ast.FuncLit)
	if lit == nil && s.r.graph != nil {
		if e, ok := s.r.graph.Sites[call]; ok && e.Callee != "" {
			if node := s.r.graph.ByKey[e.Callee]; node != nil && node.Lit != nil {
				lit = node.Lit
			}
		}
	}
	if lit != nil {
		for obj, m := range s.bit {
			if !objReferencedIn(s.r.info, lit.Body, obj) {
				continue
			}
			eff := s.r.capEffect(lit, obj)
			switch {
			case eff.relAlways:
				rel |= m
			case eff.stopAlways:
				stop |= m
			case eff.escapes || eff.relMay || eff.stopMay || eff.opens:
				esc |= m
			}
		}
		// Arguments of the deferred call are evaluated at the defer
		// statement and retained until exit.
		for _, a := range call.Args {
			esc |= s.referencedMask(a)
		}
		return rel, stop, esc
	}
	// defer knownCallee(..., t, ...)
	var sum *cfg.Summary
	if s.r.graph != nil {
		if e, ok := s.r.graph.Sites[call]; ok && e.Callee != "" && e.Kind == callgraph.KindDefer {
			sum = s.r.store.Get(e.Callee)
		}
	}
	if sum != nil {
		base := 0
		if sum.Recv {
			base = 1
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if m := s.objBit(sel.X); m != 0 {
					rel, stop, esc = foldDeferParam(sum.Param(0), m, rel, stop, esc)
				}
			}
		}
		for i, a := range call.Args {
			m := s.objBit(a)
			if m == 0 {
				esc |= s.referencedMask(a)
				continue
			}
			if base+i >= len(sum.Params) {
				esc |= m
				continue
			}
			rel, stop, esc = foldDeferParam(sum.Param(base+i), m, rel, stop, esc)
		}
		return rel, stop, esc
	}
	return 0, 0, s.referencedMask(call)
}

func foldDeferParam(p cfg.ParamSummary, m, rel, stop, esc uint64) (uint64, uint64, uint64) {
	switch {
	case p.ReleasesAlways:
		rel |= m
	case p.StopsJournalAlways:
		stop |= m
	case p.Escapes || p.ReleasesMay || p.StopsJournalMay || p.OpensJournal:
		esc |= m
	}
	return rel, stop, esc
}

// objReferencedIn reports whether obj is mentioned under n.
func objReferencedIn(info *types.Info, n ast.Node, obj types.Object) bool {
	if info == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
