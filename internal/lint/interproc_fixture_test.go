package lint

import (
	"strings"
	"testing"
)

// TestInterprocFixture covers the interprocedural wsaliasing cases:
// obligations discharged through helper summaries, kept alive through
// call-only closures and deferred closures, and (mutually) recursive
// release helpers converging at the SCC fixed point.
func TestInterprocFixture(t *testing.T) {
	runFixture(t, AnalyzerWsAliasing, "testdata/src/interproc")
}

// TestSnapInterprocFixture covers the interprocedural snapshotread cases:
// un-stamped Blocked reads hiding inside helpers and stamps supplied by
// callee summaries.
func TestSnapInterprocFixture(t *testing.T) {
	runFixture(t, AnalyzerSnapshotRead, "testdata/src/snapinterproc")
}

// TestJournalPairFixture covers the journal pairing analyzer.
func TestJournalPairFixture(t *testing.T) {
	runFixture(t, AnalyzerJournalPair, "testdata/src/journalpair")
}

// TestSeedWorkspaceFixture covers the cache-seeding workspace shapes: the
// seed-hit fast path that skips the pooled release, a capture that reads
// the workspace after a releasing helper, and obligations discharged
// through a replay helper's summary.
func TestSeedWorkspaceFixture(t *testing.T) {
	runFixture(t, AnalyzerWsAliasing, "testdata/src/seedworkspace")
}

// TestSeedJournalFixture covers the journal obligation across the
// seed/restore boundary: rewinding to the pre-seed mark never closes the
// journal, and a restore helper's summary can.
func TestSeedJournalFixture(t *testing.T) {
	runFixture(t, AnalyzerJournalPair, "testdata/src/seedjournal")
}

// TestParseErrorFixture pins the parse-failure contract: a broken file
// yields positioned findings under the "parse" analyzer, suppresses every
// other analyzer for the package, and does not abort the run.
func TestParseErrorFixture(t *testing.T) {
	findings, err := Run(Options{
		Patterns: []string{"testdata/src/parseerror"},
	})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("broken fixture produced no findings")
	}
	for _, f := range findings {
		if f.Analyzer != "parse" {
			t.Errorf("want only parse findings on a broken package, got %s", f)
		}
		if f.Pos.Line == 0 || !strings.HasSuffix(f.Pos.Filename, "parseerror.go") {
			t.Errorf("parse finding lacks a usable position: %s", f)
		}
		if !strings.Contains(f.Message, "syntax error") {
			t.Errorf("parse finding message = %q, want a syntax error", f.Message)
		}
	}
}
