package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF (Static Analysis Results Interchange Format) 2.1.0 output, the
// dialect CI systems ingest for inline code annotations. Only the subset
// pacorvet needs is modelled; field order follows the struct declarations,
// so the output is deterministic for a deterministic finding list.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as one SARIF 2.1.0 run. The rule table lists
// the full analyzer registry (plus the directive and parse
// pseudo-analyzers) so a clean run still documents what was checked.
func WriteSARIF(w io.Writer, findings []Finding) error {
	rules := []sarifRule{{
		ID:               "directive",
		ShortDescription: sarifText{Text: "//pacor:allow directives must carry a justification"},
	}, {
		ID:               "parse",
		ShortDescription: sarifText{Text: "every linted file must parse; syntax errors are findings, not crashes"},
	}}
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		line, col := f.Pos.Line, f.Pos.Column
		if line < 1 {
			line = 1
		}
		if col < 1 {
			col = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pacorvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// WriteJSON renders findings as a plain JSON array of Finding values (an
// empty array, not null, for a clean run).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
