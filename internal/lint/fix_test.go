package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// copyFixTree copies the seeded-defect tree into a fresh temp dir so the
// fixes can be applied without touching the checked-in fixture.
func copyFixTree(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	matches, err := filepath.Glob(filepath.Join("testdata", "fix", "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no seeded-defect fixtures: %v", err)
	}
	for _, src := range matches {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(src)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// readTree snapshots every .go file in dir.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	snap := map[string][]byte{}
	for _, p := range matches {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		snap[p] = data
	}
	return snap
}

// TestFixFixpoint pins the -fix contract: one apply round repairs every
// seeded defect, the repaired tree lints clean under the full registry,
// and a second fix round is a byte-level no-op.
func TestFixFixpoint(t *testing.T) {
	dir := copyFixTree(t)

	findings, err := Run(Options{Patterns: []string{dir}})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("seeded-defect tree produced no findings")
	}
	fixable := 0
	for _, f := range findings {
		if len(f.Fixes) > 0 {
			fixable++
		}
	}
	if fixable != len(findings) {
		t.Fatalf("tree has unfixable findings (%d of %d carry fixes): %v", fixable, len(findings), findings)
	}

	res, err := ApplyFixes(findings, "")
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if res.Applied == 0 {
		t.Fatal("no edits applied")
	}

	after, err := Run(Options{Patterns: []string{dir}})
	if err != nil {
		t.Fatalf("re-lint: %v", err)
	}
	if len(after) != 0 {
		t.Fatalf("fixed tree still has findings: %v", after)
	}

	// Second round: nothing to fix, bytes unchanged.
	snap := readTree(t, dir)
	res2, err := ApplyFixes(after, "")
	if err != nil {
		t.Fatalf("second apply: %v", err)
	}
	if res2.Applied != 0 || len(res2.Files) != 0 {
		t.Errorf("second fix round rewrote files: %+v", res2)
	}
	for p, want := range readTree(t, dir) {
		if !bytes.Equal(snap[p], want) {
			t.Errorf("%s changed between fix rounds", p)
		}
	}
}

// TestApplyFixesOverlap pins the convergence rule: exact duplicates are
// deduplicated, overlapping edits keep the earlier-positioned one.
func TestApplyFixesOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	if err := os.WriteFile(path, []byte("aaaa\nbbbb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	edit := func(start, end int, new string) Finding {
		return Finding{Fixes: []SuggestedFix{{Edits: []TextEdit{{File: path, Start: start, End: end, New: new}}}}}
	}
	res, err := ApplyFixes([]Finding{
		edit(0, 5, ""),  // delete first line
		edit(0, 5, ""),  // exact duplicate: deduped
		edit(3, 6, "x"), // overlaps the first edit: skipped
		edit(5, 10, ""), // delete second line: applied
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.Skipped != 1 {
		t.Errorf("applied=%d skipped=%d, want 2/1", res.Applied, res.Skipped)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("file = %q, want empty", data)
	}
}
