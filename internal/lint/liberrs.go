package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerLibErrs guards error hygiene in library code (internal/... and
// the root package): an error silently dropped on the floor in a routing
// or solver stage surfaces later as a wrong chip, not a failed run. It
// flags expression-statement calls whose error result is discarded, and
// bare `_ = x` discards of side-effect-free values (dead code wearing an
// assignment costume). Deliberate discards get a justified
// //pacor:allow liberrs.
var AnalyzerLibErrs = &Analyzer{
	Name: "liberrs",
	Doc:  "library packages must not silently discard error returns or dead values",
	Run:  runLibErrs,
}

func runLibErrs(p *Pass) {
	if !libPackage(p.PkgPath) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if neverFails(p, call) {
					return true
				}
				if pos, ok := returnsError(p, call); ok {
					p.Reportf(n.Pos(), "call discards its error result (%s); handle or //pacor:allow with a reason", pos)
				}
			case *ast.AssignStmt:
				checkBlankAssign(p, n)
			}
			return true
		})
	}
}

// libPackage reports whether pkgPath is library code: the module root
// package or anything under internal/. cmd/ and examples/ own their
// process and may print and exit as they please.
func libPackage(pkgPath string) bool {
	if strings.Contains(pkgPath, "/internal/") || strings.HasPrefix(pkgPath, "internal/") {
		return true
	}
	// The bare module path (no slash beyond the module name) is the public
	// library package.
	return !strings.Contains(pkgPath, "/cmd/") && !strings.Contains(pkgPath, "/examples/") &&
		!strings.Contains(pkgPath, "/") && pkgPath != ""
}

// neverFails reports whether call's error result is a documented constant
// nil: methods on strings.Builder / bytes.Buffer, and fmt.Fprint* aimed at
// one of those. Discarding such an "error" is the normal idiom, not a bug.
//
// The receiver is resolved through the type checker, not the spelling, so
// field receivers (s.buf.WriteString), parenthesized receivers, and method
// expressions ((*strings.Builder).WriteString(&b, ...)) all qualify. The
// same method reached through an interface (io.StringWriter) or a method
// value stored in a variable stays flagged: the static type no longer
// guarantees the nil error.
func neverFails(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if p.Info != nil {
		if s := p.Info.Selections[sel]; s != nil && infallibleWriter(s.Recv()) {
			return true
		}
	}
	if infallibleWriter(p.TypeOf(sel.X)) {
		return true
	}
	// fmt.Fprintf(&b, ...) with a Builder/Buffer destination.
	if id, ok := sel.X.(*ast.Ident); ok && isPkgIdent(p, id, "fmt") &&
		strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
		if infallibleWriter(p.TypeOf(call.Args[0])) {
			return true
		}
	}
	return false
}

// infallibleWriter reports whether t is strings.Builder or bytes.Buffer
// (possibly behind a pointer), whose Write methods always return nil
// errors by contract.
func infallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// returnsError reports whether call has an error among its results, and
// names the callee for the message.
func returnsError(p *Pass, call *ast.CallExpr) (string, bool) {
	t := p.TypeOf(call)
	if t == nil {
		return "", false
	}
	name := calleeName(call)
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return name, true
			}
		}
	default:
		if isErrorType(t) {
			return name, true
		}
	}
	return "", false
}

// checkBlankAssign flags all-blank assignments: `_ = x` of a side-effect-
// free value is dead code, and `_ = f()` / `_, _ = f()` of an
// error-returning call is a silent discard.
func checkBlankAssign(p *Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return // some result is kept; this is the v, _ := f() idiom
		}
	}
	for _, rhs := range as.Rhs {
		switch rhs := rhs.(type) {
		case *ast.CallExpr:
			if name, ok := returnsError(p, rhs); ok {
				p.Reportf(as.Pos(), "blank assignment discards error from %s; handle or //pacor:allow with a reason", name)
			}
		case *ast.Ident, *ast.SelectorExpr:
			var fix *SuggestedFix
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if ed, ok := p.DeleteLines(as.Pos(), as.End()); ok {
					fix = &SuggestedFix{Message: "delete the dead discard", Edits: []TextEdit{ed}}
				}
			}
			p.ReportFix(as.Pos(), fix, "dead discard `_ = %s`: the value has no side effects; use it or delete it", exprString(rhs))
		}
	}
}

// calleeName renders the called function for a finding message.
func calleeName(call *ast.CallExpr) string {
	return exprString(call.Fun)
}

// exprString renders simple expressions (idents, selectors) for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
