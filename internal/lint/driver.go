package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Options configures one lint run.
type Options struct {
	// Dir is the module root (where go.mod lives). Defaults to ".".
	Dir string
	// Patterns are `go list` package patterns ("./..."), or paths of
	// directories holding loose .go files (fixtures under testdata/, which
	// `go list` refuses to enumerate). The two kinds can be mixed.
	Patterns []string
	// Analyzers is the registry to run; Analyzers() when empty.
	Analyzers []*Analyzer
	// Log receives progress/diagnostic output; discarded when nil.
	Log io.Writer
}

// Run loads every package matched by opts.Patterns, type-checks it, runs
// the analyzer registry, and returns the surviving (unsuppressed) findings
// sorted by position. Type-check errors are tolerated — analyzers run with
// partial information — but unreadable patterns are reported as errors.
func Run(opts Options) ([]Finding, error) {
	if opts.Dir == "" {
		opts.Dir = "."
	}
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	if len(opts.Analyzers) == 0 {
		opts.Analyzers = Analyzers()
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}

	var dirPatterns, listPatterns []string
	for _, p := range opts.Patterns {
		if isGoFileDir(opts.Dir, p) {
			dirPatterns = append(dirPatterns, p)
		} else {
			listPatterns = append(listPatterns, p)
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		dir:     opts.Dir,
		source:  importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
	}

	var pkgs []*checkedPackage
	if len(listPatterns) > 0 {
		mod, err := ld.loadModule(listPatterns)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, mod...)
	}
	for _, d := range dirPatterns {
		p, err := ld.loadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}

	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, lintPackage(pkg, opts.Analyzers)...)
	}
	findings = relativize(findings, opts.Dir)
	sortFindings(findings)
	return findings, nil
}

// checkedPackage is one parsed and (best-effort) type-checked package.
type checkedPackage struct {
	fset    *token.FileSet
	path    string
	name    string
	files   []*ast.File
	src     map[string][]byte // filename -> raw bytes, for text edits
	pkg     *types.Package
	info    *types.Info
	typeErr []error
}

// lintPackage runs every analyzer over pkg and filters the findings
// through the package's //pacor:allow directives.
func lintPackage(pkg *checkedPackage, analyzers []*Analyzer) []Finding {
	// Directive tables per file.
	allow := map[string]fileDirectives{} // filename -> directives
	hot := map[*ast.FuncDecl]bool{}
	var findings []Finding
	for _, f := range pkg.files {
		d := parseDirectives(pkg.fset, f)
		name := pkg.fset.Position(f.Pos()).Filename
		allow[name] = d
		for _, bad := range d.unjustified {
			findings = append(findings, Finding{
				Pos:      pkg.fset.Position(bad.pos),
				Analyzer: "directive",
				Message:  "//pacor:allow needs a justification: //pacor:allow <analyzer> <reason>",
			})
		}
		for fn := range hotFuncs(pkg.fset, f) {
			hot[fn] = true
		}
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.fset,
			Files:    pkg.files,
			PkgPath:  pkg.path,
			PkgName:  pkg.name,
			Pkg:      pkg.pkg,
			Info:     pkg.info,
			hot:      hot,
			src:      pkg.src,
			report: func(f Finding) {
				if allow[f.Pos.Filename].suppressed(f.Analyzer, f.Pos.Line) {
					return
				}
				findings = append(findings, f)
			},
		}
		a.Run(pass)
	}
	return findings
}

// relativize rewrites absolute finding paths relative to dir for stable,
// readable output.
func relativize(fs []Finding, dir string) []Finding {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return fs
	}
	for i := range fs {
		if rel, err := filepath.Rel(abs, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].Pos.Filename = rel
		}
		for j := range fs[i].Fixes {
			edits := fs[i].Fixes[j].Edits
			for k := range edits {
				if rel, err := filepath.Rel(abs, edits[k].File); err == nil && !strings.HasPrefix(rel, "..") {
					edits[k].File = rel
				}
			}
		}
	}
	return fs
}

// isGoFileDir reports whether pattern names an existing directory (relative
// to dir) that directly contains .go files — the fixture-loading mode.
func isGoFileDir(dir, pattern string) bool {
	p := pattern
	if !filepath.IsAbs(p) {
		p = filepath.Join(dir, p)
	}
	st, err := os.Stat(p)
	if err != nil || !st.IsDir() {
		return false
	}
	matches, _ := filepath.Glob(filepath.Join(p, "*.go"))
	return len(matches) > 0
}

// loader incrementally parses and type-checks packages, serving
// module-internal imports from its own cache and everything else (the
// standard library) from the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	dir     string
	source  types.Importer
	checked map[string]*types.Package
}

// Import implements types.Importer: module packages come from the cache
// (they are checked in dependency order before their importers), the
// standard library from the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.checked[path]; ok && p != nil {
		return p, nil
	}
	return ld.source.Import(path)
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Deps       []string
}

// loadModule runs `go list` for patterns, then parses and type-checks the
// matched packages in dependency order.
func (ld *loader) loadModule(patterns []string) ([]*checkedPackage, error) {
	// -deps emits dependencies before dependents, which is exactly the
	// order the cache-based importer needs.
	all, err := goList(ld.dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	targets, err := goList(ld.dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		// `go list` exits 0 with only a stderr warning when a valid pattern
		// matches no packages; silently linting nothing would report a clean
		// tree that was never inspected.
		return nil, fmt.Errorf("lint: patterns %s matched no packages", strings.Join(patterns, " "))
	}
	isTarget := map[string]bool{}
	for _, t := range targets {
		isTarget[t.ImportPath] = true
	}

	var out []*checkedPackage
	for _, lp := range all {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		cp, err := ld.check(lp.ImportPath, lp.Name, paths, "")
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", lp.ImportPath, err)
		}
		if isTarget[lp.ImportPath] {
			out = append(out, cp)
		}
	}
	return out, nil
}

// loadDir parses and type-checks the loose .go files in one directory
// (testdata fixtures). The package path defaults to "fixture/<base>" and
// can be overridden with //pacor:pkgpath.
func (ld *loader) loadDir(dir string) (*checkedPackage, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(ld.dir, dir)
	}
	matches, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return ld.checkFiles(matches, "fixture/"+filepath.Base(abs))
}

// checkFiles parses the given files as one package and type-checks them.
func (ld *loader) checkFiles(paths []string, fallbackPath string) (*checkedPackage, error) {
	cp, err := ld.check("", "", paths, fallbackPath)
	return cp, err
}

// check parses paths into one package and type-checks it with the cache
// importer. Type errors are collected, not fatal; parse errors are fatal.
func (ld *loader) check(importPath, pkgName string, paths []string, fallbackPath string) (*checkedPackage, error) {
	var files []*ast.File
	src := map[string][]byte{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(ld.fset, p, data, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		src[p] = data
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %v", paths)
	}
	if pkgName == "" {
		pkgName = files[0].Name.Name
	}
	if importPath == "" {
		importPath = fallbackPath
		for _, f := range files {
			if d := parseDirectives(ld.fset, f); d.pkgpath != "" {
				importPath = d.pkgpath
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(importPath, ld.fset, files, info) // errors collected above
	if pkg != nil {
		ld.checked[importPath] = pkg
	}
	return &checkedPackage{
		fset:    ld.fset,
		path:    importPath,
		name:    pkgName,
		files:   files,
		src:     src,
		pkg:     pkg,
		info:    info,
		typeErr: typeErrs,
	}, nil
}

// goList shells out to `go list -json` and decodes the JSON stream.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
