package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// Options configures one lint run.
type Options struct {
	// Dir is the module root (where go.mod lives). Defaults to ".".
	Dir string
	// Patterns are `go list` package patterns ("./..."), or paths of
	// directories holding loose .go files (fixtures under testdata/, which
	// `go list` refuses to enumerate). The two kinds can be mixed.
	Patterns []string
	// Analyzers is the registry to run; Analyzers() when empty.
	Analyzers []*Analyzer
	// Log receives progress/diagnostic output; discarded when nil.
	Log io.Writer
	// CacheDir enables the on-disk fact cache (see cache.go): packages
	// whose sources and transitive dependency summaries are unchanged are
	// served from it instead of being re-analyzed. Empty disables caching.
	CacheDir string
	// Stats, when non-nil, receives per-run cache counters.
	Stats *RunStats
	// Jobs is the number of packages analyzed concurrently in module mode.
	// Values below 2 run sequentially. Output is byte-identical for every
	// value: packages are scheduled in dependency order and findings,
	// stats, and cache entries are assembled in `go list -deps` order.
	Jobs int
}

// RunStats reports what one run actually analyzed.
type RunStats struct {
	// Packages is the number of module packages considered (targets plus
	// their module dependencies). Fixture directories are not counted.
	Packages int
	// Reanalyzed is the number of packages parsed, summarized, and (when
	// targeted) linted this run.
	Reanalyzed int
	// CacheHits is the number of packages served entirely from the fact
	// cache.
	CacheHits int
	// ReanalyzedPkgs lists the import paths behind Reanalyzed, in
	// processing order.
	ReanalyzedPkgs []string
}

// Run loads every package matched by opts.Patterns, type-checks it, runs
// the analyzer registry, and returns the surviving (unsuppressed) findings
// sorted by position. Type-check errors are tolerated — analyzers run with
// partial information — but unreadable patterns are reported as errors.
func Run(opts Options) ([]Finding, error) {
	if opts.Dir == "" {
		opts.Dir = "."
	}
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	if len(opts.Analyzers) == 0 {
		opts.Analyzers = Analyzers()
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}

	var dirPatterns, listPatterns []string
	for _, p := range opts.Patterns {
		if isGoFileDir(opts.Dir, p) {
			dirPatterns = append(dirPatterns, p)
		} else {
			listPatterns = append(listPatterns, p)
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		dir:     opts.Dir,
		source:  importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
	}

	store := cfg.NewStore()
	var findings []Finding
	if len(listPatterns) > 0 {
		mod, err := ld.runModule(listPatterns, opts, store)
		if err != nil {
			return nil, err
		}
		findings = append(findings, mod...)
	}
	for _, d := range dirPatterns {
		cp, err := ld.loadDir(d)
		if err != nil {
			return nil, err
		}
		if len(cp.parseBad) == 0 {
			summarizePackage(cp, store)
		}
		findings = append(findings, lintPackage(cp, opts.Analyzers, store)...)
	}
	findings = relativize(findings, opts.Dir)
	sortFindings(findings)
	return findings, nil
}

// checkedPackage is one parsed and (best-effort) type-checked package.
type checkedPackage struct {
	fset    *token.FileSet
	path    string
	name    string
	files   []*ast.File
	src     map[string][]byte // filename -> raw bytes, for text edits
	pkg     *types.Package
	info    *types.Info
	typeErr []error
	// parseBad holds positioned findings for files that failed to parse;
	// when non-empty the package is reported as broken instead of being
	// analyzed (see analyzer "parse").
	parseBad []Finding
	// graph is the package call graph, built by summarizePackage; nil for
	// packages that were never summarized (parse failures).
	graph *callgraph.Graph
}

// lintPackage runs every analyzer over pkg and filters the findings
// through the package's //pacor:allow directives. A package that failed
// to parse reports its parse findings and nothing else — analyzers over a
// half-parsed package would only add noise.
func lintPackage(pkg *checkedPackage, analyzers []*Analyzer, store *cfg.Store) []Finding {
	if len(pkg.parseBad) > 0 {
		return pkg.parseBad
	}
	res := &ipResolver{info: pkg.info, graph: pkg.graph, store: store, active: map[*ast.FuncLit]bool{}}
	// Directive tables per file.
	allow := map[string]fileDirectives{} // filename -> directives
	hot := map[*ast.FuncDecl]bool{}
	locked := map[*ast.FuncDecl]bool{}
	var findings []Finding
	for _, f := range pkg.files {
		d := parseDirectives(pkg.fset, f)
		name := pkg.fset.Position(f.Pos()).Filename
		allow[name] = d
		for _, bad := range d.unjustified {
			findings = append(findings, Finding{
				Pos:      pkg.fset.Position(bad.pos),
				Analyzer: "directive",
				Message:  "//pacor:allow needs a justification: //pacor:allow <analyzer> <reason>",
			})
		}
		for fn := range hotFuncs(pkg.fset, f) {
			hot[fn] = true
		}
		for fn := range lockedFuncs(pkg.fset, f) {
			locked[fn] = true
		}
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.fset,
			Files:    pkg.files,
			PkgPath:  pkg.path,
			PkgName:  pkg.name,
			Pkg:      pkg.pkg,
			Info:     pkg.info,
			hot:      hot,
			locked:   locked,
			src:      pkg.src,
			ip:       res,
			report: func(f Finding) {
				if allow[f.Pos.Filename].suppressed(f.Analyzer, f.Pos.Line) {
					return
				}
				findings = append(findings, f)
			},
		}
		a.Run(pass)
	}
	return findings
}

// relativize rewrites absolute finding paths relative to dir for stable,
// readable output.
func relativize(fs []Finding, dir string) []Finding {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return fs
	}
	for i := range fs {
		if rel, err := filepath.Rel(abs, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].Pos.Filename = rel
		}
		for j := range fs[i].Fixes {
			edits := fs[i].Fixes[j].Edits
			for k := range edits {
				if rel, err := filepath.Rel(abs, edits[k].File); err == nil && !strings.HasPrefix(rel, "..") {
					edits[k].File = rel
				}
			}
		}
	}
	return fs
}

// isGoFileDir reports whether pattern names an existing directory (relative
// to dir) that directly contains .go files — the fixture-loading mode.
func isGoFileDir(dir, pattern string) bool {
	p := pattern
	if !filepath.IsAbs(p) {
		p = filepath.Join(dir, p)
	}
	st, err := os.Stat(p)
	if err != nil || !st.IsDir() {
		return false
	}
	matches, _ := filepath.Glob(filepath.Join(p, "*.go"))
	return len(matches) > 0
}

// loader incrementally parses and type-checks packages, serving
// module-internal imports from its own cache and everything else (the
// standard library) from the stdlib source importer. Safe for concurrent
// use by the parallel driver: the checked map is mutex-guarded and the
// stdlib source importer (which keeps its own unguarded package cache) is
// serialized behind srcMu. The shared token.FileSet is internally
// synchronized, and *types.Package values are immutable once checked.
type loader struct {
	fset    *token.FileSet
	dir     string
	source  types.Importer
	mu      sync.Mutex // guards checked
	srcMu   sync.Mutex // serializes source.Import
	checked map[string]*types.Package
}

// Import implements types.Importer: module packages come from the cache
// (they are checked in dependency order before their importers), the
// standard library from the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	ld.mu.Lock()
	p, ok := ld.checked[path]
	ld.mu.Unlock()
	if ok && p != nil {
		return p, nil
	}
	ld.srcMu.Lock()
	defer ld.srcMu.Unlock()
	return ld.source.Import(path)
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Deps       []string
	// Error is set by `go list -e` on broken patterns and packages instead
	// of a nonzero exit.
	Error *listError
	// DepsErrors carries the errors of broken imports (e.g. an import of a
	// package whose directory was deleted) — go list -e reports those here
	// rather than in Error.
	DepsErrors []*listError
}

// listError is the Error object in `go list -e -json` output.
type listError struct {
	Err string
}

// modPkg is one module package moving through the incremental pipeline.
type modPkg struct {
	lp       listedPackage
	target   bool
	files    []string          // absolute source paths, go list order
	srcBytes map[string][]byte // path -> raw bytes
	sumHash  string            // hash of the package's encoded summaries
	mu       sync.Mutex        // guards cp (lazy checking of cache hits)
	cp       *checkedPackage   // set once parsed and type-checked
}

// runModule lints the packages matched by patterns, incrementally when a
// fact cache is configured. Packages are processed in dependency order
// (`go list -deps` emits dependencies first); for each one the driver
// computes a content-addressed key from its sources and its dependencies'
// summary hashes, and either replays the cached findings and summaries or
// re-analyzes. Cache-hit packages are not even parsed unless a dirtied
// dependent later needs their type information.
func (ld *loader) runModule(patterns []string, opts Options, store *cfg.Store) ([]Finding, error) {
	// -e tolerates broken packages so parse failures surface as findings
	// rather than aborting the whole run.
	all, err := goList(ld.dir, append([]string{"-e", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	targets, err := goList(ld.dir, append([]string{"-e"}, patterns...))
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	for _, t := range targets {
		// With -e a broken pattern comes back as a pseudo-package carrying
		// only an Error; report it instead of linting around it.
		if t.Error != nil && len(t.GoFiles) == 0 && t.Dir == "" {
			return nil, fmt.Errorf("lint: %s", t.Error.Err)
		}
		isTarget[t.ImportPath] = true
	}
	if len(isTarget) == 0 {
		// `go list` exits 0 with only a stderr warning when a valid pattern
		// matches no packages; silently linting nothing would report a clean
		// tree that was never inspected.
		return nil, fmt.Errorf("lint: patterns %s matched no packages", strings.Join(patterns, " "))
	}

	var cache *factCache
	if opts.CacheDir != "" {
		cache, err = openFactCache(opts.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("lint: cache: %v", err)
		}
	}

	var order []*modPkg
	byPath := map[string]*modPkg{}
	for _, lp := range all {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		mp := &modPkg{lp: lp, target: isTarget[lp.ImportPath]}
		order = append(order, mp)
		byPath[lp.ImportPath] = mp
	}

	// Read every package's sources up front, serially: the content keys of
	// all packages must reflect one consistent snapshot of the tree, and
	// doing it here keeps processPkg free of ordering concerns.
	for _, mp := range order {
		if opts.Stats != nil {
			opts.Stats.Packages++
		}
		mp.srcBytes = map[string][]byte{}
		for _, f := range mp.lp.GoFiles {
			p := filepath.Join(mp.lp.Dir, f)
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, fmt.Errorf("lint: %s: %v", mp.lp.ImportPath, err)
			}
			mp.files = append(mp.files, p)
			mp.srcBytes[p] = data
		}
	}

	results := make([]pkgResult, len(order))
	if opts.Jobs > 1 && len(order) > 1 {
		if err := ld.processParallel(order, byPath, opts, store, cache, results); err != nil {
			return nil, err
		}
	} else {
		for i, mp := range order {
			r, err := ld.processPkg(mp, byPath, opts, store, cache)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
	}

	// Assemble findings and stats in `go list -deps` order regardless of
	// the completion order above: byte-identical output for every -j.
	var out []Finding
	for i, mp := range order {
		r := results[i]
		if opts.Stats != nil {
			if r.hit {
				opts.Stats.CacheHits++
			} else {
				opts.Stats.Reanalyzed++
				opts.Stats.ReanalyzedPkgs = append(opts.Stats.ReanalyzedPkgs, mp.lp.ImportPath)
			}
		}
		out = append(out, r.findings...)
	}
	return out, nil
}

// pkgResult is the outcome of processing one module package.
type pkgResult struct {
	findings []Finding
	hit      bool // served entirely from the fact cache
}

// processPkg analyzes one package: cache probe, then parse/type-check,
// summarize, lint (targets only), and cache write-back. Every module
// dependency must have completed first (its sumHash feeds this package's
// cache key); the schedulers below guarantee that in both modes. Safe to
// run concurrently for independent packages.
func (ld *loader) processPkg(mp *modPkg, byPath map[string]*modPkg, opts Options, store *cfg.Store, cache *factCache) (pkgResult, error) {
	key := cacheKey(mp, byPath, opts.Analyzers)

	if cache != nil {
		if ent := cache.load(mp.lp.ImportPath); ent != nil && ent.Key == key && (ent.Linted || !mp.target) {
			if sums, err := cfg.DecodePackage(ent.Summaries); err == nil {
				store.PutAll(sums)
				mp.sumHash = ent.SummaryHash
				r := pkgResult{hit: true}
				if mp.target {
					r.findings = ent.Findings
				}
				return r, nil
			}
		}
	}

	cp, err := ld.ensureChecked(mp, byPath)
	if err != nil {
		return pkgResult{}, fmt.Errorf("lint: %s: %v", mp.lp.ImportPath, err)
	}
	sums := map[string]*cfg.Summary{}
	if len(cp.parseBad) == 0 {
		sums = summarizePackage(cp, store)
	}
	blob, err := cfg.EncodePackage(sums)
	if err != nil {
		return pkgResult{}, fmt.Errorf("lint: %s: %v", mp.lp.ImportPath, err)
	}
	mp.sumHash = hashHex(blob)
	var pkgFindings []Finding
	if mp.target {
		// Relativize before caching so entries stay valid when the
		// checkout moves between runs (CI restores the cache into a
		// fresh workspace).
		pkgFindings = relativize(lintPackage(cp, opts.Analyzers, store), ld.dir)
	}
	if cache != nil {
		ent := &cacheEntry{
			Path:        mp.lp.ImportPath,
			Key:         key,
			SummaryHash: mp.sumHash,
			Summaries:   blob,
			Findings:    pkgFindings,
			Linted:      mp.target,
		}
		if err := cache.save(mp.lp.ImportPath, ent); err != nil {
			return pkgResult{}, fmt.Errorf("lint: cache: %v", err)
		}
	}
	return pkgResult{findings: pkgFindings}, nil
}

// processParallel runs processPkg over the packages with opts.Jobs
// workers, scheduling by module-dependency DAG: a package becomes ready
// when every module dependency has finished, so summaries and summary
// hashes are always in place before a dependent's cache key is computed —
// the same invariant the sequential loop gets from `go list -deps` order.
// Results land in per-index slots; the caller assembles them in order, so
// output does not depend on completion timing. On failure the first error
// in `go list -deps` order wins, again matching sequential behavior.
func (ld *loader) processParallel(order []*modPkg, byPath map[string]*modPkg, opts Options, store *cfg.Store, cache *factCache, results []pkgResult) error {
	n := len(order)
	index := map[*modPkg]int{}
	for i, mp := range order {
		index[mp] = i
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, mp := range order {
		for _, d := range mp.lp.Deps {
			if dep := byPath[d]; dep != nil {
				indeg[i]++
				j := index[dep]
				dependents[j] = append(dependents[j], i)
			}
		}
	}

	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		ready  []int
		done   int
		errs   = make([]error, n)
		failed bool
	)
	for i := range order {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}

	workers := opts.Jobs
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			for {
				for len(ready) == 0 && done < n && !failed {
					cond.Wait()
				}
				if failed || (len(ready) == 0 && done >= n) {
					mu.Unlock()
					return
				}
				i := ready[0]
				ready = ready[1:]
				mu.Unlock()

				r, err := ld.processPkg(order[i], byPath, opts, store, cache)

				mu.Lock()
				if err != nil {
					errs[i] = err
					failed = true
					cond.Broadcast()
					mu.Unlock()
					return
				}
				results[i] = r
				done++
				for _, j := range dependents[i] {
					indeg[j]--
					if indeg[j] == 0 {
						ready = append(ready, j)
					}
				}
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ensureChecked parses and type-checks mp, first ensuring every module
// dependency is checked so the cache importer can serve it. Cache-hit
// packages land here lazily, only when a re-analyzed dependent needs
// their types — under the parallel driver two dependents can race here,
// so mp.mu serializes the check. Locks nest only along dependency edges
// (mp before its deps) and the dependency graph is acyclic, so the
// nesting cannot deadlock.
func (ld *loader) ensureChecked(mp *modPkg, byPath map[string]*modPkg) (*checkedPackage, error) {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	if mp.cp != nil {
		return mp.cp, nil
	}
	for _, dep := range mp.lp.Deps {
		if d := byPath[dep]; d != nil {
			if _, err := ld.ensureChecked(d, byPath); err != nil {
				return nil, err
			}
		}
	}
	if mp.srcBytes == nil {
		mp.srcBytes = map[string][]byte{}
		for _, f := range mp.lp.GoFiles {
			p := filepath.Join(mp.lp.Dir, f)
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			mp.files = append(mp.files, p)
			mp.srcBytes[p] = data
		}
	}
	cp, err := ld.check(mp.lp.ImportPath, mp.lp.Name, mp.files, "", mp.srcBytes)
	if err != nil {
		return nil, err
	}
	mp.cp = cp
	return cp, nil
}

// loadDir parses and type-checks the loose .go files in one directory
// (testdata fixtures). The package path defaults to "fixture/<base>" and
// can be overridden with //pacor:pkgpath.
func (ld *loader) loadDir(dir string) (*checkedPackage, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(ld.dir, dir)
	}
	matches, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return ld.checkFiles(matches, "fixture/"+filepath.Base(abs))
}

// checkFiles parses the given files as one package and type-checks them.
func (ld *loader) checkFiles(paths []string, fallbackPath string) (*checkedPackage, error) {
	cp, err := ld.check("", "", paths, fallbackPath, nil)
	return cp, err
}

// check parses paths into one package and type-checks it with the cache
// importer. preloaded, when non-nil, supplies source bytes already read by
// the caller. Type errors are collected, not fatal. Parse errors become
// positioned "parse" findings on the returned package (parseBad) — the
// package is still returned so the driver can report them; only I/O
// failures are fatal.
func (ld *loader) check(importPath, pkgName string, paths []string, fallbackPath string, preloaded map[string][]byte) (*checkedPackage, error) {
	var files []*ast.File
	var parseBad []Finding
	src := map[string][]byte{}
	for _, p := range paths {
		data, ok := preloaded[p]
		if !ok {
			var err error
			data, err = os.ReadFile(p)
			if err != nil {
				return nil, err
			}
		}
		src[p] = data
		f, err := parser.ParseFile(ld.fset, p, data, parser.ParseComments)
		if err != nil {
			parseBad = append(parseBad, parseFindings(ld.fset, p, err)...)
			continue
		}
		files = append(files, f)
	}
	if len(parseBad) > 0 {
		// A half-parsed package cannot be analyzed meaningfully; carry only
		// the parse findings.
		return &checkedPackage{
			fset:     ld.fset,
			path:     importPath,
			name:     pkgName,
			src:      src,
			parseBad: parseBad,
		}, nil
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %v", paths)
	}
	if pkgName == "" {
		pkgName = files[0].Name.Name
	}
	if importPath == "" {
		importPath = fallbackPath
		for _, f := range files {
			if d := parseDirectives(ld.fset, f); d.pkgpath != "" {
				importPath = d.pkgpath
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(importPath, ld.fset, files, info) // errors collected above
	if pkg != nil {
		ld.mu.Lock()
		ld.checked[importPath] = pkg
		ld.mu.Unlock()
	}
	return &checkedPackage{
		fset:    ld.fset,
		path:    importPath,
		name:    pkgName,
		files:   files,
		src:     src,
		pkg:     pkg,
		info:    info,
		typeErr: typeErrs,
	}, nil
}

// parseFindings converts a parse error for file p into positioned findings
// under the "parse" analyzer. A scanner.ErrorList yields one finding per
// error (capped — a mangled file can produce hundreds); anything else
// yields a single finding at the top of the file.
func parseFindings(fset *token.FileSet, p string, err error) []Finding {
	const maxPerFile = 10
	var out []Finding
	if list, ok := err.(scanner.ErrorList); ok {
		for i, e := range list {
			if i == maxPerFile {
				out = append(out, Finding{
					Pos:      e.Pos,
					Analyzer: "parse",
					Message:  fmt.Sprintf("%d more syntax errors in this file omitted", len(list)-maxPerFile),
				})
				break
			}
			out = append(out, Finding{
				Pos:      e.Pos,
				Analyzer: "parse",
				Message:  "syntax error: " + e.Msg,
			})
		}
		return out
	}
	return []Finding{{
		Pos:      token.Position{Filename: p, Line: 1, Column: 1},
		Analyzer: "parse",
		Message:  "syntax error: " + err.Error(),
	}}
}

// goList shells out to `go list -json` and decodes the JSON stream.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
