// Package lint is a stdlib-only static-analysis framework enforcing the
// repository's cross-cutting invariants: deterministic output (no raw
// map-iteration order reaching reports), allocation discipline on hot
// routing paths, tolerance-based float comparison in the numeric kernels,
// no silently discarded errors in library code, and no stray writes to
// process stdout from library packages.
//
// The driver (see driver.go) loads every package in the module with
// `go list -json` plus go/parser and go/types — no third-party analysis
// framework — runs a registry of analyzers, and reports findings as
// "file:line:col: [analyzer] message". Findings can be suppressed line by
// line with a justified //pacor:allow directive (see directives.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant. Run inspects the package held by the
// Pass and reports findings through it.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //pacor:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the analyzer this pass belongs to.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments preserved).
	Files []*ast.File
	// PkgPath is the package import path ("repro/internal/route"). Fixture
	// packages may override it with a //pacor:pkgpath directive.
	PkgPath string
	// PkgName is the package name ("route", "main", ...).
	PkgName string
	// Pkg is the type-checked package; may be partially complete if the
	// type checker reported errors.
	Pkg *types.Package
	// Info holds type information for expressions in Files. Entries may be
	// missing when type checking was incomplete; analyzers must tolerate
	// nil types.
	Info *types.Info
	// Hot reports whether a function declaration was marked //pacor:hot.
	hot map[*ast.FuncDecl]bool
	// locked marks declarations carrying //pacor:locked ("callers hold the
	// scheduler lock").
	locked map[*ast.FuncDecl]bool
	// src holds the raw bytes of each file, keyed by the filename recorded
	// in Fset. Analyzers consult it to build byte-accurate text edits.
	src map[string][]byte
	// ip resolves call sites to callee summaries (interprocedural facts);
	// nil in unit tests that build a Pass by hand, so analyzers must
	// tolerate its absence.
	ip *ipResolver

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a machine-applicable fix.
// A nil fix degrades to Reportf.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	f := Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if fix != nil {
		f.Fixes = []SuggestedFix{*fix}
	}
	p.report(f)
}

// Src returns the raw source bytes of the file containing pos, or nil when
// the driver did not retain them.
func (p *Pass) Src(pos token.Pos) []byte {
	if p.src == nil {
		return nil
	}
	return p.src[p.Fset.Position(pos).Filename]
}

// DeleteLines builds a TextEdit that removes the whole source lines spanned
// by [from, end). It succeeds only when those lines hold nothing but the
// statement itself — leading whitespace and an optional trailing //-comment
// — so applying it can never damage a neighbouring statement (a one-liner
// like "if c { _ = x }" is refused rather than mangled).
func (p *Pass) DeleteLines(from, end token.Pos) (TextEdit, bool) {
	src := p.Src(from)
	if src == nil {
		return TextEdit{}, false
	}
	a := p.Fset.Position(from)
	b := p.Fset.Position(end)
	if a.Filename != b.Filename || a.Offset > b.Offset || b.Offset > len(src) {
		return TextEdit{}, false
	}
	lineStart := a.Offset - (a.Column - 1)
	if lineStart < 0 || !isBlank(src[lineStart:a.Offset]) {
		return TextEdit{}, false
	}
	lineEnd := b.Offset
	for lineEnd < len(src) && src[lineEnd] != '\n' {
		lineEnd++
	}
	trailing := strings.TrimSpace(string(src[b.Offset:lineEnd]))
	if trailing != "" && !strings.HasPrefix(trailing, "//") {
		return TextEdit{}, false
	}
	if lineEnd < len(src) {
		lineEnd++ // take the newline too
	}
	return TextEdit{File: a.Filename, Start: lineStart, End: lineEnd, New: ""}, true
}

// InsertLineAfter builds a TextEdit that inserts text (sans newline) as a
// new line directly below the line containing pos, matching that line's
// indentation. It succeeds only when pos's line starts with whitespace
// followed by the statement (the common case for straight-line code).
func (p *Pass) InsertLineAfter(pos token.Pos, text string) (TextEdit, bool) {
	src := p.Src(pos)
	if src == nil {
		return TextEdit{}, false
	}
	a := p.Fset.Position(pos)
	if a.Offset > len(src) {
		return TextEdit{}, false
	}
	lineStart := a.Offset - (a.Column - 1)
	if lineStart < 0 || !isBlank(src[lineStart:a.Offset]) {
		return TextEdit{}, false
	}
	indent := string(src[lineStart:a.Offset])
	lineEnd := a.Offset
	for lineEnd < len(src) && src[lineEnd] != '\n' {
		lineEnd++
	}
	if lineEnd < len(src) {
		lineEnd++
	}
	return TextEdit{File: a.Filename, Start: lineEnd, End: lineEnd, New: indent + text + "\n"}, true
}

func isBlank(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' {
			return false
		}
	}
	return true
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by id, or nil when unknown.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// HotFunc reports whether fn carries a //pacor:hot directive.
func (p *Pass) HotFunc(fn *ast.FuncDecl) bool { return p.hot[fn] }

// LockedFunc reports whether fn carries a //pacor:locked directive.
func (p *Pass) LockedFunc(fn *ast.FuncDecl) bool { return p.locked[fn] }

// A Finding is one rule violation.
type Finding struct {
	// Pos locates the violation; Filename is relative to the module root
	// when produced by Run.
	Pos token.Position
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Message describes the violation and, where possible, the fix.
	Message string
	// Fixes are machine-applicable repairs, best first. ApplyFixes applies
	// the first fix of each finding.
	Fixes []SuggestedFix `json:",omitempty"`
}

// A SuggestedFix is one machine-applicable repair for a finding: a set of
// text edits that together remove the violation.
type SuggestedFix struct {
	// Message describes the repair ("delete the dead discard").
	Message string
	// Edits are the text replacements; they must not overlap one another.
	Edits []TextEdit
}

// A TextEdit replaces the byte range [Start, End) of File with New.
// Start == End is a pure insertion. File matches Finding.Pos.Filename
// before relativization (the driver rewrites both together).
type TextEdit struct {
	File       string
	Start, End int
	New        string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// sortFindings orders findings by file, line, column, analyzer, message so
// output is deterministic regardless of analyzer scheduling.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathHasSuffix reports whether pkgPath ends with one of the given
// slash-separated suffixes on a path-segment boundary.
func pathHasSuffix(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isPkgIdent reports whether id names the package imported from path.
// Falls back to spelling when type information is missing.
func isPkgIdent(p *Pass, id *ast.Ident, path string) bool {
	obj := p.ObjectOf(id)
	if obj == nil {
		base := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			base = path[i+1:]
		}
		return id.Name == base
	}
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
