package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// DiffPatterns maps the .go files changed since ref (committed changes,
// the working tree, and untracked files) to the module packages holding
// them, plus every module package that transitively depends on one — the
// package set a pre-push lint run must cover. The returned import paths
// are sorted; an empty slice means no package is affected.
func DiffPatterns(dir, ref string) ([]string, error) {
	root, err := gitOutput(dir, "rev-parse", "--show-toplevel")
	if err != nil {
		return nil, fmt.Errorf("lint: -diff needs a git checkout: %v", err)
	}
	root = strings.TrimSpace(root)

	var changed []string
	diffOut, err := gitOutput(dir, "diff", "--name-only", ref, "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("lint: git diff %s: %v", ref, err)
	}
	changed = append(changed, splitLines(diffOut)...)
	untracked, err := gitOutput(dir, "ls-files", "--others", "--exclude-standard", "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("lint: git ls-files: %v", err)
	}
	changed = append(changed, splitLines(untracked)...)
	if len(changed) == 0 {
		return nil, nil
	}

	// A changed file whose directory no longer exists is a deleted package:
	// it cannot be linted (there is nothing to list), but its reverse
	// dependencies are now broken and must be. `go list -e ./...` no longer
	// enumerates the deleted import path, so dependents cannot be found
	// through the Deps edge to it — instead, any still-listed package that
	// go list marks broken is treated as affected whenever the diff deleted
	// a directory (the breakage is what the deletion caused, and linting it
	// surfaces the dangling imports rather than silently skipping them).
	dirs := map[string]bool{}
	sawDeleted := false
	for _, f := range changed {
		d := filepath.Join(root, filepath.Dir(f))
		if st, err := os.Stat(d); err != nil || !st.IsDir() {
			sawDeleted = true
			continue
		}
		dirs[d] = true
	}

	all, err := goList(dir, []string{"-e", "./..."})
	if err != nil {
		return nil, err
	}
	changedPkgs := map[string]bool{}
	for _, lp := range all {
		if dirs[lp.Dir] || (sawDeleted && (lp.Error != nil || len(lp.DepsErrors) > 0)) {
			changedPkgs[lp.ImportPath] = true
		}
	}
	var out []string
	for _, lp := range all {
		if changedPkgs[lp.ImportPath] {
			out = append(out, lp.ImportPath)
			continue
		}
		for _, d := range lp.Deps {
			if changedPkgs[d] {
				out = append(out, lp.ImportPath)
				break
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// gitOutput runs one git command in dir and returns its stdout.
func gitOutput(dir string, args ...string) (string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("git %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String(), nil
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimSpace(l); l != "" {
			out = append(out, l)
		}
	}
	return out
}
