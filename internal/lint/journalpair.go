package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerJournalPair guards the obstacle-journal protocol behind the
// negotiation engine: ObsMap.StartJournal begins recording cell edits so a
// failed routing attempt can be rolled back (RewindJournal) and the
// recording handed back (StopJournal). A journal left open leaks every
// subsequent edit into the rollback log — the next rewind then un-does
// work that was supposed to be committed. The invariant: every
// StartJournal must reach a StopJournal on every path out of the function,
// either directly, through a deferred stop, or through a callee whose
// summary says it always stops the journal (a commit helper).
//
// The check reuses the interprocedural effect engine: the started ObsMap
// variables become dataflow targets, and the exit fact's "open" bit — set
// by StartJournal, cleared by StopJournal and by callees that (may) stop —
// is the violation. A journal object that escapes the function (stored,
// captured, passed to an unknown callee) transfers the obligation to
// wherever it went, and the local check stays silent.
var AnalyzerJournalPair = &Analyzer{
	Name: "journalpair",
	Doc:  "every ObsMap.StartJournal must reach StopJournal on all paths, directly or through a callee that stops it",
	Run:  runJournalPair,
}

// journalStart is one StartJournal site on a local ObsMap variable.
type journalStart struct {
	obj  types.Object
	name string
	pos  token.Pos
}

func runJournalPair(p *Pass) {
	if p.ip == nil {
		return // no interprocedural engine (hand-built Pass)
	}
	for _, file := range p.Files {
		for _, fn := range flowFuncs(file) {
			checkJournalFunc(p, fn)
		}
	}
}

func checkJournalFunc(p *Pass, fn flowFunc) {
	// Collect the ObsMap variables this body starts a journal on, in
	// source order so reports are deterministic.
	var starts []journalStart
	seen := map[types.Object]bool{}
	inspectShallow(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "StartJournal" {
			return true
		}
		if namedTypeName(p.TypeOf(sel.X)) != "ObsMap" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		seen[obj] = true
		starts = append(starts, journalStart{obj: obj, name: id.Name, pos: call.Pos()})
		return true
	})
	if len(starts) == 0 {
		return
	}

	targets := make([]types.Object, len(starts))
	for i, s := range starts {
		targets[i] = s.obj
	}
	res := p.ip.bodyEffects(fn.body, targets)
	for i, s := range starts {
		eff := res.effs[i]
		if eff.escapes {
			continue // obligation moved with the value
		}
		if eff.opens {
			p.Reportf(s.pos, "journal on %s is started here but does not reach StopJournal on every path; pair it with a StopJournal (or defer one)", s.name)
		}
	}
}
