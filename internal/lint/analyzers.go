package lint

// Analyzers returns the default registry, in stable order. The first five
// are the syntax-level checks from the original gate; the last three are
// the dataflow-aware concurrency/determinism checks built on
// internal/lint/cfg.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerMapOrder,
		AnalyzerHotAlloc,
		AnalyzerFloatEq,
		AnalyzerLibErrs,
		AnalyzerNoStdout,
		AnalyzerWsAliasing,
		AnalyzerSnapshotRead,
		AnalyzerNonDeterm,
	}
}

// Hot packages carry the zero-allocation invariant from the workspace
// refactor: every search on the inner routing loop must reuse buffers.
// Matched by path suffix so fixtures can opt in with //pacor:pkgpath.
var hotPackages = []string{"internal/route", "internal/grid"}

// Numeric packages where direct float equality endangers simplex pivoting
// and DME merging-segment stability.
var floatPackages = []string{"internal/lp", "internal/ilp", "internal/geom", "internal/dme"}
