package lint

// Analyzers returns the default registry, in stable order. The first five
// are the syntax-level checks from the original gate; the rest are the
// dataflow-aware concurrency/determinism checks built on internal/lint/cfg
// (journalpair and the rewired wsaliasing/snapshotread additionally
// consume the interprocedural summaries from internal/lint/summaries.go).
// The final four form the concurrency layer: spawn-graph race checks
// (sharedcapture, commitorder), WaitGroup/channel hygiene (conchygiene),
// and the mcf arena pairing contract (mcfpair).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerMapOrder,
		AnalyzerHotAlloc,
		AnalyzerFloatEq,
		AnalyzerLibErrs,
		AnalyzerNoStdout,
		AnalyzerWsAliasing,
		AnalyzerSnapshotRead,
		AnalyzerJournalPair,
		AnalyzerNonDeterm,
		AnalyzerSharedCapture,
		AnalyzerCommitOrder,
		AnalyzerConcHygiene,
		AnalyzerMcfPair,
	}
}

// Hot packages carry the zero-allocation invariant from the workspace
// refactor: every search on the inner routing loop must reuse buffers.
// Matched by path suffix so fixtures can opt in with //pacor:pkgpath.
var hotPackages = []string{"internal/route", "internal/grid"}

// Numeric packages where direct float equality endangers simplex pivoting
// and DME merging-segment stability.
var floatPackages = []string{"internal/lp", "internal/ilp", "internal/geom", "internal/dme"}
