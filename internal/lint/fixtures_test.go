package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation patterns from a // want comment. Both
// quoting styles are accepted: // want "..." and // want `...`.
var wantRe = regexp.MustCompile("// want (.+)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one // want annotation: a regexp that must match a
// finding's message on the same file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans the fixture files under dir (relative to the lint
// package) for // want annotations.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRe.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: malformed want comment: %s", path, i+1, line)
			}
			for _, a := range args {
				pat := a[1]
				if pat == "" {
					pat = a[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runFixture lints one testdata directory with one analyzer and checks the
// findings against the // want annotations, both ways: every finding must
// be wanted, every want must be found.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	findings, err := Run(Options{
		Patterns:  []string{dir},
		Analyzers: []*Analyzer{a},
	})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	wants := collectWants(t, dir)

	for _, f := range findings {
		if f.Analyzer == "directive" {
			t.Errorf("fixture has a directive problem: %s", f)
			continue
		}
		matched := false
		for _, w := range wants {
			if w.hit || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMapOrderFixture(t *testing.T) { runFixture(t, AnalyzerMapOrder, "testdata/src/maporder") }
func TestHotAllocFixture(t *testing.T) { runFixture(t, AnalyzerHotAlloc, "testdata/src/hotalloc") }
func TestHotMarkFixture(t *testing.T)  { runFixture(t, AnalyzerHotAlloc, "testdata/src/hotmark") }
func TestFloatEqFixture(t *testing.T)  { runFixture(t, AnalyzerFloatEq, "testdata/src/floateq") }
func TestLibErrsFixture(t *testing.T)  { runFixture(t, AnalyzerLibErrs, "testdata/src/liberrs") }
func TestNoStdoutFixture(t *testing.T) { runFixture(t, AnalyzerNoStdout, "testdata/src/nostdout") }

func TestWsAliasingFixture(t *testing.T) {
	runFixture(t, AnalyzerWsAliasing, "testdata/src/wsaliasing")
}
func TestSnapshotReadFixture(t *testing.T) {
	runFixture(t, AnalyzerSnapshotRead, "testdata/src/snapshotread")
}
func TestNonDetermFixture(t *testing.T) {
	runFixture(t, AnalyzerNonDeterm, "testdata/src/nondeterm")
}

// TestDirectiveValidation checks that an unjustified //pacor:allow is
// itself reported and suppresses nothing.
func TestDirectiveValidation(t *testing.T) {
	findings, err := Run(Options{
		Patterns:  []string{"testdata/src/directive"},
		Analyzers: []*Analyzer{AnalyzerLibErrs},
	})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	var gotDirective, gotLibErrs bool
	for _, f := range findings {
		switch f.Analyzer {
		case "directive":
			gotDirective = true
		case "liberrs":
			gotLibErrs = true
		}
	}
	if !gotDirective {
		t.Error("unjustified //pacor:allow was not reported")
	}
	if !gotLibErrs {
		t.Error("unjustified //pacor:allow still suppressed the finding")
	}
	if len(findings) != 2 {
		t.Errorf("want exactly 2 findings, got %d: %v", len(findings), findings)
	}
}

// TestFindingString pins the report format the CI gate greps.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "maporder", Message: "boom"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, want := f.String(), "a/b.go:3:7: [maporder] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestAnalyzersRegistry pins the registered analyzer set.
func TestAnalyzersRegistry(t *testing.T) {
	var names []string
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered", a)
		}
		names = append(names, a.Name)
	}
	want := "maporder hotalloc floateq liberrs nostdout wsaliasing snapshotread journalpair nondeterm sharedcapture commitorder conchygiene mcfpair"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("registry = %q, want %q", got, want)
	}
}

// TestFixtureSuiteFails mirrors the CI sanity check: the whole fixture
// corpus must produce findings under the full registry (a tool that
// passes everything is indistinguishable from one that checks nothing).
func TestFixtureSuiteFails(t *testing.T) {
	dirs, err := filepath.Glob("testdata/src/*")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	findings, err := Run(Options{Patterns: dirs})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture corpus produced zero findings under the full registry")
	}
}

func TestSharedCaptureFixture(t *testing.T) {
	runFixture(t, AnalyzerSharedCapture, "testdata/src/sharedcapture")
}
func TestCommitOrderFixture(t *testing.T) {
	runFixture(t, AnalyzerCommitOrder, "testdata/src/commitorder")
}
func TestConcHygieneFixture(t *testing.T) {
	runFixture(t, AnalyzerConcHygiene, "testdata/src/conchygiene")
}
func TestMcfPairFixture(t *testing.T) {
	runFixture(t, AnalyzerMcfPair, "testdata/src/mcfpair")
}
