package callgraph

import "testing"

func TestSpawnRolesScheduler(t *testing.T) {
	g, _ := load(t, `package p

type sched struct{ n int }

func Run(s *sched) {
	for i := 0; i < 4; i++ {
		go s.worker()
	}
}

func (s *sched) worker() {
	s.advance()
}

func (s *sched) advance() { s.n++ }

func shared() {} // called from both roles

func Front(s *sched) { shared() }

func (s *sched) helperFromWorker() {}
`)
	roles := g.SpawnRoles()

	for key, want := range map[string]Role{
		"example.com/p.Run":             RoleMain,
		"example.com/p.(sched).worker":  RoleWorker,
		"example.com/p.(sched).advance": RoleWorker,
		"example.com/p.Front":           RoleMain,
	} {
		if got := roles[key]; got != want {
			t.Errorf("role[%s] = %v, want %v", key, got, want)
		}
	}
	if !roles["example.com/p.(sched).worker"].SpawnOnly() {
		t.Error("worker should be spawn-only")
	}
	if roles["example.com/p.(sched).advance"].Spawned() != true {
		t.Error("advance should inherit the worker role through the call edge")
	}
}

func TestSpawnRolesFanoutAndValueRef(t *testing.T) {
	g, _ := load(t, `package p

func Run() {
	go helper()
	use(taken)
}

func helper() {}

func taken() {}

func use(f func()) { f() }
`)
	roles := g.SpawnRoles()
	if got := roles["example.com/p.helper"]; got != RoleFanout {
		t.Errorf("helper role = %v, want fanout", got)
	}
	if got := roles["example.com/p.taken"]; got&RoleMain == 0 {
		t.Errorf("value-referenced function should be main-role, got %v", got)
	}
	if !g.ValueRef["example.com/p.taken"] {
		t.Error("taken should be marked as a value reference")
	}
	if g.ValueRef["example.com/p.helper"] {
		t.Error("helper is only spawned, not referenced as a value")
	}
}

func TestSpawnRolesMixed(t *testing.T) {
	g, _ := load(t, `package p

func Run() {
	go both()
	go both()
}

func Direct() { both() }

func both() {}
`)
	roles := g.SpawnRoles()
	got := roles["example.com/p.both"]
	if got&RoleWorker == 0 || got&RoleMain == 0 {
		t.Errorf("both should be worker|main, got %v", got)
	}
	if got.SpawnOnly() {
		t.Error("a function also reachable synchronously is not spawn-only")
	}
}

func TestSpawnRolesClosure(t *testing.T) {
	g, _ := load(t, `package p

import "sync"

func Run(wg *sync.WaitGroup) {
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
}

func work() {}
`)
	roles := g.SpawnRoles()
	if got := roles["example.com/p.Run$0"]; got != RoleWorker {
		t.Errorf("loop-spawned closure role = %v, want worker", got)
	}
	if got := roles["example.com/p.work"]; got&RoleWorker == 0 {
		t.Errorf("work called from the spawned closure should be worker-role, got %v", got)
	}
}

func TestRoleString(t *testing.T) {
	if got := Role(0).String(); got != "unknown" {
		t.Errorf("zero role = %q", got)
	}
	if got := (RoleMain | RoleWorker).String(); got != "main|worker" {
		t.Errorf("main|worker = %q", got)
	}
}
