package callgraph

import (
	"go/ast"
	"go/token"
	"strings"
)

// Role classifies the goroutine contexts a function may run on. The bits
// are may-facts: a function reachable both from the package's synchronous
// entry points and from a spawned closure carries RoleMain and a spawn
// role at once. A zero Role means the spawn graph could not place the
// function on any goroutine (e.g. a closure stored in a struct field and
// invoked through an unknown edge) — analyses must treat it as unknown,
// not as main.
type Role uint8

const (
	// RoleMain marks functions reachable from the package's synchronous
	// entry surface: exported functions, main/init, and functions whose
	// address is taken (they can be called from anywhere).
	RoleMain Role = 1 << iota
	// RoleWorker marks functions spawned repeatedly — a `go` statement
	// inside a loop, or two or more distinct spawn sites. Multiple
	// instances of a worker run concurrently with each other.
	RoleWorker
	// RoleFanout marks functions spawned exactly once, outside any loop:
	// a single helper goroutine running concurrently with its spawner but
	// not with siblings of itself.
	RoleFanout
)

// Spawned reports whether the role includes any asynchronous context.
func (r Role) Spawned() bool { return r&(RoleWorker|RoleFanout) != 0 }

// SpawnOnly reports whether the function runs exclusively on spawned
// goroutines — the precondition for worker-role-only contracts like the
// scheduler's commit discipline.
func (r Role) SpawnOnly() bool { return r.Spawned() && r&RoleMain == 0 }

// String renders the role bits for diagnostics.
func (r Role) String() string {
	if r == 0 {
		return "unknown"
	}
	var parts []string
	if r&RoleMain != 0 {
		parts = append(parts, "main")
	}
	if r&RoleWorker != 0 {
		parts = append(parts, "worker")
	}
	if r&RoleFanout != 0 {
		parts = append(parts, "fanout")
	}
	return strings.Join(parts, "|")
}

// span is a half-open source range.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

// loopSpans collects the source ranges of the loop statements directly in
// body (not descending into nested function literals — their loops belong
// to their own nodes).
func loopSpans(body *ast.BlockStmt) []span {
	var out []span
	shallowInspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			out = append(out, span{n.Pos(), n.End()})
		case *ast.RangeStmt:
			out = append(out, span{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

func inSpans(p token.Pos, spans []span) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// SpawnRoles infers the goroutine role of every node in the graph.
//
// Seeding: a node spawned by a `go` statement inside a loop, or from two
// or more sites, is a worker; a node spawned exactly once outside any loop
// is a fan-out helper. Declared functions that are exported, named main or
// init, referenced as values (address taken), or never called from within
// the package are main seeds — they form the package's synchronous entry
// surface.
//
// Propagation: role bits flow along synchronous (call and defer) edges to
// intra-package callees until a fixed point — a helper called only from a
// worker is itself worker-role. `go` edges do not propagate the caller's
// role: the spawned body's role comes from the spawn site itself.
//
// The result maps node keys to roles; keys absent from the map (closures
// that are never spawned and have no incoming edges, e.g. task values
// stored in a struct and invoked elsewhere) have unknown role.
func (g *Graph) SpawnRoles() map[string]Role {
	roles := map[string]Role{}
	plainSpawns := map[string]int{}
	loopSpawn := map[string]bool{}
	incoming := map[string]int{}

	for _, n := range g.Nodes {
		spans := loopSpans(n.Body())
		for _, e := range n.Edges {
			if e.Callee == "" || g.ByKey[e.Callee] == nil {
				continue
			}
			switch e.Kind {
			case KindGo:
				if e.Site != nil && inSpans(e.Site.Pos(), spans) {
					loopSpawn[e.Callee] = true
				} else {
					plainSpawns[e.Callee]++
				}
			case KindCall, KindDefer:
				incoming[e.Callee]++
			}
		}
	}

	for _, n := range g.Nodes {
		switch {
		case loopSpawn[n.Key] || plainSpawns[n.Key] >= 2:
			roles[n.Key] |= RoleWorker
		case plainSpawns[n.Key] == 1:
			roles[n.Key] |= RoleFanout
		}
	}

	for _, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		name := n.Decl.Name.Name
		switch {
		case n.Decl.Name.IsExported(), name == "main", name == "init",
			g.ValueRef[n.Key],
			incoming[n.Key] == 0 && !roles[n.Key].Spawned():
			roles[n.Key] |= RoleMain
		}
	}

	// Fixed point: iterate until no bit changes. Node order is
	// deterministic, and bits only ever grow, so the result is independent
	// of iteration order.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			r := roles[n.Key]
			if r == 0 {
				continue
			}
			for _, e := range n.Edges {
				if e.Kind != KindCall && e.Kind != KindDefer {
					continue
				}
				if g.ByKey[e.Callee] == nil {
					continue
				}
				if roles[e.Callee]|r != roles[e.Callee] {
					roles[e.Callee] |= r
					changed = true
				}
			}
		}
	}
	return roles
}
