// Package callgraph builds a static, per-package call graph over
// already-type-checked ASTs, the substrate for pacorvet's interprocedural
// summary engine. Nodes are declared functions, methods, and function
// literals (closures are first-class graph nodes rather than opaque
// values); edges are resolved call sites. Direct calls and concrete method
// calls resolve through go/types; calls through interfaces, function
// values, and method expressions are recorded as conservative unknown
// edges. A local variable assigned exactly one FuncLit and never written
// again binds calls through that variable to the literal's node, so the
// common "done := func(){...}; ...; done()" pattern stays precise.
//
// The graph is intra-package: edges to functions in other packages carry
// the callee's stable key (see FuncKey) but no Node; callers resolve those
// keys against previously computed summaries of the dependency packages.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// EdgeKind classifies how a call site transfers control.
type EdgeKind uint8

const (
	// KindCall is an ordinary synchronous call.
	KindCall EdgeKind = iota
	// KindGo is a `go` statement: the callee runs asynchronously, so
	// synchronous effects (a release before return) cannot be credited to
	// the caller's paths.
	KindGo
	// KindDefer is a deferred call: the callee runs at function exit on
	// every path, panics included.
	KindDefer
	// KindUnknown is an unresolvable call — through an interface, a
	// function value of unknown origin, or a method expression. Analyses
	// must treat arguments as escaping.
	KindUnknown
)

// An Edge is one call site.
type Edge struct {
	// Kind classifies the transfer; Callee is empty iff Kind is
	// KindUnknown.
	Kind EdgeKind
	// Callee is the target's stable key (FuncKey for declared functions,
	// the parent-derived key for literals). It may name a function in
	// another package or the standard library.
	Callee string
	// Site is the call expression.
	Site *ast.CallExpr
}

// A Node is one function body in the package: a declaration or a literal.
type Node struct {
	// Key identifies the node: FuncKey for declarations,
	// "<parentKey>$<n>" for the n-th literal (preorder) inside its parent.
	Key string
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Parent is the enclosing node for literals, nil for declarations.
	Parent *Node
	// Edges are the node's resolved call sites in source order. Calls
	// inside nested literals belong to the literal's own node.
	Edges []Edge
}

// Body returns the node's function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// A Graph is the call graph of one package.
type Graph struct {
	// Package is the import path the graph was built for.
	Package string
	// Nodes lists every function body in deterministic order: declarations
	// in file order, each followed by its literals in preorder.
	Nodes []*Node
	// ByKey indexes Nodes.
	ByKey map[string]*Node
	// Sites maps every call expression seen in a node body to its edge.
	Sites map[*ast.CallExpr]Edge
	// Bindings maps local variables assigned exactly one FuncLit (and
	// never reassigned or address-taken) to that literal.
	Bindings map[types.Object]*ast.FuncLit
	// CallOnly reports that a bound variable is used exclusively in call
	// position, so every invocation of the literal is a visible call site
	// and its captured-variable effects apply only there.
	CallOnly map[types.Object]bool
	// LitKey maps each function literal to its node key.
	LitKey map[*ast.FuncLit]string
	// ValueRef marks declared functions referenced as values (outside call
	// position): they can be invoked from contexts the graph cannot see,
	// so role inference treats them as part of the entry surface.
	ValueRef map[string]bool
}

// FuncKey returns the stable cross-package key of a declared function or
// method: "path.Name" for package functions, "path.(Recv).Name" for
// methods (pointerness of the receiver is ignored — a type has one method
// of a given name).
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fn.Pkg().Path() + ".(" + recvTypeName(sig.Recv().Type()) + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// recvTypeName names the receiver's base type.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "interface"
	}
	return t.String()
}

// Build constructs the call graph of one package from its parsed files and
// type information. Partially type-checked packages degrade gracefully:
// call sites whose callee object is unknown become unknown edges.
func Build(pkgPath string, files []*ast.File, info *types.Info) *Graph {
	g := &Graph{
		Package:  pkgPath,
		ByKey:    map[string]*Node{},
		Sites:    map[*ast.CallExpr]Edge{},
		Bindings: map[types.Object]*ast.FuncLit{},
		CallOnly: map[types.Object]bool{},
		LitKey:   map[*ast.FuncLit]string{},
	}
	b := &builder{g: g, info: info, pkgPath: pkgPath}

	// Pass 1: nodes. Declarations in file order; literals in preorder
	// inside their nearest enclosing node.
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			root := &Node{Key: b.declKey(fn), Decl: fn}
			b.addNode(root)
			b.liftLits(root)
		}
	}

	// Pass 2: closure bindings (needs every literal's key from pass 1).
	for _, n := range g.Nodes {
		if n.Decl != nil {
			b.bindClosures(n.Decl.Body)
		}
	}

	// Pass 3: edges.
	for _, n := range g.Nodes {
		b.collectEdges(n)
	}

	// Pass 4: value references. An identifier resolving to a declared
	// function of this package that is not the operand of a call marks the
	// function as address-taken.
	g.ValueRef = map[string]bool{}
	if info != nil {
		for _, f := range files {
			callFun := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						callFun[fun] = true
					case *ast.SelectorExpr:
						callFun[fun.Sel] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callFun[id] {
					return true
				}
				fn, ok := info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if key := FuncKey(fn); g.ByKey[key] != nil {
					g.ValueRef[key] = true
				}
				return true
			})
		}
	}
	return g
}

// SCCs returns the strongly connected components of the intra-package
// graph in bottom-up order: every component is emitted after all
// components it calls into, so a caller iterating the result sees callee
// summaries before it needs them. Singleton components are the common
// case; larger ones are (mutual) recursion and need a fixed point.
func (g *Graph) SCCs() [][]*Node {
	t := &tarjan{
		g:     g,
		index: map[*Node]int{},
		low:   map[*Node]int{},
		on:    map[*Node]bool{},
	}
	for _, n := range g.Nodes {
		if _, seen := t.index[n]; !seen {
			t.visit(n)
		}
	}
	return t.sccs
}

// tarjan is the classic linear-time SCC algorithm; components complete in
// reverse topological order of the condensation, exactly the bottom-up
// order the summary engine wants.
type tarjan struct {
	g     *Graph
	next  int
	index map[*Node]int
	low   map[*Node]int
	on    map[*Node]bool
	stack []*Node
	sccs  [][]*Node
}

func (t *tarjan) visit(n *Node) {
	t.index[n] = t.next
	t.low[n] = t.next
	t.next++
	t.stack = append(t.stack, n)
	t.on[n] = true

	for _, e := range n.Edges {
		if e.Callee == "" {
			continue
		}
		m := t.g.ByKey[e.Callee]
		if m == nil {
			continue // cross-package or stdlib: summaries already final
		}
		if _, seen := t.index[m]; !seen {
			t.visit(m)
			if t.low[m] < t.low[n] {
				t.low[n] = t.low[m]
			}
		} else if t.on[m] && t.index[m] < t.low[n] {
			t.low[n] = t.index[m]
		}
	}

	if t.low[n] == t.index[n] {
		var scc []*Node
		for {
			m := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.on[m] = false
			scc = append(scc, m)
			if m == n {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}

type builder struct {
	g       *Graph
	info    *types.Info
	pkgPath string
}

func (b *builder) addNode(n *Node) {
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.ByKey[n.Key] = n
	if n.Lit != nil {
		b.g.LitKey[n.Lit] = n.Key
	}
}

// declKey computes the key of a declaration, through go/types when the
// declaration resolved and from syntax otherwise.
func (b *builder) declKey(fn *ast.FuncDecl) string {
	if b.info != nil {
		if obj, ok := b.info.Defs[fn.Name].(*types.Func); ok {
			return FuncKey(obj)
		}
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		return b.pkgPath + ".(" + recvAstName(fn.Recv.List[0].Type) + ")." + fn.Name.Name
	}
	return b.pkgPath + "." + fn.Name.Name
}

func recvAstName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return recvAstName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvAstName(e.X)
	case *ast.IndexListExpr:
		return recvAstName(e.X)
	}
	return "?"
}

// liftLits creates a node for every function literal nested under parent's
// body (but not under an intermediate literal — those get the intermediate
// node as parent), preorder, and recurses.
func (b *builder) liftLits(parent *Node) {
	ord := 0
	var lits []*Node
	shallowInspect(parent.Body(), func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			child := &Node{
				Key:    parent.Key + "$" + strconv.Itoa(ord),
				Lit:    lit,
				Parent: parent,
			}
			ord++
			b.addNode(child)
			lits = append(lits, child)
			return false
		}
		return true
	})
	for _, l := range lits {
		b.liftLits(l)
	}
}

// bindClosures finds local variables bound to exactly one function literal
// across the whole declaration body (nested literals included — a binding
// established in the host is callable from a closure and vice versa). A
// variable qualifies when its only assignment is the FuncLit and its
// address is never taken.
func (b *builder) bindClosures(body *ast.BlockStmt) {
	if b.info == nil {
		return
	}
	type cand struct {
		lit     *ast.FuncLit
		writes  int
		addrOf  bool
		nonCall bool // used somewhere other than call position / def site
	}
	cands := map[types.Object]*cand{}
	get := func(id *ast.Ident) *cand {
		obj := b.info.ObjectOf(id)
		if obj == nil {
			return nil
		}
		if _, ok := obj.(*types.Var); !ok {
			return nil
		}
		c := cands[obj]
		if c == nil {
			c = &cand{}
			cands[obj] = c
		}
		return c
	}
	objOf := func(id *ast.Ident) types.Object { return b.info.ObjectOf(id) }

	// First sweep: record writes and the literal (if any) each variable is
	// assigned.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					c := get(id)
					if c == nil {
						continue
					}
					c.writes++
					if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
						c.lit = lit
					}
				}
			} else {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if c := get(id); c != nil {
							c.writes += 2 // multi-value: never a lone FuncLit
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				c := get(name)
				if c == nil {
					continue
				}
				if i < len(n.Values) && len(n.Names) == len(n.Values) {
					c.writes++
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						c.lit = lit
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if c := get(id); c != nil {
						c.addrOf = true
					}
				}
			}
		}
		return true
	})

	// Second sweep: any use outside call position or the defining
	// assignment means calls elsewhere may exist (passed as a callback,
	// returned) — the binding still resolves *visible* calls, but CallOnly
	// stays false so capture-effect analyses treat the variable's value as
	// escaping.
	callFun := map[*ast.Ident]bool{}
	defSite := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				callFun[id] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					defSite[id] = true
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				defSite[name] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFun[id] || defSite[id] {
			return true
		}
		obj := objOf(id)
		if obj == nil {
			return true
		}
		if c := cands[obj]; c != nil {
			c.nonCall = true
		}
		return true
	})

	for obj, c := range cands {
		if c.lit != nil && c.writes == 1 && !c.addrOf {
			b.g.Bindings[obj] = c.lit
			b.g.CallOnly[obj] = !c.nonCall
		}
	}
}

// collectEdges resolves every call site in n's body (literals excluded —
// they own their calls) into edges.
func (b *builder) collectEdges(n *Node) {
	body := n.Body()
	kinds := map[*ast.CallExpr]EdgeKind{}
	shallowInspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			kinds[m.Call] = KindGo
		case *ast.DeferStmt:
			kinds[m.Call] = KindDefer
		}
		return true
	})
	shallowInspect(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, isStmt := kinds[call]
		if !isStmt {
			kind = KindCall
		}
		e := b.resolve(call, kind)
		n.Edges = append(n.Edges, e)
		b.g.Sites[call] = e
		return true
	})
}

// resolve classifies one call site.
func (b *builder) resolve(call *ast.CallExpr, kind EdgeKind) Edge {
	if b.info == nil {
		return Edge{Kind: KindUnknown, Site: call}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := b.info.ObjectOf(fun).(type) {
		case *types.Func:
			return Edge{Kind: kind, Callee: FuncKey(obj), Site: call}
		case *types.Builtin:
			// Only panic matters downstream (may-not-return); the rest of
			// the builtins have no summarizable effects.
			return Edge{Kind: kind, Callee: "builtin." + obj.Name(), Site: call}
		case *types.TypeName:
			return Edge{Kind: kind, Callee: "", Site: call} // conversion, not a call
		case *types.Var:
			if lit := b.g.Bindings[obj]; lit != nil {
				return Edge{Kind: kind, Callee: b.g.LitKey[lit], Site: call}
			}
		}
		return Edge{Kind: KindUnknown, Site: call}
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if types.IsInterface(baseType(sel.Recv())) {
					return Edge{Kind: KindUnknown, Site: call} // dynamic dispatch
				}
				if m, ok := sel.Obj().(*types.Func); ok {
					return Edge{Kind: kind, Callee: FuncKey(m), Site: call}
				}
			}
			// Method expression used as a value, or a func-typed field.
			return Edge{Kind: KindUnknown, Site: call}
		}
		// No selection entry: package-qualified reference or a conversion.
		switch obj := b.info.ObjectOf(fun.Sel).(type) {
		case *types.Func:
			return Edge{Kind: kind, Callee: FuncKey(obj), Site: call}
		case *types.TypeName:
			return Edge{Kind: kind, Callee: "", Site: call} // qualified conversion
		}
		return Edge{Kind: KindUnknown, Site: call}
	case *ast.FuncLit:
		return Edge{Kind: kind, Callee: b.g.LitKey[fun], Site: call}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.InterfaceType, *ast.StructType, *ast.StarExpr:
		return Edge{Kind: kind, Callee: "", Site: call} // type conversion
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation: resolve the underlying identifier.
		if x, ok := unwrapIndex(fun); ok {
			if obj, ok := b.info.ObjectOf(x).(*types.Func); ok {
				return Edge{Kind: kind, Callee: FuncKey(obj), Site: call}
			}
		}
		return Edge{Kind: KindUnknown, Site: call}
	}
	return Edge{Kind: KindUnknown, Site: call}
}

func unwrapIndex(e ast.Expr) (*ast.Ident, bool) {
	switch e := e.(type) {
	case *ast.IndexExpr:
		id, ok := ast.Unparen(e.X).(*ast.Ident)
		return id, ok
	case *ast.IndexListExpr:
		id, ok := ast.Unparen(e.X).(*ast.Ident)
		return id, ok
	}
	return nil, false
}

func baseType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// shallowInspect walks n in preorder without descending into function
// literals (mirroring internal/lint's inspectShallow; duplicated to keep
// the dependency arrow pointing from lint to callgraph).
func shallowInspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			f(m)
			return false
		}
		return f(m)
	})
}
