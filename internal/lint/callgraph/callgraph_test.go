package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// load type-checks one synthetic file and builds its graph.
func load(t *testing.T, src string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil), Error: func(error) {}}
	if _, err := conf.Check("example.com/p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("check: %v", err)
	}
	return Build("example.com/p", []*ast.File{f}, info), info
}

func edgeKeys(n *Node) []string {
	var out []string
	for _, e := range n.Edges {
		if e.Kind == KindUnknown {
			out = append(out, "?")
		} else if e.Callee != "" {
			out = append(out, e.Callee)
		}
	}
	return out
}

func TestDirectAndMethodEdges(t *testing.T) {
	g, _ := load(t, `package p

type T struct{}

func (t *T) M() { helper() }

func helper() {}

func top(t *T) {
	t.M()
	helper()
	go helper()
	defer helper()
}
`)
	top := g.ByKey["example.com/p.top"]
	if top == nil {
		t.Fatalf("missing top node; have %v", nodeKeys(g))
	}
	want := []string{"example.com/p.(T).M", "example.com/p.helper", "example.com/p.helper", "example.com/p.helper"}
	got := edgeKeys(top)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("top edges = %v, want %v", got, want)
	}
	kinds := []EdgeKind{KindCall, KindCall, KindGo, KindDefer}
	for i, e := range top.Edges {
		if e.Kind != kinds[i] {
			t.Errorf("edge %d kind = %d, want %d", i, e.Kind, kinds[i])
		}
	}
	m := g.ByKey["example.com/p.(T).M"]
	if m == nil || len(m.Edges) != 1 || m.Edges[0].Callee != "example.com/p.helper" {
		t.Fatalf("method node edges wrong: %+v", m)
	}
}

func TestClosureNodesAndBindings(t *testing.T) {
	g, info := load(t, `package p

func host() {
	done := func() { inner() }
	done()
	func() { inner() }()
	var cb func()
	cb = func() {}
	cb = func() {}
	cb()
}

func inner() {}
`)
	host := g.ByKey["example.com/p.host"]
	if host == nil {
		t.Fatal("missing host node")
	}
	if g.ByKey["example.com/p.host$0"] == nil || g.ByKey["example.com/p.host$1"] == nil {
		t.Fatalf("closure nodes missing: %v", nodeKeys(g))
	}
	// done() resolves to the first literal; the IIFE to the second; cb()
	// (two assignments) stays unknown.
	var resolved, unknown int
	for _, e := range host.Edges {
		switch {
		case e.Callee == "example.com/p.host$0" || e.Callee == "example.com/p.host$1":
			resolved++
		case e.Kind == KindUnknown:
			unknown++
		}
	}
	if resolved != 2 || unknown != 1 {
		t.Fatalf("resolved=%d unknown=%d, want 2/1 (edges %v)", resolved, unknown, edgeKeys(host))
	}
	// CallOnly: done is only ever called.
	found := false
	for obj, lit := range g.Bindings {
		if obj.Name() == "done" {
			found = true
			if g.LitKey[lit] != "example.com/p.host$0" {
				t.Errorf("done bound to %s", g.LitKey[lit])
			}
			if !g.CallOnly[obj] {
				t.Errorf("done should be call-only")
			}
		}
	}
	if !found {
		t.Fatal("done binding missing")
	}
	_ = info
}

func TestUnknownEdges(t *testing.T) {
	g, _ := load(t, `package p

type I interface{ M() }

func viaInterface(i I) { i.M() }

func viaValue(f func()) { f() }

func viaConversion(x int) int64 { return int64(x) }
`)
	for _, name := range []string{"viaInterface", "viaValue"} {
		n := g.ByKey["example.com/p."+name]
		if n == nil || len(n.Edges) != 1 || n.Edges[0].Kind != KindUnknown {
			t.Errorf("%s: want one unknown edge, got %+v", name, n.Edges)
		}
	}
	conv := g.ByKey["example.com/p.viaConversion"]
	for _, e := range conv.Edges {
		if e.Kind == KindUnknown || e.Callee != "" {
			t.Errorf("conversion produced an edge: %+v", e)
		}
	}
}

func TestSCCsBottomUp(t *testing.T) {
	g, _ := load(t, `package p

func a() { b() }
func b() { c(); d() }
func c() { b() } // b <-> c
func d() {}
func e() { e() } // self-loop
`)
	sccs := g.SCCs()
	pos := map[string]int{}
	size := map[string]int{}
	for i, scc := range sccs {
		for _, n := range scc {
			pos[n.Key] = i
			size[n.Key] = len(scc)
		}
	}
	bc := "example.com/p.b"
	if size[bc] != 2 || pos[bc] != pos["example.com/p.c"] {
		t.Fatalf("b and c should share a 2-node SCC: sizes %v", size)
	}
	if size["example.com/p.e"] != 1 {
		t.Errorf("self-loop e should be its own SCC")
	}
	// Bottom-up: d before b/c, b/c before a.
	if !(pos["example.com/p.d"] < pos[bc] && pos[bc] < pos["example.com/p.a"]) {
		t.Fatalf("SCC order not bottom-up: %v", pos)
	}
}

func TestBuiltinPanicEdge(t *testing.T) {
	g, _ := load(t, `package p

func boom() { panic("x") }
`)
	n := g.ByKey["example.com/p.boom"]
	if n == nil || len(n.Edges) != 1 || n.Edges[0].Callee != "builtin.panic" {
		t.Fatalf("panic edge wrong: %+v", n.Edges)
	}
}

func nodeKeys(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.Key)
	}
	return out
}
