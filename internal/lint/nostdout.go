package lint

import (
	"go/ast"
)

// AnalyzerNoStdout keeps process output where it belongs: main packages
// under cmd/ and examples/, or an injected io.Writer. A library package
// that writes to os.Stdout (fmt.Print*, os.Stdout, print/println) corrupts
// machine-readable output — the parallel table2 sweep diffs stdout
// byte-for-byte — and can't be silenced by callers.
var AnalyzerNoStdout = &Analyzer{
	Name: "nostdout",
	Doc:  "library packages must not write to stdout; print via cmd/ or an injected writer",
	Run:  runNoStdout,
}

// Printing fmt functions that implicitly target os.Stdout.
var stdoutFmtFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoStdout(p *Pass) {
	// Main packages own their stdout.
	if p.PkgName == "main" {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && isPkgIdent(p, id, "fmt") && stdoutFmtFuncs[sel.Sel.Name] {
						p.Reportf(n.Pos(), "fmt.%s writes to process stdout from a library package; use an injected io.Writer", sel.Sel.Name)
					}
				}
				if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") && isBuiltin(p, n.Fun, id.Name) {
					p.Reportf(n.Pos(), "builtin %s writes to stderr and survives into release builds; use an injected writer", id.Name)
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok && isPkgIdent(p, id, "os") && n.Sel.Name == "Stdout" {
					p.Reportf(n.Pos(), "os.Stdout referenced from a library package; accept an io.Writer instead")
				}
			}
			return true
		})
	}
}
