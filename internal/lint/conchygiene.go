package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/cfg"
)

// AnalyzerConcHygiene checks WaitGroup and channel usage patterns whose
// failure mode is a silent hang or panic rather than a data race:
//
//   - wg.Add called after a goroutine using the same WaitGroup was already
//     spawned (Wait may return early); a Wait on the group re-arms it;
//   - a spawned closure that calls wg.Done on some paths but not all
//     (Wait hangs forever on the missed path) — deferred Done counts on
//     every path;
//   - a send on a channel declared `var ch chan T` and never assigned:
//     it blocks forever (sends in select communication clauses are exempt —
//     a nil channel disabling a case is the idiom);
//   - ranging over a locally made channel that no code in the function
//     ever closes and that never escapes: the loop never terminates.
var AnalyzerConcHygiene = &Analyzer{
	Name: "conchygiene",
	Doc:  "WaitGroup ordering (Add before go, Done on all paths) and channel liveness (nil send, never-closed range)",
	Run:  runConcHygiene,
}

func runConcHygiene(p *Pass) {
	if p.ip == nil {
		return
	}
	for _, file := range p.Files {
		for _, fn := range flowFuncs(file) {
			if fn.body == nil {
				continue
			}
			checkAddAfterSpawn(p, fn)
			checkDoneAllPaths(p, fn)
			checkNilChannel(p, fn)
			if fn.lit == nil {
				checkUnclosedRange(p, fn)
			}
		}
	}
}

// wgObjOf resolves a WaitGroup-typed method receiver to its root object.
func wgObjOf(p *Pass, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.ObjectOf(id)
	if obj == nil || namedTypeName(obj.Type()) != "WaitGroup" {
		return nil
	}
	return obj
}

// checkAddAfterSpawn flags wg.Add calls forward-reachable from a go
// statement that references the same WaitGroup. The fact is propagated
// over forward edges only (back edges excluded via dominators), so the
// idiomatic `for { wg.Add(1); go ... }` loop stays clean; a wg.Wait
// re-arms the group and clears it.
func checkAddAfterSpawn(p *Pass, fn flowFunc) {
	hasGo := false
	inspectShallow(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			hasGo = true
		}
		return !hasGo
	})
	if !hasGo {
		return
	}

	g := cfg.New(fn.body)
	idom := g.Idoms()
	// spawned[obj] per block entry: a goroutine referencing obj was
	// spawned on every... no — on *some* forward path (may-fact, union).
	in := make([]map[types.Object]bool, len(g.Blocks))
	step := func(n ast.Node, state map[types.Object]bool, report bool) {
		inspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				// Any WaitGroup mentioned under the go statement (receiver
				// or argument) is concurrently in use from here on.
				ast.Inspect(m, func(k ast.Node) bool {
					if id, ok := k.(*ast.Ident); ok {
						if obj := wgObjOf(p, id); obj != nil {
							state[obj] = true
						}
					}
					return true
				})
			case *ast.CallExpr:
				sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := wgObjOf(p, sel.X)
				if obj == nil {
					return true
				}
				switch sel.Sel.Name {
				case "Add":
					if report && state[obj] {
						p.Reportf(m.Pos(), "%s.Add after a goroutine using the same WaitGroup was spawned; Add before the go statement so Wait cannot return early", obj.Name())
					}
				case "Wait":
					delete(state, obj) // the group is drained; re-arming is legal
				}
			}
			return true
		})
	}
	// Forward edges form a DAG, so one reverse-postorder pass reaches the
	// fixed point; the replay with reporting reuses the same pass.
	for _, b := range g.RPO() {
		state := map[types.Object]bool{}
		for _, pred := range b.Preds {
			if cfg.Dominates(idom, b, pred) {
				continue // back edge
			}
			for obj := range in[pred.Index] {
				state[obj] = true
			}
		}
		for _, n := range b.Nodes {
			step(n, state, true)
		}
		in[b.Index] = state
	}
}

// checkDoneAllPaths flags spawned closures that call Done on some paths
// only.
func checkDoneAllPaths(p *Pass, fn flowFunc) {
	inspectShallow(fn.body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit := spawnedClosure(p, gs)
		if lit == nil {
			return true
		}
		// WaitGroups on which the closure calls Done somewhere.
		done := map[types.Object]bool{}
		escaped := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := wgObjOf(p, sel.X); obj != nil && sel.Sel.Name == "Done" {
					done[obj] = true
					return true
				}
			}
			// The group passed to a callee without a summary may be Done'd
			// there; stay silent for it.
			if p.ip.calleeSummary(call) == nil {
				for _, a := range call.Args {
					if obj := wgObjOf(p, a); obj != nil {
						escaped[obj] = true
					}
				}
			}
			return true
		})
		for obj := range done {
			if escaped[obj] {
				continue
			}
			if !p.ip.doneOnAllPaths(lit.Body, obj) {
				p.Reportf(gs.Pos(), "spawned closure calls %s.Done on some paths but not all; Wait hangs on the missed path — use defer %s.Done()", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// checkNilChannel flags sends on channels declared with `var ch chan T`
// that cannot have been assigned on any path to the send.
func checkNilChannel(p *Pass, fn flowFunc) {
	// Channels declared var-without-value directly in this body.
	nilDecls := map[types.Object]bool{}
	inspectShallow(fn.body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := p.ObjectOf(name)
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Chan); ok {
					nilDecls[obj] = true
				}
			}
		}
		return true
	})
	if len(nilDecls) == 0 {
		return
	}
	// A channel referenced inside a nested closure, address-taken, or
	// passed to a call could be assigned out of band; drop it.
	inspectShallow(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					delete(nilDecls, p.ObjectOf(id))
				}
				return true
			})
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					delete(nilDecls, p.ObjectOf(id))
				}
			}
		}
		return true
	})
	if len(nilDecls) == 0 {
		return
	}

	// select communication sends are the nil-disables-this-case idiom.
	selectComm := map[ast.Stmt]bool{}
	inspectShallow(fn.body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				selectComm[cc.Comm] = true
			}
		}
		return true
	})

	// May-assigned dataflow: a send is a definite nil-send only when no
	// path to it assigns the channel.
	g := cfg.New(fn.body)
	assignedIn := cfg.Solve(g, cfg.Problem[map[types.Object]bool]{
		Entry: map[types.Object]bool{},
		Transfer: func(b *cfg.Block, in map[types.Object]bool) map[types.Object]bool {
			state := map[types.Object]bool{}
			for obj := range in {
				state[obj] = true
			}
			for _, nd := range b.Nodes {
				inspectShallow(nd, func(m ast.Node) bool {
					if as, ok := m.(*ast.AssignStmt); ok {
						for _, lhs := range as.Lhs {
							if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
								if obj := p.ObjectOf(id); obj != nil && nilDecls[obj] {
									state[obj] = true
								}
							}
						}
					}
					return true
				})
			}
			return state
		},
		Join: func(a, b map[types.Object]bool) map[types.Object]bool {
			out := make(map[types.Object]bool, len(a)+len(b))
			for obj := range a {
				out[obj] = true
			}
			for obj := range b {
				out[obj] = true
			}
			return out
		},
		Equal: func(a, b map[types.Object]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for obj := range a {
				if !b[obj] {
					return false
				}
			}
			return true
		},
	})
	for _, b := range g.RPO() {
		state := map[types.Object]bool{}
		for obj := range assignedIn[b.Index] {
			state[obj] = true
		}
		for _, nd := range b.Nodes {
			if send, ok := nd.(*ast.SendStmt); ok && !selectComm[send] {
				if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok {
					if obj := p.ObjectOf(id); obj != nil && nilDecls[obj] && !state[obj] {
						p.Reportf(send.Pos(), "send on %s, which is declared `var %s chan ...` and never assigned on any path here: a nil-channel send blocks forever", id.Name, id.Name)
					}
				}
			}
			inspectShallow(nd, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							if obj := p.ObjectOf(id); obj != nil && nilDecls[obj] {
								state[obj] = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// checkUnclosedRange flags `for range ch` over a channel made in this
// declaration that nothing ever closes and that never escapes — the range
// can only end via close, so the loop (and its goroutine) leaks. A break
// or return inside the loop body is an explicit exit and silences the
// check. Runs once per declaration (closures included in the scan).
func checkUnclosedRange(p *Pass, fn flowFunc) {
	body := fn.body
	madeHere := map[types.Object]bool{}
	closed := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "make") {
					if obj := p.ObjectOf(id); obj != nil {
						if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
							madeHere[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isBuiltin(p, n.Fun, "close") && len(n.Args) == 1 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					closed[p.ObjectOf(id)] = true
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); !ok || p.ip.boundLit(p.ObjectOf(id)) == nil {
				// A channel passed to any real call may be closed there.
				for _, a := range n.Args {
					if id, ok := ast.Unparen(a).(*ast.Ident); ok {
						escaped[p.ObjectOf(id)] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					escaped[p.ObjectOf(id)] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					escaped[p.ObjectOf(id)] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(rs.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.ObjectOf(id)
		if obj == nil || !madeHere[obj] || closed[obj] || escaped[obj] {
			return true
		}
		if t := p.TypeOf(rs.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
		}
		if loopExits(rs.Body) {
			return true
		}
		p.Reportf(rs.Pos(), "ranging over %s, a channel made in this function that is never closed and never escapes; the loop cannot terminate", id.Name)
		return true
	})
}

// loopExits reports whether body contains a statement that leaves the
// enclosing range loop: a return or goto anywhere (closures aside), a
// labeled break or continue (assumed to target an outer statement), or an
// unlabeled break outside any nested breakable statement.
func loopExits(body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.GOTO || n.Label != nil {
				found = true
			}
		}
		return !found
	})
	if found {
		return true
	}
	inspectShallow(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.BranchStmt:
			if m.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return false // an unlabeled break in there stays in there
		}
		return !found
	})
	return found
}
