package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// This file holds the shared machinery of the concurrency analyzers
// (sharedcapture, commitorder, conchygiene): the summary-side computation
// of concurrency effect bits, and a must-lockset dataflow over function
// bodies. Mutex and WaitGroup types are matched by name (Mutex, RWMutex,
// WaitGroup) so fixtures can declare stand-ins, exactly like the
// Workspace/ObsMap conventions elsewhere in the package.

func isMutexTypeName(s string) bool { return s == "Mutex" || s == "RWMutex" }

// concEffects fills in sum's concurrency-effect bits from n's body,
// folding in the summaries of resolved synchronous callees so the bits
// are transitive. All bits are may-facts and only grow across SCC
// iterations, so the fixed point is preserved.
func (r *ipResolver) concEffects(n *callgraph.Node, objs []types.Object, sum *cfg.Summary) {
	paramIdx := map[types.Object]int{}
	for i, obj := range objs {
		if obj != nil {
			paramIdx[obj] = i
		}
	}
	mark := func(i int, f func(*cfg.ParamSummary)) {
		if i >= 0 && i < len(sum.Params) {
			f(&sum.Params[i])
		}
	}
	paramOf := func(e ast.Expr) int {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok || r.info == nil {
			return -1
		}
		if i, ok := paramIdx[r.info.ObjectOf(id)]; ok {
			return i
		}
		return -1
	}

	inspectShallow(n.Body(), func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			sum.Spawns = true
		case *ast.SendStmt:
			sum.SendsChan = true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				sum.RecvsChan = true
			}
		case *ast.RangeStmt:
			if r.info != nil {
				if t := r.info.TypeOf(m.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						sum.RecvsChan = true
					}
				}
			}
		case *ast.CallExpr:
			r.concCall(m, sum, mark, paramOf)
		}
		return true
	})

	// Done-on-all-paths is a must-fact: a separate small dataflow per
	// flagged parameter.
	for i := range sum.Params {
		if sum.Params[i].WGDoneMay && objs[i] != nil {
			sum.Params[i].WGDoneAlways = r.doneOnAllPaths(n.Body(), objs[i])
		}
	}
}

// concCall folds one call site into the concurrency bits.
func (r *ipResolver) concCall(call *ast.CallExpr, sum *cfg.Summary, mark func(int, func(*cfg.ParamSummary)), paramOf func(ast.Expr) int) {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel != nil && r.info != nil {
		switch namedTypeName(r.info.TypeOf(sel.X)) {
		case "Mutex", "RWMutex":
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				sum.LocksAny = true
				mark(paramOf(sel.X), func(p *cfg.ParamSummary) { p.LocksParam = true })
			case "Unlock", "RUnlock":
				sum.UnlocksAny = true
				mark(paramOf(sel.X), func(p *cfg.ParamSummary) { p.UnlocksParam = true })
			}
		case "WaitGroup":
			switch sel.Sel.Name {
			case "Add":
				sum.WGAdd = true
			case "Done":
				sum.WGDone = true
				mark(paramOf(sel.X), func(p *cfg.ParamSummary) { p.WGDoneMay = true })
			case "Wait":
				sum.WGWait = true
			}
		}
	}

	if r.graph == nil {
		return
	}
	e, ok := r.graph.Sites[call]
	if !ok || e.Callee == "" || e.Kind == callgraph.KindUnknown {
		return
	}
	if e.Kind == callgraph.KindGo {
		sum.Spawns = true
		return // the callee's effects happen on another goroutine
	}
	cs := r.store.Get(e.Callee)
	if cs == nil {
		return
	}
	sum.Spawns = sum.Spawns || cs.Spawns
	sum.LocksAny = sum.LocksAny || cs.LocksAny
	sum.UnlocksAny = sum.UnlocksAny || cs.UnlocksAny
	sum.SendsChan = sum.SendsChan || cs.SendsChan
	sum.RecvsChan = sum.RecvsChan || cs.RecvsChan
	sum.WGAdd = sum.WGAdd || cs.WGAdd
	sum.WGDone = sum.WGDone || cs.WGDone
	sum.WGWait = sum.WGWait || cs.WGWait

	base := 0
	if cs.Recv {
		base = 1
		if sel != nil {
			applyConcParam(cs.Param(0), paramOf(sel.X), mark)
		}
	}
	for i, a := range call.Args {
		applyConcParam(cs.Param(base+i), paramOf(a), mark)
	}
}

func applyConcParam(ps cfg.ParamSummary, idx int, mark func(int, func(*cfg.ParamSummary))) {
	if idx < 0 {
		return
	}
	mark(idx, func(p *cfg.ParamSummary) {
		p.LocksParam = p.LocksParam || ps.LocksParam
		p.UnlocksParam = p.UnlocksParam || ps.UnlocksParam
		p.WGDoneMay = p.WGDoneMay || ps.WGDoneMay
	})
}

// doneOnAllPaths reports whether every terminating path through body calls
// Done on the WaitGroup object wg. A deferred Done counts for every path
// (the framework-wide approximation: defers are folded into the exit, see
// bodyEffects).
func (r *ipResolver) doneOnAllPaths(body *ast.BlockStmt, wg types.Object) bool {
	isDone := func(n ast.Node) bool {
		found := false
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && r.info != nil && r.info.ObjectOf(id) == wg {
					found = true
				}
			}
			if cs := r.calleeSummary(call); cs != nil {
				base := 0
				if cs.Recv {
					base = 1
				}
				for i, a := range call.Args {
					if !cs.Param(base + i).WGDoneAlways {
						continue
					}
					e := ast.Unparen(a)
					if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
						e = ast.Unparen(u.X)
					}
					if id, ok := e.(*ast.Ident); ok && r.info != nil && r.info.ObjectOf(id) == wg {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}

	deferred := false
	inspectShallow(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && isDone(d.Call) {
			deferred = true
		}
		return !deferred
	})
	if deferred {
		return true
	}

	g := cfg.New(body)
	facts := cfg.Solve(g, cfg.Problem[bool]{
		Entry: false,
		Transfer: func(b *cfg.Block, in bool) bool {
			done := in
			for _, nd := range b.Nodes {
				if _, isDefer := nd.(*ast.DeferStmt); isDefer {
					continue
				}
				if !done && isDone(nd) {
					done = true
				}
			}
			return done
		},
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
	})
	return facts[g.Exit.Index]
}

// --- must-lockset dataflow ---

// lockset is the set of canonical lock keys definitely held at a program
// point. nil means unreached (top of the must-lattice); an empty non-nil
// set means "reached, nothing held".
type lockset map[string]bool

func (s lockset) clone() lockset {
	if s == nil {
		return nil
	}
	out := make(lockset, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func locksEqual(a, b lockset) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// intersect is the must-join: a lock is held at a merge point only when
// held on every incoming path.
func locksIntersect(a, b lockset) lockset {
	if a == nil {
		return b.clone()
	}
	if b == nil {
		return a.clone()
	}
	out := lockset{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// lockKeyOf canonicalizes a lock operand to a stable key: the root
// object's declaration position followed by the field path ("o123.mu").
// Non-canonical operands (index expressions, call results) yield "" and
// are not tracked.
func lockKeyOf(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if info == nil {
			return ""
		}
		obj := info.ObjectOf(e)
		if obj == nil {
			return ""
		}
		return "o" + strconv.Itoa(int(obj.Pos()))
	case *ast.SelectorExpr:
		base := lockKeyOf(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockKeyOf(info, e.X)
		}
	}
	return ""
}

// lockTransfer applies one CFG node's lock effects to held, in place:
// Lock/RLock on a mutex-typed receiver adds its key, Unlock/RUnlock
// removes it, and a resolved callee transfers its per-parameter
// lock/unlock bits onto canonical arguments. Deferred statements are
// skipped — a deferred unlock runs at exit, so the lock stays held for
// the rest of the body. cond.Wait releases and re-acquires, so the
// must-set is unchanged across it.
func lockTransfer(p *Pass, n ast.Node, held lockset) {
	inspectShallow(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if sel != nil && isMutexTypeName(namedTypeName(p.TypeOf(sel.X))) {
			key := lockKeyOf(p.Info, sel.X)
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if key != "" {
					held[key] = true
				}
			case "Unlock", "RUnlock":
				if key != "" {
					delete(held, key)
				}
			}
			return true
		}
		if sum := p.ip.calleeSummary(call); sum != nil {
			base := 0
			if sum.Recv {
				base = 1
				if sel != nil {
					applyLockParam(sum.Param(0), lockKeyOf(p.Info, sel.X), held)
				}
			}
			for i, a := range call.Args {
				applyLockParam(sum.Param(base+i), lockKeyOf(p.Info, a), held)
			}
		}
		return true
	})
}

func applyLockParam(ps cfg.ParamSummary, key string, held lockset) {
	if key == "" {
		return
	}
	// A callee that may unlock kills the must-fact; one that always locks
	// without unlocking establishes it. LocksParam is a may-fact, so it
	// only establishes the lock when the callee never releases it.
	if ps.UnlocksParam {
		delete(held, key)
	} else if ps.LocksParam {
		held[key] = true
	}
}

// lockWalk solves the must-lockset dataflow over body and replays it in
// reverse-postorder, calling visit once per CFG node with the set of locks
// definitely held on entry to that node. visit must not retain held.
func lockWalk(p *Pass, body *ast.BlockStmt, visit func(n ast.Node, held lockset)) {
	g := cfg.New(body)
	facts := cfg.Solve(g, cfg.Problem[lockset]{
		Entry: lockset{},
		Transfer: func(b *cfg.Block, in lockset) lockset {
			held := in.clone()
			if held == nil {
				held = lockset{}
			}
			for _, nd := range b.Nodes {
				lockTransfer(p, nd, held)
			}
			return held
		},
		Join:  locksIntersect,
		Equal: locksEqual,
	})
	for _, b := range g.RPO() {
		held := facts[b.Index].clone()
		if held == nil {
			held = lockset{}
		}
		for _, nd := range b.Nodes {
			visit(nd, held)
			lockTransfer(p, nd, held)
		}
	}
}

// isBarrier reports whether executing n synchronizes the current goroutine
// with goroutines it spawned: a WaitGroup.Wait, a channel receive, or a
// call to a function that waits or receives. Conservatively, any
// channel-typed expression counts (a bare channel operand in a range
// head is a receive) — the conservative direction here is fewer findings,
// never false positives.
func isBarrier(p *Pass, n ast.Node) bool {
	found := false
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Wait" && namedTypeName(p.TypeOf(sel.X)) == "WaitGroup" {
					found = true
				}
			}
			if sum := p.ip.calleeSummary(m); sum != nil && (sum.WGWait || sum.RecvsChan) {
				found = true
			}
		case ast.Expr:
			if t := p.TypeOf(m); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
