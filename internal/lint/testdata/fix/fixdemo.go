// Package fixdemo is the seeded-defect tree for the -fix fixpoint test:
// every finding in it carries a suggested fix, and after one ApplyFixes
// round the tree lints clean under the full registry. It deliberately has
// no // want annotations — the contract under test is the repair, not the
// report.
package fixdemo

//pacor:pkgpath fixture/internal/fixdemo

// Grid stands in for grid.Grid.
type Grid struct{ W, H int }

// Cells mirrors the real grid API.
func (g Grid) Cells() int { return g.W * g.H }

// Workspace stands in for route.Workspace.
type Workspace struct{ cells int }

// Search stands in for a workspace-backed search.
func (w *Workspace) Search(from, to int) int { return from + to + w.cells }

// AcquireWorkspace stands in for the pooled acquire.
func AcquireWorkspace(g Grid) *Workspace { return &Workspace{cells: g.Cells()} }

// ReleaseWorkspace stands in for the pooled release.
func ReleaseWorkspace(*Workspace) {}

// leakyCompute acquires without releasing anywhere; the wsaliasing fix
// defers the release at the acquire site.
func leakyCompute(g Grid) int {
	ws := AcquireWorkspace(g)
	return ws.Search(1, 2)
}

// deadDiscard wears an assignment costume on a no-op; the liberrs fix
// deletes the line.
func deadDiscard(g Grid, debug bool) int {
	_ = debug
	if debug {
		return 0
	}
	return g.Cells()
}
