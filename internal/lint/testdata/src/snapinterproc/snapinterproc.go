// Package snapinterproc is a fixture for the interprocedural snapshotread
// cases: un-stamped obstacle reads hiding inside helpers, and stamps
// supplied by callees. The pkgpath directive places it inside
// internal/route so the hot-package gate applies.
package snapinterproc

//pacor:pkgpath fixture/internal/route

// Pt stands in for geom.Pt.
type Pt struct{ X, Y int }

// Grid stands in for grid.Grid.
type Grid struct{ W, H int }

// Index mirrors the real grid API.
func (g Grid) Index(p Pt) int { return p.Y*g.W + p.X }

// ObsMap stands in for grid.ObsMap.
type ObsMap struct{ bits []bool }

// Blocked mirrors the real obstacle query.
func (o *ObsMap) Blocked(p Pt) bool { return len(o.bits) > 0 && o.bits[0] }

// Workspace stands in for route.Workspace.
type Workspace struct{ track bool }

// StartVisitTracking mirrors the tracking switch.
func (w *Workspace) StartVisitTracking() { w.track = true }

// touch mirrors the per-cell stamp; it reports prior membership.
func (w *Workspace) touch(i int) bool { return w.track && i >= 0 }

// peekBlocked reads obstacle state with no workspace in scope, so it is
// not its own reporting boundary — the violation belongs to whichever
// stamped-protocol caller invokes it before stamping.
func peekBlocked(obs *ObsMap, p Pt) bool {
	return obs.Blocked(p)
}

// stampAll stamps on its every path; callers are in the stamped state
// after the call.
func stampAll(w *Workspace, g Grid, pts []Pt) {
	w.StartVisitTracking()
	for _, p := range pts {
		w.touch(g.Index(p))
	}
}

// helperReadLeak calls the reading helper before any stamp: the read the
// intraprocedural engine could not see.
func helperReadLeak(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	blocked := peekBlocked(obs, p) // want `call to route.peekBlocked reads ObsMap.Blocked before any workspace visit stamp`
	w.touch(g.Index(p))
	return blocked
}

// helperReadAfterStamp is clean: the stamp precedes the helper call.
func helperReadAfterStamp(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	w.touch(g.Index(p))
	return peekBlocked(obs, p)
}

// helperStampsFirst is clean: stampAll's summary says every path stamps,
// so the direct read after it is covered — a false positive under the
// old engine.
func helperStampsFirst(w *Workspace, g Grid, obs *ObsMap, pts []Pt, p Pt) bool {
	stampAll(w, g, pts)
	return obs.Blocked(p)
}

// helperBranchLeak stamps through the helper on one branch only: the
// must-join still catches the unstamped path into the helper read.
func helperBranchLeak(w *Workspace, g Grid, obs *ObsMap, pts []Pt, p Pt, fast bool) bool {
	if fast {
		stampAll(w, g, pts)
	}
	return peekBlocked(obs, p) // want `call to route.peekBlocked reads ObsMap.Blocked before any workspace visit stamp`
}

// checkedHelper has its own workspace parameter, so it is its own
// reporting boundary: the violation is reported here, in its body...
func checkedHelper(w *Workspace, obs *ObsMap, p Pt) bool {
	blocked := obs.Blocked(p) // want `ObsMap.Blocked read is reachable before any workspace visit stamp`
	w.touch(0)
	return blocked
}

// ...and does NOT propagate to its call sites.
func callsCheckedHelper(w *Workspace, g Grid, obs *ObsMap, p Pt) bool {
	blocked := checkedHelper(w, obs, p)
	w.touch(g.Index(p))
	return blocked
}
